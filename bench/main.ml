(* Benchmark and experiment harness.

   Usage:
     main.exe              run every experiment (full size) + perf benches
     main.exe quick        trimmed sweeps (CI-friendly)
     main.exe e3 e6        only the listed experiments
     main.exe perf         only the Bechamel micro-benchmarks
     main.exe list         list experiment ids and titles
     main.exe --json [dir] additionally write BENCH_<id>.json per
                           experiment (default: current directory)
     main.exe --jobs N     worker domains for trial sweeps (0 = all
                           cores); results are identical for any N

   One experiment = one reproduced table/figure/theorem of the paper;
   see DESIGN.md's per-experiment index. *)

module Experiments = Owp_bench.Experiments
module Exp_common = Owp_bench.Exp_common
module Workloads = Owp_bench.Workloads

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks (P1–P5)                                   *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

let perf_instance (n, quota) =
  Workloads.make ~seed:5 ~family:(Workloads.Gnm_avg_deg 8.0)
    ~pref_model:Workloads.Random_prefs ~n ~quota

let perf_tests () =
  let small = perf_instance (500, 3) and mid = perf_instance (2000, 3) in
  let lid_test name (inst : Workloads.instance) =
    Test.make ~name (Staged.stage (fun () ->
        ignore (Owp_core.Lid.run ~seed:1 inst.weights ~capacity:inst.capacity)))
  in
  let lic_test name (inst : Workloads.instance) =
    Test.make ~name (Staged.stage (fun () ->
        ignore (Owp_core.Lic.run inst.weights ~capacity:inst.capacity)))
  in
  let greedy_test name (inst : Workloads.instance) =
    Test.make ~name (Staged.stage (fun () ->
        ignore (Owp_matching.Greedy.run inst.weights ~capacity:inst.capacity)))
  in
  let weights_test name (inst : Workloads.instance) =
    Test.make ~name (Staged.stage (fun () ->
        ignore (Weights.of_preference inst.prefs)))
  in
  let gen_test name n =
    Test.make ~name (Staged.stage (fun () ->
        let rng = Owp_util.Prng.create 9 in
        ignore (Gen.gnm rng ~n ~m:(4 * n))))
  in
  Test.make_grouped ~name:"owp"
    [
      lic_test "P1 LIC n=500" small;
      lic_test "P1 LIC n=2000" mid;
      lid_test "P2 LID(sim) n=500" small;
      lid_test "P2 LID(sim) n=2000" mid;
      greedy_test "P3 greedy n=2000" mid;
      weights_test "P4 weights n=2000" mid;
      gen_test "P5 gnm n=2000" 2000;
    ]

let run_perf () =
  print_endline "== Perf (Bechamel, monotonic clock; ns/run via OLS) ==";
  let tests = perf_tests () in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some [ x ] -> x
        | _ -> Float.nan
      in
      rows := (name, est) :: !rows)
    results;
  let t =
    Owp_util.Tablefmt.create
      [ ("bench", Owp_util.Tablefmt.Left); ("time/run", Owp_util.Tablefmt.Right) ]
  in
  let pretty ns =
    if Float.is_nan ns then "n/a"
    else if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
    else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  List.iter
    (fun (name, est) -> Owp_util.Tablefmt.add_row t [ name; pretty est ])
    (List.sort compare !rows);
  Owp_util.Tablefmt.print t

(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "quick" args in
  let args = List.filter (fun a -> a <> "quick") args in
  (* --json [dir]: the optional directory is the next argument unless it
     looks like another flag/experiment id *)
  let json_dir, args =
    let rec strip acc = function
      | [] -> (None, List.rev acc)
      | "--json" :: rest -> (
          match rest with
          | dir :: rest'
            when (not (String.length dir > 0 && dir.[0] = '-'))
                 && Option.is_none (Experiments.find dir)
                 && not (List.mem dir [ "list"; "perf"; "quick" ]) ->
              (Some dir, List.rev_append acc rest')
          | rest -> (Some ".", List.rev_append acc rest))
      | a :: rest -> strip (a :: acc) rest
    in
    strip [] args
  in
  (match json_dir with
  | Some dir when not (Sys.file_exists dir && Sys.is_directory dir) ->
      Printf.eprintf "--json: not a directory: %s\n" dir;
      exit 2
  | _ -> ());
  (* --jobs N: worker-pool width for the experiment trial sweeps *)
  let args =
    let rec strip acc = function
      | [] -> List.rev acc
      | "--jobs" :: n :: rest -> (
          match int_of_string_opt n with
          | Some n ->
              Exp_common.jobs :=
                (if n <= 0 then Owp_util.Pool.default_jobs () else n);
              List.rev_append acc rest
          | None ->
              Printf.eprintf "--jobs: not a number: %s\n" n;
              exit 2)
      | [ "--jobs" ] ->
          prerr_endline "--jobs: missing count";
          exit 2
      | a :: rest -> strip (a :: acc) rest
    in
    strip [] args
  in
  let out = Format.std_formatter in
  match args with
  | [ "list" ] ->
      List.iter
        (fun e ->
          Printf.printf "%-4s %s [%s]\n" e.Exp_common.id e.Exp_common.title
            e.Exp_common.paper_ref)
        Experiments.all
  | [ "perf" ] -> run_perf ()
  | [] ->
      Experiments.run_all ~quick ?json_dir ~out ();
      run_perf ()
  | ids ->
      List.iter
        (fun id ->
          if id = "perf" then run_perf ()
          else if not (Experiments.run_one ~quick ?json_dir ~out id) then begin
            Printf.eprintf "unknown experiment id: %s (try 'list')\n" id;
            exit 2
          end)
        ids
