(* Latency-driven overlay: peers live in a metric space (e.g. network
   coordinates) and prefer nearby neighbours.  Compares the LID overlay
   against a random maximal matching of the same degree budget: the
   satisfaction-maximising overlay picks dramatically shorter links.

   Run with:  dune exec examples/latency_overlay.exe *)

module BM = Owp_matching.Bmatching

let mean_link_distance pts m =
  let g = BM.graph m in
  let total = ref 0.0 and count = ref 0 in
  List.iter
    (fun eid ->
      let u, v = Graph.edge_endpoints g eid in
      let xu, yu = pts.(u) and xv, yv = pts.(v) in
      total := !total +. sqrt (((xu -. xv) ** 2.0) +. ((yu -. yv) ** 2.0));
      incr count)
    (BM.edge_ids m);
  if !count = 0 then 0.0 else !total /. float_of_int !count

let random_maximal rng g capacity =
  (* scan edges in random order, add whatever fits: the "no preferences"
     strawman *)
  let order = Owp_util.Prng.permutation rng (Graph.edge_count g) in
  let residual = Array.copy capacity in
  let chosen = ref [] in
  Array.iter
    (fun eid ->
      let u, v = Graph.edge_endpoints g eid in
      if residual.(u) > 0 && residual.(v) > 0 then begin
        residual.(u) <- residual.(u) - 1;
        residual.(v) <- residual.(v) - 1;
        chosen := eid :: !chosen
      end)
    order;
  BM.of_edge_ids g ~capacity !chosen

let () =
  let rng = Owp_util.Prng.create 7 in
  let n = 500 in
  let g, pts = Gen.random_geometric rng ~n ~radius:0.12 in
  Printf.printf "geometric overlay: %d peers, %d potential links, avg degree %.1f\n"
    n (Graph.edge_count g) (Metrics.average_degree g);

  let quota = 4 in
  let config = Owp_overlay.Overlay.homogeneous ~quota (Metric.latency pts) in
  let prefs = Owp_overlay.Overlay.preferences g config in
  let outcome = Owp_overlay.Overlay.build ~seed:1 g config in
  let lid_m = outcome.Owp_core.Pipeline.matching in

  let capacity = Array.init n (Preference.quota prefs) in
  let rand_m = random_maximal rng g capacity in

  Printf.printf "\n%-28s %12s %12s\n" "" "LID overlay" "random";
  Printf.printf "%-28s %12d %12d\n" "links established" (BM.size lid_m) (BM.size rand_m);
  Printf.printf "%-28s %12.4f %12.4f\n" "mean link distance"
    (mean_link_distance pts lid_m) (mean_link_distance pts rand_m);
  let q_lid = Owp_overlay.Quality.measure prefs lid_m in
  let q_rand = Owp_overlay.Quality.measure prefs rand_m in
  Printf.printf "%-28s %12.4f %12.4f\n" "mean satisfaction"
    q_lid.Owp_overlay.Quality.mean q_rand.Owp_overlay.Quality.mean;
  Printf.printf "%-28s %12.4f %12.4f\n" "5th-pct satisfaction"
    q_lid.Owp_overlay.Quality.p05 q_rand.Owp_overlay.Quality.p05;
  Printf.printf "%-28s %11.1f%% %11.1f%%\n" "peers with their top-b set"
    (100.0 *. q_lid.Owp_overlay.Quality.fully_satisfied_fraction)
    (100.0 *. q_rand.Owp_overlay.Quality.fully_satisfied_fraction)
