(* Churn: peers join and leave while the overlay repairs itself.
   Demonstrates the incremental greedy repair (the paper's §7 future
   work, built as an ablation) against full rebuilds: satisfaction stays
   within a few percent at a fraction of the disruption.

   Run with:  dune exec examples/churn_overlay.exe *)

module Churn = Owp_overlay.Churn

let () =
  let rng = Owp_util.Prng.create 31 in
  let n = 300 in
  let g = Gen.gnm rng ~n ~m:(4 * n) in
  let prefs = Preference.random rng g ~quota:(Preference.uniform_quota g 3) in

  let initially_active = Array.init n (fun _ -> Owp_util.Prng.bernoulli rng 0.85) in
  let events = Churn.random_events rng ~universe:g ~initially_active ~steps:150 in

  let incr_steps =
    Churn.simulate ~prefs ~initially_active ~events ~repair:Churn.Incremental
  in
  let full_steps =
    Churn.simulate ~prefs ~initially_active ~events ~repair:Churn.Full_rebuild
  in

  Printf.printf "universe: %d peers, %d potential links; %d churn events\n\n" n
    (Graph.edge_count g) (List.length events);

  Printf.printf "%6s %8s | %12s %10s | %12s %10s\n" "event" "" "S(incr)" "changed"
    "S(rebuild)" "changed";
  List.iteri
    (fun i (a, b) ->
      if i mod 15 = 0 then begin
        let ev =
          match a.Churn.event with
          | Churn.Leave v -> Printf.sprintf "leave %d" v
          | Churn.Join v -> Printf.sprintf "join %d" v
        in
        Printf.printf "%6d %8s | %12.2f %10d | %12.2f %10d\n" i ev
          a.Churn.total_satisfaction (a.Churn.added + a.Churn.removed)
          b.Churn.total_satisfaction (b.Churn.added + b.Churn.removed)
      end)
    (List.combine incr_steps full_steps);

  let mean f steps =
    List.fold_left (fun acc s -> acc +. f s) 0.0 steps /. float_of_int (List.length steps)
  in
  let s_incr = mean (fun s -> s.Churn.total_satisfaction) incr_steps in
  let s_full = mean (fun s -> s.Churn.total_satisfaction) full_steps in
  let d_incr = mean (fun s -> float_of_int (s.Churn.added + s.Churn.removed)) incr_steps in
  let d_full = mean (fun s -> float_of_int (s.Churn.added + s.Churn.removed)) full_steps in
  Printf.printf "\nmean satisfaction : incremental %.2f vs rebuild %.2f (%.1f%% retained)\n"
    s_incr s_full (100.0 *. s_incr /. s_full);
  Printf.printf "mean disruption   : incremental %.2f vs rebuild %.2f edges/event\n" d_incr
    d_full
