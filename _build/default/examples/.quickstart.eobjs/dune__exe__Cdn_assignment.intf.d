examples/cdn_assignment.mli:
