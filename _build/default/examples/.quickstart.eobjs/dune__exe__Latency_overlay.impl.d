examples/latency_overlay.ml: Array Gen Graph List Metric Metrics Owp_core Owp_matching Owp_overlay Owp_util Preference Printf
