examples/churn_overlay.ml: Array Gen Graph List Owp_overlay Owp_util Preference Printf
