examples/interest_overlay.mli:
