examples/churn_overlay.mli:
