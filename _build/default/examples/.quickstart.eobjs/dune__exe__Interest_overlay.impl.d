examples/interest_overlay.ml: Array Fun Gen Graph Metric Owp_core Owp_matching Owp_overlay Owp_util Preference Printf
