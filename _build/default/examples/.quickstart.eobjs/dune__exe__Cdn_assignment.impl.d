examples/cdn_assignment.ml: Array Gen Graph Metric Owp_core Owp_matching Owp_util Preference Printf Weights
