examples/quickstart.ml: Gen Graph Metric Owp_core Owp_matching Owp_overlay Owp_util Printf
