examples/quickstart.mli:
