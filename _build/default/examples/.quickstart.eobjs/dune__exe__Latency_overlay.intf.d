examples/latency_overlay.mli:
