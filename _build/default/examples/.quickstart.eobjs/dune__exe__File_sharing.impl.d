examples/file_sharing.ml: Array Gen Graph Metric Owp_core Owp_matching Owp_stable Owp_util Preference Printf Weights
