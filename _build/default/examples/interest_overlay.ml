(* Interest-based overlay with *heterogeneous private metrics* — the
   paper's headline scenario (§1): each peer individually chooses what
   "best neighbour" means (shared interests, transaction history, plain
   proximity) and never reveals the metric.  LID still coordinates them
   to a collectively guaranteed matching.

   Run with:  dune exec examples/interest_overlay.exe *)

let () =
  let rng = Owp_util.Prng.create 99 in
  let n = 400 in
  let g = Gen.barabasi_albert rng ~n ~m:5 in

  (* three metric "personalities" spread across the swarm *)
  let metrics =
    [|
      Metric.interest ~seed:11 ~dims:16; (* content interests *)
      Metric.transaction_history ~seed:22; (* past behaviour *)
      Metric.bandwidth ~seed:33; (* raw capacity *)
    |]
  in
  let personality i = i mod 3 in
  let config = Owp_overlay.Overlay.heterogeneous ~quota:4 metrics ~pick:personality in

  let prefs = Owp_overlay.Overlay.preferences g config in
  let outcome = Owp_overlay.Overlay.build ~seed:4 g config in
  let m = outcome.Owp_core.Pipeline.matching in

  Printf.printf "scale-free overlay: %d peers, %d potential links\n" n
    (Graph.edge_count g);
  Printf.printf "global mean satisfaction: %.4f\n\n"
    outcome.Owp_core.Pipeline.mean_satisfaction;

  (* per-personality quality: nobody is starved by using a different
     metric from the neighbours *)
  Printf.printf "%-22s %8s %10s %10s\n" "metric class" "peers" "mean S" "min S";
  Array.iteri
    (fun k metric ->
      let sats = ref [] in
      for v = 0 to n - 1 do
        if personality v = k && Preference.list_len prefs v > 0 then
          sats :=
            Preference.satisfaction prefs v (Owp_matching.Bmatching.connections m v)
            :: !sats
      done;
      let arr = Array.of_list !sats in
      let s = Owp_util.Stats.summarize arr in
      Printf.printf "%-22s %8d %10.4f %10.4f\n" (Metric.name metric) (Array.length arr)
        s.Owp_util.Stats.mean s.Owp_util.Stats.min)
    metrics;

  (* preference systems mixing metrics are generally cyclic: the very
     case where stable-fixtures dynamics may never converge but LID is
     guaranteed to terminate (Lemma 5) *)
  let sub = 120 in
  let sub_nodes = Array.init sub Fun.id in
  let sub_g, _ = Graph.induced_subgraph g sub_nodes in
  let sub_cfg = Owp_overlay.Overlay.heterogeneous ~quota:4 metrics ~pick:personality in
  let sub_prefs = Owp_overlay.Overlay.preferences sub_g sub_cfg in
  Printf.printf "\npreference system acyclic (first %d peers): %b\n" sub
    (Preference.is_acyclic sub_prefs);
  Printf.printf "LID terminated anyway: %b (Lemma 5 holds on cyclic systems)\n"
    (outcome.Owp_core.Pipeline.messages <> None)
