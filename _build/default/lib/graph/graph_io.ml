let to_string g =
  let buf = Buffer.create (16 * Graph.edge_count g) in
  Buffer.add_string buf
    (Printf.sprintf "%d %d\n" (Graph.node_count g) (Graph.edge_count g));
  Graph.iter_edges g (fun _ u v -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v));
  Buffer.contents buf

let write path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

let significant_lines s =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None else Some line)

let of_string s =
  match significant_lines s with
  | [] -> failwith "Graph_io.of_string: empty input"
  | header :: rest -> (
      match String.split_on_char ' ' header with
      | [ sn; sm ] ->
          let n = int_of_string sn and m = int_of_string sm in
          let b = Graph.Builder.create n in
          List.iter
            (fun line ->
              match String.split_on_char ' ' line with
              | u :: v :: _ ->
                  ignore (Graph.Builder.add_edge b (int_of_string u) (int_of_string v))
              | _ -> failwith "Graph_io.of_string: malformed edge line")
            rest;
          let g = Graph.Builder.build b in
          if Graph.edge_count g <> m then
            failwith "Graph_io.of_string: edge count mismatch with header";
          g
      | _ -> failwith "Graph_io.of_string: malformed header")

let read path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))

let weights_to_string g w =
  if Array.length w <> Graph.edge_count g then
    invalid_arg "Graph_io.weights_to_string: weight arity mismatch";
  let buf = Buffer.create (24 * Graph.edge_count g) in
  Buffer.add_string buf
    (Printf.sprintf "%d %d\n" (Graph.node_count g) (Graph.edge_count g));
  Graph.iter_edges g (fun eid u v ->
      Buffer.add_string buf (Printf.sprintf "%d %d %.17g\n" u v w.(eid)));
  Buffer.contents buf

let weights_of_string s =
  match significant_lines s with
  | [] -> failwith "Graph_io.weights_of_string: empty input"
  | header :: rest -> (
      match String.split_on_char ' ' header with
      | [ sn; sm ] ->
          let n = int_of_string sn and m = int_of_string sm in
          let b = Graph.Builder.create n in
          let triples =
            List.map
              (fun line ->
                match String.split_on_char ' ' line with
                | [ u; v; w ] -> (int_of_string u, int_of_string v, float_of_string w)
                | _ -> failwith "Graph_io.weights_of_string: malformed line")
              rest
          in
          List.iter (fun (u, v, _) -> ignore (Graph.Builder.add_edge b u v)) triples;
          let g = Graph.Builder.build b in
          if Graph.edge_count g <> m then
            failwith "Graph_io.weights_of_string: edge count mismatch";
          let w = Array.make m 0.0 in
          List.iter
            (fun (u, v, x) ->
              match Graph.find_edge g u v with
              | Some eid -> w.(eid) <- x
              | None -> assert false)
            triples;
          (g, w)
      | _ -> failwith "Graph_io.weights_of_string: malformed header")
