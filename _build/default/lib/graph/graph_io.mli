(** Plain edge-list serialisation.

    Format: a header line ["n m"], then one ["u v"] line per edge.
    Lines starting with ['#'] are comments.  This is the interchange
    format used by the CLI ([bin/owp generate] / [bin/owp run]). *)

val to_string : Graph.t -> string
val write : string -> Graph.t -> unit

val of_string : string -> Graph.t
(** @raise Failure on malformed input. *)

val read : string -> Graph.t

val weights_to_string : Graph.t -> float array -> string
(** Edge list with a third weight column (same ordering as edge ids). *)

val weights_of_string : string -> Graph.t * float array
