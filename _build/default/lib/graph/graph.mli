(** Undirected simple graphs.

    A graph is built incrementally through a {!Builder} and then frozen
    into an immutable adjacency structure.  Nodes are the integers
    [0..n-1]; edges carry dense identifiers [0..m-1] so that algorithms
    can attach per-edge data (weights, matching flags) in flat arrays.

    Self-loops are rejected and parallel edges are coalesced: the overlay
    model of the paper (§2) is an undirected simple graph [G(V,E)]. *)

type t

module Builder : sig
  type graph := t
  type t

  val create : int -> t
  (** [create n] starts an empty graph on [n] nodes. *)

  val add_edge : t -> int -> int -> bool
  (** [add_edge b u v] inserts the undirected edge {u,v}.  Returns
      [false] (and does nothing) when the edge already exists.
      @raise Invalid_argument on self-loops or out-of-range endpoints. *)

  val mem_edge : t -> int -> int -> bool
  val edge_count : t -> int
  val build : t -> graph
end

val node_count : t -> int
val edge_count : t -> int

val edge_endpoints : t -> int -> int * int
(** Endpoints [(u, v)] with [u < v] of the edge with the given id. *)

val edges : t -> (int * int) array
(** All edges, indexed by edge id. Do not mutate. *)

val degree : t -> int -> int

val neighbors : t -> int -> (int * int) array
(** [neighbors g u] is the array of [(v, edge_id)] pairs, sorted by [v].
    Do not mutate. *)

val neighbor_nodes : t -> int -> int array
(** Just the neighbour ids of [u], sorted. Fresh array. *)

val find_edge : t -> int -> int -> int option
(** Edge id joining two nodes, if present (binary search, O(log deg)). *)

val mem_edge : t -> int -> int -> bool

val other_endpoint : t -> int -> int -> int
(** [other_endpoint g e u] is the endpoint of [e] distinct from [u].
    @raise Invalid_argument if [u] is not an endpoint of [e]. *)

val iter_edges : t -> (int -> int -> int -> unit) -> unit
(** [iter_edges g f] calls [f eid u v] for every edge, [u < v]. *)

val fold_edges : t -> ('a -> int -> int -> int -> 'a) -> 'a -> 'a

val iter_neighbors : t -> int -> (int -> int -> unit) -> unit
(** [iter_neighbors g u f] calls [f v eid] for each neighbour of [u]. *)

val max_degree : t -> int

val of_edge_list : int -> (int * int) list -> t
(** Convenience constructor; duplicates are coalesced. *)

val complement_degree_sum : t -> int
(** Sum over nodes of [n - 1 - degree]; used by density reports. *)

val induced_subgraph : t -> int array -> t * int array
(** [induced_subgraph g nodes] relabels [nodes] to [0..k-1] and keeps the
    edges among them.  Returns the subgraph and the old-id-of-new-id map. *)
