(** Structural graph metrics, used to characterise generated workloads in
    experiment tables and to sanity-check the generators. *)

val connected_components : Graph.t -> int array * int
(** [(label, count)]: per-node component label in [0..count-1]. *)

val largest_component : Graph.t -> int array
(** Node ids of the largest connected component. *)

val is_connected : Graph.t -> bool

val bfs_distances : Graph.t -> int -> int array
(** Hop distances from a source; unreachable nodes get [-1]. *)

val eccentricity_lower_bound : Graph.t -> int
(** Double-sweep BFS lower bound on the diameter (exact on trees). *)

val average_degree : Graph.t -> float
val density : Graph.t -> float

val degree_histogram : Graph.t -> int array
(** Index [d] holds the number of nodes with degree [d]. *)

val global_clustering : Graph.t -> float
(** Transitivity: 3 × triangles / open triads; 0 for triangle-free. *)

val average_local_clustering : Graph.t -> float
(** Mean over nodes of the local clustering coefficient (Watts–Strogatz). *)

val triangle_count : Graph.t -> int

val degree_assortativity : Graph.t -> float
(** Pearson correlation of endpoint degrees over edges (Newman's r):
    positive for hub-to-hub mixing, negative for hub-to-leaf (typical of
    BA graphs), 0 when degrees are uncorrelated or undefined (fewer than
    two edges, or constant degrees — e.g. a torus). *)
