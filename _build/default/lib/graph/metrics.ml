let connected_components g =
  let n = Graph.node_count g in
  let label = Array.make n (-1) in
  let count = ref 0 in
  let queue = Queue.create () in
  for s = 0 to n - 1 do
    if label.(s) < 0 then begin
      let c = !count in
      incr count;
      label.(s) <- c;
      Queue.push s queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Graph.iter_neighbors g u (fun v _ ->
            if label.(v) < 0 then begin
              label.(v) <- c;
              Queue.push v queue
            end)
      done
    end
  done;
  (label, !count)

let largest_component g =
  let label, count = connected_components g in
  if count = 0 then [||]
  else begin
    let sizes = Array.make count 0 in
    Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) label;
    let best = ref 0 in
    Array.iteri (fun c s -> if s > sizes.(!best) then best := c) sizes;
    let out = Array.make sizes.(!best) 0 in
    let k = ref 0 in
    Array.iteri
      (fun v c ->
        if c = !best then begin
          out.(!k) <- v;
          incr k
        end)
      label;
    out
  end

let is_connected g =
  let _, count = connected_components g in
  count <= 1

let bfs_distances g src =
  let n = Graph.node_count g in
  let dist = Array.make n (-1) in
  dist.(src) <- 0;
  let queue = Queue.create () in
  Queue.push src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Graph.iter_neighbors g u (fun v _ ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.push v queue
        end)
  done;
  dist

let farthest g src =
  let dist = bfs_distances g src in
  let best = ref src in
  Array.iteri (fun v d -> if d > dist.(!best) then best := v) dist;
  (!best, dist.(!best))

let eccentricity_lower_bound g =
  if Graph.node_count g = 0 then 0
  else begin
    let a, _ = farthest g 0 in
    let _, d = farthest g a in
    d
  end

let average_degree g =
  let n = Graph.node_count g in
  if n = 0 then 0.0 else 2.0 *. float_of_int (Graph.edge_count g) /. float_of_int n

let density g =
  let n = Graph.node_count g in
  if n < 2 then 0.0
  else 2.0 *. float_of_int (Graph.edge_count g) /. float_of_int (n * (n - 1))

let degree_histogram g =
  let maxd = Graph.max_degree g in
  let h = Array.make (maxd + 1) 0 in
  for v = 0 to Graph.node_count g - 1 do
    let d = Graph.degree g v in
    h.(d) <- h.(d) + 1
  done;
  h

let triangle_count g =
  (* for each edge (u,v) count common neighbours w > v using merge on
     sorted adjacency; each triangle counted once via ordering u < v < w *)
  let count = ref 0 in
  Graph.iter_edges g (fun _ u v ->
      let au = Graph.neighbors g u and av = Graph.neighbors g v in
      let i = ref 0 and j = ref 0 in
      let nu = Array.length au and nv = Array.length av in
      while !i < nu && !j < nv do
        let x = fst au.(!i) and y = fst av.(!j) in
        if x = y then begin
          if x > v then incr count;
          incr i;
          incr j
        end
        else if x < y then incr i
        else incr j
      done);
  !count

let degree_assortativity g =
  let m = Graph.edge_count g in
  if m < 2 then 0.0
  else begin
    (* Pearson correlation over the 2m ordered endpoint pairs *)
    let sxy = ref 0.0 and sx = ref 0.0 and sx2 = ref 0.0 in
    Graph.iter_edges g (fun _ u v ->
        let du = float_of_int (Graph.degree g u)
        and dv = float_of_int (Graph.degree g v) in
        (* both orientations, accumulated symmetrically *)
        sxy := !sxy +. (2.0 *. du *. dv);
        sx := !sx +. du +. dv;
        sx2 := !sx2 +. (du *. du) +. (dv *. dv));
    let n = 2.0 *. float_of_int m in
    let mean = !sx /. n in
    let var = (!sx2 /. n) -. (mean *. mean) in
    if var <= 1e-12 then 0.0 else ((!sxy /. n) -. (mean *. mean)) /. var
  end

let open_triads g =
  let acc = ref 0 in
  for v = 0 to Graph.node_count g - 1 do
    let d = Graph.degree g v in
    acc := !acc + (d * (d - 1) / 2)
  done;
  !acc

let global_clustering g =
  let triads = open_triads g in
  if triads = 0 then 0.0 else 3.0 *. float_of_int (triangle_count g) /. float_of_int triads

let average_local_clustering g =
  let n = Graph.node_count g in
  if n = 0 then 0.0
  else begin
    let total = ref 0.0 in
    for v = 0 to n - 1 do
      let d = Graph.degree g v in
      if d >= 2 then begin
        (* count edges among neighbours of v *)
        let nbrs = Graph.neighbor_nodes g v in
        let links = ref 0 in
        Array.iter
          (fun a ->
            Array.iter (fun b -> if a < b && Graph.mem_edge g a b then incr links) nbrs)
          nbrs;
        total := !total +. (2.0 *. float_of_int !links /. float_of_int (d * (d - 1)))
      end
    done;
    !total /. float_of_int n
  end
