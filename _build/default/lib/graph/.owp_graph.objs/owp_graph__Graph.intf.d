lib/graph/graph.mli:
