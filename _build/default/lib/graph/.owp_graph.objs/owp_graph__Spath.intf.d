lib/graph/spath.mli: Graph
