lib/graph/spath.ml: Array Graph Hashtbl List Option Owp_util
