lib/graph/gen.ml: Array Graph Hashtbl List Owp_util
