lib/graph/gen.mli: Graph Owp_util
