lib/graph/metrics.ml: Array Graph Queue
