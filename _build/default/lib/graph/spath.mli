(** Weighted shortest paths (Dijkstra over non-negative edge lengths).

    Used by the overlay-quality analysis: once peers connect to their
    preferred neighbours, how much longer are routes through the overlay
    than through the full potential graph (the {e stretch})? *)

val dijkstra : Graph.t -> length:(int -> float) -> int -> float array
(** [dijkstra g ~length src] returns per-node distances from [src],
    where [length eid] is the non-negative length of an edge.
    Unreachable nodes get [infinity].
    @raise Invalid_argument on a negative length. *)

val dijkstra_restricted :
  Graph.t -> length:(int -> float) -> allowed:(int -> bool) -> int -> float array
(** Same, using only edges with [allowed eid]. *)

val path_stretch :
  Graph.t ->
  length:(int -> float) ->
  subgraph:(int -> bool) ->
  samples:(int * int) list ->
  float list
(** For each sampled (src, dst) pair, the ratio
    (distance using only [subgraph] edges) / (distance in the full
    graph).  Pairs unreachable in the subgraph yield [infinity]; pairs
    unreachable in the full graph are skipped. *)
