type t = {
  n : int;
  edges : (int * int) array; (* edge id -> (u, v), u < v *)
  adj : (int * int) array array; (* node -> sorted array of (neighbor, edge id) *)
}

module Builder = struct
  type t = {
    bn : int;
    seen : (int * int, unit) Hashtbl.t;
    mutable acc : (int * int) list; (* reversed insertion order, normalised u < v *)
    mutable count : int;
  }

  let create n =
    if n < 0 then invalid_arg "Graph.Builder.create: negative node count";
    { bn = n; seen = Hashtbl.create 64; acc = []; count = 0 }

  let normalize b u v =
    if u = v then invalid_arg "Graph.Builder: self-loop";
    if u < 0 || v < 0 || u >= b.bn || v >= b.bn then
      invalid_arg "Graph.Builder: endpoint out of range";
    if u < v then (u, v) else (v, u)

  let mem_edge b u v = Hashtbl.mem b.seen (normalize b u v)

  let add_edge b u v =
    let key = normalize b u v in
    if Hashtbl.mem b.seen key then false
    else begin
      Hashtbl.add b.seen key ();
      b.acc <- key :: b.acc;
      b.count <- b.count + 1;
      true
    end

  let edge_count b = b.count

  let build b =
    let m = b.count in
    let edges = Array.make m (0, 0) in
    List.iteri (fun i e -> edges.(m - 1 - i) <- e) b.acc;
    let deg = Array.make b.bn 0 in
    Array.iter
      (fun (u, v) ->
        deg.(u) <- deg.(u) + 1;
        deg.(v) <- deg.(v) + 1)
      edges;
    let adj = Array.init b.bn (fun i -> Array.make deg.(i) (0, 0)) in
    let fill = Array.make b.bn 0 in
    Array.iteri
      (fun eid (u, v) ->
        adj.(u).(fill.(u)) <- (v, eid);
        fill.(u) <- fill.(u) + 1;
        adj.(v).(fill.(v)) <- (u, eid);
        fill.(v) <- fill.(v) + 1)
      edges;
    Array.iter (fun a -> Array.sort (fun (x, _) (y, _) -> compare x y) a) adj;
    { n = b.bn; edges; adj }
end

let node_count g = g.n
let edge_count g = Array.length g.edges
let edge_endpoints g e = g.edges.(e)
let edges g = g.edges
let degree g u = Array.length g.adj.(u)
let neighbors g u = g.adj.(u)
let neighbor_nodes g u = Array.map fst g.adj.(u)

let find_edge g u v =
  let a = g.adj.(u) in
  let lo = ref 0 and hi = ref (Array.length a - 1) in
  let found = ref None in
  while !found = None && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w, eid = a.(mid) in
    if w = v then found := Some eid else if w < v then lo := mid + 1 else hi := mid - 1
  done;
  !found

let mem_edge g u v = find_edge g u v <> None

let other_endpoint g e u =
  let a, b = g.edges.(e) in
  if a = u then b
  else if b = u then a
  else invalid_arg "Graph.other_endpoint: node is not an endpoint"

let iter_edges g f = Array.iteri (fun eid (u, v) -> f eid u v) g.edges

let fold_edges g f init =
  let acc = ref init in
  iter_edges g (fun eid u v -> acc := f !acc eid u v);
  !acc

let iter_neighbors g u f = Array.iter (fun (v, eid) -> f v eid) g.adj.(u)

let max_degree g =
  let d = ref 0 in
  for i = 0 to g.n - 1 do
    d := max !d (degree g i)
  done;
  !d

let of_edge_list n pairs =
  let b = Builder.create n in
  List.iter (fun (u, v) -> ignore (Builder.add_edge b u v)) pairs;
  Builder.build b

let complement_degree_sum g =
  let acc = ref 0 in
  for i = 0 to g.n - 1 do
    acc := !acc + (g.n - 1 - degree g i)
  done;
  !acc

let induced_subgraph g nodes =
  let k = Array.length nodes in
  let new_of_old = Hashtbl.create k in
  Array.iteri (fun ni oi -> Hashtbl.replace new_of_old oi ni) nodes;
  let b = Builder.create k in
  Array.iteri
    (fun ni oi ->
      iter_neighbors g oi (fun v _ ->
          match Hashtbl.find_opt new_of_old v with
          | Some nv when nv > ni -> ignore (Builder.add_edge b ni nv)
          | _ -> ()))
    nodes;
  (Builder.build b, Array.copy nodes)
