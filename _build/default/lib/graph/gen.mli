(** Random and structured graph generators.

    These produce the overlay topologies used throughout the experiments:
    Erdős–Rényi and fixed-size random graphs, preferential attachment
    (Barabási–Albert), small-world rings (Watts–Strogatz), random
    geometric graphs (the "distance metric" scenario of the paper's
    introduction), grids/tori, bipartite and power-law configuration
    models.  All take an explicit {!Owp_util.Prng.t} for reproducibility. *)

val gnp : Owp_util.Prng.t -> n:int -> p:float -> Graph.t
(** Erdős–Rényi [G(n,p)], geometric edge skipping, O(n + m) expected. *)

val gnm : Owp_util.Prng.t -> n:int -> m:int -> Graph.t
(** Uniform graph with exactly [m] distinct edges.
    @raise Invalid_argument if [m] exceeds [n(n-1)/2]. *)

val complete : int -> Graph.t

val barabasi_albert : Owp_util.Prng.t -> n:int -> m:int -> Graph.t
(** Preferential attachment: each arriving node attaches to [m] existing
    nodes chosen proportionally to degree.  Requires [n > m >= 1]. *)

val watts_strogatz : Owp_util.Prng.t -> n:int -> k:int -> beta:float -> Graph.t
(** Ring lattice where each node links to its [k] nearest neighbours on
    each side, then each lattice edge is rewired with probability
    [beta].  Requires [n > 2 * k]. *)

val random_geometric :
  Owp_util.Prng.t -> n:int -> radius:float -> Graph.t * (float * float) array
(** [n] uniform points in the unit square, connected when their Euclidean
    distance is below [radius].  Also returns the coordinates (used by the
    latency-metric preference generators). *)

val grid : width:int -> height:int -> Graph.t
val torus : width:int -> height:int -> Graph.t

val random_bipartite : Owp_util.Prng.t -> left:int -> right:int -> p:float -> Graph.t
(** Nodes [0..left-1] on one side, [left..left+right-1] on the other. *)

val configuration_power_law :
  Owp_util.Prng.t -> n:int -> exponent:float -> min_degree:int -> Graph.t
(** Configuration-model graph with power-law degree targets
    [P(d) ∝ d^-exponent]; self-loops and parallel edges from the pairing
    are discarded, so realised degrees are close to (at most) targets. *)

val random_regular : Owp_util.Prng.t -> n:int -> d:int -> Graph.t
(** Random [d]-regular graph by repeated stub pairing; falls back to the
    best attempt (possibly slightly irregular) after retries. *)

val ring : int -> Graph.t
val star : int -> Graph.t
val path : int -> Graph.t
