let check_basic ~quota ~list_len =
  if quota <= 0 then invalid_arg "Satisfaction: quota must be positive";
  if list_len <= 0 then invalid_arg "Satisfaction: list_len must be positive"

let delta ~quota ~list_len ~rank ~position =
  check_basic ~quota ~list_len;
  if rank < 0 || rank >= list_len then invalid_arg "Satisfaction.delta: rank out of range";
  if position < 0 || position >= quota then
    invalid_arg "Satisfaction.delta: position out of range";
  let b = float_of_int quota and l = float_of_int list_len in
  (1.0 /. b) -. (float_of_int (rank - position) /. (b *. l))

let static_delta ~quota ~list_len ~rank =
  check_basic ~quota ~list_len;
  if rank < 0 || rank >= list_len then
    invalid_arg "Satisfaction.static_delta: rank out of range";
  let b = float_of_int quota and l = float_of_int list_len in
  (1.0 /. b) -. (float_of_int rank /. (b *. l))

let dynamic_delta ~quota ~list_len ~position =
  check_basic ~quota ~list_len;
  if position < 0 || position >= quota then
    invalid_arg "Satisfaction.dynamic_delta: position out of range";
  float_of_int position /. (float_of_int quota *. float_of_int list_len)

let checked_ranks ~quota ~list_len ranks =
  check_basic ~quota ~list_len;
  let c = List.length ranks in
  if c > quota then invalid_arg "Satisfaction: more connections than quota";
  List.iter
    (fun r ->
      if r < 0 || r >= list_len then invalid_arg "Satisfaction: rank out of range")
    ranks;
  c

let of_ranks ~quota ~list_len ranks =
  let c = checked_ranks ~quota ~list_len ranks in
  let b = float_of_int quota and l = float_of_int list_len and cf = float_of_int c in
  let rank_sum = float_of_int (List.fold_left ( + ) 0 ranks) in
  (cf /. b) +. (cf *. (cf -. 1.0) /. (2.0 *. b *. l)) -. (rank_sum /. (b *. l))

let static_of_ranks ~quota ~list_len ranks =
  let c = checked_ranks ~quota ~list_len ranks in
  let b = float_of_int quota and l = float_of_int list_len and cf = float_of_int c in
  let rank_sum = float_of_int (List.fold_left ( + ) 0 ranks) in
  (cf /. b) -. (rank_sum /. (b *. l))

let perfect ~quota ~list_len =
  of_ranks ~quota ~list_len (List.init quota (fun r -> r))

(* Figure 1 of the paper: b_i = 4, L_i = 7 and connections occupying
   preference ranks 0, 1, 3 and 5; the paper reports S_i = 0.893
   (exactly 25/28). *)
let figure1_example () = of_ranks ~quota:4 ~list_len:7 [ 0; 1; 3; 5 ]
