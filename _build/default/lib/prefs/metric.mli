(** Suitability metrics (§1 of the paper).

    Every peer may rank its neighbours by an individually chosen, private
    metric — distance, interests, recommendations, transaction history or
    available resources.  A metric here is a scoring function
    [score i j]: the desirability of peer [j] from peer [i]'s point of
    view (higher is better).  Metrics never leave the node: the
    algorithms below only ever observe ranks and ΔS̄ values.

    Stateless metrics are derived by hashing [(seed, i, j)], so they cost
    O(1) memory regardless of graph size and are reproducible. *)

type t = private { name : string; score : int -> int -> float }

val name : t -> string
val score : t -> int -> int -> float

val latency : (float * float) array -> t
(** Euclidean-proximity metric over node coordinates: closer is better.
    Symmetric, hence an acyclic ("global potential") preference system
    need not result — distances are symmetric but rankings differ. *)

val interest : seed:int -> dims:int -> t
(** Cosine-like interest-profile similarity: each node gets a
    pseudo-random profile in [\[0,1\]^dims]; score is the dot product.
    Symmetric. *)

val bandwidth : seed:int -> t
(** Resource metric: every node ranks others by the target's capacity
    alone.  Induces a master ordering, i.e. an acyclic preference system
    in the sense of Gai et al. (the case where stabilization is known to
    be guaranteed). *)

val transaction_history : seed:int -> t
(** Asymmetric pseudo-random history counts: [score i j] and
    [score j i] are independent.  The canonical source of cyclic
    preference systems. *)

val uniform : seed:int -> t
(** Independent uniform scores per ordered pair (fully adversarial). *)

val symmetric_uniform : seed:int -> t
(** Uniform score per unordered pair: both endpoints agree on the edge
    value (the classic symmetric/"global matching" regime). *)

val combine : string -> (float * t) list -> t
(** Weighted linear combination of metrics, e.g. 0.7·latency + 0.3·interest. *)
