lib/prefs/satisfaction.ml: List
