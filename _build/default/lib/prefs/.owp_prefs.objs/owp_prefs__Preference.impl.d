lib/prefs/preference.ml: Array Graph List Metric Owp_util Satisfaction
