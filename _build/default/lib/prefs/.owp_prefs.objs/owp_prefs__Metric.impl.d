lib/prefs/metric.ml: Array Int64 List
