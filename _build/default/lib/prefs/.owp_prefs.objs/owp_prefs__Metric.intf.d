lib/prefs/metric.mli:
