lib/prefs/weights.ml: Array Float Graph Hashtbl Preference Satisfaction
