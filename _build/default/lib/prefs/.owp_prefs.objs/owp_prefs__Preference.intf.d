lib/prefs/preference.mli: Graph Metric Owp_util
