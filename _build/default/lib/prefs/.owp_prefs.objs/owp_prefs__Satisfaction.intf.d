lib/prefs/satisfaction.mli:
