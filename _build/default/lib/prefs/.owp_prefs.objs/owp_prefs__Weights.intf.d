lib/prefs/weights.mli: Graph Preference
