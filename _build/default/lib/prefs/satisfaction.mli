(** Node satisfaction — the paper's optimization metric (§3).

    For a node [i] with preference-list length [L_i], quota [b_i] and an
    ordered connection list [C_i] (best first, [c_i = |C_i| <= b_i]),
    satisfaction is (eq. 1):

    {v S_i = c_i/b_i + c_i(c_i-1)/(2 b_i L_i) - (Σ_{j∈C_i} R_i(j)) / (b_i L_i) v}

    where [R_i(j) ∈ {0..L_i-1}] is [j]'s rank in [i]'s preference list.
    [S_i ∈ [0,1]], maximal when the top [b_i] neighbours are connected.

    The per-connection increment of taking a node of rank [r = R_i(j)]
    as the connection at list position [q = Q_i(j) ∈ {0..c_i-1}] is
    (eq. 4)

    {v ΔS_ij = 1/b_i - (r - q)/(b_i·L_i)
             = (1 - r/L_i)/b_i  +  q/(b_i·L_i) v}

    i.e. a static part [(1 - r/L_i)/b_i] that depends only on the
    preference rank, plus a dynamic part [q/(b_i·L_i)] that depends on
    the execution.  Dropping the dynamic part gives the modified
    increment (eq. 5) [ΔS̄_ij = 1/b_i - r/(b_i·L_i)] and the modified
    satisfaction (eq. 6). *)

val delta : quota:int -> list_len:int -> rank:int -> position:int -> float
(** Full increment ΔS_ij of eq. 4: [rank] = R_i(j), [position] = Q_i(j)
    (the number of already-chosen better connections, [c_i] at choice
    time). Requires [0 <= rank < list_len] and [0 <= position < quota]. *)

val static_delta : quota:int -> list_len:int -> rank:int -> float
(** Modified (execution-independent) increment ΔS̄_ij of eq. 5. *)

val dynamic_delta : quota:int -> list_len:int -> position:int -> float
(** The discarded dynamic part, [position/(quota · list_len)]. *)

val of_ranks : quota:int -> list_len:int -> int list -> float
(** Satisfaction (eq. 1) of a connection set given by the ranks
    [R_i(j)] of its members (any order; duplicates are a programming
    error).  Connection-list positions [Q_i] are assigned by sorting the
    ranks increasingly, as the paper's ordered list [C_i] prescribes.
    @raise Invalid_argument if more than [quota] ranks are supplied or a
    rank is out of range. *)

val static_of_ranks : quota:int -> list_len:int -> int list -> float
(** Modified satisfaction (eq. 6) of a connection set. *)

val perfect : quota:int -> list_len:int -> float
(** Satisfaction of the top-[quota] connection set (equals 1.0). *)

val figure1_example : unit -> float
(** The worked example of the paper's Figure 1: [b_i = 4], [L_i = 7],
    connections at preference ranks 0, 1, 3 and 5 — evaluates to 0.893
    (to three decimals). *)
