(** Preference systems (§2 of the paper).

    A preference system attaches to every node [i] of a graph a strict
    total order [L_i] over its neighbourhood [Γ_i] (the preference list,
    best first; [R_i(j) ∈ {0..|L_i|-1}] with 0 the most desirable) and a
    connection quota [b_i].  Quotas are clamped to [b_i <= |L_i|] as the
    paper assumes; isolated nodes get quota 0 and satisfaction 0. *)

type t

val create : Graph.t -> quota:int array -> lists:int array array -> t
(** [lists.(i)] must be a permutation of node [i]'s neighbourhood,
    best first.  @raise Invalid_argument otherwise. *)

val random : Owp_util.Prng.t -> Graph.t -> quota:int array -> t
(** Uniformly random preference lists — the adversarial default. *)

val of_metric : Graph.t -> quota:int array -> Metric.t -> t
(** Ranks each neighbourhood by decreasing metric score, breaking score
    ties by lower node id. *)

val of_scores : Graph.t -> quota:int array -> (int -> int -> float) -> t

val uniform_quota : Graph.t -> int -> int array
(** Constant quota vector [b] for every node (clamping happens in
    {!create}). *)

val graph : t -> Graph.t
val quota : t -> int -> int
val max_quota : t -> int
(** The paper's [b_max] (1 when the graph has no connectable node). *)

val list : t -> int -> int array
(** Preference list of a node, best first. Do not mutate. *)

val list_len : t -> int -> int
val rank : t -> int -> int -> int
(** [rank t i j] = [R_i(j)]. @raise Not_found if [j ∉ Γ_i]. *)

val preferred : t -> int -> int -> int -> bool
(** [preferred t i j k]: does [i] strictly prefer [j] over [k]? *)

(** {2 Satisfaction accounting} *)

val satisfaction : t -> int -> int list -> float
(** [satisfaction t i conns] — eq. 1 over the connections [conns ⊆ Γ_i].
    Isolated nodes (and quota-0 nodes) yield 0. *)

val static_satisfaction : t -> int -> int list -> float
(** Eq. 6 (modified satisfaction). *)

val total_satisfaction : t -> int list array -> float
(** Sum of eq. 1 over all nodes, given per-node connection lists. *)

val total_static_satisfaction : t -> int list array -> float

(** {2 Structure of the preference system} *)

val find_preference_cycle : t -> int list option
(** A cyclic sequence [n_0 .. n_{k-1}] (k >= 3) of pairwise-adjacent
    consecutive nodes where each [n_i] strictly prefers [n_{i+1}] over
    [n_{i-1}] — the destabilising structure identified by Gai et al.,
    which acyclic systems exclude.  O(Σ_v deg(v)²) worst case. *)

val is_acyclic : t -> bool
