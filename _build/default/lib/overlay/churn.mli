(** Dynamicity ablation — the paper's stated future work (§7).

    The universe of peers and their (static) preference lists live on a
    fixed potential graph; peers join and leave over time.  After each
    event the overlay is repaired either by rebuilding the matching from
    scratch or by the incremental greedy rule the paper's conclusion
    conjectures ("can the same greedy strategy tackle joins/leaves?"):
    keep all surviving locked edges and let freed capacity re-match
    locally, heaviest edge first.  Experiment E10 compares satisfaction,
    solution weight and disruption (edges changed) between the two. *)

type event = Join of int | Leave of int

type repair = Full_rebuild | Incremental

type step = {
  event : event;
  active_nodes : int;
  total_satisfaction : float;  (** over active nodes, eq. 1 *)
  weight : float;  (** eq. 9 weight of the current matching *)
  added : int;  (** edges added by the repair *)
  removed : int;  (** matched edges lost (peer departure + rebuild changes) *)
}

val random_events :
  Owp_util.Prng.t -> universe:Graph.t -> initially_active:bool array -> steps:int -> event list
(** Alternates plausible joins and leaves (only leaves active peers,
    only joins inactive ones); keeps at least two peers active. *)

val simulate :
  prefs:Preference.t ->
  initially_active:bool array ->
  events:event list ->
  repair:repair ->
  step list
(** Run the event sequence and return per-step measurements.  The
    initial matching is built by the repair strategy from an empty
    state.  @raise Invalid_argument on malformed events (leaving an
    inactive peer, joining an active one). *)
