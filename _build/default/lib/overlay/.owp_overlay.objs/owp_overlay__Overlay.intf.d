lib/overlay/overlay.mli: Graph Metric Owp_core Preference
