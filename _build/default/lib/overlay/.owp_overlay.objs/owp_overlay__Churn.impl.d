lib/overlay/churn.ml: Array Fun Graph List Owp_util Preference Seq Weights
