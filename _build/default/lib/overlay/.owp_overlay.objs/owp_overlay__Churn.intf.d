lib/overlay/churn.mli: Graph Owp_util Preference
