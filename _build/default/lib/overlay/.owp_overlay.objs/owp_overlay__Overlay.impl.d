lib/overlay/overlay.ml: Array Graph Metric Owp_core Preference
