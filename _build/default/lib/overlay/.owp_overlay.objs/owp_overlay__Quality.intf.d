lib/overlay/quality.mli: Format Owp_matching Preference
