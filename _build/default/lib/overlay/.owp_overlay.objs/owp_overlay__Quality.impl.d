lib/overlay/quality.ml: Array Format Graph Owp_matching Owp_util Preference
