module Prng = Owp_util.Prng

type event = Join of int | Leave of int

type repair = Full_rebuild | Incremental

type step = {
  event : event;
  active_nodes : int;
  total_satisfaction : float;
  weight : float;
  added : int;
  removed : int;
}

let random_events rng ~universe ~initially_active ~steps =
  let n = Graph.node_count universe in
  let active = Array.copy initially_active in
  let active_count = ref (Array.fold_left (fun a b -> if b then a + 1 else a) 0 active) in
  let events = ref [] in
  for _ = 1 to steps do
    let want_leave = Prng.bool rng && !active_count > 2 in
    let candidates =
      Array.of_seq
        (Seq.filter
           (fun v -> if want_leave then active.(v) else not active.(v))
           (Seq.init n Fun.id))
    in
    if Array.length candidates > 0 then begin
      let v = Prng.pick rng candidates in
      if want_leave then begin
        active.(v) <- false;
        decr active_count;
        events := Leave v :: !events
      end
      else begin
        active.(v) <- true;
        incr active_count;
        events := Join v :: !events
      end
    end
  done;
  List.rev !events

(* Mutable matching state over the universe graph. *)
type state = {
  g : Graph.t;
  w : Weights.t;
  active : bool array;
  selected : bool array; (* per edge id *)
  residual : int array;
  order : int array; (* all edges, heaviest first *)
}

let remove_edge st eid =
  if st.selected.(eid) then begin
    let u, v = Graph.edge_endpoints st.g eid in
    st.selected.(eid) <- false;
    st.residual.(u) <- st.residual.(u) + 1;
    st.residual.(v) <- st.residual.(v) + 1
  end

let add_pass st =
  (* heaviest-first extension over active residual-capacity edges: this
     is LIC (Heaviest_first) seeded with the surviving matching *)
  let added = ref 0 in
  Array.iter
    (fun eid ->
      if not st.selected.(eid) then begin
        let u, v = Graph.edge_endpoints st.g eid in
        if
          st.active.(u) && st.active.(v) && st.residual.(u) > 0 && st.residual.(v) > 0
        then begin
          st.selected.(eid) <- true;
          st.residual.(u) <- st.residual.(u) - 1;
          st.residual.(v) <- st.residual.(v) - 1;
          incr added
        end
      end)
    st.order;
  !added

let clear st =
  Graph.iter_edges st.g (fun eid _ _ -> remove_edge st eid)

let measure prefs st event =
  let n = Graph.node_count st.g in
  let active_nodes = ref 0 and sat = ref 0.0 and weight = ref 0.0 in
  for v = 0 to n - 1 do
    if st.active.(v) then begin
      incr active_nodes;
      let conns = ref [] in
      Graph.iter_neighbors st.g v (fun u eid -> if st.selected.(eid) then conns := u :: !conns);
      sat := !sat +. Preference.satisfaction prefs v !conns
    end
  done;
  Graph.iter_edges st.g (fun eid _ _ ->
      if st.selected.(eid) then weight := !weight +. Weights.weight st.w eid);
  fun ~added ~removed ->
    {
      event;
      active_nodes = !active_nodes;
      total_satisfaction = !sat;
      weight = !weight;
      added;
      removed;
    }

let simulate ~prefs ~initially_active ~events ~repair =
  let g = Preference.graph prefs in
  let n = Graph.node_count g in
  if Array.length initially_active <> n then
    invalid_arg "Churn.simulate: active mask arity mismatch";
  let w = Weights.of_preference prefs in
  let order = Array.init (Graph.edge_count g) Fun.id in
  Array.sort (fun e f -> Weights.compare_edges w f e) order;
  let st =
    {
      g;
      w;
      active = Array.copy initially_active;
      selected = Array.make (Graph.edge_count g) false;
      residual = Array.init n (Preference.quota prefs);
      order;
    }
  in
  (* initial construction *)
  ignore (add_pass st);
  let snapshot () = Array.copy st.selected in
  let steps = ref [] in
  List.iter
    (fun event ->
      let before = snapshot () in
      let removed = ref 0 in
      (match event with
      | Leave v ->
          if not st.active.(v) then invalid_arg "Churn.simulate: leaving inactive peer";
          st.active.(v) <- false;
          Graph.iter_neighbors g v (fun _ eid ->
              if st.selected.(eid) then begin
                remove_edge st eid;
                incr removed
              end)
      | Join v ->
          if st.active.(v) then invalid_arg "Churn.simulate: joining active peer";
          st.active.(v) <- true);
      (match repair with
      | Incremental -> ignore (add_pass st)
      | Full_rebuild ->
          clear st;
          ignore (add_pass st));
      (* count churn-induced changes against the pre-event matching *)
      let added_total = ref 0 and removed_total = ref !removed in
      Array.iteri
        (fun eid was ->
          let is = st.selected.(eid) in
          if was && not is then ()
          else if (not was) && is then incr added_total)
        before;
      (match repair with
      | Full_rebuild ->
          removed_total := 0;
          Array.iteri
            (fun eid was -> if was && not st.selected.(eid) then incr removed_total)
            before
      | Incremental -> ());
      let mk = measure prefs st event in
      steps := mk ~added:!added_total ~removed:!removed_total :: !steps)
    events;
  List.rev !steps
