(** Connection-quality reporting for a matched overlay. *)

type t = {
  nodes : int;  (** nodes with a non-empty preference list *)
  total : float;  (** Σ S_i *)
  mean : float;
  min : float;
  p05 : float;
  median : float;
  jain : float;  (** Jain fairness index of the satisfaction profile *)
  saturated_fraction : float;  (** nodes that filled their whole quota *)
  fully_satisfied_fraction : float;  (** nodes with S_i = 1 (top-b set) *)
}

val measure : Preference.t -> Owp_matching.Bmatching.t -> t

val pp : Format.formatter -> t -> unit
