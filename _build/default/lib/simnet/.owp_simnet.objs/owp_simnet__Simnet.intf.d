lib/simnet/simnet.mli:
