lib/simnet/simnet.ml: Float Hashtbl Option Owp_util
