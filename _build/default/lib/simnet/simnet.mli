(** Deterministic discrete-event message-passing simulator.

    The paper's LID protocol is asynchronous: peers exchange PROP/REJ
    messages with arbitrary (finite) delays.  This simulator provides the
    substrate — a virtual-time event queue, per-link delay models,
    optional per-link FIFO ordering, fault injection and message
    accounting — so distributed algorithms can be executed reproducibly
    and their message/latency complexity measured.

    The simulator is polymorphic in the message type ['m]; protocol
    state lives with the protocol, which registers a delivery handler. *)

type 'm t

type delay_model =
  | Unit  (** every message takes exactly 1 time unit *)
  | Uniform of float * float  (** iid uniform in [lo, hi] *)
  | Exponential of float  (** iid exponential with the given mean *)
  | PerLink of (int -> int -> float)  (** deterministic function of (src, dst) *)

type faults = {
  drop_probability : float;  (** each message lost independently *)
  duplicate_probability : float;  (** each message delivered twice *)
}

val no_faults : faults

val create :
  ?seed:int ->
  ?fifo:bool ->
  ?faults:faults ->
  nodes:int ->
  delay:delay_model ->
  unit ->
  'm t
(** [fifo] (default [true]) forces per-directed-link in-order delivery by
    clamping delivery times; LID is analysed under reliable channels, and
    FIFO matches a TCP-like overlay link. *)

val node_count : _ t -> int
val now : _ t -> float
(** Current virtual time. *)

val set_handler : 'm t -> (src:int -> dst:int -> 'm -> unit) -> unit
(** Must be installed before [run].  The handler may call {!send}. *)

val send : 'm t -> src:int -> dst:int -> 'm -> unit
(** Enqueue a message for future delivery (subject to faults). *)

val schedule : 'm t -> delay:float -> (unit -> unit) -> unit
(** Run a callback at [now + delay] — used for churn events and timers. *)

val run : 'm t -> unit
(** Process events until quiescence.
    @raise Failure if no handler was installed and a message is due. *)

val run_until : 'm t -> float -> unit
(** Process events with time <= the horizon; later events remain queued. *)

val step : 'm t -> bool
(** Deliver exactly one event; [false] when the queue is empty. *)

(** {2 Accounting} *)

val messages_sent : _ t -> int
val messages_delivered : _ t -> int
val messages_dropped : _ t -> int
val events_processed : _ t -> int

val set_trace : 'm t -> (float -> src:int -> dst:int -> 'm -> unit) option -> unit
(** Observation hook invoked at each delivery. *)
