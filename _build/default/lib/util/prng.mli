(** Deterministic, seedable pseudo-random number generation.

    The benchmarks and the discrete-event simulator both require bitwise
    reproducibility across runs, so the library carries its own generator
    instead of relying on [Stdlib.Random]'s global state.  The generator is
    xoshiro256** (Blackman & Vigna), seeded through SplitMix64 so that any
    64-bit integer seed yields a well-mixed initial state. *)

type t
(** Mutable generator state.  Not thread-safe; create one per domain. *)

val create : int -> t
(** [create seed] builds a generator from a 64-bit seed via SplitMix64. *)

val split : t -> t
(** [split g] derives an independent generator from [g], advancing [g].
    Used to hand each simulated node its own stream. *)

val copy : t -> t
(** [copy g] duplicates the current state (same future outputs). *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in the inclusive range [\[lo, hi\]]. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli g p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential g mean] samples Exp with the given mean ([mean > 0]). *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Box–Muller normal sample. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement g k n] draws [k] distinct values from
    [\[0, n)], in random order.  Requires [0 <= k <= n]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val permutation : t -> int -> int array
(** [permutation g n] is a uniform permutation of [0..n-1]. *)
