(** Descriptive statistics over float samples, used by the experiment
    harness to aggregate per-seed measurements into table rows. *)

type summary = {
  n : int;
  mean : float;
  stddev : float; (* sample standard deviation; 0 when n < 2 *)
  min : float;
  max : float;
  median : float;
  p05 : float;
  p95 : float;
}

val mean : float array -> float
val variance : float array -> float
(** Unbiased sample variance; 0 when fewer than two samples. *)

val stddev : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,1\]], linear interpolation between
    order statistics.  @raise Invalid_argument on an empty array. *)

val summarize : float array -> summary
(** @raise Invalid_argument on an empty array. *)

val histogram : float array -> bins:int -> (float * float * int) array
(** [(lo, hi, count)] per bin over the sample range. *)

val pp_summary : Format.formatter -> summary -> unit
