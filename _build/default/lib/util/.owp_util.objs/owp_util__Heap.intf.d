lib/util/heap.mli:
