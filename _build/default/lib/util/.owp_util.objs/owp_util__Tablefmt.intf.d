lib/util/tablefmt.mli:
