lib/util/dsu.mli:
