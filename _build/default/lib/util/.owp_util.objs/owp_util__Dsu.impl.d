lib/util/dsu.ml: Array
