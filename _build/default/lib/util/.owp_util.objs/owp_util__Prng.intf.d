lib/util/prng.mli:
