type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64: used only to expand a user seed into the 256-bit xoshiro
   state, as recommended by the xoshiro authors. *)
let splitmix_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix_next state in
  let s1 = splitmix_next state in
  let s2 = splitmix_next state in
  let s3 = splitmix_next state in
  { s0; s1; s2; s3 }

let copy g = { s0 = g.s0; s1 = g.s1; s2 = g.s2; s3 = g.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 g =
  let open Int64 in
  let result = mul (rotl (mul g.s1 5L) 7) 9L in
  let t = shift_left g.s1 17 in
  g.s2 <- logxor g.s2 g.s0;
  g.s3 <- logxor g.s3 g.s1;
  g.s1 <- logxor g.s1 g.s2;
  g.s0 <- logxor g.s0 g.s3;
  g.s2 <- logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

let split g =
  let seed = Int64.to_int (bits64 g) in
  create (seed lxor 0x5851F42D)

(* Lemire-style rejection-free-enough bounded int: take the high bits and
   use rejection sampling to remove modulo bias. *)
let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  if bound land (bound - 1) = 0 then
    (* power of two: mask the top bits *)
    Int64.to_int (Int64.logand (bits64 g) (Int64.of_int (bound - 1)))
  else begin
    let rec draw () =
      (* 62 usable bits: OCaml ints are 63-bit, so taking 62 keeps the
         value non-negative after Int64.to_int *)
      let r = Int64.to_int (Int64.shift_right_logical (bits64 g) 2) in
      let v = r mod bound in
      if r - v > max_int - bound + 1 then draw () else v
    in
    draw ()
  end

let int_in g lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int g (hi - lo + 1)

let float g bound =
  (* 53 random bits into [0,1) then scale *)
  let r = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) in
  r *. (1.0 /. 9007199254740992.0) *. bound

let bool g = Int64.compare (Int64.logand (bits64 g) 1L) 0L <> 0

let bernoulli g p = float g 1.0 < p

let exponential g mean =
  if mean <= 0.0 then invalid_arg "Prng.exponential: mean must be positive";
  let u = 1.0 -. float g 1.0 in
  -.mean *. log u

let gaussian g ~mu ~sigma =
  let u1 = 1.0 -. float g 1.0 and u2 = float g 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let shuffle_in_place g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation g n =
  let a = Array.init n (fun i -> i) in
  shuffle_in_place g a;
  a

let sample_without_replacement g k n =
  if k < 0 || k > n then invalid_arg "Prng.sample_without_replacement";
  if 2 * k >= n then Array.sub (permutation g n) 0 k
  else begin
    (* hash-set based rejection sampling: fast when k << n *)
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let v = int g n in
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out.(!filled) <- v;
        incr filled
      end
    done;
    out
  end

let pick g a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int g (Array.length a))
