(** Disjoint-set union (union–find) with path compression and union by
    rank.  Used for connected-component computations on generated graphs. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets labelled [0..n-1]. *)

val find : t -> int -> int
(** Canonical representative of the element's set. *)

val union : t -> int -> int -> bool
(** Merges two sets; returns [true] iff they were distinct. *)

val same : t -> int -> int -> bool
val size : t -> int -> int
(** Size of the set containing the element. *)

val count_sets : t -> int
(** Number of distinct sets currently. *)
