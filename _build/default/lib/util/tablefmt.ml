type align = Left | Right

type row = Cells of string list | Separator

type t = {
  title : string option;
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ?title cols =
  { title; headers = List.map fst cols; aligns = List.map snd cols; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Tablefmt.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_rows t rows = List.iter (add_row t) rows
let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let rows = List.rev t.rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  measure t.headers;
  List.iter (function Cells c -> measure c | Separator -> ()) rows;
  let buf = Buffer.create 1024 in
  let pad align width s =
    let padding = String.make (max 0 (width - String.length s)) ' ' in
    match align with Left -> s ^ padding | Right -> padding ^ s
  in
  let rule () =
    Array.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) '-')) widths;
    Buffer.add_string buf "+\n"
  in
  let line cells =
    List.iteri
      (fun i c ->
        Buffer.add_string buf "| ";
        Buffer.add_string buf (pad (List.nth t.aligns i) widths.(i) c);
        Buffer.add_char buf ' ')
      cells;
    Buffer.add_string buf "|\n"
  in
  (match t.title with
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n'
  | None -> ());
  rule ();
  line t.headers;
  rule ();
  List.iter (function Cells c -> line c | Separator -> rule ()) rows;
  rule ();
  Buffer.contents buf

let print t = print_string (render t)

let fcell x = Printf.sprintf "%.4f" x
let fcell2 x = Printf.sprintf "%.2f" x
let icell = string_of_int
let pct x = Printf.sprintf "%.1f%%" (100.0 *. x)
