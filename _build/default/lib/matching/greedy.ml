let run_restricted w ~capacity ~allowed =
  let g = Weights.graph w in
  let m = Graph.edge_count g in
  let order = Array.init m (fun e -> e) in
  (* descending: heavier first *)
  Array.sort (fun e f -> Weights.compare_edges w f e) order;
  let residual = Array.copy capacity in
  let chosen = ref [] in
  Array.iter
    (fun eid ->
      if allowed eid then begin
        let u, v = Graph.edge_endpoints g eid in
        if residual.(u) > 0 && residual.(v) > 0 then begin
          residual.(u) <- residual.(u) - 1;
          residual.(v) <- residual.(v) - 1;
          chosen := eid :: !chosen
        end
      end)
    order;
  Bmatching.of_edge_ids g ~capacity (List.rev !chosen)

let run w ~capacity = run_restricted w ~capacity ~allowed:(fun _ -> true)
