let default_weight_budget = 64
let default_satisfaction_budget = 24

(* Edges sorted heaviest-first under the strict total order; index in
   this array is the branching depth. *)
let sorted_edges w =
  let m = Graph.edge_count (Weights.graph w) in
  let order = Array.init m (fun e -> e) in
  Array.sort (fun e f -> Weights.compare_edges w f e) order;
  order

(* Per-node incident positions in the sorted order, ascending (i.e.
   heaviest incident edge first); used by the capacity bound. *)
let incident_positions g order =
  let m = Array.length order in
  let pos_of_edge = Array.make m 0 in
  Array.iteri (fun pos e -> pos_of_edge.(e) <- pos) order;
  Array.init (Graph.node_count g) (fun v ->
      let ps =
        Array.map (fun (_, eid) -> pos_of_edge.(eid)) (Graph.neighbors g v)
      in
      Array.sort compare ps;
      ps)

let max_weight_bmatching ?(max_edges = default_weight_budget) w ~capacity =
  let g = Weights.graph w in
  let m = Graph.edge_count g in
  if m > max_edges then
    invalid_arg
      (Printf.sprintf "Exact.max_weight_bmatching: %d edges exceeds budget %d" m max_edges);
  let order = sorted_edges w in
  let incident = incident_positions g order in
  let wt = Array.map (fun e -> Weights.weight w e) order in
  (* suffix sums of positive weights *)
  let suffix = Array.make (m + 1) 0.0 in
  for k = m - 1 downto 0 do
    suffix.(k) <- suffix.(k + 1) +. Float.max 0.0 wt.(k)
  done;
  let residual = Array.copy capacity in
  let best = ref neg_infinity and best_set = ref [] in
  let chosen = ref [] in
  (* half-sum bound: each completion edge is counted at both endpoints,
     each node can host at most its residual capacity *)
  let capacity_bound k =
    let acc = ref 0.0 in
    for v = 0 to Graph.node_count g - 1 do
      if residual.(v) > 0 then begin
        let taken = ref 0 and idx = ref 0 in
        let ps = incident.(v) in
        while !taken < residual.(v) && !idx < Array.length ps do
          let p = ps.(!idx) in
          if p >= k && wt.(p) > 0.0 then begin
            acc := !acc +. wt.(p);
            incr taken
          end;
          incr idx
        done
      end
    done;
    !acc /. 2.0
  in
  let rec branch k current =
    if current > !best then begin
      best := current;
      best_set := !chosen
    end;
    if k < m && current +. Float.min suffix.(k) (capacity_bound k) > !best +. 1e-12
    then begin
      let eid = order.(k) in
      let u, v = Graph.edge_endpoints g eid in
      (* include branch first: heavier edges first gives good incumbents *)
      if wt.(k) > 0.0 && residual.(u) > 0 && residual.(v) > 0 then begin
        residual.(u) <- residual.(u) - 1;
        residual.(v) <- residual.(v) - 1;
        chosen := eid :: !chosen;
        branch (k + 1) (current +. wt.(k));
        chosen := List.tl !chosen;
        residual.(u) <- residual.(u) + 1;
        residual.(v) <- residual.(v) + 1
      end;
      branch (k + 1) current
    end
  in
  branch 0 0.0;
  Bmatching.of_edge_ids g ~capacity !best_set

let max_weight_value ?max_edges w ~capacity =
  let bm = max_weight_bmatching ?max_edges w ~capacity in
  Bmatching.weight bm w

let max_satisfaction_bmatching ?(max_edges = default_satisfaction_budget) prefs =
  let g = Preference.graph prefs in
  let n = Graph.node_count g and m = Graph.edge_count g in
  if m > max_edges then
    invalid_arg
      (Printf.sprintf "Exact.max_satisfaction_bmatching: %d edges exceeds budget %d" m
         max_edges);
  let capacity = Array.init n (Preference.quota prefs) in
  let residual = Array.copy capacity in
  (* incident edge counts at depth >= k, per node, for the bound *)
  let order = Array.init m (fun e -> e) in
  let remaining_incident = Array.make n 0 in
  Array.iter
    (fun eid ->
      let u, v = Graph.edge_endpoints g eid in
      remaining_incident.(u) <- remaining_incident.(u) + 1;
      remaining_incident.(v) <- remaining_incident.(v) + 1)
    order;
  let conns = Array.make n [] in
  let best = ref neg_infinity and best_set = ref [] in
  let chosen = ref [] in
  (* A future connection of node i gains at most
       ΔS = 1/b + (c - r)/(b·L)  <=  (1/b)·(1 + (b-1)/L)
     (c <= b-1 existing connections, rank r >= 0): more than 1/b when the
     newcomer outranks existing connections, so the naive 1/b bound would
     wrongly prune optimal branches. *)
  let per_conn_bound =
    Array.init n (fun v ->
        let b = capacity.(v) and l = Preference.list_len prefs v in
        if b = 0 || l = 0 then 0.0
        else begin
          let bf = float_of_int b and lf = float_of_int l in
          (1.0 /. bf) *. (1.0 +. ((bf -. 1.0) /. lf))
        end)
  in
  let gain_bound () =
    let acc = ref 0.0 in
    for v = 0 to n - 1 do
      let extra = min residual.(v) remaining_incident.(v) in
      if extra > 0 then acc := !acc +. (float_of_int extra *. per_conn_bound.(v))
    done;
    !acc
  in
  let rec branch k current =
    if current > !best then begin
      best := current;
      best_set := !chosen
    end;
    if k < m && current +. gain_bound () > !best +. 1e-12 then begin
      let eid = order.(k) in
      let u, v = Graph.edge_endpoints g eid in
      remaining_incident.(u) <- remaining_incident.(u) - 1;
      remaining_incident.(v) <- remaining_incident.(v) - 1;
      if residual.(u) > 0 && residual.(v) > 0 then begin
        residual.(u) <- residual.(u) - 1;
        residual.(v) <- residual.(v) - 1;
        let su = Preference.satisfaction prefs u conns.(u)
        and sv = Preference.satisfaction prefs v conns.(v) in
        conns.(u) <- v :: conns.(u);
        conns.(v) <- u :: conns.(v);
        let su' = Preference.satisfaction prefs u conns.(u)
        and sv' = Preference.satisfaction prefs v conns.(v) in
        chosen := eid :: !chosen;
        branch (k + 1) (current +. (su' -. su) +. (sv' -. sv));
        chosen := List.tl !chosen;
        conns.(u) <- List.tl conns.(u);
        conns.(v) <- List.tl conns.(v);
        residual.(u) <- residual.(u) + 1;
        residual.(v) <- residual.(v) + 1
      end;
      branch (k + 1) current;
      remaining_incident.(u) <- remaining_incident.(u) + 1;
      remaining_incident.(v) <- remaining_incident.(v) + 1
    end
  in
  branch 0 0.0;
  (Bmatching.of_edge_ids g ~capacity !best_set, !best)

let max_weight_bipartite w ~capacity ~left =
  let g = Weights.graph w in
  let n = Graph.node_count g in
  if left <= 0 || left >= n then invalid_arg "Exact.max_weight_bipartite: bad split";
  Graph.iter_edges g (fun _ u v ->
      let lu = u < left and lv = v < left in
      if lu = lv then invalid_arg "Exact.max_weight_bipartite: edge inside a part");
  let net = Mcmf.create (n + 2) in
  let source = n and sink = n + 1 in
  for u = 0 to left - 1 do
    ignore (Mcmf.add_edge net ~src:source ~dst:u ~capacity:capacity.(u) ~cost:0.0)
  done;
  for v = left to n - 1 do
    ignore (Mcmf.add_edge net ~src:v ~dst:sink ~capacity:capacity.(v) ~cost:0.0)
  done;
  let handles = Array.make (Graph.edge_count g) (-1) in
  Graph.iter_edges g (fun eid u v ->
      let u, v = if u < left then (u, v) else (v, u) in
      handles.(eid) <-
        Mcmf.add_edge net ~src:u ~dst:v ~capacity:1 ~cost:(-.Weights.weight w eid));
  let _flow, _cost = Mcmf.min_cost_flow net ~source ~sink () in
  let ids = ref [] in
  Array.iteri (fun eid h -> if Mcmf.flow_on net h > 0 then ids := eid :: !ids) handles;
  Bmatching.of_edge_ids g ~capacity !ids
