(** Globally greedy many-to-many weighted matching.

    Scans all edges in decreasing weight order (under the strict total
    order of {!Owp_prefs.Weights.compare_edges}) and selects every edge
    whose endpoints both still have residual capacity.  This is the
    paper's "optimum greedy algorithm (OPT)" comparator of Theorem 2,
    and — by the classic greedy argument — itself a ½-approximation of
    the true maximum weight b-matching. O(m log m). *)

val run : Weights.t -> capacity:int array -> Bmatching.t

val run_restricted : Weights.t -> capacity:int array -> allowed:(int -> bool) -> Bmatching.t
(** Same, considering only edges for which [allowed eid] holds (used by
    churn repair to restrict to a damaged region). *)
