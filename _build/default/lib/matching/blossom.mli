(** Edmonds' maximum cardinality matching ("Paths, trees and flowers" —
    the paper's reference [2]).

    Finds a matching with the greatest number of edges in a general
    graph by growing alternating trees and shrinking odd cycles
    (blossoms).  O(V·E·α) with the union–find-based blossom contraction
    used here — ample for the experiment sizes.

    Used as the {e coverage} baseline: the maximum number of pairings
    possible at all (quota 1), against which the satisfaction-driven
    algorithms' match counts are compared (experiment E20). *)

val maximum_matching : Graph.t -> Bmatching.t
(** A maximum-cardinality matching as a unit-capacity {!Bmatching.t}. *)

val matching_number : Graph.t -> int
(** Size of a maximum matching. *)

val is_maximum : Graph.t -> Bmatching.t -> bool
(** Is the given unit-capacity matching of maximum cardinality?
    (Checks size against {!matching_number}.) *)
