(* Classic BFS formulation of Edmonds' algorithm: grow an alternating
   tree from each free vertex; when two even-level vertices meet, shrink
   the odd cycle by redirecting every vertex's [base] to the cycle's
   least common ancestor; when a free vertex is reached, augment. *)

let maximum_matching g =
  let n = Graph.node_count g in
  let partner = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let base = Array.init n Fun.id in
  let used = Array.make n false in
  let blossom = Array.make n false in
  let queue = Queue.create () in

  let lca a b =
    (* walk to the root marking a's ancestors, then walk from b *)
    let mark = Array.make n false in
    let v = ref a in
    let continue = ref true in
    while !continue do
      v := base.(!v);
      mark.(!v) <- true;
      if partner.(!v) < 0 then continue := false else v := parent.(partner.(!v))
    done;
    let u = ref b in
    let res = ref (-1) in
    while !res < 0 do
      u := base.(!u);
      if mark.(!u) then res := !u
      else u := parent.(partner.(!u))
    done;
    !res
  in
  let mark_path v b child =
    let v = ref v and child = ref child in
    while base.(!v) <> b do
      blossom.(base.(!v)) <- true;
      blossom.(base.(partner.(!v))) <- true;
      parent.(!v) <- !child;
      child := partner.(!v);
      v := parent.(partner.(!v))
    done
  in
  let find_augmenting_path root =
    Array.fill used 0 n false;
    Array.fill parent 0 n (-1);
    Array.iteri (fun i _ -> base.(i) <- i) base;
    Queue.clear queue;
    used.(root) <- true;
    Queue.push root queue;
    let found = ref (-1) in
    while !found < 0 && not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      Graph.iter_neighbors g v (fun u _ ->
          if !found < 0 && base.(v) <> base.(u) && partner.(v) <> u then begin
            if u = root || (partner.(u) >= 0 && parent.(partner.(u)) >= 0) then begin
              (* odd cycle: shrink the blossom *)
              let curbase = lca v u in
              Array.fill blossom 0 n false;
              mark_path v curbase u;
              mark_path u curbase v;
              for i = 0 to n - 1 do
                if blossom.(base.(i)) then begin
                  base.(i) <- curbase;
                  if not used.(i) then begin
                    used.(i) <- true;
                    Queue.push i queue
                  end
                end
              done
            end
            else if parent.(u) < 0 then begin
              parent.(u) <- v;
              if partner.(u) < 0 then found := u
              else begin
                used.(partner.(u)) <- true;
                Queue.push partner.(u) queue
              end
            end
          end)
    done;
    !found
  in
  let augment u =
    let u = ref u in
    while !u >= 0 do
      let pv = parent.(!u) in
      let next = partner.(pv) in
      partner.(!u) <- pv;
      partner.(pv) <- !u;
      u := next
    done
  in
  for v = 0 to n - 1 do
    if partner.(v) < 0 then begin
      let leaf = find_augmenting_path v in
      if leaf >= 0 then augment leaf
    end
  done;
  let ids = ref [] in
  Graph.iter_edges g (fun eid a b ->
      if partner.(a) = b && partner.(b) = a then ids := eid :: !ids);
  Bmatching.of_edge_ids g ~capacity:(Array.make n 1) !ids

let matching_number g = Bmatching.size (maximum_matching g)

let is_maximum g m = Bmatching.size m = matching_number g
