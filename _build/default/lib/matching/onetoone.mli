(** One-to-one weighted matching baselines.

    The LID/LIC algorithms specialise to the classic maximum weighted
    matching when every quota is 1; these are the standard
    ½-approximation baselines from the literature they are compared
    against in experiment E11:

    - {!preis}: repeatedly pick a locally heaviest edge (Preis, STACS'99
      — the proof template the paper reuses for Theorem 2);
    - {!path_growing}: Drake–Hougardy path-growing;
    - {!global_greedy}: heaviest-edge-first scan.

    All return 1-regular {!Bmatching.t} values (capacity 1 everywhere). *)

val preis : Weights.t -> Bmatching.t
val path_growing : Weights.t -> Bmatching.t
val global_greedy : Weights.t -> Bmatching.t
