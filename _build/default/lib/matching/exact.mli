(** Exact solvers for small instances.

    These provide the ground truth the approximation experiments (E3,
    E6) measure against.  The general-graph solvers are exponential
    (branch & bound / exhaustive search) and refuse instances above
    [max_edges]; the bipartite solver is polynomial via min-cost flow.

    All weights produced by eq. 9 are positive, but the weight solver
    also handles arbitrary signs (it simply never selects a
    non-positive edge, which is optimal for matchings). *)

val max_weight_bmatching : ?max_edges:int -> Weights.t -> capacity:int array -> Bmatching.t
(** Exact maximum-weight many-to-many matching by branch & bound over
    edges in decreasing weight order, pruning with the per-node
    half-sum capacity bound.  Default [max_edges] = 64.
    @raise Invalid_argument when the instance exceeds [max_edges]. *)

val max_weight_value : ?max_edges:int -> Weights.t -> capacity:int array -> float

val max_satisfaction_bmatching :
  ?max_edges:int -> Preference.t -> Bmatching.t * float
(** Exact optimum of the {e original} maximizing-satisfaction b-matching
    problem (total eq.-1 satisfaction; objective is not edge-separable
    because of the dynamic term, so this is an exhaustive search over
    feasible b-matchings with satisfaction-slack pruning).  Default
    [max_edges] = 24.  Returns the optimal matching and its total
    satisfaction. *)

val max_weight_bipartite :
  Weights.t -> capacity:int array -> left:int -> Bmatching.t
(** Exact maximum-weight b-matching when the graph is bipartite with
    parts [{0..left-1}] and [{left..n-1}], via min-cost flow.
    @raise Invalid_argument if some edge lies inside a part. *)
