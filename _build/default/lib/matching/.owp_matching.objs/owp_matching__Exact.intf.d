lib/matching/exact.mli: Bmatching Preference Weights
