lib/matching/mcmf.mli:
