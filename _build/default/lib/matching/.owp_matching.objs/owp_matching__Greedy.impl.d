lib/matching/greedy.ml: Array Bmatching Graph List Weights
