lib/matching/blossom.ml: Array Bmatching Fun Graph Queue
