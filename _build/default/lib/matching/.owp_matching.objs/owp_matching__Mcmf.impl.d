lib/matching/mcmf.ml: Array Queue
