lib/matching/exact.ml: Array Bmatching Float Graph List Mcmf Preference Printf Weights
