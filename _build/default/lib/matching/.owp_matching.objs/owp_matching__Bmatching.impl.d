lib/matching/bmatching.ml: Array Format Graph Int List Set Weights
