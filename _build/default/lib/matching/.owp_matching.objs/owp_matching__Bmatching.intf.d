lib/matching/bmatching.mli: Format Graph Weights
