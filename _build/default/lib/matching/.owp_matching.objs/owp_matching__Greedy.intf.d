lib/matching/greedy.mli: Bmatching Weights
