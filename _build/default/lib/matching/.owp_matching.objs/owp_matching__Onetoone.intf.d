lib/matching/onetoone.mli: Bmatching Weights
