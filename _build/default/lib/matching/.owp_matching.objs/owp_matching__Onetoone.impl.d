lib/matching/onetoone.ml: Array Bmatching Graph Greedy List Weights
