lib/matching/blossom.mli: Bmatching Graph
