let ones g = Array.make (Graph.node_count g) 1

let global_greedy w = Greedy.run w ~capacity:(ones (Weights.graph w))

(* Preis-style: take any locally heaviest edge among the surviving ones,
   delete it with all incident edges, repeat.  Finding a locally
   heaviest edge walks uphill along the "heavier incident edge"
   relation, which terminates because weights are totally ordered. *)
let preis w =
  let g = Weights.graph w in
  let alive_node = Array.make (Graph.node_count g) true in
  let matched = ref [] in
  let heaviest_incident u ~excluding =
    let best = ref (-1) in
    Graph.iter_neighbors g u (fun v eid ->
        if alive_node.(v) && eid <> excluding then
          if !best < 0 || Weights.heavier w eid !best then best := eid);
    !best
  in
  let rec climb eid =
    let u, v = Graph.edge_endpoints g eid in
    let cu = heaviest_incident u ~excluding:eid in
    let cv = heaviest_incident v ~excluding:eid in
    let challenger =
      if cu >= 0 && cv >= 0 then if Weights.heavier w cu cv then cu else cv
      else if cu >= 0 then cu
      else cv
    in
    if challenger >= 0 && Weights.heavier w challenger eid then climb challenger
    else eid
  in
  for start = 0 to Graph.node_count g - 1 do
    if alive_node.(start) then begin
      let seed = heaviest_incident start ~excluding:(-1) in
      if seed >= 0 then begin
        let u, _ = Graph.edge_endpoints g seed in
        if alive_node.(u) then begin
          let eid = climb seed in
          let a, b = Graph.edge_endpoints g eid in
          if alive_node.(a) && alive_node.(b) then begin
            matched := eid :: !matched;
            alive_node.(a) <- false;
            alive_node.(b) <- false
          end
        end
      end
    end
  done;
  (* the outer scan may leave matchable edges when a climb killed the
     scan node's neighbourhood: sweep until maximal *)
  let residual_pass () =
    let again = ref false in
    Graph.iter_edges g (fun eid u v ->
        if alive_node.(u) && alive_node.(v) then begin
          let e = climb eid in
          let a, b = Graph.edge_endpoints g e in
          if alive_node.(a) && alive_node.(b) then begin
            matched := e :: !matched;
            alive_node.(a) <- false;
            alive_node.(b) <- false;
            again := true
          end
        end);
    !again
  in
  while residual_pass () do () done;
  Bmatching.of_edge_ids g ~capacity:(ones g) !matched

let path_growing w =
  let g = Weights.graph w in
  let n = Graph.node_count g in
  let used = Array.make n false in
  (* grow a path from every unused node, alternately assigning edges to
     two candidate matchings; keep the heavier of the two per path *)
  let m1 = ref [] and m2 = ref [] and w1 = ref 0.0 and w2 = ref 0.0 in
  let all1 = ref [] in
  for start = 0 to n - 1 do
    if not used.(start) then begin
      m1 := [];
      m2 := [];
      w1 := 0.0;
      w2 := 0.0;
      let current = ref start and side = ref true and continue = ref true in
      while !continue do
        used.(!current) <- true;
        let best = ref (-1) and best_v = ref (-1) in
        Graph.iter_neighbors g !current (fun v eid ->
            if (not used.(v)) && (!best < 0 || Weights.heavier w eid !best) then begin
              best := eid;
              best_v := v
            end);
        if !best < 0 then continue := false
        else begin
          if !side then begin
            m1 := !best :: !m1;
            w1 := !w1 +. Weights.weight w !best
          end
          else begin
            m2 := !best :: !m2;
            w2 := !w2 +. Weights.weight w !best
          end;
          side := not !side;
          current := !best_v
        end
      done;
      if !w1 >= !w2 then all1 := !m1 @ !all1 else all1 := !m2 @ !all1
    end
  done;
  (* edges within a path alternate, so the kept side is a matching; a
     final feasibility filter guards cross-path interactions *)
  let capacity = ones g in
  let residual = Array.make n 1 in
  let chosen =
    List.filter
      (fun eid ->
        let u, v = Graph.edge_endpoints g eid in
        if residual.(u) > 0 && residual.(v) > 0 then begin
          residual.(u) <- 0;
          residual.(v) <- 0;
          true
        end
        else false)
      (List.sort (fun e f -> Weights.compare_edges w f e) !all1)
  in
  Bmatching.of_edge_ids g ~capacity chosen
