(** Many-to-many matchings (b-matchings).

    A b-matching on a graph with per-node capacities [b_i] is a subset of
    edges such that every node [i] is covered at most [b_i] times (§2 of
    the paper: connection quotas).  Values of this type are validated at
    construction: capacities hold by invariant. *)

type t

val of_edge_ids : Graph.t -> capacity:int array -> int list -> t
(** @raise Invalid_argument if an edge id is out of range, duplicated,
    or a capacity is exceeded. *)

val empty : Graph.t -> capacity:int array -> t

val graph : t -> Graph.t
val capacity : t -> int -> int
val size : t -> int
(** Number of selected edges. *)

val mem : t -> int -> bool
(** Is the edge id selected? *)

val edge_ids : t -> int list
(** Selected edge ids, ascending. *)

val degree : t -> int -> int
(** Number of selected edges covering a node. *)

val residual : t -> int -> int
(** Remaining capacity of a node. *)

val saturated : t -> int -> bool

val connections : t -> int -> int list
(** Matched partner nodes of a node (with multiplicity 1 each: simple
    graph), ascending. *)

val connection_lists : t -> int list array
(** Per-node partner lists, as consumed by satisfaction accounting. *)

val weight : t -> Weights.t -> float
(** Total weight under the given weights (must share the graph). *)

val is_maximal : t -> bool
(** No unselected edge has residual capacity at both endpoints. *)

val equal : t -> t -> bool
(** Same selected edge set (graphs assumed identical). *)

val symmetric_difference : t -> t -> int list

val add : t -> int -> t
(** Functional insert. @raise Invalid_argument if infeasible or present. *)

val remove : t -> int -> t
(** @raise Invalid_argument if the edge is not selected. *)

val pp : Format.formatter -> t -> unit
