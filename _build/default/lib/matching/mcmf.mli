(** Minimum-cost flow on directed networks (successive shortest paths).

    Substrate for the exact bipartite b-matching solver: maximum-weight
    bipartite b-matching reduces to a min-cost flow where matching an
    edge costs its negated weight.  Costs may be negative, so path
    search uses Bellman–Ford; capacities are integers, costs floats.

    Complexity is O(F · V · E) where F is the total flow — fine for the
    exact-baseline instance sizes used in the experiments. *)

type t

val create : int -> t
(** [create n] builds an empty network on vertices [0..n-1]. *)

val add_edge : t -> src:int -> dst:int -> capacity:int -> cost:float -> int
(** Adds a directed edge; returns a handle usable with {!flow_on}. *)

val min_cost_flow : t -> source:int -> sink:int -> ?max_flow:int -> unit -> int * float
(** Pushes flow along successive cheapest source→sink paths for as long
    as the cheapest path has strictly negative cost (i.e. it is
    profitable), stopping earlier if [max_flow] units have been pushed.
    Returns (total flow, total cost). *)

val min_cost_max_flow : t -> source:int -> sink:int -> int * float
(** Pushes flow along cheapest paths until the sink is unreachable,
    regardless of path cost sign (classic min-cost max-flow). *)

val flow_on : t -> int -> int
(** Current flow on an edge handle. *)
