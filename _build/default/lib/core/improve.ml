module Bmatching = Owp_matching.Bmatching

let worst_partner prefs m x =
  match Bmatching.connections m x with
  | [] -> None
  | conns ->
      Some
        (List.fold_left
           (fun worst j ->
             if Preference.rank prefs x j > Preference.rank prefs x worst then j else worst)
           (List.hd conns) (List.tl conns))

(* Apply the move for unmatched edge (u, v): drop the worst partner at
   each saturated endpoint, then add (u, v).  Returns the new matching;
   the caller decides based on the gain. *)
let apply_move prefs m u v eid =
  let drop m x =
    if Bmatching.residual m x > 0 then m
    else
      match worst_partner prefs m x with
      | None -> m
      | Some w -> (
          match Graph.find_edge (Bmatching.graph m) x w with
          | Some e -> Bmatching.remove m e
          | None -> assert false)
  in
  let m = drop m u in
  let m = drop m v in
  Bmatching.add m eid

let nodes_touched prefs m u v =
  (* nodes whose satisfaction the move can change: u, v and the dropped
     partners *)
  let dropped x =
    if Bmatching.residual m x > 0 then None else worst_partner prefs m x
  in
  let base = [ u; v ] in
  let base = match dropped u with Some w -> w :: base | None -> base in
  match dropped v with Some w -> w :: base | None -> base

let local_total prefs m nodes =
  List.fold_left
    (fun acc x -> acc +. Preference.satisfaction prefs x (Bmatching.connections m x))
    0.0 nodes

let move_gain prefs m eid =
  if Bmatching.mem m eid then 0.0
  else begin
    let u, v = Graph.edge_endpoints (Bmatching.graph m) eid in
    if Bmatching.capacity m u = 0 || Bmatching.capacity m v = 0 then 0.0
    else begin
      let touched = nodes_touched prefs m u v in
      let before = local_total prefs m touched in
      let m' = apply_move prefs m u v eid in
      local_total prefs m' touched -. before
    end
  end

let local_search ?max_moves prefs m =
  let g = Bmatching.graph m in
  let edge_count = Graph.edge_count g in
  let cap = Option.value max_moves ~default:(max 100 (10 * edge_count)) in
  let current = ref m in
  let moves = ref 0 in
  let improved = ref true in
  while !improved && !moves < cap do
    improved := false;
    (* take the best-gain move of this sweep (steepest ascent keeps the
       pass deterministic and converges in fewer moves than first-fit) *)
    let best_gain = ref 1e-9 and best_edge = ref (-1) in
    for eid = 0 to edge_count - 1 do
      let gain = move_gain prefs !current eid in
      if gain > !best_gain then begin
        best_gain := gain;
        best_edge := eid
      end
    done;
    if !best_edge >= 0 then begin
      let u, v = Graph.edge_endpoints g !best_edge in
      current := apply_move prefs !current u v !best_edge;
      incr moves;
      improved := true
    end
  done;
  (!current, !moves)
