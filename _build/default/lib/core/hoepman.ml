module Simnet = Owp_simnet.Simnet
module Bmatching = Owp_matching.Bmatching

type message = Req | Drop

type report = {
  matching : Bmatching.t;
  req_count : int;
  drop_count : int;
  completion_time : float;
  all_terminated : bool;
}

type node_state = {
  wsorted : (int * int) array; (* (neighbour, edge id), heaviest first *)
  dropped : (int, unit) Hashtbl.t;
  requests : (int, unit) Hashtbl.t; (* neighbours that REQ'd us *)
  mutable target : int; (* current candidate, -1 none *)
  mutable partner : int; (* matched partner, -1 none *)
  mutable finished : bool;
}

let run ?(seed = 0x40E) ?(delay = Simnet.Uniform (0.5, 1.5)) w =
  let g = Weights.graph w in
  let n = Graph.node_count g in
  let net = Simnet.create ~seed ~nodes:(max n 1) ~delay () in
  let req_count = ref 0 and drop_count = ref 0 in
  let state =
    Array.init n (fun i ->
        let ws = Array.copy (Graph.neighbors g i) in
        Array.sort (fun (_, e) (_, f) -> Weights.compare_edges w f e) ws;
        {
          wsorted = ws;
          dropped = Hashtbl.create 8;
          requests = Hashtbl.create 8;
          target = -1;
          partner = -1;
          finished = false;
        })
  in
  let send_req src dst =
    incr req_count;
    Simnet.send net ~src ~dst Req
  in
  let send_drop src dst =
    incr drop_count;
    Simnet.send net ~src ~dst Drop
  in
  let candidate i =
    let s = state.(i) in
    let rec scan k =
      if k >= Array.length s.wsorted then -1
      else begin
        let v, _ = s.wsorted.(k) in
        if Hashtbl.mem s.dropped v then scan (k + 1) else v
      end
    in
    scan 0
  in
  let lock i v =
    let s = state.(i) in
    s.partner <- v;
    s.finished <- true;
    Array.iter
      (fun (u, _) -> if u <> v && not (Hashtbl.mem s.dropped u) then send_drop i u)
      s.wsorted
  in
  let retarget i =
    let s = state.(i) in
    let c = candidate i in
    if c < 0 then s.finished <- true
    else if c <> s.target then begin
      s.target <- c;
      send_req i c;
      if Hashtbl.mem s.requests c then lock i c
    end
  in
  let handle ~src ~dst m =
    let i = dst and u = src in
    let s = state.(i) in
    if not s.finished then
      match m with
      | Req ->
          Hashtbl.replace s.requests u ();
          if s.target = u then lock i u
      | Drop ->
          Hashtbl.replace s.dropped u ();
          Hashtbl.remove s.requests u;
          if s.target = u then begin
            s.target <- -1;
            retarget i
          end
  in
  Simnet.set_handler net handle;
  for i = 0 to n - 1 do
    retarget i
  done;
  Simnet.run net;
  let ids = ref [] in
  Graph.iter_edges g (fun eid a b ->
      if state.(a).partner = b && state.(b).partner = a then ids := eid :: !ids);
  let matching = Bmatching.of_edge_ids g ~capacity:(Array.make n 1) !ids in
  {
    matching;
    req_count = !req_count;
    drop_count = !drop_count;
    completion_time = Simnet.now net;
    all_terminated = Array.for_all (fun s -> s.finished) state;
  }
