lib/core/lic.mli: Owp_matching Owp_util Weights
