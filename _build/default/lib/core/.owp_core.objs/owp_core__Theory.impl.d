lib/core/theory.ml: Graph Owp_matching Preference Weights
