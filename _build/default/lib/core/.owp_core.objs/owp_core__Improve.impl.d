lib/core/improve.ml: Graph List Option Owp_matching Preference
