lib/core/lid_dynamic.mli: Owp_matching Owp_simnet Preference
