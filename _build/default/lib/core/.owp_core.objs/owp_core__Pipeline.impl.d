lib/core/pipeline.ml: Array Graph Lic Lid Owp_matching Owp_stable Preference Theory Weights
