lib/core/lid_robust.mli: Owp_matching Owp_simnet Weights
