lib/core/theory.mli: Owp_matching Preference Weights
