lib/core/lid_robust.ml: Array Graph Hashtbl Owp_matching Owp_simnet Weights
