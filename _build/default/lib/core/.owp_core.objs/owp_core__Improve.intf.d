lib/core/improve.mli: Owp_matching Preference
