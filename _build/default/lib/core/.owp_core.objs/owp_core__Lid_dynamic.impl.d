lib/core/lid_dynamic.ml: Array Graph Hashtbl List Owp_matching Owp_simnet Preference Weights
