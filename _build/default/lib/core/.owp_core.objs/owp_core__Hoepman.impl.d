lib/core/hoepman.ml: Array Graph Hashtbl Owp_matching Owp_simnet Weights
