lib/core/lic.ml: Array Graph List Owp_matching Owp_util Weights
