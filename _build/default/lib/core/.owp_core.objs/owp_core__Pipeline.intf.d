lib/core/pipeline.mli: Owp_matching Preference Weights
