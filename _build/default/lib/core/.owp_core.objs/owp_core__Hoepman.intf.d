lib/core/hoepman.mli: Owp_matching Owp_simnet Weights
