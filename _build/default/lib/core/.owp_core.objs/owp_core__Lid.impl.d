lib/core/lid.ml: Array Graph Hashtbl Owp_matching Owp_simnet Weights
