lib/core/lid.mli: Owp_matching Owp_simnet Weights
