(** Satisfaction local search — an extension beyond the paper.

    Theorem 3 guarantees LID lands within ¼(1+1/b_max) of the optimal
    total satisfaction; this module measures how much of the remaining
    gap a cheap centralized post-pass can close (ablation experiment
    E14).  Moves considered:

    - {e add}: select a free edge (adding a connection always increases
      both endpoints' satisfaction);
    - {e swap}: select an unmatched edge, dropping the worst current
      partner at each saturated endpoint, when the change increases the
      {e total} satisfaction (unlike blocking-pair dynamics, which only
      asks the two endpoints and may cycle, this strictly increases a
      bounded global objective, so it terminates).

    The result is feasibility-preserving and never worse than the
    input. *)

val local_search :
  ?max_moves:int ->
  Preference.t ->
  Owp_matching.Bmatching.t ->
  Owp_matching.Bmatching.t * int
(** [local_search prefs m] returns the improved matching and the number
    of moves applied.  [max_moves] defaults to [10 * m] edges. *)

val move_gain : Preference.t -> Owp_matching.Bmatching.t -> int -> float
(** Satisfaction gain of applying the add/swap move for the given
    unmatched edge id (0 if the edge is already matched). *)
