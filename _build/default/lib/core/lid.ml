module Simnet = Owp_simnet.Simnet
module Bmatching = Owp_matching.Bmatching

type message = Prop | Rej

type report = {
  matching : Bmatching.t;
  prop_count : int;
  rej_count : int;
  delivered : int;
  completion_time : float;
  all_terminated : bool;
}

(* Per-node protocol state.  The paper's four sets are represented as:
   U_i = u_set, P_i = in_p (all proposals, locked included) with
   P_i \ K_i = pending, A_i = a_set, K_i = k_set.  wsorted is the
   node's weight list: incident neighbours by decreasing edge weight. *)
type node_state = {
  wsorted : (int * int) array; (* (neighbour, edge id), heaviest first *)
  u_set : (int, unit) Hashtbl.t;
  in_p : (int, unit) Hashtbl.t;
  pending : (int, unit) Hashtbl.t;
  a_set : (int, unit) Hashtbl.t;
  k_set : (int, unit) Hashtbl.t;
  mutable ptr : int; (* scan position for topRanked(U \ P) *)
  mutable finished : bool;
}

let run ?(seed = 0x11D) ?(delay = Simnet.Uniform (0.5, 1.5)) ?(fifo = true)
    ?(faults = Simnet.no_faults) ?(on_lock = fun _ _ _ -> ()) w ~capacity =
  let g = Weights.graph w in
  let n = Graph.node_count g in
  Array.iter (fun b -> if b < 0 then invalid_arg "Lid.run: negative capacity") capacity;
  let quota = Array.mapi (fun i b -> min b (Graph.degree g i)) capacity in
  let net = Simnet.create ~seed ~fifo ~faults ~nodes:(max n 1) ~delay () in
  let prop_count = ref 0 and rej_count = ref 0 in
  let send_prop src dst =
    incr prop_count;
    Simnet.send net ~src ~dst Prop
  in
  let send_rej src dst =
    incr rej_count;
    Simnet.send net ~src ~dst Rej
  in
  let state =
    Array.init n (fun i ->
        let ws = Array.copy (Graph.neighbors g i) in
        Array.sort (fun (_, e) (_, f) -> Weights.compare_edges w f e) ws;
        let u_set = Hashtbl.create 16 in
        Array.iter (fun (v, _) -> Hashtbl.replace u_set v ()) ws;
        {
          wsorted = ws;
          u_set;
          in_p = Hashtbl.create 8;
          pending = Hashtbl.create 8;
          a_set = Hashtbl.create 8;
          k_set = Hashtbl.create 8;
          ptr = 0;
          finished = false;
        })
  in
  (* line 15–16: all proposals answered — decline everyone left *)
  let check_done i =
    let s = state.(i) in
    if (not s.finished) && Hashtbl.length s.pending = 0 then begin
      Hashtbl.iter (fun v () -> send_rej i v) s.u_set;
      Hashtbl.reset s.u_set;
      s.finished <- true
    end
  in
  (* line 12–14: mutual proposal — lock the connection *)
  let lock i v =
    let s = state.(i) in
    Hashtbl.remove s.u_set v;
    Hashtbl.remove s.a_set v;
    Hashtbl.remove s.pending v;
    Hashtbl.replace s.k_set v ();
    on_lock (Simnet.now net) i v
  in
  (* lines 9–11: propose to the next-ranked neighbour still in U \ P *)
  let propose_next i =
    let s = state.(i) in
    let len = Array.length s.wsorted in
    let rec advance () =
      if s.ptr >= len then None
      else begin
        let v, _ = s.wsorted.(s.ptr) in
        if Hashtbl.mem s.u_set v && not (Hashtbl.mem s.in_p v) then Some v
        else begin
          s.ptr <- s.ptr + 1;
          advance ()
        end
      end
    in
    match advance () with
    | None -> ()
    | Some v ->
        Hashtbl.replace s.in_p v ();
        Hashtbl.replace s.pending v ();
        send_prop i v;
        (* the candidate may have proposed to us already *)
        if Hashtbl.mem s.a_set v then lock i v
  in
  let handle ~src ~dst m =
    let i = dst and u = src in
    let s = state.(i) in
    if not s.finished then begin
      (match m with
      | Prop ->
          Hashtbl.replace s.a_set u ();
          if Hashtbl.mem s.pending u then lock i u
      | Rej ->
          Hashtbl.remove s.u_set u;
          if Hashtbl.mem s.pending u then begin
            Hashtbl.remove s.pending u;
            (* u stays in in_p: it was proposed to and must not be
               proposed to again *)
            propose_next i
          end);
      check_done i
    end
    (* a finished node already declined everyone still unanswered, so a
       late PROP needs no reply and a late REJ changes nothing *)
  in
  Simnet.set_handler net handle;
  (* lines 1–3: initial proposals to the top b_i of the weight list *)
  for i = 0 to n - 1 do
    let s = state.(i) in
    let target = quota.(i) in
    let made = ref 0 in
    while !made < target && s.ptr < Array.length s.wsorted do
      let v, _ = s.wsorted.(s.ptr) in
      if (not (Hashtbl.mem s.in_p v)) && Hashtbl.mem s.u_set v then begin
        Hashtbl.replace s.in_p v ();
        Hashtbl.replace s.pending v ();
        send_prop i v;
        incr made
      end;
      s.ptr <- s.ptr + 1
    done;
    (* reset the scan pointer: later proposals rescan from the top,
       skipping anything already proposed to or no longer in U *)
    s.ptr <- 0;
    check_done i
  done;
  Simnet.run net;
  let all_terminated = Array.for_all (fun s -> s.finished) state in
  (* assemble the matching from the locked sets; K is symmetric on a
     clean run, and intersection keeps the result feasible otherwise *)
  let ids = ref [] in
  Graph.iter_edges g (fun eid a b ->
      if Hashtbl.mem state.(a).k_set b && Hashtbl.mem state.(b).k_set a then
        ids := eid :: !ids);
  let matching = Bmatching.of_edge_ids g ~capacity !ids in
  {
    matching;
    prop_count = !prop_count;
    rej_count = !rej_count;
    delivered = Simnet.messages_delivered net;
    completion_time = Simnet.now net;
    all_terminated;
  }
