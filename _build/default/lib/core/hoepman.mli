(** Hoepman's distributed weighted matching protocol (paper ref [6]).

    The classic one-to-one distributed ½-approximation: every node
    requests its heaviest surviving neighbour (REQ); mutual requests
    match, and a matched node drops all other neighbours (DROP), who
    then re-aim at their next candidate.  LID generalises this shape to
    quotas b_i > 1; running both at b = 1 lets experiment E11 compare
    edge sets (identical) and message bills.

    Runs on {!Owp_simnet.Simnet} like LID. *)

type message = Req | Drop

type report = {
  matching : Owp_matching.Bmatching.t;  (** 1-regular *)
  req_count : int;
  drop_count : int;
  completion_time : float;
  all_terminated : bool;
}

val run :
  ?seed:int ->
  ?delay:Owp_simnet.Simnet.delay_model ->
  Weights.t ->
  report
