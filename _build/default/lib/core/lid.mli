(** LID — Local Information-based Distributed algorithm (paper Alg. 1).

    Every node ranks its incident edges by the symmetric weight of
    eq. 9 (its "weight list") and proposes (PROP) to its top [b_i]
    neighbours.  A mutual proposal locks the connection; a node whose
    proposal is declined (REJ) proposes to its next-ranked neighbour; a
    node with all proposals locked declines everyone left.  The paper
    proves: termination (Lemma 5), equivalence with LIC's edge set
    (Lemmas 3, 4, 6), a ½-approximation of the maximum-weight
    many-to-many matching (Theorem 2 + Lemma 6) and a ¼(1 + 1/b_max)
    approximation of the maximizing-satisfaction b-matching (Theorem 3).

    The protocol runs on {!Owp_simnet.Simnet}, so delays, message order
    and faults are controlled by the caller. *)

type message = Prop | Rej

type report = {
  matching : Owp_matching.Bmatching.t;
  prop_count : int;  (** PROP messages sent *)
  rej_count : int;  (** REJ messages sent *)
  delivered : int;  (** total deliveries processed *)
  completion_time : float;  (** virtual time of the last event *)
  all_terminated : bool;  (** every node reached U_i = ∅ (Lemma 5) *)
}

val run :
  ?seed:int ->
  ?delay:Owp_simnet.Simnet.delay_model ->
  ?fifo:bool ->
  ?faults:Owp_simnet.Simnet.faults ->
  ?on_lock:(float -> int -> int -> unit) ->
  Weights.t ->
  capacity:int array ->
  report
(** Simulate the protocol to quiescence.  Default delay model is
    [Uniform (0.5, 1.5)]; with faults enabled the protocol may fail to
    terminate cleanly, which the report exposes instead of raising.
    [on_lock time i v] is invoked every time node [i] locks the
    connection to [v] (so once per direction per locked edge), at the
    virtual time of the lock — the hook behind the anytime-satisfaction
    experiment (E19).
    @raise Invalid_argument on negative capacities. *)
