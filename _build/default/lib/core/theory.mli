(** Empirical checkers for the paper's lemmas and theorems.

    Each check returns a boolean (or a measured ratio) so the test suite
    and the experiment harness can assert the proven guarantees on
    concrete instances. *)

val weighted_blocking_pair : Weights.t -> Owp_matching.Bmatching.t -> (int * int) option
(** A "weighted blocking pair" is an unselected edge (u,v) whose weight
    beats the lightest selected edge at {e both} endpoints (or an
    endpoint has residual capacity).  The output of LIC/LID admits none
    (this is the invariant behind Lemma 4/6); greedy ½-approximations in
    general also satisfy it. *)

val is_greedy_stable : Weights.t -> Owp_matching.Bmatching.t -> bool
(** No weighted blocking pair. *)

val half_approx_certificate : Weights.t -> Owp_matching.Bmatching.t -> bool
(** Verifies maximality + greedy stability — the structural conditions
    under which the charging argument of Theorem 2 applies. *)

val weight_ratio : Weights.t -> Owp_matching.Bmatching.t -> Owp_matching.Bmatching.t -> float
(** [weight_ratio w approx opt] = w(approx)/w(opt); 1.0 when both are
    empty. *)

val satisfaction_ratio :
  Preference.t -> Owp_matching.Bmatching.t -> Owp_matching.Bmatching.t -> float
(** Total eq.-1 satisfaction ratio approx/opt; 1.0 when opt is 0. *)

val lemma1_bound : bmax:int -> float
(** ½(1 + 1/b_max), the Lemma 1 guarantee. *)

val theorem3_bound : bmax:int -> float
(** ¼(1 + 1/b_max), the end-to-end guarantee of Theorem 3. *)

val static_vs_full_ratio : Preference.t -> Owp_matching.Bmatching.t -> float
(** S_static / S for a concrete matching (Lemma 1's measured quantity);
    1.0 when total satisfaction is 0. *)
