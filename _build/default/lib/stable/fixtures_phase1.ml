module Bmatching = Owp_matching.Bmatching

type table = {
  holds : int list array;
  proposals_held : int array;
  deleted_pairs : int;
  exhausted : bool array;
}

let phase1 prefs =
  let g = Preference.graph prefs in
  let n = Graph.node_count g in
  let quota = Array.init n (Preference.quota prefs) in
  (* deleted.(x) maps neighbour -> unit when the pair is removed *)
  let deleted = Array.init n (fun _ -> Hashtbl.create 8) in
  let holds = Array.make n [] in
  let hold_count = Array.make n 0 in
  let proposals_held = Array.make n 0 in
  let next = Array.make n 0 in
  let deleted_pairs = ref 0 in
  let delete_pair x y =
    if not (Hashtbl.mem deleted.(x) y) then begin
      Hashtbl.replace deleted.(x) y ();
      Hashtbl.replace deleted.(y) x ();
      incr deleted_pairs
    end
  in
  let queue = Queue.create () in
  for x = 0 to n - 1 do
    if quota.(x) > 0 then Queue.push x queue
  done;
  while not (Queue.is_empty queue) do
    let x = Queue.pop queue in
    let list = Preference.list prefs x in
    (* propose while x wants more proposals held and list remains *)
    while proposals_held.(x) < quota.(x) && next.(x) < Array.length list do
      let y = list.(next.(x)) in
      next.(x) <- next.(x) + 1;
      if not (Hashtbl.mem deleted.(x) y) then begin
        if hold_count.(y) < quota.(y) then begin
          holds.(y) <- x :: holds.(y);
          hold_count.(y) <- hold_count.(y) + 1;
          proposals_held.(x) <- proposals_held.(x) + 1
        end
        else if quota.(y) > 0 then begin
          (* y holds its quota: keep x only if better than y's worst *)
          let worst =
            List.fold_left
              (fun acc z ->
                if Preference.rank prefs y z > Preference.rank prefs y acc then z else acc)
              (List.hd holds.(y))
              (List.tl holds.(y))
          in
          if Preference.preferred prefs y x worst then begin
            holds.(y) <- x :: List.filter (fun z -> z <> worst) holds.(y);
            proposals_held.(x) <- proposals_held.(x) + 1;
            proposals_held.(worst) <- proposals_held.(worst) - 1;
            delete_pair y worst;
            Queue.push worst queue
          end
          else delete_pair x y
        end
        else delete_pair x y
      end
    done
  done;
  (* final reduction: y holding a full quota rejects everyone it likes
     less than its worst held proposer *)
  for y = 0 to n - 1 do
    if hold_count.(y) >= quota.(y) && quota.(y) > 0 && holds.(y) <> [] then begin
      let worst =
        List.fold_left
          (fun acc z ->
            if Preference.rank prefs y z > Preference.rank prefs y acc then z else acc)
          (List.hd holds.(y))
          (List.tl holds.(y))
      in
      let wr = Preference.rank prefs y worst in
      Array.iter
        (fun z ->
          if Preference.rank prefs y z > wr then delete_pair y z)
        (Preference.list prefs y)
    end
  done;
  let exhausted =
    Array.init n (fun x ->
        proposals_held.(x) < quota.(x) && next.(x) >= Preference.list_len prefs x)
  in
  { holds; proposals_held; deleted_pairs = !deleted_pairs; exhausted }

let mutual_matching prefs table =
  let g = Preference.graph prefs in
  let n = Graph.node_count g in
  let capacity = Array.init n (Preference.quota prefs) in
  (* x -> set of nodes holding x's proposal *)
  let held_by = Array.init n (fun _ -> Hashtbl.create 4) in
  Array.iteri
    (fun y proposers -> List.iter (fun x -> Hashtbl.replace held_by.(x) y ()) proposers)
    table.holds;
  let ids = ref [] in
  Graph.iter_edges g (fun eid a b ->
      if Hashtbl.mem held_by.(a) b && Hashtbl.mem held_by.(b) a then ids := eid :: !ids);
  Bmatching.of_edge_ids g ~capacity !ids

let warm_solve ?max_rounds ?rng prefs =
  let table = phase1 prefs in
  let start = mutual_matching prefs table in
  Fixtures.satisfy_blocking_pairs ?max_rounds ?rng prefs start
