module Bmatching = Owp_matching.Bmatching

let worst_partner prefs m i =
  match Bmatching.connections m i with
  | [] -> None
  | conns ->
      Some
        (List.fold_left
           (fun worst j ->
             if Preference.rank prefs i j > Preference.rank prefs i worst then j
             else worst)
           (List.hd conns) (List.tl conns))

let would_accept prefs m i j =
  if Bmatching.residual m i > 0 then Bmatching.capacity m i > 0
  else
    match worst_partner prefs m i with
    | None -> false (* saturated with residual 0 and no partner: capacity 0 *)
    | Some worst -> Preference.preferred prefs i j worst

let blocks prefs m i j =
  let g = Bmatching.graph m in
  match Graph.find_edge g i j with
  | None -> false
  | Some eid ->
      (not (Bmatching.mem m eid)) && would_accept prefs m i j && would_accept prefs m j i

let blocking_pairs prefs m =
  let g = Bmatching.graph m in
  let acc = ref [] in
  Graph.iter_edges g (fun eid u v ->
      if (not (Bmatching.mem m eid)) && blocks prefs m u v then acc := (u, v) :: !acc);
  List.rev !acc

let count_blocking_pairs prefs m = List.length (blocking_pairs prefs m)

let is_stable prefs m = blocking_pairs prefs m = []
