(** Blocking-pair analysis for many-to-many matchings.

    In the stable fixtures model (Irving–Scott; the paper's §2
    "generalized stable roommates"), an unmatched adjacent pair [(i,j)]
    {e blocks} a matching [M] iff each side would accept the other:
    node [i] is undersubscribed, or prefers [j] to its least preferred
    current partner — and symmetrically for [j].  A matching is stable
    iff it admits no blocking pair. *)

val blocks : Preference.t -> Owp_matching.Bmatching.t -> int -> int -> bool
(** [blocks prefs m i j] — does the (adjacent, unmatched) pair block?
    Returns [false] for matched or non-adjacent pairs. *)

val blocking_pairs : Preference.t -> Owp_matching.Bmatching.t -> (int * int) list
(** All blocking pairs, as (u, v) with u < v. *)

val count_blocking_pairs : Preference.t -> Owp_matching.Bmatching.t -> int

val is_stable : Preference.t -> Owp_matching.Bmatching.t -> bool

val worst_partner : Preference.t -> Owp_matching.Bmatching.t -> int -> int option
(** Least-preferred current partner of a node, if any. *)
