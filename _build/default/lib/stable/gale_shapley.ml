module Bmatching = Owp_matching.Bmatching

let check_bipartite g proposers_mask =
  Graph.iter_edges g (fun _ u v ->
      if proposers_mask.(u) = proposers_mask.(v) then
        invalid_arg "Gale_shapley.run: edge does not cross the bipartition")

let run_with_capacity prefs ~proposers ~capacity =
  let g = Preference.graph prefs in
  let n = Graph.node_count g in
  let is_proposer = Array.make n false in
  Array.iter (fun p -> is_proposer.(p) <- true) proposers;
  check_bipartite g is_proposer;
  (* pointer into each proposer's preference list; reviewers hold their
     current proposals in a per-node set with the worst cached *)
  let next = Array.make n 0 in
  let held = Array.make n [] in
  (* reviewer side: list of held proposers *)
  let held_count = Array.make n 0 in
  let free = Queue.create () in
  Array.iter (fun p -> if capacity.(p) > 0 then Queue.push p free) proposers;
  let deficit = Array.map (fun b -> b) capacity in
  (* deficit.(p): proposals proposer p still wants to place *)
  while not (Queue.is_empty free) do
    let p = Queue.pop free in
    let list = Preference.list prefs p in
    while deficit.(p) > 0 && next.(p) < Array.length list do
      let r = list.(next.(p)) in
      next.(p) <- next.(p) + 1;
      (* p proposes to r *)
      if held_count.(r) < capacity.(r) then begin
        held.(r) <- p :: held.(r);
        held_count.(r) <- held_count.(r) + 1;
        deficit.(p) <- deficit.(p) - 1
      end
      else if capacity.(r) > 0 then begin
        (* find r's worst held proposer *)
        let worst =
          List.fold_left
            (fun acc q -> if Preference.rank prefs r q > Preference.rank prefs r acc then q else acc)
            (List.hd held.(r))
            (List.tl held.(r))
        in
        if Preference.preferred prefs r p worst then begin
          held.(r) <- p :: List.filter (fun q -> q <> worst) held.(r);
          deficit.(p) <- deficit.(p) - 1;
          deficit.(worst) <- deficit.(worst) + 1;
          (* the bumped proposer resumes proposing *)
          Queue.push worst free
        end
      end
    done
  done;
  let ids = ref [] in
  for r = 0 to n - 1 do
    if not is_proposer.(r) then
      List.iter
        (fun p ->
          match Graph.find_edge g p r with
          | Some eid -> ids := eid :: !ids
          | None -> assert false)
        held.(r)
  done;
  Bmatching.of_edge_ids g ~capacity !ids

let run prefs ~proposers =
  let g = Preference.graph prefs in
  let capacity = Array.init (Graph.node_count g) (Preference.quota prefs) in
  run_with_capacity prefs ~proposers ~capacity

let marriage prefs ~proposers =
  let g = Preference.graph prefs in
  let capacity = Array.make (Graph.node_count g) 1 in
  let m = run_with_capacity prefs ~proposers ~capacity in
  let is_proposer = Array.make (Graph.node_count g) false in
  Array.iter (fun p -> is_proposer.(p) <- true) proposers;
  List.filter_map
    (fun eid ->
      let u, v = Graph.edge_endpoints g eid in
      if is_proposer.(u) then Some (u, v) else Some (v, u))
    (Bmatching.edge_ids m)
