(** Phase 1 of the Irving–Scott stable fixtures algorithm.

    The proposal/rejection round of the many-to-many stable matching
    algorithm [7]: every player proposes down its preference list until
    it has [b_x] proposals held; a player holds its [b_y] best incoming
    proposals and rejects the rest (deleting the pair from both lists).
    The fixpoint yields the classic phase-1 table: directional
    semi-engagements plus reduced preference lists that provably contain
    every stable solution.

    Used two ways here:

    - {!mutual_matching}: the pairs engaged in {e both} directions form
      a feasible b-matching — a principled warm start;
    - {!warm_solve}: phase 1 + blocking-pair dynamics from that warm
      start, which converges in far fewer rounds than from scratch on
      solvable instances (measured in E8's companion column). *)

type table = {
  holds : int list array;  (** [holds.(y)]: proposers y currently holds *)
  proposals_held : int array;  (** per proposer: how many of its proposals are held *)
  deleted_pairs : int;  (** pairs removed by rejections *)
  exhausted : bool array;  (** proposer ran out of list before filling quota *)
}

val phase1 : Preference.t -> table

val mutual_matching : Preference.t -> table -> Owp_matching.Bmatching.t
(** Pairs held in both directions (capacity-feasible by construction of
    the holds). *)

val warm_solve :
  ?max_rounds:int -> ?rng:Owp_util.Prng.t -> Preference.t -> Fixtures.outcome
(** Blocking-pair dynamics seeded with {!mutual_matching}. *)
