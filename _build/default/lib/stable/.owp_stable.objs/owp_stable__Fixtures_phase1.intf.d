lib/stable/fixtures_phase1.mli: Fixtures Owp_matching Owp_util Preference
