lib/stable/gale_shapley.ml: Array Graph List Owp_matching Preference Queue
