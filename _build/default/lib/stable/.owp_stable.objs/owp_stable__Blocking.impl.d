lib/stable/blocking.ml: Graph List Owp_matching Preference
