lib/stable/fixtures.ml: Array Blocking Graph Option Owp_matching Owp_util Preference
