lib/stable/roommates.ml: Array Fun Hashtbl List Queue
