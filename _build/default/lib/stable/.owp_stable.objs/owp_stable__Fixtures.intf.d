lib/stable/fixtures.mli: Owp_matching Owp_util Preference
