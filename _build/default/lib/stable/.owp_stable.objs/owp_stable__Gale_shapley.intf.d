lib/stable/gale_shapley.mli: Owp_matching Preference
