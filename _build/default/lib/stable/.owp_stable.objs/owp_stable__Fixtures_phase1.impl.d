lib/stable/fixtures_phase1.ml: Array Fixtures Graph Hashtbl List Owp_matching Preference Queue
