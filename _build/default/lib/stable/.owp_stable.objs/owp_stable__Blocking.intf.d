lib/stable/blocking.mli: Owp_matching Preference
