lib/stable/roommates.mli:
