module Bmatching = Owp_matching.Bmatching

type outcome = { matching : Bmatching.t; stable : bool; rounds : int }

(* Satisfying (i, j): each saturated endpoint first drops its worst
   partner, then the pair connects.  The result is again capacity-
   feasible, and strictly improves both endpoints' view. *)
let satisfy prefs m i j =
  let drop_worst_if_saturated m x =
    if Bmatching.residual m x > 0 then m
    else
      match Blocking.worst_partner prefs m x with
      | None -> m
      | Some worst -> (
          match Graph.find_edge (Bmatching.graph m) x worst with
          | Some eid -> Bmatching.remove m eid
          | None -> assert false)
  in
  let m = drop_worst_if_saturated m i in
  let m = drop_worst_if_saturated m j in
  match Graph.find_edge (Bmatching.graph m) i j with
  | Some eid -> Bmatching.add m eid
  | None -> invalid_arg "Fixtures.satisfy: nodes are not adjacent"

let satisfy_blocking_pairs ?max_rounds ?rng prefs start =
  let g = Bmatching.graph start in
  let m_edges = Graph.edge_count g in
  let cap = Option.value max_rounds ~default:(max 1000 (50 * m_edges)) in
  let matching = ref start in
  let rounds = ref 0 in
  let pick_blocking () =
    match rng with
    | None ->
        (* first found, deterministic *)
        let found = ref None in
        (try
           Graph.iter_edges g (fun eid u v ->
               if
                 (not (Bmatching.mem !matching eid))
                 && Blocking.blocks prefs !matching u v
               then begin
                 found := Some (u, v);
                 raise Exit
               end)
         with Exit -> ());
        !found
    | Some rng -> (
        match Blocking.blocking_pairs prefs !matching with
        | [] -> None
        | pairs -> Some (Owp_util.Prng.pick rng (Array.of_list pairs)))
  in
  let stable = ref false in
  let continue = ref true in
  while !continue do
    if !rounds >= cap then continue := false
    else
      match pick_blocking () with
      | None ->
          stable := true;
          continue := false
      | Some (u, v) ->
          matching := satisfy prefs !matching u v;
          incr rounds
  done;
  { matching = !matching; stable = !stable; rounds = !rounds }

let solve ?max_rounds ?rng prefs =
  let g = Preference.graph prefs in
  let capacity = Array.init (Graph.node_count g) (Preference.quota prefs) in
  satisfy_blocking_pairs ?max_rounds ?rng prefs (Bmatching.empty g ~capacity)
