type result = Stable of int array | No_stable_matching

let validate prefs =
  let n = Array.length prefs in
  Array.iteri
    (fun i list ->
      if Array.length list <> n - 1 then
        invalid_arg "Roommates.solve: list is not complete";
      let seen = Array.make n false in
      Array.iter
        (fun j ->
          if j < 0 || j >= n || j = i || seen.(j) then
            invalid_arg "Roommates.solve: list is not a permutation of the others";
          seen.(j) <- true)
        list)
    prefs

(* The working "table": alive.(x).(y) says y is still on x's list.
   Removal is always symmetric.  rank.(x).(y) is y's position in x's
   original list (lower = better). *)
type table = {
  n : int;
  rank : int array array;
  prefs : int array array;
  alive : bool array array;
  len : int array;
}

let make_table prefs =
  let n = Array.length prefs in
  let rank = Array.make_matrix n n max_int in
  Array.iteri (fun i list -> Array.iteri (fun r j -> rank.(i).(j) <- r) list) prefs;
  {
    n;
    rank;
    prefs;
    alive = Array.init n (fun i -> Array.init n (fun j -> j <> i));
    len = Array.make n (n - 1);
  }

let remove_pair t x y =
  if t.alive.(x).(y) then begin
    t.alive.(x).(y) <- false;
    t.alive.(y).(x) <- false;
    t.len.(x) <- t.len.(x) - 1;
    t.len.(y) <- t.len.(y) - 1
  end

let first t x =
  let list = t.prefs.(x) in
  let rec go i = if i >= Array.length list then -1 else if t.alive.(x).(list.(i)) then list.(i) else go (i + 1) in
  go 0

let second t x =
  let list = t.prefs.(x) in
  let rec go i found_first =
    if i >= Array.length list then -1
    else if t.alive.(x).(list.(i)) then
      if found_first then list.(i) else go (i + 1) true
    else go (i + 1) found_first
  in
  go 0 false

let last t x =
  let list = t.prefs.(x) in
  let rec go i = if i < 0 then -1 else if t.alive.(x).(list.(i)) then list.(i) else go (i - 1) in
  go (Array.length list - 1)

(* y holds x: everyone y likes strictly less than x leaves y's list. *)
let reject_worse_than t y x =
  let rx = t.rank.(y).(x) in
  Array.iter (fun z -> if t.alive.(y).(z) && t.rank.(y).(z) > rx then remove_pair t y z) t.prefs.(y)

let phase1 t =
  let holds = Array.make t.n (-1) in
  (* holds.(y) = proposer y currently holds *)
  let next = Array.make t.n 0 in
  let free = Queue.create () in
  for x = 0 to t.n - 1 do
    Queue.push x free
  done;
  let ok = ref true in
  while !ok && not (Queue.is_empty free) do
    let x = Queue.pop free in
    (* x proposes down his list until someone holds him *)
    let placed = ref false in
    while (not !placed) && next.(x) < Array.length t.prefs.(x) do
      let y = t.prefs.(x).(next.(x)) in
      next.(x) <- next.(x) + 1;
      if t.alive.(x).(y) then begin
        let h = holds.(y) in
        if h < 0 then begin
          holds.(y) <- x;
          placed := true
        end
        else if t.rank.(y).(x) < t.rank.(y).(h) then begin
          holds.(y) <- x;
          remove_pair t y h;
          Queue.push h free;
          placed := true
        end
        else remove_pair t y x
      end
    done;
    if not !placed then ok := false
  done;
  if not !ok then None
  else begin
    (* table reduction: y holding x rejects everyone worse than x *)
    for y = 0 to t.n - 1 do
      if holds.(y) >= 0 then reject_worse_than t y holds.(y)
    done;
    if Array.exists (fun l -> l = 0) t.len then None else Some ()
  end

(* Phase 2: find and eliminate rotations until all lists are singletons. *)
let phase2 t =
  let ok = ref true in
  let find_long () =
    let rec go x = if x >= t.n then -1 else if t.len.(x) > 1 then x else go (x + 1) in
    go 0
  in
  let continue = ref (find_long ()) in
  while !ok && !continue >= 0 do
    (* walk p -> last(second(p)) until a repeat, collecting the cycle *)
    let pos = Hashtbl.create 16 in
    let seq = ref [] and idx = ref 0 and p = ref !continue and cycle_start = ref (-1) in
    while !cycle_start < 0 && !ok do
      match Hashtbl.find_opt pos !p with
      | Some i -> cycle_start := i
      | None ->
          Hashtbl.add pos !p !idx;
          seq := !p :: !seq;
          incr idx;
          let s = second t !p in
          if s < 0 then ok := false
          else begin
            let nxt = last t s in
            if nxt < 0 then ok := false else p := nxt
          end
    done;
    if !ok then begin
      let arr = Array.of_list (List.rev !seq) in
      let k = Array.length arr in
      let rot = Array.sub arr !cycle_start (k - !cycle_start) in
      (* eliminate: each y_{i+1} = second(x_i) holds x_i and rejects all
         worse; additionally y_i rejects x_i *)
      let kk = Array.length rot in
      let seconds = Array.map (fun x -> second t x) rot in
      let firsts = Array.map (fun x -> first t x) rot in
      if Array.exists (fun v -> v < 0) seconds || Array.exists (fun v -> v < 0) firsts
      then ok := false
      else begin
        for i = 0 to kk - 1 do
          remove_pair t rot.(i) firsts.(i)
        done;
        for i = 0 to kk - 1 do
          let y = seconds.(i) and x = rot.(i) in
          if t.alive.(y).(x) then reject_worse_than t y x else ok := false
        done;
        if Array.exists (fun l -> l = 0) t.len then ok := false
      end
    end;
    if !ok then continue := find_long ()
  done;
  !ok

let solve prefs =
  validate prefs;
  let n = Array.length prefs in
  if n = 0 then Stable [||]
  else begin
    let t = make_table prefs in
    match phase1 t with
    | None -> No_stable_matching
    | Some () ->
        if not (phase2 t) then No_stable_matching
        else begin
          let partner = Array.make n (-1) in
          let consistent = ref true in
          for x = 0 to n - 1 do
            let y = first t x in
            if y < 0 then consistent := false else partner.(x) <- y
          done;
          if !consistent && Array.for_all (fun y -> y >= 0 && partner.(y) >= 0) partner
             && Array.mapi (fun x y -> partner.(y) = x) partner |> Array.for_all Fun.id
          then Stable partner
          else No_stable_matching
        end
  end

let is_stable_assignment prefs partner =
  let n = Array.length prefs in
  let rank = Array.make_matrix n n max_int in
  Array.iteri (fun i list -> Array.iteri (fun r j -> rank.(i).(j) <- r) list) prefs;
  let blocking = ref false in
  for x = 0 to n - 1 do
    for y = x + 1 to n - 1 do
      if partner.(x) <> y then begin
        let x_wants = partner.(x) < 0 || rank.(x).(y) < rank.(x).(partner.(x)) in
        let y_wants = partner.(y) < 0 || rank.(y).(x) < rank.(y).(partner.(y)) in
        if x_wants && y_wants then blocking := true
      end
    done
  done;
  not !blocking
