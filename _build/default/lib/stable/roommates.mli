(** Irving's stable roommates algorithm (one-to-one, complete lists).

    The paper's b-matching problem generalises stable roommates; this
    module provides the exact classical solver as a baseline and as the
    unit-capacity stability oracle.  Input is a complete preference
    system: [prefs.(i)] is a permutation of all other agents, best
    first.  Output is a perfect stable matching when one exists
    ([n] must be even for a perfect matching).

    Runs Irving's two phases: proposal/reduction, then rotation
    elimination.  O(n²). *)

type result =
  | Stable of int array  (** [partner.(i)] for every agent *)
  | No_stable_matching

val solve : int array array -> result
(** @raise Invalid_argument if the lists are not complete permutations. *)

val is_stable_assignment : int array array -> int array -> bool
(** Does the involution [partner] admit no blocking pair under the given
    complete lists?  (Diagnostic used by tests.) *)
