(** Gale–Shapley deferred acceptance on bipartite preference systems.

    The classic baseline (paper reference [4]).  Works on any bipartite
    subset of nodes with capacities (many-to-many deferred acceptance:
    proposers propose down their lists; reviewers hold their best
    [b] proposals so far and reject the rest).  The result is
    pairwise-stable; with unit capacities it is the proposer-optimal
    stable marriage. *)

val run : Preference.t -> proposers:int array -> Owp_matching.Bmatching.t
(** [run prefs ~proposers] — every edge must join a proposer and a
    non-proposer (bipartiteness is the caller's responsibility and is
    checked).  @raise Invalid_argument if some edge joins two proposers
    or two reviewers. *)

val marriage :
  Preference.t -> proposers:int array -> (int * int) list
(** Unit-capacity convenience wrapper returning (proposer, reviewer)
    pairs (ignores the preference system's quotas and uses 1). *)
