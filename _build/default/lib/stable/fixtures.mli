(** Stable fixtures (many-to-many stable matching) via blocking-pair
    dynamics.

    The paper frames overlay construction as the stable fixtures
    problem [Irving–Scott 2007].  Solving fixtures exactly requires the
    full rotation machinery; what the overlay literature actually runs —
    and what the paper's reference [13] (Mathieu) analyses — is
    {e better-response dynamics}: repeatedly satisfy a blocking pair
    (connect the two nodes, each dropping its worst partner if
    saturated).  On acyclic preference systems this provably converges
    to the unique stable solution; on cyclic systems it may loop, which
    is precisely the paper's motivation for switching the objective to
    satisfaction maximisation.  The iteration cap makes divergence
    observable instead of fatal (experiment E8). *)

type outcome = {
  matching : Owp_matching.Bmatching.t;
  stable : bool;  (** no blocking pair remained *)
  rounds : int;  (** blocking-pair satisfactions performed *)
}

val satisfy_blocking_pairs :
  ?max_rounds:int ->
  ?rng:Owp_util.Prng.t ->
  Preference.t ->
  Owp_matching.Bmatching.t ->
  outcome
(** Run the dynamics from a given matching.  [max_rounds] defaults to
    [50 · m]; [rng], when provided, randomises the choice of blocking
    pair (first-found otherwise). *)

val solve : ?max_rounds:int -> ?rng:Owp_util.Prng.t -> Preference.t -> outcome
(** Dynamics from the empty matching using the preference quotas. *)
