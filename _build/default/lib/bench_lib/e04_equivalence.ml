(* E4 — Lemmas 4 & 6: LID and LIC select the same edge set, regardless
   of message delays (LID) or which locally heaviest edge is taken
   first (LIC strategies). *)

module Tbl = Owp_util.Tablefmt
module BM = Owp_matching.Bmatching
module Simnet = Owp_simnet.Simnet

let delay_models =
  [
    ("unit", Simnet.Unit);
    ("uniform[0.5,1.5]", Simnet.Uniform (0.5, 1.5));
    ("uniform[0.1,10]", Simnet.Uniform (0.1, 10.0));
    ("exponential(1)", Simnet.Exponential 1.0);
  ]

let run ~quick =
  let ns = if quick then [ 60 ] else [ 60; 300; 1000 ] in
  let seeds = if quick then [ 1 ] else [ 1; 2; 3 ] in
  let t =
    Tbl.create
      ~title:"E4 (Lemmas 4/6): LID edge set == LIC edge set under every schedule"
      [
        ("family", Tbl.Left);
        ("n", Tbl.Right);
        ("delay model", Tbl.Left);
        ("runs", Tbl.Right);
        ("equal sets", Tbl.Right);
        ("max |w diff|", Tbl.Right);
      ]
  in
  List.iter
    (fun family ->
      List.iter
        (fun n ->
          List.iter
            (fun (dname, delay) ->
              let runs = ref 0 and equal = ref 0 and maxdiff = ref 0.0 in
              List.iter
                (fun seed ->
                  let inst =
                    Workloads.make ~seed ~family ~pref_model:Workloads.Random_prefs ~n
                      ~quota:3
                  in
                  let lic = Exp_common.run_lic inst in
                  let lic_climb =
                    Owp_core.Lic.run ~strategy:Owp_core.Lic.Climbing inst.weights
                      ~capacity:inst.capacity
                  in
                  let lid =
                    Owp_core.Lid.run ~seed:(seed * 31) ~delay inst.weights
                      ~capacity:inst.capacity
                  in
                  incr runs;
                  let m = lid.Owp_core.Lid.matching in
                  if BM.equal m lic && BM.equal lic lic_climb then incr equal;
                  maxdiff :=
                    Float.max !maxdiff
                      (Float.abs (BM.weight m inst.weights -. BM.weight lic inst.weights)))
                seeds;
              Tbl.add_row t
                [
                  Workloads.family_name family;
                  Tbl.icell n;
                  dname;
                  Tbl.icell !runs;
                  Tbl.icell !equal;
                  Printf.sprintf "%.2e" !maxdiff;
                ])
            delay_models)
        ns)
    Workloads.standard_families;
  [ t ]

let exp =
  {
    Exp_common.id = "E4";
    title = "LID ≡ LIC under arbitrary schedules";
    paper_ref = "Lemmas 3, 4, 6";
    run;
  }
