(* E9 — the privacy/locality claim (§1, §5): peers disclose only the
   ΔS̄ value per incident edge (one scalar to each neighbour) plus
   PROP/REJ bits — never the metric, never the full list, and nothing
   beyond the immediate neighbourhood.

   Disclosure accounting per node:
   - LID:         deg_i scalars (the weight handshake) + its PROP/REJ traffic
   - list gossip: deg_i ranks to every neighbour  => deg_i² entries
   - flooding:    the whole list to everyone      => n · deg_i entries *)

module Tbl = Owp_util.Tablefmt

let run ~quick =
  let ns = if quick then [ 200 ] else [ 200; 1000; 5000 ] in
  let t =
    Tbl.create
      ~title:"E9: information disclosed per node (entries), LID vs strawmen (avg deg 8, b = 3)"
      [
        ("n", Tbl.Right);
        ("LID scalars/node", Tbl.Right);
        ("LID msgs/node", Tbl.Right);
        ("neighbour gossip", Tbl.Right);
        ("global flooding", Tbl.Right);
        ("metric disclosed?", Tbl.Left);
      ]
  in
  List.iter
    (fun n ->
      let inst =
        Workloads.make ~seed:n ~family:(Workloads.Gnm_avg_deg 8.0)
          ~pref_model:Workloads.Random_prefs ~n ~quota:3
      in
      let g = inst.graph in
      let lid = Exp_common.run_lid inst in
      let total_deg = 2 * Graph.edge_count g in
      let avg_deg = float_of_int total_deg /. float_of_int n in
      let gossip =
        let acc = ref 0.0 in
        for v = 0 to n - 1 do
          let d = float_of_int (Graph.degree g v) in
          acc := !acc +. (d *. d)
        done;
        !acc /. float_of_int n
      in
      let msgs =
        float_of_int (lid.Owp_core.Lid.prop_count + lid.Owp_core.Lid.rej_count)
        /. float_of_int n
      in
      Tbl.add_row t
        [
          Tbl.icell n;
          Tbl.fcell2 avg_deg;
          Tbl.fcell2 msgs;
          Tbl.fcell2 gossip;
          Tbl.fcell2 (float_of_int n *. avg_deg);
          "never (only DS-bar scalars)";
        ])
    ns;
  [ t ]

let exp =
  {
    Exp_common.id = "E9";
    title = "Locality and metric privacy";
    paper_ref = "§1, §5 (weight exchange)";
    run;
  }
