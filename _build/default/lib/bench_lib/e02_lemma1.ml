(* E2 — Lemma 1: discarding the dynamic satisfaction term loses at most
   a factor ½(1 + 1/b_max).

   For each quota b we (a) construct the adversarial connection set the
   proof uses (a full quota drawn from the bottom of the preference
   list) and verify the static/full ratio matches the bound exactly,
   and (b) sample random connection sets to show typical ratios are far
   better than worst case. *)

module Tbl = Owp_util.Tablefmt
module Prng = Owp_util.Prng

let adversarial_ratio ~quota ~list_len =
  (* connections occupying the last [quota] ranks, as in the proof *)
  let ranks = List.init quota (fun k -> list_len - quota + k) in
  let s_static = Satisfaction.static_of_ranks ~quota ~list_len ranks in
  let s_full = Satisfaction.of_ranks ~quota ~list_len ranks in
  s_static /. s_full

let random_ratio rng ~quota ~list_len =
  let size = 1 + Prng.int rng quota in
  let ranks = Array.to_list (Prng.sample_without_replacement rng size list_len) in
  let s_full = Satisfaction.of_ranks ~quota ~list_len ranks in
  if s_full <= 0.0 then 1.0 else Satisfaction.static_of_ranks ~quota ~list_len ranks /. s_full

let run ~quick =
  let samples = if quick then 200 else 5000 in
  let rng = Prng.create 0xE2 in
  let t =
    Tbl.create
      ~title:
        "E2 (Lemma 1): static-term approximation ratio vs the 1/2(1+1/b) bound (L = 64)"
      [
        ("b", Tbl.Right);
        ("bound 1/2(1+1/b)", Tbl.Right);
        ("adversarial ratio", Tbl.Right);
        ("random mean", Tbl.Right);
        ("random min", Tbl.Right);
        ("bound holds", Tbl.Left);
      ]
  in
  let list_len = 64 in
  List.iter
    (fun b ->
      let bound = Owp_core.Theory.lemma1_bound ~bmax:b in
      let adv = adversarial_ratio ~quota:b ~list_len in
      let rand = List.init samples (fun _ -> random_ratio rng ~quota:b ~list_len) in
      let mean = Exp_common.mean rand and mn = Exp_common.minimum rand in
      Tbl.add_row t
        [
          Tbl.icell b;
          Tbl.fcell bound;
          Tbl.fcell adv;
          Tbl.fcell mean;
          Tbl.fcell mn;
          (if adv >= bound -. 1e-9 && mn >= bound -. 1e-9 then "yes" else "VIOLATED");
        ])
    [ 1; 2; 4; 8; 16; 32 ];
  [ t ]

let exp =
  {
    Exp_common.id = "E2";
    title = "Static vs full satisfaction ratio";
    paper_ref = "Lemma 1";
    run;
  }
