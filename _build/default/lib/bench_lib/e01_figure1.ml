(* E1 — Figure 1 of the paper: worked satisfaction computation.
   A node with quota b=4 and a 7-entry preference list connects to the
   neighbours occupying preference ranks 0, 1, 3 and 5; the paper
   reports S_i = 0.893.  The table shows the per-connection breakdown
   (the rank-vs-connection-slot penalties) and the closed-form value. *)

module Tbl = Owp_util.Tablefmt

let quota = 4
let list_len = 7
let ranks = [ 0; 1; 3; 5 ]

let run ~quick:_ =
  let t =
    Tbl.create
      ~title:
        "E1 (Figure 1): satisfaction of a node with b=4, |L|=7, connections at ranks 0,1,3,5"
      [
        ("connection slot Q_i", Tbl.Right);
        ("pref rank R_i", Tbl.Right);
        ("penalty (R-Q)/(bL)", Tbl.Right);
        ("DS_ij (eq.4)", Tbl.Right);
        ("DS-bar_ij (eq.5)", Tbl.Right);
      ]
  in
  List.iteri
    (fun q r ->
      let penalty = float_of_int (r - q) /. float_of_int (quota * list_len) in
      let d = Satisfaction.delta ~quota ~list_len ~rank:r ~position:q in
      let ds = Satisfaction.static_delta ~quota ~list_len ~rank:r in
      Tbl.add_row t
        [ Tbl.icell q; Tbl.icell r; Tbl.fcell penalty; Tbl.fcell d; Tbl.fcell ds ])
    ranks;
  let s = Satisfaction.of_ranks ~quota ~list_len ranks in
  let summary =
    Tbl.create
      [ ("quantity", Tbl.Left); ("value", Tbl.Right); ("paper", Tbl.Right) ]
  in
  Tbl.add_row summary [ "S_i (eq. 1)"; Tbl.fcell s; "0.893" ];
  Tbl.add_row summary
    [ "S_i exact fraction"; Printf.sprintf "%d/%d" 25 28; "25/28" ];
  Tbl.add_row summary
    [
      "sum of DS_ij (eq. 4)";
      Tbl.fcell
        (List.fold_left ( +. ) 0.0
           (List.mapi
              (fun q r -> Satisfaction.delta ~quota ~list_len ~rank:r ~position:q)
              ranks));
      "= S_i";
    ];
  [ t; summary ]

let exp =
  {
    Exp_common.id = "E1";
    title = "Worked satisfaction example";
    paper_ref = "Figure 1, eqs. 1/4/5";
    run;
  }
