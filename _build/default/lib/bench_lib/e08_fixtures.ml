(* E8 — relation to the stable fixtures problem (§2): LID's
   satisfaction-maximising matching vs blocking-pair dynamics, on
   acyclic (bandwidth) and cyclic (random/transactions) preference
   systems.  Acyclic systems are where [Gai et al.] guarantee
   stabilization — the paper's motivation is that cyclic ones are not. *)

module Tbl = Owp_util.Tablefmt
module Fixtures = Owp_stable.Fixtures
module Blocking = Owp_stable.Blocking

let run ~quick =
  let n = if quick then 150 else 600 in
  let t =
    Tbl.create
      ~title:
        (Printf.sprintf
           "E8: LID vs blocking-pair dynamics (stable fixtures), n = %d, b = 3" n)
      [
        ("pref model", Tbl.Left);
        ("acyclic?", Tbl.Left);
        ("S(LID)", Tbl.Right);
        ("S(dynamics)", Tbl.Right);
        ("LID blocking pairs", Tbl.Right);
        ("dynamics stable?", Tbl.Left);
        ("cold rounds", Tbl.Right);
        ("warm stable?", Tbl.Left);
        ("warm rounds", Tbl.Right);
      ]
  in
  List.iter
    (fun model ->
      let inst =
        Workloads.make ~seed:5 ~family:(Workloads.Gnm_avg_deg 8.0) ~pref_model:model ~n
          ~quota:3
      in
      (* acyclicity detection is Θ(Σ deg²); sample a subgraph when big *)
      let acyclic =
        if n <= 200 then
          if Preference.is_acyclic inst.prefs then "yes" else "no"
        else
          (* shortcuts for sizes where the O(Σ deg²) search is heavy:
             a global ranking (bandwidth) or a symmetric score (latency)
             cannot produce a preference cycle — summing the defining
             inequalities around the cycle gives a contradiction, the
             same argument as the paper's Lemma 5 *)
          match model with
          | Workloads.Bandwidth_prefs -> "yes (global ranking)"
          | Workloads.Latency_prefs -> "yes (symmetric metric)"
          | _ -> "no (generic)"
      in
      let lid = Exp_common.run_lid inst in
      let s_lid = Exp_common.total_satisfaction inst.prefs lid.Owp_core.Lid.matching in
      let dyn =
        Fixtures.solve ~max_rounds:(20 * Graph.edge_count inst.graph) inst.prefs
      in
      let warm =
        Owp_stable.Fixtures_phase1.warm_solve
          ~max_rounds:(20 * Graph.edge_count inst.graph)
          inst.prefs
      in
      let s_dyn = Exp_common.total_satisfaction inst.prefs dyn.Fixtures.matching in
      Tbl.add_row t
        [
          Workloads.pref_model_name model;
          acyclic;
          Tbl.fcell s_lid;
          Tbl.fcell s_dyn;
          Tbl.icell (Blocking.count_blocking_pairs inst.prefs lid.Owp_core.Lid.matching);
          (if dyn.Fixtures.stable then "yes" else "no (cap hit)");
          Tbl.icell dyn.Fixtures.rounds;
          (if warm.Fixtures.stable then "yes" else "no (cap hit)");
          Tbl.icell warm.Fixtures.rounds;
        ])
    [
      Workloads.Bandwidth_prefs;
      Workloads.Latency_prefs;
      Workloads.Random_prefs;
      Workloads.Transaction_prefs;
    ];
  [ t ]

let exp =
  {
    Exp_common.id = "E8";
    title = "Comparison with stable fixtures dynamics";
    paper_ref = "§2 problem model; refs [3,7,13]";
    run;
  }
