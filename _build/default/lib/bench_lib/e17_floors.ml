(* E17 — individual satisfaction floors (§7 asks for per-peer minimum
   guarantees): empirical distribution of per-node satisfaction across
   algorithms — what fraction of peers end up badly served, and does
   any algorithm dominate at the low end? *)

module Tbl = Owp_util.Tablefmt
module BM = Owp_matching.Bmatching

let profile prefs m =
  let g = Preference.graph prefs in
  let xs = ref [] in
  for v = 0 to Graph.node_count g - 1 do
    if Preference.list_len prefs v > 0 && Preference.quota prefs v > 0 then
      xs := Preference.satisfaction prefs v (BM.connections m v) :: !xs
  done;
  Array.of_list !xs

let frac_below xs t =
  let c = Array.fold_left (fun a x -> if x < t then a + 1 else a) 0 xs in
  float_of_int c /. float_of_int (Array.length xs)

let run ~quick =
  let n = if quick then 300 else 1000 in
  let t =
    Tbl.create
      ~title:
        (Printf.sprintf
           "E17: per-node satisfaction floors (G(n,m) deg 8, n = %d, b = 3, random prefs)"
           n)
      [
        ("algorithm", Tbl.Left);
        ("mean S", Tbl.Right);
        ("min S", Tbl.Right);
        ("% below 0.10", Tbl.Right);
        ("% below 0.25", Tbl.Right);
        ("% below 0.50", Tbl.Right);
      ]
  in
  let inst =
    Workloads.make ~seed:17 ~family:(Workloads.Gnm_avg_deg 8.0)
      ~pref_model:Workloads.Random_prefs ~n ~quota:3
  in
  let prefs = inst.Workloads.prefs in
  let lid = (Exp_common.run_lid inst).Owp_core.Lid.matching in
  let improved, _ = Owp_core.Improve.local_search ~max_moves:(2 * n) prefs lid in
  let round_cap = 3 * Graph.edge_count inst.Workloads.graph in
  let dyn = (Owp_stable.Fixtures.solve ~max_rounds:round_cap prefs).Owp_stable.Fixtures.matching in
  let warm =
    (Owp_stable.Fixtures_phase1.warm_solve ~max_rounds:round_cap prefs)
      .Owp_stable.Fixtures.matching
  in
  List.iter
    (fun (name, m) ->
      let xs = profile prefs m in
      let s = Owp_util.Stats.summarize xs in
      Tbl.add_row t
        [
          name;
          Tbl.fcell s.Owp_util.Stats.mean;
          Tbl.fcell s.Owp_util.Stats.min;
          Tbl.pct (frac_below xs 0.10);
          Tbl.pct (frac_below xs 0.25);
          Tbl.pct (frac_below xs 0.50);
        ])
    [
      ("LID", lid);
      ("LID + local search", improved);
      ("blocking-pair dynamics", dyn);
      ("phase-1 warm dynamics", warm);
      ("global greedy", Exp_common.run_greedy inst);
    ];
  [ t ]

let exp =
  {
    Exp_common.id = "E17";
    title = "Individual satisfaction floors";
    paper_ref = "§7 (per-peer guarantees — extension)";
    run;
  }
