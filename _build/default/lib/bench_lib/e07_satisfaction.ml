(* E7 — the introduction's quality claim in practice: satisfaction
   achieved by LID across topology families, quotas and metric models. *)

module Tbl = Owp_util.Tablefmt

let run ~quick =
  let n = if quick then 400 else 2000 in
  let t1 =
    Tbl.create
      ~title:
        (Printf.sprintf
           "E7a: mean satisfaction vs quota b (LID, n = %d, random preferences)" n)
      [
        ("family", Tbl.Left);
        ("b=1", Tbl.Right);
        ("b=2", Tbl.Right);
        ("b=4", Tbl.Right);
        ("b=8", Tbl.Right);
      ]
  in
  List.iter
    (fun family ->
      let cells =
        List.map
          (fun quota ->
            let inst =
              Workloads.make ~seed:(17 * quota) ~family
                ~pref_model:Workloads.Random_prefs ~n ~quota
            in
            let lid = Exp_common.run_lid inst in
            let q = Owp_overlay.Quality.measure inst.prefs lid.Owp_core.Lid.matching in
            Tbl.fcell q.Owp_overlay.Quality.mean)
          [ 1; 2; 4; 8 ]
      in
      Tbl.add_row t1 (Workloads.family_name family :: cells))
    Workloads.standard_families;
  let t2 =
    Tbl.create
      ~title:
        (Printf.sprintf
           "E7b: quality profile per metric model (LID, BA(4), n = %d, b = 4)" n)
      [
        ("metric", Tbl.Left);
        ("mean S", Tbl.Right);
        ("median S", Tbl.Right);
        ("p05 S", Tbl.Right);
        ("jain", Tbl.Right);
        ("saturated%", Tbl.Right);
        ("top-b%", Tbl.Right);
      ]
  in
  List.iter
    (fun model ->
      let inst =
        Workloads.make ~seed:23 ~family:(Workloads.Ba 4) ~pref_model:model ~n ~quota:4
      in
      let lid = Exp_common.run_lid inst in
      let q = Owp_overlay.Quality.measure inst.prefs lid.Owp_core.Lid.matching in
      Tbl.add_row t2
        [
          Workloads.pref_model_name model;
          Tbl.fcell q.Owp_overlay.Quality.mean;
          Tbl.fcell q.Owp_overlay.Quality.median;
          Tbl.fcell q.Owp_overlay.Quality.p05;
          Tbl.fcell q.Owp_overlay.Quality.jain;
          Tbl.pct q.Owp_overlay.Quality.saturated_fraction;
          Tbl.pct q.Owp_overlay.Quality.fully_satisfied_fraction;
        ])
    [
      Workloads.Random_prefs;
      Workloads.Latency_prefs;
      Workloads.Interest_prefs 8;
      Workloads.Bandwidth_prefs;
      Workloads.Transaction_prefs;
    ];
  [ t1; t2 ]

let exp =
  {
    Exp_common.id = "E7";
    title = "Achieved satisfaction across workloads";
    paper_ref = "§1 motivation";
    run;
  }
