(** Registry of all reproduction experiments (see DESIGN.md's
    per-experiment index and EXPERIMENTS.md for paper-vs-measured). *)

val all : Exp_common.exp list
(** E1–E16 in order. *)

val find : string -> Exp_common.exp option
(** Lookup by case-insensitive id, e.g. "e3". *)

val run_all : ?quick:bool -> out:Format.formatter -> unit -> unit
(** Execute every experiment and print its tables. *)

val run_one : ?quick:bool -> out:Format.formatter -> string -> bool
(** Execute a single experiment by id; [false] if the id is unknown. *)
