module Prng = Owp_util.Prng

type family =
  | Gnp of float
  | Gnm_avg_deg of float
  | Ba of int
  | Ws of int * float
  | Geometric of float
  | Torus
  | Power_law of float * int

let family_name = function
  | Gnp p -> Printf.sprintf "G(n,p=%.3g)" p
  | Gnm_avg_deg d -> Printf.sprintf "G(n,m) deg=%.1f" d
  | Ba m -> Printf.sprintf "BA(m=%d)" m
  | Ws (k, beta) -> Printf.sprintf "WS(k=%d,b=%.2f)" k beta
  | Geometric r -> Printf.sprintf "RGG(r=%.3g)" r
  | Torus -> "Torus"
  | Power_law (e, d) -> Printf.sprintf "PL(g=%.1f,d=%d)" e d

let standard_families = [ Gnm_avg_deg 8.0; Ba 4; Ws (4, 0.1); Geometric 0.08 ]

type pref_model =
  | Random_prefs
  | Latency_prefs
  | Interest_prefs of int
  | Bandwidth_prefs
  | Transaction_prefs

let pref_model_name = function
  | Random_prefs -> "random"
  | Latency_prefs -> "latency"
  | Interest_prefs d -> Printf.sprintf "interest(%d)" d
  | Bandwidth_prefs -> "bandwidth"
  | Transaction_prefs -> "transactions"

type instance = {
  label : string;
  graph : Graph.t;
  prefs : Preference.t;
  weights : Weights.t;
  capacity : int array;
}

let build_graph rng family n =
  match family with
  | Gnp p -> (Gen.gnp rng ~n ~p, None)
  | Gnm_avg_deg d ->
      let m = min (n * (n - 1) / 2) (int_of_float (float_of_int n *. d /. 2.0)) in
      (Gen.gnm rng ~n ~m, None)
  | Ba m -> (Gen.barabasi_albert rng ~n ~m, None)
  | Ws (k, beta) -> (Gen.watts_strogatz rng ~n ~k ~beta, None)
  | Geometric r ->
      let g, pts = Gen.random_geometric rng ~n ~radius:r in
      (g, Some pts)
  | Torus ->
      let w = max 3 (int_of_float (sqrt (float_of_int n))) in
      (Gen.torus ~width:w ~height:w, None)
  | Power_law (exponent, min_degree) ->
      (Gen.configuration_power_law rng ~n ~exponent ~min_degree, None)

let build_prefs rng ~seed g pts pref_model quota =
  match pref_model with
  | Random_prefs -> Preference.random rng g ~quota
  | Latency_prefs ->
      let pts =
        match pts with
        | Some pts -> pts
        | None ->
            (* virtual coordinates for non-geometric families *)
            Array.init (Graph.node_count g) (fun _ ->
                (Prng.float rng 1.0, Prng.float rng 1.0))
      in
      Preference.of_metric g ~quota (Metric.latency pts)
  | Interest_prefs dims -> Preference.of_metric g ~quota (Metric.interest ~seed ~dims)
  | Bandwidth_prefs -> Preference.of_metric g ~quota (Metric.bandwidth ~seed)
  | Transaction_prefs -> Preference.of_metric g ~quota (Metric.transaction_history ~seed)

let make ~seed ~family ~pref_model ~n ~quota =
  let rng = Prng.create seed in
  let g, pts = build_graph rng family n in
  let q = Preference.uniform_quota g quota in
  let prefs = build_prefs rng ~seed g pts pref_model q in
  let weights = Weights.of_preference prefs in
  let capacity = Array.init (Graph.node_count g) (Preference.quota prefs) in
  {
    label =
      Printf.sprintf "%s/%s n=%d b=%d s=%d" (family_name family)
        (pref_model_name pref_model) n quota seed;
    graph = g;
    prefs;
    weights;
    capacity;
  }

let small_instances ~seeds ~n ~quota =
  let families = [ Gnp 0.5; Gnp 0.35; Ba 3 ] in
  let models = [ Random_prefs; Latency_prefs; Bandwidth_prefs ] in
  List.concat_map
    (fun seed ->
      List.concat_map
        (fun family ->
          List.map
            (fun pref_model -> make ~seed ~family ~pref_model ~n ~quota)
            models)
        families)
    seeds
