lib/bench_lib/exp_common.mli: Owp_core Owp_matching Owp_prefs Owp_util Workloads
