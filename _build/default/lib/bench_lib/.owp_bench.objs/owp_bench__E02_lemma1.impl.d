lib/bench_lib/e02_lemma1.ml: Array Exp_common List Owp_core Owp_util Satisfaction
