lib/bench_lib/e16_dynamic.ml: Array Exp_common Graph List Owp_core Owp_matching Owp_overlay Owp_util Preference Printf Weights Workloads
