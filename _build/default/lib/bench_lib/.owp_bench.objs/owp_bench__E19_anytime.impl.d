lib/bench_lib/e19_anytime.ml: Array Exp_common Graph List Owp_core Owp_util Preference Printf Workloads
