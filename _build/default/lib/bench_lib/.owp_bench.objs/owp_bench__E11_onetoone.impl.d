lib/bench_lib/e11_onetoone.ml: Exp_common Graph List Owp_core Owp_matching Owp_util Workloads
