lib/bench_lib/e05_messages.ml: Exp_common Graph List Owp_core Owp_util Workloads
