lib/bench_lib/e15_robust.ml: Array Exp_common Graph List Owp_core Owp_matching Owp_util Preference Printf Workloads
