lib/bench_lib/e03_half_approx.ml: Array Exp_common Graph List Owp_core Owp_matching Owp_util Printf Weights Workloads
