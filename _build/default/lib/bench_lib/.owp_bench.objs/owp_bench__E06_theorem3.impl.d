lib/bench_lib/e06_theorem3.ml: Exp_common Graph List Owp_core Owp_matching Owp_util Preference Workloads
