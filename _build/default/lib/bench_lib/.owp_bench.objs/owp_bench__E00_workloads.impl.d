lib/bench_lib/e00_workloads.ml: Exp_common Graph List Metrics Owp_util Preference Printf Weights Workloads
