lib/bench_lib/exp_common.ml: Float Hashtbl List Owp_core Owp_matching Owp_util Preference Printf Workloads
