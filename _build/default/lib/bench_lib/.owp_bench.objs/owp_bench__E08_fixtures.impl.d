lib/bench_lib/e08_fixtures.ml: Exp_common Graph List Owp_core Owp_stable Owp_util Preference Printf Workloads
