lib/bench_lib/e20_coverage.ml: Exp_common List Owp_core Owp_matching Owp_util Printf Workloads
