lib/bench_lib/e17_floors.ml: Array Exp_common Graph List Owp_core Owp_matching Owp_stable Owp_util Preference Printf Workloads
