lib/bench_lib/workloads.ml: Array Gen Graph List Metric Owp_util Preference Printf Weights
