lib/bench_lib/e04_equivalence.ml: Exp_common Float List Owp_core Owp_matching Owp_simnet Owp_util Printf Workloads
