lib/bench_lib/e10_churn.ml: Array Exp_common Graph List Owp_overlay Owp_util Printf Workloads
