lib/bench_lib/e12_ties.ml: Array Exp_common Float Graph List Owp_core Owp_matching Owp_util Printf Weights Workloads
