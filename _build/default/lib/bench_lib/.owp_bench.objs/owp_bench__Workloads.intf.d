lib/bench_lib/workloads.mli: Graph Preference Weights
