lib/bench_lib/e13_stretch.ml: Array Exp_common Float Gen Graph List Metric Owp_core Owp_matching Owp_util Preference Printf Spath Weights
