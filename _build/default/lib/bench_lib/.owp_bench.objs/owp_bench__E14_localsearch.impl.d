lib/bench_lib/e14_localsearch.ml: Exp_common Graph List Owp_core Owp_matching Owp_util Workloads
