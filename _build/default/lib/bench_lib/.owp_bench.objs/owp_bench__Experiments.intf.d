lib/bench_lib/experiments.mli: Exp_common Format
