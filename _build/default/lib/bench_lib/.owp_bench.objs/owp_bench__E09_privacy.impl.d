lib/bench_lib/e09_privacy.ml: Exp_common Graph List Owp_core Owp_util Workloads
