lib/bench_lib/e18_bipartite.ml: Array Exp_common Gen Graph List Owp_core Owp_matching Owp_util Preference Printf Weights
