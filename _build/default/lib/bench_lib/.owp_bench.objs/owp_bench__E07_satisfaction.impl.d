lib/bench_lib/e07_satisfaction.ml: Exp_common List Owp_core Owp_overlay Owp_util Printf Workloads
