lib/bench_lib/e01_figure1.ml: Exp_common List Owp_util Printf Satisfaction
