(** Workload generation for the experiment harness: named graph
    families × preference-list models, as used across E2–E12. *)

type family =
  | Gnp of float  (** Erdős–Rényi with the given edge probability *)
  | Gnm_avg_deg of float  (** uniform random graph with given average degree *)
  | Ba of int  (** Barabási–Albert with attachment m *)
  | Ws of int * float  (** Watts–Strogatz (k, beta) *)
  | Geometric of float  (** random geometric with radius *)
  | Torus  (** 2-D torus (width ≈ sqrt n) *)
  | Power_law of float * int  (** configuration model (exponent, min degree) *)

val family_name : family -> string

val standard_families : family list
(** The four families the experiment tables sweep by default. *)

type pref_model =
  | Random_prefs  (** uniformly random lists — adversarial, cyclic *)
  | Latency_prefs  (** geometric distance metric (requires coordinates) *)
  | Interest_prefs of int  (** interest profiles with the given dims *)
  | Bandwidth_prefs  (** global capacity ranking — acyclic *)
  | Transaction_prefs  (** asymmetric pseudo-random history — cyclic *)

val pref_model_name : pref_model -> string

type instance = {
  label : string;
  graph : Graph.t;
  prefs : Preference.t;
  weights : Weights.t;
  capacity : int array;
}

val make :
  seed:int -> family:family -> pref_model:pref_model -> n:int -> quota:int -> instance
(** Build a full instance; coordinates are generated internally when the
    pref model needs them (latency on a non-geometric family samples
    virtual coordinates). *)

val small_instances : seeds:int list -> n:int -> quota:int -> instance list
(** Dense-enough small instances across families/models for the exact
    comparisons (E3/E6/E11). *)
