let all =
  [
    E00_workloads.exp;
    E01_figure1.exp;
    E02_lemma1.exp;
    E03_half_approx.exp;
    E04_equivalence.exp;
    E05_messages.exp;
    E06_theorem3.exp;
    E07_satisfaction.exp;
    E08_fixtures.exp;
    E09_privacy.exp;
    E10_churn.exp;
    E11_onetoone.exp;
    E12_ties.exp;
    E13_stretch.exp;
    E14_localsearch.exp;
    E15_robust.exp;
    E16_dynamic.exp;
    E17_floors.exp;
    E18_bipartite.exp;
    E19_anytime.exp;
    E20_coverage.exp;
  ]

let find id =
  let id = String.lowercase_ascii id in
  List.find_opt (fun e -> String.lowercase_ascii e.Exp_common.id = id) all

let print_exp ~quick out (e : Exp_common.exp) =
  Format.fprintf out "%s@." (Exp_common.header e);
  let tables = e.Exp_common.run ~quick in
  List.iter (fun t -> Format.fprintf out "%s@." (Owp_util.Tablefmt.render t)) tables

let run_all ?(quick = false) ~out () = List.iter (print_exp ~quick out) all

let run_one ?(quick = false) ~out id =
  match find id with
  | None -> false
  | Some e ->
      print_exp ~quick out e;
      true
