(* E20 — coverage: satisfaction-driven matching vs the maximum possible
   number of pairings (Edmonds' maximum cardinality matching, the
   paper's ref [2]).  Preferring heavy edges can leave peers unmatched
   that a cardinality-maximising matcher would serve; this quantifies
   that price across families (b = 1, where the comparison is exact). *)

module Tbl = Owp_util.Tablefmt
module BM = Owp_matching.Bmatching

let run ~quick =
  let n = if quick then 300 else 1500 in
  let t =
    Tbl.create
      ~title:
        (Printf.sprintf
           "E20: pairings made vs maximum possible (b = 1, n = %d, random prefs)" n)
      [
        ("family", Tbl.Left);
        ("max matching", Tbl.Right);
        ("LID pairs", Tbl.Right);
        ("coverage", Tbl.Right);
        ("LID satisfaction", Tbl.Right);
        ("max-card satisfaction", Tbl.Right);
      ]
  in
  List.iter
    (fun family ->
      let inst =
        Workloads.make ~seed:20 ~family ~pref_model:Workloads.Random_prefs ~n ~quota:1
      in
      let g = inst.Workloads.graph in
      let lid = (Exp_common.run_lid inst).Owp_core.Lid.matching in
      let card = Owp_matching.Blossom.maximum_matching g in
      let s m = Exp_common.total_satisfaction inst.Workloads.prefs m in
      Tbl.add_row t
        [
          Workloads.family_name family;
          Tbl.icell (BM.size card);
          Tbl.icell (BM.size lid);
          Tbl.pct (float_of_int (BM.size lid) /. float_of_int (max 1 (BM.size card)));
          Tbl.fcell (s lid);
          Tbl.fcell (s card);
        ])
    Workloads.standard_families;
  [ t ]

let exp =
  {
    Exp_common.id = "E20";
    title = "Coverage vs maximum cardinality";
    paper_ref = "ref [2] Edmonds (coverage baseline)";
    run;
  }
