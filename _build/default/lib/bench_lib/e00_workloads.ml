(* E0 — workload characterization ("Table 1"): structural properties of
   the graph families and preference models every other experiment
   sweeps, so their results can be read in context. *)

module Tbl = Owp_util.Tablefmt

let run ~quick =
  let n = if quick then 300 else 2000 in
  let t =
    Tbl.create
      ~title:(Printf.sprintf "E0a: graph families at n = %d (seed 1)" n)
      [
        ("family", Tbl.Left);
        ("m", Tbl.Right);
        ("avg deg", Tbl.Right);
        ("max deg", Tbl.Right);
        ("clustering", Tbl.Right);
        ("assortativity", Tbl.Right);
        ("diam >=", Tbl.Right);
        ("connected", Tbl.Left);
      ]
  in
  List.iter
    (fun family ->
      let inst =
        Workloads.make ~seed:1 ~family ~pref_model:Workloads.Random_prefs ~n ~quota:3
      in
      let g = inst.Workloads.graph in
      Tbl.add_row t
        [
          Workloads.family_name family;
          Tbl.icell (Graph.edge_count g);
          Tbl.fcell2 (Metrics.average_degree g);
          Tbl.icell (Graph.max_degree g);
          Tbl.fcell (Metrics.global_clustering g);
          Tbl.fcell (Metrics.degree_assortativity g);
          Tbl.icell (Metrics.eccentricity_lower_bound g);
          (if Metrics.is_connected g then "yes" else "no");
        ])
    (Workloads.standard_families @ [ Workloads.Power_law (2.5, 2); Workloads.Torus ]);
  (* preference models: acyclicity on a sample small enough for the
     O(Σ deg²) cycle search *)
  let t2 =
    Tbl.create
      ~title:"E0b: preference models on G(n,m) deg 8, n = 150 (acyclicity sampled over 5 seeds)"
      [
        ("model", Tbl.Left);
        ("acyclic instances", Tbl.Right);
        ("weights distinct", Tbl.Right);
      ]
  in
  List.iter
    (fun model ->
      let acyclic = ref 0 and distinct = ref 0 and edges = ref 0 in
      for seed = 1 to 5 do
        let inst =
          Workloads.make ~seed ~family:(Workloads.Gnm_avg_deg 8.0) ~pref_model:model
            ~n:150 ~quota:3
        in
        if Preference.is_acyclic inst.Workloads.prefs then incr acyclic;
        distinct := !distinct + Weights.distinct_weights inst.Workloads.weights;
        edges := !edges + Graph.edge_count inst.Workloads.graph
      done;
      Tbl.add_row t2
        [
          Workloads.pref_model_name model;
          Printf.sprintf "%d/5" !acyclic;
          Tbl.pct (float_of_int !distinct /. float_of_int !edges);
        ])
    [
      Workloads.Random_prefs;
      Workloads.Latency_prefs;
      Workloads.Interest_prefs 8;
      Workloads.Bandwidth_prefs;
      Workloads.Transaction_prefs;
    ];
  [ t; t2 ]

let exp =
  {
    Exp_common.id = "E0";
    title = "Workload characterization";
    paper_ref = "setup for E2–E17";
    run;
  }
