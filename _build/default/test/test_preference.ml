module P = Preference
module Prng = Owp_util.Prng

let diamond () =
  (* 0-1, 0-2, 1-2, 1-3, 2-3 *)
  Graph.of_edge_list 4 [ (0, 1); (0, 2); (1, 2); (1, 3); (2, 3) ]

let test_create_and_rank () =
  let g = diamond () in
  let lists = [| [| 2; 1 |]; [| 0; 3; 2 |]; [| 3; 0; 1 |]; [| 1; 2 |] |] in
  let p = P.create g ~quota:[| 1; 2; 2; 1 |] ~lists in
  Alcotest.(check int) "rank 0->2" 0 (P.rank p 0 2);
  Alcotest.(check int) "rank 0->1" 1 (P.rank p 0 1);
  Alcotest.(check int) "rank 1->2" 2 (P.rank p 1 2);
  Alcotest.(check bool) "preferred" true (P.preferred p 1 0 2);
  Alcotest.(check (array int)) "list back" [| 3; 0; 1 |] (P.list p 2);
  Alcotest.(check int) "list_len" 3 (P.list_len p 1)

let test_rank_not_neighbor () =
  let g = diamond () in
  let p = P.random (Prng.create 1) g ~quota:(P.uniform_quota g 2) in
  Alcotest.check_raises "not adjacent" Not_found (fun () -> ignore (P.rank p 0 3))

let test_create_validation () =
  let g = diamond () in
  let bad_len = [| [| 2 |]; [| 0; 3; 2 |]; [| 3; 0; 1 |]; [| 1; 2 |] |] in
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Preference.create: list is not a permutation of the neighbourhood")
    (fun () -> ignore (P.create g ~quota:[| 1; 1; 1; 1 |] ~lists:bad_len));
  let non_nbr = [| [| 2; 3 |]; [| 0; 3; 2 |]; [| 3; 0; 1 |]; [| 1; 2 |] |] in
  Alcotest.check_raises "non neighbour"
    (Invalid_argument "Preference.create: list contains a non-neighbour") (fun () ->
      ignore (P.create g ~quota:[| 1; 1; 1; 1 |] ~lists:non_nbr));
  let dup = [| [| 2; 2 |]; [| 0; 3; 2 |]; [| 3; 0; 1 |]; [| 1; 2 |] |] in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Preference.create: duplicate entry in preference list") (fun () ->
      ignore (P.create g ~quota:[| 1; 1; 1; 1 |] ~lists:dup));
  Alcotest.check_raises "negative quota" (Invalid_argument "Preference.create: negative quota")
    (fun () ->
      ignore
        (P.create g ~quota:[| -1; 1; 1; 1 |]
           ~lists:[| [| 2; 1 |]; [| 0; 3; 2 |]; [| 3; 0; 1 |]; [| 1; 2 |] |]))

let test_quota_clamped () =
  let g = diamond () in
  let p = P.random (Prng.create 2) g ~quota:(P.uniform_quota g 10) in
  Alcotest.(check int) "clamped to degree" 2 (P.quota p 0);
  Alcotest.(check int) "clamped to degree 3" 3 (P.quota p 1);
  Alcotest.(check int) "max quota" 3 (P.max_quota p)

let test_of_scores_ordering () =
  let g = diamond () in
  let score _ j = float_of_int j in
  let p = P.of_scores g ~quota:(P.uniform_quota g 2) score in
  (* node 1's neighbours are 0, 2, 3 -> descending score: 3, 2, 0 *)
  Alcotest.(check (array int)) "descending score" [| 3; 2; 0 |] (P.list p 1)

let test_of_scores_tie_break () =
  let g = diamond () in
  let p = P.of_scores g ~quota:(P.uniform_quota g 2) (fun _ _ -> 1.0) in
  (* all tied: lower id first *)
  Alcotest.(check (array int)) "id tie-break" [| 0; 2; 3 |] (P.list p 1)

let test_random_lists_are_permutations () =
  let g = Gen.gnm (Prng.create 7) ~n:40 ~m:120 in
  let p = P.random (Prng.create 8) g ~quota:(P.uniform_quota g 3) in
  for v = 0 to 39 do
    let l = Array.copy (P.list p v) in
    Array.sort compare l;
    Alcotest.(check (array int)) "permutation of neighbourhood" (Graph.neighbor_nodes g v) l
  done

let test_satisfaction_wrappers () =
  let g = diamond () in
  let lists = [| [| 2; 1 |]; [| 0; 3; 2 |]; [| 3; 0; 1 |]; [| 1; 2 |] |] in
  let p = P.create g ~quota:[| 2; 2; 2; 2 |] ~lists in
  (* node 1 connected to its top two: satisfaction 1 *)
  Alcotest.(check (float 1e-9)) "top two" 1.0 (P.satisfaction p 1 [ 0; 3 ]);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (P.satisfaction p 1 []);
  Alcotest.(check bool) "static <= full" true
    (P.static_satisfaction p 1 [ 0; 2 ] <= P.satisfaction p 1 [ 0; 2 ] +. 1e-12)

let test_total_satisfaction () =
  let g = diamond () in
  let lists = [| [| 2; 1 |]; [| 0; 3; 2 |]; [| 3; 0; 1 |]; [| 1; 2 |] |] in
  let p = P.create g ~quota:[| 1; 1; 1; 1 |] ~lists in
  (* match 0-1 and 2-3: nodes 1 and 2 get their top choice (S = 1),
     nodes 0 and 3 their second of two (S = 1 - 1/(1*2) = 1/2) *)
  let conns = [| [ 1 ]; [ 0 ]; [ 3 ]; [ 2 ] |] in
  Alcotest.(check (float 1e-9)) "known total" 3.0 (P.total_satisfaction p conns)

let test_isolated_node () =
  let g = Graph.of_edge_list 3 [ (0, 1) ] in
  let p = P.random (Prng.create 3) g ~quota:(P.uniform_quota g 2) in
  Alcotest.(check int) "quota 0" 0 (P.quota p 2);
  Alcotest.(check (float 1e-9)) "satisfaction 0" 0.0 (P.satisfaction p 2 [])

let test_acyclic_bandwidth () =
  let g = Gen.gnm (Prng.create 11) ~n:30 ~m:90 in
  let p = P.of_metric g ~quota:(P.uniform_quota g 2) (Metric.bandwidth ~seed:1) in
  Alcotest.(check bool) "global ranking is acyclic" true (P.is_acyclic p)

let test_cycle_detected () =
  (* triangle where each prefers the next over the previous *)
  let g = Graph.of_edge_list 3 [ (0, 1); (1, 2); (0, 2) ] in
  let lists = [| [| 1; 2 |]; [| 2; 0 |]; [| 0; 1 |] |] in
  let p = P.create g ~quota:[| 1; 1; 1 |] ~lists in
  (match P.find_preference_cycle p with
  | None -> Alcotest.fail "expected a preference cycle"
  | Some cycle ->
      Alcotest.(check bool) "cycle length >= 3" true (List.length cycle >= 3));
  Alcotest.(check bool) "not acyclic" false (P.is_acyclic p)

let test_cycle_validity () =
  (* whenever a cycle is reported on a random system, verify it *)
  let g = Gen.gnm (Prng.create 21) ~n:25 ~m:80 in
  let p = P.random (Prng.create 22) g ~quota:(P.uniform_quota g 2) in
  match P.find_preference_cycle p with
  | None -> () (* rare but legal *)
  | Some cycle ->
      let arr = Array.of_list cycle in
      let k = Array.length arr in
      Alcotest.(check bool) "length >= 3" true (k >= 3);
      for i = 0 to k - 1 do
        let prev = arr.((i + k - 1) mod k) and cur = arr.(i) and next = arr.((i + 1) mod k) in
        Alcotest.(check bool) "adjacent" true (Graph.mem_edge g cur next);
        Alcotest.(check bool) "prefers next over prev" true (P.preferred p cur next prev)
      done

let suite =
  [
    Alcotest.test_case "create and rank" `Quick test_create_and_rank;
    Alcotest.test_case "rank not neighbour" `Quick test_rank_not_neighbor;
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "quota clamped" `Quick test_quota_clamped;
    Alcotest.test_case "of_scores ordering" `Quick test_of_scores_ordering;
    Alcotest.test_case "of_scores tie-break" `Quick test_of_scores_tie_break;
    Alcotest.test_case "random lists are permutations" `Quick test_random_lists_are_permutations;
    Alcotest.test_case "satisfaction wrappers" `Quick test_satisfaction_wrappers;
    Alcotest.test_case "total satisfaction" `Quick test_total_satisfaction;
    Alcotest.test_case "isolated node" `Quick test_isolated_node;
    Alcotest.test_case "acyclic bandwidth" `Quick test_acyclic_bandwidth;
    Alcotest.test_case "cycle detected" `Quick test_cycle_detected;
    Alcotest.test_case "cycle validity" `Quick test_cycle_validity;
  ]
