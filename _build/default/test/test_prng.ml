module Prng = Owp_util.Prng

let check = Alcotest.(check bool)

let test_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Prng.bits64 a) (Prng.bits64 b) then incr same
  done;
  check "different seeds diverge" true (!same < 4)

let test_copy_preserves_stream () =
  let a = Prng.create 7 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  for _ = 1 to 50 do
    Alcotest.(check int64) "copy replays" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_split_diverges () =
  let a = Prng.create 7 in
  let b = Prng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Prng.bits64 a) (Prng.bits64 b) then incr same
  done;
  check "split streams differ" true (!same < 4)

let test_int_bounds () =
  let g = Prng.create 3 in
  for _ = 1 to 10_000 do
    let bound = 1 + Prng.int g 100 in
    let v = Prng.int g bound in
    check "0 <= v < bound" true (v >= 0 && v < bound)
  done

let test_int_rejects_bad_bound () =
  let g = Prng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0))

let test_int_in_range () =
  let g = Prng.create 5 in
  for _ = 1 to 1000 do
    let v = Prng.int_in g (-5) 5 in
    check "in [-5,5]" true (v >= -5 && v <= 5)
  done

let test_int_covers_values () =
  let g = Prng.create 11 in
  let seen = Array.make 10 false in
  for _ = 1 to 2000 do
    seen.(Prng.int g 10) <- true
  done;
  check "all residues hit" true (Array.for_all Fun.id seen)

let test_float_bounds () =
  let g = Prng.create 13 in
  for _ = 1 to 10_000 do
    let v = Prng.float g 1.0 in
    check "0 <= v < 1" true (v >= 0.0 && v < 1.0)
  done

let test_float_mean () =
  let g = Prng.create 17 in
  let n = 20_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Prng.float g 1.0
  done;
  let mean = !acc /. float_of_int n in
  check "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.02)

let test_bernoulli_rate () =
  let g = Prng.create 19 in
  let hits = ref 0 and n = 20_000 in
  for _ = 1 to n do
    if Prng.bernoulli g 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  check "rate near 0.3" true (Float.abs (rate -. 0.3) < 0.02)

let test_exponential_mean () =
  let g = Prng.create 23 in
  let n = 20_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Prng.exponential g 2.0
  done;
  check "mean near 2.0" true (Float.abs ((!acc /. float_of_int n) -. 2.0) < 0.1)

let test_exponential_positive () =
  let g = Prng.create 29 in
  for _ = 1 to 1000 do
    check "positive" true (Prng.exponential g 1.0 >= 0.0)
  done

let test_gaussian_moments () =
  let g = Prng.create 31 in
  let n = 30_000 in
  let acc = ref 0.0 and acc2 = ref 0.0 in
  for _ = 1 to n do
    let x = Prng.gaussian g ~mu:1.0 ~sigma:2.0 in
    acc := !acc +. x;
    acc2 := !acc2 +. (x *. x)
  done;
  let mean = !acc /. float_of_int n in
  let var = (!acc2 /. float_of_int n) -. (mean *. mean) in
  check "mu" true (Float.abs (mean -. 1.0) < 0.05);
  check "sigma^2" true (Float.abs (var -. 4.0) < 0.2)

let test_shuffle_is_permutation () =
  let g = Prng.create 37 in
  let a = Array.init 100 Fun.id in
  Prng.shuffle_in_place g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 Fun.id) sorted

let test_permutation_uniform_spot () =
  let g = Prng.create 41 in
  (* position of element 0 should be roughly uniform *)
  let counts = Array.make 5 0 in
  for _ = 1 to 5000 do
    let p = Prng.permutation g 5 in
    let pos = ref 0 in
    Array.iteri (fun i x -> if x = 0 then pos := i) p;
    counts.(!pos) <- counts.(!pos) + 1
  done;
  Array.iter (fun c -> check "roughly uniform" true (c > 800 && c < 1200)) counts

let test_sample_without_replacement () =
  let g = Prng.create 43 in
  for _ = 1 to 200 do
    let k = Prng.int g 20 and n = 20 + Prng.int g 80 in
    let s = Prng.sample_without_replacement g k n in
    Alcotest.(check int) "size" k (Array.length s);
    let tbl = Hashtbl.create k in
    Array.iter
      (fun v ->
        check "range" true (v >= 0 && v < n);
        check "distinct" false (Hashtbl.mem tbl v);
        Hashtbl.add tbl v ())
      s
  done

let test_sample_full_range () =
  let g = Prng.create 47 in
  let s = Prng.sample_without_replacement g 10 10 in
  let sorted = Array.copy s in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "k = n is a permutation" (Array.init 10 Fun.id) sorted

let test_sample_invalid () =
  let g = Prng.create 53 in
  Alcotest.check_raises "k > n" (Invalid_argument "Prng.sample_without_replacement")
    (fun () -> ignore (Prng.sample_without_replacement g 11 10))

let test_pick () =
  let g = Prng.create 59 in
  let a = [| 5; 6; 7 |] in
  for _ = 1 to 100 do
    check "picked member" true (Array.mem (Prng.pick g a) a)
  done

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy preserves stream" `Quick test_copy_preserves_stream;
    Alcotest.test_case "split diverges" `Quick test_split_diverges;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int rejects bad bound" `Quick test_int_rejects_bad_bound;
    Alcotest.test_case "int_in range" `Quick test_int_in_range;
    Alcotest.test_case "int covers values" `Quick test_int_covers_values;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "float mean" `Quick test_float_mean;
    Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "shuffle is permutation" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "permutation uniform spot" `Quick test_permutation_uniform_spot;
    Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
    Alcotest.test_case "sample full range" `Quick test_sample_full_range;
    Alcotest.test_case "sample invalid" `Quick test_sample_invalid;
    Alcotest.test_case "pick" `Quick test_pick;
  ]
