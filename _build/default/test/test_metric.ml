module M = Metric

let test_determinism () =
  let m1 = M.uniform ~seed:5 and m2 = M.uniform ~seed:5 in
  for i = 0 to 10 do
    for j = 0 to 10 do
      Alcotest.(check (float 0.0)) "same seed same score" (M.score m1 i j) (M.score m2 i j)
    done
  done

let test_seed_changes_scores () =
  let m1 = M.uniform ~seed:5 and m2 = M.uniform ~seed:6 in
  let diff = ref 0 in
  for i = 0 to 9 do
    for j = 0 to 9 do
      if M.score m1 i j <> M.score m2 i j then incr diff
    done
  done;
  Alcotest.(check bool) "most scores differ" true (!diff > 90)

let test_latency_prefers_closer () =
  let pts = [| (0.0, 0.0); (0.1, 0.0); (0.9, 0.9) |] in
  let m = M.latency pts in
  Alcotest.(check bool) "closer scores higher" true (M.score m 0 1 > M.score m 0 2);
  Alcotest.(check (float 1e-12)) "symmetric" (M.score m 0 2) (M.score m 2 0)

let test_bandwidth_is_global () =
  let m = M.bandwidth ~seed:3 in
  (* all observers agree on the score of a target *)
  for target = 0 to 5 do
    let base = M.score m 0 target in
    for observer = 1 to 5 do
      Alcotest.(check (float 0.0)) "observer independent" base (M.score m observer target)
    done
  done

let test_transactions_asymmetric () =
  let m = M.transaction_history ~seed:8 in
  let asym = ref 0 in
  for i = 0 to 9 do
    for j = i + 1 to 10 do
      if M.score m i j <> M.score m j i then incr asym
    done
  done;
  Alcotest.(check bool) "mostly asymmetric" true (!asym > 40)

let test_symmetric_uniform () =
  let m = M.symmetric_uniform ~seed:9 in
  for i = 0 to 8 do
    for j = 0 to 8 do
      if i <> j then
        Alcotest.(check (float 0.0)) "pairwise symmetric" (M.score m i j) (M.score m j i)
    done
  done

let test_interest_positive_and_symmetric () =
  let m = M.interest ~seed:2 ~dims:6 in
  Alcotest.(check bool) "positive dot" true (M.score m 1 2 >= 0.0);
  Alcotest.(check (float 1e-12)) "symmetric" (M.score m 3 4) (M.score m 4 3)

let test_interest_invalid () =
  Alcotest.check_raises "dims" (Invalid_argument "Metric.interest: dims must be positive")
    (fun () -> ignore (M.interest ~seed:1 ~dims:0))

let test_combine () =
  let a = M.bandwidth ~seed:1 and b = M.uniform ~seed:2 in
  let c = M.combine "mixed" [ (0.5, a); (0.5, b) ] in
  Alcotest.(check string) "name" "mixed" (M.name c);
  Alcotest.(check (float 1e-12)) "linear"
    ((0.5 *. M.score a 1 2) +. (0.5 *. M.score b 1 2))
    (M.score c 1 2);
  Alcotest.check_raises "empty" (Invalid_argument "Metric.combine: empty combination")
    (fun () -> ignore (M.combine "x" []))

let test_scores_in_unit_interval () =
  let m = M.uniform ~seed:4 in
  for i = 0 to 20 do
    for j = 0 to 20 do
      let s = M.score m i j in
      Alcotest.(check bool) "in [0,1)" true (s >= 0.0 && s < 1.0)
    done
  done

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed changes scores" `Quick test_seed_changes_scores;
    Alcotest.test_case "latency prefers closer" `Quick test_latency_prefers_closer;
    Alcotest.test_case "bandwidth is global" `Quick test_bandwidth_is_global;
    Alcotest.test_case "transactions asymmetric" `Quick test_transactions_asymmetric;
    Alcotest.test_case "symmetric uniform" `Quick test_symmetric_uniform;
    Alcotest.test_case "interest metric" `Quick test_interest_positive_and_symmetric;
    Alcotest.test_case "interest invalid" `Quick test_interest_invalid;
    Alcotest.test_case "combine" `Quick test_combine;
    Alcotest.test_case "scores in unit interval" `Quick test_scores_in_unit_interval;
  ]
