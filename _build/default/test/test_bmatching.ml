module BM = Owp_matching.Bmatching
module Prng = Owp_util.Prng

let square () = Graph.of_edge_list 4 [ (0, 1); (1, 2); (2, 3); (0, 3) ]

let test_empty () =
  let g = square () in
  let m = BM.empty g ~capacity:[| 1; 1; 1; 1 |] in
  Alcotest.(check int) "size" 0 (BM.size m);
  Alcotest.(check (list int)) "no edges" [] (BM.edge_ids m);
  Alcotest.(check int) "residual" 1 (BM.residual m 0);
  Alcotest.(check bool) "not maximal" false (BM.is_maximal m)

let test_of_edge_ids () =
  let g = square () in
  let m = BM.of_edge_ids g ~capacity:[| 1; 1; 1; 1 |] [ 0; 2 ] in
  Alcotest.(check int) "size" 2 (BM.size m);
  Alcotest.(check bool) "mem 0" true (BM.mem m 0);
  Alcotest.(check bool) "mem 1" false (BM.mem m 1);
  Alcotest.(check (list int)) "connections of 0" [ 1 ] (BM.connections m 0);
  Alcotest.(check bool) "maximal" true (BM.is_maximal m);
  Alcotest.(check bool) "saturated" true (BM.saturated m 0)

let test_capacity_enforced () =
  let g = square () in
  Alcotest.check_raises "over capacity"
    (Invalid_argument "Bmatching.of_edge_ids: capacity exceeded") (fun () ->
      ignore (BM.of_edge_ids g ~capacity:[| 1; 1; 1; 1 |] [ 0; 1 ]));
  Alcotest.check_raises "duplicate" (Invalid_argument "Bmatching.of_edge_ids: duplicate edge id")
    (fun () -> ignore (BM.of_edge_ids g ~capacity:[| 2; 2; 2; 2 |] [ 0; 0 ]));
  Alcotest.check_raises "range" (Invalid_argument "Bmatching.of_edge_ids: edge id out of range")
    (fun () -> ignore (BM.of_edge_ids g ~capacity:[| 2; 2; 2; 2 |] [ 9 ]))

let test_b2_allows_two () =
  let g = square () in
  let m = BM.of_edge_ids g ~capacity:[| 2; 2; 2; 2 |] [ 0; 1; 2; 3 ] in
  Alcotest.(check int) "all four" 4 (BM.size m);
  Alcotest.(check int) "degree 2" 2 (BM.degree m 1);
  Alcotest.(check (list int)) "connections sorted" [ 0; 2 ] (BM.connections m 1)

let test_add_remove () =
  let g = square () in
  let m = BM.empty g ~capacity:[| 1; 1; 1; 1 |] in
  let m1 = BM.add m 0 in
  Alcotest.(check int) "added" 1 (BM.size m1);
  Alcotest.(check int) "original untouched" 0 (BM.size m);
  let m2 = BM.remove m1 0 in
  Alcotest.(check int) "removed" 0 (BM.size m2);
  Alcotest.check_raises "remove absent" (Invalid_argument "Bmatching.remove: edge not selected")
    (fun () -> ignore (BM.remove m 0));
  Alcotest.check_raises "add infeasible" (Invalid_argument "Bmatching.add: capacity exceeded")
    (fun () -> ignore (BM.add m1 1))

let test_equal_and_symdiff () =
  let g = square () in
  let a = BM.of_edge_ids g ~capacity:[| 2; 2; 2; 2 |] [ 0; 2 ] in
  let b = BM.of_edge_ids g ~capacity:[| 2; 2; 2; 2 |] [ 2; 0 ] in
  let c = BM.of_edge_ids g ~capacity:[| 2; 2; 2; 2 |] [ 1; 2 ] in
  Alcotest.(check bool) "order irrelevant" true (BM.equal a b);
  Alcotest.(check bool) "different" false (BM.equal a c);
  Alcotest.(check (list int)) "symdiff" [ 0; 1 ] (BM.symmetric_difference a c)

let test_weight () =
  let g = square () in
  let w = Weights.of_array g [| 1.0; 2.0; 3.0; 4.0 |] in
  let m = BM.of_edge_ids g ~capacity:[| 1; 1; 1; 1 |] [ 0; 2 ] in
  Alcotest.(check (float 1e-9)) "weight sum" 4.0 (BM.weight m w)

let test_connection_lists () =
  let g = square () in
  let m = BM.of_edge_ids g ~capacity:[| 1; 1; 1; 1 |] [ 0; 2 ] in
  let lists = BM.connection_lists m in
  Alcotest.(check (list int)) "node 0" [ 1 ] lists.(0);
  Alcotest.(check (list int)) "node 3" [ 2 ] lists.(3)

let test_zero_capacity () =
  let g = square () in
  let m = BM.empty g ~capacity:[| 0; 0; 0; 0 |] in
  Alcotest.(check bool) "maximal trivially" true (BM.is_maximal m);
  Alcotest.check_raises "cannot add" (Invalid_argument "Bmatching.add: capacity exceeded")
    (fun () -> ignore (BM.add m 0))

let prop_construction_respects_capacity =
  QCheck2.Test.make ~name:"valid constructions keep degree <= capacity" ~count:200
    QCheck2.Gen.(
      pair (int_range 0 1000) (list_size (int_range 0 30) (int_range 0 59)))
    (fun (seed, candidate) ->
      let g = Gen.gnm (Prng.create seed) ~n:15 ~m:60 in
      let capacity = Array.make 15 2 in
      let dedup = List.sort_uniq compare candidate in
      match BM.of_edge_ids g ~capacity dedup with
      | m ->
          let ok = ref true in
          for v = 0 to 14 do
            if BM.degree m v > 2 then ok := false
          done;
          !ok
      | exception Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "of_edge_ids" `Quick test_of_edge_ids;
    Alcotest.test_case "capacity enforced" `Quick test_capacity_enforced;
    Alcotest.test_case "b=2 allows two" `Quick test_b2_allows_two;
    Alcotest.test_case "add/remove" `Quick test_add_remove;
    Alcotest.test_case "equal and symdiff" `Quick test_equal_and_symdiff;
    Alcotest.test_case "weight" `Quick test_weight;
    Alcotest.test_case "connection lists" `Quick test_connection_lists;
    Alcotest.test_case "zero capacity" `Quick test_zero_capacity;
    QCheck_alcotest.to_alcotest prop_construction_respects_capacity;
  ]
