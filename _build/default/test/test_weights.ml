module P = Preference
module W = Weights
module Prng = Owp_util.Prng

let tiny () =
  let g = Graph.of_edge_list 3 [ (0, 1); (1, 2) ] in
  let lists = [| [| 1 |]; [| 2; 0 |]; [| 1 |] |] in
  (g, P.create g ~quota:[| 1; 2; 1 |] ~lists)

let test_eq9_value () =
  let g, p = tiny () in
  let w = W.of_preference p in
  (* edge (0,1): node 0 side = (1 - 0/1)/1 = 1; node 1 side = (1 - 1/2)/2 = 0.25 *)
  (match Graph.find_edge g 0 1 with
  | Some e -> Alcotest.(check (float 1e-9)) "w(0,1)" 1.25 (W.weight w e)
  | None -> Alcotest.fail "edge");
  (* edge (1,2): node 1 side = (1 - 0/2)/2 = 0.5; node 2 side = 1 *)
  match Graph.find_edge g 1 2 with
  | Some e -> Alcotest.(check (float 1e-9)) "w(1,2)" 1.5 (W.weight w e)
  | None -> Alcotest.fail "edge"

let test_weight_uv () =
  let _, p = tiny () in
  let w = W.of_preference p in
  Alcotest.(check (float 1e-9)) "weight_uv symmetric lookup" (W.weight_uv w 0 1)
    (W.weight_uv w 1 0);
  Alcotest.check_raises "not adjacent" Not_found (fun () -> ignore (W.weight_uv w 0 2))

let test_combiners () =
  let _, p = tiny () in
  let sum = W.of_preference ~combiner:W.Sum p in
  let wmin = W.of_preference ~combiner:W.Min p in
  let prod = W.of_preference ~combiner:W.Product p in
  Alcotest.(check (float 1e-9)) "min(0,1)" 0.25 (W.weight_uv wmin 0 1);
  Alcotest.(check (float 1e-9)) "prod(0,1)" 0.25 (W.weight_uv prod 0 1);
  Alcotest.(check (float 1e-9)) "sum(0,1)" 1.25 (W.weight_uv sum 0 1)

let test_of_array_arity () =
  let g = Gen.ring 4 in
  Alcotest.check_raises "arity" (Invalid_argument "Weights.of_array: arity mismatch")
    (fun () -> ignore (W.of_array g [| 1.0 |]))

let test_total_order () =
  let g = Gen.gnm (Prng.create 3) ~n:20 ~m:60 in
  (* heavy ties: only two distinct weights *)
  let w = W.of_array g (Array.init 60 (fun e -> if e mod 2 = 0 then 1.0 else 2.0)) in
  Alcotest.(check int) "two distinct" 2 (W.distinct_weights w);
  for e = 0 to 59 do
    Alcotest.(check int) "reflexive zero" 0 (W.compare_edges w e e);
    for f = 0 to 59 do
      if e <> f then begin
        let c = W.compare_edges w e f in
        Alcotest.(check bool) "strict" true (c <> 0);
        Alcotest.(check int) "antisymmetric" (-c) (W.compare_edges w f e)
      end
    done
  done

let test_order_transitive_spot () =
  let g = Gen.gnm (Prng.create 5) ~n:12 ~m:30 in
  let w = W.of_array g (Array.make 30 1.0) in
  (* all-equal weights: order must still be total and transitive *)
  let sorted = List.init 30 Fun.id |> List.sort (W.compare_edges w) in
  let rec check_sorted = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "ascending" true (W.compare_edges w a b < 0);
        check_sorted rest
    | _ -> ()
  in
  check_sorted sorted

let test_heavier_consistent () =
  let g, p = tiny () in
  let w = W.of_preference p in
  let e01 = Option.get (Graph.find_edge g 0 1) in
  let e12 = Option.get (Graph.find_edge g 1 2) in
  Alcotest.(check bool) "1.5 beats 1.25" true (W.heavier w e12 e01);
  Alcotest.(check bool) "asym" false (W.heavier w e01 e12)

let test_total_and_max () =
  let _, p = tiny () in
  let w = W.of_preference p in
  Alcotest.(check (float 1e-9)) "total" 2.75 (W.total w [| 0; 1 |]);
  (match W.max_weight_edge w with
  | Some e -> Alcotest.(check (float 1e-9)) "max is 1.5" 1.5 (W.weight w e)
  | None -> Alcotest.fail "nonempty");
  let empty = W.of_array (Graph.of_edge_list 2 []) [||] in
  Alcotest.(check bool) "empty max" true (W.max_weight_edge empty = None)

let test_positive_on_quota_graphs () =
  let g = Gen.gnm (Prng.create 13) ~n:50 ~m:150 in
  let p = P.random (Prng.create 14) g ~quota:(P.uniform_quota g 3) in
  let w = W.of_preference p in
  Graph.iter_edges g (fun e _ _ ->
      Alcotest.(check bool) "eq9 weight positive" true (W.weight w e > 0.0))

let suite =
  [
    Alcotest.test_case "eq. 9 value" `Quick test_eq9_value;
    Alcotest.test_case "weight_uv" `Quick test_weight_uv;
    Alcotest.test_case "combiners" `Quick test_combiners;
    Alcotest.test_case "of_array arity" `Quick test_of_array_arity;
    Alcotest.test_case "total order" `Quick test_total_order;
    Alcotest.test_case "order transitive spot" `Quick test_order_transitive_spot;
    Alcotest.test_case "heavier consistent" `Quick test_heavier_consistent;
    Alcotest.test_case "total and max" `Quick test_total_and_max;
    Alcotest.test_case "positive on quota graphs" `Quick test_positive_on_quota_graphs;
  ]
