module BM = Owp_matching.Bmatching
module Greedy = Owp_matching.Greedy
module Exact = Owp_matching.Exact
module Prng = Owp_util.Prng

let path3_weights wts =
  (* path 0-1-2-3 with given weights *)
  let g = Graph.of_edge_list 4 [ (0, 1); (1, 2); (2, 3) ] in
  (g, Weights.of_array g wts)

let test_greedy_picks_heavier () =
  let _, w = path3_weights [| 1.0; 5.0; 1.0 |] in
  let m = Greedy.run w ~capacity:[| 1; 1; 1; 1 |] in
  Alcotest.(check (list int)) "middle edge only" [ 1 ] (BM.edge_ids m)

let test_greedy_maximal () =
  let _, w = path3_weights [| 3.0; 2.0; 3.0 |] in
  let m = Greedy.run w ~capacity:[| 1; 1; 1; 1 |] in
  Alcotest.(check (list int)) "both ends" [ 0; 2 ] (BM.edge_ids m);
  Alcotest.(check bool) "maximal" true (BM.is_maximal m)

let test_greedy_capacity () =
  let g = Gen.star 6 in
  let w = Weights.of_array g [| 5.0; 4.0; 3.0; 2.0; 1.0 |] in
  let m = Greedy.run w ~capacity:[| 2; 1; 1; 1; 1; 1 |] in
  Alcotest.(check int) "hub limited to 2" 2 (BM.size m);
  Alcotest.(check (list int)) "two heaviest" [ 0; 1 ] (BM.edge_ids m)

let test_greedy_restricted () =
  let _, w = path3_weights [| 1.0; 5.0; 1.0 |] in
  let m = Greedy.run_restricted w ~capacity:[| 1; 1; 1; 1 |] ~allowed:(fun e -> e <> 1) in
  Alcotest.(check (list int)) "skips forbidden" [ 0; 2 ] (BM.edge_ids m)

let test_exact_simple () =
  (* greedy is suboptimal here: greedy takes 5, exact takes 4+4 *)
  let _, w = path3_weights [| 4.0; 5.0; 4.0 |] in
  let opt = Exact.max_weight_bmatching w ~capacity:[| 1; 1; 1; 1 |] in
  Alcotest.(check (list int)) "exact both ends" [ 0; 2 ] (BM.edge_ids opt);
  Alcotest.(check (float 1e-9)) "value" 8.0 (Exact.max_weight_value w ~capacity:[| 1; 1; 1; 1 |])

let test_exact_capacity2 () =
  let g = Graph.of_edge_list 3 [ (0, 1); (1, 2); (0, 2) ] in
  let w = Weights.of_array g [| 3.0; 2.0; 1.0 |] in
  (* b=1: best single... triangle with unit caps: any one edge + none -> best edge pair
     shares vertices, so optimum is one edge of weight 3 *)
  let opt1 = Exact.max_weight_bmatching w ~capacity:[| 1; 1; 1 |] in
  Alcotest.(check (float 1e-9)) "triangle b=1" 3.0 (BM.weight opt1 w);
  (* b=2 everywhere: all three edges fit *)
  let opt2 = Exact.max_weight_bmatching w ~capacity:[| 2; 2; 2 |] in
  Alcotest.(check (float 1e-9)) "triangle b=2" 6.0 (BM.weight opt2 w)

let test_exact_budget () =
  let g = Gen.complete 10 in
  let w = Weights.of_array g (Array.make 45 1.0) in
  Alcotest.(check bool) "refuses big" true
    (try
       ignore (Exact.max_weight_bmatching ~max_edges:10 w ~capacity:(Array.make 10 1));
       false
     with Invalid_argument _ -> true)

let test_exact_negative_weights () =
  let _, w = path3_weights [| -1.0; 2.0; -3.0 |] in
  let opt = Exact.max_weight_bmatching w ~capacity:[| 1; 1; 1; 1 |] in
  Alcotest.(check (list int)) "only positive edge" [ 1 ] (BM.edge_ids opt)

let random_small seed =
  let rng = Prng.create seed in
  let g = Gen.gnp rng ~n:8 ~p:0.45 in
  let p = Preference.random rng g ~quota:(Preference.uniform_quota g 2) in
  (g, p, Weights.of_preference p)

let prop_greedy_half_of_exact =
  QCheck2.Test.make ~name:"greedy >= 1/2 exact (small random)" ~count:60
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let g, p, w = random_small seed in
      ignore p;
      if Graph.edge_count g > 30 then true
      else begin
        let capacity = Array.make 8 2 in
        let greedy = Greedy.run w ~capacity in
        let opt = Exact.max_weight_bmatching ~max_edges:30 w ~capacity in
        BM.weight greedy w >= (0.5 *. BM.weight opt w) -. 1e-9
      end)

let prop_exact_at_least_greedy =
  QCheck2.Test.make ~name:"exact >= greedy" ~count:60
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let g, _, w = random_small seed in
      if Graph.edge_count g > 30 then true
      else begin
        let capacity = Array.make 8 2 in
        let greedy = Greedy.run w ~capacity in
        let opt = Exact.max_weight_bmatching ~max_edges:30 w ~capacity in
        BM.weight opt w >= BM.weight greedy w -. 1e-9
      end)

let test_exact_satisfaction_small () =
  let g = Graph.of_edge_list 4 [ (0, 1); (1, 2); (2, 3) ] in
  let lists = [| [| 1 |]; [| 0; 2 |]; [| 3; 1 |]; [| 2 |] |] in
  let p = Preference.create g ~quota:[| 1; 1; 1; 1 |] ~lists in
  let opt, s = Exact.max_satisfaction_bmatching p in
  (* matching {0-1, 2-3} gives S = 1 + 1 + 1 + 1 = 4 (all top choices) *)
  Alcotest.(check (float 1e-9)) "optimal satisfaction" 4.0 s;
  Alcotest.(check (list int)) "edges" [ 0; 2 ] (BM.edge_ids opt)

let prop_satisfaction_opt_dominates_weight_opt =
  QCheck2.Test.make ~name:"satisfaction optimum >= satisfaction of weight optimum"
    ~count:40
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let g, p, w = random_small seed in
      if Graph.edge_count g > 20 then true
      else begin
        let capacity = Array.init 8 (Preference.quota p) in
        let wopt = Exact.max_weight_bmatching ~max_edges:20 w ~capacity in
        let _, s_opt = Exact.max_satisfaction_bmatching ~max_edges:20 p in
        let s_w = Preference.total_satisfaction p (BM.connection_lists wopt) in
        ignore g;
        s_opt >= s_w -. 1e-9
      end)

(* Pruning-free exhaustive reference for the satisfaction optimum. *)
let brute_force_satisfaction prefs =
  let g = Preference.graph prefs in
  let n = Graph.node_count g and m = Graph.edge_count g in
  let capacity = Array.init n (Preference.quota prefs) in
  let residual = Array.copy capacity in
  let conns = Array.make n [] in
  let best = ref 0.0 in
  let total () =
    let acc = ref 0.0 in
    for v = 0 to n - 1 do
      acc := !acc +. Preference.satisfaction prefs v conns.(v)
    done;
    !acc
  in
  let rec go k =
    if k = m then best := Float.max !best (total ())
    else begin
      let u, v = Graph.edge_endpoints g k in
      if residual.(u) > 0 && residual.(v) > 0 then begin
        residual.(u) <- residual.(u) - 1;
        residual.(v) <- residual.(v) - 1;
        conns.(u) <- v :: conns.(u);
        conns.(v) <- u :: conns.(v);
        go (k + 1);
        conns.(u) <- List.tl conns.(u);
        conns.(v) <- List.tl conns.(v);
        residual.(u) <- residual.(u) + 1;
        residual.(v) <- residual.(v) + 1
      end;
      go (k + 1)
    end
  in
  go 0;
  !best

let prop_satisfaction_bb_equals_bruteforce =
  QCheck2.Test.make ~name:"satisfaction B&B equals pruning-free exhaustive" ~count:30
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Prng.create seed in
      let g = Gen.gnp rng ~n:7 ~p:0.4 in
      if Graph.edge_count g > 12 then true
      else begin
        let p = Preference.random rng g ~quota:(Preference.uniform_quota g 2) in
        let _, s = Exact.max_satisfaction_bmatching ~max_edges:12 p in
        Float.abs (s -. brute_force_satisfaction p) < 1e-9
      end)

let test_bipartite_matches_bb () =
  for seed = 1 to 8 do
    let rng = Prng.create seed in
    let g = Gen.random_bipartite rng ~left:4 ~right:5 ~p:0.6 in
    if Graph.edge_count g <= 24 && Graph.edge_count g > 0 then begin
      let w =
        Weights.of_array g
          (Array.init (Graph.edge_count g) (fun _ -> Prng.float rng 10.0))
      in
      let capacity = Array.make 9 2 in
      let flow = Exact.max_weight_bipartite w ~capacity ~left:4 in
      let bb = Exact.max_weight_bmatching ~max_edges:24 w ~capacity in
      Alcotest.(check (float 1e-6)) "flow = b&b" (BM.weight bb w) (BM.weight flow w)
    end
  done

let test_bipartite_rejects_nonbipartite () =
  let g = Graph.of_edge_list 3 [ (0, 1); (1, 2); (0, 2) ] in
  let w = Weights.of_array g [| 1.0; 1.0; 1.0 |] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Exact.max_weight_bipartite w ~capacity:[| 1; 1; 1 |] ~left:2);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "greedy picks heavier" `Quick test_greedy_picks_heavier;
    Alcotest.test_case "greedy maximal" `Quick test_greedy_maximal;
    Alcotest.test_case "greedy capacity" `Quick test_greedy_capacity;
    Alcotest.test_case "greedy restricted" `Quick test_greedy_restricted;
    Alcotest.test_case "exact simple" `Quick test_exact_simple;
    Alcotest.test_case "exact capacity 2" `Quick test_exact_capacity2;
    Alcotest.test_case "exact budget" `Quick test_exact_budget;
    Alcotest.test_case "exact negative weights" `Quick test_exact_negative_weights;
    QCheck_alcotest.to_alcotest prop_greedy_half_of_exact;
    QCheck_alcotest.to_alcotest prop_exact_at_least_greedy;
    Alcotest.test_case "exact satisfaction small" `Quick test_exact_satisfaction_small;
    QCheck_alcotest.to_alcotest prop_satisfaction_opt_dominates_weight_opt;
    QCheck_alcotest.to_alcotest prop_satisfaction_bb_equals_bruteforce;
    Alcotest.test_case "bipartite flow = b&b" `Quick test_bipartite_matches_bb;
    Alcotest.test_case "bipartite rejects triangle" `Quick test_bipartite_rejects_nonbipartite;
  ]
