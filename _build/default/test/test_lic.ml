module Lic = Owp_core.Lic
module Theory = Owp_core.Theory
module BM = Owp_matching.Bmatching
module Exact = Owp_matching.Exact
module Prng = Owp_util.Prng

let random_instance seed n avg_deg quota =
  let rng = Prng.create seed in
  let m = n * avg_deg / 2 in
  let g = Gen.gnm rng ~n ~m in
  let p = Preference.random rng g ~quota:(Preference.uniform_quota g quota) in
  let w = Weights.of_preference p in
  let capacity = Array.init n (Preference.quota p) in
  (g, p, w, capacity)

let test_path_example () =
  let g = Graph.of_edge_list 4 [ (0, 1); (1, 2); (2, 3) ] in
  let w = Weights.of_array g [| 4.0; 5.0; 4.0 |] in
  let m = Lic.run w ~capacity:[| 1; 1; 1; 1 |] in
  (* greedy takes the middle edge: LIC is a 1/2-approximation, not exact *)
  Alcotest.(check (list int)) "locally heaviest first" [ 1 ] (BM.edge_ids m)

let test_capacity_respected () =
  let _, _, w, capacity = random_instance 1 60 8 3 in
  let m = Lic.run w ~capacity in
  for v = 0 to 59 do
    Alcotest.(check bool) "quota" true (BM.degree m v <= capacity.(v))
  done

let test_zero_capacity_nodes () =
  let g = Graph.of_edge_list 3 [ (0, 1); (1, 2) ] in
  let w = Weights.of_array g [| 1.0; 2.0 |] in
  let m = Lic.run w ~capacity:[| 0; 1; 1 |] in
  Alcotest.(check (list int)) "skips capacity-0 node" [ 1 ] (BM.edge_ids m)

let test_empty_graph () =
  let g = Graph.of_edge_list 3 [] in
  let w = Weights.of_array g [||] in
  let m = Lic.run w ~capacity:[| 1; 1; 1 |] in
  Alcotest.(check int) "empty" 0 (BM.size m)

let prop_strategies_agree =
  QCheck2.Test.make ~name:"LIC strategies select the same edge set (Lemma 6)" ~count:60
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let _, _, w, capacity = random_instance seed 30 6 2 in
      let a = Lic.run ~strategy:Lic.Heaviest_first w ~capacity in
      let b = Lic.run ~strategy:Lic.Climbing w ~capacity in
      let c = Lic.run ~strategy:(Lic.Random_climb (Prng.create (seed + 1))) w ~capacity in
      BM.equal a b && BM.equal b c)

let prop_output_greedy_stable =
  QCheck2.Test.make ~name:"LIC output is maximal and greedy-stable" ~count:60
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let _, _, w, capacity = random_instance seed 40 6 3 in
      let m = Lic.run w ~capacity in
      BM.is_maximal m && Theory.is_greedy_stable w m)

let prop_half_approx_small =
  QCheck2.Test.make ~name:"LIC >= 1/2 OPT weight (Theorem 2, exact check)" ~count:40
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let g, _, w, capacity = random_instance seed 9 4 2 in
      if Graph.edge_count g > 26 then true
      else begin
        let lic = Lic.run w ~capacity in
        let opt = Exact.max_weight_bmatching ~max_edges:26 w ~capacity in
        BM.weight lic w >= (0.5 *. BM.weight opt w) -. 1e-9
      end)

let prop_deterministic =
  QCheck2.Test.make ~name:"LIC deterministic for fixed input" ~count:20
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let _, _, w, capacity = random_instance seed 30 6 2 in
      BM.equal (Lic.run w ~capacity) (Lic.run w ~capacity))

let suite =
  [
    Alcotest.test_case "path example" `Quick test_path_example;
    Alcotest.test_case "capacity respected" `Quick test_capacity_respected;
    Alcotest.test_case "zero capacity nodes" `Quick test_zero_capacity_nodes;
    Alcotest.test_case "empty graph" `Quick test_empty_graph;
    QCheck_alcotest.to_alcotest prop_strategies_agree;
    QCheck_alcotest.to_alcotest prop_output_greedy_stable;
    QCheck_alcotest.to_alcotest prop_half_approx_small;
    QCheck_alcotest.to_alcotest prop_deterministic;
  ]
