module Stats = Owp_util.Stats

let feq = Alcotest.(check (float 1e-9))

let test_mean () =
  feq "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  feq "empty mean" 0.0 (Stats.mean [||]);
  feq "single" 7.0 (Stats.mean [| 7.0 |])

let test_variance () =
  feq "variance" 2.5 (Stats.variance [| 1.0; 2.0; 3.0; 4.0; 5.0 |]);
  feq "constant" 0.0 (Stats.variance [| 3.0; 3.0; 3.0 |]);
  feq "short sample" 0.0 (Stats.variance [| 3.0 |])

let test_stddev () = feq "stddev" (sqrt 2.5) (Stats.stddev [| 1.0; 2.0; 3.0; 4.0; 5.0 |])

let test_percentile () =
  let xs = [| 10.0; 20.0; 30.0; 40.0 |] in
  feq "p0" 10.0 (Stats.percentile xs 0.0);
  feq "p100" 40.0 (Stats.percentile xs 1.0);
  feq "median interp" 25.0 (Stats.percentile xs 0.5);
  feq "p25" 17.5 (Stats.percentile xs 0.25);
  feq "singleton" 5.0 (Stats.percentile [| 5.0 |] 0.9)

let test_percentile_unsorted_input () =
  feq "order independent" 25.0 (Stats.percentile [| 40.0; 10.0; 30.0; 20.0 |] 0.5)

let test_percentile_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty sample")
    (fun () -> ignore (Stats.percentile [||] 0.5))

let test_summarize () =
  let s = Stats.summarize [| 4.0; 1.0; 3.0; 2.0 |] in
  Alcotest.(check int) "n" 4 s.Stats.n;
  feq "mean" 2.5 s.Stats.mean;
  feq "min" 1.0 s.Stats.min;
  feq "max" 4.0 s.Stats.max;
  feq "median" 2.5 s.Stats.median

let test_summarize_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty sample")
    (fun () -> ignore (Stats.summarize [||]))

let test_histogram () =
  let bins = Stats.histogram [| 0.0; 0.1; 0.9; 1.0; 0.5 |] ~bins:2 in
  Alcotest.(check int) "two bins" 2 (Array.length bins);
  let _, _, c0 = bins.(0) and _, _, c1 = bins.(1) in
  Alcotest.(check int) "total count" 5 (c0 + c1);
  Alcotest.(check int) "low bin" 2 c0

let test_histogram_constant () =
  let bins = Stats.histogram [| 2.0; 2.0 |] ~bins:3 in
  let total = Array.fold_left (fun a (_, _, c) -> a + c) 0 bins in
  Alcotest.(check int) "all placed" 2 total

let test_histogram_empty () =
  Alcotest.(check int) "no bins" 0 (Array.length (Stats.histogram [||] ~bins:4))

let prop_summary_invariants =
  QCheck2.Test.make ~name:"summary invariants" ~count:300
    QCheck2.Gen.(array_size (int_range 1 100) (float_range (-50.0) 50.0))
    (fun xs ->
      let s = Stats.summarize xs in
      s.Stats.min <= s.Stats.median
      && s.Stats.median <= s.Stats.max
      && s.Stats.min <= s.Stats.mean
      && s.Stats.mean <= s.Stats.max
      && s.Stats.stddev >= 0.0
      && s.Stats.p05 <= s.Stats.median
      && s.Stats.median <= s.Stats.p95)

let suite =
  [
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "variance" `Quick test_variance;
    Alcotest.test_case "stddev" `Quick test_stddev;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "percentile unsorted" `Quick test_percentile_unsorted_input;
    Alcotest.test_case "percentile empty" `Quick test_percentile_empty;
    Alcotest.test_case "summarize" `Quick test_summarize;
    Alcotest.test_case "summarize empty" `Quick test_summarize_empty;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "histogram constant" `Quick test_histogram_constant;
    Alcotest.test_case "histogram empty" `Quick test_histogram_empty;
    QCheck_alcotest.to_alcotest prop_summary_invariants;
  ]
