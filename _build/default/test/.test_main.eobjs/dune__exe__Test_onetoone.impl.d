test/test_onetoone.ml: Alcotest Array Gen Graph Owp_core Owp_matching Owp_util QCheck2 QCheck_alcotest Weights
