test/test_extensions.ml: Alcotest Array Gen Graph List Metric Owp_core Owp_matching Owp_overlay Owp_stable Owp_util Preference QCheck2 QCheck_alcotest Weights
