test/test_satisfaction.ml: Alcotest Float Fun List QCheck2 QCheck_alcotest Satisfaction
