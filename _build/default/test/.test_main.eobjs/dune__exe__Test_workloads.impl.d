test/test_workloads.ml: Alcotest Array Graph List Owp_bench Owp_util Preference String Weights
