test/test_graph_metrics.ml: Alcotest Array Gen Graph Metrics Owp_util
