test/test_dsu.ml: Alcotest Array Fun List Owp_util QCheck2 QCheck_alcotest
