test/test_bmatching.ml: Alcotest Array Gen Graph List Owp_matching Owp_util QCheck2 QCheck_alcotest Weights
