test/test_overlay.ml: Alcotest Array Gen Graph Metric Owp_core Owp_matching Owp_overlay Owp_util Preference
