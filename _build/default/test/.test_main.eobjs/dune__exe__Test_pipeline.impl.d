test/test_pipeline.ml: Alcotest Array Float Gen Owp_core Owp_matching Owp_util Preference
