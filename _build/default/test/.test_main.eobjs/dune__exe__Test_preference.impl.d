test/test_preference.ml: Alcotest Array Gen Graph List Metric Owp_util Preference
