test/test_heap.ml: Alcotest Array Int List Owp_util QCheck2 QCheck_alcotest
