test/test_gen.ml: Alcotest Array Float Gen Graph Metrics Owp_util
