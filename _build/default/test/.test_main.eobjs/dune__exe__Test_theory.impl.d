test/test_theory.ml: Alcotest Array Gen Graph Owp_core Owp_matching Owp_util Preference QCheck2 QCheck_alcotest Weights
