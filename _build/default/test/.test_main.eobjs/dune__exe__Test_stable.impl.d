test/test_stable.ml: Alcotest Array Fun Gen Graph List Metric Owp_matching Owp_stable Owp_util Preference QCheck2 QCheck_alcotest
