test/test_churn.ml: Alcotest Array Gen Graph List Owp_matching Owp_overlay Owp_util Preference Weights
