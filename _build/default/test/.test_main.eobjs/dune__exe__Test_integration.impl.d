test/test_integration.ml: Alcotest Array Gen Graph List Owp_core Owp_matching Owp_stable Owp_util Preference QCheck2 QCheck_alcotest Weights
