test/test_graph.ml: Alcotest Graph List QCheck2 QCheck_alcotest
