test/test_simnet.ml: Alcotest List Owp_simnet
