test/test_greedy_exact.ml: Alcotest Array Float Gen Graph List Owp_matching Owp_util Preference QCheck2 QCheck_alcotest Weights
