test/test_lid.ml: Alcotest Array Gen Graph List Owp_core Owp_matching Owp_simnet Owp_util Preference QCheck2 QCheck_alcotest Weights
