test/test_invariants.ml: Array Float Gen Graph List Owp_core Owp_matching Owp_overlay Owp_simnet Owp_util Preference QCheck2 QCheck_alcotest Weights
