test/test_metric.ml: Alcotest Metric
