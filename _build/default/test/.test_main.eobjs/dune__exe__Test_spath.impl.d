test/test_spath.ml: Alcotest Array Gen Graph List Metrics Owp_graph Owp_util
