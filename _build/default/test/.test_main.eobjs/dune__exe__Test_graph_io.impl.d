test/test_graph_io.ml: Alcotest Array Filename Fun Gen Graph Graph_io Owp_util Sys
