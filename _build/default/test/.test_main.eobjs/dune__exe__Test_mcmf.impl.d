test/test_mcmf.ml: Alcotest Owp_matching
