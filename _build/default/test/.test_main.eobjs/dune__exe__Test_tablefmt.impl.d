test/test_tablefmt.ml: Alcotest List Owp_util String
