test/test_blossom.ml: Alcotest Array Gen Graph Owp_matching Owp_util QCheck2 QCheck_alcotest Weights
