test/test_weights.ml: Alcotest Array Fun Gen Graph List Option Owp_util Preference Weights
