test/test_stats.ml: Alcotest Array Owp_util QCheck2 QCheck_alcotest
