module Spath = Owp_graph.Spath
module Prng = Owp_util.Prng

let feq = Alcotest.(check (float 1e-9))

let weighted_path () =
  (* 0 -1.0- 1 -2.0- 2 -4.0- 3 *)
  let g = Graph.of_edge_list 4 [ (0, 1); (1, 2); (2, 3) ] in
  let length = function 0 -> 1.0 | 1 -> 2.0 | _ -> 4.0 in
  (g, length)

let test_path_distances () =
  let g, length = weighted_path () in
  let d = Spath.dijkstra g ~length 0 in
  Alcotest.(check (array (float 1e-9))) "distances" [| 0.0; 1.0; 3.0; 7.0 |] d

let test_unreachable () =
  let g = Graph.of_edge_list 3 [ (0, 1) ] in
  let d = Spath.dijkstra g ~length:(fun _ -> 1.0) 0 in
  Alcotest.(check bool) "infinite" true (d.(2) = infinity)

let test_shortcut_beats_long_edge () =
  (* triangle with a long direct edge and a short two-hop detour *)
  let g = Graph.of_edge_list 3 [ (0, 2); (0, 1); (1, 2) ] in
  let length eid =
    let u, v = Graph.edge_endpoints g eid in
    if (u, v) = (0, 2) then 10.0 else 1.0
  in
  let d = Spath.dijkstra g ~length 0 in
  feq "detour wins" 2.0 d.(2)

let test_negative_length_rejected () =
  let g = Graph.of_edge_list 2 [ (0, 1) ] in
  Alcotest.check_raises "negative" (Invalid_argument "Spath.dijkstra: negative length")
    (fun () -> ignore (Spath.dijkstra g ~length:(fun _ -> -1.0) 0))

let test_restricted () =
  let g, length = weighted_path () in
  let d = Spath.dijkstra_restricted g ~length ~allowed:(fun e -> e <> 1) 0 in
  feq "reachable part" 1.0 d.(1);
  Alcotest.(check bool) "cut off" true (d.(2) = infinity)

let test_dijkstra_matches_bfs_unit_lengths () =
  let g = Gen.gnm (Prng.create 4) ~n:60 ~m:150 in
  let d = Spath.dijkstra g ~length:(fun _ -> 1.0) 0 in
  let bfs = Metrics.bfs_distances g 0 in
  Array.iteri
    (fun v hops ->
      if hops < 0 then Alcotest.(check bool) "both unreachable" true (d.(v) = infinity)
      else feq "hop count" (float_of_int hops) d.(v))
    bfs

let test_stretch_identity_subgraph () =
  let g = Gen.gnm (Prng.create 5) ~n:40 ~m:120 in
  let samples = [ (0, 1); (2, 3); (4, 5) ] in
  let xs =
    Spath.path_stretch g ~length:(fun _ -> 1.0) ~subgraph:(fun _ -> true) ~samples
  in
  List.iter (fun x -> feq "stretch 1 on full subgraph" 1.0 x) xs

let test_stretch_disconnected_subgraph () =
  let g = Graph.of_edge_list 3 [ (0, 1); (1, 2) ] in
  let xs =
    Spath.path_stretch g ~length:(fun _ -> 1.0) ~subgraph:(fun e -> e = 0)
      ~samples:[ (0, 2) ]
  in
  Alcotest.(check bool) "infinite stretch" true (List.hd xs = infinity)

let suite =
  [
    Alcotest.test_case "path distances" `Quick test_path_distances;
    Alcotest.test_case "unreachable" `Quick test_unreachable;
    Alcotest.test_case "shortcut beats long edge" `Quick test_shortcut_beats_long_edge;
    Alcotest.test_case "negative length rejected" `Quick test_negative_length_rejected;
    Alcotest.test_case "restricted" `Quick test_restricted;
    Alcotest.test_case "dijkstra = bfs on unit lengths" `Quick test_dijkstra_matches_bfs_unit_lengths;
    Alcotest.test_case "stretch identity" `Quick test_stretch_identity_subgraph;
    Alcotest.test_case "stretch disconnected" `Quick test_stretch_disconnected_subgraph;
  ]
