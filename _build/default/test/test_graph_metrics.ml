let path n = Gen.path n

let test_components_connected () =
  let g = path 5 in
  let labels, count = Metrics.connected_components g in
  Alcotest.(check int) "one component" 1 count;
  Alcotest.(check bool) "all same" true (Array.for_all (fun l -> l = labels.(0)) labels);
  Alcotest.(check bool) "is_connected" true (Metrics.is_connected g)

let test_components_disjoint () =
  let g = Graph.of_edge_list 6 [ (0, 1); (2, 3) ] in
  let _, count = Metrics.connected_components g in
  Alcotest.(check int) "four components" 4 count;
  Alcotest.(check bool) "not connected" false (Metrics.is_connected g)

let test_largest_component () =
  let g = Graph.of_edge_list 7 [ (0, 1); (1, 2); (4, 5) ] in
  let comp = Metrics.largest_component g in
  Array.sort compare comp;
  Alcotest.(check (array int)) "largest" [| 0; 1; 2 |] comp

let test_bfs_distances () =
  let g = path 5 in
  Alcotest.(check (array int)) "path distances" [| 0; 1; 2; 3; 4 |] (Metrics.bfs_distances g 0);
  let g2 = Graph.of_edge_list 4 [ (0, 1) ] in
  let d = Metrics.bfs_distances g2 0 in
  Alcotest.(check int) "unreachable" (-1) d.(3)

let test_diameter_bound () =
  Alcotest.(check int) "path diameter" 9 (Metrics.eccentricity_lower_bound (path 10));
  Alcotest.(check int) "complete diameter" 1
    (Metrics.eccentricity_lower_bound (Gen.complete 6))

let test_density_and_degree () =
  let g = Gen.complete 5 in
  Alcotest.(check (float 1e-9)) "complete density" 1.0 (Metrics.density g);
  Alcotest.(check (float 1e-9)) "avg degree" 4.0 (Metrics.average_degree g)

let test_degree_histogram () =
  let g = Gen.star 5 in
  let h = Metrics.degree_histogram g in
  Alcotest.(check int) "four leaves" 4 h.(1);
  Alcotest.(check int) "one hub" 1 h.(4)

let test_triangles () =
  Alcotest.(check int) "K4 triangles" 4 (Metrics.triangle_count (Gen.complete 4));
  Alcotest.(check int) "path no triangles" 0 (Metrics.triangle_count (path 6));
  let tri = Graph.of_edge_list 3 [ (0, 1); (1, 2); (0, 2) ] in
  Alcotest.(check int) "one triangle" 1 (Metrics.triangle_count tri)

let test_clustering () =
  Alcotest.(check (float 1e-9)) "complete clustering" 1.0
    (Metrics.global_clustering (Gen.complete 5));
  Alcotest.(check (float 1e-9)) "tree clustering" 0.0
    (Metrics.global_clustering (Gen.star 6));
  Alcotest.(check (float 1e-9)) "local complete" 1.0
    (Metrics.average_local_clustering (Gen.complete 5))

let test_clustering_mixed () =
  (* triangle plus pendant: node degrees 2,2,3,1 *)
  let g = Graph.of_edge_list 4 [ (0, 1); (1, 2); (0, 2); (2, 3) ] in
  let expected = (1.0 +. 1.0 +. (1.0 /. 3.0) +. 0.0) /. 4.0 in
  Alcotest.(check (float 1e-9)) "avg local" expected (Metrics.average_local_clustering g)

let test_assortativity () =
  (* star: every edge joins the hub (degree n-1) to a leaf (degree 1) —
     perfectly disassortative *)
  Alcotest.(check (float 1e-9)) "star" (-1.0) (Metrics.degree_assortativity (Gen.star 8));
  (* regular graphs have constant degree: correlation undefined -> 0 *)
  Alcotest.(check (float 1e-9)) "ring" 0.0 (Metrics.degree_assortativity (Gen.ring 10));
  Alcotest.(check (float 1e-9)) "complete" 0.0
    (Metrics.degree_assortativity (Gen.complete 6));
  (* tiny graphs *)
  Alcotest.(check (float 1e-9)) "single edge" 0.0
    (Metrics.degree_assortativity (Graph.of_edge_list 2 [ (0, 1) ]));
  (* BA graphs are disassortative *)
  let ba = Gen.barabasi_albert (Owp_util.Prng.create 4) ~n:300 ~m:3 in
  Alcotest.(check bool) "BA negative" true (Metrics.degree_assortativity ba < 0.0);
  (* value always in [-1, 1] *)
  let g = Gen.gnm (Owp_util.Prng.create 5) ~n:80 ~m:200 in
  let r = Metrics.degree_assortativity g in
  Alcotest.(check bool) "in range" true (r >= -1.0 -. 1e-9 && r <= 1.0 +. 1e-9)

let suite =
  [
    Alcotest.test_case "assortativity" `Quick test_assortativity;
    Alcotest.test_case "components connected" `Quick test_components_connected;
    Alcotest.test_case "components disjoint" `Quick test_components_disjoint;
    Alcotest.test_case "largest component" `Quick test_largest_component;
    Alcotest.test_case "bfs distances" `Quick test_bfs_distances;
    Alcotest.test_case "diameter bound" `Quick test_diameter_bound;
    Alcotest.test_case "density and degree" `Quick test_density_and_degree;
    Alcotest.test_case "degree histogram" `Quick test_degree_histogram;
    Alcotest.test_case "triangles" `Quick test_triangles;
    Alcotest.test_case "clustering" `Quick test_clustering;
    Alcotest.test_case "clustering mixed" `Quick test_clustering_mixed;
  ]
