let build pairs n =
  let b = Graph.Builder.create n in
  List.iter (fun (u, v) -> ignore (Graph.Builder.add_edge b u v)) pairs;
  Graph.Builder.build b

let test_empty_graph () =
  let g = build [] 4 in
  Alcotest.(check int) "nodes" 4 (Graph.node_count g);
  Alcotest.(check int) "edges" 0 (Graph.edge_count g);
  Alcotest.(check int) "degree" 0 (Graph.degree g 0)

let test_builder_dedup () =
  let b = Graph.Builder.create 3 in
  Alcotest.(check bool) "first insert" true (Graph.Builder.add_edge b 0 1);
  Alcotest.(check bool) "duplicate" false (Graph.Builder.add_edge b 0 1);
  Alcotest.(check bool) "reversed duplicate" false (Graph.Builder.add_edge b 1 0);
  Alcotest.(check int) "count" 1 (Graph.Builder.edge_count b);
  Alcotest.(check bool) "mem" true (Graph.Builder.mem_edge b 1 0)

let test_builder_errors () =
  let b = Graph.Builder.create 3 in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.Builder: self-loop")
    (fun () -> ignore (Graph.Builder.add_edge b 1 1));
  Alcotest.check_raises "range" (Invalid_argument "Graph.Builder: endpoint out of range")
    (fun () -> ignore (Graph.Builder.add_edge b 0 3))

let test_neighbors_sorted () =
  let g = build [ (2, 0); (2, 4); (2, 1); (2, 3) ] 5 in
  Alcotest.(check (array int)) "sorted" [| 0; 1; 3; 4 |] (Graph.neighbor_nodes g 2);
  Alcotest.(check int) "degree" 4 (Graph.degree g 2)

let test_endpoints_normalized () =
  let g = build [ (3, 1) ] 4 in
  Alcotest.(check (pair int int)) "u < v" (1, 3) (Graph.edge_endpoints g 0)

let test_find_edge () =
  let g = build [ (0, 1); (1, 2); (0, 3) ] 4 in
  Alcotest.(check bool) "finds" true (Graph.find_edge g 1 0 <> None);
  Alcotest.(check (option int)) "missing" None (Graph.find_edge g 2 3);
  Alcotest.(check bool) "mem" true (Graph.mem_edge g 0 3);
  (match Graph.find_edge g 1 2 with
  | Some eid -> Alcotest.(check (pair int int)) "right edge" (1, 2) (Graph.edge_endpoints g eid)
  | None -> Alcotest.fail "edge 1-2 not found")

let test_other_endpoint () =
  let g = build [ (0, 1) ] 2 in
  Alcotest.(check int) "other" 1 (Graph.other_endpoint g 0 0);
  Alcotest.(check int) "other rev" 0 (Graph.other_endpoint g 0 1);
  Alcotest.check_raises "not endpoint"
    (Invalid_argument "Graph.other_endpoint: node is not an endpoint") (fun () ->
      let g = build [ (0, 1) ] 3 in
      ignore (Graph.other_endpoint g 0 2))

let test_iter_edges () =
  let g = build [ (0, 1); (1, 2) ] 3 in
  let seen = ref [] in
  Graph.iter_edges g (fun eid u v -> seen := (eid, u, v) :: !seen);
  Alcotest.(check int) "two edges" 2 (List.length !seen);
  List.iter (fun (_, u, v) -> Alcotest.(check bool) "normalized" true (u < v)) !seen

let test_fold_edges () =
  let g = build [ (0, 1); (1, 2); (2, 3) ] 4 in
  let total = Graph.fold_edges g (fun acc _ u v -> acc + u + v) 0 in
  Alcotest.(check int) "fold sum" 9 total

let test_iter_neighbors_edge_ids () =
  let g = build [ (0, 1); (0, 2) ] 3 in
  Graph.iter_neighbors g 0 (fun v eid ->
      Alcotest.(check int) "eid consistent" v (Graph.other_endpoint g eid 0))

let test_max_degree () =
  let g = build [ (0, 1); (0, 2); (0, 3); (1, 2) ] 4 in
  Alcotest.(check int) "max degree" 3 (Graph.max_degree g)

let test_of_edge_list () =
  let g = Graph.of_edge_list 3 [ (0, 1); (1, 0); (1, 2) ] in
  Alcotest.(check int) "coalesced" 2 (Graph.edge_count g)

let test_induced_subgraph () =
  let g = build [ (0, 1); (1, 2); (2, 3); (3, 0); (0, 2) ] 4 in
  let sub, mapping = Graph.induced_subgraph g [| 0; 1; 2 |] in
  Alcotest.(check int) "nodes" 3 (Graph.node_count sub);
  Alcotest.(check int) "edges kept" 3 (Graph.edge_count sub);
  Alcotest.(check (array int)) "mapping" [| 0; 1; 2 |] mapping

let test_complement_degree_sum () =
  let g = build [ (0, 1) ] 3 in
  (* degrees 1,1,0 -> complement degrees 1,1,2 *)
  Alcotest.(check int) "complement" 4 (Graph.complement_degree_sum g)

let prop_adjacency_consistent =
  QCheck2.Test.make ~name:"adjacency mirrors edge list" ~count:100
    QCheck2.Gen.(list_size (int_range 0 40) (pair (int_range 0 11) (int_range 0 11)))
    (fun pairs ->
      let pairs = List.filter (fun (u, v) -> u <> v) pairs in
      let g = Graph.of_edge_list 12 pairs in
      let ok = ref true in
      Graph.iter_edges g (fun eid u v ->
          if Graph.find_edge g u v <> Some eid then ok := false;
          if Graph.find_edge g v u <> Some eid then ok := false);
      (* degree sums to 2m *)
      let degsum = ref 0 in
      for v = 0 to 11 do
        degsum := !degsum + Graph.degree g v
      done;
      !ok && !degsum = 2 * Graph.edge_count g)

let suite =
  [
    Alcotest.test_case "empty graph" `Quick test_empty_graph;
    Alcotest.test_case "builder dedup" `Quick test_builder_dedup;
    Alcotest.test_case "builder errors" `Quick test_builder_errors;
    Alcotest.test_case "neighbors sorted" `Quick test_neighbors_sorted;
    Alcotest.test_case "endpoints normalized" `Quick test_endpoints_normalized;
    Alcotest.test_case "find_edge" `Quick test_find_edge;
    Alcotest.test_case "other_endpoint" `Quick test_other_endpoint;
    Alcotest.test_case "iter_edges" `Quick test_iter_edges;
    Alcotest.test_case "fold_edges" `Quick test_fold_edges;
    Alcotest.test_case "iter_neighbors edge ids" `Quick test_iter_neighbors_edge_ids;
    Alcotest.test_case "max_degree" `Quick test_max_degree;
    Alcotest.test_case "of_edge_list" `Quick test_of_edge_list;
    Alcotest.test_case "induced subgraph" `Quick test_induced_subgraph;
    Alcotest.test_case "complement degree sum" `Quick test_complement_degree_sum;
    QCheck_alcotest.to_alcotest prop_adjacency_consistent;
  ]
