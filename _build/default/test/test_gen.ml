module Prng = Owp_util.Prng

let rng () = Prng.create 1234

let test_gnp_extremes () =
  let g0 = Gen.gnp (rng ()) ~n:20 ~p:0.0 in
  Alcotest.(check int) "p=0 empty" 0 (Graph.edge_count g0);
  let g1 = Gen.gnp (rng ()) ~n:20 ~p:1.0 in
  Alcotest.(check int) "p=1 complete" 190 (Graph.edge_count g1)

let test_gnp_density () =
  let g = Gen.gnp (rng ()) ~n:400 ~p:0.05 in
  let expected = 0.05 *. float_of_int (400 * 399 / 2) in
  let m = float_of_int (Graph.edge_count g) in
  Alcotest.(check bool) "within 15% of expectation" true
    (Float.abs (m -. expected) < 0.15 *. expected)

let test_gnp_invalid () =
  Alcotest.check_raises "bad p" (Invalid_argument "Gen.gnp: p out of range") (fun () ->
      ignore (Gen.gnp (rng ()) ~n:5 ~p:1.5))

let test_gnm_exact () =
  let g = Gen.gnm (rng ()) ~n:50 ~m:200 in
  Alcotest.(check int) "m exact" 200 (Graph.edge_count g);
  let dense = Gen.gnm (rng ()) ~n:10 ~m:45 in
  Alcotest.(check int) "complete via gnm" 45 (Graph.edge_count dense)

let test_gnm_dense_path () =
  (* 2m > max: exercises the sample-without-replacement decode branch *)
  let g = Gen.gnm (rng ()) ~n:12 ~m:50 in
  Alcotest.(check int) "dense m exact" 50 (Graph.edge_count g)

let test_gnm_invalid () =
  Alcotest.check_raises "m too big" (Invalid_argument "Gen.gnm: m out of range")
    (fun () -> ignore (Gen.gnm (rng ()) ~n:4 ~m:7))

let test_complete () =
  let g = Gen.complete 7 in
  Alcotest.(check int) "edges" 21 (Graph.edge_count g);
  for v = 0 to 6 do
    Alcotest.(check int) "degree" 6 (Graph.degree g v)
  done

let test_barabasi_albert () =
  let n = 100 and m = 3 in
  let g = Gen.barabasi_albert (rng ()) ~n ~m in
  Alcotest.(check int) "nodes" n (Graph.node_count g);
  (* seed clique (m+1 choose 2) + m edges per arrival *)
  let expected = (m * (m + 1) / 2) + ((n - m - 1) * m) in
  Alcotest.(check int) "edges" expected (Graph.edge_count g);
  (* arrivals have degree >= m *)
  for v = 0 to n - 1 do
    Alcotest.(check bool) "min degree" true (Graph.degree g v >= m)
  done

let test_ba_invalid () =
  Alcotest.check_raises "n <= m" (Invalid_argument "Gen.barabasi_albert: need n > m >= 1")
    (fun () -> ignore (Gen.barabasi_albert (rng ()) ~n:3 ~m:3))

let test_watts_strogatz_lattice () =
  let g = Gen.watts_strogatz (rng ()) ~n:30 ~k:3 ~beta:0.0 in
  Alcotest.(check int) "ring lattice edges" (30 * 3) (Graph.edge_count g);
  for v = 0 to 29 do
    Alcotest.(check int) "2k degree" 6 (Graph.degree g v)
  done

let test_watts_strogatz_rewired () =
  let g = Gen.watts_strogatz (rng ()) ~n:200 ~k:4 ~beta:0.3 in
  Alcotest.(check bool) "edge count near n*k" true
    (Graph.edge_count g > 190 * 4 && Graph.edge_count g <= 200 * 4);
  Alcotest.(check bool) "rewiring shortens diameter vs lattice" true
    (Metrics.eccentricity_lower_bound g < 25)

let test_random_geometric () =
  let g, pts = Gen.random_geometric (rng ()) ~n:150 ~radius:0.15 in
  Alcotest.(check int) "points" 150 (Array.length pts);
  (* verify against brute force *)
  let expected = ref 0 in
  for i = 0 to 149 do
    for j = i + 1 to 149 do
      let xi, yi = pts.(i) and xj, yj = pts.(j) in
      let d2 = ((xi -. xj) ** 2.0) +. ((yi -. yj) ** 2.0) in
      if d2 <= 0.15 *. 0.15 then incr expected
    done
  done;
  Alcotest.(check int) "edges match brute force" !expected (Graph.edge_count g)

let test_grid () =
  let g = Gen.grid ~width:4 ~height:3 in
  Alcotest.(check int) "nodes" 12 (Graph.node_count g);
  (* horizontal 3*3 + vertical 4*2 *)
  Alcotest.(check int) "edges" 17 (Graph.edge_count g);
  Alcotest.(check bool) "connected" true (Metrics.is_connected g)

let test_torus () =
  let g = Gen.torus ~width:5 ~height:4 in
  Alcotest.(check int) "nodes" 20 (Graph.node_count g);
  Alcotest.(check int) "edges 2n" 40 (Graph.edge_count g);
  for v = 0 to 19 do
    Alcotest.(check int) "4-regular" 4 (Graph.degree g v)
  done

let test_bipartite () =
  let g = Gen.random_bipartite (rng ()) ~left:10 ~right:15 ~p:0.4 in
  Graph.iter_edges g (fun _ u v ->
      Alcotest.(check bool) "crosses parts" true (u < 10 && v >= 10))

let test_power_law () =
  let g = Gen.configuration_power_law (rng ()) ~n:300 ~exponent:2.5 ~min_degree:2 in
  Alcotest.(check int) "nodes" 300 (Graph.node_count g);
  Alcotest.(check bool) "has edges" true (Graph.edge_count g > 250);
  (* heavy tail: max degree well above the minimum *)
  Alcotest.(check bool) "skewed degrees" true (Graph.max_degree g >= 8)

let test_random_regular () =
  let g = Gen.random_regular (rng ()) ~n:40 ~d:4 in
  Alcotest.(check int) "nodes" 40 (Graph.node_count g);
  let irregular = ref 0 in
  for v = 0 to 39 do
    if Graph.degree g v <> 4 then incr irregular
  done;
  Alcotest.(check bool) "mostly 4-regular" true (!irregular <= 2)

let test_ring_star_path () =
  let r = Gen.ring 8 in
  Alcotest.(check int) "ring edges" 8 (Graph.edge_count r);
  for v = 0 to 7 do
    Alcotest.(check int) "ring degree" 2 (Graph.degree r v)
  done;
  let s = Gen.star 6 in
  Alcotest.(check int) "star edges" 5 (Graph.edge_count s);
  Alcotest.(check int) "hub degree" 5 (Graph.degree s 0);
  let p = Gen.path 5 in
  Alcotest.(check int) "path edges" 4 (Graph.edge_count p);
  Alcotest.(check int) "path end" 1 (Graph.degree p 0)

let test_generators_deterministic () =
  let g1 = Gen.gnp (Prng.create 77) ~n:60 ~p:0.1 in
  let g2 = Gen.gnp (Prng.create 77) ~n:60 ~p:0.1 in
  Alcotest.(check int) "same edge count" (Graph.edge_count g1) (Graph.edge_count g2);
  Graph.iter_edges g1 (fun eid u v ->
      Alcotest.(check (pair int int)) "same edges" (u, v) (Graph.edge_endpoints g2 eid))

let suite =
  [
    Alcotest.test_case "gnp extremes" `Quick test_gnp_extremes;
    Alcotest.test_case "gnp density" `Quick test_gnp_density;
    Alcotest.test_case "gnp invalid" `Quick test_gnp_invalid;
    Alcotest.test_case "gnm exact" `Quick test_gnm_exact;
    Alcotest.test_case "gnm dense path" `Quick test_gnm_dense_path;
    Alcotest.test_case "gnm invalid" `Quick test_gnm_invalid;
    Alcotest.test_case "complete" `Quick test_complete;
    Alcotest.test_case "barabasi-albert" `Quick test_barabasi_albert;
    Alcotest.test_case "ba invalid" `Quick test_ba_invalid;
    Alcotest.test_case "watts-strogatz lattice" `Quick test_watts_strogatz_lattice;
    Alcotest.test_case "watts-strogatz rewired" `Quick test_watts_strogatz_rewired;
    Alcotest.test_case "random geometric" `Quick test_random_geometric;
    Alcotest.test_case "grid" `Quick test_grid;
    Alcotest.test_case "torus" `Quick test_torus;
    Alcotest.test_case "bipartite" `Quick test_bipartite;
    Alcotest.test_case "power law" `Quick test_power_law;
    Alcotest.test_case "random regular" `Quick test_random_regular;
    Alcotest.test_case "ring/star/path" `Quick test_ring_star_path;
    Alcotest.test_case "deterministic" `Quick test_generators_deterministic;
  ]
