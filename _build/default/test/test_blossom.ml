module Blossom = Owp_matching.Blossom
module BM = Owp_matching.Bmatching
module Prng = Owp_util.Prng

(* exponential-time reference for small graphs *)
let brute_force_matching_number g =
  let n = Graph.node_count g and m = Graph.edge_count g in
  let used = Array.make n false in
  let rec go k =
    if k = m then 0
    else begin
      let u, v = Graph.edge_endpoints g k in
      let skip = go (k + 1) in
      if (not used.(u)) && not used.(v) then begin
        used.(u) <- true;
        used.(v) <- true;
        let take = 1 + go (k + 1) in
        used.(u) <- false;
        used.(v) <- false;
        max skip take
      end
      else skip
    end
  in
  go 0

let test_known_graphs () =
  Alcotest.(check int) "C5" 2 (Blossom.matching_number (Gen.ring 5));
  Alcotest.(check int) "C6" 3 (Blossom.matching_number (Gen.ring 6));
  Alcotest.(check int) "K4" 2 (Blossom.matching_number (Gen.complete 4));
  Alcotest.(check int) "K5" 2 (Blossom.matching_number (Gen.complete 5));
  Alcotest.(check int) "star" 1 (Blossom.matching_number (Gen.star 7));
  Alcotest.(check int) "path8" 4 (Blossom.matching_number (Gen.path 8));
  Alcotest.(check int) "empty" 0 (Blossom.matching_number (Graph.of_edge_list 4 []))

let test_petersen () =
  let petersen =
    Graph.of_edge_list 10
      [
        (0, 1); (1, 2); (2, 3); (3, 4); (4, 0);
        (5, 7); (7, 9); (9, 6); (6, 8); (8, 5);
        (0, 5); (1, 6); (2, 7); (3, 8); (4, 9);
      ]
  in
  Alcotest.(check int) "perfect matching" 5 (Blossom.matching_number petersen)

let test_two_triangles_bridge () =
  (* two triangles joined by a bridge: needs blossom shrinking *)
  let g = Graph.of_edge_list 6 [ (0, 1); (1, 2); (0, 2); (2, 3); (3, 4); (4, 5); (3, 5) ] in
  Alcotest.(check int) "three pairs" 3 (Blossom.matching_number g)

let test_output_is_valid_matching () =
  let g = Gen.gnm (Prng.create 8) ~n:60 ~m:180 in
  let m = Blossom.maximum_matching g in
  for v = 0 to 59 do
    Alcotest.(check bool) "unit degree" true (BM.degree m v <= 1)
  done;
  Alcotest.(check bool) "self-reported maximum" true (Blossom.is_maximum g m)

let prop_matches_brute_force =
  QCheck2.Test.make ~name:"blossom = brute force on small graphs" ~count:100
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 5 + Prng.int rng 7 in
      let g = Gen.gnp rng ~n ~p:0.35 in
      Graph.edge_count g > 22
      || Blossom.matching_number g = brute_force_matching_number g)

let prop_at_least_greedy =
  QCheck2.Test.make ~name:"maximum >= any maximal matching" ~count:60
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Prng.create seed in
      let g = Gen.gnm rng ~n:30 ~m:80 in
      let w = Weights.of_array g (Array.init 80 (fun _ -> Prng.float rng 1.0)) in
      let greedy = Owp_matching.Onetoone.global_greedy w in
      Blossom.matching_number g >= BM.size greedy)

let suite =
  [
    Alcotest.test_case "known graphs" `Quick test_known_graphs;
    Alcotest.test_case "petersen" `Quick test_petersen;
    Alcotest.test_case "two triangles + bridge" `Quick test_two_triangles_bridge;
    Alcotest.test_case "valid matching" `Quick test_output_is_valid_matching;
    QCheck_alcotest.to_alcotest prop_matches_brute_force;
    QCheck_alcotest.to_alcotest prop_at_least_greedy;
  ]
