module Dsu = Owp_util.Dsu

let test_singletons () =
  let d = Dsu.create 5 in
  Alcotest.(check int) "sets" 5 (Dsu.count_sets d);
  for i = 0 to 4 do
    Alcotest.(check int) "self root" i (Dsu.find d i);
    Alcotest.(check int) "size 1" 1 (Dsu.size d i)
  done

let test_union () =
  let d = Dsu.create 6 in
  Alcotest.(check bool) "new union" true (Dsu.union d 0 1);
  Alcotest.(check bool) "repeat union" false (Dsu.union d 1 0);
  Alcotest.(check bool) "same" true (Dsu.same d 0 1);
  Alcotest.(check bool) "not same" false (Dsu.same d 0 2);
  Alcotest.(check int) "sets" 5 (Dsu.count_sets d);
  Alcotest.(check int) "size" 2 (Dsu.size d 0)

let test_chain () =
  let n = 100 in
  let d = Dsu.create n in
  for i = 0 to n - 2 do
    ignore (Dsu.union d i (i + 1))
  done;
  Alcotest.(check int) "one set" 1 (Dsu.count_sets d);
  Alcotest.(check int) "full size" n (Dsu.size d 42);
  Alcotest.(check bool) "ends joined" true (Dsu.same d 0 (n - 1))

let test_two_components () =
  let d = Dsu.create 8 in
  List.iter (fun (a, b) -> ignore (Dsu.union d a b)) [ (0, 1); (1, 2); (4, 5); (5, 6) ];
  Alcotest.(check int) "four sets" 4 (Dsu.count_sets d);
  Alcotest.(check bool) "split" false (Dsu.same d 0 4);
  Alcotest.(check int) "sizes" 3 (Dsu.size d 2);
  Alcotest.(check int) "singleton stays" 1 (Dsu.size d 3)

let prop_union_find_vs_naive =
  QCheck2.Test.make ~name:"dsu agrees with naive labelling" ~count:100
    QCheck2.Gen.(list_size (int_range 0 60) (pair (int_range 0 19) (int_range 0 19)))
    (fun unions ->
      let d = Dsu.create 20 in
      let label = Array.init 20 Fun.id in
      let relabel a b =
        let la = label.(a) and lb = label.(b) in
        if la <> lb then Array.iteri (fun i l -> if l = lb then label.(i) <- la) label
      in
      List.iter
        (fun (a, b) ->
          ignore (Dsu.union d a b);
          relabel a b)
        unions;
      let ok = ref true in
      for i = 0 to 19 do
        for j = 0 to 19 do
          if Dsu.same d i j <> (label.(i) = label.(j)) then ok := false
        done
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "singletons" `Quick test_singletons;
    Alcotest.test_case "union" `Quick test_union;
    Alcotest.test_case "chain" `Quick test_chain;
    Alcotest.test_case "two components" `Quick test_two_components;
    QCheck_alcotest.to_alcotest prop_union_find_vs_naive;
  ]
