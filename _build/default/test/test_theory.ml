module Theory = Owp_core.Theory
module Lic = Owp_core.Lic
module BM = Owp_matching.Bmatching
module Prng = Owp_util.Prng

let feq = Alcotest.(check (float 1e-9))

let test_bound_formulas () =
  feq "lemma1 b=1" 1.0 (Theory.lemma1_bound ~bmax:1);
  feq "lemma1 b=2" 0.75 (Theory.lemma1_bound ~bmax:2);
  feq "lemma1 b=4" 0.625 (Theory.lemma1_bound ~bmax:4);
  feq "theorem3 b=1" 0.5 (Theory.theorem3_bound ~bmax:1);
  feq "theorem3 b=2" 0.375 (Theory.theorem3_bound ~bmax:2);
  Alcotest.check_raises "bad bmax" (Invalid_argument "Theory.lemma1_bound: bmax must be positive")
    (fun () -> ignore (Theory.lemma1_bound ~bmax:0))

let test_weighted_blocking_pair_detects () =
  let g = Graph.of_edge_list 4 [ (0, 1); (1, 2); (2, 3) ] in
  let w = Weights.of_array g [| 1.0; 5.0; 1.0 |] in
  (* matching the two light edges leaves the heavy middle edge blocking *)
  let bad = BM.of_edge_ids g ~capacity:[| 1; 1; 1; 1 |] [ 0; 2 ] in
  (match Theory.weighted_blocking_pair w bad with
  | Some (1, 2) -> ()
  | Some _ -> Alcotest.fail "wrong pair"
  | None -> Alcotest.fail "should detect the heavy unmatched edge");
  let good = BM.of_edge_ids g ~capacity:[| 1; 1; 1; 1 |] [ 1 ] in
  Alcotest.(check bool) "greedy choice is stable" true (Theory.is_greedy_stable w good)

let test_empty_matching_not_stable () =
  let g = Graph.of_edge_list 2 [ (0, 1) ] in
  let w = Weights.of_array g [| 1.0 |] in
  let empty = BM.empty g ~capacity:[| 1; 1 |] in
  Alcotest.(check bool) "free edge blocks" false (Theory.is_greedy_stable w empty);
  Alcotest.(check bool) "certificate fails" false (Theory.half_approx_certificate w empty)

let test_ratios () =
  let g = Graph.of_edge_list 4 [ (0, 1); (2, 3) ] in
  let w = Weights.of_array g [| 1.0; 3.0 |] in
  let a = BM.of_edge_ids g ~capacity:[| 1; 1; 1; 1 |] [ 0 ] in
  let b = BM.of_edge_ids g ~capacity:[| 1; 1; 1; 1 |] [ 0; 1 ] in
  feq "weight ratio" 0.25 (Theory.weight_ratio w a b);
  let empty = BM.empty g ~capacity:[| 1; 1; 1; 1 |] in
  feq "0/0 ratio" 1.0 (Theory.weight_ratio w empty empty)

let prop_lemma1_on_lic_matchings =
  QCheck2.Test.make ~name:"static/full ratio of LIC matchings >= lemma 1 bound" ~count:50
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Prng.create seed in
      let g = Gen.gnm rng ~n:30 ~m:90 in
      let p = Preference.random rng g ~quota:(Preference.uniform_quota g 3) in
      let w = Weights.of_preference p in
      let m = Lic.run w ~capacity:(Array.init 30 (Preference.quota p)) in
      let ratio = Theory.static_vs_full_ratio p m in
      ratio >= Theory.lemma1_bound ~bmax:(Preference.max_quota p) -. 1e-9)

let prop_certificate_on_lic =
  QCheck2.Test.make ~name:"LIC always carries the half-approx certificate" ~count:50
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Prng.create seed in
      let g = Gen.gnm rng ~n:25 ~m:70 in
      let p = Preference.random rng g ~quota:(Preference.uniform_quota g 2) in
      let w = Weights.of_preference p in
      let m = Lic.run w ~capacity:(Array.init 25 (Preference.quota p)) in
      Theory.half_approx_certificate w m)

let suite =
  [
    Alcotest.test_case "bound formulas" `Quick test_bound_formulas;
    Alcotest.test_case "weighted blocking pair" `Quick test_weighted_blocking_pair_detects;
    Alcotest.test_case "empty matching unstable" `Quick test_empty_matching_not_stable;
    Alcotest.test_case "ratios" `Quick test_ratios;
    QCheck_alcotest.to_alcotest prop_lemma1_on_lic_matchings;
    QCheck_alcotest.to_alcotest prop_certificate_on_lic;
  ]
