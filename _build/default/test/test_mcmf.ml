module Mcmf = Owp_matching.Mcmf

let test_single_path () =
  let n = Mcmf.create 3 in
  let e0 = Mcmf.add_edge n ~src:0 ~dst:1 ~capacity:5 ~cost:(-2.0) in
  let e1 = Mcmf.add_edge n ~src:1 ~dst:2 ~capacity:3 ~cost:(-1.0) in
  let flow, cost = Mcmf.min_cost_flow n ~source:0 ~sink:2 () in
  Alcotest.(check int) "bottleneck flow" 3 flow;
  Alcotest.(check (float 1e-9)) "cost" (-9.0) cost;
  Alcotest.(check int) "flow on e0" 3 (Mcmf.flow_on n e0);
  Alcotest.(check int) "flow on e1" 3 (Mcmf.flow_on n e1)

let test_stops_at_nonnegative () =
  let n = Mcmf.create 2 in
  ignore (Mcmf.add_edge n ~src:0 ~dst:1 ~capacity:5 ~cost:1.0);
  let flow, cost = Mcmf.min_cost_flow n ~source:0 ~sink:1 () in
  Alcotest.(check int) "no profitable path" 0 flow;
  Alcotest.(check (float 1e-9)) "zero cost" 0.0 cost

let test_max_flow_ignores_sign () =
  let n = Mcmf.create 2 in
  ignore (Mcmf.add_edge n ~src:0 ~dst:1 ~capacity:5 ~cost:1.0);
  let flow, cost = Mcmf.min_cost_max_flow n ~source:0 ~sink:1 in
  Alcotest.(check int) "pushes anyway" 5 flow;
  Alcotest.(check (float 1e-9)) "positive cost" 5.0 cost

let test_chooses_cheaper_path () =
  (* two parallel 0->1->3 / 0->2->3 paths; cheaper one used first *)
  let n = Mcmf.create 4 in
  ignore (Mcmf.add_edge n ~src:0 ~dst:1 ~capacity:1 ~cost:(-5.0));
  ignore (Mcmf.add_edge n ~src:1 ~dst:3 ~capacity:1 ~cost:0.0);
  ignore (Mcmf.add_edge n ~src:0 ~dst:2 ~capacity:1 ~cost:(-1.0));
  ignore (Mcmf.add_edge n ~src:2 ~dst:3 ~capacity:1 ~cost:0.0);
  let flow, cost = Mcmf.min_cost_flow n ~source:0 ~sink:3 () in
  Alcotest.(check int) "both profitable" 2 flow;
  Alcotest.(check (float 1e-9)) "total" (-6.0) cost

let test_max_flow_cap () =
  let n = Mcmf.create 2 in
  ignore (Mcmf.add_edge n ~src:0 ~dst:1 ~capacity:10 ~cost:(-1.0));
  let flow, _ = Mcmf.min_cost_flow n ~source:0 ~sink:1 ~max_flow:4 () in
  Alcotest.(check int) "respects cap" 4 flow

let test_residual_rerouting () =
  (* classic rerouting: augmenting a second unit must use the residual
     arc of the first path to stay optimal *)
  let n = Mcmf.create 4 in
  ignore (Mcmf.add_edge n ~src:0 ~dst:1 ~capacity:1 ~cost:(-10.0));
  ignore (Mcmf.add_edge n ~src:1 ~dst:3 ~capacity:1 ~cost:(-10.0));
  ignore (Mcmf.add_edge n ~src:0 ~dst:2 ~capacity:1 ~cost:(-1.0));
  ignore (Mcmf.add_edge n ~src:2 ~dst:1 ~capacity:1 ~cost:(-1.0));
  ignore (Mcmf.add_edge n ~src:1 ~dst:2 ~capacity:0 ~cost:0.0);
  let flow, cost = Mcmf.min_cost_flow n ~source:0 ~sink:3 () in
  Alcotest.(check int) "single unit (1->3 is the only sink arc)" 1 flow;
  Alcotest.(check (float 1e-9)) "best path" (-20.0) cost

let test_disconnected () =
  let n = Mcmf.create 3 in
  ignore (Mcmf.add_edge n ~src:0 ~dst:1 ~capacity:1 ~cost:(-1.0));
  let flow, _ = Mcmf.min_cost_flow n ~source:0 ~sink:2 () in
  Alcotest.(check int) "unreachable sink" 0 flow

let test_add_edge_validation () =
  let n = Mcmf.create 2 in
  Alcotest.check_raises "bad vertex" (Invalid_argument "Mcmf.add_edge: vertex out of range")
    (fun () -> ignore (Mcmf.add_edge n ~src:0 ~dst:5 ~capacity:1 ~cost:0.0));
  Alcotest.check_raises "bad capacity" (Invalid_argument "Mcmf.add_edge: negative capacity")
    (fun () -> ignore (Mcmf.add_edge n ~src:0 ~dst:1 ~capacity:(-1) ~cost:0.0))

let suite =
  [
    Alcotest.test_case "single path" `Quick test_single_path;
    Alcotest.test_case "stops at nonnegative" `Quick test_stops_at_nonnegative;
    Alcotest.test_case "max flow ignores sign" `Quick test_max_flow_ignores_sign;
    Alcotest.test_case "chooses cheaper path" `Quick test_chooses_cheaper_path;
    Alcotest.test_case "max flow cap" `Quick test_max_flow_cap;
    Alcotest.test_case "residual rerouting" `Quick test_residual_rerouting;
    Alcotest.test_case "disconnected" `Quick test_disconnected;
    Alcotest.test_case "add_edge validation" `Quick test_add_edge_validation;
  ]
