module BM = Owp_matching.Bmatching
module One = Owp_matching.Onetoone
module Exact = Owp_matching.Exact
module Prng = Owp_util.Prng

let random_weights seed n m =
  let rng = Prng.create seed in
  let g = Gen.gnm rng ~n ~m in
  let w = Weights.of_array g (Array.init m (fun _ -> 0.1 +. Prng.float rng 10.0)) in
  (g, w)

let is_matching m =
  let g = BM.graph m in
  let ok = ref true in
  for v = 0 to Graph.node_count g - 1 do
    if BM.degree m v > 1 then ok := false
  done;
  !ok

let test_preis_path () =
  let g = Graph.of_edge_list 4 [ (0, 1); (1, 2); (2, 3) ] in
  let w = Weights.of_array g [| 1.0; 5.0; 1.0 |] in
  let m = One.preis w in
  Alcotest.(check (list int)) "locally heaviest" [ 1 ] (BM.edge_ids m)

let test_path_growing_path () =
  let g = Graph.of_edge_list 4 [ (0, 1); (1, 2); (2, 3) ] in
  let w = Weights.of_array g [| 3.0; 2.0; 3.0 |] in
  let m = One.path_growing w in
  Alcotest.(check bool) "valid matching" true (is_matching m);
  Alcotest.(check bool) "at least half" true (BM.weight m w >= 3.0)

let prop_all_produce_matchings =
  QCheck2.Test.make ~name:"one-to-one algorithms produce valid matchings" ~count:80
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let _, w = random_weights seed 14 40 in
      is_matching (One.preis w) && is_matching (One.path_growing w)
      && is_matching (One.global_greedy w))

let prop_preis_equals_lic_b1 =
  QCheck2.Test.make ~name:"Preis edge set = LIC with b = 1" ~count:60
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let g, w = random_weights seed 14 40 in
      let lic = Owp_core.Lic.run w ~capacity:(Array.make (Graph.node_count g) 1) in
      BM.equal (One.preis w) lic)

let prop_half_approx =
  QCheck2.Test.make ~name:"preis & path-growing are 1/2-approx of exact" ~count:40
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let g, w = random_weights seed 10 20 in
      let capacity = Array.make (Graph.node_count g) 1 in
      let opt = Exact.max_weight_bmatching ~max_edges:20 w ~capacity in
      let half = (0.5 *. BM.weight opt w) -. 1e-9 in
      BM.weight (One.preis w) w >= half && BM.weight (One.path_growing w) w >= half)

let prop_preis_maximal =
  QCheck2.Test.make ~name:"preis output is maximal" ~count:60
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let _, w = random_weights seed 14 40 in
      BM.is_maximal (One.preis w))

let suite =
  [
    Alcotest.test_case "preis path" `Quick test_preis_path;
    Alcotest.test_case "path growing path" `Quick test_path_growing_path;
    QCheck_alcotest.to_alcotest prop_all_produce_matchings;
    QCheck_alcotest.to_alcotest prop_preis_equals_lic_b1;
    QCheck_alcotest.to_alcotest prop_half_approx;
    QCheck_alcotest.to_alcotest prop_preis_maximal;
  ]
