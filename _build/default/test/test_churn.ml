module Churn = Owp_overlay.Churn
module Prng = Owp_util.Prng

let setup seed n =
  let rng = Prng.create seed in
  let g = Gen.gnm rng ~n ~m:(3 * n) in
  let prefs = Preference.random rng g ~quota:(Preference.uniform_quota g 2) in
  (g, prefs)

let test_random_events_consistency () =
  let g, _ = setup 1 40 in
  let rng = Prng.create 2 in
  let active = Array.make 40 true in
  let events = Churn.random_events rng ~universe:g ~initially_active:active ~steps:60 in
  (* replay: leaves only target active peers, joins only inactive ones *)
  let state = Array.copy active in
  List.iter
    (function
      | Churn.Leave v ->
          Alcotest.(check bool) "leave active" true state.(v);
          state.(v) <- false
      | Churn.Join v ->
          Alcotest.(check bool) "join inactive" false state.(v);
          state.(v) <- true)
    events

let test_simulate_step_per_event () =
  let g, prefs = setup 3 30 in
  let rng = Prng.create 4 in
  let active = Array.make 30 true in
  let events = Churn.random_events rng ~universe:g ~initially_active:active ~steps:25 in
  let steps =
    Churn.simulate ~prefs ~initially_active:active ~events ~repair:Churn.Incremental
  in
  Alcotest.(check int) "one step per event" (List.length events) (List.length steps);
  List.iter
    (fun s ->
      Alcotest.(check bool) "satisfaction non-negative" true (s.Churn.total_satisfaction >= 0.0);
      Alcotest.(check bool) "weight non-negative" true (s.Churn.weight >= 0.0);
      Alcotest.(check bool) "counts non-negative" true (s.Churn.added >= 0 && s.Churn.removed >= 0);
      Alcotest.(check bool) "active in range" true
        (s.Churn.active_nodes >= 0 && s.Churn.active_nodes <= 30))
    steps

let test_rebuild_matches_fresh_greedy () =
  (* after every event, the full-rebuild matching must weigh exactly as
     much as a from-scratch global greedy restricted to active peers *)
  let g, prefs = setup 5 40 in
  let rng = Prng.create 6 in
  let active = Array.init 40 (fun _ -> Prng.bernoulli rng 0.8) in
  let events = Churn.random_events rng ~universe:g ~initially_active:active ~steps:30 in
  let full = Churn.simulate ~prefs ~initially_active:active ~events ~repair:Churn.Full_rebuild in
  let w = Weights.of_preference prefs in
  let capacity = Array.init 40 (Preference.quota prefs) in
  let state = Array.copy active in
  List.iter2
    (fun event step ->
      (match event with
      | Churn.Leave v -> state.(v) <- false
      | Churn.Join v -> state.(v) <- true);
      let fresh =
        Owp_matching.Greedy.run_restricted w ~capacity ~allowed:(fun eid ->
            let u, v = Graph.edge_endpoints g eid in
            state.(u) && state.(v))
      in
      Alcotest.(check (float 1e-9)) "rebuild = fresh greedy"
        (Owp_matching.Bmatching.weight fresh w)
        step.Churn.weight)
    events full

let test_leave_inactive_rejected () =
  let _, prefs = setup 7 10 in
  let active = Array.make 10 false in
  active.(0) <- true;
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Churn.simulate ~prefs ~initially_active:active ~events:[ Churn.Leave 5 ]
            ~repair:Churn.Incremental);
       false
     with Invalid_argument _ -> true)

let test_join_active_rejected () =
  let _, prefs = setup 8 10 in
  let active = Array.make 10 true in
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Churn.simulate ~prefs ~initially_active:active ~events:[ Churn.Join 5 ]
            ~repair:Churn.Incremental);
       false
     with Invalid_argument _ -> true)

let test_leave_removes_connections () =
  let g = Gen.star 5 in
  let prefs = Preference.random (Prng.create 9) g ~quota:(Preference.uniform_quota g 4) in
  let active = Array.make 5 true in
  let steps =
    Churn.simulate ~prefs ~initially_active:active ~events:[ Churn.Leave 0 ]
      ~repair:Churn.Incremental
  in
  let s = List.hd steps in
  (* the hub left: no edges can survive in a star *)
  Alcotest.(check (float 1e-9)) "no weight left" 0.0 s.Churn.weight;
  Alcotest.(check int) "hub's edges removed" 4 s.Churn.removed

let test_join_recovers () =
  let g = Gen.star 5 in
  let prefs = Preference.random (Prng.create 10) g ~quota:(Preference.uniform_quota g 4) in
  let active = Array.make 5 true in
  let steps =
    Churn.simulate ~prefs ~initially_active:active
      ~events:[ Churn.Leave 0; Churn.Join 0 ] ~repair:Churn.Incremental
  in
  let after_rejoin = List.nth steps 1 in
  Alcotest.(check int) "hub re-matched fully" 4 after_rejoin.Churn.added;
  Alcotest.(check bool) "satisfaction restored" true (after_rejoin.Churn.total_satisfaction > 0.0)

let suite =
  [
    Alcotest.test_case "random events consistency" `Quick test_random_events_consistency;
    Alcotest.test_case "one step per event" `Quick test_simulate_step_per_event;
    Alcotest.test_case "rebuild matches fresh greedy" `Quick test_rebuild_matches_fresh_greedy;
    Alcotest.test_case "leave inactive rejected" `Quick test_leave_inactive_rejected;
    Alcotest.test_case "join active rejected" `Quick test_join_active_rejected;
    Alcotest.test_case "leave removes connections" `Quick test_leave_removes_connections;
    Alcotest.test_case "join recovers" `Quick test_join_recovers;
  ]
