let test_roundtrip () =
  let g = Gen.gnm (Owp_util.Prng.create 5) ~n:30 ~m:60 in
  let g2 = Graph_io.of_string (Graph_io.to_string g) in
  Alcotest.(check int) "nodes" (Graph.node_count g) (Graph.node_count g2);
  Alcotest.(check int) "edges" (Graph.edge_count g) (Graph.edge_count g2);
  Graph.iter_edges g (fun _ u v ->
      Alcotest.(check bool) "edge present" true (Graph.mem_edge g2 u v))

let test_comments_and_blanks () =
  let s = "# a comment\n3 2\n\n0 1\n# another\n1 2\n" in
  let g = Graph_io.of_string s in
  Alcotest.(check int) "edges" 2 (Graph.edge_count g)

let test_malformed () =
  Alcotest.(check bool) "empty fails" true
    (try
       ignore (Graph_io.of_string "");
       false
     with Failure _ -> true);
  Alcotest.(check bool) "bad header fails" true
    (try
       ignore (Graph_io.of_string "nope\n");
       false
     with Failure _ | Invalid_argument _ -> true);
  Alcotest.(check bool) "count mismatch fails" true
    (try
       ignore (Graph_io.of_string "3 5\n0 1\n");
       false
     with Failure _ -> true)

let test_file_roundtrip () =
  let g = Gen.ring 12 in
  let path = Filename.temp_file "owp_test" ".edges" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Graph_io.write path g;
      let g2 = Graph_io.read path in
      Alcotest.(check int) "edges" 12 (Graph.edge_count g2))

let test_weights_roundtrip () =
  let g = Gen.gnm (Owp_util.Prng.create 9) ~n:15 ~m:30 in
  let w = Array.init 30 (fun i -> float_of_int i /. 7.0) in
  let g2, w2 = Graph_io.weights_of_string (Graph_io.weights_to_string g w) in
  Alcotest.(check int) "edges" 30 (Graph.edge_count g2);
  Graph.iter_edges g (fun eid u v ->
      match Graph.find_edge g2 u v with
      | Some eid2 -> Alcotest.(check (float 1e-12)) "weight kept" w.(eid) w2.(eid2)
      | None -> Alcotest.fail "edge lost")

let test_weights_arity () =
  let g = Gen.ring 4 in
  Alcotest.check_raises "arity"
    (Invalid_argument "Graph_io.weights_to_string: weight arity mismatch") (fun () ->
      ignore (Graph_io.weights_to_string g [| 1.0 |]))

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
    Alcotest.test_case "malformed" `Quick test_malformed;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    Alcotest.test_case "weights roundtrip" `Quick test_weights_roundtrip;
    Alcotest.test_case "weights arity" `Quick test_weights_arity;
  ]
