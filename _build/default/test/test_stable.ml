module GS = Owp_stable.Gale_shapley
module RM = Owp_stable.Roommates
module FX = Owp_stable.Fixtures
module BL = Owp_stable.Blocking
module BM = Owp_matching.Bmatching
module Prng = Owp_util.Prng

(* ---------- Gale–Shapley ---------- *)

let bipartite_prefs seed ~left ~right ~p ~quota =
  let rng = Prng.create seed in
  let g = Gen.random_bipartite rng ~left ~right ~p in
  let prefs = Preference.random rng g ~quota:(Preference.uniform_quota g quota) in
  (g, prefs)

let test_gs_classic () =
  (* 2x2: both proposers prefer reviewer 2; reviewer 2 prefers proposer 0 *)
  let g = Graph.of_edge_list 4 [ (0, 2); (0, 3); (1, 2); (1, 3) ] in
  let lists = [| [| 2; 3 |]; [| 2; 3 |]; [| 0; 1 |]; [| 0; 1 |] |] in
  let p = Preference.create g ~quota:[| 1; 1; 1; 1 |] ~lists in
  let pairs = GS.marriage p ~proposers:[| 0; 1 |] in
  Alcotest.(check int) "perfect" 2 (List.length pairs);
  Alcotest.(check bool) "0 gets favourite" true (List.mem (0, 2) pairs);
  Alcotest.(check bool) "1 gets the other" true (List.mem (1, 3) pairs)

let test_gs_stability_unit () =
  for seed = 1 to 10 do
    let _, prefs = bipartite_prefs seed ~left:8 ~right:8 ~p:0.7 ~quota:1 in
    let m = GS.run prefs ~proposers:(Array.init 8 Fun.id) in
    Alcotest.(check bool) "stable" true (BL.is_stable prefs m)
  done

let test_gs_stability_capacitated () =
  for seed = 1 to 10 do
    let _, prefs = bipartite_prefs (100 + seed) ~left:6 ~right:9 ~p:0.6 ~quota:3 in
    let m = GS.run prefs ~proposers:(Array.init 6 Fun.id) in
    Alcotest.(check bool) "many-to-many stable" true (BL.is_stable prefs m)
  done

let test_gs_rejects_nonbipartite () =
  let g = Graph.of_edge_list 3 [ (0, 1); (1, 2); (0, 2) ] in
  let p = Preference.random (Prng.create 1) g ~quota:(Preference.uniform_quota g 1) in
  Alcotest.(check bool) "raises" true
    (try
       ignore (GS.run p ~proposers:[| 0 |]);
       false
     with Invalid_argument _ -> true)

(* ---------- Roommates ---------- *)

(* Brute-force stability oracle for small n: enumerate all perfect
   matchings and check whether any is stable. *)
let exists_stable_bruteforce prefs =
  let n = Array.length prefs in
  let partner = Array.make n (-1) in
  let rec go i =
    if i = n then RM.is_stable_assignment prefs partner
    else if partner.(i) >= 0 then go (i + 1)
    else begin
      let found = ref false in
      let j = ref (i + 1) in
      while (not !found) && !j < n do
        if partner.(!j) < 0 then begin
          partner.(i) <- !j;
          partner.(!j) <- i;
          if go (i + 1) then found := true;
          partner.(i) <- -1;
          partner.(!j) <- -1
        end;
        incr j
      done;
      !found
    end
  in
  go 0


let test_roommates_solvable () =
  (* mutual-top pairs: 0-1 and 2-3 rank each other first *)
  let prefs = [| [| 1; 2; 3 |]; [| 0; 2; 3 |]; [| 3; 0; 1 |]; [| 2; 0; 1 |] |] in
  match RM.solve prefs with
  | RM.No_stable_matching -> Alcotest.fail "expected stable"
  | RM.Stable partner ->
      Alcotest.(check (array int)) "mutual tops paired" [| 1; 0; 3; 2 |] partner;
      Alcotest.(check bool) "stable" true (RM.is_stable_assignment prefs partner)

let test_roommates_unsolvable () =
  (* the classic cyclic no-stable-matching instance: agents 0,1,2 each
     rank the next in the cycle first and the pariah 3 last *)
  let unsolvable = [| [| 1; 2; 3 |]; [| 2; 0; 3 |]; [| 0; 1; 3 |]; [| 0; 1; 2 |] |] in
  (match RM.solve unsolvable with
  | RM.No_stable_matching -> ()
  | RM.Stable partner ->
      Alcotest.(check bool) "claimed stable must verify" true
        (RM.is_stable_assignment unsolvable partner);
      Alcotest.fail "instance is known to be unsolvable");
  (* solvable instance with non-trivial phase 2: Irving's 6-person
     example (Gusfield & Irving, 0-indexed) *)
  let six =
    [|
      [| 3; 5; 1; 4; 2 |];
      [| 5; 4; 3; 0; 2 |];
      [| 1; 3; 4; 5; 0 |];
      [| 2; 4; 1; 0; 5 |];
      [| 0; 2; 5; 3; 1 |];
      [| 4; 1; 0; 2; 3 |];
    |]
  in
  match RM.solve six with
  | RM.No_stable_matching ->
      Alcotest.(check bool) "brute force agrees it is unsolvable" false
        (exists_stable_bruteforce six)
  | RM.Stable partner ->
      Alcotest.(check bool) "stable" true (RM.is_stable_assignment six partner)

let test_roommates_validation () =
  Alcotest.(check bool) "incomplete list rejected" true
    (try
       ignore (RM.solve [| [| 1 |]; [| 0 |]; [| 0; 1 |] |]);
       false
     with Invalid_argument _ -> true)

let test_roommates_n2 () =
  match RM.solve [| [| 1 |]; [| 0 |] |] with
  | RM.Stable partner -> Alcotest.(check (array int)) "paired" [| 1; 0 |] partner
  | RM.No_stable_matching -> Alcotest.fail "trivially stable"

let prop_roommates_output_stable =
  QCheck2.Test.make ~name:"roommates: claimed solutions are stable" ~count:100
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let n = 8 in
      let rng = Prng.create seed in
      let prefs =
        Array.init n (fun i ->
            let others = Array.of_list (List.filter (fun j -> j <> i) (List.init n Fun.id)) in
            Prng.shuffle_in_place rng others;
            others)
      in
      match RM.solve prefs with
      | RM.No_stable_matching -> true (* verified separately on known instances *)
      | RM.Stable partner ->
          RM.is_stable_assignment prefs partner
          && Array.for_all Fun.id (Array.mapi (fun x y -> partner.(y) = x) partner))

let prop_roommates_complete =
  QCheck2.Test.make ~name:"roommates agrees with brute force (n=6)" ~count:60
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let n = 6 in
      let rng = Prng.create seed in
      let prefs =
        Array.init n (fun i ->
            let others = Array.of_list (List.filter (fun j -> j <> i) (List.init n Fun.id)) in
            Prng.shuffle_in_place rng others;
            others)
      in
      let brute = exists_stable_bruteforce prefs in
      match RM.solve prefs with
      | RM.Stable partner -> brute && RM.is_stable_assignment prefs partner
      | RM.No_stable_matching -> not brute)

(* ---------- Fixtures / blocking dynamics ---------- *)

let test_blocking_pairs_basic () =
  let g = Graph.of_edge_list 4 [ (0, 1); (1, 2); (2, 3); (0, 3) ] in
  let lists = [| [| 1; 3 |]; [| 0; 2 |]; [| 1; 3 |]; [| 2; 0 |] |] in
  let p = Preference.create g ~quota:[| 1; 1; 1; 1 |] ~lists in
  let empty = BM.empty g ~capacity:[| 1; 1; 1; 1 |] in
  (* on an empty matching every edge blocks *)
  Alcotest.(check int) "all block" 4 (BL.count_blocking_pairs p empty);
  let m = BM.of_edge_ids g ~capacity:[| 1; 1; 1; 1 |] [ 0; 2 ] in
  (* 0-1 and 2-3: everyone has their top choice -> stable *)
  Alcotest.(check bool) "stable" true (BL.is_stable p m);
  Alcotest.(check (option int)) "worst partner" (Some 1) (BL.worst_partner p m 0)

let test_fixtures_converges_acyclic () =
  let g = Gen.gnm (Prng.create 4) ~n:40 ~m:120 in
  let p =
    Preference.of_metric g
      ~quota:(Preference.uniform_quota g 3)
      (Metric.bandwidth ~seed:2)
  in
  let out = FX.solve p in
  Alcotest.(check bool) "converged" true out.FX.stable;
  Alcotest.(check bool) "verified stable" true (BL.is_stable p out.FX.matching)

let test_fixtures_stable_flag_honest () =
  for seed = 1 to 8 do
    let g = Gen.gnm (Prng.create seed) ~n:20 ~m:60 in
    let p = Preference.random (Prng.create (seed * 7)) g ~quota:(Preference.uniform_quota g 2) in
    let out = FX.solve ~max_rounds:5000 p in
    if out.FX.stable then
      Alcotest.(check bool) "flag implies no blocking pair" true
        (BL.is_stable p out.FX.matching)
  done

let test_fixtures_respects_quota () =
  let g = Gen.gnm (Prng.create 77) ~n:25 ~m:80 in
  let p = Preference.random (Prng.create 78) g ~quota:(Preference.uniform_quota g 2) in
  let out = FX.solve ~max_rounds:2000 p in
  for v = 0 to 24 do
    Alcotest.(check bool) "quota" true (BM.degree out.FX.matching v <= 2)
  done

let test_satisfy_improves () =
  let g = Graph.of_edge_list 2 [ (0, 1) ] in
  let p = Preference.random (Prng.create 1) g ~quota:(Preference.uniform_quota g 1) in
  let start = BM.empty g ~capacity:[| 1; 1 |] in
  let out = FX.satisfy_blocking_pairs p start in
  Alcotest.(check bool) "stable" true out.FX.stable;
  Alcotest.(check int) "one round" 1 out.FX.rounds;
  Alcotest.(check int) "edge added" 1 (BM.size out.FX.matching)

let suite =
  [
    Alcotest.test_case "GS classic 2x2" `Quick test_gs_classic;
    Alcotest.test_case "GS stability unit" `Quick test_gs_stability_unit;
    Alcotest.test_case "GS stability capacitated" `Quick test_gs_stability_capacitated;
    Alcotest.test_case "GS rejects non-bipartite" `Quick test_gs_rejects_nonbipartite;
    Alcotest.test_case "roommates solvable" `Quick test_roommates_solvable;
    Alcotest.test_case "roommates unsolvable" `Quick test_roommates_unsolvable;
    Alcotest.test_case "roommates validation" `Quick test_roommates_validation;
    Alcotest.test_case "roommates n=2" `Quick test_roommates_n2;
    QCheck_alcotest.to_alcotest prop_roommates_output_stable;
    QCheck_alcotest.to_alcotest prop_roommates_complete;
    Alcotest.test_case "blocking pairs basic" `Quick test_blocking_pairs_basic;
    Alcotest.test_case "fixtures converges on acyclic" `Quick test_fixtures_converges_acyclic;
    Alcotest.test_case "fixtures stable flag honest" `Quick test_fixtures_stable_flag_honest;
    Alcotest.test_case "fixtures respects quota" `Quick test_fixtures_respects_quota;
    Alcotest.test_case "satisfy improves" `Quick test_satisfy_improves;
  ]
