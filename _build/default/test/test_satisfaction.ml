module S = Satisfaction

let feq = Alcotest.(check (float 1e-9))

let test_figure1 () =
  feq "paper value 25/28" (25.0 /. 28.0) (S.figure1_example ());
  Alcotest.(check bool) "rounds to 0.893" true
    (Float.abs (S.figure1_example () -. 0.893) < 5e-4)

let test_perfect () =
  feq "top-b is 1" 1.0 (S.perfect ~quota:4 ~list_len:7);
  feq "b=1" 1.0 (S.perfect ~quota:1 ~list_len:10);
  feq "b=L" 1.0 (S.perfect ~quota:5 ~list_len:5)

let test_empty_connections () = feq "no connections" 0.0 (S.of_ranks ~quota:3 ~list_len:5 [])

let test_single_worst () =
  (* one connection at the bottom of the list *)
  let s = S.of_ranks ~quota:1 ~list_len:10 [ 9 ] in
  feq "worst single" (1.0 -. (9.0 /. 10.0)) s

let test_order_irrelevant () =
  let a = S.of_ranks ~quota:3 ~list_len:8 [ 1; 4; 6 ] in
  let b = S.of_ranks ~quota:3 ~list_len:8 [ 6; 1; 4 ] in
  feq "permutation invariant" a b

let test_of_ranks_errors () =
  Alcotest.check_raises "too many" (Invalid_argument "Satisfaction: more connections than quota")
    (fun () -> ignore (S.of_ranks ~quota:2 ~list_len:5 [ 0; 1; 2 ]));
  Alcotest.check_raises "bad rank" (Invalid_argument "Satisfaction: rank out of range")
    (fun () -> ignore (S.of_ranks ~quota:2 ~list_len:5 [ 5 ]));
  Alcotest.check_raises "bad quota" (Invalid_argument "Satisfaction: quota must be positive")
    (fun () -> ignore (S.of_ranks ~quota:0 ~list_len:5 []))

let test_delta_matches_parts () =
  (* eq. 4 = static + dynamic decomposition *)
  for b = 1 to 6 do
    for l = b to 10 do
      for r = 0 to l - 1 do
        for q = 0 to b - 1 do
          let full = S.delta ~quota:b ~list_len:l ~rank:r ~position:q in
          let s = S.static_delta ~quota:b ~list_len:l ~rank:r in
          let d = S.dynamic_delta ~quota:b ~list_len:l ~position:q in
          feq "decomposition" full (s +. d)
        done
      done
    done
  done

let test_delta_errors () =
  Alcotest.check_raises "rank range" (Invalid_argument "Satisfaction.delta: rank out of range")
    (fun () -> ignore (S.delta ~quota:2 ~list_len:3 ~rank:3 ~position:0));
  Alcotest.check_raises "position range"
    (Invalid_argument "Satisfaction.delta: position out of range") (fun () ->
      ignore (S.delta ~quota:2 ~list_len:3 ~rank:1 ~position:2))

let test_static_monotone_in_rank () =
  for r = 0 to 8 do
    let better = S.static_delta ~quota:3 ~list_len:10 ~rank:r in
    let worse = S.static_delta ~quota:3 ~list_len:10 ~rank:(r + 1) in
    Alcotest.(check bool) "lower rank gains more" true (better > worse)
  done

let ranks_gen =
  QCheck2.Gen.(
    int_range 1 8 >>= fun quota ->
    int_range quota 20 >>= fun list_len ->
    int_range 0 quota >>= fun c ->
    (* c distinct ranks in [0, list_len) *)
    let rec draw acc =
      if List.length acc = c then return (quota, list_len, acc)
      else
        int_range 0 (list_len - 1) >>= fun r ->
        if List.mem r acc then draw acc else draw (r :: acc)
    in
    draw [])

let prop_satisfaction_in_unit_interval =
  QCheck2.Test.make ~name:"satisfaction in [0,1]" ~count:500 ranks_gen
    (fun (quota, list_len, ranks) ->
      let s = S.of_ranks ~quota ~list_len ranks in
      s >= -1e-12 && s <= 1.0 +. 1e-12)

let prop_closed_form_equals_delta_sum =
  QCheck2.Test.make ~name:"eq.1 equals sum of eq.4 increments" ~count:500 ranks_gen
    (fun (quota, list_len, ranks) ->
      let closed = S.of_ranks ~quota ~list_len ranks in
      let sorted = List.sort compare ranks in
      let sum =
        List.fold_left
          (fun (q, acc) r -> (q + 1, acc +. S.delta ~quota ~list_len ~rank:r ~position:q))
          (0, 0.0) sorted
        |> snd
      in
      Float.abs (closed -. sum) < 1e-9)

let prop_static_le_full =
  QCheck2.Test.make ~name:"static satisfaction <= full satisfaction" ~count:500 ranks_gen
    (fun (quota, list_len, ranks) ->
      S.static_of_ranks ~quota ~list_len ranks
      <= S.of_ranks ~quota ~list_len ranks +. 1e-12)

let prop_lemma1_pointwise =
  QCheck2.Test.make ~name:"static/full ratio >= 1/2(1+1/b) pointwise" ~count:500 ranks_gen
    (fun (quota, list_len, ranks) ->
      let full = S.of_ranks ~quota ~list_len ranks in
      if full <= 1e-12 then true
      else begin
        let st = S.static_of_ranks ~quota ~list_len ranks in
        let bound = 0.5 *. (1.0 +. (1.0 /. float_of_int quota)) in
        st /. full >= bound -. 1e-9
      end)

let prop_adding_connection_never_decreases =
  QCheck2.Test.make ~name:"adding a connection increases satisfaction" ~count:300
    ranks_gen (fun (quota, list_len, ranks) ->
      if List.length ranks >= quota then true
      else
        match
          List.filter (fun r -> not (List.mem r ranks)) (List.init list_len Fun.id)
        with
        | [] -> true
        | extra :: _ ->
            S.of_ranks ~quota ~list_len (extra :: ranks)
            > S.of_ranks ~quota ~list_len ranks -. 1e-12)

let suite =
  [
    Alcotest.test_case "figure 1" `Quick test_figure1;
    Alcotest.test_case "perfect" `Quick test_perfect;
    Alcotest.test_case "empty connections" `Quick test_empty_connections;
    Alcotest.test_case "single worst" `Quick test_single_worst;
    Alcotest.test_case "order irrelevant" `Quick test_order_irrelevant;
    Alcotest.test_case "of_ranks errors" `Quick test_of_ranks_errors;
    Alcotest.test_case "delta decomposition" `Quick test_delta_matches_parts;
    Alcotest.test_case "delta errors" `Quick test_delta_errors;
    Alcotest.test_case "static monotone in rank" `Quick test_static_monotone_in_rank;
    QCheck_alcotest.to_alcotest prop_satisfaction_in_unit_interval;
    QCheck_alcotest.to_alcotest prop_closed_form_equals_delta_sum;
    QCheck_alcotest.to_alcotest prop_static_le_full;
    QCheck_alcotest.to_alcotest prop_lemma1_pointwise;
    QCheck_alcotest.to_alcotest prop_adding_connection_never_decreases;
  ]
