(* CDN-style bipartite assignment: clients connect to edge servers.
   Clients rank servers by a private blend of proximity and server
   capacity; servers rank clients by transaction history (paying
   customers first).  Because the potential graph is bipartite, the
   exact optimum is computable at this scale by min-cost flow — so we
   can report LID's true approximation ratio, not just the bound.

   Run with:  dune exec examples/cdn_assignment.exe *)

module BM = Owp_matching.Bmatching
module Prng = Owp_util.Prng

let () =
  let rng = Prng.create 77 in
  let clients = 600 and servers = 40 in
  let n = clients + servers in
  (* a client can reach a random subset of servers *)
  let g = Gen.random_bipartite rng ~left:clients ~right:servers ~p:0.25 in

  (* coordinates for the proximity part of the client metric *)
  let pts = Array.init n (fun _ -> (Prng.float rng 1.0, Prng.float rng 1.0)) in
  let client_metric =
    Metric.combine "proximity+capacity"
      [ (0.7, Metric.latency pts); (0.3, Metric.bandwidth ~seed:5) ]
  in
  let server_metric = Metric.transaction_history ~seed:9 in
  let metric_of v = if v < clients then client_metric else server_metric in

  (* clients keep 2 mirrors; servers accept up to 25 clients *)
  let quota = Array.init n (fun v -> if v < clients then 2 else 25) in
  let prefs =
    Preference.of_scores g ~quota (fun i j -> Metric.score (metric_of i) i j)
  in
  let w = Weights.of_preference prefs in
  let capacity = Array.init n (Preference.quota prefs) in

  let lid = Owp_core.Lid.run ~seed:3 w ~capacity in
  let m = lid.Owp_core.Lid.matching in
  let opt = Owp_matching.Exact.max_weight_bipartite w ~capacity ~left:clients in

  Printf.printf "clients=%d servers=%d potential links=%d\n" clients servers
    (Graph.edge_count g);
  Printf.printf "LID assignments   : %d (messages %d, terminated %b)\n" (BM.size m)
    (lid.Owp_core.Lid.prop_count + lid.Owp_core.Lid.rej_count)
    lid.Owp_core.Lid.all_terminated;
  List.iter
    (fun v -> Printf.printf "  !! %s\n" (Owp_check.Violation.to_string v))
    lid.Owp_core.Lid.quiescence;
  Printf.printf "exact assignments : %d (min-cost flow)\n" (BM.size opt);
  Printf.printf "weight ratio      : %.4f (proven floor 0.5)\n"
    (BM.weight m w /. BM.weight opt w);
  let s_lid = Preference.total_satisfaction prefs (BM.connection_lists m) in
  let s_opt = Preference.total_satisfaction prefs (BM.connection_lists opt) in
  Printf.printf "satisfaction      : LID %.1f vs weight-OPT %.1f (ratio %.4f)\n" s_lid
    s_opt (s_lid /. s_opt);

  (* per-side view *)
  let side_mean lo hi =
    let acc = ref 0.0 and cnt = ref 0 in
    for v = lo to hi - 1 do
      if Preference.list_len prefs v > 0 then begin
        incr cnt;
        acc := !acc +. Preference.satisfaction prefs v (BM.connections m v)
      end
    done;
    !acc /. float_of_int !cnt
  in
  Printf.printf "mean satisfaction : clients %.4f | servers %.4f\n" (side_mean 0 clients)
    (side_mean clients n);
  let unserved = ref 0 in
  for c = 0 to clients - 1 do
    if BM.connections m c = [] && Preference.list_len prefs c > 0 then incr unserved
  done;
  Printf.printf "unserved clients  : %d\n" !unserved
