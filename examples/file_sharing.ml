(* File-sharing swarm: seeds with high upload capacity vs leechers.
   Every peer ranks neighbours by available bandwidth (a global,
   acyclic metric) but quotas differ: seeds accept many connections,
   leechers few.  Shows per-class satisfaction and compares LID with the
   stable-fixtures dynamics, which does converge here (acyclic case of
   Gai et al.) yet yields lower total satisfaction.

   Run with:  dune exec examples/file_sharing.exe *)

module BM = Owp_matching.Bmatching

let () =
  let rng = Owp_util.Prng.create 5 in
  let n = 300 in
  let g = Gen.gnm rng ~n ~m:(6 * n) in

  (* 10% seeds (quota 12), 90% leechers (quota 3) *)
  let is_seed = Array.init n (fun _ -> Owp_util.Prng.bernoulli rng 0.1) in
  let quota = Array.init n (fun v -> if is_seed.(v) then 12 else 3) in
  let metric = Metric.bandwidth ~seed:17 in
  let prefs = Preference.of_metric g ~quota metric in
  let w = Weights.of_preference prefs in
  let capacity = Array.init n (Preference.quota prefs) in

  let lid = Owp_core.Lid.run ~seed:6 w ~capacity in
  let m = lid.Owp_core.Lid.matching in
  Printf.printf "swarm: %d peers (%d seeds), %d potential links\n" n
    (Array.fold_left (fun a b -> if b then a + 1 else a) 0 is_seed)
    (Graph.edge_count g);
  Printf.printf "LID: %d links, %d msgs, terminated=%b\n" (BM.size m)
    (lid.Owp_core.Lid.prop_count + lid.Owp_core.Lid.rej_count)
    lid.Owp_core.Lid.all_terminated;
  List.iter
    (fun v -> Printf.printf "  !! %s\n" (Owp_check.Violation.to_string v))
    lid.Owp_core.Lid.quiescence;
  print_newline ();

  let class_stats label keep =
    let sats = ref [] and filled = ref 0 and total = ref 0 in
    for v = 0 to n - 1 do
      if keep v && Preference.list_len prefs v > 0 then begin
        incr total;
        if BM.residual m v = 0 then incr filled;
        sats := Preference.satisfaction prefs v (BM.connections m v) :: !sats
      end
    done;
    let s = Owp_util.Stats.summarize (Array.of_list !sats) in
    Printf.printf "%-10s peers=%3d  mean S=%.4f  median S=%.4f  quota filled=%.0f%%\n"
      label !total s.Owp_util.Stats.mean s.Owp_util.Stats.median
      (100.0 *. float_of_int !filled /. float_of_int !total)
  in
  class_stats "seeds" (fun v -> is_seed.(v));
  class_stats "leechers" (fun v -> not is_seed.(v));

  (* the bandwidth metric is acyclic, so blocking-pair dynamics
     converges to the stable fixtures solution; compare satisfaction *)
  let dyn = Owp_stable.Fixtures.solve prefs in
  let s_lid = Preference.total_satisfaction prefs (BM.connection_lists m) in
  let s_dyn =
    Preference.total_satisfaction prefs
      (BM.connection_lists dyn.Owp_stable.Fixtures.matching)
  in
  Printf.printf "\nstable dynamics converged: %b (rounds=%d)\n"
    dyn.Owp_stable.Fixtures.stable dyn.Owp_stable.Fixtures.rounds;
  Printf.printf "total satisfaction: LID=%.2f  stable-dynamics=%.2f  (ratio %.3f)\n" s_lid
    s_dyn
    (if s_dyn = 0.0 then 1.0 else s_lid /. s_dyn);
  Printf.printf "blocking pairs left by LID: %d (satisfaction, not stability, is the objective)\n"
    (Owp_stable.Blocking.count_blocking_pairs prefs m)
