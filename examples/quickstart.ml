(* Quickstart: build an overlay where every peer ranks its potential
   neighbours with a private metric, run the paper's distributed LID
   protocol, and inspect the quality guarantee.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. The potential-connection graph: who *could* talk to whom.
        Here, a sparse random overlay of 200 peers. *)
  let rng = Owp_util.Prng.create 2024 in
  let g = Gen.gnm rng ~n:200 ~m:800 in

  (* 2. Every peer keeps a private suitability metric and wants at most
        3 connections.  The metric is never disclosed: the protocol only
        exchanges one satisfaction scalar per potential link. *)
  let config =
    Owp_overlay.Overlay.homogeneous ~quota:3 (Metric.transaction_history ~seed:7)
  in

  (* 3. Run LID (Algorithm 1 of the paper) over a simulated asynchronous
        network. *)
  let outcome = Owp_overlay.Overlay.build ~seed:42 g config in

  Printf.printf "peers                : %d\n" (Graph.node_count g);
  Printf.printf "potential links      : %d\n" (Graph.edge_count g);
  Printf.printf "established links    : %d\n"
    (Owp_matching.Bmatching.size outcome.Owp_core.Pipeline.matching);
  Printf.printf "total satisfaction   : %.2f\n"
    outcome.Owp_core.Pipeline.total_satisfaction;
  Printf.printf "mean satisfaction    : %.4f (in [0,1])\n"
    outcome.Owp_core.Pipeline.mean_satisfaction;
  (match outcome.Owp_core.Pipeline.messages with
  | Some m -> Printf.printf "protocol messages    : %d (%.1f per peer)\n" m
                (float_of_int m /. 200.0)
  | None -> ());
  (match outcome.Owp_core.Pipeline.guarantee with
  | Some b ->
      Printf.printf "proven guarantee     : >= %.3f of the optimal satisfaction (Thm 3)\n" b
  | None -> ());

  (* 4. The same matching, computed centrally (Algorithm 2), is
        guaranteed to be identical (Lemmas 4/6). *)
  let prefs = Owp_overlay.Overlay.preferences g config in
  let lic =
    Owp_core.Pipeline.run_config
      (Owp_core.Run_config.make ~engine:Owp_core.Run_config.Lic ~seed:7 ())
      prefs
  in
  Printf.printf "LID == LIC           : %b\n"
    (Owp_matching.Bmatching.equal outcome.Owp_core.Pipeline.matching
       lic.Owp_core.Pipeline.matching)
