type pt = { x : float; y : float }

let same_point (a : pt) (b : pt) = a = b

let sort_weights (xs : float list) = List.sort compare xs

let heavier (a : float) b = max a b
