let same (a : float) b = Float.equal a b

let sort_weights (xs : float list) = List.sort Float.compare xs

let same_int (a : int) b = a = b
