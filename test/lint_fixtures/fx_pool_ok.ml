(* Task-local mutation: each worker closure owns its accumulator. *)

let squares xs =
  Owp_util.Pool.map_list ~jobs:2
    (fun x ->
      let acc = ref 0 in
      acc := x * x;
      !acc)
    xs
