(* The enumeration feeds a sort, so bucket order cannot escape. *)

let sorted_keys tbl =
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])
