let init () = Random.self_init ()

let roll () = Random.int 6
