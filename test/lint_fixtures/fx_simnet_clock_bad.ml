(* A unit with "simnet" in its name: the simulator manufactures the
   virtual timestamps every layer replays, so even the timing shim is
   off limits there — one wall-clock duration in the delivery loop and
   sharded replay is no longer bit-identical. *)

let origin () = Owp_util.Clock.now ()

let elapsed t0 = Owp_util.Clock.elapsed_ms ~since:t0

let stamp () = Unix.gettimeofday ()
