(* Layer-shaped records constructed against the conformance rules. *)

type mw = {
  mw_name : string;
  on_send : int -> int option;
  on_deliver : int -> int option;
  mw_counters : unit -> (string * int) list;
}

let base =
  {
    mw_name = "base";
    on_send = (fun x -> Some x);
    on_deliver = (fun x -> Some x);
    mw_counters = (fun () -> [ ("base", 1) ]);
  }

let renamed = { base with mw_name = "renamed" }

let silent =
  {
    mw_name = "silent";
    on_send = (fun x -> Some x);
    on_deliver = (fun x -> Some x);
    mw_counters = (fun () -> []);
  }
