(* Layer-shaped records constructed against the conformance rules. *)

type mw = {
  mw_name : string;
  on_send : int -> int option;
  on_deliver : int -> int option;
  mw_counters : unit -> (string * int) list;
}

let base =
  {
    mw_name = "base";
    on_send = (fun x -> Some x);
    on_deliver = (fun x -> Some x);
    mw_counters = (fun () -> [ ("base", 1) ]);
  }

let renamed = { base with mw_name = "renamed" }

let silent =
  {
    mw_name = "silent";
    on_send = (fun x -> Some x);
    on_deliver = (fun x -> Some x);
    mw_counters = (fun () -> []);
  }

(* Deadline-shaped cases: the anytime cutoff layer must be built like
   every other middleware — a full literal record with a live counter
   row, never inherited via record update. *)

let deadline_ok =
  {
    mw_name = "deadline";
    on_send = (fun x -> Some x);
    on_deliver = (fun x -> Some x);
    mw_counters = (fun () -> [ ("released", 0); ("abandoned", 0) ]);
  }

let deadline_inherited = { deadline_ok with mw_name = "deadline-copy" }

let deadline_mute =
  {
    mw_name = "deadline-mute";
    on_send = (fun x -> Some x);
    on_deliver = (fun x -> Some x);
    mw_counters = (fun () -> []);
  }

(* Heal-aware rows: the transport's suspect/resume accounting and the
   detector's suppressed-give-ups row obey the same conformance rules —
   a full literal record with live counters, never inherited via record
   update and never muted. *)

let transport_healing_ok =
  {
    mw_name = "transport";
    on_send = (fun x -> Some x);
    on_deliver = (fun x -> Some x);
    mw_counters =
      (fun () -> [ ("suspected", 0); ("resumed", 0); ("give-ups-held", 0) ]);
  }

let transport_healing_inherited =
  { transport_healing_ok with mw_name = "transport-copy" }

let detector_suppression_mute =
  {
    mw_name = "detector";
    on_send = (fun x -> Some x);
    on_deliver = (fun x -> Some x);
    mw_counters = (fun () -> []);
  }
