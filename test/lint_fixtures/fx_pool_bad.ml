(* A worker closure scribbling on state captured from outside the task. *)

let race xs =
  let sum = ref 0 in
  ignore (Owp_util.Pool.map_list ~jobs:2 (fun x -> sum := !sum + x) xs);
  !sum
