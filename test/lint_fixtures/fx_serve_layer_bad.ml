(* Serve request handlers follow the middleware record discipline: a
   full literal record and a live counter row, like any Stack layer. *)

type handler = {
  h_name : string;
  on_request : int -> float;
  h_counters : unit -> (string * int) list;
}

let query_ok =
  {
    h_name = "query";
    on_request = (fun _ -> 1.0);
    h_counters = (fun () -> [ ("query", 0) ]);
  }

let join_inherited = { query_ok with h_name = "join" }

let leave_mute =
  {
    h_name = "leave";
    on_request = (fun _ -> 1.0);
    h_counters = (fun () -> []);
  }
