let drain tbl =
  (* owp-lint: allow hash-order — suppression demonstration fixture *)
  Hashtbl.iter (fun _ _ -> ()) tbl
