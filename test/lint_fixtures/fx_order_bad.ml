(* Unsorted hashtable enumeration escaping to the caller. *)

let keys tbl = Hashtbl.fold (fun k () acc -> k :: acc) tbl []

let pairs tbl = List.of_seq (Hashtbl.to_seq tbl)
