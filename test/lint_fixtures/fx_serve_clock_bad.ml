(* A unit with "serve" in its name: the serving layer may not read
   even the timing shim, since every figure it reports is virtual. *)

let origin () = Owp_util.Clock.now ()

let timed f = Owp_util.Clock.time f

let stamp () = Unix.gettimeofday ()
