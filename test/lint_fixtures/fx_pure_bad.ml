(* owp-lint: pure *)
(* A pure-tagged module holding module-level mutable state and ambient
   effects: the three definitions below are pure-core violations. *)

let cache : (int, int) Hashtbl.t = Hashtbl.create 8

let log_line msg = Printf.printf "%s\n" msg

let wall () = Sys.time ()
