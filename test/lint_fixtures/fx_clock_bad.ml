let stamp () = Unix.gettimeofday ()

let cpu () = Sys.time ()
