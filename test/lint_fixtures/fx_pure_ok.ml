(* owp-lint: pure *)
(* Externally pure: sprintf and mutation local to a call are fine. *)

let label i = Printf.sprintf "n%d" i

let sum xs =
  let acc = ref 0 in
  List.iter (fun x -> acc := x + !acc) xs;
  !acc
