(* A Pool task mutating an event wheel captured from outside the task:
   the sharded simulator's contract is each task touches its OWN shard,
   so a shared wheel races like a shared Hashtbl.  [prepare] is the
   sanctioned pool operation (prepare_all ripens each task's shard) and
   must stay clean. *)

let race xs =
  let w = Owp_util.Event_wheel.create () in
  ignore (Owp_util.Pool.map_list ~jobs:2 (fun x -> Owp_util.Event_wheel.add w ~at:1.0 ~seq:x x) xs);
  ignore (Owp_util.Pool.map_list ~jobs:2 (fun _ -> Owp_util.Event_wheel.pop w) xs);
  Owp_util.Event_wheel.size w

let ripen wheels =
  (* each task prepares the one wheel handed to it: legal *)
  ignore (Owp_util.Pool.map ~jobs:2 Owp_util.Event_wheel.prepare wheels)
