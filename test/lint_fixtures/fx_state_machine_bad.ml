(* A second PROP/REJ state machine growing outside lid.ml. *)

type peer = { mutable u_set : int list; a_set : int list }

let tick k_set = k_set + 1
