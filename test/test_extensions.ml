(* Tests for the extension modules: Improve (local search), Hoepman,
   Lid_dynamic, the robust stack configuration and Fixtures_phase1. *)

module BM = Owp_matching.Bmatching
module Prng = Owp_util.Prng
module Improve = Owp_core.Improve
module Hoepman = Owp_core.Hoepman
module Dyn = Owp_core.Lid_dynamic
module P1 = Owp_stable.Fixtures_phase1

let random_instance seed n avg_deg quota =
  let rng = Prng.create seed in
  let g = Gen.gnm rng ~n ~m:(n * avg_deg / 2) in
  let p = Preference.random rng g ~quota:(Preference.uniform_quota g quota) in
  (g, p, Weights.of_preference p, Array.init n (Preference.quota p))

let total p m = Preference.total_satisfaction p (BM.connection_lists m)

(* ---------- Improve ---------- *)

let prop_local_search_never_worse =
  QCheck2.Test.make ~name:"local search never decreases satisfaction" ~count:40
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let _, p, w, cap = random_instance seed 25 6 2 in
      let m = Owp_core.Lic.run w ~capacity:cap in
      let m', _ = Improve.local_search p m in
      total p m' >= total p m -. 1e-9)

let prop_local_search_feasible =
  QCheck2.Test.make ~name:"local search preserves feasibility" ~count:40
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let _, p, w, cap = random_instance seed 25 6 2 in
      let m = Owp_core.Lic.run w ~capacity:cap in
      let m', _ = Improve.local_search p m in
      let ok = ref true in
      Array.iteri (fun v b -> if BM.degree m' v > b then ok := false) cap;
      !ok)

let test_local_search_fixes_bad_matching () =
  (* path 0-1-2-3 where the middle edge is a poor satisfaction choice:
     quota 1, matching {1-2} leaves 0 and 3 alone; swap moves should
     reach {0-1, 2-3} *)
  let g = Graph.of_edge_list 4 [ (0, 1); (1, 2); (2, 3) ] in
  let lists = [| [| 1 |]; [| 0; 2 |]; [| 3; 1 |]; [| 2 |] |] in
  let p = Preference.create g ~quota:[| 1; 1; 1; 1 |] ~lists in
  let bad = BM.of_edge_ids g ~capacity:[| 1; 1; 1; 1 |] [ 1 ] in
  let improved, moves = Improve.local_search p bad in
  Alcotest.(check bool) "moved" true (moves > 0);
  Alcotest.(check (float 1e-9)) "optimal now" 4.0 (total p improved)

let test_move_gain_on_matched_edge_is_zero () =
  let _, p, w, cap = random_instance 3 15 4 2 in
  let m = Owp_core.Lic.run w ~capacity:cap in
  List.iter
    (fun eid -> Alcotest.(check (float 1e-12)) "matched gain" 0.0 (Improve.move_gain p m eid))
    (BM.edge_ids m)

(* ---------- Hoepman ---------- *)

let prop_hoepman_equals_lic_b1 =
  QCheck2.Test.make ~name:"Hoepman edge set = LIC at b = 1" ~count:40
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let g, _, w, _ = random_instance seed 30 6 1 in
      let r = Hoepman.run ~seed:(seed + 5) w in
      let lic = Owp_core.Lic.run w ~capacity:(Array.make (Graph.node_count g) 1) in
      r.Hoepman.all_terminated && BM.equal r.Hoepman.matching lic)

let test_hoepman_two_nodes () =
  let g = Graph.of_edge_list 2 [ (0, 1) ] in
  let w = Weights.of_array g [| 1.0 |] in
  let r = Hoepman.run w in
  Alcotest.(check int) "matched" 1 (BM.size r.Hoepman.matching);
  Alcotest.(check int) "two requests" 2 r.Hoepman.req_count;
  Alcotest.(check bool) "no drops needed" true (r.Hoepman.drop_count = 0)

let test_hoepman_empty () =
  let g = Graph.of_edge_list 3 [] in
  let w = Weights.of_array g [||] in
  let r = Hoepman.run w in
  Alcotest.(check bool) "terminates" true r.Hoepman.all_terminated;
  Alcotest.(check int) "no messages" 0 (r.Hoepman.req_count + r.Hoepman.drop_count)

(* ---------- Lid_dynamic ---------- *)

let test_dynamic_bootstrap_only () =
  let _, p, _, _ = random_instance 7 30 6 2 in
  let active = Array.make 30 true in
  let r = Dyn.run ~prefs:p ~initially_active:active ~events:[] () in
  Alcotest.(check bool) "quiescent" true r.Dyn.quiescent;
  Alcotest.(check bool) "built something" true (BM.size r.Dyn.final_matching > 0);
  Alcotest.(check bool) "maximal" true (BM.is_maximal r.Dyn.final_matching)

let test_dynamic_leave_then_rejoin () =
  let _, p, _, _ = random_instance 8 25 6 2 in
  let active = Array.make 25 true in
  let r =
    Dyn.run ~prefs:p ~initially_active:active ~events:[ Dyn.Leave 0; Dyn.Join 0 ] ()
  in
  Alcotest.(check int) "two steps" 2 (List.length r.Dyn.steps);
  Alcotest.(check bool) "quiescent" true r.Dyn.quiescent;
  let s1 = List.nth r.Dyn.steps 0 and s2 = List.nth r.Dyn.steps 1 in
  Alcotest.(check int) "one fewer active" 24 s1.Dyn.active_nodes;
  Alcotest.(check int) "back to full" 25 s2.Dyn.active_nodes;
  Alcotest.(check bool) "satisfaction recovers" true
    (s2.Dyn.total_satisfaction >= s1.Dyn.total_satisfaction -. 1e-9)

let test_dynamic_respects_quotas () =
  let _, p, _, cap = random_instance 9 30 8 3 in
  let rngev = Prng.create 10 in
  let active = Array.init 30 (fun _ -> Prng.bernoulli rngev 0.8) in
  let g = Preference.graph p in
  let churn =
    Owp_overlay.Churn.random_events rngev ~universe:g ~initially_active:active ~steps:20
  in
  let events =
    List.map
      (function Owp_overlay.Churn.Join v -> Dyn.Join v | Owp_overlay.Churn.Leave v -> Dyn.Leave v)
      churn
  in
  let r = Dyn.run ~prefs:p ~initially_active:active ~events () in
  Array.iteri
    (fun v b -> Alcotest.(check bool) "quota" true (BM.degree r.Dyn.final_matching v <= b))
    cap;
  Alcotest.(check bool) "quiescent" true r.Dyn.quiescent

let test_dynamic_event_validation () =
  let _, p, _, _ = random_instance 11 10 4 1 in
  let active = Array.make 10 true in
  Alcotest.(check bool) "joining active raises" true
    (try
       ignore (Dyn.run ~prefs:p ~initially_active:active ~events:[ Dyn.Join 0 ] ());
       false
     with Invalid_argument _ -> true)

(* ---------- robust configuration (silent peers + patience) ---------- *)

let test_robust_no_faults_equals_lid () =
  let _, _, w, cap = random_instance 12 25 6 2 in
  let silent = Array.make 25 false in
  let r = Owp_core.Stack.run ~seed:0x50B ~patience:10.0 ~silent w ~capacity:cap in
  let lid = Owp_core.Lid.run w ~capacity:cap in
  Alcotest.(check bool) "terminated" true r.Owp_core.Stack.all_terminated;
  Alcotest.(check int) "no timeouts" 0
    (Owp_core.Stack.counter r ~layer:"detector" "patience-fired");
  Alcotest.(check bool) "same matching as plain LID" true
    (BM.equal r.Owp_core.Stack.matching lid.Owp_core.Lid.matching)

let test_robust_all_silent () =
  let _, _, w, cap = random_instance 13 15 4 2 in
  let silent = Array.make 15 true in
  let r = Owp_core.Stack.run ~seed:0x50B ~patience:10.0 ~silent w ~capacity:cap in
  Alcotest.(check int) "nothing matched" 0 (BM.size r.Owp_core.Stack.matching);
  Alcotest.(check bool) "vacuously terminated" true r.Owp_core.Stack.all_terminated

let prop_robust_terminates_under_silence =
  QCheck2.Test.make ~name:"robust LID always terminates for correct nodes" ~count:30
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range 0 60))
    (fun (seed, pct) ->
      let _, _, w, cap = random_instance seed 25 6 2 in
      let rng = Prng.create (seed + 1) in
      let silent =
        Array.init 25 (fun _ -> Prng.bernoulli rng (float_of_int pct /. 100.0))
      in
      let r = Owp_core.Stack.run ~seed:0x50B ~patience:10.0 ~silent w ~capacity:cap in
      r.Owp_core.Stack.all_terminated
      &&
      (* no silent node ends up in the matching *)
      List.for_all
        (fun eid ->
          let u, v = Graph.edge_endpoints (BM.graph r.Owp_core.Stack.matching) eid in
          (not silent.(u)) && not silent.(v))
        (BM.edge_ids r.Owp_core.Stack.matching))

(* ---------- Fixtures_phase1 ---------- *)

let test_phase1_feasible_and_warm () =
  let _, p, _, cap = random_instance 14 30 6 3 in
  let table = P1.phase1 p in
  let mm = P1.mutual_matching p table in
  Array.iteri (fun v b -> Alcotest.(check bool) "quota" true (BM.degree mm v <= b)) cap;
  let warm = P1.warm_solve ~max_rounds:20000 p in
  let cold = Owp_stable.Fixtures.solve ~max_rounds:20000 p in
  (* warm start can only reduce the number of rounds needed *)
  Alcotest.(check bool) "warm uses fewer-or-equal rounds" true
    (warm.Owp_stable.Fixtures.rounds <= cold.Owp_stable.Fixtures.rounds
    || warm.Owp_stable.Fixtures.stable)

let test_phase1_respects_acyclic_stability () =
  let g = Gen.gnm (Prng.create 15) ~n:40 ~m:120 in
  let p =
    Preference.of_metric g ~quota:(Preference.uniform_quota g 2) (Metric.bandwidth ~seed:3)
  in
  let warm = P1.warm_solve p in
  Alcotest.(check bool) "stable on acyclic" true warm.Owp_stable.Fixtures.stable;
  Alcotest.(check bool) "verified" true
    (Owp_stable.Blocking.is_stable p warm.Owp_stable.Fixtures.matching)

let test_phase1_unit_quota_matches_gs_shape () =
  (* bipartite unit case: mutual holds of phase 1 form a matching *)
  let g = Gen.random_bipartite (Prng.create 16) ~left:6 ~right:6 ~p:0.7 in
  let p = Preference.random (Prng.create 17) g ~quota:(Preference.uniform_quota g 1) in
  let mm = P1.mutual_matching p (P1.phase1 p) in
  for v = 0 to 11 do
    Alcotest.(check bool) "unit degree" true (BM.degree mm v <= 1)
  done

let suite =
  [
    QCheck_alcotest.to_alcotest prop_local_search_never_worse;
    QCheck_alcotest.to_alcotest prop_local_search_feasible;
    Alcotest.test_case "local search fixes bad matching" `Quick test_local_search_fixes_bad_matching;
    Alcotest.test_case "move gain zero on matched" `Quick test_move_gain_on_matched_edge_is_zero;
    QCheck_alcotest.to_alcotest prop_hoepman_equals_lic_b1;
    Alcotest.test_case "hoepman two nodes" `Quick test_hoepman_two_nodes;
    Alcotest.test_case "hoepman empty" `Quick test_hoepman_empty;
    Alcotest.test_case "dynamic bootstrap only" `Quick test_dynamic_bootstrap_only;
    Alcotest.test_case "dynamic leave then rejoin" `Quick test_dynamic_leave_then_rejoin;
    Alcotest.test_case "dynamic respects quotas" `Quick test_dynamic_respects_quotas;
    Alcotest.test_case "dynamic event validation" `Quick test_dynamic_event_validation;
    Alcotest.test_case "robust no faults = LID" `Quick test_robust_no_faults_equals_lid;
    Alcotest.test_case "robust all silent" `Quick test_robust_all_silent;
    QCheck_alcotest.to_alcotest prop_robust_terminates_under_silence;
    Alcotest.test_case "phase1 feasible and warm" `Quick test_phase1_feasible_and_warm;
    Alcotest.test_case "phase1 acyclic stability" `Quick test_phase1_respects_acyclic_stability;
    Alcotest.test_case "phase1 unit quota" `Quick test_phase1_unit_quota_matches_gs_shape;
  ]
