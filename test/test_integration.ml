(* Cross-cutting integration properties: behaviours that span several
   libraries (protocol + theory + exact solvers + overlay layer). *)

module BM = Owp_matching.Bmatching
module Prng = Owp_util.Prng

let random_instance seed n avg_deg quota =
  let rng = Prng.create seed in
  let g = Gen.gnm rng ~n ~m:(n * avg_deg / 2) in
  let p = Preference.random rng g ~quota:(Preference.uniform_quota g quota) in
  (g, p, Weights.of_preference p, Array.init n (Preference.quota p))

(* ---------- structured-graph sanity for LID ---------- *)

let test_lid_torus_full_quota () =
  (* 4-regular torus with quota 4: every edge is selectable and the
     greedy-stable maximal matching is the whole edge set *)
  let g = Gen.torus ~width:5 ~height:5 in
  let p = Preference.random (Prng.create 1) g ~quota:(Preference.uniform_quota g 4) in
  let w = Weights.of_preference p in
  let r = Owp_core.Lid.run w ~capacity:(Array.make 25 4) in
  Alcotest.(check int) "all edges locked" (Graph.edge_count g)
    (BM.size r.Owp_core.Lid.matching);
  (* everyone connected to its entire neighbourhood: satisfaction 1 *)
  Alcotest.(check (float 1e-9)) "everyone fully satisfied" 25.0
    (Preference.total_satisfaction p (BM.connection_lists r.Owp_core.Lid.matching))

let test_lid_star_hub_quota () =
  let g = Gen.star 8 in
  let p = Preference.random (Prng.create 2) g ~quota:[| 7; 1; 1; 1; 1; 1; 1; 1 |] in
  let w = Weights.of_preference p in
  let r = Owp_core.Lid.run w ~capacity:[| 7; 1; 1; 1; 1; 1; 1; 1 |] in
  Alcotest.(check int) "hub takes everyone" 7 (BM.size r.Owp_core.Lid.matching)

let test_lid_complete_b1_equals_greedy () =
  let g = Gen.complete 12 in
  let p = Preference.random (Prng.create 3) g ~quota:(Preference.uniform_quota g 1) in
  let w = Weights.of_preference p in
  let capacity = Array.make 12 1 in
  let r = Owp_core.Lid.run w ~capacity in
  let greedy = Owp_matching.Greedy.run w ~capacity in
  Alcotest.(check bool) "lid = global greedy on K12" true
    (BM.equal r.Owp_core.Lid.matching greedy)

let prop_mutually_heaviest_always_locked =
  (* an edge that is the heaviest incident edge at BOTH endpoints is
     locally heaviest from the start, so every algorithm in the family
     must select it *)
  QCheck2.Test.make ~name:"mutually-heaviest edges are always locked" ~count:40
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let g, _, w, capacity = random_instance seed 30 6 2 in
      let heaviest_at v =
        let best = ref (-1) in
        Graph.iter_neighbors g v (fun _ e ->
            if !best < 0 || Weights.heavier w e !best then best := e);
        !best
      in
      let r = Owp_core.Lid.run w ~capacity in
      let ok = ref true in
      Graph.iter_edges g (fun eid u v ->
          if heaviest_at u = eid && heaviest_at v = eid then
            if not (BM.mem r.Owp_core.Lid.matching eid) then ok := false);
      !ok)

(* ---------- end-to-end guarantee across the whole stack ---------- *)

let prop_pipeline_end_to_end_guarantee =
  QCheck2.Test.make ~name:"pipeline outcome meets its own guarantee vs exact" ~count:25
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Prng.create seed in
      let g = Gen.gnp rng ~n:8 ~p:0.4 in
      if Graph.edge_count g > 18 then true
      else begin
        let p = Preference.random rng g ~quota:(Preference.uniform_quota g 2) in
        let out =
          Owp_core.Pipeline.run_config
            (Owp_core.Run_config.make ~engine:Owp_core.Run_config.Lid ~seed:7 ())
            p
        in
        let _, s_opt = Owp_matching.Exact.max_satisfaction_bmatching ~max_edges:18 p in
        match out.Owp_core.Pipeline.guarantee with
        | None -> false
        | Some bound ->
            s_opt = 0.0 || out.Owp_core.Pipeline.total_satisfaction >= (bound *. s_opt) -. 1e-9
      end)

(* ---------- GS proposer-optimality (brute force) ---------- *)

let all_stable_matchings prefs left right =
  (* enumerate injective proposer->reviewer assignments over edges and
     keep the stable ones; proposers/reviewers of a small bipartite
     preference system with unit capacities *)
  let g = Preference.graph prefs in
  let capacity = Array.make (Graph.node_count g) 1 in
  let results = ref [] in
  let chosen = ref [] in
  let used = Array.make (Graph.node_count g) false in
  let rec go p =
    if p = left then begin
      let ids = !chosen in
      let m = BM.of_edge_ids g ~capacity ids in
      if Owp_stable.Blocking.is_stable prefs m then results := m :: !results
    end
    else begin
      (* option: leave proposer p unmatched *)
      go (p + 1);
      Graph.iter_neighbors g p (fun v eid ->
          if (not used.(v)) && v >= left && v < left + right then begin
            used.(v) <- true;
            chosen := eid :: !chosen;
            go (p + 1);
            chosen := List.tl !chosen;
            used.(v) <- false
          end)
    end
  in
  go 0;
  !results

let test_gs_proposer_optimal () =
  for seed = 1 to 6 do
    let rng = Prng.create seed in
    let g = Gen.random_bipartite rng ~left:4 ~right:4 ~p:0.8 in
    let prefs = Preference.random rng g ~quota:(Preference.uniform_quota g 1) in
    let gs = Owp_stable.Gale_shapley.run prefs ~proposers:[| 0; 1; 2; 3 |] in
    let stables = all_stable_matchings prefs 4 4 in
    Alcotest.(check bool) "gs is stable" true (Owp_stable.Blocking.is_stable prefs gs);
    (* proposer-optimal: each proposer does at least as well in GS as in
       any other stable matching *)
    List.iter
      (fun other ->
        for p = 0 to 3 do
          match (BM.connections gs p, BM.connections other p) with
          | _, [] -> () (* unmatched elsewhere: GS can't be worse *)
          | [], _ :: _ ->
              (* rural-hospitals: matched sets coincide across stable
                 matchings, so GS cannot leave p unmatched *)
              Alcotest.fail "GS left a proposer unmatched who is matched elsewhere"
          | [ a ], [ b ] ->
              Alcotest.(check bool) "gs at least as good" true
                (Preference.rank prefs p a <= Preference.rank prefs p b)
          | _ -> Alcotest.fail "unit capacities violated"
        done)
      stables
  done

(* ---------- determinism across the stack ---------- *)

let test_lid_deterministic () =
  let _, _, w, capacity = random_instance 21 40 8 3 in
  let a = Owp_core.Lid.run ~seed:5 w ~capacity in
  let b = Owp_core.Lid.run ~seed:5 w ~capacity in
  Alcotest.(check bool) "same matching" true
    (BM.equal a.Owp_core.Lid.matching b.Owp_core.Lid.matching);
  Alcotest.(check int) "same props" a.Owp_core.Lid.prop_count b.Owp_core.Lid.prop_count;
  Alcotest.(check int) "same rejs" a.Owp_core.Lid.rej_count b.Owp_core.Lid.rej_count;
  Alcotest.(check (float 1e-12)) "same virtual time" a.Owp_core.Lid.completion_time
    b.Owp_core.Lid.completion_time

let test_on_lock_trace_consistent () =
  let _, _, w, capacity = random_instance 22 30 6 2 in
  let locks = ref [] in
  let r =
    Owp_core.Lid.run ~seed:6
      ~on_lock:(fun t i v -> locks := (t, i, v) :: !locks)
      w ~capacity
  in
  (* each matched edge produces exactly two lock events (one per side) *)
  Alcotest.(check int) "two events per edge" (2 * BM.size r.Owp_core.Lid.matching)
    (List.length !locks);
  List.iter
    (fun (t, i, v) ->
      Alcotest.(check bool) "time within run" true
        (t >= 0.0 && t <= r.Owp_core.Lid.completion_time +. 1e-9);
      Alcotest.(check bool) "locked pair is matched" true
        (List.mem v (BM.connections r.Owp_core.Lid.matching i)))
    !locks

(* ---------- dynamic LID vs centralized churn agree on feasibility ---- *)

let test_dynamic_matches_active_subgraph_maximality () =
  let _, p, w, _ = random_instance 23 30 6 2 in
  let active = Array.init 30 (fun i -> i mod 5 <> 0) in
  let r = Owp_core.Lid_dynamic.run ~prefs:p ~initially_active:active ~events:[] () in
  let m = r.Owp_core.Lid_dynamic.final_matching in
  (* no free active edge: maximal within the active subgraph *)
  let g = Preference.graph p in
  Graph.iter_edges g (fun eid u v ->
      if
        active.(u) && active.(v)
        && (not (BM.mem m eid))
        && BM.residual m u > 0
        && BM.residual m v > 0
      then
        Alcotest.failf "free active edge %d-%d left unmatched (w=%.4f)" u v
          (Weights.weight w eid))

let suite =
  [
    Alcotest.test_case "lid torus full quota" `Quick test_lid_torus_full_quota;
    Alcotest.test_case "lid star hub quota" `Quick test_lid_star_hub_quota;
    Alcotest.test_case "lid complete b1 = greedy" `Quick test_lid_complete_b1_equals_greedy;
    QCheck_alcotest.to_alcotest prop_mutually_heaviest_always_locked;
    QCheck_alcotest.to_alcotest prop_pipeline_end_to_end_guarantee;
    Alcotest.test_case "GS proposer-optimal (brute force)" `Quick test_gs_proposer_optimal;
    Alcotest.test_case "lid deterministic" `Quick test_lid_deterministic;
    Alcotest.test_case "on_lock trace consistent" `Quick test_on_lock_trace_consistent;
    Alcotest.test_case "dynamic maximal on active subgraph" `Quick
      test_dynamic_matches_active_subgraph_maximality;
  ]
