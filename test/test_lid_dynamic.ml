(* Seeded property tests for the dynamic LID variant (§7 future work):
   after any churn trace the final matching must be capacity-feasible
   inside the surviving active subgraph, maximal on it, quiescent per
   event burst, and retain most of the satisfaction of a from-scratch
   static run on the same survivors.  Equality with the static edge set
   is deliberately NOT asserted — the dynamic variant trades the
   locally-heaviest property for responsiveness (see lid_dynamic.mli);
   the retention floor below is calibrated empirically across the
   seeded traces, not derived. *)

module Dyn = Owp_core.Lid_dynamic
module BM = Owp_matching.Bmatching
module Prng = Owp_util.Prng

let instance seed n avg_deg quota =
  let rng = Prng.create seed in
  let g = Gen.gnm rng ~n ~m:(n * avg_deg / 2) in
  Preference.random rng g ~quota:(Preference.uniform_quota g quota)

(* a consistent churn trace (no double joins/leaves) plus the final
   active set it leaves behind *)
let churn_trace seed prefs =
  let g = Preference.graph prefs in
  let n = Graph.node_count g in
  let rng = Prng.create (0xD11 + seed) in
  let initially_active = Array.init n (fun _ -> Prng.bernoulli rng 0.8) in
  let events =
    List.map
      (function Owp_overlay.Churn.Join v -> Dyn.Join v | Owp_overlay.Churn.Leave v -> Dyn.Leave v)
      (Owp_overlay.Churn.random_events rng ~universe:g ~initially_active ~steps:25)
  in
  let active = Array.copy initially_active in
  List.iter
    (function Dyn.Join v -> active.(v) <- true | Dyn.Leave v -> active.(v) <- false)
    events;
  (initially_active, events, active)

(* from-scratch static reference on the survivors: inactive nodes get
   capacity 0, exactly the masking E16 uses *)
let static_reference prefs active =
  let g = Preference.graph prefs in
  let n = Graph.node_count g in
  let w = Weights.of_preference prefs in
  let capacity =
    Array.init n (fun v -> if active.(v) then Preference.quota prefs v else 0)
  in
  let m = Owp_core.Lic.run w ~capacity in
  let sat = ref 0.0 in
  for v = 0 to n - 1 do
    if active.(v) then
      sat := !sat +. Preference.satisfaction prefs v (BM.connections m v)
  done;
  !sat

let satisfaction_of prefs active m =
  let sat = ref 0.0 in
  Array.iteri
    (fun v a -> if a then sat := !sat +. Preference.satisfaction prefs v (BM.connections m v))
    active;
  !sat

let prop_churn_invariants =
  QCheck2.Test.make ~name:"dynamic LID: feasible, maximal, quiescent under churn"
    ~count:25
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let prefs = instance seed 40 6 2 in
      let initially_active, events, active = churn_trace seed prefs in
      let r = Dyn.run ~prefs ~initially_active ~events () in
      let m = r.Dyn.final_matching in
      let g = Preference.graph prefs in
      let ok = ref r.Dyn.quiescent in
      (* capacity-feasible, and no locked link touches a departed peer *)
      Graph.iter_edges g (fun eid u v ->
          if BM.mem m eid && not (active.(u) && active.(v)) then ok := false);
      for v = 0 to Graph.node_count g - 1 do
        if List.length (BM.connections m v) > Preference.quota prefs v then ok := false
      done;
      (* maximal on the surviving subgraph *)
      Graph.iter_edges g (fun eid u v ->
          if
            active.(u) && active.(v)
            && (not (BM.mem m eid))
            && BM.residual m u > 0
            && BM.residual m v > 0
          then ok := false);
      !ok)

let prop_churn_retention =
  (* calibrated across the seeded traces below: the dynamic matching has
     always kept well above 80% of the from-scratch satisfaction; the
     floor is set at 0.70 to leave noise margin, not to flatter a
     regression *)
  QCheck2.Test.make ~name:"dynamic LID retains calibrated satisfaction vs from-scratch"
    ~count:25
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let prefs = instance seed 40 6 2 in
      let initially_active, events, active = churn_trace seed prefs in
      let r = Dyn.run ~prefs ~initially_active ~events () in
      let dyn = satisfaction_of prefs active r.Dyn.final_matching in
      let reference = static_reference prefs active in
      Float.equal reference 0.0 || dyn /. reference >= 0.70)

let test_empty_trace_matches_bootstrap () =
  let prefs = instance 7 30 6 2 in
  let all = Array.make 30 true in
  let r = Dyn.run ~prefs ~initially_active:all ~events:[] () in
  Alcotest.(check bool) "quiescent" true r.Dyn.quiescent;
  Alcotest.(check (list string)) "no steps without events" []
    (List.map (fun _ -> "step") r.Dyn.steps);
  Alcotest.(check bool) "bootstrap produced links" true (BM.size r.Dyn.final_matching > 0)

let test_deterministic () =
  let prefs = instance 8 40 6 2 in
  let initially_active, events, _ = churn_trace 8 prefs in
  let a = Dyn.run ~seed:11 ~prefs ~initially_active ~events () in
  let b = Dyn.run ~seed:11 ~prefs ~initially_active ~events () in
  Alcotest.(check bool) "same final matching" true
    (BM.equal a.Dyn.final_matching b.Dyn.final_matching);
  Alcotest.(check int) "same message count" a.Dyn.total_messages b.Dyn.total_messages

let suite =
  [
    QCheck_alcotest.to_alcotest prop_churn_invariants;
    QCheck_alcotest.to_alcotest prop_churn_retention;
    Alcotest.test_case "empty trace bootstraps" `Quick test_empty_trace_matches_bootstrap;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
  ]
