module Heap = Owp_util.Heap
module Prng = Owp_util.Prng

module IntHeap = Heap.Make (Int)

let test_empty () =
  let h = IntHeap.create () in
  Alcotest.(check bool) "empty" true (IntHeap.is_empty h);
  Alcotest.(check int) "length" 0 (IntHeap.length h);
  Alcotest.(check (option int)) "pop empty" None (IntHeap.pop_min_opt h)

let test_min_raises () =
  let h = IntHeap.create () in
  Alcotest.check_raises "min_elt" (Invalid_argument "Heap.min_elt: empty heap") (fun () ->
      ignore (IntHeap.min_elt h));
  Alcotest.check_raises "pop_min" (Invalid_argument "Heap.pop_min: empty heap") (fun () ->
      ignore (IntHeap.pop_min h))

let test_peek () =
  let h = IntHeap.create () in
  Alcotest.(check (option int)) "peek empty" None (IntHeap.peek_min_opt h);
  IntHeap.add h 4;
  IntHeap.add h 2;
  Alcotest.(check (option int)) "peek min" (Some 2) (IntHeap.peek_min_opt h);
  Alcotest.(check int) "peek does not remove" 2 (IntHeap.length h);
  ignore (IntHeap.pop_min h);
  Alcotest.(check (option int)) "peek next" (Some 4) (IntHeap.peek_min_opt h)

let test_sorted_drain () =
  let h = IntHeap.of_array [| 5; 3; 8; 1; 9; 2; 7 |] in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 5; 7; 8; 9 ] (IntHeap.to_sorted_list h)

let test_duplicates () =
  let h = IntHeap.of_array [| 4; 4; 4; 1; 1 |] in
  Alcotest.(check (list int)) "dups kept" [ 1; 1; 4; 4; 4 ] (IntHeap.to_sorted_list h)

let test_interleaved () =
  let h = IntHeap.create () in
  IntHeap.add h 5;
  IntHeap.add h 1;
  Alcotest.(check int) "min" 1 (IntHeap.pop_min h);
  IntHeap.add h 0;
  IntHeap.add h 9;
  Alcotest.(check int) "min2" 0 (IntHeap.pop_min h);
  Alcotest.(check int) "min3" 5 (IntHeap.pop_min h);
  Alcotest.(check int) "min4" 9 (IntHeap.pop_min h);
  Alcotest.(check bool) "drained" true (IntHeap.is_empty h)

let prop_heap_sorts =
  QCheck2.Test.make ~name:"heap drain equals sort" ~count:200
    QCheck2.Gen.(array_size (int_range 0 200) int)
    (fun a ->
      let h = IntHeap.of_array a in
      let drained = IntHeap.to_sorted_list h in
      let expected = List.sort compare (Array.to_list a) in
      drained = expected)

let test_keyed_basic () =
  let h = Heap.Keyed.create 10 in
  Heap.Keyed.insert h 3 5.0;
  Heap.Keyed.insert h 7 1.0;
  Heap.Keyed.insert h 1 3.0;
  Alcotest.(check bool) "mem" true (Heap.Keyed.mem h 7);
  Alcotest.(check int) "len" 3 (Heap.Keyed.length h);
  let k, p = Heap.Keyed.pop_min h in
  Alcotest.(check int) "min key" 7 k;
  Alcotest.(check (float 1e-9)) "min prio" 1.0 p;
  Alcotest.(check bool) "gone" false (Heap.Keyed.mem h 7)

let test_keyed_decrease () =
  let h = Heap.Keyed.create 10 in
  Heap.Keyed.insert h 0 10.0;
  Heap.Keyed.insert h 1 20.0;
  Heap.Keyed.decrease_key h 1 5.0;
  let k, _ = Heap.Keyed.pop_min h in
  Alcotest.(check int) "decreased wins" 1 k;
  (* decrease with a larger value is a no-op *)
  Heap.Keyed.decrease_key h 0 99.0;
  Alcotest.(check (float 1e-9)) "unchanged" 10.0 (Heap.Keyed.priority h 0)

let test_keyed_insert_or_decrease () =
  let h = Heap.Keyed.create 4 in
  Heap.Keyed.insert_or_decrease h 2 8.0;
  Heap.Keyed.insert_or_decrease h 2 3.0;
  Heap.Keyed.insert_or_decrease h 2 9.0;
  Alcotest.(check (float 1e-9)) "min kept" 3.0 (Heap.Keyed.priority h 2)

let test_keyed_remove () =
  let h = Heap.Keyed.create 8 in
  List.iter (fun (k, p) -> Heap.Keyed.insert h k p) [ (0, 4.0); (1, 2.0); (2, 6.0) ];
  Heap.Keyed.remove h 1;
  Alcotest.(check bool) "removed" false (Heap.Keyed.mem h 1);
  let k, _ = Heap.Keyed.pop_min h in
  Alcotest.(check int) "next min" 0 k;
  Heap.Keyed.remove h 5 (* absent: no-op *)

let test_keyed_errors () =
  let h = Heap.Keyed.create 4 in
  Heap.Keyed.insert h 0 1.0;
  Alcotest.check_raises "duplicate insert"
    (Invalid_argument "Heap.Keyed.insert: key already present") (fun () ->
      Heap.Keyed.insert h 0 2.0);
  Alcotest.check_raises "priority absent" Not_found (fun () ->
      ignore (Heap.Keyed.priority h 3))

let prop_keyed_pops_sorted =
  QCheck2.Test.make ~name:"keyed heap pops ascending priorities" ~count:200
    QCheck2.Gen.(list_size (int_range 0 50) (pair (int_range 0 63) (float_range 0.0 100.0)))
    (fun pairs ->
      let h = Heap.Keyed.create 64 in
      List.iter (fun (k, p) -> Heap.Keyed.insert_or_decrease h k p) pairs;
      let rec drain last =
        if Heap.Keyed.is_empty h then true
        else begin
          let _, p = Heap.Keyed.pop_min h in
          p >= last && drain p
        end
      in
      drain neg_infinity)

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "min raises" `Quick test_min_raises;
    Alcotest.test_case "peek_min_opt" `Quick test_peek;
    Alcotest.test_case "sorted drain" `Quick test_sorted_drain;
    Alcotest.test_case "duplicates" `Quick test_duplicates;
    Alcotest.test_case "interleaved ops" `Quick test_interleaved;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    Alcotest.test_case "keyed basic" `Quick test_keyed_basic;
    Alcotest.test_case "keyed decrease" `Quick test_keyed_decrease;
    Alcotest.test_case "keyed insert_or_decrease" `Quick test_keyed_insert_or_decrease;
    Alcotest.test_case "keyed remove" `Quick test_keyed_remove;
    Alcotest.test_case "keyed errors" `Quick test_keyed_errors;
    QCheck_alcotest.to_alcotest prop_keyed_pops_sorted;
  ]
