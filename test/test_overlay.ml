module Overlay = Owp_overlay.Overlay
module Quality = Owp_overlay.Quality
module Pipeline = Owp_core.Pipeline
module BM = Owp_matching.Bmatching
module Prng = Owp_util.Prng

let test_homogeneous_build () =
  let g = Gen.gnm (Prng.create 1) ~n:80 ~m:300 in
  let cfg = Overlay.homogeneous ~quota:3 (Metric.uniform ~seed:4) in
  let out = Overlay.build ~seed:2 g cfg in
  Alcotest.(check bool) "some satisfaction" true (out.Pipeline.total_satisfaction > 0.0);
  Alcotest.(check bool) "mean in [0,1]" true
    (out.Pipeline.mean_satisfaction >= 0.0 && out.Pipeline.mean_satisfaction <= 1.0);
  Alcotest.(check bool) "guarantee present for LID" true (out.Pipeline.guarantee <> None);
  Alcotest.(check bool) "messages counted" true (out.Pipeline.messages <> None)

let test_heterogeneous_metrics () =
  let g = Gen.gnm (Prng.create 5) ~n:60 ~m:200 in
  let metrics =
    [| Metric.uniform ~seed:1; Metric.bandwidth ~seed:2; Metric.transaction_history ~seed:3 |]
  in
  let cfg = Overlay.heterogeneous ~quota:2 metrics ~pick:(fun i -> i mod 3) in
  let prefs = Overlay.preferences g cfg in
  (* node 0 uses uniform(seed 1), node 1 uses bandwidth(seed 2): their
     rankings must match the respective metrics *)
  let check_node i metric =
    let list = Preference.list prefs i in
    for k = 0 to Array.length list - 2 do
      let a = Metric.score metric i list.(k) and b = Metric.score metric i list.(k + 1) in
      Alcotest.(check bool) "descending by own metric" true (a >= b)
    done
  in
  check_node 0 metrics.(0);
  check_node 1 metrics.(1);
  check_node 2 metrics.(2)

let test_heterogeneous_pick_validation () =
  let g = Gen.ring 6 in
  let cfg = Overlay.heterogeneous ~quota:1 [| Metric.uniform ~seed:1 |] ~pick:(fun _ -> 7) in
  Alcotest.(check bool) "bad pick raises" true
    (try
       ignore (Overlay.preferences g cfg);
       false
     with Invalid_argument _ -> true)

let test_build_with_algorithms () =
  let g = Gen.gnm (Prng.create 9) ~n:50 ~m:150 in
  let cfg = Overlay.homogeneous ~quota:2 (Metric.uniform ~seed:6) in
  let lid = Overlay.build_with ~engine:Pipeline.Lid g cfg in
  let lic = Overlay.build_with ~engine:Pipeline.Lic g cfg in
  let greedy = Overlay.build_with ~engine:Pipeline.Greedy g cfg in
  Alcotest.(check bool) "lid = lic matching" true
    (BM.equal lid.Pipeline.matching lic.Pipeline.matching);
  Alcotest.(check (float 1e-9)) "lid = greedy weight here" greedy.Pipeline.total_weight
    lic.Pipeline.total_weight;
  let dyn = Overlay.build_with ~engine:Pipeline.Dynamics g cfg in
  Alcotest.(check bool) "dynamics produced a matching" true (BM.size dyn.Pipeline.matching > 0)

let test_quality_bounds () =
  let g = Gen.gnm (Prng.create 11) ~n:70 ~m:250 in
  let prefs = Preference.random (Prng.create 12) g ~quota:(Preference.uniform_quota g 3) in
  let out =
    Pipeline.run_config
      (Owp_core.Run_config.make ~engine:Owp_core.Run_config.Lic ~seed:7 ())
      prefs
  in
  let q = Quality.measure prefs out.Pipeline.matching in
  Alcotest.(check bool) "mean in range" true (q.Quality.mean >= 0.0 && q.Quality.mean <= 1.0);
  Alcotest.(check bool) "jain in range" true (q.Quality.jain > 0.0 && q.Quality.jain <= 1.0 +. 1e-9);
  Alcotest.(check bool) "fractions in range" true
    (q.Quality.saturated_fraction >= 0.0 && q.Quality.saturated_fraction <= 1.0
    && q.Quality.fully_satisfied_fraction >= 0.0
    && q.Quality.fully_satisfied_fraction <= 1.0);
  Alcotest.(check bool) "ordering" true (q.Quality.p05 <= q.Quality.median)

let test_quality_perfect () =
  (* two nodes matched to each other: both fully satisfied *)
  let g = Graph.of_edge_list 2 [ (0, 1) ] in
  let prefs = Preference.random (Prng.create 1) g ~quota:(Preference.uniform_quota g 1) in
  let m = Owp_matching.Bmatching.of_edge_ids g ~capacity:[| 1; 1 |] [ 0 ] in
  let q = Quality.measure prefs m in
  Alcotest.(check (float 1e-9)) "mean 1" 1.0 q.Quality.mean;
  Alcotest.(check (float 1e-9)) "jain 1" 1.0 q.Quality.jain;
  Alcotest.(check (float 1e-9)) "all saturated" 1.0 q.Quality.saturated_fraction

let test_quality_empty_graph () =
  let g = Graph.of_edge_list 3 [] in
  let prefs = Preference.random (Prng.create 1) g ~quota:(Preference.uniform_quota g 1) in
  let m = Owp_matching.Bmatching.empty g ~capacity:[| 0; 0; 0 |] in
  let q = Quality.measure prefs m in
  Alcotest.(check int) "no rated nodes" 0 q.Quality.nodes;
  Alcotest.(check (float 1e-9)) "zero total" 0.0 q.Quality.total

let suite =
  [
    Alcotest.test_case "homogeneous build" `Quick test_homogeneous_build;
    Alcotest.test_case "heterogeneous metrics" `Quick test_heterogeneous_metrics;
    Alcotest.test_case "pick validation" `Quick test_heterogeneous_pick_validation;
    Alcotest.test_case "build with algorithms" `Quick test_build_with_algorithms;
    Alcotest.test_case "quality bounds" `Quick test_quality_bounds;
    Alcotest.test_case "quality perfect" `Quick test_quality_perfect;
    Alcotest.test_case "quality empty graph" `Quick test_quality_empty_graph;
  ]
