(* Tests for the owp_check invariant framework and the exhaustive LID
   interleaving explorer. *)

module Checker = Owp_check.Checker
module Violation = Owp_check.Violation
module Explore = Owp_check.Explore
module Lid = Owp_core.Lid
module Lic = Owp_core.Lic
module Pipeline = Owp_core.Pipeline
module BM = Owp_matching.Bmatching
module Prng = Owp_util.Prng

let random_instance seed n avg_deg quota =
  let rng = Prng.create seed in
  let m = n * avg_deg / 2 in
  let g = Gen.gnm rng ~n ~m in
  let p = Preference.random rng g ~quota:(Preference.uniform_quota g quota) in
  let w = Weights.of_preference p in
  let capacity = Array.init n (Preference.quota p) in
  (g, p, w, capacity)

let flagged report name =
  List.exists (fun v -> v.Violation.checker = name) (Checker.violations report)

let flagged_subject report name subject =
  List.exists
    (fun v ->
      v.Violation.checker = name && Violation.subject_compare v.Violation.subject subject = 0)
    (Checker.violations report)

(* ------------------------------------------------------------------ *)
(* clean outputs pass every invariant                                   *)
(* ------------------------------------------------------------------ *)

let prop_lic_passes_all =
  QCheck2.Test.make ~name:"LIC output passes the full checker registry" ~count:25
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let _, p, w, capacity = random_instance seed 16 5 2 in
      let m = Lic.run w ~capacity in
      Checker.ok (Checker.run (Checker.of_matching ~prefs:p w m)))

let prop_lid_passes_all =
  QCheck2.Test.make ~name:"LID output passes the full checker registry" ~count:25
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let _, p, w, capacity = random_instance seed 14 4 2 in
      let r = Lid.run ~seed ~check:true w ~capacity in
      Checker.ok (Checker.run (Checker.of_matching ~prefs:p w r.Lid.matching)))

let prop_small_exact_certificates =
  (* instances small enough that theorem2/theorem3 are measured against
     the exact optimum, not just the structural conditions *)
  QCheck2.Test.make ~name:"measured Theorem 2/3 certificates hold on small instances"
    ~count:25
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let g, p, w, capacity = random_instance seed 6 4 2 in
      assert (Graph.edge_count g <= Checker.exact_satisfaction_limit);
      let m = Lic.run w ~capacity in
      Checker.ok
        (Checker.run ~only:[ "theorem2"; "theorem3" ]
           (Checker.of_matching ~prefs:p w m)))

let test_pipeline_check_modes () =
  let _, p, _, _ = random_instance 42 12 4 2 in
  let run ?(check = false) engine prefs =
    Pipeline.run_config (Owp_core.Run_config.make ~engine ~seed:3 ~check ()) prefs
  in
  List.iter
    (fun engine ->
      let out = run ~check:true engine p in
      match out.Pipeline.check_report with
      | None -> Alcotest.fail "check_report missing with ~check:true"
      | Some r ->
          if not (Checker.ok r) then
            Alcotest.failf "pipeline check failed:@.%s" (Checker.report_to_string r))
    [ Pipeline.Lid; Pipeline.Lic; Pipeline.Greedy; Pipeline.Dynamics ];
  let out = run Pipeline.Lic p in
  Alcotest.(check bool) "no report without ~check" true (out.Pipeline.check_report = None)

(* ------------------------------------------------------------------ *)
(* mutated matchings are flagged with the right diagnostic              *)
(* ------------------------------------------------------------------ *)

let uniform_weights g = Weights.of_array g (Array.make (Graph.edge_count g) 1.0)

let test_quota_overflow_flagged () =
  let g = Gen.path 3 in
  let w = uniform_weights g in
  let inst = Checker.instance w ~capacity:[| 1; 1; 1 |] ~edges:[ 0; 1 ] in
  let r = Checker.run ~only:[ "edge-validity"; "quota" ] inst in
  Alcotest.(check bool) "edge ids themselves valid" false (flagged r "edge-validity");
  Alcotest.(check bool) "middle node over quota" true
    (flagged_subject r "quota" (Violation.Node 1));
  Alcotest.(check bool) "endpoints within quota" false
    (flagged_subject r "quota" (Violation.Node 0)
    || flagged_subject r "quota" (Violation.Node 2))

let test_duplicate_edge_flagged () =
  let g = Graph.of_edge_list 2 [ (0, 1) ] in
  let w = uniform_weights g in
  let inst = Checker.instance w ~capacity:[| 2; 2 |] ~edges:[ 0; 0 ] in
  let r = Checker.run ~only:[ "edge-validity" ] inst in
  Alcotest.(check bool) "duplicate flagged" true
    (flagged_subject r "edge-validity" (Violation.Edge (0, 1)))

let test_out_of_range_edge_flagged () =
  let g = Graph.of_edge_list 2 [ (0, 1) ] in
  let w = uniform_weights g in
  let inst = Checker.instance w ~capacity:[| 2; 2 |] ~edges:[ 7 ] in
  let r = Checker.run ~only:[ "edge-validity" ] inst in
  Alcotest.(check bool) "out-of-range id flagged" true (flagged r "edge-validity")

let test_asymmetric_weight_flagged () =
  let _, p, w, capacity = random_instance 7 8 3 2 in
  let g = Preference.graph p in
  (* corrupt one entry of the eq. 9 weight table *)
  let raw = Array.init (Graph.edge_count g) (Weights.weight w) in
  raw.(0) <- raw.(0) +. 0.5;
  let w_bad = Weights.of_array g raw in
  let u, v = Graph.edge_endpoints g 0 in
  let inst = Checker.instance ~prefs:p w_bad ~capacity ~edges:[] in
  let r = Checker.run ~only:[ "weight-symmetry" ] inst in
  Alcotest.(check bool) "corrupted edge flagged" true
    (flagged_subject r "weight-symmetry" (Violation.Edge (u, v)));
  (* and the uncorrupted table passes *)
  let r_ok =
    Checker.run ~only:[ "weight-symmetry" ]
      (Checker.instance ~prefs:p w ~capacity ~edges:[])
  in
  Alcotest.(check bool) "pristine table passes" true (Checker.ok r_ok)

let test_injected_blocking_pair_flagged () =
  let _, p, w, capacity = random_instance 11 10 4 2 in
  let m = Lic.run w ~capacity in
  match BM.edge_ids m with
  | [] -> Alcotest.fail "LIC selected nothing"
  | victim :: _ ->
      let g = Preference.graph p in
      let u, v = Graph.edge_endpoints g victim in
      let edges = List.filter (fun e -> e <> victim) (BM.edge_ids m) in
      let inst = Checker.instance ~prefs:p w ~capacity ~edges in
      let r = Checker.run ~only:[ "blocking-pair"; "maximality" ] inst in
      Alcotest.(check bool) "removed edge is a blocking pair" true
        (flagged_subject r "blocking-pair" (Violation.Edge (u, v)));
      Alcotest.(check bool) "matching no longer maximal" true
        (flagged_subject r "maximality" (Violation.Edge (u, v)))

let test_satisfaction_range_flagged () =
  (* a duplicated connection inflates eq. 1 beyond 1 (or overflows the
     quota, making it undefined) — both must surface as violations *)
  let g = Gen.star 3 in
  let rng = Prng.create 5 in
  let p = Preference.random rng g ~quota:(Preference.uniform_quota g 2) in
  let w = Weights.of_preference p in
  let inst =
    Checker.instance ~prefs:p w
      ~capacity:(Array.init 3 (Preference.quota p))
      ~edges:[ 0; 0 ]
  in
  let r = Checker.run ~only:[ "satisfaction-range" ] inst in
  Alcotest.(check bool) "inflated satisfaction flagged" true
    (flagged r "satisfaction-range")

let test_empty_matching_fails_theorem2 () =
  let _, p, w, capacity = random_instance 13 6 4 2 in
  let inst = Checker.instance ~prefs:p w ~capacity ~edges:[] in
  let r = Checker.run ~only:[ "theorem2" ] inst in
  Alcotest.(check bool) "empty matching misses the measured 1/2 bound" true
    (flagged r "theorem2")

let test_unknown_checker_rejected () =
  let _, _, w, capacity = random_instance 17 6 3 1 in
  let inst = Checker.instance w ~capacity ~edges:[] in
  Alcotest.check_raises "unknown name"
    (Invalid_argument "Checker.run: unknown checker \"no-such-check\"") (fun () ->
      ignore (Checker.run ~only:[ "no-such-check" ] inst))

let test_assert_ok_raises () =
  let g = Gen.path 3 in
  let w = uniform_weights g in
  let inst = Checker.instance w ~capacity:[| 1; 1; 1 |] ~edges:[ 0; 1 ] in
  match Checker.assert_ok ~only:[ "quota" ] inst with
  | () -> Alcotest.fail "expected Check_failed"
  | exception Checker.Check_failed r ->
      Alcotest.(check int) "one violation carried" 1 (Checker.violation_count r)

(* ------------------------------------------------------------------ *)
(* exhaustive interleaving exploration (Lemmas 5 and 6)                 *)
(* ------------------------------------------------------------------ *)

let explore_instances () =
  let fixed =
    [
      ("P3/b1", Gen.path 3, 1);
      ("P4/b2", Gen.path 4, 2);
      ("C4/b1", Gen.ring 4, 1);
      ("C5/b2", Gen.ring 5, 2);
      ("star5/b1", Gen.star 5, 1);
      ("star5/b2", Gen.star 5, 2);
      ("K4/b2", Gen.complete 4, 2);
      ("K5/b1", Gen.complete 5, 1);
      ("K5/b2", Gen.complete 5, 2);
    ]
  in
  let random =
    List.concat_map
      (fun seed ->
        List.concat_map
          (fun n ->
            List.map
              (fun b ->
                let rng = Prng.create (seed + (100 * n) + (1000 * b)) in
                let m = min (n * (n - 1) / 2) (n + 1) in
                (Printf.sprintf "gnm(%d,%d)/b%d/s%d" n m b seed, Gen.gnm rng ~n ~m, b))
              [ 1; 2 ])
          [ 3; 4; 5 ])
      [ 1; 2 ]
  in
  fixed @ random

let test_explorer_verifies_lemma5_and_6 () =
  List.iter
    (fun (label, g, b) ->
      let rng = Prng.create 99 in
      let p = Preference.random rng g ~quota:(Preference.uniform_quota g b) in
      let w = Weights.of_preference p in
      let capacity = Array.init (Graph.node_count g) (Preference.quota p) in
      let verdict = Explore.explore (Lid.model w ~capacity) in
      if not (Explore.ok verdict) then
        Alcotest.failf "%s: explorer found violations:@.%s" label
          (Format.asprintf "%a" Explore.pp_verdict verdict);
      let lic = BM.edge_ids (Lic.run w ~capacity) in
      (match verdict.Explore.observations with
      | [ obs ] ->
          Alcotest.(check (list int))
            (label ^ ": all schedules agree with LIC (Lemma 6)")
            lic obs
      | obs ->
          Alcotest.failf "%s: %d distinct outcomes (Lemma 6 violated)" label
            (List.length obs));
      Alcotest.(check bool)
        (label ^ ": at least one schedule")
        true
        (verdict.Explore.stats.Explore.schedules >= 1);
      Alcotest.(check bool)
        (label ^ ": search complete")
        false verdict.Explore.stats.Explore.truncated)
    (explore_instances ())

(* a deliberately broken protocol: node 0 waits for an acknowledgement
   that node 1 never sends — the explorer must report the deadlock *)
let test_explorer_detects_deadlock () =
  let p =
    {
      Explore.init = (fun () -> (ref false, [ { Explore.src = 0; dst = 1; payload = 0 } ]));
      deliver = (fun _ ~src:_ ~dst:_ _ -> []);
      copy = (fun s -> ref !s);
      fingerprint = (fun s -> if !s then "t" else "f");
      quiesced = (fun s -> !s);
      stragglers = (fun _ -> [ 0 ]);
      observe = (fun _ -> []);
      msg_tag = (fun m -> m);
      give_up = None;
    }
  in
  let verdict = Explore.explore p in
  Alcotest.(check bool) "deadlock reported" true
    (List.exists
       (fun v -> v.Violation.checker = "explore-termination")
       verdict.Explore.violations)

(* a schedule-dependent protocol: the terminal observation is the
   arrival order at node 0 — the explorer must report the divergence *)
let test_explorer_detects_divergence () =
  let p =
    {
      Explore.init =
        (fun () ->
          ( ref [],
            [
              { Explore.src = 1; dst = 0; payload = 1 };
              { Explore.src = 2; dst = 0; payload = 2 };
            ] ));
      deliver =
        (fun s ~src:_ ~dst:_ m ->
          s := m :: !s;
          []);
      copy = (fun s -> ref !s);
      fingerprint = (fun s -> String.concat "," (List.map string_of_int !s));
      quiesced = (fun _ -> true);
      stragglers = (fun _ -> []);
      observe = (fun s -> List.rev !s);
      msg_tag = (fun m -> m);
      give_up = None;
    }
  in
  let verdict = Explore.explore p in
  Alcotest.(check int) "two interleavings" 2 verdict.Explore.stats.Explore.schedules;
  Alcotest.(check int) "two distinct outcomes" 2 (List.length verdict.Explore.observations);
  Alcotest.(check bool) "divergence reported" true
    (List.exists
       (fun v -> v.Violation.checker = "explore-divergence")
       verdict.Explore.violations)

(* ------------------------------------------------------------------ *)
(* LID quiescence diagnostics                                           *)
(* ------------------------------------------------------------------ *)

let test_lid_quiescence_violations () =
  (* fault-free runs: no quiescence violations *)
  let _, _, w, capacity = random_instance 23 15 4 2 in
  let r = Lid.run ~seed:1 w ~capacity in
  Alcotest.(check bool) "clean run terminated" true r.Lid.all_terminated;
  Alcotest.(check int) "no violations" 0 (List.length r.Lid.quiescence);
  (* under heavy message loss, some seed leaves stragglers; when it
     does, the report must name them *)
  let faults = Owp_simnet.Simnet.faults ~drop:0.7 () in
  let saw_failure = ref false in
  for seed = 0 to 20 do
    let _, _, w, capacity = random_instance (100 + seed) 20 6 2 in
    let r = Lid.run ~seed ~faults w ~capacity in
    if not r.Lid.all_terminated then begin
      saw_failure := true;
      Alcotest.(check bool)
        "violations name the stragglers" true
        (List.length r.Lid.quiescence > 0
        && List.for_all
             (fun v ->
               match v.Violation.subject with
               | Violation.Node _ -> v.Violation.checker = "lid-quiescence"
               | _ -> false)
             r.Lid.quiescence)
    end
    else
      Alcotest.(check int)
        "terminated run carries no violations" 0
        (List.length r.Lid.quiescence)
  done;
  Alcotest.(check bool) "fault injection exercised the failure path" true !saw_failure

let suite =
  [
    QCheck_alcotest.to_alcotest prop_lic_passes_all;
    QCheck_alcotest.to_alcotest prop_lid_passes_all;
    QCheck_alcotest.to_alcotest prop_small_exact_certificates;
    Alcotest.test_case "pipeline ~check modes" `Quick test_pipeline_check_modes;
    Alcotest.test_case "quota overflow flagged" `Quick test_quota_overflow_flagged;
    Alcotest.test_case "duplicate edge flagged" `Quick test_duplicate_edge_flagged;
    Alcotest.test_case "out-of-range edge flagged" `Quick test_out_of_range_edge_flagged;
    Alcotest.test_case "asymmetric weight flagged" `Quick test_asymmetric_weight_flagged;
    Alcotest.test_case "injected blocking pair flagged" `Quick
      test_injected_blocking_pair_flagged;
    Alcotest.test_case "satisfaction range flagged" `Quick test_satisfaction_range_flagged;
    Alcotest.test_case "empty matching fails theorem2" `Quick
      test_empty_matching_fails_theorem2;
    Alcotest.test_case "unknown checker rejected" `Quick test_unknown_checker_rejected;
    Alcotest.test_case "assert_ok raises Check_failed" `Quick test_assert_ok_raises;
    Alcotest.test_case "explorer: Lemma 5+6 on all FIFO schedules" `Quick
      test_explorer_verifies_lemma5_and_6;
    Alcotest.test_case "explorer detects deadlock" `Quick test_explorer_detects_deadlock;
    Alcotest.test_case "explorer detects divergence" `Quick
      test_explorer_detects_divergence;
    Alcotest.test_case "LID quiescence diagnostics" `Quick test_lid_quiescence_violations;
  ]
