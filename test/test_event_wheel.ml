(* The calendar queue against the reference binary heap: whatever mix
   of timestamps is thrown at it — same-timestamp runs, sub-bucket
   jitter, far-future outliers, adds interleaved with pops — the wheel
   must reproduce the heap's (at, seq) pop order exactly, because
   Simnet's bit-identical determinism now rests on that order.  The
   deliberately wrong unsafe_lookahead mode must demonstrably break it
   (that wrongness is what the bench gate's --inject lookahead leg
   detects). *)

module Wheel = Owp_util.Event_wheel

module Ref_heap = Owp_util.Heap.Make (struct
  type t = float * int * int

  let compare (a1, s1, _) (a2, s2, _) =
    let c = Float.compare a1 a2 in
    if c <> 0 then c else compare s1 s2
end)

(* drive the same script through both queues; return both pop logs.
   Script entries: [Add at] (seq assigned in script order) or [Pop]. *)
type op = Add of float | Pop

let run_script ?width ?buckets ops =
  let wheel = Wheel.create ?width ?buckets () in
  let heap = Ref_heap.create () in
  let seq = ref 0 in
  let wl = ref [] and hl = ref [] in
  List.iter
    (fun op ->
      match op with
      | Add at ->
          Wheel.add wheel ~at ~seq:!seq !seq;
          Ref_heap.add heap (at, !seq, !seq);
          incr seq
      | Pop ->
          (match Wheel.pop wheel with
          | Some (at, sq, pay) -> wl := (at, sq, pay) :: !wl
          | None -> ());
          (match Ref_heap.pop_min_opt heap with
          | Some e -> hl := e :: !hl
          | None -> ()))
    ops;
  (* drain both *)
  let rec drain () =
    match (Wheel.pop wheel, Ref_heap.pop_min_opt heap) with
    | Some w, Some h ->
        wl := w :: !wl;
        hl := h :: !hl;
        drain ()
    | None, None -> ()
    | Some w, None ->
        wl := w :: !wl;
        drain ()
    | None, Some h ->
        hl := h :: !hl;
        drain ()
  in
  drain ();
  Alcotest.(check int) "wheel drained" 0 (Wheel.size wheel);
  (List.rev !wl, List.rev !hl)

let check_script ?width ?buckets ops =
  let wl, hl = run_script ?width ?buckets ops in
  Alcotest.(check int) "same length" (List.length hl) (List.length wl);
  List.iter2
    (fun (wa, ws, wp) (ha, hs, hp) ->
      if not (Float.equal wa ha && ws = hs && wp = hp) then
        Alcotest.failf "order diverged: wheel (%g,%d,%d) vs heap (%g,%d,%d)" wa ws
          wp ha hs hp)
    wl hl

(* ------------------------------------------------------------------ *)
(* pinned scenarios                                                     *)
(* ------------------------------------------------------------------ *)

let test_batch_then_drain () =
  check_script
    [ Add 3.0; Add 1.0; Add 2.0; Add 1.0; Add 0.5; Add 2.5; Add 1.0 ]

let test_same_timestamp_run () =
  (* seq is the only tie-break: a run of identical timestamps must come
     back in insertion order *)
  check_script (List.init 50 (fun _ -> Add 1.0))

let test_far_future_outliers () =
  check_script
    [
      Add 1.0; Add 1e12; Add 2.0; Pop; Add 1e9; Add 0.5; Pop; Pop; Add 3.0;
      Add 1e12; Pop;
    ]

let test_insert_into_open_window () =
  (* popping at 0.5 opens the epoch-0 window; 0.55 then lands inside it
     (the FIFO-clamp pattern) and must still interleave exactly *)
  check_script ~width:1.0 [ Add 0.5; Add 0.6; Pop; Add 0.55; Add 0.7 ]

let test_past_insert_after_advance () =
  (* an add below the draining epoch (possible under unsafe clocks or
     arbitrary test scripts) must still come back first *)
  check_script ~width:0.5 [ Add 5.0; Pop; Add 1.0; Add 6.0 ]

let test_reuse_after_drain () =
  check_script ~width:0.25
    [ Add 1.0; Pop; Pop; Add 2.0; Add 0.125; Pop; Pop; Add 9.0 ]

let test_empty () =
  let w = Wheel.create () in
  Alcotest.(check int) "empty size" 0 (Wheel.size w);
  Alcotest.(check bool) "no pop" true (Wheel.pop w = None);
  Alcotest.(check bool) "no peek" true (Wheel.peek_key w = None);
  Alcotest.(check bool) "nothing to prepare" false (Wheel.needs_prepare w)

let test_peek_matches_pop () =
  let w = Wheel.create ~width:0.5 () in
  List.iteri (fun i at -> Wheel.add w ~at ~seq:i i) [ 2.0; 0.5; 7.0; 0.5; 3.25 ];
  let rec go () =
    match Wheel.peek_key w with
    | None -> Alcotest.(check bool) "drained" true (Wheel.pop w = None)
    | Some (pa, ps) -> (
        match Wheel.pop w with
        | Some (at, seq, _) ->
            Alcotest.(check (float 0.0)) "peek at" pa at;
            Alcotest.(check int) "peek seq" ps seq;
            go ()
        | None -> Alcotest.fail "peek promised an event")
  in
  go ()

let test_prepare_is_transparent () =
  (* prepare opens the window early; the pop order must be unaffected *)
  let mk () =
    let w = Wheel.create ~width:1.0 () in
    List.iteri (fun i at -> Wheel.add w ~at ~seq:i i) [ 4.0; 1.5; 1.25; 8.0 ];
    w
  in
  let a = mk () and b = mk () in
  Alcotest.(check bool) "needs prepare" true (Wheel.needs_prepare b);
  Wheel.prepare b;
  Alcotest.(check bool) "prepared" false (Wheel.needs_prepare b);
  for _ = 1 to 4 do
    Alcotest.(check bool) "same pops" true (Wheel.pop a = Wheel.pop b)
  done

let test_rejections () =
  Alcotest.check_raises "zero width"
    (Invalid_argument "Event_wheel.create: width must be positive") (fun () ->
      ignore (Wheel.create ~width:0.0 ()));
  Alcotest.check_raises "one bucket"
    (Invalid_argument "Event_wheel.create: need at least 2 buckets") (fun () ->
      ignore (Wheel.create ~buckets:1 ()));
  let w = Wheel.create () in
  Alcotest.check_raises "negative time"
    (Invalid_argument "Event_wheel.add: time must be finite and non-negative")
    (fun () -> Wheel.add w ~at:(-1.0) ~seq:0 0)

let fst3 (a, _, _) = a
let snd3 (_, b, _) = b
let thd3 (_, _, c) = c

let test_unsafe_lookahead_breaks_order () =
  (* same script, safe vs unsafe: an insertion into the open window is
     served late in unsafe mode — this wrongness must be observable,
     or the gate's lookahead-inject self-test could never trip *)
  let script w =
    List.iteri (fun i at -> Wheel.add w ~at ~seq:i i) [ 0.5; 0.6 ];
    let first = Wheel.pop w in
    Wheel.add w ~at:0.55 ~seq:2 2;
    let second = Wheel.pop w in
    let third = Wheel.pop w in
    (first, second, third)
  in
  let safe = script (Wheel.create ~width:1.0 ()) in
  let unsafe = script (Wheel.create ~width:1.0 ~unsafe_lookahead:true ()) in
  Alcotest.(check bool) "first pop agrees" true (fst3 safe = fst3 unsafe);
  Alcotest.(check bool) "safe interleaves the window insert" true
    (snd3 safe = Some (0.55, 2, 2));
  Alcotest.(check bool) "unsafe serves the stale run first" true
    (snd3 unsafe = Some (0.6, 1, 1));
  Alcotest.(check bool) "unsafe catches up afterwards" true
    (thd3 unsafe = Some (0.55, 2, 2))

let test_footprint_bounded () =
  (* waves of traffic through one wheel: the backing store must track
     the live population, not the total events ever enqueued *)
  let w = Wheel.create ~width:0.5 () in
  let seq = ref 0 in
  let wave base =
    for i = 0 to 999 do
      Wheel.add w ~at:(base +. (0.01 *. float_of_int i)) ~seq:!seq !seq;
      incr seq
    done;
    for _ = 1 to 1000 do
      ignore (Wheel.pop w)
    done
  in
  (* warm-up waves let the wheel settle its bucket count and per-bucket
     capacities; after that the footprint must stop growing entirely,
     even though every wave lands in fresh epochs (fresh residues) *)
  for k = 0 to 24 do
    wave (float_of_int k *. 100.0)
  done;
  let warm = Wheel.footprint_words w in
  for k = 25 to 50 do
    wave (float_of_int k *. 100.0)
  done;
  let after_many = Wheel.footprint_words w in
  Alcotest.(check bool)
    (Printf.sprintf "footprint stable under churn (%d -> %d words)" warm
       after_many)
    true
    (after_many <= warm)

(* ------------------------------------------------------------------ *)
(* the QCheck property: random scripts, three timestamp regimes         *)
(* ------------------------------------------------------------------ *)

let gen_script =
  let open QCheck2.Gen in
  let gen_at =
    frequency
      [
        (* clustered: many equal timestamps, exercises seq tie-breaks *)
        (4, int_range 0 40 >|= fun k -> float_of_int k /. 8.0);
        (* smooth: generic positions inside and across buckets *)
        (4, float_bound_exclusive 50.0);
        (* far-future outliers straight into the overflow heap *)
        (1, float_bound_exclusive 5.0 >|= fun f -> (f +. 1.0) *. 1e10);
      ]
  in
  let gen_op = frequency [ (3, gen_at >|= fun at -> Add at); (2, pure Pop) ] in
  list_size (int_range 1 400) gen_op

let print_script ops =
  String.concat "; "
    (List.map
       (function Add at -> Printf.sprintf "Add %h" at | Pop -> "Pop")
       ops)

let prop_order_equivalence =
  QCheck2.Test.make ~count:300 ~print:print_script
    ~name:"wheel pops in the reference heap's exact (at, seq) order" gen_script
    (fun ops ->
      let wl, hl = run_script ~width:0.5 ~buckets:4 ops in
      wl = hl)

let prop_order_equivalence_wide =
  QCheck2.Test.make ~count:200 ~print:print_script
    ~name:"order equivalence across bucket widths" gen_script (fun ops ->
      List.for_all
        (fun width ->
          let wl, hl = run_script ~width ops in
          wl = hl)
        [ 0.03125; 1.0; 64.0 ])

let prop_pop_into_agrees_with_pop =
  QCheck2.Test.make ~count:200 ~print:print_script
    ~name:"allocation-free pop_into replays pop exactly" gen_script (fun ops ->
      let a = Wheel.create ~width:0.5 ~buckets:4 () in
      let b = Wheel.create ~width:0.5 ~buckets:4 () in
      let seq = ref 0 in
      let ok = ref true in
      let pop_both () =
        (match (Wheel.pop a, Wheel.pop_into b) with
        | Some (at, sq, pay), true ->
            if
              not
                (Float.equal at (Wheel.last_at b)
                && sq = Wheel.last_seq b
                && pay = Wheel.last_pay b)
            then ok := false
        | None, false -> ()
        | _ -> ok := false);
        (* the batching probe must agree with the boxed peek *)
        match Wheel.peek_key a with
        | Some (at, _) ->
            if not (Wheel.next_at_equals b at) then ok := false;
            if Wheel.next_at_equals b (at +. 1e6) then ok := false
        | None -> if Wheel.next_at_equals b 0.0 then ok := false
      in
      List.iter
        (fun op ->
          match op with
          | Add at ->
              Wheel.add a ~at ~seq:!seq !seq;
              Wheel.add b ~at ~seq:!seq !seq;
              incr seq
          | Pop -> pop_both ())
        ops;
      while Wheel.size a > 0 do
        pop_both ()
      done;
      !ok && Wheel.size b = 0)

let suite =
  [
    Alcotest.test_case "batch then drain" `Quick test_batch_then_drain;
    Alcotest.test_case "same-timestamp run" `Quick test_same_timestamp_run;
    Alcotest.test_case "far-future outliers" `Quick test_far_future_outliers;
    Alcotest.test_case "insert into the open window" `Quick
      test_insert_into_open_window;
    Alcotest.test_case "past insert after advance" `Quick
      test_past_insert_after_advance;
    Alcotest.test_case "reuse after drain" `Quick test_reuse_after_drain;
    Alcotest.test_case "empty wheel" `Quick test_empty;
    Alcotest.test_case "peek matches pop" `Quick test_peek_matches_pop;
    Alcotest.test_case "prepare is transparent" `Quick test_prepare_is_transparent;
    Alcotest.test_case "rejections" `Quick test_rejections;
    Alcotest.test_case "unsafe_lookahead breaks the order" `Quick
      test_unsafe_lookahead_breaks_order;
    Alcotest.test_case "footprint bounded under churn" `Quick
      test_footprint_bounded;
    QCheck_alcotest.to_alcotest prop_order_equivalence;
    QCheck_alcotest.to_alcotest prop_order_equivalence_wide;
    QCheck_alcotest.to_alcotest prop_pop_into_agrees_with_pop;
  ]
