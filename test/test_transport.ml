module Sim = Owp_simnet.Simnet
module Tr = Owp_simnet.Transport

(* [mk ?config ?fifo ?faults nodes] builds a net + transport pair that
   records deliveries per directed link, in arrival order *)
let mk ?config ?(fifo = true) ?(faults = Sim.no_faults) ?(seed = 3) nodes =
  let net = Sim.create ~seed ~fifo ~faults ~nodes ~delay:(Sim.Uniform (0.5, 1.5)) () in
  let got : (int * int, int list ref) Hashtbl.t = Hashtbl.create 8 in
  let dead = ref [] in
  let tr =
    Tr.create ?config net
      ~on_deliver:(fun ~src ~dst m ->
        let cell =
          match Hashtbl.find_opt got (src, dst) with
          | Some c -> c
          | None ->
              let c = ref [] in
              Hashtbl.replace got (src, dst) c;
              c
        in
        cell := m :: !cell)
      ~on_peer_dead:(fun ~node ~peer -> dead := (node, peer) :: !dead)
  in
  let link src dst =
    match Hashtbl.find_opt got (src, dst) with
    | Some c -> List.rev !c
    | None -> []
  in
  (net, tr, link, dead)

let test_clean_channel () =
  let net, tr, link, dead = mk 2 in
  for i = 1 to 20 do
    Tr.send tr ~src:0 ~dst:1 i
  done;
  Sim.run net;
  Alcotest.(check (list int)) "in order, once" (List.init 20 (fun i -> i + 1)) (link 0 1);
  Alcotest.(check int) "no retransmissions" 0 (Tr.retransmissions tr);
  Alcotest.(check int) "one data frame per payload" 20 (Tr.data_sent tr);
  Alcotest.(check bool) "acks flowed" true (Tr.acks_sent tr > 0);
  Alcotest.(check (list (pair int int))) "nobody dead" [] !dead

let test_masks_loss () =
  let faults = Sim.faults ~drop:0.5 () in
  let net, tr, link, dead = mk ~faults 2 in
  for i = 1 to 50 do
    Tr.send tr ~src:0 ~dst:1 i
  done;
  Sim.run net;
  Alcotest.(check (list int)) "all 50 despite 50% loss" (List.init 50 (fun i -> i + 1))
    (link 0 1);
  Alcotest.(check bool) "loss actually happened" true (Sim.messages_dropped net > 0);
  Alcotest.(check bool) "recovered by retransmission" true (Tr.retransmissions tr > 0);
  Alcotest.(check (list (pair int int))) "nobody dead" [] !dead

let test_masks_duplication () =
  let faults = Sim.faults ~duplicate:1.0 () in
  let net, tr, link, _ = mk ~faults 2 in
  for i = 1 to 30 do
    Tr.send tr ~src:0 ~dst:1 i
  done;
  Sim.run net;
  Alcotest.(check (list int)) "exactly once" (List.init 30 (fun i -> i + 1)) (link 0 1);
  Alcotest.(check bool) "dedup did work" true (Tr.duplicates_suppressed tr > 0)

let test_masks_reordering () =
  let faults = Sim.faults ~reorder:0.4 () in
  let net, tr, link, _ = mk ~fifo:false ~faults 2 in
  for i = 1 to 40 do
    Tr.send tr ~src:0 ~dst:1 i
  done;
  Sim.run net;
  Alcotest.(check (list int)) "reassembled in order" (List.init 40 (fun i -> i + 1))
    (link 0 1)

let test_give_up () =
  (* a fully severed link: the sender must not retry forever *)
  let config = { Tr.default_config with rto_initial = 1.0; max_retries = 3 } in
  let faults = Sim.faults ~drop:1.0 () in
  let net, tr, link, dead = mk ~config ~faults 2 in
  Tr.send tr ~src:0 ~dst:1 99;
  Sim.run net;
  Alcotest.(check (list int)) "nothing arrives" [] (link 0 1);
  Alcotest.(check (list (pair int int))) "peer declared dead once" [ (0, 1) ] !dead;
  Alcotest.(check bool) "queryable" true (Tr.peer_dead tr ~node:0 ~peer:1);
  Alcotest.(check int) "counted" 1 (Tr.peers_declared_dead tr);
  (* sends to a dead peer are discarded, not retried *)
  let sent = Tr.data_sent tr in
  Tr.send tr ~src:0 ~dst:1 100;
  Sim.run net;
  Alcotest.(check int) "discarded" sent (Tr.data_sent tr)

let test_crash_restart_epochs () =
  let config = { Tr.default_config with rto_initial = 1.0; max_retries = 4 } in
  let net = Sim.create ~seed:1 ~nodes:2 ~delay:Sim.Unit () in
  let got = ref [] and dead = ref [] in
  let tr_box = ref None in
  let tr =
    Tr.create ~config net
      ~on_deliver:(fun ~src ~dst:_ m -> got := (src, m) :: !got)
      ~on_peer_dead:(fun ~node ~peer -> dead := (node, peer) :: !dead)
  in
  tr_box := Some tr;
  Tr.send tr ~src:0 ~dst:1 1;
  (* delivered at t=1 *)
  Sim.schedule net ~delay:2.0 (fun () -> Sim.crash net 1);
  Sim.schedule net ~delay:3.5 (fun () -> Tr.send tr ~src:0 ~dst:1 2);
  (* lost at t=4.5: node 1 is down *)
  Sim.schedule net ~delay:6.0 (fun () ->
      Sim.restart net 1;
      Tr.restart_node tr 1);
  (* the restarted incarnation opens a fresh stream: its higher epoch
     resets the peer's receive state *)
  Sim.schedule net ~delay:7.0 (fun () -> Tr.send tr ~src:1 ~dst:0 3);
  Sim.run net;
  let from0 = List.rev_map snd (List.filter (fun (s, _) -> s = 0) !got) in
  let from1 = List.rev_map snd (List.filter (fun (s, _) -> s = 1) !got) in
  Alcotest.(check (list int)) "pre-crash delivery only" [ 1 ] from0;
  Alcotest.(check (list int)) "post-restart stream works" [ 3 ] from1;
  (* payload 2 can never be delivered (the amnesiac receiver restarts
     its sequence space): the sender gives up rather than spin *)
  Alcotest.(check (list (pair int int))) "stuck link declared dead" [ (0, 1) ] !dead

let prop_exactly_once_in_order =
  (* the tentpole property: under any tested mix of loss, duplication
     and reordering, every directed link delivers exactly the sent
     sequence, in order *)
  QCheck2.Test.make ~name:"transport: exactly-once in-order under faults" ~count:60
    QCheck2.Gen.(
      tup4 (int_range 0 10_000) (int_range 0 2) (int_range 0 1) bool)
    (fun (seed, di, dupi, fifo) ->
      let drop = [| 0.0; 0.2; 0.4 |].(di) in
      let dup = [| 0.0; 0.3 |].(dupi) in
      let faults = Sim.faults ~drop ~duplicate:dup ~reorder:0.2 () in
      let net, tr, link, dead = mk ~seed ~fifo ~faults 3 in
      let links = [ (0, 1); (1, 0); (1, 2); (2, 0) ] in
      for i = 1 to 15 do
        List.iter (fun (s, d) -> Tr.send tr ~src:s ~dst:d i) links
      done;
      Sim.run net;
      !dead = []
      && List.for_all
           (fun (s, d) -> link s d = List.init 15 (fun i -> i + 1))
           links)

let test_seed_sweep () =
  (* deterministic fuzz: 120 seeds of random drop x duplicate x reorder
     rates.  Survivable channels (drop < 1) must deliver exactly the
     sent sequence in order on every link with nobody declared dead;
     severed channels (drop = 1) must deliver nothing and account for
     the give-up: each directed link with traffic declares its peer dead
     exactly once *)
  for seed = 1 to 120 do
    let rng = Owp_util.Prng.create (0xF00D + seed) in
    let severed = seed mod 6 = 0 in
    let drop = if severed then 1.0 else Owp_util.Prng.float rng 0.5 in
    let dup = Owp_util.Prng.float rng 0.8 in
    let reorder = Owp_util.Prng.float rng 0.5 in
    let fifo = seed mod 2 = 0 in
    let faults = Sim.faults ~drop ~duplicate:dup ~reorder () in
    (* severed links give up fast; survivable ones get the default
       (patient) retry budget so a 50% channel never falsely dies *)
    let config =
      if severed then { Tr.default_config with rto_initial = 1.0; max_retries = 4 }
      else Tr.default_config
    in
    let net, tr, link, dead = mk ~config ~seed ~fifo ~faults 3 in
    let links = [ (0, 1); (1, 2); (2, 0) ] in
    let payloads = 1 + (seed mod 12) in
    for i = 1 to payloads do
      List.iter (fun (s, d) -> Tr.send tr ~src:s ~dst:d i) links
    done;
    Sim.run net;
    let label fmt =
      Printf.sprintf "seed %d (drop %.2f dup %.2f reorder %.2f): %s" seed drop
        dup reorder fmt
    in
    if severed then begin
      List.iter
        (fun (s, d) ->
          Alcotest.(check (list int)) (label "nothing arrives") [] (link s d))
        links;
      Alcotest.(check int)
        (label "every link gave up exactly once")
        (List.length links)
        (Tr.peers_declared_dead tr);
      List.iter
        (fun (s, d) ->
          Alcotest.(check bool) (label "dead queryable") true
            (Tr.peer_dead tr ~node:s ~peer:d))
        links
    end
    else begin
      let expect = List.init payloads (fun i -> i + 1) in
      List.iter
        (fun (s, d) ->
          Alcotest.(check (list int)) (label "exactly once, in order") expect
            (link s d))
        links;
      Alcotest.(check (list (pair int int))) (label "nobody dead") [] !dead
    end
  done

let suite =
  [
    Alcotest.test_case "clean channel" `Quick test_clean_channel;
    Alcotest.test_case "masks loss" `Quick test_masks_loss;
    Alcotest.test_case "masks duplication" `Quick test_masks_duplication;
    Alcotest.test_case "masks reordering" `Quick test_masks_reordering;
    Alcotest.test_case "bounded retries give up" `Quick test_give_up;
    Alcotest.test_case "crash/restart epochs" `Quick test_crash_restart_epochs;
    Alcotest.test_case "120-seed fault sweep" `Quick test_seed_sweep;
    QCheck_alcotest.to_alcotest prop_exactly_once_in_order;
  ]
