(* Self-stabilization: the heal-aware stack under scheduled weather,
   the Stabilize certificate, and the chaos fuzzer/shrinker.

   The claims under test, in order: a partition-heal-quiesce pipeline
   run carries a CERTIFIED stabilization certificate; the detector
   never fires a false give-up across a partition longer than its own
   patience (silence the weather explains is suppressed, the reliable
   transport suspects and then resumes the cut links, and the final
   matching is the clean LIC edge set); an empty schedule is
   bit-identical to no schedule at all; fail-stop deaths flip the
   certificate into its informational-convergence mode; and the chaos
   fuzzer finds a failing schedule for an unmasked datagram stack and
   shrinks it to a tiny true reproducer. *)

module Stack = Owp_core.Stack
module Lic = Owp_core.Lic
module Pipeline = Owp_core.Pipeline
module RC = Owp_core.Run_config
module Stabilize = Owp_check.Stabilize
module Schedule = Owp_simnet.Schedule
module Transport = Owp_simnet.Transport
module Chaos = Owp_bench.Chaos
module BM = Owp_matching.Bmatching
module Prng = Owp_util.Prng

let random_instance seed n avg_deg quota =
  let rng = Prng.create seed in
  let m = n * avg_deg / 2 in
  let g = Gen.gnm rng ~n ~m in
  let p = Preference.random rng g ~quota:(Preference.uniform_quota g quota) in
  let w = Weights.of_preference p in
  let capacity = Array.init n (Preference.quota p) in
  (g, p, w, capacity)

let parse s =
  match Schedule.of_string s with
  | Ok t -> t
  | Error e -> Alcotest.failf "%s: %s" s e

let certificate out =
  match out.Pipeline.stabilize with
  | Some c -> c
  | None -> Alcotest.fail "scheduled run must carry a stabilization certificate"

(* ------------------------------------------------------------------ *)
(* partition, heal, quiesce, certify                                   *)
(* ------------------------------------------------------------------ *)

let test_partition_heal_certifies () =
  let rng = Prng.create 11 in
  let g = Gen.gnm rng ~n:48 ~m:144 in
  let prefs = Preference.random rng g ~quota:(Preference.uniform_quota g 2) in
  let sched = parse "part:0.1.2.3.4.5.6.7.8.9.10.11@2-6" in
  let out =
    Pipeline.run_config
      (RC.make ~engine:RC.Lid_reliable ~seed:11 ~schedule:sched ())
      prefs
  in
  let c = certificate out in
  Alcotest.(check bool) "certified" true (Stabilize.certified c);
  Alcotest.(check bool) "quiesced" true c.Stabilize.quiesced;
  Alcotest.(check bool) "converged exactly (transient weather)" true
    c.Stabilize.converged;
  Alcotest.(check bool) "no deaths in a partition schedule" false
    c.Stabilize.deaths;
  Alcotest.(check (float 1e-9)) "heal instant" 6.0 c.Stabilize.t_heal;
  Alcotest.(check bool) "recovery clock ran" true (c.Stabilize.recovery_time >= 0.0);
  (match out.Pipeline.detail with
  | Pipeline.Stack r ->
      Alcotest.(check bool) "the partition actually cut messages" true
        (Stack.counter r ~layer:"schedule" "cut" > 0)
  | Pipeline.Plain -> Alcotest.fail "stack detail expected")

(* ------------------------------------------------------------------ *)
(* the detector across a partition longer than its patience            *)
(* ------------------------------------------------------------------ *)

let test_no_false_giveups_across_partition () =
  let _, prefs, w, capacity = random_instance 5 32 6 2 in
  (* partition [1, 9) splits off a third of the nodes; patience 2 would
     fire three times over inside it, and the fast transport config
     exhausts its whole retry ladder (0.5 * 3 rounds) many times over —
     every one of those give-ups would be false *)
  let sched =
    [
      {
        Schedule.from_ = 1.0;
        until = 9.0;
        what = Schedule.Partition [ List.init 11 (fun i -> i) ];
      };
    ]
  in
  let transport =
    { Transport.default_config with rto_initial = 0.5; rto_backoff = 1.0; max_retries = 2 }
  in
  let r =
    Stack.run ~seed:5 ~reliable:true ~transport ~patience:2.0 ~schedule:sched
      ~prefs w ~capacity
  in
  Alcotest.(check bool) "terminated after heal" true r.Stack.all_terminated;
  Alcotest.(check int) "no synthetic rejects: every give-up was held" 0
    r.Stack.synthetic_rejects;
  Alcotest.(check bool) "patience fires were suppressed" true
    (Stack.counter r ~layer:"detector" "suppressed-give-ups" > 0);
  Alcotest.(check bool) "transport suspected cut links" true
    (Stack.counter r ~layer:"transport" "suspected" > 0);
  Alcotest.(check bool) "suspected links resumed after heal" true
    (Stack.counter r ~layer:"transport" "resumed" > 0);
  (* with no give-up ever fired, the healed run is a delayed clean run:
     the final matching is exactly LIC's *)
  Alcotest.(check bool) "matching equals the clean LIC edge set" true
    (BM.equal r.Stack.matching (Lic.run w ~capacity))

let test_zero_episode_schedule_bit_identical () =
  let _, prefs, w, capacity = random_instance 9 24 6 2 in
  let plain = Stack.run ~seed:9 ~reliable:true ~prefs w ~capacity in
  let scheduled =
    Stack.run ~seed:9 ~reliable:true ~schedule:Schedule.empty ~prefs w ~capacity
  in
  Alcotest.(check bool) "same matching" true
    (BM.equal plain.Stack.matching scheduled.Stack.matching);
  Alcotest.(check int) "same prop count" plain.Stack.prop_count
    scheduled.Stack.prop_count;
  Alcotest.(check int) "same rej count" plain.Stack.rej_count scheduled.Stack.rej_count;
  Alcotest.(check (float 0.0)) "same completion time" plain.Stack.completion_time
    scheduled.Stack.completion_time;
  Alcotest.(check bool) "no schedule row" true
    (not (List.exists (fun l -> l.Stack.layer = "schedule") scheduled.Stack.layers))

(* ------------------------------------------------------------------ *)
(* fail-stop deaths: convergence goes informational                    *)
(* ------------------------------------------------------------------ *)

let test_down_episode_deaths_mode () =
  let rng = Prng.create 13 in
  let g = Gen.gnm rng ~n:40 ~m:120 in
  let prefs = Preference.random rng g ~quota:(Preference.uniform_quota g 2) in
  let out =
    Pipeline.run_config
      (RC.make ~engine:RC.Lid_reliable ~seed:13 ~schedule:(parse "down:2.7@1-6") ())
      prefs
  in
  let c = certificate out in
  Alcotest.(check bool) "deaths flagged" true c.Stabilize.deaths;
  Alcotest.(check bool) "quiesced" true c.Stabilize.quiesced;
  Alcotest.(check bool) "feasible" true c.Stabilize.feasible;
  (* certified rests on quiescence + feasibility; convergence is
     measured but not demanded (LID locks are irrevocable, so a node
     half-locked toward a peer that died cannot reach the survivor
     reference) *)
  Alcotest.(check bool) "certified despite deaths" true (Stabilize.certified c)

(* ------------------------------------------------------------------ *)
(* certificate unit semantics                                          *)
(* ------------------------------------------------------------------ *)

let test_certificate_diff_and_clamp () =
  let _, prefs, w, capacity = random_instance 3 12 4 2 in
  let inst ~edges ~reference ~t_heal ~quiesce_at =
    Stabilize.instance ~prefs w ~capacity ~edges ~reference ~t_heal ~quiesce_at
      ~quiesced:true
  in
  let c = Stabilize.check (inst ~edges:[ 1; 2 ] ~reference:[ 0; 1 ] ~t_heal:4.0 ~quiesce_at:10.0) in
  Alcotest.(check (list int)) "missing = reference \\ served" [ 0 ] c.Stabilize.missing;
  Alcotest.(check (list int)) "extra = served \\ reference" [ 2 ] c.Stabilize.extra;
  Alcotest.(check bool) "not converged" false c.Stabilize.converged;
  Alcotest.(check bool) "not certified (no deaths)" false (Stabilize.certified c);
  Alcotest.(check (float 1e-9)) "recovery time" 6.0 c.Stabilize.recovery_time;
  let early = Stabilize.check (inst ~edges:[] ~reference:[] ~t_heal:8.0 ~quiesce_at:3.0) in
  Alcotest.(check (float 1e-9)) "recovery clamps at zero" 0.0
    early.Stabilize.recovery_time;
  Alcotest.(check bool) "empty sets converge" true early.Stabilize.converged;
  Alcotest.check_raises "negative t_heal rejected"
    (Invalid_argument "Stabilize.instance: negative t_heal") (fun () ->
      ignore (inst ~edges:[] ~reference:[] ~t_heal:(-1.0) ~quiesce_at:0.0))

let test_certificate_deaths_gating () =
  let _, prefs, w, capacity = random_instance 3 12 4 2 in
  let diverged deaths =
    Stabilize.check
      (Stabilize.instance ~prefs ~deaths w ~capacity ~edges:[ 0 ] ~reference:[ 1 ]
         ~t_heal:1.0 ~quiesce_at:2.0 ~quiesced:true)
  in
  Alcotest.(check bool) "divergence voids a transient-weather certificate" false
    (Stabilize.certified (diverged false));
  Alcotest.(check bool) "deaths downgrade convergence to informational" true
    (Stabilize.certified (diverged true))

(* ------------------------------------------------------------------ *)
(* the chaos fuzzer and shrinker                                       *)
(* ------------------------------------------------------------------ *)

let chaos_instance () =
  let rng = Prng.create 7 in
  let g = Gen.gnm rng ~n:40 ~m:120 in
  Preference.random rng g ~quota:(Preference.uniform_quota g 2)

let test_chaos_reliable_passes () =
  let prefs = chaos_instance () in
  let cfg = RC.make ~engine:RC.Lid_reliable ~seed:7 () in
  let report = Chaos.fuzz ~trials:4 ~seed:7 cfg prefs in
  Alcotest.(check int) "all trials ran" 4 report.Chaos.trials_run;
  Alcotest.(check bool) "heal-aware composition certifies" true
    (report.Chaos.failure = None)

let test_chaos_finds_and_shrinks () =
  let prefs = chaos_instance () in
  (* a bare datagram stack has nothing masking the weather: the fuzzer
     must find a failing schedule quickly and shrink it to a minimal
     true reproducer *)
  let cfg = RC.make ~engine:RC.Lid ~seed:7 () in
  let report = Chaos.fuzz ~trials:10 ~seed:7 cfg prefs in
  match report.Chaos.failure with
  | None -> Alcotest.fail "datagram stack survived 10 weather trials"
  | Some (_trial, original, shrunk) ->
      Alcotest.(check bool) "original schedule fails" false
        (Chaos.run_one cfg prefs original).Chaos.passed;
      Alcotest.(check bool) "shrunk reproducer still fails" false
        (Chaos.run_one cfg prefs shrunk).Chaos.passed;
      Alcotest.(check bool) "shrunk to at most 3 episodes" true
        (List.length shrunk <= 3);
      Alcotest.(check bool) "shrunk no larger than the original" true
        (List.length shrunk <= List.length original);
      (* the reproducer round-trips through the --schedule spec *)
      Alcotest.(check bool) "reproducer spec round-trips" true
        (match Schedule.of_string (Schedule.to_string shrunk) with
        | Ok s -> Schedule.equal s shrunk
        | Error _ -> false)

let suite =
  [
    Alcotest.test_case "partition-heal run certifies" `Quick
      test_partition_heal_certifies;
    Alcotest.test_case "no false give-ups across a partition" `Quick
      test_no_false_giveups_across_partition;
    Alcotest.test_case "zero-episode schedule is bit-identical" `Quick
      test_zero_episode_schedule_bit_identical;
    Alcotest.test_case "down episodes certify informationally" `Quick
      test_down_episode_deaths_mode;
    Alcotest.test_case "certificate diff and recovery clamp" `Quick
      test_certificate_diff_and_clamp;
    Alcotest.test_case "deaths gate the certified verdict" `Quick
      test_certificate_deaths_gating;
    Alcotest.test_case "chaos: reliable composition passes" `Quick
      test_chaos_reliable_passes;
    Alcotest.test_case "chaos: datagram stack fails and shrinks" `Quick
      test_chaos_finds_and_shrinks;
  ]
