module W = Owp_bench.Workloads
module E = Owp_bench.Experiments

let test_make_families () =
  List.iter
    (fun family ->
      let inst = W.make ~seed:1 ~family ~pref_model:W.Random_prefs ~n:64 ~quota:2 in
      Alcotest.(check int) "node count" 64 (Graph.node_count inst.W.graph);
      Alcotest.(check bool) "edges exist" true (Graph.edge_count inst.W.graph > 0);
      Alcotest.(check int) "weights arity" (Graph.edge_count inst.W.graph)
        (Array.length (Array.init (Graph.edge_count inst.W.graph) (Weights.weight inst.W.weights))))
    W.standard_families

let test_make_pref_models () =
  List.iter
    (fun model ->
      let inst = W.make ~seed:2 ~family:(W.Gnp 0.1) ~pref_model:model ~n:50 ~quota:3 in
      (* every preference list is a permutation of the neighbourhood *)
      for v = 0 to 49 do
        let l = Array.copy (Preference.list inst.W.prefs v) in
        Array.sort compare l;
        Alcotest.(check (array int)) "permutation" (Graph.neighbor_nodes inst.W.graph v) l
      done)
    [ W.Random_prefs; W.Latency_prefs; W.Interest_prefs 4; W.Bandwidth_prefs; W.Transaction_prefs ]

let test_labels_unique () =
  let a = W.make ~seed:1 ~family:(W.Gnp 0.1) ~pref_model:W.Random_prefs ~n:30 ~quota:2 in
  let b = W.make ~seed:2 ~family:(W.Gnp 0.1) ~pref_model:W.Random_prefs ~n:30 ~quota:2 in
  Alcotest.(check bool) "labels differ by seed" true (a.W.label <> b.W.label)

let test_small_instances () =
  let insts = W.small_instances ~seeds:[ 1; 2 ] ~n:8 ~quota:2 in
  Alcotest.(check int) "3 families x 3 models x 2 seeds" 18 (List.length insts);
  List.iter
    (fun i -> Alcotest.(check int) "small n" 8 (Graph.node_count i.W.graph))
    insts

let test_registry () =
  Alcotest.(check int) "twenty-nine experiments" 29 (List.length E.all);
  Alcotest.(check bool) "find e3" true (E.find "e3" <> None);
  Alcotest.(check bool) "find e27" true (E.find "e27" <> None);
  Alcotest.(check bool) "find e28" true (E.find "e28" <> None);
  Alcotest.(check bool) "find E10" true (E.find "E10" <> None);
  Alcotest.(check bool) "find e16" true (E.find "e16" <> None);
  Alcotest.(check bool) "unknown" true (E.find "e99" = None)

let test_experiment_tables_nonempty () =
  (* E1 and E2 are cheap enough to execute inside the unit suite *)
  List.iter
    (fun id ->
      match E.find id with
      | None -> Alcotest.fail ("missing " ^ id)
      | Some e ->
          let tables = e.Owp_bench.Exp_common.run ~quick:true in
          Alcotest.(check bool) (id ^ " has tables") true (List.length tables > 0);
          List.iter
            (fun t ->
              Alcotest.(check bool) "renders" true
                (String.length (Owp_util.Tablefmt.render t) > 0))
            tables)
    [ "e1"; "e2" ]

let suite =
  [
    Alcotest.test_case "make families" `Quick test_make_families;
    Alcotest.test_case "make pref models" `Quick test_make_pref_models;
    Alcotest.test_case "labels unique" `Quick test_labels_unique;
    Alcotest.test_case "small instances" `Quick test_small_instances;
    Alcotest.test_case "experiment registry" `Quick test_registry;
    Alcotest.test_case "experiment tables nonempty" `Quick test_experiment_tables_nonempty;
  ]
