module Pool = Owp_util.Pool
module Prng = Owp_util.Prng

(* a trial that would expose shared-state or ordering bugs: each task
   derives everything from its own index, like the sweep runners do *)
let trial i =
  let rng = Prng.create (1000 + i) in
  let a = Prng.int rng 1_000_000 in
  let b = Prng.float rng 1.0 in
  (i, a, b)

let test_positional_order () =
  let input = Array.init 50 (fun i -> i) in
  let out = Pool.map ~jobs:4 trial input in
  Array.iteri
    (fun i (j, _, _) -> Alcotest.(check int) "slot i holds task i" i j)
    out

let test_jobs_bit_identical () =
  let input = Array.init 64 (fun i -> i) in
  let serial = Pool.map ~jobs:1 trial input in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d identical to jobs=1" jobs)
        true
        (Pool.map ~jobs trial input = serial))
    [ 2; 3; 8 ]

let test_map_list () =
  let input = List.init 20 (fun i -> i) in
  Alcotest.(check bool) "map_list = sequential List.map" true
    (Pool.map_list ~jobs:3 trial input = List.map trial input)

let test_run_thunks () =
  let thunks = Array.init 10 (fun i () -> i * i) in
  Alcotest.(check (array int)) "run evaluates in slot order"
    (Array.init 10 (fun i -> i * i))
    (Pool.run ~jobs:4 thunks)

let test_empty_and_singleton () =
  Alcotest.(check (array int)) "empty input" [||] (Pool.map ~jobs:4 (fun x -> x) [||]);
  Alcotest.(check (array int)) "single task" [| 7 |] (Pool.map ~jobs:4 (fun x -> x + 1) [| 6 |])

let test_exception_propagates () =
  Alcotest.check_raises "task failure re-raised in caller" (Failure "task 3")
    (fun () ->
      ignore
        (Pool.map ~jobs:4
           (fun i -> if i = 3 then failwith "task 3" else i)
           (Array.init 16 (fun i -> i))))

let test_bad_jobs_rejected () =
  Alcotest.check_raises "jobs=0 rejected" (Invalid_argument "Pool.map: jobs must be >= 1")
    (fun () -> ignore (Pool.map ~jobs:0 (fun x -> x) [| 1 |]))

let test_default_jobs_positive () =
  Alcotest.(check bool) "default_jobs >= 1" true (Pool.default_jobs () >= 1)

let suite =
  [
    Alcotest.test_case "positional order" `Quick test_positional_order;
    Alcotest.test_case "jobs bit-identical" `Quick test_jobs_bit_identical;
    Alcotest.test_case "map_list" `Quick test_map_list;
    Alcotest.test_case "run thunks" `Quick test_run_thunks;
    Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "bad jobs rejected" `Quick test_bad_jobs_rejected;
    Alcotest.test_case "default jobs positive" `Quick test_default_jobs_positive;
  ]
