(* The serving layer: arrival-spec language and the sustained-traffic
   session.

   The arrivals spec is CLI input like the faults/schedule specs, so it
   gets the same treatment: parse examples, validation rejections, and
   a QCheck round-trip property over random valid specs.  The session
   itself is checked for the properties the CLI advertises: identical
   reports across repeated runs at the same seed, the backlog bound
   honoured under a burst (excess requests shed, never queued), request
   accounting that adds up, and the full serve x deadline x guard
   composition producing a healthy report. *)

module RC = Owp_core.Run_config
module Pipeline = Owp_core.Pipeline
module SR = Owp_core.Serve_report
module Serve = Owp_serve.Serve
module Arrivals = Owp_serve.Arrivals

let parse s =
  match Arrivals.of_string s with
  | Ok t -> t
  | Error e -> Alcotest.failf "%s: %s" s e

let prefs ?(n = 30) ?(seed = 11) () =
  let rng = Owp_util.Prng.create seed in
  let g = Gen.gnm rng ~n ~m:(n * 3) in
  Preference.random rng g ~quota:(Preference.uniform_quota g 3)

let lid_cfg ?(seed = 11) () =
  match RC.validate (RC.make ~engine:RC.Lid ~seed ()) with
  | Ok c -> c
  | Error m -> Alcotest.fail m

let report ?handicap ~arrivals cfg prefs =
  match Serve.run ?handicap ~arrivals cfg prefs with
  | Ok out -> Option.get out.Pipeline.serve
  | Error m -> Alcotest.failf "serve: %s" m

(* ------------------------------------------------------------------ *)
(* the spec language                                                    *)
(* ------------------------------------------------------------------ *)

let test_parse_examples () =
  let t = parse "4" in
  Alcotest.(check (float 1e-9)) "bare rate" 4.0 t.Arrivals.rate;
  Alcotest.(check bool) "bare rate keeps defaults" true
    (Arrivals.equal t (Arrivals.make ~rate:4.0 ()));
  let t = parse "2.5:query=3" in
  Alcotest.(check (float 1e-9)) "rate" 2.5 t.Arrivals.rate;
  Alcotest.(check (float 1e-9)) "query weight" 3.0 t.Arrivals.query;
  let t = parse "8:join=1,leave=0.5,repref=0,horizon=300,queue=32,oracle=10,warmup=0.5" in
  Alcotest.(check (float 1e-9)) "leave" 0.5 t.Arrivals.leave;
  Alcotest.(check (float 1e-9)) "repref" 0.0 t.Arrivals.repref;
  Alcotest.(check (float 1e-9)) "horizon" 300.0 t.Arrivals.horizon;
  Alcotest.(check int) "queue" 32 t.Arrivals.queue;
  Alcotest.(check (float 1e-9)) "oracle" 10.0 t.Arrivals.oracle;
  Alcotest.(check (float 1e-9)) "warmup" 0.5 t.Arrivals.warmup

let test_parse_rejections () =
  List.iter
    (fun s ->
      Alcotest.(check bool) s true (Result.is_error (Arrivals.of_string s)))
    [
      "";                                   (* empty *)
      "fast";                               (* rate not a float *)
      "0";                                  (* rate must be positive *)
      "-1";                                 (* negative rate *)
      "1:queue=0";                          (* backlog bound below 1 *)
      "1:warmup=1";                         (* warmup must stay below 1 *)
      "1:join=-1";                          (* negative mix weight *)
      "1:join=0,leave=0,repref=0,query=0";  (* mix sums to zero *)
      "1:burst=2";                          (* unknown field *)
      "1:horizon=0";                        (* horizon must be positive *)
    ]

(* %.12g round-trips exactly on quarters, like the schedule spec's 64ths *)
let grid lo hi = QCheck2.Gen.(int_range lo hi >|= fun k -> float_of_int k /. 4.0)

let gen_arrivals =
  let open QCheck2.Gen in
  map2
    (fun ((rate, (join, leave)), (repref, query)) ((horizon, queue), (oracle, warmup)) ->
      Arrivals.make ~rate ~join ~leave ~repref ~query ~horizon ~queue ~oracle
        ~warmup ())
    (pair (pair (grid 1 64) (pair (grid 0 16) (grid 0 16))) (pair (grid 0 16) (grid 0 16)))
    (pair
       (pair (grid 4 1600) (int_range 1 128))
       (pair (grid 1 256) (int_range 0 3 >|= fun k -> float_of_int k /. 4.0)))

let prop_round_trip =
  QCheck2.Test.make ~name:"arrivals to_string re-parses to an equal spec" ~count:300
    gen_arrivals (fun a ->
      match Arrivals.validate a with
      | Error _ -> QCheck2.assume_fail ()
      | Ok a -> (
          match Arrivals.of_string (Arrivals.to_string a) with
          | Ok a' -> Arrivals.equal a a'
          | Error e -> QCheck2.Test.fail_reportf "re-parse failed: %s" e))

(* ------------------------------------------------------------------ *)
(* the request stream                                                   *)
(* ------------------------------------------------------------------ *)

let test_generate_requests () =
  let arrivals = Arrivals.make ~rate:2.0 ~horizon:50.0 () in
  let reqs = Serve.generate_requests arrivals ~seed:3 ~n:20 in
  Alcotest.(check bool) "non-empty" true (reqs <> []);
  let sorted = ref true and in_range = ref true and prev = ref 0.0 in
  List.iter
    (fun r ->
      if r.Serve.at < !prev then sorted := false;
      prev := r.Serve.at;
      if r.Serve.at <= 0.0 || r.Serve.at > 50.0 then in_range := false;
      if r.Serve.target < 0 || r.Serve.target >= 20 then in_range := false)
    reqs;
  Alcotest.(check bool) "arrival times sorted" true !sorted;
  Alcotest.(check bool) "times in (0, horizon], targets in [0, n)" true !in_range;
  Alcotest.(check bool) "seeded stream replays" true
    (Serve.generate_requests arrivals ~seed:3 ~n:20 = reqs);
  Alcotest.(check bool) "seed changes the stream" true
    (Serve.generate_requests arrivals ~seed:4 ~n:20 <> reqs)

(* ------------------------------------------------------------------ *)
(* the session                                                          *)
(* ------------------------------------------------------------------ *)

let test_deterministic_replay () =
  let prefs = prefs () in
  let arrivals = parse "0.5:horizon=60" in
  let a = report ~arrivals (lid_cfg ()) prefs in
  let b = report ~arrivals (lid_cfg ()) prefs in
  Alcotest.(check string) "byte-identical summaries" (SR.summary a) (SR.summary b);
  let c = report ~arrivals (lid_cfg ~seed:12 ()) prefs in
  Alcotest.(check bool) "another seed serves another session" true
    (SR.summary a <> SR.summary c)

let test_accounting () =
  let prefs = prefs () in
  let arrivals = parse "1:horizon=40" in
  let r = report ~arrivals (lid_cfg ()) prefs in
  Alcotest.(check int) "served + shed = offered" r.SR.offered (r.SR.served + r.SR.shed);
  Alcotest.(check int) "per-kind counts cover the served requests" r.SR.served
    (r.SR.joins + r.SR.leaves + r.SR.reprefs + r.SR.queries);
  Alcotest.(check bool) "p50 <= p99 <= max" true
    (r.SR.p50 <= r.SR.p99 && r.SR.p99 <= r.SR.max_latency);
  Alcotest.(check bool) "oracle sampled" true (r.SR.oracle_samples > 0)

let test_backpressure_bound () =
  let prefs = prefs () in
  (* a burst far beyond the engine's service rate: the backlog must
     stop at the bound and everything beyond it must shed *)
  let arrivals = parse "8:horizon=30,queue=5" in
  let r = report ~arrivals (lid_cfg ()) prefs in
  Alcotest.(check bool) "queue depth bounded" true (r.SR.max_queue <= 5);
  Alcotest.(check bool) "excess load shed" true (r.SR.shed > 0);
  Alcotest.(check int) "nothing lost" r.SR.offered (r.SR.served + r.SR.shed)

let test_handicap_slows_service () =
  let prefs = prefs () in
  let arrivals = parse "0.25:horizon=60" in
  let base = report ~arrivals (lid_cfg ()) prefs in
  let slow = report ~handicap:10.0 ~arrivals (lid_cfg ()) prefs in
  Alcotest.(check bool) "handicap shows up in p99" true
    (slow.SR.p99 >= base.SR.p99 +. 10.0)

let test_compose_deadline_guard () =
  let prefs = prefs () in
  let cfg =
    match
      RC.validate
        (RC.make ~engine:RC.Lid_byzantine ~seed:11 ~byzantine:"liar:0.2"
           ~guard:true ~deadline:8.0 ())
    with
    | Ok c -> c
    | Error m -> Alcotest.fail m
  in
  let arrivals = parse "0.25:horizon=60" in
  let r = report ~arrivals cfg prefs in
  Alcotest.(check bool) "session completes" true (r.SR.served > 0);
  (* every mutation is budgeted: no service time may exceed the
     deadline plus a query round, so p99 stays under queue-free bounds *)
  Alcotest.(check bool) "steady satisfaction sampled" true (r.SR.oracle_samples > 0);
  Alcotest.(check bool) "steady satisfaction positive" true
    (r.SR.steady_satisfaction > 0.0)

let test_engine_rejections () =
  let prefs = prefs () in
  let arrivals = parse "1" in
  (match RC.validate (RC.make ~engine:RC.Lic ~seed:1 ()) with
  | Ok cfg ->
      Alcotest.(check bool) "centralized engine rejected" true
        (Result.is_error (Serve.run ~arrivals cfg prefs))
  | Error m -> Alcotest.fail m);
  Alcotest.(check bool) "negative handicap rejected" true
    (Result.is_error (Serve.run ~handicap:(-1.0) ~arrivals (lid_cfg ()) prefs))

let test_shards_serve_identical_sessions () =
  (* the sharded event store must be invisible to the serving layer:
     a session run with sim_shards 2 or 4 must reproduce the sequential
     session byte for byte, seed by seed *)
  let arrivals = parse "0.5:horizon=40" in
  List.iter
    (fun seed ->
      let prefs = prefs ~seed () in
      let session sim_shards =
        let cfg =
          match RC.validate (RC.make ~engine:RC.Lid ~seed ~sim_shards ()) with
          | Ok c -> c
          | Error m -> Alcotest.fail m
        in
        SR.summary (report ~arrivals cfg prefs)
      in
      let reference = session 1 in
      List.iter
        (fun sim_shards ->
          Alcotest.(check string)
            (Printf.sprintf "seed %d: sim_shards=%d session byte-identical" seed
               sim_shards)
            reference (session sim_shards))
        [ 2; 4 ])
    [ 11; 12; 13 ]

let test_session_memory_bounded () =
  (* a serve session builds a fresh pipeline (and so a fresh simulator)
     per mutation, so the long-lived risk is the simulator a session
     re-enters between requests: drive sustained request waves through
     one Simnet and assert its footprint does not track the traffic
     that has already drained *)
  let module Sim = Owp_simnet.Simnet in
  let n = 30 in
  let net = Sim.create ~seed:11 ~nodes:n ~delay:(Sim.Uniform (0.5, 1.5)) () in
  Sim.set_handler net (fun ~src ~dst m ->
      if m > 0 then Sim.send net ~src:dst ~dst:((dst + src) mod n) (m - 1));
  let wave k =
    for i = 0 to n - 1 do
      Sim.send net ~src:i ~dst:((i + k) mod n) 3
    done;
    Sim.run net
  in
  for k = 1 to 50 do wave k done;
  let warm = Sim.footprint_words net in
  for k = 51 to 500 do wave k done;
  let after = Sim.footprint_words net in
  Alcotest.(check bool)
    (Printf.sprintf "session footprint bounded (%d -> %d words)" warm after)
    true (after <= 2 * warm)

let suite =
  [
    Alcotest.test_case "arrivals parse examples" `Quick test_parse_examples;
    Alcotest.test_case "arrivals parse rejections" `Quick test_parse_rejections;
    QCheck_alcotest.to_alcotest prop_round_trip;
    Alcotest.test_case "request stream generation" `Quick test_generate_requests;
    Alcotest.test_case "deterministic replay" `Quick test_deterministic_replay;
    Alcotest.test_case "request accounting" `Quick test_accounting;
    Alcotest.test_case "backpressure bound under burst" `Quick test_backpressure_bound;
    Alcotest.test_case "handicap slows service" `Quick test_handicap_slows_service;
    Alcotest.test_case "serve x deadline x guard" `Quick test_compose_deadline_guard;
    Alcotest.test_case "rejections" `Quick test_engine_rejections;
    Alcotest.test_case "shards serve identical sessions" `Quick
      test_shards_serve_identical_sessions;
    Alcotest.test_case "session memory bounded" `Quick test_session_memory_bounded;
  ]
