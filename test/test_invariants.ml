(* Last line of defence: randomized invariants that should hold for any
   execution of the simulator and the protocols. *)

module BM = Owp_matching.Bmatching
module Prng = Owp_util.Prng
module Sim = Owp_simnet.Simnet

let prop_simnet_conservation =
  (* delivered + dropped + still-queued = sent; with a drain to
     quiescence and no faults: delivered = sent *)
  QCheck2.Test.make ~name:"simnet conserves messages" ~count:50
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 1 200))
    (fun (seed, k) ->
      let net = Sim.create ~seed ~nodes:4 ~delay:(Sim.Uniform (0.1, 2.0)) () in
      Sim.set_handler net (fun ~src:_ ~dst:_ _ -> ());
      let rng = Prng.create seed in
      for _ = 1 to k do
        Sim.send net ~src:(Prng.int rng 4) ~dst:(Prng.int rng 4) ()
      done;
      Sim.run net;
      Sim.messages_delivered net = k && Sim.messages_dropped net = 0)

let prop_simnet_drop_accounting =
  QCheck2.Test.make ~name:"simnet drop accounting sums up" ~count:50
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 1 500))
    (fun (seed, k) ->
      let faults = Sim.faults ~drop:0.3 () in
      let net = Sim.create ~seed ~faults ~nodes:2 ~delay:Sim.Unit () in
      Sim.set_handler net (fun ~src:_ ~dst:_ _ -> ());
      for _ = 1 to k do
        Sim.send net ~src:0 ~dst:1 ()
      done;
      Sim.run net;
      Sim.messages_delivered net + Sim.messages_dropped net = k)

let prop_virtual_time_monotone =
  QCheck2.Test.make ~name:"virtual time is monotone under stepping" ~count:30
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let net = Sim.create ~seed ~nodes:3 ~delay:(Sim.Exponential 1.0) () in
      let last = ref 0.0 and ok = ref true in
      Sim.set_handler net (fun ~src ~dst _ ->
          if Sim.now net < !last then ok := false;
          last := Sim.now net;
          if Sim.now net < 50.0 then Sim.send net ~src:dst ~dst:src ());
      Sim.send net ~src:0 ~dst:1 ();
      Sim.send net ~src:1 ~dst:2 ();
      Sim.run net;
      !ok)

let prop_churn_leave_disruption_bounded =
  (* a single leave can remove at most quota(v) matched edges *)
  QCheck2.Test.make ~name:"leave removes at most quota edges" ~count:40
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Prng.create seed in
      let g = Gen.gnm rng ~n:30 ~m:90 in
      let quota = 1 + Prng.int rng 4 in
      let prefs = Preference.random rng g ~quota:(Preference.uniform_quota g quota) in
      let active = Array.make 30 true in
      let victim = Prng.int rng 30 in
      let steps =
        Owp_overlay.Churn.simulate ~prefs ~initially_active:active
          ~events:[ Owp_overlay.Churn.Leave victim ]
          ~repair:Owp_overlay.Churn.Incremental
      in
      (List.hd steps).Owp_overlay.Churn.removed <= quota)

let prop_lid_locked_edges_heavier_than_free =
  (* Lemma 4's observable consequence: at every saturated node, each
     selected edge beats every unselected incident edge whose other
     endpoint is unsaturated *)
  QCheck2.Test.make ~name:"saturated nodes hold only locally justified edges" ~count:40
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Prng.create seed in
      let g = Gen.gnm rng ~n:25 ~m:70 in
      let prefs = Preference.random rng g ~quota:(Preference.uniform_quota g 2) in
      let w = Weights.of_preference prefs in
      let capacity = Array.init 25 (Preference.quota prefs) in
      let r = Owp_core.Lid.run ~seed w ~capacity in
      let m = r.Owp_core.Lid.matching in
      let ok = ref true in
      Graph.iter_edges g (fun eid u v ->
          if not (BM.mem m eid) then begin
            (* if one endpoint is unsaturated, the other must be
               saturated with edges all heavier than eid *)
            let check_sat x =
              Graph.iter_neighbors g x (fun _ e ->
                  if BM.mem m e && Weights.heavier w eid e then ok := false)
            in
            if BM.residual m u > 0 && BM.residual m v > 0 then ok := false
            else begin
              if BM.residual m u > 0 then check_sat v;
              if BM.residual m v > 0 then check_sat u
            end
          end);
      !ok)

let prop_weights_sum_equals_static_satisfaction =
  (* Lemma 2's bookkeeping: total eq. 9 weight of a matching equals the
     total modified (static) satisfaction of its connection lists *)
  QCheck2.Test.make ~name:"matching weight = total static satisfaction" ~count:50
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Prng.create seed in
      let g = Gen.gnm rng ~n:20 ~m:60 in
      let prefs = Preference.random rng g ~quota:(Preference.uniform_quota g 3) in
      let w = Weights.of_preference prefs in
      let capacity = Array.init 20 (Preference.quota prefs) in
      let m = Owp_core.Lic.run w ~capacity in
      let total_w = BM.weight m w in
      let total_static =
        Preference.total_static_satisfaction prefs (BM.connection_lists m)
      in
      Float.abs (total_w -. total_static) < 1e-9)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_simnet_conservation;
    QCheck_alcotest.to_alcotest prop_simnet_drop_accounting;
    QCheck_alcotest.to_alcotest prop_virtual_time_monotone;
    QCheck_alcotest.to_alcotest prop_churn_leave_disruption_bounded;
    QCheck_alcotest.to_alcotest prop_lid_locked_edges_heavier_than_free;
    QCheck_alcotest.to_alcotest prop_weights_sum_equals_static_satisfaction;
  ]
