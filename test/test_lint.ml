(* The typedtree analyzer against its fixture library: every rule
   demonstrably fires on its bad fixture at the exact source line, the
   clean twins stay clean, and suppression directives move findings out
   of the report.  The fixtures are compiled (warnings off) purely so
   dune emits their .cmt files; line numbers asserted here are pinned to
   test/lint_fixtures/*.ml. *)

module Driver = Owp_lint.Driver
module Finding = Owp_lint.Finding
module Registry = Owp_lint.Registry

let contains ~affix s =
  let la = String.length affix and ls = String.length s in
  let rec go i = i + la <= ls && (String.sub s i la = affix || go (i + 1)) in
  go 0

let fixtures_root () =
  let candidates =
    [
      "lint_fixtures/.lint_fixtures.objs/byte";
      "test/lint_fixtures/.lint_fixtures.objs/byte";
      "_build/default/test/lint_fixtures/.lint_fixtures.objs/byte";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some r -> r
  | None ->
      Alcotest.fail "lint fixture .cmt directory not found (run dune build)"

(* one shared full-registry run over the fixtures *)
let result =
  lazy
    (match Driver.run ~roots:[ fixtures_root () ] () with
    | Ok r -> r
    | Error msg -> Alcotest.fail msg)

let line_rules file findings =
  findings
  |> List.filter (fun f -> Filename.basename f.Finding.file = file)
  |> List.map (fun f -> (f.Finding.line, f.Finding.rule))

let check_file file expected () =
  let r = Lazy.force result in
  Alcotest.(check (list (pair int string)))
    file expected
    (line_rules file r.Driver.findings)

(* --- per-rule firing, with exact lines ----------------------------- *)

let test_pure_core_fires =
  (* Sys.time on line 9 is both an ambient effect and a clock read *)
  check_file "fx_pure_bad.ml"
    [
      (5, "pure-core");
      (7, "pure-core");
      (9, "clock-hygiene");
      (9, "pure-core");
    ]

let test_pure_core_clean = check_file "fx_pure_ok.ml" []

let test_hash_order_fires =
  check_file "fx_order_bad.ml" [ (3, "hash-order"); (5, "hash-order") ]

let test_hash_order_sorted_sink = check_file "fx_order_ok.ml" []

let test_clock_fires =
  check_file "fx_clock_bad.ml" [ (1, "clock-hygiene"); (3, "clock-hygiene") ]

let test_random_fires =
  check_file "fx_random_bad.ml" [ (1, "seeded-random"); (3, "seeded-random") ]

let test_float_fires =
  (* line 3 works through the type universe: pt is a float-carrying
     record declared in the same fixture *)
  check_file "fx_float_bad.ml"
    [ (3, "float-compare"); (5, "float-compare"); (7, "float-compare") ]

let test_float_clean = check_file "fx_float_ok.ml" []

let test_pool_fires = check_file "fx_pool_bad.ml" [ (5, "pool-capture") ]
let test_pool_local_state_ok = check_file "fx_pool_ok.ml" []

let test_state_machine_fires =
  check_file "fx_state_machine_bad.ml"
    [ (3, "state-machine"); (3, "state-machine"); (5, "state-machine") ]

let test_layer_fires =
  check_file "fx_layer_bad.ml"
    [
      (18, "layer-conformance");
      (25, "layer-conformance");
      (40, "layer-conformance");
      (47, "layer-conformance");
      (65, "layer-conformance");
      (72, "layer-conformance");
    ]

let test_serve_clock_fires =
  (* lines 4 and 6 read the shim from a serve-named unit (forbidden
     only there); line 8 shows the base wall-clock rule still applies *)
  check_file "fx_serve_clock_bad.ml"
    [ (4, "clock-hygiene"); (6, "clock-hygiene"); (8, "clock-hygiene") ]

let test_simnet_clock_fires =
  (* a simnet-named unit is held to the serve layer's standard: lines 6
     and 8 read the shim (forbidden only in the simulator and serving
     layers); line 10 shows the base wall-clock rule still applies *)
  check_file "fx_simnet_clock_bad.ml"
    [ (6, "clock-hygiene"); (8, "clock-hygiene"); (10, "clock-hygiene") ]

let test_wheel_pool_fires =
  (* Event_wheel.add/pop on a wheel captured from outside the Pool task
     fire on lines 9 and 10; the prepare-only closure stays clean *)
  check_file "fx_wheel_pool_bad.ml" [ (9, "pool-capture"); (10, "pool-capture") ]

let test_serve_layer_fires =
  (* on_request-shaped records obey the same construction discipline
     as on_send/on_deliver middleware *)
  check_file "fx_serve_layer_bad.ml"
    [ (17, "layer-conformance"); (23, "layer-conformance") ]

let test_exact_position () =
  (* one full-position anchor: the Unix.gettimeofday ident itself *)
  let r = Lazy.force result in
  let f =
    List.find
      (fun f -> Filename.basename f.Finding.file = "fx_clock_bad.ml")
      r.Driver.findings
  in
  Alcotest.(check (pair int int)) "line/col" (1, 15) (f.Finding.line, f.Finding.col)

(* --- suppression --------------------------------------------------- *)

let test_suppression_moves_finding () =
  let r = Lazy.force result in
  Alcotest.(check (list (pair int string)))
    "no active findings" []
    (line_rules "fx_order_suppressed.ml" r.Driver.findings);
  Alcotest.(check (list (pair int string)))
    "finding recorded as suppressed"
    [ (3, "hash-order") ]
    (line_rules "fx_order_suppressed.ml" r.Driver.suppressed)

(* --- registry and driver plumbing ---------------------------------- *)

let test_registry_complete () =
  Alcotest.(check (list string))
    "eight rules, display order"
    [
      "pure-core";
      "hash-order";
      "clock-hygiene";
      "seeded-random";
      "float-compare";
      "pool-capture";
      "state-machine";
      "layer-conformance";
    ]
    Registry.names;
  List.iter
    (fun n -> Alcotest.(check bool) n true (Registry.find n <> None))
    Registry.names

let test_rule_filter () =
  match Driver.run ~only:[ "clock-hygiene" ] ~roots:[ fixtures_root () ] () with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
      Alcotest.(check (list string)) "rules ran" [ "clock-hygiene" ] r.Driver.rules;
      Alcotest.(check bool) "only clock findings" true
        (List.for_all (fun f -> f.Finding.rule = "clock-hygiene") r.Driver.findings)

let test_unknown_rule_rejected () =
  match Driver.run ~only:[ "no-such-rule" ] ~roots:[ fixtures_root () ] () with
  | Ok _ -> Alcotest.fail "unknown rule accepted"
  | Error msg ->
      Alcotest.(check bool) "names the rule" true (contains ~affix:"no-such-rule" msg)

let test_missing_roots_rejected () =
  match Driver.run ~roots:[ "no/such/dir" ] () with
  | Ok _ -> Alcotest.fail "empty scan accepted"
  | Error _ -> ()

let test_json_report_shape () =
  let r = Lazy.force result in
  let json = Driver.to_json r in
  List.iter
    (fun affix -> Alcotest.(check bool) affix true (contains ~affix json))
    [ "\"findings\""; "\"suppressed\""; "\"files\""; "\"rules\""; "pool-capture" ]

let suite =
  [
    Alcotest.test_case "pure-core fires" `Quick test_pure_core_fires;
    Alcotest.test_case "pure-core clean twin" `Quick test_pure_core_clean;
    Alcotest.test_case "hash-order fires" `Quick test_hash_order_fires;
    Alcotest.test_case "hash-order sorted sink ok" `Quick test_hash_order_sorted_sink;
    Alcotest.test_case "clock-hygiene fires" `Quick test_clock_fires;
    Alcotest.test_case "seeded-random fires" `Quick test_random_fires;
    Alcotest.test_case "float-compare fires" `Quick test_float_fires;
    Alcotest.test_case "float-compare clean twin" `Quick test_float_clean;
    Alcotest.test_case "pool-capture fires" `Quick test_pool_fires;
    Alcotest.test_case "pool-capture local state ok" `Quick test_pool_local_state_ok;
    Alcotest.test_case "state-machine fires" `Quick test_state_machine_fires;
    Alcotest.test_case "layer-conformance fires" `Quick test_layer_fires;
    Alcotest.test_case "serve clock-hygiene fires" `Quick test_serve_clock_fires;
    Alcotest.test_case "serve layer-conformance fires" `Quick test_serve_layer_fires;
    Alcotest.test_case "simnet clock-hygiene fires" `Quick test_simnet_clock_fires;
    Alcotest.test_case "wheel pool-capture fires" `Quick test_wheel_pool_fires;
    Alcotest.test_case "exact position" `Quick test_exact_position;
    Alcotest.test_case "suppression" `Quick test_suppression_moves_finding;
    Alcotest.test_case "registry complete" `Quick test_registry_complete;
    Alcotest.test_case "rule filter" `Quick test_rule_filter;
    Alcotest.test_case "unknown rule rejected" `Quick test_unknown_rule_rejected;
    Alcotest.test_case "missing roots rejected" `Quick test_missing_roots_rejected;
    Alcotest.test_case "json report shape" `Quick test_json_report_shape;
  ]
