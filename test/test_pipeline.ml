module Pipeline = Owp_core.Pipeline
module Theory = Owp_core.Theory
module BM = Owp_matching.Bmatching
module Prng = Owp_util.Prng

let instance seed =
  let rng = Prng.create seed in
  let g = Gen.gnm rng ~n:60 ~m:200 in
  Preference.random rng g ~quota:(Preference.uniform_quota g 3)

(* seed 7 was the removed wrapper's default; the expectations below
   were calibrated against it *)
let run ?(seed = 7) engine prefs =
  Pipeline.run_config (Owp_core.Run_config.make ~engine ~seed ()) prefs

let test_lid_outcome_fields () =
  let prefs = instance 1 in
  let out = run Pipeline.Lid prefs in
  Alcotest.(check bool) "messages present" true (out.Pipeline.messages <> None);
  (match out.Pipeline.guarantee with
  | Some gbound ->
      Alcotest.(check (float 1e-9)) "theorem 3 bound"
        (Theory.theorem3_bound ~bmax:(Preference.max_quota prefs))
        gbound
  | None -> Alcotest.fail "LID carries a guarantee");
  Alcotest.(check bool) "weight consistent" true
    (Float.abs
       (out.Pipeline.total_weight
       -. BM.weight out.Pipeline.matching (Pipeline.weights prefs))
    < 1e-9)

let test_algorithms_consistent () =
  let prefs = instance 2 in
  let lid = run Pipeline.Lid prefs in
  let lic = run Pipeline.Lic prefs in
  Alcotest.(check bool) "same matching" true
    (BM.equal lid.Pipeline.matching lic.Pipeline.matching);
  Alcotest.(check (float 1e-9)) "same satisfaction" lic.Pipeline.total_satisfaction
    lid.Pipeline.total_satisfaction;
  Alcotest.(check bool) "greedy has no guarantee field" true
    ((run Pipeline.Greedy prefs).Pipeline.guarantee = None)

let test_profile_matches_total () =
  let prefs = instance 3 in
  let out = run Pipeline.Lic prefs in
  let profile = Pipeline.satisfaction_profile prefs out.Pipeline.matching in
  let total = Array.fold_left ( +. ) 0.0 profile in
  Alcotest.(check (float 1e-6)) "profile sums to total" out.Pipeline.total_satisfaction total

let test_satisfaction_vs_guarantee () =
  (* the realised satisfaction ratio vs the satisfaction-greedy upper
     bound proxy is far above the proven floor; sanity-check mean *)
  let prefs = instance 4 in
  let out = run Pipeline.Lid prefs in
  Alcotest.(check bool) "mean in [0,1]" true
    (out.Pipeline.mean_satisfaction >= 0.0 && out.Pipeline.mean_satisfaction <= 1.0)

let suite =
  [
    Alcotest.test_case "lid outcome fields" `Quick test_lid_outcome_fields;
    Alcotest.test_case "algorithms consistent" `Quick test_algorithms_consistent;
    Alcotest.test_case "profile matches total" `Quick test_profile_matches_total;
    Alcotest.test_case "satisfaction vs guarantee" `Quick test_satisfaction_vs_guarantee;
  ]
