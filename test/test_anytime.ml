(* The deadline layer and its anytime certificate: a budgeted run must
   serve a feasible prefix of the unbudgeted run's matching, with
   satisfaction monotone in the budget on a fixed seed (same seed =
   same event prefix, so locks only ever grow with the horizon). *)

module Stack = Owp_core.Stack
module Lid = Owp_core.Lid
module RC = Owp_core.Run_config
module P = Owp_core.Pipeline
module A = Owp_check.Anytime
module Sim = Owp_simnet.Simnet
module Adversary = Owp_simnet.Adversary
module BM = Owp_matching.Bmatching
module Prng = Owp_util.Prng

let instance seed n avg_deg quota =
  let rng = Prng.create seed in
  let g = Gen.gnm rng ~n ~m:(n * avg_deg / 2) in
  let p = Preference.random rng g ~quota:(Preference.uniform_quota g quota) in
  (p, Weights.of_preference p, Array.init n (Preference.quota p))

let subset small big =
  let in_big = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace in_big e ()) big;
  List.for_all (Hashtbl.mem in_big) small

(* --- the stack's deadline layer ----------------------------------- *)

let test_stack_deadline_monotone () =
  let prefs, w, capacity = instance 31 80 8 3 in
  let full = Stack.run ~seed:9 w ~capacity in
  let reference = BM.edge_ids full.Stack.matching in
  let prev = ref (-1.0) in
  List.iter
    (fun d ->
      let r = Stack.run ~seed:9 ~deadline:d w ~capacity in
      let edges = BM.edge_ids r.Stack.matching in
      Alcotest.(check bool)
        (Printf.sprintf "served at %.1f is a prefix of the full run" d)
        true (subset edges reference);
      let cert =
        A.check (A.instance ~prefs ~reference w ~capacity ~budget:d ~edges)
      in
      Alcotest.(check bool) "certified" true (A.certified cert);
      let s = Option.value cert.A.satisfaction ~default:0.0 in
      Alcotest.(check bool)
        (Printf.sprintf "satisfaction monotone at %.1f" d)
        true
        (s >= !prev -. 1e-9);
      prev := s)
    [ 1.0; 2.0; 3.0; 5.0; 8.0; 20.0 ]

let test_stack_cutoff_report () =
  let _, w, capacity = instance 32 60 6 2 in
  let full = Stack.run ~seed:4 w ~capacity in
  Alcotest.(check bool) "no cutoff without a budget" true
    (Option.is_none full.Stack.cutoff);
  let r = Stack.run ~seed:4 ~deadline:1.5 w ~capacity in
  (match r.Stack.cutoff with
  | None -> Alcotest.fail "budgeted run must carry a cutoff record"
  | Some c ->
      Alcotest.(check (float 1e-9)) "cut at the budget" 1.5 c.Stack.cut_at;
      Alcotest.(check bool) "counters non-negative" true
        (c.Stack.released >= 0 && c.Stack.half_locks >= 0 && c.Stack.abandoned >= 0));
  (* after the freeze every node is finished: the run reports quiescence
     by construction, the cutoff record carries the distinctness *)
  Alcotest.(check bool) "frozen run is quiescent" true r.Stack.all_terminated;
  (* the deadline layer's counter row is present on budgeted runs *)
  Alcotest.(check bool) "deadline layer row" true
    (List.exists (fun l -> l.Stack.layer = "deadline") r.Stack.layers);
  Alcotest.(check bool) "no deadline row unbudgeted" true
    (not (List.exists (fun l -> l.Stack.layer = "deadline") full.Stack.layers))

let test_max_rounds_is_deadline_in_round_lengths () =
  let _, w, capacity = instance 33 50 6 2 in
  (* under the unit delay model one round is 1.0 time units, so
     max_rounds k and deadline (float k) are the same budget *)
  let a = Stack.run ~seed:5 ~delay:Sim.Unit ~max_rounds:2 w ~capacity in
  let b = Stack.run ~seed:5 ~delay:Sim.Unit ~deadline:2.0 w ~capacity in
  Alcotest.(check bool) "same served matching" true
    (BM.equal a.Stack.matching b.Stack.matching);
  Alcotest.(check (float 1e-9)) "unit round length" 1.0 (Stack.round_length Sim.Unit)

let test_stack_budget_validation () =
  let _, w, capacity = instance 34 20 4 2 in
  let raises f =
    match f () with _ -> false | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "non-positive deadline" true
    (raises (fun () -> Stack.run ~deadline:0.0 w ~capacity));
  Alcotest.(check bool) "non-positive max_rounds" true
    (raises (fun () -> Stack.run ~max_rounds:0 w ~capacity));
  Alcotest.(check bool) "both spellings" true
    (raises (fun () -> Stack.run ~deadline:1.0 ~max_rounds:1 w ~capacity))

let test_full_composition_certifies () =
  let prefs, w, capacity = instance 35 80 8 3 in
  let faults = Sim.faults ~drop:0.1 ~reorder:0.3 () in
  let adversaries =
    Adversary.assign (Prng.create 77) ~n:80 (Adversary.parse_spec "liar:0.2")
  in
  let run d =
    Stack.run ~seed:6 ~fifo:false ~faults ~reliable:true ~adversaries ~guard:true
      ~prefs ?deadline:d w ~capacity
  in
  let full = run None in
  let r = run (Some 4.0) in
  Alcotest.(check bool) "cutoff present" true (Option.is_some r.Stack.cutoff);
  Alcotest.(check bool) "no damage at cutoff" true (r.Stack.damage = []);
  let cert =
    A.check
      (A.instance ~prefs
         ~reference:(BM.edge_ids full.Stack.matching)
         w ~capacity ~budget:4.0
         ~edges:(BM.edge_ids r.Stack.matching))
  in
  Alcotest.(check bool) "composition certifies" true (A.certified cert)

(* --- the plain Lid.run deadline path ------------------------------ *)

let test_lid_run_deadline () =
  let _, w, capacity = instance 36 60 6 2 in
  let full = Lid.run ~seed:3 w ~capacity in
  let r = Lid.run ~seed:3 ~deadline:2.0 w ~capacity in
  (match r.Lid.cutoff with
  | None -> Alcotest.fail "Lid.run ~deadline must report a cutoff"
  | Some c -> Alcotest.(check (float 1e-9)) "cut at the budget" 2.0 c.Lid.cut_at);
  Alcotest.(check bool) "served is a prefix of the full run" true
    (subset (BM.edge_ids r.Lid.matching) (BM.edge_ids full.Lid.matching));
  Alcotest.(check bool) "raises on a non-positive deadline" true
    (match Lid.run ~deadline:(-1.0) w ~capacity with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- run_config / pipeline plumbing ------------------------------- *)

let test_pipeline_budgeted_outcome () =
  let prefs, _, _ = instance 37 60 6 2 in
  let out =
    P.run_config (RC.make ~engine:RC.Lid ~seed:8 ~deadline:2.0 ~check:true ()) prefs
  in
  Alcotest.(check bool) "outcome carries the cutoff" true (Option.is_some out.P.cutoff);
  Alcotest.(check bool) "no Theorem 3 guarantee at cutoff" true
    (Option.is_none out.P.guarantee);
  (* the armed checkers drop to instance level: feasibility must hold,
     maximality/blocking-pair are deliberately not asserted *)
  (match out.P.check_report with
  | None -> Alcotest.fail "check:true must produce a report"
  | Some rep ->
      Alcotest.(check bool) "feasibility holds at cutoff" true
        (Owp_check.Checker.ok rep));
  let unbudgeted = P.run_config (RC.make ~engine:RC.Lid ~seed:8 ()) prefs in
  Alcotest.(check bool) "no cutoff without a budget" true
    (Option.is_none unbudgeted.P.cutoff)

(* --- the certificate checker itself ------------------------------- *)

let test_certificate_void_cases () =
  let prefs, w, capacity = instance 38 30 4 1 in
  let g = Weights.graph w in
  (* overfull: every edge at once busts quota 1 somewhere *)
  let all_edges = List.init (Graph.edge_count g) Fun.id in
  let cert = A.check (A.instance ~prefs w ~capacity ~budget:1.0 ~edges:all_edges) in
  Alcotest.(check bool) "overfull matching is not feasible" false cert.A.feasible;
  Alcotest.(check bool) "void certificate" false (A.certified cert);
  (* a non-empty matching cannot be a prefix of an empty reference *)
  let full = Owp_core.Lic.run w ~capacity in
  let served = BM.edge_ids full in
  if served <> [] then begin
    let cert =
      A.check (A.instance ~prefs ~reference:[] w ~capacity ~budget:1.0 ~edges:served)
    in
    Alcotest.(check bool) "subset witness fails" true
      (cert.A.prefix_of_reference = Some false);
    Alcotest.(check bool) "void without the witness" false (A.certified cert)
  end;
  Alcotest.(check bool) "non-positive budget rejected" true
    (match A.instance ~prefs w ~capacity ~budget:0.0 ~edges:[] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "stack deadline monotone + prefix" `Quick
      test_stack_deadline_monotone;
    Alcotest.test_case "cutoff report fields" `Quick test_stack_cutoff_report;
    Alcotest.test_case "max-rounds = deadline in round lengths" `Quick
      test_max_rounds_is_deadline_in_round_lengths;
    Alcotest.test_case "budget validation" `Quick test_stack_budget_validation;
    Alcotest.test_case "full composition certifies" `Quick test_full_composition_certifies;
    Alcotest.test_case "lid run deadline" `Quick test_lid_run_deadline;
    Alcotest.test_case "pipeline budgeted outcome" `Quick test_pipeline_budgeted_outcome;
    Alcotest.test_case "certificate void cases" `Quick test_certificate_void_cases;
  ]
