(* Aggregated test runner: one alcotest section per module. *)

let () =
  Alcotest.run "owp"
    [
      ("util.prng", Test_prng.suite);
      ("util.pool", Test_pool.suite);
      ("util.heap", Test_heap.suite);
      ("util.event_wheel", Test_event_wheel.suite);
      ("util.dsu", Test_dsu.suite);
      ("util.stats", Test_stats.suite);
      ("util.tablefmt", Test_tablefmt.suite);
      ("graph.core", Test_graph.suite);
      ("graph.gen", Test_gen.suite);
      ("graph.metrics", Test_graph_metrics.suite);
      ("graph.io", Test_graph_io.suite);
      ("graph.spath", Test_spath.suite);
      ("prefs.satisfaction", Test_satisfaction.suite);
      ("prefs.metric", Test_metric.suite);
      ("prefs.preference", Test_preference.suite);
      ("prefs.weights", Test_weights.suite);
      ("simnet", Test_simnet.suite);
      ("simnet.transport", Test_transport.suite);
      ("simnet.schedule", Test_schedule.suite);
      ("matching.bmatching", Test_bmatching.suite);
      ("matching.greedy+exact", Test_greedy_exact.suite);
      ("matching.mcmf", Test_mcmf.suite);
      ("matching.onetoone", Test_onetoone.suite);
      ("matching.blossom", Test_blossom.suite);
      ("stable", Test_stable.suite);
      ("core.lic", Test_lic.suite);
      ("core.lic_indexed", Test_lic_indexed.suite);
      ("core.lid", Test_lid.suite);
      ("core.lid_dynamic", Test_lid_dynamic.suite);
      ("core.stack", Test_stack.suite);
      ("core.anytime", Test_anytime.suite);
      ("core.lid_reliable", Test_lid_reliable.suite);
      ("core.guard", Test_guard.suite);
      ("core.byzantine", Test_byzantine.suite);
      ("core.theory", Test_theory.suite);
      ("check", Test_check.suite);
      ("check.stabilize", Test_stabilize.suite);
      ("lint", Test_lint.suite);
      ("core.pipeline", Test_pipeline.suite);
      ("core.run_config", Test_run_config.suite);
      ("serve", Test_serve.suite);
      ("extensions", Test_extensions.suite);
      ("integration", Test_integration.suite);
      ("invariants", Test_invariants.suite);
      ("overlay", Test_overlay.suite);
      ("overlay.churn", Test_churn.suite);
      ("bench.workloads", Test_workloads.suite);
    ]
