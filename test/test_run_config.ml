module RC = Owp_core.Run_config
module Pipeline = Owp_core.Pipeline
module Faults = Owp_simnet.Faults
module BM = Owp_matching.Bmatching
module Prng = Owp_util.Prng

let instance seed =
  let rng = Prng.create seed in
  let g = Gen.gnm rng ~n:60 ~m:200 in
  Preference.random rng g ~quota:(Preference.uniform_quota g 3)

(* --- faults spec parser/printer ----------------------------------- *)

let test_faults_round_trip () =
  List.iter
    (fun f ->
      match Faults.of_string (Faults.to_string f) with
      | Ok f' -> Alcotest.(check bool) (Faults.to_string f) true (f = f')
      | Error e -> Alcotest.fail e)
    [
      Faults.none;
      Faults.make ~drop:0.2 ();
      Faults.make ~drop:0.1 ~duplicate:0.05 ~reorder:0.02 ();
      Faults.make ~fifo:false ();
      Faults.make ~crash:0.1 ~patience:30.0 ();
      Faults.make ~drop:0.3 ~fifo:false ~crash:0.05 ();
    ]

let test_faults_parse_examples () =
  (match Faults.of_string "drop=0.2,dup=0.1,unordered" with
  | Ok f ->
      Alcotest.(check (float 1e-9)) "drop" 0.2 f.Faults.drop;
      Alcotest.(check (float 1e-9)) "dup" 0.1 f.Faults.duplicate;
      Alcotest.(check bool) "fifo off" false f.Faults.fifo
  | Error e -> Alcotest.fail e);
  (match Faults.of_string "none" with
  | Ok f -> Alcotest.(check bool) "none is fault-free" false (Faults.any f)
  | Error _ -> Alcotest.fail "none must parse");
  Alcotest.(check bool) "bad key rejected" true
    (Result.is_error (Faults.of_string "explode=1.0"));
  Alcotest.(check bool) "out-of-range rejected" true
    (Result.is_error (Faults.of_string "drop=1.5"))

let test_effective_patience () =
  Alcotest.(check bool) "fault-free: none" true
    (Faults.effective_patience Faults.none = None);
  Alcotest.(check bool) "crashes arm default 60" true
    (Faults.effective_patience (Faults.make ~crash:0.1 ()) = Some 60.0);
  Alcotest.(check bool) "explicit wins" true
    (Faults.effective_patience (Faults.make ~crash:0.1 ~patience:5.0 ()) = Some 5.0)

(* --- engine vocabulary -------------------------------------------- *)

let test_engine_names_round_trip () =
  List.iter
    (fun e ->
      match RC.engine_of_string (RC.engine_name e) with
      | Ok e' -> Alcotest.(check bool) (RC.engine_name e) true (e = e')
      | Error msg -> Alcotest.fail msg)
    RC.all_engines

let test_engine_aliases () =
  List.iter
    (fun (s, e) ->
      match RC.engine_of_string s with
      | Ok e' -> Alcotest.(check bool) s true (e = e')
      | Error msg -> Alcotest.fail msg)
    [
      ("indexed", RC.Lic_indexed);
      ("lic-indexed", RC.Lic_indexed);
      ("reliable", RC.Lid_reliable);
      ("byzantine", RC.Lid_byzantine);
      ("LID", RC.Lid);
    ];
  Alcotest.(check bool) "unknown engine rejected" true
    (Result.is_error (RC.engine_of_string "quantum"))

(* --- cross-field validation --------------------------------------- *)

let test_validate () =
  let ok c = Result.is_ok (RC.validate c) in
  Alcotest.(check bool) "default valid" true (ok RC.default);
  (* the layers compose: every former "mutually exclusive" pair is a
     legal selection of middleware now *)
  Alcotest.(check bool) "faults ride plain lid" true
    (ok (RC.make ~engine:RC.Lid ~faults:(Faults.make ~drop:0.2 ()) ()));
  Alcotest.(check bool) "reliable + faults valid" true
    (ok (RC.make ~engine:RC.Lid_reliable ~faults:(Faults.make ~drop:0.2 ()) ()));
  Alcotest.(check bool) "byzantine + channel faults valid" true
    (ok
       (RC.make ~engine:RC.Lid_byzantine ~byzantine:"liar:0.2"
          ~faults:(Faults.make ~drop:0.1 ()) ()));
  Alcotest.(check bool) "byzantine rides plain lid" true
    (ok (RC.make ~engine:RC.Lid ~byzantine:"liar:0.2" ()));
  Alcotest.(check bool) "reliable flag on plain lid" true
    (ok (RC.make ~engine:RC.Lid ~reliable:true ()));
  Alcotest.(check bool) "full composition valid" true
    (ok
       (RC.make ~engine:RC.Lid ~reliable:true ~byzantine:"liar:0.2" ~guard:true
          ~faults:(Faults.make ~drop:0.1 ~reorder:0.2 ()) ()));
  Alcotest.(check bool) "byzantine + guard valid" true
    (ok (RC.make ~engine:RC.Lid_byzantine ~byzantine:"liar:0.2" ~guard:true ()));
  (* genuinely meaningless combinations stay rejected, each on its own
     branch of validate *)
  Alcotest.(check bool) "out-of-range faults rejected" false
    (ok (RC.make ~faults:{ Faults.none with Faults.drop = 1.5 } ()));
  Alcotest.(check bool) "byzantine needs a spec" false
    (ok (RC.make ~engine:RC.Lid_byzantine ()));
  Alcotest.(check bool) "byzantine spec must parse" false
    (ok (RC.make ~engine:RC.Lid_byzantine ~byzantine:"nonsense" ()));
  Alcotest.(check bool) "spec needs a lid-family engine" false
    (ok (RC.make ~engine:RC.Lic ~byzantine:"liar:0.2" ()));
  Alcotest.(check bool) "guard needs an adversary spec" false
    (ok (RC.make ~engine:RC.Lid ~guard:true ()));
  Alcotest.(check bool) "faults need a lid-family engine" false
    (ok (RC.make ~engine:RC.Greedy ~faults:(Faults.make ~drop:0.2 ()) ()));
  Alcotest.(check bool) "reliable needs a lid-family engine" false
    (ok (RC.make ~engine:RC.Lic ~reliable:true ()));
  (* the rejection messages must say what to do, not just "no" *)
  (match RC.validate (RC.make ~engine:RC.Lid ~guard:true ()) with
  | Error msg ->
      Alcotest.(check bool) "guard message is actionable" true
        (let contains hay needle =
           let lh = String.length hay and ln = String.length needle in
           let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
           go 0
         in
         contains msg "--byzantine")
  | Ok _ -> Alcotest.fail "guard without spec must be rejected")

(* --- the pipeline funnel ------------------------------------------ *)

let test_run_config_engines_agree () =
  let prefs = instance 5 in
  let run engine = Pipeline.run_config (RC.make ~engine ~seed:5 ()) prefs in
  let lic = run RC.Lic in
  let indexed = run RC.Lic_indexed in
  let lid = run RC.Lid in
  Alcotest.(check bool) "indexed = lic matching" true
    (BM.equal lic.Pipeline.matching indexed.Pipeline.matching);
  Alcotest.(check bool) "lid = lic matching (Lemma 6)" true
    (BM.equal lic.Pipeline.matching lid.Pipeline.matching);
  Alcotest.(check bool) "engines reported" true
    (indexed.Pipeline.engine = RC.Lic_indexed && lid.Pipeline.engine = RC.Lid)

let test_run_config_rejects_inconsistent () =
  let prefs = instance 6 in
  Alcotest.(check bool) "invalid config raises" true
    (match
       Pipeline.run_config (RC.make ~engine:RC.Lid ~guard:true ()) prefs
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- anytime budget validation ------------------------------------ *)

let test_validate_budget () =
  let ok c = Result.is_ok (RC.validate c) in
  Alcotest.(check bool) "deadline on lid valid" true
    (ok (RC.make ~engine:RC.Lid ~deadline:5.0 ()));
  Alcotest.(check bool) "max-rounds on lid valid" true
    (ok (RC.make ~engine:RC.Lid ~max_rounds:4 ()));
  Alcotest.(check bool) "budget composes with everything" true
    (ok
       (RC.make ~engine:RC.Lid ~deadline:5.0 ~reliable:true ~byzantine:"liar:0.2"
          ~guard:true
          ~faults:(Faults.make ~drop:0.1 ~reorder:0.2 ()) ()));
  Alcotest.(check bool) "budgeted reported" true
    (RC.budgeted (RC.make ~deadline:1.0 ())
    && RC.budgeted (RC.make ~max_rounds:3 ())
    && not (RC.budgeted RC.default));
  Alcotest.(check bool) "both spellings rejected" false
    (ok (RC.make ~engine:RC.Lid ~deadline:5.0 ~max_rounds:4 ()));
  Alcotest.(check bool) "non-positive deadline rejected" false
    (ok (RC.make ~engine:RC.Lid ~deadline:0.0 ()));
  Alcotest.(check bool) "non-positive max-rounds rejected" false
    (ok (RC.make ~engine:RC.Lid ~max_rounds:0 ()));
  Alcotest.(check bool) "budget needs a lid-family engine" false
    (ok (RC.make ~engine:RC.Lic ~deadline:5.0 ()));
  (match RC.validate (RC.make ~engine:RC.Lid ~deadline:5.0 ~max_rounds:4 ()) with
  | Error msg ->
      let contains hay needle =
        let lh = String.length hay and ln = String.length needle in
        let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "double-budget message is actionable" true
        (contains msg "exactly one")
  | Ok _ -> Alcotest.fail "double budget must be rejected")

let suite =
  [
    Alcotest.test_case "faults round trip" `Quick test_faults_round_trip;
    Alcotest.test_case "faults parse examples" `Quick test_faults_parse_examples;
    Alcotest.test_case "effective patience" `Quick test_effective_patience;
    Alcotest.test_case "engine names round trip" `Quick test_engine_names_round_trip;
    Alcotest.test_case "engine aliases" `Quick test_engine_aliases;
    Alcotest.test_case "validate" `Quick test_validate;
    Alcotest.test_case "run_config engines agree" `Quick test_run_config_engines_agree;
    Alcotest.test_case "run_config rejects inconsistent" `Quick test_run_config_rejects_inconsistent;
    Alcotest.test_case "validate budget" `Quick test_validate_budget;
  ]
