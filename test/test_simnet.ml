module Sim = Owp_simnet.Simnet

let test_single_delivery () =
  let net = Sim.create ~nodes:2 ~delay:Sim.Unit () in
  let got = ref [] in
  Sim.set_handler net (fun ~src ~dst m -> got := (src, dst, m) :: !got);
  Sim.send net ~src:0 ~dst:1 "hello";
  Sim.run net;
  Alcotest.(check int) "one delivery" 1 (List.length !got);
  Alcotest.(check bool) "payload" true (List.hd !got = (0, 1, "hello"));
  Alcotest.(check (float 1e-9)) "unit delay" 1.0 (Sim.now net);
  Alcotest.(check int) "counter sent" 1 (Sim.messages_sent net);
  Alcotest.(check int) "counter delivered" 1 (Sim.messages_delivered net)

let test_handler_chaining () =
  (* ping-pong k times *)
  let net = Sim.create ~nodes:2 ~delay:Sim.Unit () in
  let hops = ref 0 in
  Sim.set_handler net (fun ~src ~dst m ->
      incr hops;
      if m > 0 then Sim.send net ~src:dst ~dst:src (m - 1));
  Sim.send net ~src:0 ~dst:1 5;
  Sim.run net;
  Alcotest.(check int) "six deliveries" 6 !hops;
  Alcotest.(check (float 1e-9)) "time is hops" 6.0 (Sim.now net)

let test_fifo_ordering () =
  let net = Sim.create ~fifo:true ~nodes:2 ~delay:(Sim.Uniform (0.1, 10.0)) () in
  let got = ref [] in
  Sim.set_handler net (fun ~src:_ ~dst:_ m -> got := m :: !got);
  for i = 1 to 50 do
    Sim.send net ~src:0 ~dst:1 i
  done;
  Sim.run net;
  Alcotest.(check (list int)) "in order" (List.init 50 (fun i -> 50 - i)) !got

let test_no_fifo_can_reorder () =
  let net = Sim.create ~fifo:false ~seed:5 ~nodes:2 ~delay:(Sim.Uniform (0.1, 10.0)) () in
  let got = ref [] in
  Sim.set_handler net (fun ~src:_ ~dst:_ m -> got := m :: !got);
  for i = 1 to 50 do
    Sim.send net ~src:0 ~dst:1 i
  done;
  Sim.run net;
  Alcotest.(check bool) "some reordering" true (!got <> List.init 50 (fun i -> 50 - i))

let test_schedule () =
  let net : unit Sim.t = Sim.create ~nodes:1 ~delay:Sim.Unit () in
  let fired = ref [] in
  Sim.schedule net ~delay:3.0 (fun () -> fired := 3 :: !fired);
  Sim.schedule net ~delay:1.0 (fun () -> fired := 1 :: !fired);
  Sim.run net;
  Alcotest.(check (list int)) "ordered callbacks" [ 3; 1 ] !fired;
  Alcotest.(check (float 1e-9)) "clock at last" 3.0 (Sim.now net)

let test_run_until () =
  let net : unit Sim.t = Sim.create ~nodes:1 ~delay:Sim.Unit () in
  let fired = ref 0 in
  List.iter (fun d -> Sim.schedule net ~delay:d (fun () -> incr fired)) [ 1.0; 2.0; 5.0 ];
  Sim.run_until net 2.5;
  Alcotest.(check int) "only early" 2 !fired;
  Alcotest.(check bool) "clock <= horizon" true (Sim.now net <= 2.5);
  Sim.run net;
  Alcotest.(check int) "rest delivered" 3 !fired

let test_step () =
  let net : unit Sim.t = Sim.create ~nodes:1 ~delay:Sim.Unit () in
  Sim.schedule net ~delay:1.0 (fun () -> ());
  Alcotest.(check bool) "one event" true (Sim.step net);
  Alcotest.(check bool) "empty" false (Sim.step net)

let test_drop_faults () =
  let faults = Sim.faults ~drop:1.0 () in
  let net = Sim.create ~faults ~nodes:2 ~delay:Sim.Unit () in
  Sim.set_handler net (fun ~src:_ ~dst:_ _ -> Alcotest.fail "should have been dropped");
  for _ = 1 to 20 do
    Sim.send net ~src:0 ~dst:1 ()
  done;
  Sim.run net;
  Alcotest.(check int) "all dropped" 20 (Sim.messages_dropped net);
  Alcotest.(check int) "none delivered" 0 (Sim.messages_delivered net)

let test_duplicate_faults () =
  let faults = Sim.faults ~duplicate:1.0 () in
  let net = Sim.create ~faults ~nodes:2 ~delay:Sim.Unit () in
  let count = ref 0 in
  Sim.set_handler net (fun ~src:_ ~dst:_ _ -> incr count);
  for _ = 1 to 10 do
    Sim.send net ~src:0 ~dst:1 ()
  done;
  Sim.run net;
  Alcotest.(check int) "each duplicated" 20 !count

let test_partial_drop_rate () =
  let faults = Sim.faults ~drop:0.5 () in
  let net = Sim.create ~seed:9 ~faults ~nodes:2 ~delay:Sim.Unit () in
  Sim.set_handler net (fun ~src:_ ~dst:_ _ -> ());
  for _ = 1 to 2000 do
    Sim.send net ~src:0 ~dst:1 ()
  done;
  Sim.run net;
  let d = Sim.messages_dropped net in
  Alcotest.(check bool) "about half dropped" true (d > 900 && d < 1100)

let test_reorder_faults () =
  (* reorder straggles messages past the FIFO clamp even on fifo:true *)
  let faults = Sim.faults ~reorder:0.3 () in
  let net = Sim.create ~seed:11 ~fifo:true ~faults ~nodes:2 ~delay:(Sim.Uniform (0.5, 1.5)) () in
  let got = ref [] in
  Sim.set_handler net (fun ~src:_ ~dst:_ m -> got := m :: !got);
  for i = 1 to 100 do
    Sim.send net ~src:0 ~dst:1 i
  done;
  Sim.run net;
  Alcotest.(check int) "all delivered" 100 (List.length !got);
  Alcotest.(check bool) "some straggled" true (Sim.messages_reordered net > 0);
  Alcotest.(check bool) "order broken" true (!got <> List.init 100 (fun i -> 100 - i))

let test_crash_blackholes () =
  let net = Sim.create ~nodes:2 ~delay:Sim.Unit () in
  let got = ref 0 in
  Sim.set_handler net (fun ~src:_ ~dst:_ _ -> incr got);
  Sim.crash net 1;
  Alcotest.(check bool) "down" false (Sim.is_up net 1);
  Sim.send net ~src:0 ~dst:1 ();
  (* in flight towards a down host *)
  Sim.send net ~src:1 ~dst:0 ();
  (* send from a down host *)
  Sim.run net;
  Alcotest.(check int) "nothing delivered" 0 !got;
  Alcotest.(check int) "both lost to the crash" 2 (Sim.messages_lost_to_crashes net);
  Alcotest.(check int) "one crash event" 1 (Sim.crash_events net)

let test_crash_restart () =
  let net = Sim.create ~nodes:2 ~delay:Sim.Unit () in
  let got = ref 0 in
  Sim.set_handler net (fun ~src:_ ~dst:_ _ -> incr got);
  Sim.schedule net ~delay:1.0 (fun () -> Sim.crash net 1);
  Sim.schedule net ~delay:5.0 (fun () -> Sim.restart net 1);
  (* arrives at t=2.5: lost *)
  Sim.schedule net ~delay:1.5 (fun () -> Sim.send net ~src:0 ~dst:1 ());
  (* arrives at t=7: delivered *)
  Sim.schedule net ~delay:6.0 (fun () -> Sim.send net ~src:0 ~dst:1 ());
  Sim.run net;
  Alcotest.(check bool) "back up" true (Sim.is_up net 1);
  Alcotest.(check int) "post-restart delivery" 1 !got;
  Alcotest.(check int) "outage loss" 1 (Sim.messages_lost_to_crashes net);
  (* crash/restart are idempotent *)
  Sim.restart net 1;
  Sim.crash net 0;
  Sim.crash net 0;
  Alcotest.(check int) "idempotent crash counted once" 2 (Sim.crash_events net)

let test_trace () =
  let net = Sim.create ~nodes:2 ~delay:Sim.Unit () in
  let traced = ref 0 in
  Sim.set_handler net (fun ~src:_ ~dst:_ _ -> ());
  Sim.set_trace net (Some (fun _t ~src:_ ~dst:_ _ -> incr traced));
  Sim.send net ~src:0 ~dst:1 ();
  Sim.send net ~src:1 ~dst:0 ();
  Sim.run net;
  Alcotest.(check int) "traced both" 2 !traced

let test_send_range_check () =
  let net : unit Sim.t = Sim.create ~nodes:2 ~delay:Sim.Unit () in
  Alcotest.check_raises "range" (Invalid_argument "Simnet.send: endpoint out of range")
    (fun () -> Sim.send net ~src:0 ~dst:5 ())

let test_no_handler_fails () =
  let net : unit Sim.t = Sim.create ~nodes:2 ~delay:Sim.Unit () in
  Sim.send net ~src:0 ~dst:1 ();
  Alcotest.check_raises "no handler" (Failure "Simnet: message due but no handler installed")
    (fun () -> Sim.run net)

let test_exponential_delay_positive () =
  let net = Sim.create ~nodes:2 ~delay:(Sim.Exponential 2.0) () in
  Sim.set_handler net (fun ~src:_ ~dst:_ _ -> ());
  for _ = 1 to 100 do
    Sim.send net ~src:0 ~dst:1 ()
  done;
  Sim.run net;
  Alcotest.(check bool) "clock advanced" true (Sim.now net > 0.0)

let test_per_link_delay () =
  let net = Sim.create ~fifo:false ~nodes:3 ~delay:(Sim.PerLink (fun s d -> float_of_int (s + d))) () in
  let order = ref [] in
  Sim.set_handler net (fun ~src ~dst:_ _ -> order := src :: !order);
  Sim.send net ~src:2 ~dst:0 ();
  (* delay 2 *)
  Sim.send net ~src:1 ~dst:0 ();
  (* delay 1 *)
  Sim.run net;
  Alcotest.(check (list int)) "shorter link first" [ 2; 1 ] !order


(* ------------------------------------------------------------------ *)
(* sharded event store                                                  *)
(* ------------------------------------------------------------------ *)

(* a traffic pattern with every ingredient that could expose a shard
   dependence: random fan-out (so messages cross shard boundaries),
   handlers that send onward (FIFO-clamp inserts into open windows),
   and timers interleaved with deliveries *)
let shard_trace ~shards ~seed =
  let n = 30 in
  let net = Sim.create ~seed ~shards ~nodes:n ~delay:(Sim.Uniform (0.2, 1.8)) () in
  let log = ref [] in
  Sim.set_trace net (Some (fun at ~src ~dst m -> log := (at, src, dst, m) :: !log));
  Sim.set_handler net (fun ~src ~dst m ->
      if m > 0 then begin
        Sim.send net ~src:dst ~dst:((dst + m) mod n) (m - 1);
        Sim.send net ~src:dst ~dst:src (m / 2)
      end);
  for i = 0 to n - 1 do
    Sim.send net ~src:i ~dst:((i * 7) mod n) 4
  done;
  Sim.schedule net ~delay:1.5 (fun () -> Sim.send net ~src:0 ~dst:(n / 2) 3);
  Sim.run net;
  ( List.rev !log,
    Sim.messages_sent net,
    Sim.messages_delivered net,
    Sim.now net )

let test_shards_bit_identical () =
  let reference = shard_trace ~shards:1 ~seed:99 in
  List.iter
    (fun shards ->
      Alcotest.(check bool)
        (Printf.sprintf "shards=%d reproduces the sequential trace" shards)
        true
        (shard_trace ~shards ~seed:99 = reference))
    [ 2; 3; 4; 7; 30 ]

let test_shard_count_clamped () =
  let net : int Sim.t = Sim.create ~shards:16 ~nodes:5 ~delay:Sim.Unit () in
  Alcotest.(check int) "clamped to nodes" 5 (Sim.shard_count net);
  let net2 : int Sim.t = Sim.create ~nodes:5 ~delay:Sim.Unit () in
  Alcotest.(check int) "default is one shard" 1 (Sim.shard_count net2)

let test_shard_rejections () =
  Alcotest.check_raises "zero shards"
    (Invalid_argument "Simnet.create: shards must be positive") (fun () ->
      ignore (Sim.create ~shards:0 ~nodes:2 ~delay:Sim.Unit () : int Sim.t))

let test_same_timestamp_batch_order () =
  (* deliveries sharing one timestamp must drain in send (seq) order —
     the mailbox batching must not perturb the (at, seq) total order.
     Distinct links, so the FIFO clamp leaves all arrivals at exactly
     the unit delay and the whole burst is one timestamp *)
  let net = Sim.create ~nodes:21 ~delay:Sim.Unit () in
  let got = ref [] in
  Sim.set_handler net (fun ~src:_ ~dst:_ m -> got := m :: !got);
  for i = 1 to 20 do
    Sim.send net ~src:0 ~dst:i i
  done;
  Sim.run net;
  Alcotest.(check (list int)) "seq order within the batch"
    (List.init 20 (fun i -> 20 - i))
    !got;
  Alcotest.(check (float 1e-9)) "all at unit time" 1.0 (Sim.now net)

let test_footprint_tracks_live_events () =
  (* sustained traffic through one simulator: the event store, message
     arena and link-clock table must track the in-flight population,
     not the total traffic that ever passed through *)
  let net = Sim.create ~nodes:20 ~delay:(Sim.Uniform (0.5, 1.5)) () in
  Sim.set_handler net (fun ~src:_ ~dst:_ _ -> ());
  let wave () =
    for i = 0 to 19 do
      Sim.send net ~src:i ~dst:((i + 1) mod 20) i
    done;
    Sim.run net
  in
  for _ = 1 to 100 do wave () done;
  let warm = Sim.footprint_words net in
  for _ = 1 to 400 do wave () done;
  let after = Sim.footprint_words net in
  (* 400 extra waves push 8_000 more events through the net; a per-event
     leak (the old per-message Hashtbl side-table) would add tens of
     thousands of words.  Amortized capacity ripening of the wheel and
     arenas is allowed, a traffic-proportional slope is not *)
  Alcotest.(check bool)
    (Printf.sprintf "footprint bounded under sustained traffic (%d -> %d words)"
       warm after)
    true (after <= 2 * warm)

let suite =
  [
    Alcotest.test_case "single delivery" `Quick test_single_delivery;
    Alcotest.test_case "handler chaining" `Quick test_handler_chaining;
    Alcotest.test_case "fifo ordering" `Quick test_fifo_ordering;
    Alcotest.test_case "non-fifo reorders" `Quick test_no_fifo_can_reorder;
    Alcotest.test_case "schedule" `Quick test_schedule;
    Alcotest.test_case "run_until" `Quick test_run_until;
    Alcotest.test_case "step" `Quick test_step;
    Alcotest.test_case "drop faults" `Quick test_drop_faults;
    Alcotest.test_case "duplicate faults" `Quick test_duplicate_faults;
    Alcotest.test_case "partial drop rate" `Quick test_partial_drop_rate;
    Alcotest.test_case "reorder faults" `Quick test_reorder_faults;
    Alcotest.test_case "crash blackholes" `Quick test_crash_blackholes;
    Alcotest.test_case "crash restart" `Quick test_crash_restart;
    Alcotest.test_case "trace" `Quick test_trace;
    Alcotest.test_case "send range check" `Quick test_send_range_check;
    Alcotest.test_case "no handler fails" `Quick test_no_handler_fails;
    Alcotest.test_case "exponential delay" `Quick test_exponential_delay_positive;
    Alcotest.test_case "per-link delay" `Quick test_per_link_delay;
    Alcotest.test_case "shards bit-identical" `Quick test_shards_bit_identical;
    Alcotest.test_case "shard count clamped" `Quick test_shard_count_clamped;
    Alcotest.test_case "shard rejections" `Quick test_shard_rejections;
    Alcotest.test_case "same-timestamp batch order" `Quick
      test_same_timestamp_batch_order;
    Alcotest.test_case "footprint tracks live events" `Quick
      test_footprint_tracks_live_events;
  ]
