module Guard = Owp_core.Guard

(* node 0's neighbours are 1 and 2; node 3 is a stranger *)
let g4 = Graph.of_edge_list 4 [ (0, 1); (0, 2); (1, 2) ]

let mk ?config ?bound () = Guard.create ?config ?bound ~graph:g4 ~me:0 ()

let prop ?(epoch = 0) claim = { Guard.epoch; body = Guard.Prop { claim } }
let rej ?(epoch = 0) () = { Guard.epoch; body = Guard.Rej }

let offence =
  Alcotest.testable
    (fun ppf o -> Format.pp_print_string ppf (Guard.offence_name o))
    ( = )

let check_verdict name (v : Guard.verdict) ~accept ~offence:o ~quarantine =
  Alcotest.(check bool) (name ^ " accept") accept v.Guard.accept;
  Alcotest.(check (option offence)) (name ^ " offence") o v.Guard.offence;
  Alcotest.(check bool) (name ^ " quarantine") quarantine v.Guard.quarantine

let test_legal_traffic () =
  let t = mk () in
  check_verdict "prop from 1"
    (Guard.inspect t ~peer:1 (prop 0.4))
    ~accept:true ~offence:None ~quarantine:false;
  check_verdict "rej from 2"
    (Guard.inspect t ~peer:2 (rej ()))
    ~accept:true ~offence:None ~quarantine:false;
  Alcotest.(check (list (pair int offence))) "no offences" [] (Guard.offences t);
  Alcotest.(check (list int)) "no quarantines" [] (Guard.quarantined_peers t)

let test_one_message_per_link () =
  (* the guard enforces the derived invariant: an honest LID peer sends
     at most one protocol message per directed link, ever *)
  let cases =
    [
      ("duplicate prop", prop 0.4, prop 0.4, Guard.Duplicate_prop);
      ("rej after prop", prop 0.4, rej (), Guard.Rej_after_prop);
      ("prop after rej", rej (), prop 0.4, Guard.Prop_after_rej);
      ("duplicate rej", rej (), rej (), Guard.Duplicate_rej);
    ]
  in
  List.iter
    (fun (name, first, second, expected) ->
      let t = mk () in
      check_verdict (name ^ " (setup)")
        (Guard.inspect t ~peer:1 first)
        ~accept:true ~offence:None ~quarantine:false;
      check_verdict name
        (Guard.inspect t ~peer:1 second)
        ~accept:false ~offence:(Some expected) ~quarantine:true;
      Alcotest.(check bool) (name ^ " quarantined") true (Guard.quarantined t ~peer:1);
      (* all further traffic from a quarantined peer is dropped silently *)
      check_verdict (name ^ " dropped")
        (Guard.inspect t ~peer:1 (prop 0.1))
        ~accept:false ~offence:None ~quarantine:false)
    cases

let test_stranger_and_stale_epoch () =
  let t = mk () in
  check_verdict "stranger"
    (Guard.inspect t ~peer:3 (prop 0.4))
    ~accept:false ~offence:(Some Guard.Stranger) ~quarantine:true;
  let t = mk () in
  check_verdict "stale epoch"
    (Guard.inspect t ~peer:1 (prop ~epoch:(-1) 0.4))
    ~accept:false ~offence:(Some Guard.Stale_epoch) ~quarantine:true

let test_overclaim_bound () =
  (* peers' halves obey the public structural bound 1/b *)
  let t = mk ~bound:(fun _ -> 0.5) () in
  check_verdict "within bound"
    (Guard.inspect t ~peer:1 (prop 0.5))
    ~accept:true ~offence:None ~quarantine:false;
  check_verdict "over bound"
    (Guard.inspect t ~peer:2 (prop 0.500001))
    ~accept:false ~offence:(Some Guard.Overclaim) ~quarantine:true

let test_advert_pinning () =
  let t = mk ~bound:(fun _ -> 0.5) () in
  check_verdict "advert accepted"
    (Guard.on_advert t ~peer:1 ~claim:0.4)
    ~accept:true ~offence:None ~quarantine:false;
  check_verdict "consistent claim"
    (Guard.inspect t ~peer:1 (prop 0.4))
    ~accept:true ~offence:None ~quarantine:false;
  let t = mk ~bound:(fun _ -> 0.5) () in
  ignore (Guard.on_advert t ~peer:1 ~claim:0.4);
  check_verdict "contradicting claim"
    (Guard.inspect t ~peer:1 (prop 0.3))
    ~accept:false ~offence:(Some Guard.Claim_mismatch) ~quarantine:true

let test_advert_overclaim () =
  let t = mk ~bound:(fun _ -> 0.5) () in
  check_verdict "lying advert"
    (Guard.on_advert t ~peer:1 ~claim:0.75)
    ~accept:false ~offence:(Some Guard.Overclaim) ~quarantine:true;
  Alcotest.(check (list int)) "quarantined at bootstrap" [ 1 ]
    (Guard.quarantined_peers t)

let test_score_threshold () =
  let config = { Guard.default_config with quarantine_threshold = 2.0 } in
  let t = mk ~config () in
  ignore (Guard.inspect t ~peer:1 (prop 0.4));
  check_verdict "first offence tolerated"
    (Guard.inspect t ~peer:1 (prop 0.4))
    ~accept:false ~offence:(Some Guard.Duplicate_prop) ~quarantine:false;
  Alcotest.(check (float 1e-9)) "score" 1.0 (Guard.score t ~peer:1);
  check_verdict "second offence crosses"
    (Guard.inspect t ~peer:1 (prop 0.4))
    ~accept:false ~offence:(Some Guard.Duplicate_prop) ~quarantine:true

let test_flood_limit () =
  let config =
    { Guard.default_config with quarantine_threshold = 100.0; flood_limit = 3 }
  in
  let t = mk ~config () in
  for _ = 1 to 3 do
    ignore (Guard.inspect t ~peer:1 (prop 0.4))
  done;
  check_verdict "budget exhausted"
    (Guard.inspect t ~peer:1 (prop 0.4))
    ~accept:false ~offence:(Some Guard.Flood) ~quarantine:false

let test_copy_and_fingerprint () =
  let t = mk () in
  ignore (Guard.inspect t ~peer:1 (prop 0.4));
  let c = Guard.copy t in
  Alcotest.(check string) "copy preserves state" (Guard.fingerprint t)
    (Guard.fingerprint c);
  ignore (Guard.inspect t ~peer:1 (prop 0.4));
  Alcotest.(check bool) "quarantine changes fingerprint" false
    (String.equal (Guard.fingerprint t) (Guard.fingerprint c));
  Alcotest.(check bool) "copy unaffected" false (Guard.quarantined c ~peer:1);
  Alcotest.(check bool) "original quarantined" true (Guard.quarantined t ~peer:1)

let test_offence_counts () =
  let t = mk () in
  ignore (Guard.inspect t ~peer:1 (prop 0.4));
  ignore (Guard.inspect t ~peer:1 (prop 0.4));
  ignore (Guard.inspect t ~peer:3 (rej ()));
  Alcotest.(check (list (pair string int)))
    "aggregated"
    [ ("duplicate-prop", 1); ("stranger", 1) ]
    (Guard.offence_counts t)

let suite =
  [
    Alcotest.test_case "legal traffic passes" `Quick test_legal_traffic;
    Alcotest.test_case "one message per link" `Quick test_one_message_per_link;
    Alcotest.test_case "stranger + stale epoch" `Quick test_stranger_and_stale_epoch;
    Alcotest.test_case "overclaim vs 1/b bound" `Quick test_overclaim_bound;
    Alcotest.test_case "advert pinning" `Quick test_advert_pinning;
    Alcotest.test_case "advert overclaim" `Quick test_advert_overclaim;
    Alcotest.test_case "score threshold" `Quick test_score_threshold;
    Alcotest.test_case "flood limit" `Quick test_flood_limit;
    Alcotest.test_case "copy + fingerprint" `Quick test_copy_and_fingerprint;
    Alcotest.test_case "offence counts" `Quick test_offence_counts;
  ]
