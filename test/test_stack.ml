(* The layered stack against its references.

   The stack's claim is compositional faithfulness: with no middleware
   enabled it IS plain LID (bit-identical, not merely equivalent), with
   only the transport enabled it IS the reliable driver's convergence
   behaviour, and the historic driver configurations (robust,
   reliable, byzantine) add no protocol logic of their own — the
   PROP/REJ transitions exist in lid.ml and nowhere else. *)

module Lid = Owp_core.Lid
module Lic = Owp_core.Lic
module Stack = Owp_core.Stack
module BM = Owp_matching.Bmatching
module Sim = Owp_simnet.Simnet
module Prng = Owp_util.Prng

let random_instance seed n avg_deg quota =
  let rng = Prng.create seed in
  let m = n * avg_deg / 2 in
  let g = Gen.gnm rng ~n ~m in
  let p = Preference.random rng g ~quota:(Preference.uniform_quota g quota) in
  let w = Weights.of_preference p in
  let capacity = Array.init n (Preference.quota p) in
  (g, p, w, capacity)

(* ------------------------------------------------------------------ *)
(* zero middleware = plain Lid.run, bit for bit                        *)
(* ------------------------------------------------------------------ *)

let prop_zero_middleware_bit_identical =
  (* payload contents never touch the simulator's RNG, so an identical
     Simnet.send call order means identical delay samples: the stack
     with every layer disabled must replay Lid.run exactly — same
     matching, same PROP/REJ counts, same virtual completion time *)
  QCheck2.Test.make ~name:"stack with zero middleware is bit-identical to Lid.run"
    ~count:100
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let _, _, w, capacity = random_instance seed 24 6 2 in
      let plain = Lid.run ~seed w ~capacity in
      let r = Stack.run ~seed w ~capacity in
      BM.equal plain.Lid.matching r.Stack.matching
      && plain.Lid.prop_count = r.Stack.prop_count
      && plain.Lid.rej_count = r.Stack.rej_count
      && plain.Lid.completion_time = r.Stack.completion_time
      && plain.Lid.all_terminated = r.Stack.all_terminated)

let test_zero_middleware_layer_table () =
  let _, _, w, capacity = random_instance 3 16 5 2 in
  let r = Stack.run ~seed:3 w ~capacity in
  let names = List.map (fun l -> l.Stack.layer) r.Stack.layers in
  (* only the always-on layers appear; transport/adversary/guard rows
     exist exactly when enabled *)
  List.iter
    (fun l -> Alcotest.(check bool) (l ^ " row present") true (List.mem l names))
    [ "lid"; "detector"; "dedup"; "channel" ];
  List.iter
    (fun l -> Alcotest.(check bool) (l ^ " row absent") false (List.mem l names))
    [ "transport"; "adversary"; "guard" ];
  Alcotest.(check int) "lid row counts props" r.Stack.prop_count
    (Stack.counter r ~layer:"lid" "prop");
  Alcotest.(check (float 1e-9)) "no transport: overhead 1.0" 1.0 (Stack.overhead r)

(* ------------------------------------------------------------------ *)
(* transport-only = the reliable configuration's E21a convergence rows *)
(* ------------------------------------------------------------------ *)

let test_transport_only_reproduces_e21_rows () =
  (* the E21a acceptance grid (loss x delivery order): every row must
     terminate with exactly LIC's edge set when the only middleware is
     the ARQ transport *)
  let _, _, w, capacity = random_instance 21 20 6 2 in
  let lic = Lic.run w ~capacity in
  List.iter
    (fun (drop, fifo) ->
      let faults = Sim.faults ~drop () in
      let r = Stack.run ~seed:3 ~fifo ~faults ~reliable:true w ~capacity in
      let label = Printf.sprintf "drop=%.1f fifo=%b" drop fifo in
      Alcotest.(check bool) (label ^ ": terminates") true r.Stack.all_terminated;
      Alcotest.(check bool) (label ^ ": = LIC") true (BM.equal r.Stack.matching lic);
      if drop > 0.0 then
        Alcotest.(check bool)
          (label ^ ": retransmissions visible")
          true
          (Stack.counter r ~layer:"transport" "retransmissions" > 0))
    [ (0.0, true); (0.1, true); (0.3, true); (0.0, false); (0.3, false) ]

(* ------------------------------------------------------------------ *)
(* the robust configuration is Lid behind layers, not a second machine *)
(* ------------------------------------------------------------------ *)

let test_robust_config_is_plain_lid_behaviour () =
  (* with no silent peers the robust configuration must reproduce plain
     LID's matching: it is Lid.init/Lid.deliver behind (inactive)
     layers, so the patience timers never fire and nothing diverges *)
  let _, _, w, capacity = random_instance 31 25 6 2 in
  let lid = Lid.run ~seed:9 w ~capacity in
  let r = Stack.run ~seed:9 ~patience:10.0 ~silent:(Array.make 25 false) w ~capacity in
  Alcotest.(check bool) "same matching" true (BM.equal lid.Lid.matching r.Stack.matching);
  Alcotest.(check int) "no patience fired" 0
    (Stack.counter r ~layer:"detector" "patience-fired");
  Alcotest.(check int) "no synthetic rejects" 0 r.Stack.synthetic_rejects

let test_no_second_state_machine_in_tree () =
  (* the textual grep of earlier revisions, now the typed state-machine
     lint rule over the core library's .cmt files: u_set/a_set/k_set may
     be *defined* only in lid.ml, while driving Lid's state through its
     API (which the grep could not distinguish) stays legal *)
  let candidates =
    [
      "../lib/core/.owp_core.objs/byte";
      "lib/core/.owp_core.objs/byte";
      "_build/default/lib/core/.owp_core.objs/byte";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | None -> () (* core .cmt dir not reachable from the runner; the rule
                  itself is exercised by the lint fixtures *)
  | Some root -> (
      match
        Owp_lint.Driver.run ~only:[ "state-machine" ] ~roots:[ root ] ()
      with
      | Error msg -> Alcotest.fail msg
      | Ok r ->
          Alcotest.(check (list string))
            "no LID transition state outside lid.ml" []
            (List.map
               (fun f -> Format.asprintf "%a" Owp_lint.Finding.pp f)
               r.Owp_lint.Driver.findings))

(* ------------------------------------------------------------------ *)
(* composition smoke: all layers at once stay coherent                 *)
(* ------------------------------------------------------------------ *)

let test_full_composition_coherent () =
  (* guarded liars over a lossy reordering channel with ARQ underneath:
     correct peers terminate, damage certifies, and every enabled layer
     reports a row *)
  let _, p, w, capacity = random_instance 41 30 6 2 in
  let n = Graph.node_count (Preference.graph p) in
  let adversaries =
    Owp_simnet.Adversary.assign (Prng.create 41) ~n
      (Owp_simnet.Adversary.parse_spec "liar:0.2")
  in
  let faults = Sim.faults ~drop:0.1 ~reorder:0.2 () in
  let r =
    Stack.run ~seed:41 ~fifo:false ~faults ~reliable:true ~adversaries ~guard:true
      ~prefs:p w ~capacity
  in
  Alcotest.(check bool) "correct peers terminate" true r.Stack.all_terminated;
  Alcotest.(check (list string)) "damage certifies" []
    (List.map (fun v -> v.Owp_check.Violation.checker) r.Stack.damage);
  Alcotest.(check int) "precision" 0 r.Stack.false_quarantines;
  let names = List.map (fun l -> l.Stack.layer) r.Stack.layers in
  List.iter
    (fun l -> Alcotest.(check bool) (l ^ " row present") true (List.mem l names))
    [ "lid"; "detector"; "adversary"; "guard"; "dedup"; "transport"; "channel" ]

(* ------------------------------------------------------------------ *)
(* sharded event store: bit-identity through the full composition      *)
(* ------------------------------------------------------------------ *)

module Schedule = Owp_simnet.Schedule

(* everything a run produced that a scheduling difference could perturb
   (completion_time is a float, but never NaN, so polymorphic equality
   is exact) *)
let report_digest (r : Stack.report) =
  ( BM.edge_ids r.Stack.matching,
    (r.Stack.prop_count, r.Stack.rej_count, r.Stack.synthetic_rejects),
    r.Stack.completion_time,
    r.Stack.all_terminated,
    (match r.Stack.cutoff with
    | Some c -> (c.Stack.cut_at, c.Stack.released, c.Stack.abandoned)
    | None -> (0.0, -1, -1)),
    List.map (fun { Stack.layer; counters } -> (layer, counters)) r.Stack.layers )

let prop_shards_bit_identical_full_composition =
  (* space-partitioning the event store must be invisible: with every
     layer enabled at once (lossy reordering channel + ARQ + scheduled
     weather + guarded liars + an anytime deadline), shards 2 and 4
     must replay the sequential run bit for bit — same edge set, same
     counters in every layer row, same virtual completion time *)
  QCheck2.Test.make
    ~name:"full composition is bit-identical for sim_shards 1/2/4" ~count:100
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let _, p, w, capacity = random_instance seed 40 6 2 in
      let n = Graph.node_count (Preference.graph p) in
      let adversaries =
        Owp_simnet.Adversary.assign (Prng.create seed) ~n
          (Owp_simnet.Adversary.parse_spec "liar:0.2")
      in
      let weather =
        [
          { Schedule.from_ = 2.0; until = 5.0; what = Schedule.Burst 0.4 };
          { Schedule.from_ = 4.0; until = 7.0; what = Schedule.Link_down [ (0, 1) ] };
        ]
      in
      let run sim_shards =
        report_digest
          (Stack.run ~seed ~fifo:false
             ~faults:(Sim.faults ~drop:0.05 ~reorder:0.1 ())
             ~schedule:weather ~reliable:true ~sim_shards ~deadline:6.0
             ~adversaries ~guard:true ~prefs:p w ~capacity)
      in
      let reference = run 1 in
      run 2 = reference && run 4 = reference)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_zero_middleware_bit_identical;
    Alcotest.test_case "zero-middleware layer table" `Quick
      test_zero_middleware_layer_table;
    Alcotest.test_case "transport-only = E21a grid" `Quick
      test_transport_only_reproduces_e21_rows;
    Alcotest.test_case "robust config = plain LID" `Quick
      test_robust_config_is_plain_lid_behaviour;
    Alcotest.test_case "no second state machine" `Quick
      test_no_second_state_machine_in_tree;
    Alcotest.test_case "full composition coherent" `Quick test_full_composition_coherent;
    QCheck_alcotest.to_alcotest prop_shards_bit_identical_full_composition;
  ]
