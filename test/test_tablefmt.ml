module Tbl = Owp_util.Tablefmt

let test_render_shape () =
  let t = Tbl.create ~title:"T" [ ("a", Tbl.Left); ("bb", Tbl.Right) ] in
  Tbl.add_row t [ "x"; "1" ];
  Tbl.add_row t [ "yy"; "22" ];
  let s = Tbl.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  (* title + 3 rules + header + 2 rows *)
  Alcotest.(check int) "line count" 7 (List.length lines);
  let widths = List.map String.length lines in
  let data_widths = List.tl widths in
  Alcotest.(check bool) "aligned" true
    (List.for_all (fun w -> w = List.hd data_widths) data_widths)

let test_arity_error () =
  let t = Tbl.create [ ("a", Tbl.Left) ] in
  Alcotest.check_raises "arity" (Invalid_argument "Tablefmt.add_row: arity mismatch")
    (fun () -> Tbl.add_row t [ "x"; "y" ])

let test_alignment () =
  let t = Tbl.create [ ("l", Tbl.Left); ("r", Tbl.Right) ] in
  Tbl.add_row t [ "ab"; "cd" ];
  Tbl.add_row t [ "a"; "c" ];
  let s = Tbl.render t in
  Alcotest.(check bool) "left pads right side" true
    (String.length s > 0 &&
     (* the short left cell is followed by a space, the short right cell
        is preceded by one *)
     let re_contains sub =
       let rec go i = i + String.length sub <= String.length s && (String.sub s i (String.length sub) = sub || go (i+1)) in
       go 0
     in
     re_contains "| a  |" && re_contains "|  c |")

let test_separator_and_rows () =
  let t = Tbl.create [ ("c", Tbl.Left) ] in
  Tbl.add_rows t [ [ "1" ]; [ "2" ] ];
  Tbl.add_separator t;
  Tbl.add_row t [ "3" ];
  let s = Tbl.render t in
  let rules = List.filter (fun l -> l <> "" && l.[0] = '+') (String.split_on_char '\n' s) in
  Alcotest.(check int) "4 rules" 4 (List.length rules)

let test_cells () =
  Alcotest.(check string) "fcell" "1.2346" (Tbl.fcell 1.23456);
  Alcotest.(check string) "fcell2" "1.23" (Tbl.fcell2 1.234);
  Alcotest.(check string) "icell" "42" (Tbl.icell 42);
  Alcotest.(check string) "pct" "12.5%" (Tbl.pct 0.125)

let test_to_json () =
  let t = Tbl.create ~title:"E0 \"demo\"" [ ("name", Tbl.Left); ("n", Tbl.Right); ("sat", Tbl.Right) ] in
  Tbl.add_row t [ "gnm"; "100"; "51.7%" ];
  Tbl.add_separator t;
  Tbl.add_row t [ "grid"; "64"; "0.4000" ];
  let j = Tbl.to_json t in
  let contains sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length j && (String.sub j i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "title escaped" true (contains "\"title\": \"E0 \\\"demo\\\"\"");
  Alcotest.(check bool) "columns listed" true (contains "\"columns\": [\"name\", \"n\", \"sat\"]");
  Alcotest.(check bool) "ints bare" true (contains "\"n\": 100");
  Alcotest.(check bool) "percent becomes ratio" true (contains "\"sat\": 0.517");
  Alcotest.(check bool) "floats bare" true (contains "\"sat\": 0.4000");
  Alcotest.(check bool) "strings quoted" true (contains "\"name\": \"gnm\"");
  Alcotest.(check bool) "separator dropped" true (not (contains "---"))

let suite =
  [
    Alcotest.test_case "render shape" `Quick test_render_shape;
    Alcotest.test_case "to_json" `Quick test_to_json;
    Alcotest.test_case "arity error" `Quick test_arity_error;
    Alcotest.test_case "alignment" `Quick test_alignment;
    Alcotest.test_case "separator and rows" `Quick test_separator_and_rows;
    Alcotest.test_case "cell formatting" `Quick test_cells;
  ]
