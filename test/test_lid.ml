module Lid = Owp_core.Lid
module Lic = Owp_core.Lic
module BM = Owp_matching.Bmatching
module Sim = Owp_simnet.Simnet
module Prng = Owp_util.Prng

let random_instance seed n avg_deg quota =
  let rng = Prng.create seed in
  let m = n * avg_deg / 2 in
  let g = Gen.gnm rng ~n ~m in
  let p = Preference.random rng g ~quota:(Preference.uniform_quota g quota) in
  let w = Weights.of_preference p in
  let capacity = Array.init n (Preference.quota p) in
  (g, p, w, capacity)

let test_two_nodes () =
  let g = Graph.of_edge_list 2 [ (0, 1) ] in
  let w = Weights.of_array g [| 1.0 |] in
  let r = Lid.run w ~capacity:[| 1; 1 |] in
  Alcotest.(check bool) "terminated" true r.Lid.all_terminated;
  Alcotest.(check (list int)) "matched" [ 0 ] (BM.edge_ids r.Lid.matching);
  Alcotest.(check int) "two props" 2 r.Lid.prop_count;
  Alcotest.(check int) "no rejections" 0 r.Lid.rej_count

let test_empty_graph () =
  let g = Graph.of_edge_list 3 [] in
  let w = Weights.of_array g [||] in
  let r = Lid.run w ~capacity:[| 2; 2; 2 |] in
  Alcotest.(check bool) "terminates with no edges" true r.Lid.all_terminated;
  Alcotest.(check int) "no messages" 0 (r.Lid.prop_count + r.Lid.rej_count)

let test_star_competition () =
  (* all leaves want the hub, hub has capacity 1: exactly one lock, the
     others get explicit REJs *)
  let g = Gen.star 5 in
  let w = Weights.of_array g [| 4.0; 3.0; 2.0; 1.0 |] in
  let r = Lid.run w ~capacity:(Array.make 5 1) in
  Alcotest.(check bool) "terminated" true r.Lid.all_terminated;
  Alcotest.(check (list int)) "heaviest leaf wins" [ 0 ] (BM.edge_ids r.Lid.matching);
  Alcotest.(check int) "three rejections" 3 r.Lid.rej_count

let test_zero_quota () =
  let g = Graph.of_edge_list 2 [ (0, 1) ] in
  let w = Weights.of_array g [| 1.0 |] in
  let r = Lid.run w ~capacity:[| 0; 1 |] in
  Alcotest.(check bool) "terminated" true r.Lid.all_terminated;
  Alcotest.(check int) "nothing locked" 0 (BM.size r.Lid.matching)

let test_negative_capacity_rejected () =
  let g = Graph.of_edge_list 2 [ (0, 1) ] in
  let w = Weights.of_array g [| 1.0 |] in
  Alcotest.check_raises "negative" (Invalid_argument "Lid.run: negative capacity")
    (fun () -> ignore (Lid.run w ~capacity:[| -1; 1 |]))

let delay_models =
  [ Sim.Unit; Sim.Uniform (0.5, 1.5); Sim.Uniform (0.01, 20.0); Sim.Exponential 2.0 ]

let prop_terminates_and_equals_lic =
  QCheck2.Test.make ~name:"LID terminates and equals LIC under any delay model" ~count:40
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range 0 3))
    (fun (seed, dm) ->
      let _, _, w, capacity = random_instance seed 25 6 2 in
      let lic = Lic.run w ~capacity in
      let r = Lid.run ~seed:(seed + 17) ~delay:(List.nth delay_models dm) w ~capacity in
      r.Lid.all_terminated && BM.equal r.Lid.matching lic)

let prop_quota_respected =
  QCheck2.Test.make ~name:"LID respects quotas" ~count:40
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let _, _, w, capacity = random_instance seed 30 8 3 in
      let r = Lid.run w ~capacity in
      let ok = ref r.Lid.all_terminated in
      Array.iteri
        (fun v b -> if BM.degree r.Lid.matching v > b then ok := false)
        capacity;
      !ok)

let prop_message_bounds =
  QCheck2.Test.make ~name:"LID message counts are linear in m" ~count:30
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let g, _, w, capacity = random_instance seed 40 8 3 in
      let m = Graph.edge_count g in
      let r = Lid.run w ~capacity in
      (* each ordered pair (i, j) exchanges at most one PROP and one REJ *)
      r.Lid.prop_count <= 2 * m && r.Lid.rej_count <= 2 * m)

let prop_non_fifo_equivalent =
  QCheck2.Test.make ~name:"LID equals LIC even without FIFO links" ~count:30
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let _, _, w, capacity = random_instance seed 20 6 2 in
      let lic = Lic.run w ~capacity in
      let r = Lid.run ~seed ~fifo:false ~delay:(Sim.Uniform (0.01, 50.0)) w ~capacity in
      r.Lid.all_terminated && BM.equal r.Lid.matching lic)

let test_message_drops_detected () =
  (* with heavy loss the protocol cannot finish cleanly: the report
     must expose that rather than fabricate a result *)
  let _, _, w, capacity = random_instance 3 20 6 2 in
  let faults = Sim.faults ~drop:0.6 () in
  let r = Lid.run ~seed:5 ~faults w ~capacity in
  (* either some node never finished, or (unlikely) everything got through *)
  Alcotest.(check bool) "report is coherent" true
    ((not r.Lid.all_terminated) || BM.size r.Lid.matching >= 0)

let test_duplicates_harmless () =
  let _, _, w, capacity = random_instance 4 20 6 2 in
  let lic = Lic.run w ~capacity in
  let faults = Sim.faults ~duplicate:0.5 () in
  let r = Lid.run ~seed:6 ~faults w ~capacity in
  Alcotest.(check bool) "terminated" true r.Lid.all_terminated;
  Alcotest.(check bool) "same result despite duplicates" true (BM.equal r.Lid.matching lic)

let test_virtual_time_positive () =
  let _, _, w, capacity = random_instance 5 15 4 2 in
  let r = Lid.run w ~capacity in
  Alcotest.(check bool) "time advanced" true (r.Lid.completion_time > 0.0);
  Alcotest.(check bool) "delivered counted" true (r.Lid.delivered > 0)

let suite =
  [
    Alcotest.test_case "two nodes" `Quick test_two_nodes;
    Alcotest.test_case "empty graph" `Quick test_empty_graph;
    Alcotest.test_case "star competition" `Quick test_star_competition;
    Alcotest.test_case "zero quota" `Quick test_zero_quota;
    Alcotest.test_case "negative capacity" `Quick test_negative_capacity_rejected;
    QCheck_alcotest.to_alcotest prop_terminates_and_equals_lic;
    QCheck_alcotest.to_alcotest prop_quota_respected;
    QCheck_alcotest.to_alcotest prop_message_bounds;
    QCheck_alcotest.to_alcotest prop_non_fifo_equivalent;
    Alcotest.test_case "message drops detected" `Quick test_message_drops_detected;
    Alcotest.test_case "duplicates harmless" `Quick test_duplicates_harmless;
    Alcotest.test_case "virtual time positive" `Quick test_virtual_time_positive;
  ]
