(* The fault-schedule spec language and episode semantics.

   The schedule is the input language of the chaos tooling, so the
   parser/printer pair gets the same treatment as the faults spec: a
   QCheck round-trip property over random schedules (to_string must
   re-parse to an equal record), line-item parse examples for each
   episode kind, validation rejections, and direct checks of the
   time-indexed semantics (active/outage/end_time/down_spans).  The
   faults spec round-trip property rides here too — both specs travel
   together on the CLI. *)

module Schedule = Owp_simnet.Schedule
module Faults = Owp_simnet.Faults
module Prng = Owp_util.Prng

let ep from_ until what = { Schedule.from_; until; what }

(* ------------------------------------------------------------------ *)
(* parse examples                                                      *)
(* ------------------------------------------------------------------ *)

let parse s =
  match Schedule.of_string s with
  | Ok t -> t
  | Error e -> Alcotest.failf "%s: %s" s e

let test_parse_examples () =
  (match parse "part:0.1|2.3@2-6" with
  | [ { Schedule.from_; until; what = Schedule.Partition [ [ 0; 1 ]; [ 2; 3 ] ] } ] ->
      Alcotest.(check (float 1e-9)) "from" 2.0 from_;
      Alcotest.(check (float 1e-9)) "until" 6.0 until
  | _ -> Alcotest.fail "part:0.1|2.3@2-6 shape");
  (match parse "link:0.1@2-5" with
  | [ { Schedule.what = Schedule.Link_down [ (0, 1) ]; _ } ] -> ()
  | _ -> Alcotest.fail "link:0.1@2-5 shape");
  (match parse "flap:0.1:1.5:0.5@2-8" with
  | [ { Schedule.what = Schedule.Flap { links = [ (0, 1) ]; period; duty }; _ } ] ->
      Alcotest.(check (float 1e-9)) "period" 1.5 period;
      Alcotest.(check (float 1e-9)) "duty" 0.5 duty
  | _ -> Alcotest.fail "flap shape");
  (match parse "burst:0.9@3-4" with
  | [ { Schedule.what = Schedule.Burst p; _ } ] ->
      Alcotest.(check (float 1e-9)) "p" 0.9 p
  | _ -> Alcotest.fail "burst shape");
  (match parse "down:2.5@1-6" with
  | [ { Schedule.what = Schedule.Down [ 2; 5 ]; _ } ] -> ()
  | _ -> Alcotest.fail "down shape");
  Alcotest.(check int) "episodes compose with ;" 2
    (List.length (parse "part:0.1@2-6;burst:0.5@7-8"));
  Alcotest.(check bool) "none is empty" true (Schedule.is_empty (parse "none"));
  Alcotest.(check bool) "blank is empty" true (Schedule.is_empty (parse "  "))

let test_parse_rejections () =
  List.iter
    (fun s ->
      Alcotest.(check bool) s true (Result.is_error (Schedule.of_string s)))
    [
      "part:0.1";                (* no interval *)
      "part:0.1@6-2";            (* backwards interval *)
      "burst:1.5@1-2";           (* p out of range *)
      "flap:0.1:0:0.5@1-2";      (* non-positive period *)
      "flap:0.1:1:1.5@1-2";      (* duty out of range *)
      "link:0.0@1-2";            (* self-link *)
      "frobnicate:1@1-2";        (* unknown kind *)
      "down:3@1-5;down:3@4-8";   (* overlapping down spans for one node *)
      "part:@1-2";               (* empty group *)
    ]

(* ------------------------------------------------------------------ *)
(* round-trip property                                                 *)
(* ------------------------------------------------------------------ *)

(* the spec prints floats with %.12g for human-readable --schedule
   lines, so a round-trip property must draw floats that survive that:
   64ths are exact binary fractions with short decimal forms *)
let grid lo hi =
  QCheck2.Gen.(int_range lo hi >|= fun k -> float_of_int k /. 64.0)

(* a random valid schedule, drawn directly (not via Chaos.generate, so
   the test does not depend on the generator under test elsewhere) *)
let gen_schedule =
  let open QCheck2.Gen in
  let node = int_range 0 9 in
  let interval =
    pair (grid 0 640) (grid 1 320) >|= fun (t0, d) -> (t0, t0 +. d)
  in
  let link =
    pair node node >|= fun (u, v) -> if u = v then (u, (v + 1) mod 10) else (u, v)
  in
  let links = list_size (int_range 1 3) link >|= List.sort_uniq compare in
  let kind =
    oneof
      [
        (list_size (int_range 1 3) (list_size (int_range 1 3) node)
        >|= fun groups ->
         (* distinct nodes across groups, none empty *)
         let seen = Hashtbl.create 8 in
         let groups =
           List.filter_map
             (fun g ->
               match
                 List.filter
                   (fun v ->
                     if Hashtbl.mem seen v then false
                     else begin
                       Hashtbl.add seen v ();
                       true
                     end)
                   (List.sort_uniq compare g)
               with
               | [] -> None
               | g -> Some g)
             groups
         in
         if groups = [] then Schedule.Burst 0.5 else Schedule.Partition groups);
        (links >|= fun ls -> Schedule.Link_down ls);
        ( pair links (pair (grid 7 256) (grid 4 60))
        >|= fun (ls, (period, duty)) -> Schedule.Flap { links = ls; period; duty } );
        (grid 1 64 >|= fun p -> Schedule.Burst p);
        (node >|= fun v -> Schedule.Down [ v ]);
      ]
  in
  let episode = pair interval kind >|= fun ((f, u), w) -> ep f u w in
  list_size (int_range 1 4) episode >|= fun eps ->
  (* keep Down victims disjoint so the schedule validates *)
  let seen = Hashtbl.create 8 in
  List.filter
    (fun e ->
      match e.Schedule.what with
      | Schedule.Down [ v ] ->
          if Hashtbl.mem seen v then false
          else begin
            Hashtbl.add seen v ();
            true
          end
      | _ -> true)
    eps

let prop_schedule_round_trip =
  QCheck2.Test.make ~name:"to_string re-parses to an equal schedule" ~count:300
    gen_schedule (fun sched ->
      match Schedule.validate sched with
      | Error _ -> QCheck2.assume_fail ()
      | Ok sched -> (
          match Schedule.of_string (Schedule.to_string sched) with
          | Ok sched' -> Schedule.equal sched sched'
          | Error e -> QCheck2.Test.fail_reportf "re-parse failed: %s" e))

(* the faults spec gets the same property; dup= and duplicate= are
   alternative spellings of the same field *)
let gen_faults =
  let open QCheck2.Gen in
  let prob = grid 0 57 in
  map2
    (fun ((drop, duplicate), (reorder, crash)) (fifo, patience) ->
      Faults.make ~drop ~duplicate ~reorder ~crash ~fifo ?patience ())
    (pair (pair prob prob) (pair prob (grid 0 32)))
    (pair bool (option (grid 7 6400)))

let prop_faults_round_trip =
  QCheck2.Test.make ~name:"faults to_string re-parses to an equal record" ~count:300
    gen_faults (fun f ->
      match Faults.of_string (Faults.to_string f) with
      | Ok f' -> Faults.equal f f'
      | Error e -> QCheck2.Test.fail_reportf "re-parse failed: %s" e)

let test_faults_dup_spellings () =
  match (Faults.of_string "dup=0.25", Faults.of_string "duplicate=0.25") with
  | Ok a, Ok b ->
      Alcotest.(check bool) "dup= and duplicate= agree" true (Faults.equal a b);
      Alcotest.(check (float 1e-9)) "value" 0.25 a.Faults.duplicate
  | _ -> Alcotest.fail "both spellings must parse"

let test_default_crash_patience () =
  Alcotest.(check (float 1e-9)) "named constant" 60.0 Faults.default_crash_patience;
  Alcotest.(check bool) "crash arms the named default" true
    (Faults.effective_patience (Faults.make ~crash:0.1 ())
    = Some Faults.default_crash_patience)

(* ------------------------------------------------------------------ *)
(* semantics                                                           *)
(* ------------------------------------------------------------------ *)

let test_active_and_end_time () =
  let sched = parse "part:0.1@2-6;burst:0.5@7-8" in
  Alcotest.(check bool) "inactive before" false (Schedule.active sched ~at:1.9);
  Alcotest.(check bool) "active inside" true (Schedule.active sched ~at:2.0);
  Alcotest.(check bool) "half-open at until" false (Schedule.active sched ~at:6.0);
  Alcotest.(check bool) "gap between episodes" false (Schedule.active sched ~at:6.5);
  Alcotest.(check bool) "second episode" true (Schedule.active sched ~at:7.5);
  Alcotest.(check (float 1e-9)) "t_heal is the last until" 8.0
    (Schedule.end_time sched);
  Alcotest.(check (float 1e-9)) "empty heals at 0" 0.0 (Schedule.end_time [])

let test_partition_outage () =
  let sched = parse "part:0.1@2-6" in
  (* 0 and 1 share a block: no cut; 2 is in the implicit rest-block *)
  Alcotest.(check (float 1e-9)) "same block" 0.0
    (Schedule.outage sched ~at:3.0 ~src:0 ~dst:1);
  Alcotest.(check (float 1e-9)) "across blocks" 1.0
    (Schedule.outage sched ~at:3.0 ~src:0 ~dst:2);
  Alcotest.(check (float 1e-9)) "rest-block internal" 0.0
    (Schedule.outage sched ~at:3.0 ~src:2 ~dst:3);
  Alcotest.(check (float 1e-9)) "healed" 0.0
    (Schedule.outage sched ~at:6.0 ~src:0 ~dst:2)

let test_link_and_burst_outage () =
  let sched = parse "link:0.1@2-5;burst:0.7@3-4" in
  Alcotest.(check (float 1e-9)) "down link cut both ways" 1.0
    (Schedule.outage sched ~at:2.5 ~src:1 ~dst:0);
  Alcotest.(check (float 1e-9)) "other links clean" 0.0
    (Schedule.outage sched ~at:2.5 ~src:0 ~dst:2);
  Alcotest.(check (float 1e-9)) "burst is global" 0.7
    (Schedule.outage sched ~at:3.5 ~src:4 ~dst:5);
  Alcotest.(check (float 1e-9)) "cut dominates burst" 1.0
    (Schedule.outage sched ~at:3.5 ~src:0 ~dst:1)

let test_flap_outage () =
  let sched = parse "flap:0.1:2:0.5@2-10" in
  (* period 2, duty 0.5: down on [2,3), up on [3,4), down on [4,5)... *)
  Alcotest.(check (float 1e-9)) "down phase" 1.0
    (Schedule.outage sched ~at:2.5 ~src:0 ~dst:1);
  Alcotest.(check (float 1e-9)) "up phase" 0.0
    (Schedule.outage sched ~at:3.5 ~src:0 ~dst:1);
  Alcotest.(check (float 1e-9)) "down again next period" 1.0
    (Schedule.outage sched ~at:4.5 ~src:0 ~dst:1)

let test_down_spans () =
  let sched = parse "down:2.5@1-6;part:0.1@2-3" in
  Alcotest.(check bool) "crash plans from down episodes" true
    (Schedule.down_spans sched = [ (2, 1.0, 6.0); (5, 1.0, 6.0) ]);
  Alcotest.(check bool) "partitions contribute none" true
    (Schedule.down_spans (parse "part:0.1@2-3") = [])

let test_validate_against_n () =
  let sched = parse "part:0.7@1-2" in
  Alcotest.(check bool) "node id in range" true
    (Result.is_ok (Schedule.validate ~n:8 sched));
  Alcotest.(check bool) "node id out of range" true
    (Result.is_error (Schedule.validate ~n:7 sched))

let suite =
  [
    Alcotest.test_case "parse examples" `Quick test_parse_examples;
    Alcotest.test_case "parse rejections" `Quick test_parse_rejections;
    QCheck_alcotest.to_alcotest prop_schedule_round_trip;
    QCheck_alcotest.to_alcotest prop_faults_round_trip;
    Alcotest.test_case "dup/duplicate spellings" `Quick test_faults_dup_spellings;
    Alcotest.test_case "default crash patience is named" `Quick
      test_default_crash_patience;
    Alcotest.test_case "active windows and end_time" `Quick test_active_and_end_time;
    Alcotest.test_case "partition outage" `Quick test_partition_outage;
    Alcotest.test_case "link + burst outage" `Quick test_link_and_burst_outage;
    Alcotest.test_case "flap duty cycle" `Quick test_flap_outage;
    Alcotest.test_case "down episodes as crash plans" `Quick test_down_spans;
    Alcotest.test_case "validate against n" `Quick test_validate_against_n;
  ]
