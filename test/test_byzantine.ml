module Lid = Owp_core.Lid
module Lic = Owp_core.Lic
module Adversary = Owp_simnet.Adversary
module Byz = Owp_check.Byzantine
module Explore = Owp_check.Explore
module BM = Owp_matching.Bmatching
module Prng = Owp_util.Prng
module Stack = Owp_core.Stack

let violation =
  Alcotest.testable (fun ppf v -> Owp_check.Violation.pp ppf v) ( = )

let random_prefs seed n avg_deg quota =
  let rng = Prng.create seed in
  let m = n * avg_deg / 2 in
  let g = Gen.gnm rng ~n ~m in
  Preference.random rng g ~quota:(Preference.uniform_quota g quota)

(* the historic byzantine entry point: preference-level quotas and
   weights, seed 0xB12 and the guard on by default *)
let run_byz ?(seed = 0xB12) ?(guard = true) ~adversaries prefs =
  let n = Graph.node_count (Preference.graph prefs) in
  let capacity = Array.init n (Preference.quota prefs) in
  let w = Weights.of_preference prefs in
  Stack.run ~seed ~adversaries ~guard ~prefs w ~capacity

let roles seed prefs spec =
  let n = Graph.node_count (Preference.graph prefs) in
  Adversary.assign (Prng.create (seed * 7919)) ~n (Adversary.parse_spec spec)

(* ---------------- Adversary module ---------------- *)

let test_parse_spec () =
  (match Adversary.parse_spec "liar:0.2" with
  | [ (Adversary.Weight_liar _, f) ] -> Alcotest.(check (float 1e-9)) "frac" 0.2 f
  | _ -> Alcotest.fail "expected one liar entry");
  (match Adversary.parse_spec "equiv:0.1,flood:0.05" with
  | [ (Adversary.Equivocator, _); (Adversary.Flooder _, _) ] -> ()
  | _ -> Alcotest.fail "expected equivocator + flooder");
  let raises s =
    Alcotest.(check bool)
      (Printf.sprintf "%S rejected" s)
      true
      (try
         ignore (Adversary.parse_spec s);
         false
       with Invalid_argument _ -> true)
  in
  List.iter raises [ "nonsense:0.2"; "liar"; "liar:0"; "liar:1.5"; "liar:x" ]

let test_assign () =
  let rng = Prng.create 42 in
  let spec = [ (Adversary.Equivocator, 0.2); (Adversary.Replayer, 0.1) ] in
  let roles = Adversary.assign rng ~n:50 spec in
  let count p = Array.fold_left (fun a r -> if p r then a + 1 else a) 0 roles in
  Alcotest.(check int) "equivocators" 10 (count (( = ) (Some Adversary.Equivocator)));
  Alcotest.(check int) "replayers" 5 (count (( = ) (Some Adversary.Replayer)));
  Alcotest.(check int) "correct remain" 35 (count (( = ) None));
  Alcotest.check_raises "no correct node left"
    (Invalid_argument "Adversary.assign: 4 adversaries leave no correct node among 4")
    (fun () ->
      ignore (Adversary.assign (Prng.create 1) ~n:4 [ (Adversary.Replayer, 1.0) ]))

(* ---------------- honest baseline ---------------- *)

let test_honest_run_is_plain_lid () =
  (* with no adversaries the Byzantine driver is plain LID: perceived
     rankings from honest adverts are bit-identical to the true weight
     lists, so the locked edge set is LIC's (Lemma 6) *)
  List.iter
    (fun guard ->
      let prefs = random_prefs 7 40 6 2 in
      let n = Graph.node_count (Preference.graph prefs) in
      let r = run_byz ~guard ~adversaries:(Array.make n None) prefs in
      let w = Weights.of_preference prefs in
      let capacity = Array.init n (Preference.quota prefs) in
      let lic = Lic.run w ~capacity in
      Alcotest.(check bool) "terminated" true r.Stack.all_terminated;
      Alcotest.(check (list int))
        (Printf.sprintf "edge set = LIC (guard:%b)" guard)
        (BM.edge_ids lic) (BM.edge_ids r.Stack.matching);
      Alcotest.(check int) "no quarantines" 0 r.Stack.quarantine_events;
      Alcotest.(check int) "no adversary messages" 0 r.Stack.adversary_msgs;
      Alcotest.(check int) "no quiet rounds" 0 r.Stack.quiet_rounds;
      Alcotest.(check (list violation)) "damage clean" [] r.Stack.damage)
    [ true; false ]

(* ---------------- the bounded-damage acceptance property ---------------- *)

let test_guarded_bounded_damage_all_models () =
  (* guard on, any single model at 20%: every correct peer terminates,
     the restricted matching is feasible and locally heaviest on the
     correct subgraph, and no correct peer is ever quarantined *)
  List.iter
    (fun model ->
      let spec = Adversary.name model ^ ":0.2" in
      List.iter
        (fun seed ->
          let prefs = random_prefs seed 40 6 2 in
          let adversaries = roles seed prefs spec in
          let r = run_byz ~seed ~guard:true ~adversaries prefs in
          let label fmt = Printf.sprintf "%s seed %d: %s" spec seed fmt in
          Alcotest.(check bool)
            (label "all correct terminated")
            true r.Stack.all_terminated;
          Alcotest.(check (list violation)) (label "damage") [] r.Stack.damage;
          Alcotest.(check int) (label "no false quarantine") 0 r.Stack.false_quarantines)
        [ 1; 2; 3 ])
    Adversary.all_defaults

let test_unguarded_violator_starves () =
  (* the liveness-violating adversary never answers proposals; without
     the guard's quiet rounds the correct proposers starve, which is
     exactly the violation E22's baseline column shows *)
  let starved = ref false in
  for seed = 1 to 5 do
    let prefs = random_prefs seed 30 6 2 in
    let adversaries = roles seed prefs "violator:0.2" in
    let r = run_byz ~seed ~guard:false ~adversaries prefs in
    if not r.Stack.all_terminated then begin
      starved := true;
      Alcotest.(check bool)
        "damage checker reports the starvation" false (r.Stack.damage = [])
    end
  done;
  Alcotest.(check bool) "some unguarded run starves" true !starved

let test_guarded_liar_caught_at_bootstrap () =
  let prefs = random_prefs 11 40 6 2 in
  let adversaries = roles 11 prefs "liar:0.2" in
  let r = run_byz ~seed:11 ~guard:true ~adversaries prefs in
  Alcotest.(check bool) "terminated" true r.Stack.all_terminated;
  Alcotest.(check bool) "liars quarantined" true (r.Stack.byz_quarantined > 0);
  Alcotest.(check int) "no slot wasted on a liar" 0 r.Stack.wasted_slots;
  Alcotest.(check bool) "overclaim offences recorded" true
    (List.mem_assoc "overclaim" r.Stack.offence_counts);
  Alcotest.(check int) "precision: no correct peer quarantined" 0
    r.Stack.false_quarantines

let test_unguarded_liar_wastes_slots () =
  (* without advert vetting the inflated halves jump the victims'
     queues, and correct peers lock liars *)
  let wasted = ref 0 in
  for seed = 1 to 5 do
    let prefs = random_prefs seed 30 6 2 in
    let adversaries = roles seed prefs "liar:0.2" in
    let r = run_byz ~seed ~guard:false ~adversaries prefs in
    wasted := !wasted + r.Stack.wasted_slots
  done;
  Alcotest.(check bool) "liars captured slots somewhere" true (!wasted > 0)

let test_equivocator_locally_undetectable () =
  (* the documented limit: every equivocator link interaction is legal,
     so the guard records nothing — damage stays bounded anyway *)
  let prefs = random_prefs 13 40 6 2 in
  let adversaries = roles 13 prefs "equivocator:0.2" in
  let r = run_byz ~seed:13 ~guard:true ~adversaries prefs in
  Alcotest.(check bool) "terminated" true r.Stack.all_terminated;
  Alcotest.(check int) "no offence recorded" 0 (List.length r.Stack.offence_counts);
  Alcotest.(check int) "no quarantine" 0 r.Stack.quarantine_events;
  Alcotest.(check (list violation)) "damage clean" [] r.Stack.damage

let test_flooder_quarantined_and_contained () =
  let prefs = random_prefs 17 40 6 2 in
  let adversaries = roles 17 prefs "flooder:0.15" in
  let guarded = run_byz ~seed:17 ~guard:true ~adversaries prefs in
  Alcotest.(check bool) "flooders quarantined" true (guarded.Stack.byz_quarantined > 0);
  Alcotest.(check bool) "duplicate props recorded" true
    (List.mem_assoc "duplicate-prop" guarded.Stack.offence_counts);
  Alcotest.(check bool) "terminates despite spam" true
    guarded.Stack.all_terminated;
  Alcotest.(check int) "precision" 0 guarded.Stack.false_quarantines;
  Alcotest.(check (list violation)) "damage clean" [] guarded.Stack.damage

let test_replayer_quarantined () =
  let prefs = random_prefs 19 40 6 2 in
  let adversaries = roles 19 prefs "replayer:0.2" in
  let r = run_byz ~seed:19 ~guard:true ~adversaries prefs in
  Alcotest.(check bool) "replayers quarantined" true (r.Stack.byz_quarantined > 0);
  Alcotest.(check bool) "replay offences recorded" true
    (List.exists
       (fun (k, _) ->
         List.mem k [ "duplicate-prop"; "duplicate-rej"; "stale-epoch" ])
       r.Stack.offence_counts);
  Alcotest.(check int) "precision" 0 r.Stack.false_quarantines

let test_determinism () =
  let prefs = random_prefs 23 30 6 2 in
  let adversaries = roles 23 prefs "replayer:0.1,flooder:0.1" in
  let a = run_byz ~seed:5 ~adversaries prefs in
  let b = run_byz ~seed:5 ~adversaries prefs in
  Alcotest.(check (list int)) "same matching" (BM.edge_ids a.Stack.matching)
    (BM.edge_ids b.Stack.matching);
  Alcotest.(check int) "same deliveries" a.Stack.delivered b.Stack.delivered;
  Alcotest.(check int) "same quarantines" a.Stack.quarantine_events
    b.Stack.quarantine_events

let test_satisfaction_accounting () =
  let prefs = random_prefs 29 40 6 2 in
  let n = Graph.node_count (Preference.graph prefs) in
  let adversaries = roles 29 prefs "liar:0.2" in
  let correct = Array.map (( = ) None) adversaries in
  let r = run_byz ~seed:29 ~guard:true ~adversaries prefs in
  let retained = Stack.satisfaction_of_correct prefs r in
  let reference = Stack.reference_satisfaction prefs ~correct in
  Alcotest.(check bool) "retained nonnegative" true (retained >= 0.0);
  Alcotest.(check bool) "reference nonnegative" true (reference > 0.0);
  (* the honest reference over all nodes equals the plain total *)
  let all_correct = Array.make n true in
  let honest = run_byz ~guard:true ~adversaries:(Array.make n None) prefs in
  Alcotest.(check (float 1e-9))
    "reference on all-correct = LIC satisfaction"
    (Stack.reference_satisfaction prefs ~correct:all_correct)
    (Stack.satisfaction_of_correct prefs honest)

(* ---------------- bounded-damage checker unit tests ---------------- *)

let path3 () =
  (* 0 -1- 1 -2- 2 with edge ids 0, 1 *)
  let g = Graph.of_edge_list 3 [ (0, 1); (1, 2) ] in
  Weights.of_array g [| 2.0; 1.0 |]

let base w =
  {
    Byz.weights = w;
    capacity = [| 1; 1; 1 |];
    correct = [| true; true; true |];
    edges = [];
    consumed = [| 0; 0; 0 |];
    unterminated = [];
    overclaimed = [];
  }

let has ~checker vs = List.exists (fun v -> v.Owp_check.Violation.checker = checker) vs

let test_checker_termination () =
  let w = path3 () in
  let vs = Byz.check { (base w) with unterminated = [ 1 ] } in
  Alcotest.(check bool) "termination violation" true
    (has ~checker:"byzantine-termination" vs)

let test_checker_feasibility () =
  let w = path3 () in
  let vs = Byz.check { (base w) with edges = [ 0 ]; consumed = [| 2; 1; 0 |] } in
  Alcotest.(check bool) "overfull node flagged" true
    (has ~checker:"byzantine-feasibility" vs)

let test_checker_blocking_pair_and_exemption () =
  let w = path3 () in
  (* all correct, nothing matched, everyone has residual: edge 0 is a
     genuine blocking pair *)
  let vs = Byz.check (base w) in
  Alcotest.(check bool) "blocking pair on idle instance" true
    (has ~checker:"byzantine-blocking-pair" vs);
  (* now node 2 is Byzantine and node 1's only slot was burned on it:
     the same unmatched edge 0 is exempt at node 1 (Lemma 6 relativized:
     the wasted slot is allowed damage, not a blocking pair) *)
  let vs =
    Byz.check
      {
        (base w) with
        correct = [| true; true; false |];
        consumed = [| 0; 1; 0 |];
      }
  in
  Alcotest.(check bool) "wasted slot is exempt" false
    (has ~checker:"byzantine-blocking-pair" vs);
  (* but a correct-correct lock lighter than the skipped edge is not:
     matching edge 1 while leaving the heavier edge 0 unmatched blocks *)
  let vs =
    Byz.check { (base w) with edges = [ 1 ]; consumed = [| 0; 1; 1 |] }
  in
  Alcotest.(check bool) "lighter correct lock still challenged" true
    (has ~checker:"byzantine-blocking-pair" vs)

let test_checker_restriction () =
  let w = path3 () in
  let vs =
    Byz.check
      {
        (base w) with
        correct = [| true; true; false |];
        edges = [ 1 ];
        consumed = [| 0; 1; 1 |];
      }
  in
  Alcotest.(check bool) "byzantine endpoint in matching flagged" true
    (has ~checker:"byzantine-restriction" vs)

(* ---------------- exhaustive verification ---------------- *)

let test_exhaustive_guarded_clean () =
  (* n <= 4, one Byzantine node, full injection repertoire: the guarded
     protocol keeps the bounded-damage certificate on every schedule *)
  let square = Graph.of_edge_list 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  let prefs =
    Preference.random (Prng.create 3) square
      ~quota:(Preference.uniform_quota square 1)
  in
  for byz = 0 to 3 do
    let verdict = Stack.verify_exhaustively ~guard:true ~budget:2 ~byz prefs in
    Alcotest.(check (list violation))
      (Printf.sprintf "byz=%d clean" byz)
      [] verdict.Explore.violations
  done

let test_exhaustive_unguarded_starves () =
  (* same instance, guard off: the adversary that accepts a proposal and
     then stays silent leaves correct nodes stuck — the explorer finds
     the deadlock *)
  let pair = Graph.of_edge_list 2 [ (0, 1) ] in
  let prefs =
    Preference.random (Prng.create 1) pair ~quota:(Preference.uniform_quota pair 1)
  in
  let verdict = Stack.verify_exhaustively ~guard:false ~budget:1 ~byz:1 prefs in
  Alcotest.(check bool) "termination violations found" true
    (List.exists
       (fun v ->
         List.mem v.Owp_check.Violation.checker
           [ "explore-termination"; "byzantine-termination" ])
       verdict.Explore.violations)

let suite =
  [
    Alcotest.test_case "parse_spec" `Quick test_parse_spec;
    Alcotest.test_case "assign roles" `Quick test_assign;
    Alcotest.test_case "honest run = plain LID" `Quick test_honest_run_is_plain_lid;
    Alcotest.test_case "guarded bounded damage, all models @20%" `Quick
      test_guarded_bounded_damage_all_models;
    Alcotest.test_case "unguarded violator starves peers" `Quick
      test_unguarded_violator_starves;
    Alcotest.test_case "liar caught at bootstrap" `Quick
      test_guarded_liar_caught_at_bootstrap;
    Alcotest.test_case "unguarded liar wastes slots" `Quick
      test_unguarded_liar_wastes_slots;
    Alcotest.test_case "equivocator locally undetectable" `Quick
      test_equivocator_locally_undetectable;
    Alcotest.test_case "flooder quarantined + contained" `Quick
      test_flooder_quarantined_and_contained;
    Alcotest.test_case "replayer quarantined" `Quick test_replayer_quarantined;
    Alcotest.test_case "deterministic runs" `Quick test_determinism;
    Alcotest.test_case "satisfaction accounting" `Quick test_satisfaction_accounting;
    Alcotest.test_case "checker: termination" `Quick test_checker_termination;
    Alcotest.test_case "checker: feasibility" `Quick test_checker_feasibility;
    Alcotest.test_case "checker: relativized blocking pair" `Quick
      test_checker_blocking_pair_and_exemption;
    Alcotest.test_case "checker: restriction" `Quick test_checker_restriction;
    Alcotest.test_case "exhaustive guarded n=4" `Quick test_exhaustive_guarded_clean;
    Alcotest.test_case "exhaustive unguarded deadlock" `Quick
      test_exhaustive_unguarded_starves;
  ]
