module Lid = Owp_core.Lid
module Lic = Owp_core.Lic
module BM = Owp_matching.Bmatching
module Sim = Owp_simnet.Simnet
module Explore = Owp_check.Explore
module Prng = Owp_util.Prng
module Stack = Owp_core.Stack

let random_instance seed n avg_deg quota =
  let rng = Prng.create seed in
  let m = n * avg_deg / 2 in
  let g = Gen.gnm rng ~n ~m in
  let p = Preference.random rng g ~quota:(Preference.uniform_quota g quota) in
  let w = Weights.of_preference p in
  let capacity = Array.init n (Preference.quota p) in
  (g, p, w, capacity)

(* ------------------------------------------------------------------ *)
(* channel faults: the transport restores Lemmas 5-6 exactly           *)
(* ------------------------------------------------------------------ *)

let test_baseline_lid_stuck_reliable_converges () =
  (* the motivating contrast: same instance, same loss rate — plain LID
     deadlocks, the transport-backed variant converges to LIC's answer *)
  let _, _, w, capacity = random_instance 7 20 6 2 in
  let lic = Lic.run w ~capacity in
  let faults = Sim.faults ~drop:0.3 () in
  let plain = Lid.run ~seed:2 ~faults w ~capacity in
  Alcotest.(check bool) "plain LID gets stuck" false plain.Lid.all_terminated;
  let r = Stack.run ~seed:2 ~faults ~reliable:true ~check:true w ~capacity in
  Alcotest.(check bool) "reliable LID terminates" true r.Stack.all_terminated;
  Alcotest.(check bool) "and equals LIC" true (BM.equal r.Stack.matching lic);
  Alcotest.(check bool) "give-up never fired" true (Stack.counter r ~layer:"transport" "dead-links" = 0);
  Alcotest.(check bool) "overhead is reported" true (Stack.overhead r > 1.0)

let prop_quiesces_and_equals_lic_under_faults =
  (* the acceptance grid: drop x duplicate x fifo, all seeds *)
  QCheck2.Test.make
    ~name:"reliable LID quiesces and equals LIC for drop<=0.3, dup<=0.2, any fifo"
    ~count:60
    QCheck2.Gen.(
      tup4 (int_range 0 100_000) (int_range 0 2) (int_range 0 1) bool)
    (fun (seed, di, dupi, fifo) ->
      let drop = [| 0.0; 0.1; 0.3 |].(di) in
      let dup = [| 0.0; 0.2 |].(dupi) in
      let _, _, w, capacity = random_instance seed 16 5 2 in
      let lic = Lic.run w ~capacity in
      let faults = Sim.faults ~drop ~duplicate:dup () in
      let r = Stack.run ~seed:(seed + 31) ~fifo ~faults ~reliable:true w ~capacity in
      r.Stack.all_terminated
      && Stack.counter r ~layer:"transport" "dead-links" = 0
      && BM.equal r.Stack.matching lic)

let prop_survives_adversarial_reordering =
  QCheck2.Test.make ~name:"reliable LID equals LIC on a reordering non-FIFO net"
    ~count:30
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let _, _, w, capacity = random_instance seed 14 5 2 in
      let lic = Lic.run w ~capacity in
      let faults = Sim.faults ~drop:0.2 ~duplicate:0.2 ~reorder:0.3 () in
      let r =
        Stack.run ~seed ~fifo:false ~delay:(Sim.Uniform (0.01, 20.0)) ~faults ~reliable:true w ~capacity
      in
      r.Stack.all_terminated && BM.equal r.Stack.matching lic)

(* ------------------------------------------------------------------ *)
(* crash / restart                                                     *)
(* ------------------------------------------------------------------ *)

let test_failstop_with_patience () =
  (* a node dies early and never returns; with patience armed everyone
     else still converges, without its edges *)
  let g, _, w, capacity = random_instance 11 12 4 2 in
  let victim = 0 in
  let crashes = [ { Stack.victim; crash_at = 0.4; restart_at = None } ] in
  let r = Stack.run ~seed:4 ~reliable:true ~patience:60.0 ~crashes w ~capacity in
  Alcotest.(check bool) "survivors terminate" true r.Stack.all_terminated;
  Alcotest.(check int) "victim unmatched" 0 (BM.degree r.Stack.matching victim);
  Alcotest.(check bool) "some recovery happened" true
    (r.Stack.synthetic_rejects > 0 || Graph.degree g victim = 0);
  Alcotest.(check bool) "crash loss accounted" true (r.Stack.lost_to_crashes > 0)

let test_failstop_without_patience_reported () =
  (* without patience a neighbour whose ACKed proposal is answered by
     silence waits forever — the report must say so, not lie *)
  let _, _, w, capacity = random_instance 13 12 4 2 in
  let crashes = [ { Stack.victim = 1; crash_at = 2.0; restart_at = None } ] in
  let r = Stack.run ~seed:9 ~reliable:true ~crashes w ~capacity in
  (* with give-up for unACKed traffic some seeds still converge; the
     invariant is coherence: all_terminated iff no live straggler *)
  Alcotest.(check bool) "report coherent" true
    (r.Stack.all_terminated = (r.Stack.quiescence = []))

let test_crash_restart_amnesia () =
  let _, _, w, capacity = random_instance 17 12 4 2 in
  let victim = 2 in
  let crashes = [ { Stack.victim; crash_at = 0.6; restart_at = Some 4.0 } ] in
  let r = Stack.run ~seed:5 ~reliable:true ~patience:60.0 ~crashes w ~capacity in
  Alcotest.(check bool) "everyone live terminates" true r.Stack.all_terminated;
  (* the restarted incarnation lost its state: it declines everything,
     so it holds no edges in the final matching *)
  Alcotest.(check int) "amnesiac holds nothing" 0 (BM.degree r.Stack.matching victim)

let test_crash_plan_validation () =
  let _, _, w, capacity = random_instance 19 6 3 1 in
  Alcotest.check_raises "victim range"
    (Invalid_argument "Stack.run: crash victim out of range") (fun () ->
      ignore
        (Stack.run ~reliable:true ~crashes:[ { Stack.victim = 99; crash_at = 1.0; restart_at = None } ] w
           ~capacity));
  Alcotest.check_raises "restart order"
    (Invalid_argument "Stack.run: restart not after crash") (fun () ->
      ignore
        (Stack.run ~reliable:true
           ~crashes:[ { Stack.victim = 0; crash_at = 2.0; restart_at = Some 1.0 } ]
           w ~capacity));
  Alcotest.check_raises "patience sign"
    (Invalid_argument "Stack.run: patience must be positive") (fun () ->
      ignore (Stack.run ~reliable:true ~patience:0.0 w ~capacity))

(* ------------------------------------------------------------------ *)
(* exhaustive exploration with adversarial link failures               *)
(* ------------------------------------------------------------------ *)

let explore_instances () =
  let path n =
    Graph.of_edge_list n (List.init (n - 1) (fun i -> (i, i + 1)))
  in
  let cycle n =
    Graph.of_edge_list n (List.init n (fun i -> (i, (i + 1) mod n)))
  in
  let inst label g weights quota =
    (label, Weights.of_array g (Array.of_list weights), Array.make (Graph.node_count g) quota)
  in
  [
    inst "path3" (path 3) [ 2.0; 1.0 ] 1;
    inst "triangle" (cycle 3) [ 3.0; 2.0; 1.0 ] 1;
    inst "path4" (path 4) [ 1.0; 3.0; 2.0 ] 1;
    inst "cycle4-b2" (cycle 4) [ 4.0; 3.0; 2.0; 1.0 ] 2;
    inst "star4" (Gen.star 4) [ 3.0; 2.0; 1.0 ] 1;
  ]

let test_explorer_with_adversarial_drops () =
  List.iter
    (fun (label, w, capacity) ->
      List.iter
        (fun budget ->
          let verdict =
            Explore.explore ~max_link_failures:budget (Lid.model w ~capacity)
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s: complete search (%d failures)" label budget)
            false verdict.Explore.stats.Explore.truncated;
          (* Lemma 5 must hold on every schedule, however the adversary
             spends its failure budget *)
          Alcotest.(check (list string))
            (Printf.sprintf "%s: no violation (%d failures)" label budget)
            []
            (List.map
               (fun v -> v.Owp_check.Violation.checker)
               verdict.Explore.violations))
        [ 1; 2 ])
    (explore_instances ())

let test_explorer_failure_free_subset_matches_lic () =
  (* budget > 0 explores a superset of the failure-free tree; the
     failure-free observation (LIC's edge set) must still be among the
     outcomes *)
  List.iter
    (fun (label, w, capacity) ->
      let lic = BM.edge_ids (Lic.run w ~capacity) in
      let verdict = Explore.explore ~max_link_failures:1 (Lid.model w ~capacity) in
      Alcotest.(check bool)
        (label ^ ": LIC outcome reachable")
        true
        (List.mem lic verdict.Explore.observations))
    (explore_instances ())

let suite =
  [
    Alcotest.test_case "stuck baseline vs convergence" `Quick
      test_baseline_lid_stuck_reliable_converges;
    QCheck_alcotest.to_alcotest prop_quiesces_and_equals_lic_under_faults;
    QCheck_alcotest.to_alcotest prop_survives_adversarial_reordering;
    Alcotest.test_case "fail-stop with patience" `Quick test_failstop_with_patience;
    Alcotest.test_case "fail-stop report coherent" `Quick
      test_failstop_without_patience_reported;
    Alcotest.test_case "crash-restart amnesia" `Quick test_crash_restart_amnesia;
    Alcotest.test_case "crash plan validation" `Quick test_crash_plan_validation;
    Alcotest.test_case "explorer: adversarial drops" `Quick
      test_explorer_with_adversarial_drops;
    Alcotest.test_case "explorer: LIC reachable" `Quick
      test_explorer_failure_free_subset_matches_lic;
  ]
