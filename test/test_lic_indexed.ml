module Lic = Owp_core.Lic
module Lic_indexed = Owp_core.Lic_indexed
module BM = Owp_matching.Bmatching
module Prng = Owp_util.Prng

let random_instance seed n avg_deg quota =
  let rng = Prng.create seed in
  let m = n * avg_deg / 2 in
  let g = Gen.gnm rng ~n ~m in
  let p = Preference.random rng g ~quota:(Preference.uniform_quota g quota) in
  let w = Weights.of_preference p in
  let capacity = Array.init n (Preference.quota p) in
  (g, p, w, capacity)

let test_path_example () =
  let g = Graph.of_edge_list 4 [ (0, 1); (1, 2); (2, 3) ] in
  let w = Weights.of_array g [| 4.0; 5.0; 4.0 |] in
  let m = Lic_indexed.run w ~capacity:[| 1; 1; 1; 1 |] in
  Alcotest.(check (list int)) "locally heaviest first" [ 1 ] (BM.edge_ids m)

let test_zero_capacity_nodes () =
  let g = Graph.of_edge_list 3 [ (0, 1); (1, 2) ] in
  let w = Weights.of_array g [| 1.0; 2.0 |] in
  let m = Lic_indexed.run w ~capacity:[| 0; 1; 1 |] in
  Alcotest.(check (list int)) "skips capacity-0 node" [ 1 ] (BM.edge_ids m)

let test_empty_graph () =
  let g = Graph.of_edge_list 3 [] in
  let w = Weights.of_array g [||] in
  let m = Lic_indexed.run w ~capacity:[| 1; 1; 1 |] in
  Alcotest.(check int) "empty" 0 (BM.size m)

let test_checkers_pass () =
  let _, _, w, capacity = random_instance 11 80 8 3 in
  (* ~check:true asserts edge-validity/quota/blocking-pair/maximality *)
  let m = Lic_indexed.run ~check:true w ~capacity in
  Alcotest.(check bool) "non-empty" true (BM.size m > 0)

(* the tentpole property: the index engine is an implementation of the
   same selection rule, so it must lock the exact same edge set as the
   reference rescanning engine (and, via Lemma 6, the sorted one) *)
let prop_matches_reference =
  QCheck2.Test.make ~name:"indexed = reference edge set (Lemma 6)" ~count:80
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let _, _, w, capacity = random_instance seed 40 8 3 in
      let indexed = Lic_indexed.run w ~capacity in
      BM.equal indexed (Lic.run ~strategy:Lic.Climbing w ~capacity)
      && BM.equal indexed (Lic.run ~strategy:Lic.Heaviest_first w ~capacity))

(* same property in the regime the engine exists for: heterogeneous
   quotas, some of them zero, denser neighbourhoods *)
let prop_matches_reference_heterogeneous =
  QCheck2.Test.make ~name:"indexed = reference under mixed quotas" ~count:40
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 30 in
      let g = Gen.gnm rng ~n ~m:120 in
      let w =
        Weights.of_array g
          (Array.init (Graph.edge_count g) (fun _ -> Prng.float rng 1.0))
      in
      let capacity = Array.init n (fun _ -> Prng.int rng 4) in
      BM.equal (Lic_indexed.run w ~capacity) (Lic.run ~strategy:Lic.Climbing w ~capacity))

let prop_deterministic =
  QCheck2.Test.make ~name:"indexed engine deterministic" ~count:20
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let _, _, w, capacity = random_instance seed 30 6 2 in
      BM.equal (Lic_indexed.run w ~capacity) (Lic_indexed.run w ~capacity))

let suite =
  [
    Alcotest.test_case "path example" `Quick test_path_example;
    Alcotest.test_case "zero capacity nodes" `Quick test_zero_capacity_nodes;
    Alcotest.test_case "empty graph" `Quick test_empty_graph;
    Alcotest.test_case "checkers pass" `Quick test_checkers_pass;
    QCheck_alcotest.to_alcotest prop_matches_reference;
    QCheck_alcotest.to_alcotest prop_matches_reference_heterogeneous;
    QCheck_alcotest.to_alcotest prop_deterministic;
  ]
