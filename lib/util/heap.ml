module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (E : ORDERED) = struct
  type t = { mutable data : E.t array; mutable size : int }

  let create ?(capacity = 16) () =
    ignore capacity;
    { data = [||]; size = 0 }

  let length h = h.size
  let is_empty h = h.size = 0

  let ensure_capacity h =
    let cap = Array.length h.data in
    if h.size >= cap then begin
      let ncap = max 16 (2 * cap) in
      let ndata = Array.make ncap h.data.(0) in
      Array.blit h.data 0 ndata 0 h.size;
      h.data <- ndata
    end

  let rec sift_up h i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if E.compare h.data.(i) h.data.(parent) < 0 then begin
        let tmp = h.data.(i) in
        h.data.(i) <- h.data.(parent);
        h.data.(parent) <- tmp;
        sift_up h parent
      end
    end

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < h.size && E.compare h.data.(l) h.data.(!smallest) < 0 then smallest := l;
    if r < h.size && E.compare h.data.(r) h.data.(!smallest) < 0 then smallest := r;
    if !smallest <> i then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(!smallest);
      h.data.(!smallest) <- tmp;
      sift_down h !smallest
    end

  let add h x =
    if h.size = 0 && Array.length h.data = 0 then h.data <- Array.make 16 x;
    ensure_capacity h;
    h.data.(h.size) <- x;
    h.size <- h.size + 1;
    sift_up h (h.size - 1)

  let min_elt h =
    if h.size = 0 then invalid_arg "Heap.min_elt: empty heap";
    h.data.(0)

  let peek_min_opt h = if h.size = 0 then None else Some h.data.(0)

  let pop_min h =
    if h.size = 0 then invalid_arg "Heap.pop_min: empty heap";
    let m = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    m

  let pop_min_opt h = if h.size = 0 then None else Some (pop_min h)

  let of_array a =
    let h = create ~capacity:(Array.length a) () in
    Array.iter (add h) a;
    h

  let to_sorted_list h =
    let rec drain acc = if is_empty h then List.rev acc else drain (pop_min h :: acc) in
    drain []
end

module Keyed = struct
  type t = {
    mutable keys : int array; (* heap order: keys.(i) is the key at heap slot i *)
    mutable prio : float array; (* prio.(i) is the priority at heap slot i *)
    pos : int array; (* pos.(key) = heap slot, or -1 if absent *)
    mutable size : int;
  }

  let create n =
    { keys = Array.make (max n 1) 0; prio = Array.make (max n 1) 0.0; pos = Array.make (max n 1) (-1); size = 0 }

  let length h = h.size
  let is_empty h = h.size = 0
  let mem h k = h.pos.(k) >= 0

  let swap h i j =
    let ki = h.keys.(i) and kj = h.keys.(j) in
    h.keys.(i) <- kj;
    h.keys.(j) <- ki;
    let pi = h.prio.(i) in
    h.prio.(i) <- h.prio.(j);
    h.prio.(j) <- pi;
    h.pos.(kj) <- i;
    h.pos.(ki) <- j

  let rec sift_up h i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if h.prio.(i) < h.prio.(parent) then begin
        swap h i parent;
        sift_up h parent
      end
    end

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < h.size && h.prio.(l) < h.prio.(!smallest) then smallest := l;
    if r < h.size && h.prio.(r) < h.prio.(!smallest) then smallest := r;
    if !smallest <> i then begin
      swap h i !smallest;
      sift_down h !smallest
    end

  let insert h k p =
    if mem h k then invalid_arg "Heap.Keyed.insert: key already present";
    let i = h.size in
    h.keys.(i) <- k;
    h.prio.(i) <- p;
    h.pos.(k) <- i;
    h.size <- h.size + 1;
    sift_up h i

  let priority h k =
    let i = h.pos.(k) in
    if i < 0 then raise Not_found;
    h.prio.(i)

  let decrease_key h k p =
    let i = h.pos.(k) in
    if i < 0 then raise Not_found;
    if p < h.prio.(i) then begin
      h.prio.(i) <- p;
      sift_up h i
    end

  let insert_or_decrease h k p = if mem h k then decrease_key h k p else insert h k p

  let pop_min h =
    if h.size = 0 then invalid_arg "Heap.Keyed.pop_min: empty heap";
    let k = h.keys.(0) and p = h.prio.(0) in
    h.size <- h.size - 1;
    h.pos.(k) <- -1;
    if h.size > 0 then begin
      let last = h.size in
      h.keys.(0) <- h.keys.(last);
      h.prio.(0) <- h.prio.(last);
      h.pos.(h.keys.(0)) <- 0;
      sift_down h 0
    end;
    (k, p)

  let remove h k =
    let i = h.pos.(k) in
    if i >= 0 then begin
      h.size <- h.size - 1;
      h.pos.(k) <- -1;
      if i < h.size then begin
        let last = h.size in
        h.keys.(i) <- h.keys.(last);
        h.prio.(i) <- h.prio.(last);
        h.pos.(h.keys.(i)) <- i;
        sift_down h i;
        sift_up h i
      end
    end
end
