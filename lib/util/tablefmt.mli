(** Plain-text table rendering for experiment output.

    The benchmark harness prints each reproduced table/figure as an
    aligned ASCII table; this module owns the layout so every experiment
    renders uniformly. *)

type align = Left | Right

type t

val create : ?title:string -> (string * align) list -> t
(** [create cols] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row arity differs from the header. *)

val add_rows : t -> string list list -> unit

val add_separator : t -> unit
(** Inserts a horizontal rule between row groups. *)

val render : t -> string
val print : t -> unit

val to_json : t -> string
(** The same table as a JSON object: [{"title", "columns", "rows"}],
    each row an object keyed by column header.  Cells are emitted as
    JSON numbers when they parse as one ("12", "0.5170"), percentage
    cells ("51.7%") are converted back to their ratio, and everything
    else becomes a string.  Separators vanish — they are presentation,
    not data. *)

(* Cell formatting helpers. *)
val fcell : float -> string
(** 4 decimal places. *)

val fcell2 : float -> string
(** 2 decimal places. *)

val icell : int -> string
val pct : float -> string
(** Ratio rendered as a percentage with one decimal. *)
