(* Calendar queue over (at, seq) keys with an exact total order.

   Layout: nb buckets of width w; an event at time [at] belongs to
   epoch floor(at / w) and lives in bucket (epoch mod nb).  The wheel
   maintains three invariants around [cur_epoch], the epoch currently
   (or last) drained:

   - every event with epoch <= cur_epoch is in the sorted run or the
     aux heap (never in a bucket);
   - bucketed events have epoch in (cur_epoch, cur_epoch + nb], so one
     bucket holds exactly one epoch (a half-open interval of length nb
     meets each residue class once) and window collection takes the
     whole bucket with no filtering;
   - the overflow heap holds everything beyond the horizon
     (epoch > cur_epoch + nb); advancing the window migrates entries
     back under the horizon into their buckets.

   Draining sorts one bucket into a flat run (three parallel arrays)
   and walks it with a head index; insertions that land at or before
   the draining epoch go to the aux heap, and pop takes the smaller of
   the run head and the aux minimum, so the pop order is exactly the
   (at, seq) order a binary heap would produce. *)

let key_le a1 s1 a2 s2 = a1 < a2 || (a1 = a2 && s1 <= s2)

(* ------------------------------------------------------------------ *)
(* inline binary min-heap on parallel arrays                           *)
(* ------------------------------------------------------------------ *)

type heap = {
  mutable h_at : float array;
  mutable h_seq : int array;
  mutable h_pay : int array;
  mutable h_len : int;
}

let heap_create () = { h_at = [||]; h_seq = [||]; h_pay = [||]; h_len = 0 }

let heap_grow h =
  let cap = max 8 (2 * Array.length h.h_at) in
  let at = Array.make cap 0.0 and sq = Array.make cap 0 and pl = Array.make cap 0 in
  Array.blit h.h_at 0 at 0 h.h_len;
  Array.blit h.h_seq 0 sq 0 h.h_len;
  Array.blit h.h_pay 0 pl 0 h.h_len;
  h.h_at <- at;
  h.h_seq <- sq;
  h.h_pay <- pl

let heap_push h at seq pay =
  if h.h_len = Array.length h.h_at then heap_grow h;
  let i = ref h.h_len in
  h.h_len <- h.h_len + 1;
  h.h_at.(!i) <- at;
  h.h_seq.(!i) <- seq;
  h.h_pay.(!i) <- pay;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    if key_le h.h_at.(p) h.h_seq.(p) h.h_at.(!i) h.h_seq.(!i) then continue := false
    else begin
      let ta = h.h_at.(p) and ts = h.h_seq.(p) and tp = h.h_pay.(p) in
      h.h_at.(p) <- h.h_at.(!i);
      h.h_seq.(p) <- h.h_seq.(!i);
      h.h_pay.(p) <- h.h_pay.(!i);
      h.h_at.(!i) <- ta;
      h.h_seq.(!i) <- ts;
      h.h_pay.(!i) <- tp;
      i := p
    end
  done

(* remove the root; the caller read (h_at.(0), h_seq.(0), h_pay.(0)) first *)
let heap_drop h =
  let n = h.h_len - 1 in
  h.h_len <- n;
  if n > 0 then begin
    h.h_at.(0) <- h.h_at.(n);
    h.h_seq.(0) <- h.h_seq.(n);
    h.h_pay.(0) <- h.h_pay.(n);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= n then continue := false
      else begin
        let r = l + 1 in
        let c =
          if r < n && not (key_le h.h_at.(l) h.h_seq.(l) h.h_at.(r) h.h_seq.(r))
          then r
          else l
        in
        if key_le h.h_at.(!i) h.h_seq.(!i) h.h_at.(c) h.h_seq.(c) then
          continue := false
        else begin
          let ta = h.h_at.(c) and ts = h.h_seq.(c) and tp = h.h_pay.(c) in
          h.h_at.(c) <- h.h_at.(!i);
          h.h_seq.(c) <- h.h_seq.(!i);
          h.h_pay.(c) <- h.h_pay.(!i);
          h.h_at.(!i) <- ta;
          h.h_seq.(!i) <- ts;
          h.h_pay.(!i) <- tp;
          i := c
        end
      end
    done
  end

(* ------------------------------------------------------------------ *)
(* in-place quicksort of parallel (at, seq, payload) arrays            *)
(* ------------------------------------------------------------------ *)

let swap3 at sq pl i j =
  let ta = at.(i) and ts = sq.(i) and tp = pl.(i) in
  at.(i) <- at.(j);
  sq.(i) <- sq.(j);
  pl.(i) <- pl.(j);
  at.(j) <- ta;
  sq.(j) <- ts;
  pl.(j) <- tp

let rec qsort3 at sq pl lo hi =
  if hi - lo < 12 then begin
    (* insertion sort for short spans *)
    for i = lo + 1 to hi do
      let ka = at.(i) and ks = sq.(i) and kp = pl.(i) in
      let j = ref (i - 1) in
      while !j >= lo && not (key_le at.(!j) sq.(!j) ka ks) do
        at.(!j + 1) <- at.(!j);
        sq.(!j + 1) <- sq.(!j);
        pl.(!j + 1) <- pl.(!j);
        decr j
      done;
      at.(!j + 1) <- ka;
      sq.(!j + 1) <- ks;
      pl.(!j + 1) <- kp
    done
  end
  else begin
    (* median-of-three pivot, moved to [hi]; Lomuto partition *)
    let mid = lo + ((hi - lo) / 2) in
    if not (key_le at.(lo) sq.(lo) at.(mid) sq.(mid)) then swap3 at sq pl lo mid;
    if not (key_le at.(mid) sq.(mid) at.(hi) sq.(hi)) then begin
      swap3 at sq pl mid hi;
      if not (key_le at.(lo) sq.(lo) at.(mid) sq.(mid)) then swap3 at sq pl lo mid
    end;
    swap3 at sq pl mid hi;
    let pa = at.(hi) and ps = sq.(hi) in
    let store = ref lo in
    for i = lo to hi - 1 do
      if key_le at.(i) sq.(i) pa ps then begin
        if i <> !store then swap3 at sq pl i !store;
        incr store
      end
    done;
    swap3 at sq pl !store hi;
    (* recurse into the smaller side first to bound the stack *)
    if !store - lo < hi - !store then begin
      qsort3 at sq pl lo (!store - 1);
      qsort3 at sq pl (!store + 1) hi
    end
    else begin
      qsort3 at sq pl (!store + 1) hi;
      qsort3 at sq pl lo (!store - 1)
    end
  end

(* ------------------------------------------------------------------ *)
(* the wheel                                                            *)
(* ------------------------------------------------------------------ *)

type t = {
  w : float; (* bucket width *)
  unsafe : bool;
  mutable nb : int;
  mutable b_at : float array array;
  mutable b_seq : int array array;
  mutable b_pay : int array array;
  mutable b_len : int array;
  mutable bucketed : int; (* events across all buckets *)
  mutable cur_epoch : int; (* epoch of the open (or last) run; -1 initially *)
  mutable r_at : float array; (* current run, sorted, consumed from r_head *)
  mutable r_seq : int array;
  mutable r_pay : int array;
  mutable r_len : int;
  mutable r_head : int;
  aux : heap; (* insertions at or before the draining epoch *)
  over : heap; (* events beyond the wheel horizon *)
  mutable size : int;
  (* out-params of [pop_into]; the timestamp lives in a 1-element float
     array so storing it never allocates a box *)
  last_at_cell : float array;
  mutable last_seq : int;
  mutable last_pay : int;
}

let create ?(width = 0.25) ?(buckets = 64) ?(unsafe_lookahead = false) () =
  if not (Float.is_finite width && width > 0.0) then
    invalid_arg "Event_wheel.create: width must be positive";
  if buckets < 2 then invalid_arg "Event_wheel.create: need at least 2 buckets";
  {
    w = width;
    unsafe = unsafe_lookahead;
    nb = buckets;
    b_at = Array.make buckets [||];
    b_seq = Array.make buckets [||];
    b_pay = Array.make buckets [||];
    b_len = Array.make buckets 0;
    bucketed = 0;
    cur_epoch = -1;
    r_at = [||];
    r_seq = [||];
    r_pay = [||];
    r_len = 0;
    r_head = 0;
    aux = heap_create ();
    over = heap_create ();
    size = 0;
    last_at_cell = Array.make 1 0.0;
    last_seq = 0;
    last_pay = 0;
  }

let size t = t.size

(* epoch of a timestamp, saturating far enough below max_int that
   [epoch - cur_epoch] and [epoch + nb] never overflow *)
let epoch t at =
  let q = at /. t.w in
  if q >= 1e18 then 0x3FFFFFFFFFFFFF else int_of_float q

let bucket_push t b at seq pay =
  let len = t.b_len.(b) in
  if len = Array.length t.b_at.(b) then begin
    let cap = max 8 (2 * len) in
    let a = Array.make cap 0.0 and s = Array.make cap 0 and p = Array.make cap 0 in
    Array.blit t.b_at.(b) 0 a 0 len;
    Array.blit t.b_seq.(b) 0 s 0 len;
    Array.blit t.b_pay.(b) 0 p 0 len;
    t.b_at.(b) <- a;
    t.b_seq.(b) <- s;
    t.b_pay.(b) <- p
  end;
  t.b_at.(b).(len) <- at;
  t.b_seq.(b).(len) <- seq;
  t.b_pay.(b).(len) <- pay;
  t.b_len.(b) <- len + 1;
  t.bucketed <- t.bucketed + 1

(* route an event that is strictly past cur_epoch *)
let place_future t e at seq pay =
  if e - t.cur_epoch <= t.nb then bucket_push t (e mod t.nb) at seq pay
  else heap_push t.over at seq pay

let add t ~at ~seq pay =
  if not (Float.is_finite at) || at < 0.0 then
    invalid_arg "Event_wheel.add: time must be finite and non-negative";
  let e = epoch t at in
  if e <= t.cur_epoch then heap_push t.aux at seq pay
  else place_future t e at seq pay;
  t.size <- t.size + 1

(* rebuild the bucket array at a new size; every bucketed event is
   re-routed against the unchanged cur_epoch (shrinking may push some
   back over the horizon into the overflow heap) *)
let rebucket t nb' =
  let ob_at = t.b_at and ob_seq = t.b_seq and ob_pay = t.b_pay and ob_len = t.b_len in
  let onb = t.nb in
  t.nb <- nb';
  t.b_at <- Array.make nb' [||];
  t.b_seq <- Array.make nb' [||];
  t.b_pay <- Array.make nb' [||];
  t.b_len <- Array.make nb' 0;
  t.bucketed <- 0;
  for b = 0 to onb - 1 do
    for i = 0 to ob_len.(b) - 1 do
      place_future t (epoch t ob_at.(b).(i)) ob_at.(b).(i) ob_seq.(b).(i) ob_pay.(b).(i)
    done
  done

let run_append t at seq pay =
  if t.r_len = Array.length t.r_at then begin
    let cap = max 16 (2 * t.r_len) in
    let a = Array.make cap 0.0 and s = Array.make cap 0 and p = Array.make cap 0 in
    Array.blit t.r_at 0 a 0 t.r_len;
    Array.blit t.r_seq 0 s 0 t.r_len;
    Array.blit t.r_pay 0 p 0 t.r_len;
    t.r_at <- a;
    t.r_seq <- s;
    t.r_pay <- p
  end;
  t.r_at.(t.r_len) <- at;
  t.r_seq.(t.r_len) <- seq;
  t.r_pay.(t.r_len) <- pay;
  t.r_len <- t.r_len + 1

(* open the next window: find the next populated epoch among buckets
   and overflow, migrate overflow entries back under the new horizon,
   collect that epoch's bucket into the run and sort it.  Precondition:
   run and aux are empty, size > 0. *)
let advance t =
  if t.bucketed > 4 * t.nb then rebucket t (2 * t.nb)
  else if t.nb > 64 && t.bucketed < t.nb / 8 then rebucket t (t.nb / 2);
  let next =
    let from_bucket =
      if t.bucketed = 0 then -1
      else begin
        let found = ref (-1) in
        let k = ref 1 in
        while !found < 0 && !k <= t.nb do
          let e = t.cur_epoch + !k in
          if t.b_len.(e mod t.nb) > 0 then found := e;
          incr k
        done;
        !found
      end
    in
    let from_over = if t.over.h_len = 0 then -1 else epoch t t.over.h_at.(0) in
    if from_bucket < 0 then from_over
    else if from_over < 0 then from_bucket
    else min from_bucket from_over
  in
  (* size > 0 with empty run and aux means buckets or overflow hold
     something, so [next] is a real epoch *)
  t.cur_epoch <- next;
  t.r_len <- 0;
  t.r_head <- 0;
  (* collect the bucket BEFORE migrating overflow: an overflow entry at
     epoch exactly cur_epoch + nb maps to this same bucket slot, and
     must land in the now-empty bucket, not in the current run *)
  let b = t.cur_epoch mod t.nb in
  let len = t.b_len.(b) in
  for i = 0 to len - 1 do
    run_append t t.b_at.(b).(i) t.b_seq.(b).(i) t.b_pay.(b).(i)
  done;
  t.b_len.(b) <- 0;
  t.bucketed <- t.bucketed - len;
  while t.over.h_len > 0 && epoch t t.over.h_at.(0) - t.cur_epoch <= t.nb do
    let at = t.over.h_at.(0) and seq = t.over.h_seq.(0) and pay = t.over.h_pay.(0) in
    heap_drop t.over;
    let e = epoch t at in
    if e = t.cur_epoch then run_append t at seq pay
    else bucket_push t (e mod t.nb) at seq pay
  done;
  if t.r_len > 1 then qsort3 t.r_at t.r_seq t.r_pay 0 (t.r_len - 1)

let needs_prepare t = t.size > 0 && t.r_head >= t.r_len && t.aux.h_len = 0
let prepare t = if needs_prepare t then advance t

(* true when the next event should come from the run rather than the
   aux heap.  In unsafe_lookahead mode the run always wins while it has
   entries — the deliberate order violation the gate self-test relies
   on. *)
let run_first t =
  let have_run = t.r_head < t.r_len in
  if not have_run then false
  else if t.aux.h_len = 0 || t.unsafe then true
  else
    key_le t.r_at.(t.r_head) t.r_seq.(t.r_head) t.aux.h_at.(0) t.aux.h_seq.(0)

let rec peek_key t =
  if t.size = 0 then None
  else if t.r_head >= t.r_len && t.aux.h_len = 0 then begin
    advance t;
    peek_key t
  end
  else if run_first t then Some (t.r_at.(t.r_head), t.r_seq.(t.r_head))
  else Some (t.aux.h_at.(0), t.aux.h_seq.(0))

let rec pop t =
  if t.size = 0 then None
  else if t.r_head >= t.r_len && t.aux.h_len = 0 then begin
    advance t;
    pop t
  end
  else begin
    t.size <- t.size - 1;
    if run_first t then begin
      let i = t.r_head in
      t.r_head <- i + 1;
      Some (t.r_at.(i), t.r_seq.(i), t.r_pay.(i))
    end
    else begin
      let at = t.aux.h_at.(0) and seq = t.aux.h_seq.(0) and pay = t.aux.h_pay.(0) in
      heap_drop t.aux;
      Some (at, seq, pay)
    end
  end

(* allocation-free pop: [false] on empty, else the event is readable
   through [last_at]/[last_seq]/[last_pay] until the next [pop_into].
   Same selection logic as [pop], shared invariants argued there. *)
let rec pop_into t =
  if t.size = 0 then false
  else if t.r_head >= t.r_len && t.aux.h_len = 0 then begin
    advance t;
    pop_into t
  end
  else begin
    t.size <- t.size - 1;
    (if run_first t then begin
       let i = t.r_head in
       t.r_head <- i + 1;
       t.last_at_cell.(0) <- t.r_at.(i);
       t.last_seq <- t.r_seq.(i);
       t.last_pay <- t.r_pay.(i)
     end
     else begin
       t.last_at_cell.(0) <- t.aux.h_at.(0);
       t.last_seq <- t.aux.h_seq.(0);
       t.last_pay <- t.aux.h_pay.(0);
       heap_drop t.aux
     end);
    true
  end

let last_at t = t.last_at_cell.(0)
let last_seq t = t.last_seq
let last_pay t = t.last_pay

(* allocation-free "does the head fire at exactly [at]?" — the mailbox
   batching probe.  One [advance] always suffices: when size > 0 and
   both run and aux are spent, the next populated epoch lands at least
   one event in the run (argued in [advance]). *)
let next_at_equals t at =
  if t.size = 0 then false
  else begin
    if t.r_head >= t.r_len && t.aux.h_len = 0 then advance t;
    if run_first t then Float.equal t.r_at.(t.r_head) at
    else Float.equal t.aux.h_at.(0) at
  end

let footprint_words t =
  let tri len = 3 * len in
  let buckets = ref (4 * t.nb) in
  for b = 0 to t.nb - 1 do
    buckets := !buckets + tri (Array.length t.b_at.(b))
  done;
  !buckets + tri (Array.length t.r_at)
  + tri (Array.length t.aux.h_at)
  + tri (Array.length t.over.h_at)
