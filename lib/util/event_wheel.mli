(** Bucketed event wheel (calendar queue) over [(at, seq)] keys.

    The simulator's event store: a monomorphic priority queue holding
    one [int] payload per event (an arena slot index), keyed by virtual
    time [at] and a strictly increasing tie-break [seq].  Events are
    appended O(1) into fixed-width time buckets; the bucket whose window
    is being drained is sorted once into a flat run and consumed by a
    moving head.  Two inline binary heaps catch the cases a plain
    calendar cannot: an {e aux} heap for events inserted at or before
    the epoch currently draining (handlers send with tiny delays — the
    per-link FIFO clamp lands 1e-9 ahead of now), and an {e overflow}
    heap for events beyond the wheel horizon (stragglers, far-future
    timers).  {!pop} always returns the exact global [(at, seq)]
    minimum — the same total order as a binary heap over the same keys,
    which is what the QCheck equivalence suite asserts.

    Not thread-safe: one wheel belongs to one owner.  The sharded
    simulator gives each domain task its own wheel and only calls
    {!prepare} from worker tasks (space-partitioned ownership). *)

type t

val create : ?width:float -> ?buckets:int -> ?unsafe_lookahead:bool -> unit -> t
(** [width] (default [0.25]) is the bucket span in virtual-time units —
    a performance knob only, never a correctness one.  [buckets]
    (default [64]) is the initial wheel size; the wheel resizes itself
    as the population grows or shrinks.  [unsafe_lookahead] (default
    [false]) is a {e deliberately wrong} debug mode for gate self-tests:
    events inserted into the epoch currently draining are served only
    after the pre-sorted run is exhausted instead of interleaved in key
    order, violating the [(at, seq)] total order whenever a handler
    sends into its own window.
    @raise Invalid_argument on non-positive [width] or [buckets]. *)

val add : t -> at:float -> seq:int -> int -> unit
(** Insert a payload at key [(at, seq)].  Keys need not arrive in any
    particular order; [seq] values must be unique for the order to be
    total.  @raise Invalid_argument on negative or non-finite [at]. *)

val pop : t -> (float * int * int) option
(** Remove and return the minimum-key event as [(at, seq, payload)]. *)

val peek_key : t -> (float * int) option
(** The key {!pop} would return, without removing it.  Like {!pop} this
    may open (collect + sort) the next window. *)

(** {2 Allocation-free pop protocol}

    [pop] allocates an option and a tuple per event — measurable at
    millions of events on the simulator's hot path.  [pop_into] removes
    the same minimum-key event but publishes it through out-params
    instead: *)

val pop_into : t -> bool
(** Remove the minimum-key event, exposing it via {!last_at} /
    {!last_seq} / {!last_pay}; [false] when the wheel is empty (the
    out-params then keep their previous values).  Identical pop order
    to {!pop}. *)

val last_at : t -> float

val last_seq : t -> int

val last_pay : t -> int
(** Components of the event most recently removed by {!pop_into};
    overwritten by the next call. *)

val next_at_equals : t -> float -> bool
(** Does the head event fire at exactly the given time?  Equivalent to
    matching {!peek_key} against [Some (at, _)] but allocation-free —
    the same-timestamp batching probe of the simulator's dispatch
    loop. *)

val size : t -> int
(** Events currently stored. *)

val needs_prepare : t -> bool
(** [true] when the wheel is non-empty but no window is open: the next
    {!pop}/{!peek_key} would pay the collect-and-sort of a new epoch.
    The sharded dispatch loop uses this to batch window openings across
    shards through the domain pool. *)

val prepare : t -> unit
(** Open the next window now (collect the next epoch's bucket and sort
    it) if {!needs_prepare}; otherwise a no-op.  Touches only this
    wheel's state, consumes no randomness, and its result is a pure
    function of the wheel's contents — safe to run from a domain task
    that owns the wheel. *)

val footprint_words : t -> int
(** Allocated backing-store size in words (buckets, run, heaps) — the
    quantity the serve-session memory assertions bound.  Proportional to
    the high-water mark of {e live} events, never to the total number of
    events that ever passed through. *)
