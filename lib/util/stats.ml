type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p05 : float;
  p95 : float;
}

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty sample";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  if n = 1 then sorted.(0)
  else begin
    let pos = p *. float_of_int (n - 1) in
    let lo = int_of_float (floor pos) in
    let hi = min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty sample";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  {
    n;
    mean = mean xs;
    stddev = stddev xs;
    min = sorted.(0);
    max = sorted.(n - 1);
    median = percentile xs 0.5;
    p05 = percentile xs 0.05;
    p95 = percentile xs 0.95;
  }

let histogram xs ~bins =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let lo = Array.fold_left Float.min xs.(0) xs and hi = Array.fold_left Float.max xs.(0) xs in
    let span = if Float.equal hi lo then 1.0 else hi -. lo in
    let counts = Array.make bins 0 in
    Array.iter
      (fun x ->
        let b = int_of_float (float_of_int bins *. (x -. lo) /. span) in
        let b = if b >= bins then bins - 1 else b in
        counts.(b) <- counts.(b) + 1)
      xs;
    Array.init bins (fun b ->
        let w = span /. float_of_int bins in
        (lo +. (float_of_int b *. w), lo +. (float_of_int (b + 1) *. w), counts.(b)))
  end

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4f sd=%.4f min=%.4f med=%.4f max=%.4f" s.n s.mean s.stddev
    s.min s.median s.max
