(** Array-backed binary min-heaps.

    Two flavours are provided: a functorial heap over any ordered element
    type (used by the matching solvers), and a specialised
    [Keyed] heap with [decrease_key] support indexed by small integers
    (used for priority queues over node identifiers). *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (E : ORDERED) : sig
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int
  val is_empty : t -> bool
  val add : t -> E.t -> unit

  val min_elt : t -> E.t
  (** @raise Invalid_argument on an empty heap. *)

  val peek_min_opt : t -> E.t option
  (** The minimum without removing it; [None] on an empty heap. *)

  val pop_min : t -> E.t
  (** Removes and returns the minimum. @raise Invalid_argument if empty. *)

  val pop_min_opt : t -> E.t option
  val of_array : E.t array -> t
  val to_sorted_list : t -> E.t list
  (** Destructive: drains the heap in ascending order. *)
end

module Keyed : sig
  (** Min-heap over integer keys [0..n-1] with [float] priorities and
      O(log n) [decrease_key]; each key is present at most once. *)

  type t

  val create : int -> t
  (** [create n] supports keys in [\[0, n)]. *)

  val length : t -> int
  val is_empty : t -> bool
  val mem : t -> int -> bool

  val insert : t -> int -> float -> unit
  (** @raise Invalid_argument if the key is already present. *)

  val priority : t -> int -> float
  (** @raise Not_found if the key is absent. *)

  val decrease_key : t -> int -> float -> unit
  (** Lowers the priority of a present key; no-op if the new priority is
      not lower. @raise Not_found if absent. *)

  val insert_or_decrease : t -> int -> float -> unit

  val pop_min : t -> int * float
  (** @raise Invalid_argument if empty. *)

  val remove : t -> int -> unit
  (** Removes a key if present. *)
end
