(** The designated wall-clock shim — the only module allowed to read
    wall time (the [clock-hygiene] lint rule enforces this).

    Confining clock reads to one module keeps timestamps out of the
    deterministic pipeline: callers receive measured durations for
    reporting, never raw wall-clock values that could leak into seeds,
    weights, or tie-breaks and silently break replay. *)

val now : unit -> float
(** Wall time in seconds, as an opaque origin for {!elapsed_ms}. *)

val elapsed_ms : since:float -> float
(** Milliseconds since a {!now} reading. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with the elapsed
    milliseconds. *)
