(** Multicore worker pool for embarrassingly parallel sweeps.

    The benchmark harness and the experiment trial loops run many
    independent (seed, size) jobs; this pool fans them out over OCaml 5
    domains.  Design constraints, in order:

    - {b Determinism}: results must be bit-identical whatever the domain
      count.  The pool therefore never shares mutable state between
      tasks: each task is a closure over its own inputs (callers give
      every trial its own {!Prng} stream, keyed by trial index, not a
      shared generator), and results land in a slot array indexed by
      task position — the output order is the input order, regardless
      of which domain finished first.
    - {b Simplicity}: a chunk counter fetched with {!Atomic.fetch_and_add}
      is the whole scheduler.  Tasks are grabbed in fixed-size chunks to
      amortise the atomic per task.
    - {b Safety}: the first exception a task raises is re-raised in the
      caller's domain after every worker has joined (no abandoned
      domains, no half-written slots observed). *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], the sensible [--jobs] default. *)

val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f tasks] applies [f] to every element, using up to [jobs]
    domains ([jobs <= 1], an empty input, or a single task degrade to a
    plain sequential map — no domain is ever spawned for them).
    [f] must not touch shared mutable state; it runs concurrently.
    Results are positionally ordered: [(map ~jobs f a).(i) = f a.(i)].
    @raise Invalid_argument if [jobs < 1]. *)

val map_list : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** List version of {!map}; same ordering and determinism guarantees. *)

val run : jobs:int -> (unit -> 'a) array -> 'a array
(** [run ~jobs thunks] evaluates independent thunks; equivalent to
    [map ~jobs (fun t -> t ()) thunks]. *)
