let now () = Unix.gettimeofday ()
let elapsed_ms ~since = 1000.0 *. (now () -. since)

let time f =
  let t0 = now () in
  let r = f () in
  (r, elapsed_ms ~since:t0)
