let default_jobs () = Domain.recommended_domain_count ()

(* Chunked work-stealing over a single atomic counter: each worker
   repeatedly claims [chunk] consecutive task indices and fills the
   corresponding result slots.  Slots are disjoint, so the only
   synchronisation points are the counter and the final joins. *)
let map ~jobs f tasks =
  if jobs < 1 then invalid_arg "Pool.map: jobs must be >= 1";
  let n = Array.length tasks in
  if jobs = 1 || n <= 1 then Array.map f tasks
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let next = Atomic.make 0 in
    (* heavy tasks dominate here (whole protocol runs), so small chunks
       balance better; the atomic is amortised all the same *)
    let chunk = max 1 (n / (jobs * 8)) in
    let worker () =
      let continue = ref true in
      while !continue do
        let lo = Atomic.fetch_and_add next chunk in
        if lo >= n then continue := false
        else
          for i = lo to min (lo + chunk) n - 1 do
            match f tasks.(i) with
            | v -> results.(i) <- Some v
            | exception e ->
                let bt = Printexc.get_raw_backtrace () in
                errors.(i) <- Some (e, bt)
          done
      done
    in
    let domains =
      List.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join domains;
    (* deterministic error choice: the failure at the lowest task index
       wins, whatever the domain interleaving was *)
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt | None -> ())
      errors;
    Array.map
      (function Some v -> v | None -> assert false (* all slots filled *))
      results
  end

let map_list ~jobs f tasks = Array.to_list (map ~jobs f (Array.of_list tasks))
let run ~jobs thunks = map ~jobs (fun t -> t ()) thunks
