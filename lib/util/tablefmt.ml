type align = Left | Right

type row = Cells of string list | Separator

type t = {
  title : string option;
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ?title cols =
  { title; headers = List.map fst cols; aligns = List.map snd cols; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Tablefmt.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_rows t rows = List.iter (add_row t) rows
let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let rows = List.rev t.rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  measure t.headers;
  List.iter (function Cells c -> measure c | Separator -> ()) rows;
  let buf = Buffer.create 1024 in
  let pad align width s =
    let padding = String.make (max 0 (width - String.length s)) ' ' in
    match align with Left -> s ^ padding | Right -> padding ^ s
  in
  let rule () =
    Array.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) '-')) widths;
    Buffer.add_string buf "+\n"
  in
  let line cells =
    List.iteri
      (fun i c ->
        Buffer.add_string buf "| ";
        Buffer.add_string buf (pad (List.nth t.aligns i) widths.(i) c);
        Buffer.add_char buf ' ')
      cells;
    Buffer.add_string buf "|\n"
  in
  (match t.title with
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n'
  | None -> ());
  rule ();
  line t.headers;
  rule ();
  List.iter (function Cells c -> line c | Separator -> rule ()) rows;
  rule ();
  Buffer.contents buf

let print t = print_string (render t)

(* string cells carry no type information, so JSON values are inferred:
   anything that parses as a number is emitted bare, a trailing '%' is
   stripped back to a ratio, everything else is an escaped string *)
let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_cell s =
  let numeric str =
    match float_of_string_opt str with
    | Some f when Float.is_finite f -> Some str
    | _ -> None
  in
  match numeric s with
  | Some lit -> lit
  | None -> (
      let n = String.length s in
      let as_pct =
        if n > 1 && s.[n - 1] = '%' then
          match float_of_string_opt (String.sub s 0 (n - 1)) with
          | Some f when Float.is_finite f -> Some (Printf.sprintf "%.6g" (f /. 100.0))
          | _ -> None
        else None
      in
      match as_pct with
      | Some lit -> lit
      | None -> "\"" ^ json_escape s ^ "\"")

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  (match t.title with
  | Some title -> Buffer.add_string buf (Printf.sprintf "  \"title\": \"%s\",\n" (json_escape title))
  | None -> ());
  Buffer.add_string buf "  \"columns\": [";
  List.iteri
    (fun i h ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf ("\"" ^ json_escape h ^ "\""))
    t.headers;
  Buffer.add_string buf "],\n  \"rows\": [";
  let first = ref true in
  List.iter
    (function
      | Separator -> ()
      | Cells cells ->
          if not !first then Buffer.add_char buf ',';
          first := false;
          Buffer.add_string buf "\n    {";
          List.iteri
            (fun i (h, c) ->
              if i > 0 then Buffer.add_string buf ", ";
              Buffer.add_string buf
                (Printf.sprintf "\"%s\": %s" (json_escape h) (json_cell c)))
            (List.combine t.headers cells);
          Buffer.add_char buf '}')
    (List.rev t.rows);
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let fcell x = Printf.sprintf "%.4f" x
let fcell2 x = Printf.sprintf "%.2f" x
let icell = string_of_int
let pct x = Printf.sprintf "%.1f%%" (100.0 *. x)
