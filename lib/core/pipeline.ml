module Bmatching = Owp_matching.Bmatching
module Faults = Owp_simnet.Faults
module Schedule = Owp_simnet.Schedule

type engine = Run_config.engine =
  | Lic
  | Lic_indexed
  | Lid
  | Lid_reliable
  | Lid_byzantine
  | Greedy
  | Dynamics

type detail = Plain | Stack of Stack.report

type outcome = {
  engine : engine;
  matching : Bmatching.t;
  total_satisfaction : float;
  mean_satisfaction : float;
  total_weight : float;
  guarantee : float option;
  messages : int option;
  rounds : float option;
  wall_ms : float;
  quiesced : bool option;
  cutoff : Stack.cutoff option;
  check_report : Owp_check.Checker.report option;
  stabilize : Owp_check.Stabilize.certificate option;
  serve : Serve_report.t option;
  detail : detail;
}

let weights prefs = Weights.of_preference prefs

let capacity_of prefs =
  let g = Preference.graph prefs in
  Array.init (Graph.node_count g) (Preference.quota prefs)

let satisfaction_profile prefs m =
  let g = Preference.graph prefs in
  Array.init (Graph.node_count g) (fun i -> Preference.satisfaction prefs i (Bmatching.connections m i))

let stable_dynamics prefs =
  let outcome = Owp_stable.Fixtures.solve prefs in
  outcome.Owp_stable.Fixtures.matching

(* deterministic (seed-derived) fail-stop schedule: each node crashes
   independently with probability [frac] at a random early point of the
   run, and never restarts *)
let crash_schedule ~seed ~n frac =
  if frac <= 0.0 then []
  else begin
    let rng = Owp_util.Prng.create (seed lxor 0xC4A5) in
    List.init n (fun v -> v)
    |> List.filter (fun _ -> Owp_util.Prng.bernoulli rng frac)
    |> List.map (fun victim ->
           {
             Stack.victim;
             crash_at = 0.1 +. Owp_util.Prng.float rng 5.0;
             restart_at = None;
           })
  end

(* the crash-only LIC reference of a scheduled run: Algorithm 2 on the
   subgraph induced by the nodes that ended the run participating
   (correct, live, non-retired), with sub edge ids mapped back to the
   original graph's — the edge set a self-stabilized run must converge
   to once the weather clears.

   LID locks are irrevocable, so a slot a survivor mutually locked with
   a peer that later crashed is spent forever; the reference relativizes
   quota by those wasted slots (exactly the move the bounded-damage
   certificate makes for slots locked toward Byzantine peers) — without
   it, exact convergence is provably unachievable under crash-restart
   episodes, and the miss cascades through the survivors *)
let stabilize_reference prefs ~participating ~matching =
  let g = Preference.graph prefs in
  let n = Graph.node_count g in
  let wasted = Array.make n 0 in
  List.iter
    (fun eid ->
      let u, v = Graph.edge_endpoints g eid in
      match (participating.(u), participating.(v)) with
      | true, false -> wasted.(u) <- wasted.(u) + 1
      | false, true -> wasted.(v) <- wasted.(v) + 1
      | _ -> ())
    (Bmatching.edge_ids matching);
  let nodes =
    Array.of_list (List.filter (fun i -> participating.(i)) (List.init n (fun i -> i)))
  in
  let sub, old_of_new = Graph.induced_subgraph g nodes in
  let wsub =
    let arr = Array.make (Graph.edge_count sub) 0.0 in
    Graph.iter_edges sub (fun eid u v ->
        let ou = old_of_new.(u) and ov = old_of_new.(v) in
        arr.(eid) <- Stack.half prefs ou ov +. Stack.half prefs ov ou);
    Weights.of_array sub arr
  in
  let capacity =
    Array.map (fun o -> max 0 (Preference.quota prefs o - wasted.(o))) old_of_new
  in
  let m = Lic.run wsub ~capacity in
  List.filter_map
    (fun sub_eid ->
      let u, v = Graph.edge_endpoints sub sub_eid in
      Graph.find_edge g old_of_new.(u) old_of_new.(v))
    (Bmatching.edge_ids m)

(* which invariants a result is expected to satisfy: LIC/LID carry the
   full set of paper guarantees; global greedy is maximal and
   greedy-stable but has no Theorem 3 bound; the stable-fixtures
   dynamics optimises preference stability, not eq. 9 weights, and a
   Byzantine-restricted matching is deliberately partial, so only the
   instance-level invariants apply to those *)
let instance_level = [ "edge-validity"; "quota"; "weight-symmetry"; "satisfaction-range" ]

let checkers_for cfg =
  if cfg.Run_config.byzantine <> None then instance_level
  else if Run_config.budgeted cfg then
    (* a cutoff matching is deliberately partial: blocking pairs and
       maximality gaps are the measured degradation ({!Owp_check.Anytime}
       quantifies them), so only instance-level invariants are asserted *)
    instance_level
  else
    match cfg.Run_config.engine with
    | Lic | Lic_indexed | Lid | Lid_reliable ->
        (* under crashes, a crashed peer legitimately breaks
           maximality/Theorem 3 for its survivors — but so does an
           unguarded lossy channel, so the checker subset is decided by
           the caller's check flag together with what quiesced, not
           restricted here.  Lid_byzantine never reaches this match arm:
           validate requires a byzantine spec, which the [byzantine <>
           None] case above already claimed *)
        Owp_check.Checker.names
    | Greedy -> List.filter (fun n -> n <> "theorem3") Owp_check.Checker.names
    | Lid_byzantine | Dynamics -> instance_level

let run_config ?capacity cfg prefs =
  let cfg =
    match Run_config.validate cfg with
    | Ok cfg -> cfg
    | Error msg -> invalid_arg ("Pipeline.run_config: " ^ msg)
  in
  let w = weights prefs in
  (* [capacity] overrides the preference quotas: the serving layer
     models membership (a left node is capacity 0, a rejoined one gets
     its quota back) without rebuilding the preference system *)
  let capacity = match capacity with Some c -> c | None -> capacity_of prefs in
  let g = Preference.graph prefs in
  let n = Graph.node_count g in
  let bmax = Preference.max_quota prefs in
  let bound = Theory.theorem3_bound ~bmax in
  let seed = cfg.Run_config.seed in
  let t0 = Owp_util.Clock.now () in
  let matching, messages, guarantee, quiesced, rounds, detail =
    match cfg.Run_config.engine with
    | Lic -> (Lic.run w ~capacity, None, Some bound, None, None, Plain)
    | Lic_indexed -> (Lic_indexed.run w ~capacity, None, Some bound, None, None, Plain)
    | (Lid | Lid_reliable | Lid_byzantine) as engine ->
        let f = cfg.Run_config.faults in
        let reliable = cfg.Run_config.reliable || engine = Lid_reliable in
        let crashes = crash_schedule ~seed ~n f.Faults.crash in
        let adversaries =
          match cfg.Run_config.byzantine with
          | None -> None
          | Some spec ->
              let rng = Owp_util.Prng.create (seed lxor 0xB12) in
              Some
                (Owp_simnet.Adversary.assign rng ~n
                   (Owp_simnet.Adversary.parse_spec spec))
        in
        let r =
          Stack.run ~seed ~fifo:f.Faults.fifo ~faults:(Faults.channel f)
            ~schedule:cfg.Run_config.schedule ~reliable
            ~sim_shards:cfg.Run_config.sim_shards
            ?patience:(Faults.effective_patience f)
            ?deadline:cfg.Run_config.deadline
            ?max_rounds:cfg.Run_config.max_rounds ~crashes ?adversaries
            ~guard:cfg.Run_config.guard ~prefs w ~capacity
        in
        let exact =
          (* the edge set is exactly LIC's — so Theorem 3 applies — only
             when no peer misbehaved or died, every channel fault was
             masked by the transport, no scheduled weather perturbed the
             run (convergence after weather is certified empirically by
             Owp_check.Stabilize, not proven), and no budget cut the run
             short *)
          cfg.Run_config.byzantine = None
          && List.is_empty crashes
          && ((not (Faults.channel_faulty f)) || reliable)
          && Schedule.is_empty cfg.Run_config.schedule
          && Option.is_none r.Stack.cutoff
        in
        ( r.Stack.matching,
          Some (r.Stack.prop_count + r.Stack.rej_count),
          (if exact then Some bound else None),
          Some r.Stack.all_terminated,
          Some r.Stack.completion_time,
          Stack r )
    | Greedy -> (Owp_matching.Greedy.run w ~capacity, None, None, None, None, Plain)
    | Dynamics -> (stable_dynamics prefs, None, None, None, None, Plain)
  in
  let wall_ms = Owp_util.Clock.elapsed_ms ~since:t0 in
  let profile = satisfaction_profile prefs matching in
  let nodes_with_lists = ref 0 and total = ref 0.0 in
  Array.iteri
    (fun i s ->
      if Graph.degree g i > 0 then begin
        incr nodes_with_lists;
        total := !total +. s
      end)
    profile;
  let check_report =
    if cfg.Run_config.check then
      Some
        (Owp_check.Checker.run ~only:(checkers_for cfg)
           (Owp_check.Checker.of_matching ~prefs w matching))
    else None
  in
  let stabilize =
    (* the self-stabilization certificate of a scheduled run: the final
       edge set, restricted to participating endpoints (a lock wasted on
       a Byzantine peer is the damage certificate's business), must
       equal the crash-only LIC reference once the weather ends *)
    match detail with
    | Stack r when not (Schedule.is_empty cfg.Run_config.schedule) ->
        let participating = r.Stack.participating in
        let served =
          List.filter
            (fun eid ->
              let u, v = Graph.edge_endpoints g eid in
              participating.(u) && participating.(v))
            (Bmatching.edge_ids r.Stack.matching)
        in
        let deaths =
          cfg.Run_config.faults.Faults.crash > 0.0
          || (match Schedule.down_spans cfg.Run_config.schedule with
             | [] -> false
             | _ -> true)
        in
        Some
          (Owp_check.Stabilize.check
             (Owp_check.Stabilize.instance ~prefs ~deaths w ~capacity ~edges:served
                ~reference:
                  (stabilize_reference prefs ~participating
                     ~matching:r.Stack.matching)
                ~t_heal:(Schedule.end_time cfg.Run_config.schedule)
                ~quiesce_at:r.Stack.completion_time
                ~quiesced:r.Stack.all_terminated))
    | _ -> None
  in
  {
    engine = cfg.Run_config.engine;
    matching;
    total_satisfaction = !total;
    mean_satisfaction =
      (if !nodes_with_lists = 0 then 0.0 else !total /. float_of_int !nodes_with_lists);
    total_weight = Bmatching.weight matching w;
    guarantee;
    messages;
    rounds;
    wall_ms;
    quiesced;
    cutoff = (match detail with Stack r -> r.Stack.cutoff | Plain -> None);
    check_report;
    stabilize;
    serve = None;
    detail;
  }
