module Bmatching = Owp_matching.Bmatching
module Faults = Owp_simnet.Faults

type engine = Run_config.engine =
  | Lic
  | Lic_indexed
  | Lid
  | Lid_reliable
  | Lid_byzantine
  | Greedy
  | Dynamics

type detail = Plain | Stack of Stack.report

type outcome = {
  engine : engine;
  matching : Bmatching.t;
  total_satisfaction : float;
  mean_satisfaction : float;
  total_weight : float;
  guarantee : float option;
  messages : int option;
  rounds : float option;
  wall_ms : float;
  quiesced : bool option;
  cutoff : Stack.cutoff option;
  check_report : Owp_check.Checker.report option;
  detail : detail;
}

let weights prefs = Weights.of_preference prefs

let capacity_of prefs =
  let g = Preference.graph prefs in
  Array.init (Graph.node_count g) (Preference.quota prefs)

let satisfaction_profile prefs m =
  let g = Preference.graph prefs in
  Array.init (Graph.node_count g) (fun i -> Preference.satisfaction prefs i (Bmatching.connections m i))

let stable_dynamics prefs =
  let outcome = Owp_stable.Fixtures.solve prefs in
  outcome.Owp_stable.Fixtures.matching

(* deterministic (seed-derived) fail-stop schedule: each node crashes
   independently with probability [frac] at a random early point of the
   run, and never restarts *)
let crash_schedule ~seed ~n frac =
  if frac <= 0.0 then []
  else begin
    let rng = Owp_util.Prng.create (seed lxor 0xC4A5) in
    List.init n (fun v -> v)
    |> List.filter (fun _ -> Owp_util.Prng.bernoulli rng frac)
    |> List.map (fun victim ->
           {
             Stack.victim;
             crash_at = 0.1 +. Owp_util.Prng.float rng 5.0;
             restart_at = None;
           })
  end

(* which invariants a result is expected to satisfy: LIC/LID carry the
   full set of paper guarantees; global greedy is maximal and
   greedy-stable but has no Theorem 3 bound; the stable-fixtures
   dynamics optimises preference stability, not eq. 9 weights, and a
   Byzantine-restricted matching is deliberately partial, so only the
   instance-level invariants apply to those *)
let instance_level = [ "edge-validity"; "quota"; "weight-symmetry"; "satisfaction-range" ]

let checkers_for cfg =
  if cfg.Run_config.byzantine <> None then instance_level
  else if Run_config.budgeted cfg then
    (* a cutoff matching is deliberately partial: blocking pairs and
       maximality gaps are the measured degradation ({!Owp_check.Anytime}
       quantifies them), so only instance-level invariants are asserted *)
    instance_level
  else
    match cfg.Run_config.engine with
    | Lic | Lic_indexed | Lid ->
        (* under crashes, a crashed peer legitimately breaks
           maximality/Theorem 3 for its survivors — but so does an
           unguarded lossy channel, so the checker subset is decided by
           the caller's check flag together with what quiesced, not
           restricted here *)
        Owp_check.Checker.names
    | Lid_reliable -> Owp_check.Checker.names
    | Greedy -> List.filter (fun n -> n <> "theorem3") Owp_check.Checker.names
    | Lid_byzantine | Dynamics -> instance_level

let run_config cfg prefs =
  let cfg =
    match Run_config.validate cfg with
    | Ok cfg -> cfg
    | Error msg -> invalid_arg ("Pipeline.run_config: " ^ msg)
  in
  let w = weights prefs in
  let capacity = capacity_of prefs in
  let g = Preference.graph prefs in
  let n = Graph.node_count g in
  let bmax = Preference.max_quota prefs in
  let bound = Theory.theorem3_bound ~bmax in
  let seed = cfg.Run_config.seed in
  let t0 = Owp_util.Clock.now () in
  let matching, messages, guarantee, quiesced, rounds, detail =
    match cfg.Run_config.engine with
    | Lic -> (Lic.run w ~capacity, None, Some bound, None, None, Plain)
    | Lic_indexed -> (Lic_indexed.run w ~capacity, None, Some bound, None, None, Plain)
    | (Lid | Lid_reliable | Lid_byzantine) as engine ->
        let f = cfg.Run_config.faults in
        let reliable = cfg.Run_config.reliable || engine = Lid_reliable in
        let crashes = crash_schedule ~seed ~n f.Faults.crash in
        let adversaries =
          match cfg.Run_config.byzantine with
          | None -> None
          | Some spec ->
              let rng = Owp_util.Prng.create (seed lxor 0xB12) in
              Some
                (Owp_simnet.Adversary.assign rng ~n
                   (Owp_simnet.Adversary.parse_spec spec))
        in
        let r =
          Stack.run ~seed ~fifo:f.Faults.fifo ~faults:(Faults.channel f) ~reliable
            ?patience:(Faults.effective_patience f)
            ?deadline:cfg.Run_config.deadline
            ?max_rounds:cfg.Run_config.max_rounds ~crashes ?adversaries
            ~guard:cfg.Run_config.guard ~prefs w ~capacity
        in
        let exact =
          (* the edge set is exactly LIC's — so Theorem 3 applies — only
             when no peer misbehaved or died, every channel fault was
             masked by the transport, and no budget cut the run short *)
          cfg.Run_config.byzantine = None
          && List.is_empty crashes
          && ((not (Faults.channel_faulty f)) || reliable)
          && Option.is_none r.Stack.cutoff
        in
        ( r.Stack.matching,
          Some (r.Stack.prop_count + r.Stack.rej_count),
          (if exact then Some bound else None),
          Some r.Stack.all_terminated,
          Some r.Stack.completion_time,
          Stack r )
    | Greedy -> (Owp_matching.Greedy.run w ~capacity, None, None, None, None, Plain)
    | Dynamics -> (stable_dynamics prefs, None, None, None, None, Plain)
  in
  let wall_ms = Owp_util.Clock.elapsed_ms ~since:t0 in
  let profile = satisfaction_profile prefs matching in
  let nodes_with_lists = ref 0 and total = ref 0.0 in
  Array.iteri
    (fun i s ->
      if Graph.degree g i > 0 then begin
        incr nodes_with_lists;
        total := !total +. s
      end)
    profile;
  let check_report =
    if cfg.Run_config.check then
      Some
        (Owp_check.Checker.run ~only:(checkers_for cfg)
           (Owp_check.Checker.of_matching ~prefs w matching))
    else None
  in
  {
    engine = cfg.Run_config.engine;
    matching;
    total_satisfaction = !total;
    mean_satisfaction =
      (if !nodes_with_lists = 0 then 0.0 else !total /. float_of_int !nodes_with_lists);
    total_weight = Bmatching.weight matching w;
    guarantee;
    messages;
    rounds;
    wall_ms;
    quiesced;
    cutoff = (match detail with Stack r -> r.Stack.cutoff | Plain -> None);
    check_report;
    detail;
  }
