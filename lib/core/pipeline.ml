module Bmatching = Owp_matching.Bmatching

type algorithm = Lid_distributed | Lic_centralized | Global_greedy | Stable_dynamics

type outcome = {
  matching : Bmatching.t;
  total_satisfaction : float;
  mean_satisfaction : float;
  total_weight : float;
  guarantee : float option;
  messages : int option;
  quiesced : bool option;
  check_report : Owp_check.Checker.report option;
}

let weights prefs = Weights.of_preference prefs

let capacity_of prefs =
  let g = Preference.graph prefs in
  Array.init (Graph.node_count g) (Preference.quota prefs)

let satisfaction_profile prefs m =
  let g = Preference.graph prefs in
  Array.init (Graph.node_count g) (fun i -> Preference.satisfaction prefs i (Bmatching.connections m i))

let stable_dynamics prefs =
  let outcome = Owp_stable.Fixtures.solve prefs in
  outcome.Owp_stable.Fixtures.matching

(* which invariants a result is expected to satisfy: LIC/LID carry the
   full set of paper guarantees; global greedy is maximal and
   greedy-stable but has no Theorem 3 bound; the stable-fixtures
   dynamics optimises preference stability, not eq. 9 weights, so only
   the instance-level invariants apply *)
let checkers_for = function
  | Lid_distributed | Lic_centralized -> Owp_check.Checker.names
  | Global_greedy ->
      List.filter (fun n -> n <> "theorem3") Owp_check.Checker.names
  | Stable_dynamics ->
      [ "edge-validity"; "quota"; "weight-symmetry"; "satisfaction-range" ]

let run ?(seed = 7) ?(check = false) algorithm prefs =
  let w = weights prefs in
  let capacity = capacity_of prefs in
  let bmax = Preference.max_quota prefs in
  let matching, messages, guarantee, quiesced =
    match algorithm with
    | Lid_distributed ->
        let r = Lid.run ~seed w ~capacity in
        (r.Lid.matching, Some (r.Lid.prop_count + r.Lid.rej_count),
         Some (Theory.theorem3_bound ~bmax), Some r.Lid.all_terminated)
    | Lic_centralized ->
        (Lic.run w ~capacity, None, Some (Theory.theorem3_bound ~bmax), None)
    | Global_greedy -> (Owp_matching.Greedy.run w ~capacity, None, None, None)
    | Stable_dynamics -> (stable_dynamics prefs, None, None, None)
  in
  let profile = satisfaction_profile prefs matching in
  let g = Preference.graph prefs in
  let nodes_with_lists = ref 0 and total = ref 0.0 in
  Array.iteri
    (fun i s ->
      if Graph.degree g i > 0 then begin
        incr nodes_with_lists;
        total := !total +. s
      end)
    profile;
  let check_report =
    if check then
      Some
        (Owp_check.Checker.run
           ~only:(checkers_for algorithm)
           (Owp_check.Checker.of_matching ~prefs w matching))
    else None
  in
  {
    matching;
    total_satisfaction = !total;
    mean_satisfaction =
      (if !nodes_with_lists = 0 then 0.0 else !total /. float_of_int !nodes_with_lists);
    total_weight = Bmatching.weight matching w;
    guarantee;
    messages;
    quiesced;
    check_report;
  }
