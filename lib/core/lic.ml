module Bmatching = Owp_matching.Bmatching

type strategy = Heaviest_first | Climbing | Random_climb of Owp_util.Prng.t

(* Pool membership: an edge is available iff it is unselected and both
   endpoints still have residual quota (eq. 13's availability). *)
type pool = {
  g : Graph.t;
  w : Weights.t;
  residual : int array;
  selected : bool array;
}

let in_pool p eid =
  (not p.selected.(eid))
  &&
  let u, v = Graph.edge_endpoints p.g eid in
  p.residual.(u) > 0 && p.residual.(v) > 0

(* Heaviest pool edge sharing exactly one endpoint with [eid] (i.e. the
   strongest member of E_ij), or -1. *)
let heaviest_rival p eid =
  let u, v = Graph.edge_endpoints p.g eid in
  let best = ref (-1) in
  let consider e = if e <> eid && in_pool p e && (!best < 0 || Weights.heavier p.w e !best) then best := e in
  Graph.iter_neighbors p.g u (fun _ e -> consider e);
  Graph.iter_neighbors p.g v (fun _ e -> consider e);
  !best

let rec climb p eid =
  let rival = heaviest_rival p eid in
  if rival >= 0 && Weights.heavier p.w rival eid then climb p rival else eid

let select p eid =
  let u, v = Graph.edge_endpoints p.g eid in
  p.selected.(eid) <- true;
  p.residual.(u) <- p.residual.(u) - 1;
  p.residual.(v) <- p.residual.(v) - 1

let run ?(strategy = Heaviest_first) ?(check = false) w ~capacity =
  let g = Weights.graph w in
  let m = Graph.edge_count g in
  let p = { g; w; residual = Array.copy capacity; selected = Array.make m false } in
  let chosen = ref [] in
  (match strategy with
  | Heaviest_first ->
      let order = Array.init m (fun e -> e) in
      Array.sort (fun e f -> Weights.compare_edges w f e) order;
      Array.iter
        (fun eid ->
          if in_pool p eid then begin
            (* the heaviest pool edge is locally heaviest by definition *)
            select p eid;
            chosen := eid :: !chosen
          end)
        order
  | Climbing ->
      for seed = 0 to m - 1 do
        (* climbing is restarted from every edge: each restart either
           finds the pool empty near the seed or locks one local max *)
        let e = ref seed in
        while in_pool p !e do
          let top = climb p !e in
          select p top;
          chosen := top :: !chosen
        done
      done
  | Random_climb rng ->
      let order = Owp_util.Prng.permutation rng m in
      Array.iter
        (fun seed ->
          let e = ref seed in
          while in_pool p !e do
            let top = climb p !e in
            select p top;
            chosen := top :: !chosen
          done)
        order);
  let matching = Bmatching.of_edge_ids g ~capacity (List.rev !chosen) in
  if check then
    Owp_check.Checker.assert_ok
      ~only:[ "edge-validity"; "quota"; "blocking-pair"; "maximality" ]
      (Owp_check.Checker.of_matching w matching);
  matching
