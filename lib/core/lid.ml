(* owp-lint: pure — the LID transition relation is a function of
   explicit state; no I/O, clocks, or ambient randomness may creep in *)
module Simnet = Owp_simnet.Simnet
module Bmatching = Owp_matching.Bmatching
module Violation = Owp_check.Violation
module Checker = Owp_check.Checker
module Explore = Owp_check.Explore

type message = Prop | Rej

(* Per-node protocol state.  The paper's four sets are represented as:
   U_i = u_set, P_i = in_p (all proposals, locked included) with
   P_i \ K_i = pending, A_i = a_set, K_i = k_set.  wsorted is the
   node's weight list: incident neighbours by decreasing edge weight. *)
type node_state = {
  wsorted : (int * int) array; (* (neighbour, edge id), heaviest first *)
  u_set : (int, unit) Hashtbl.t;
  in_p : (int, unit) Hashtbl.t;
  pending : (int, unit) Hashtbl.t;
  a_set : (int, unit) Hashtbl.t;
  k_set : (int, unit) Hashtbl.t;
  mutable ptr : int; (* scan position for topRanked(U \ P) *)
  mutable finished : bool;
}

type state = { graph : Graph.t; nodes : node_state array }

type event = Send of int * int * message | Lock of int * int

(* ------------------------------------------------------------------ *)
(* transition relation (Alg. 1), shared by the simulator driver and    *)
(* the exhaustive interleaving explorer                                 *)
(* ------------------------------------------------------------------ *)

(* line 15–16: all proposals answered — decline everyone left *)
let check_done st emit i =
  let s = st.nodes.(i) in
  if (not s.finished) && Hashtbl.length s.pending = 0 then begin
    List.iter
      (fun v -> emit (Send (i, v, Rej)))
      (List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) s.u_set []));
    Hashtbl.reset s.u_set;
    s.finished <- true
  end

(* line 12–14: mutual proposal — lock the connection *)
let lock st emit i v =
  let s = st.nodes.(i) in
  Hashtbl.remove s.u_set v;
  Hashtbl.remove s.a_set v;
  Hashtbl.remove s.pending v;
  Hashtbl.replace s.k_set v ();
  emit (Lock (i, v))

(* lines 9–11: propose to the next-ranked neighbour still in U \ P *)
let propose_next st emit i =
  let s = st.nodes.(i) in
  let len = Array.length s.wsorted in
  let rec advance () =
    if s.ptr >= len then None
    else begin
      let v, _ = s.wsorted.(s.ptr) in
      if Hashtbl.mem s.u_set v && not (Hashtbl.mem s.in_p v) then Some v
      else begin
        s.ptr <- s.ptr + 1;
        advance ()
      end
    end
  in
  match advance () with
  | None -> ()
  | Some v ->
      Hashtbl.replace s.in_p v ();
      Hashtbl.replace s.pending v ();
      emit (Send (i, v, Prop));
      (* the candidate may have proposed to us already *)
      if Hashtbl.mem s.a_set v then lock st emit i v

let init ?ranking w ~capacity =
  let g = Weights.graph w in
  let n = Graph.node_count g in
  Array.iter (fun b -> if b < 0 then invalid_arg "Lid.run: negative capacity") capacity;
  let quota = Array.mapi (fun i b -> min b (Graph.degree g i)) capacity in
  let weight_list i =
    match ranking with
    | Some f -> Array.copy (f i)
    | None ->
        let ws = Array.copy (Graph.neighbors g i) in
        Array.sort (fun (_, e) (_, f) -> Weights.compare_edges w f e) ws;
        ws
  in
  let nodes =
    Array.init n (fun i ->
        let ws = weight_list i in
        let u_set = Hashtbl.create 16 in
        Array.iter (fun (v, _) -> Hashtbl.replace u_set v ()) ws;
        {
          wsorted = ws;
          u_set;
          in_p = Hashtbl.create 8;
          pending = Hashtbl.create 8;
          a_set = Hashtbl.create 8;
          k_set = Hashtbl.create 8;
          ptr = 0;
          finished = false;
        })
  in
  let st = { graph = g; nodes } in
  let events = ref [] in
  let emit e = events := e :: !events in
  (* lines 1–3: initial proposals to the top b_i of the weight list *)
  for i = 0 to n - 1 do
    let s = nodes.(i) in
    let target = quota.(i) in
    let made = ref 0 in
    while !made < target && s.ptr < Array.length s.wsorted do
      let v, _ = s.wsorted.(s.ptr) in
      if (not (Hashtbl.mem s.in_p v)) && Hashtbl.mem s.u_set v then begin
        Hashtbl.replace s.in_p v ();
        Hashtbl.replace s.pending v ();
        emit (Send (i, v, Prop));
        incr made
      end;
      s.ptr <- s.ptr + 1
    done;
    (* reset the scan pointer: later proposals rescan from the top,
       skipping anything already proposed to or no longer in U *)
    s.ptr <- 0;
    check_done st emit i
  done;
  (st, List.rev !events)

let deliver st ~src ~dst m =
  let i = dst and u = src in
  let s = st.nodes.(i) in
  let events = ref [] in
  let emit e = events := e :: !events in
  if not s.finished then begin
    (match m with
    | Prop ->
        Hashtbl.replace s.a_set u ();
        if Hashtbl.mem s.pending u then lock st emit i u
    | Rej ->
        Hashtbl.remove s.u_set u;
        if Hashtbl.mem s.pending u then begin
          Hashtbl.remove s.pending u;
          (* u stays in in_p: it was proposed to and must not be
             proposed to again *)
          propose_next st emit i
        end);
    check_done st emit i
  end;
  (* a finished node already declined everyone still unanswered, so a
     late PROP needs no reply and a late REJ changes nothing *)
  List.rev !events

(* ------------------------------------------------------------------ *)
(* observations                                                         *)
(* ------------------------------------------------------------------ *)

let quiesced st = Array.for_all (fun s -> s.finished) st.nodes

let awaiting_reply st ~node ~peer = Hashtbl.mem st.nodes.(node).pending peer

let locks st i =
  List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) st.nodes.(i).k_set [])

let node_finished st i = st.nodes.(i).finished

let unterminated_nodes st =
  let out = ref [] in
  for i = Array.length st.nodes - 1 downto 0 do
    if not st.nodes.(i).finished then out := i :: !out
  done;
  !out

let quiescence_violations st =
  List.map
    (fun i ->
      let s = st.nodes.(i) in
      Violation.v ~checker:"lid-quiescence" (Violation.Node i)
        ~expected:"all proposals answered and U_i emptied (Lemma 5)"
        ~actual:
          (Printf.sprintf "%d unanswered proposal(s), %d candidate(s) left in U_i"
             (Hashtbl.length s.pending) (Hashtbl.length s.u_set)))
    (unterminated_nodes st)

(* Anytime cutoff (Floréen et al.: blocking pairs shrink with rounds,
   so a budgeted run serves a principled partial matching).  Freezing
   must not go through [deliver]: feeding synthetic REJs one at a time
   would re-enter [propose_next] and mint NEW pendings (and possibly
   locks) after the budget expired.  Instead both endpoints of every
   tentative proposal are released atomically — pendings cleared,
   candidate sets emptied, every node marked finished — so no phantom
   slot survives at either end and no post-cutoff cascade starts.
   Mutual locks are untouched: the served matching is exactly
   [locked_edge_ids].  Returns the released (proposer, peer) pairs,
   ascending. *)
let freeze st =
  let released = ref [] in
  Array.iteri
    (fun i s ->
      if not s.finished then begin
        List.iter
          (fun v -> released := (i, v) :: !released)
          (List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) s.pending []));
        Hashtbl.reset s.pending;
        Hashtbl.reset s.u_set;
        s.finished <- true
      end)
    st.nodes;
  List.rev !released

(* assemble the matching from the locked sets; K is symmetric on a
   clean run, and intersection keeps the result feasible otherwise *)
let locked_edge_ids st =
  let ids = ref [] in
  Graph.iter_edges st.graph (fun eid a b ->
      if Hashtbl.mem st.nodes.(a).k_set b && Hashtbl.mem st.nodes.(b).k_set a then
        ids := eid :: !ids);
  List.sort compare !ids

(* ------------------------------------------------------------------ *)
(* exploration support                                                  *)
(* ------------------------------------------------------------------ *)

let copy_state st =
  {
    graph = st.graph;
    nodes =
      Array.map
        (fun s ->
          {
            s with
            u_set = Hashtbl.copy s.u_set;
            in_p = Hashtbl.copy s.in_p;
            pending = Hashtbl.copy s.pending;
            a_set = Hashtbl.copy s.a_set;
            k_set = Hashtbl.copy s.k_set;
          })
        st.nodes;
  }

let add_sorted_keys buf tbl =
  let keys = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl []) in
  List.iter
    (fun k ->
      Buffer.add_string buf (string_of_int k);
      Buffer.add_char buf ',')
    keys

(* the scan pointer is excluded on purpose: it only caches how far the
   monotone topRanked(U \ P) scan has advanced, and U only shrinks while
   P only grows, so states differing in ptr alone behave identically *)
let fingerprint st =
  let b = Buffer.create 256 in
  Array.iter
    (fun s ->
      Buffer.add_char b (if s.finished then 'F' else 'a');
      Buffer.add_char b 'u';
      add_sorted_keys b s.u_set;
      Buffer.add_char b 'p';
      add_sorted_keys b s.in_p;
      Buffer.add_char b 'w';
      add_sorted_keys b s.pending;
      Buffer.add_char b 'x';
      add_sorted_keys b s.a_set;
      Buffer.add_char b 'k';
      add_sorted_keys b s.k_set;
      Buffer.add_char b '|')
    st.nodes;
  Buffer.contents b

let sends_of events =
  List.filter_map
    (function
      | Send (src, dst, m) -> Some { Explore.src; dst; payload = m }
      | Lock _ -> None)
    events

let model w ~capacity =
  {
    Explore.init =
      (fun () ->
        let st, events = init w ~capacity in
        (st, sends_of events));
    deliver = (fun st ~src ~dst m -> sends_of (deliver st ~src ~dst m));
    copy = copy_state;
    fingerprint;
    quiesced;
    stragglers = unterminated_nodes;
    observe = locked_edge_ids;
    msg_tag = (function Prop -> 0 | Rej -> 1);
    (* the reliable-transport escape hatch: a peer declared dead is a
       peer that implicitly declined — the very same Rej transition *)
    give_up =
      Some (fun st ~self ~peer -> sends_of (deliver st ~src:peer ~dst:self Rej));
  }

(* ------------------------------------------------------------------ *)
(* simulated execution on Simnet                                        *)
(* ------------------------------------------------------------------ *)

type cutoff = { cut_at : float; released : int; abandoned : int }

type report = {
  matching : Bmatching.t;
  prop_count : int;
  rej_count : int;
  delivered : int;
  dropped : int;
  completion_time : float;
  all_terminated : bool;
  quiescence : Violation.t list;
  cutoff : cutoff option;
}

let run ?(seed = 0x11D) ?(delay = Simnet.Uniform (0.5, 1.5)) ?(fifo = true)
    ?(faults = Simnet.no_faults) ?deadline ?(on_lock = fun _ _ _ -> ())
    ?(check = false) w ~capacity =
  (match deadline with
  | Some d when d <= 0.0 -> invalid_arg "Lid.run: deadline must be positive"
  | _ -> ());
  let st, initial = init w ~capacity in
  let n = Graph.node_count st.graph in
  let net = Simnet.create ~seed ~fifo ~faults ~nodes:(max n 1) ~delay () in
  let prop_count = ref 0 and rej_count = ref 0 in
  let process =
    List.iter (function
      | Send (src, dst, Prop) ->
          incr prop_count;
          Simnet.send net ~src ~dst Prop
      | Send (src, dst, Rej) ->
          incr rej_count;
          Simnet.send net ~src ~dst Rej
      | Lock (i, v) -> on_lock (Simnet.now net) i v)
  in
  Simnet.set_handler net (fun ~src ~dst m -> process (deliver st ~src ~dst m));
  process initial;
  let cutoff =
    match deadline with
    | None ->
        Simnet.run net;
        None
    | Some d ->
        Simnet.run_until net d;
        let abandoned = Simnet.pending_events net in
        let released = List.length (freeze st) in
        Some { cut_at = d; released; abandoned }
  in
  let matching = Bmatching.of_edge_ids st.graph ~capacity (locked_edge_ids st) in
  if check then
    (* at a cutoff the matching is deliberately partial: blocking pairs
       and maximality gaps are the measured degradation, not defects *)
    Checker.assert_ok
      ~only:
        (if Option.is_none cutoff then
           [ "edge-validity"; "quota"; "blocking-pair"; "maximality" ]
         else [ "edge-validity"; "quota" ])
      (Checker.of_matching w matching);
  {
    matching;
    prop_count = !prop_count;
    rej_count = !rej_count;
    delivered = Simnet.messages_delivered net;
    dropped = Simnet.messages_dropped net;
    completion_time = Simnet.now net;
    all_terminated = quiesced st;
    quiescence = quiescence_violations st;
    cutoff;
  }
