(* owp-lint: pure — the LID transition relation is a function of
   explicit state; no I/O, clocks, or ambient randomness may creep in *)
module Simnet = Owp_simnet.Simnet
module Bmatching = Owp_matching.Bmatching
module Violation = Owp_check.Violation
module Checker = Owp_check.Checker
module Explore = Owp_check.Explore

type message = Prop | Rej

(* Per-node protocol state.  The paper's four sets — U_i, P_i (all
   proposals, locked included), P_i \ K_i (= pending), A_i and K_i —
   are packed as per-candidate flag bits over [uniq], the node's sorted
   unique candidate ids: membership is one byte read instead of five
   Hashtbls per node, which is what makes 10^6-node runs tractable.
   [wsorted] is the node's weight list (incident neighbours by
   decreasing edge weight, duplicates possible on multigraphs);
   [slot_of_rank] maps each weight-list position to its canonical slot
   so duplicate ids alias to one membership bit, exactly like the
   id-keyed Hashtbls they replace.  Proposals arriving from outside the
   candidate universe (possible under a custom [ranking]) land in the
   lazy [extra_a] side table. *)
type node_state = {
  wsorted : (int * int) array; (* (neighbour, edge id), heaviest first *)
  uniq : int array; (* candidate ids, ascending, unique *)
  slot_of_rank : int array; (* wsorted index -> slot in uniq *)
  flags : Bytes.t; (* U/P/pending/A/K bits per slot *)
  mutable n_u : int; (* |U_i| *)
  mutable n_pending : int; (* |P_i \ K_i| *)
  mutable extra_a : (int, unit) Hashtbl.t option; (* A_i \ universe *)
  mutable ptr : int; (* scan position for topRanked(U \ P) *)
  mutable finished : bool;
}

type state = { graph : Graph.t; nodes : node_state array }

type event = Send of int * int * message | Lock of int * int

let fl_u = 1 (* U_i: still a candidate *)
let fl_p = 2 (* P_i: proposed to (locked included) *)
let fl_w = 4 (* P_i \ K_i: proposal awaiting an answer *)
let fl_a = 8 (* A_i: proposed to us *)
let fl_k = 16 (* K_i: locked *)

let get s slot = Char.code (Bytes.unsafe_get s.flags slot)
let set s slot f = Bytes.unsafe_set s.flags slot (Char.unsafe_chr f)

(* canonical slot of candidate [id], or -1 when outside the universe *)
let slot_of s id =
  let lo = ref 0 and hi = ref (Array.length s.uniq - 1) in
  let res = ref (-1) in
  while !res < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let x = Array.unsafe_get s.uniq mid in
    if x = id then res := mid else if x < id then lo := mid + 1 else hi := mid - 1
  done;
  !res

(* ------------------------------------------------------------------ *)
(* transition relation (Alg. 1), shared by the simulator driver and    *)
(* the exhaustive interleaving explorer                                 *)
(* ------------------------------------------------------------------ *)

(* line 15–16: all proposals answered — decline everyone left, in
   ascending id order (uniq is sorted) *)
let check_done st emit i =
  let s = st.nodes.(i) in
  if (not s.finished) && s.n_pending = 0 then begin
    if s.n_u > 0 then
      for slot = 0 to Array.length s.uniq - 1 do
        let f = get s slot in
        if f land fl_u <> 0 then begin
          set s slot (f land lnot fl_u);
          emit (Send (i, s.uniq.(slot), Rej))
        end
      done;
    s.n_u <- 0;
    s.finished <- true
  end

(* line 12–14: mutual proposal — lock the connection.  [v] was proposed
   to, so it is always inside the candidate universe. *)
let lock st emit i v =
  let s = st.nodes.(i) in
  let slot = slot_of s v in
  let f = get s slot in
  if f land fl_u <> 0 then s.n_u <- s.n_u - 1;
  if f land fl_w <> 0 then s.n_pending <- s.n_pending - 1;
  set s slot (f land lnot (fl_u lor fl_a lor fl_w) lor fl_k);
  emit (Lock (i, v))

(* lines 9–11: propose to the next-ranked neighbour still in U \ P *)
let propose_next st emit i =
  let s = st.nodes.(i) in
  let len = Array.length s.wsorted in
  let rec advance () =
    if s.ptr >= len then -1
    else begin
      let slot = s.slot_of_rank.(s.ptr) in
      let f = get s slot in
      if f land fl_u <> 0 && f land fl_p = 0 then slot
      else begin
        s.ptr <- s.ptr + 1;
        advance ()
      end
    end
  in
  let slot = advance () in
  if slot >= 0 then begin
    let f = get s slot in
    set s slot (f lor fl_p lor fl_w);
    s.n_pending <- s.n_pending + 1;
    let v = s.uniq.(slot) in
    emit (Send (i, v, Prop));
    (* the candidate may have proposed to us already *)
    if f land fl_a <> 0 then lock st emit i v
  end

let init ?ranking w ~capacity =
  let g = Weights.graph w in
  let n = Graph.node_count g in
  Array.iter (fun b -> if b < 0 then invalid_arg "Lid.run: negative capacity") capacity;
  let quota = Array.mapi (fun i b -> min b (Graph.degree g i)) capacity in
  (* the exact total order of Weights.compare_edges — weight first, then
     (lower endpoint, upper endpoint, id) — inlined over the weight and
     endpoint arrays: rank-derived weights tie constantly, and the
     generic tie-break (tuple build + polymorphic compare) dominated
     init at 10^5-node scale *)
  let ww = Weights.unsafe_weights w in
  let endpoints = Graph.edges g in
  let rank_order ((_ : int), e) ((_ : int), f) =
    if e = f then 0
    else
      let c = Float.compare ww.(f) ww.(e) in
      if c <> 0 then c
      else
        let uf, vf = endpoints.(f) and ue, ve = endpoints.(e) in
        if uf <> ue then compare uf ue
        else if vf <> ve then compare vf ve
        else compare f e
  in
  let weight_list i =
    match ranking with
    | Some f -> Array.copy (f i)
    | None ->
        let ws = Array.copy (Graph.neighbors g i) in
        Array.sort rank_order ws;
        ws
  in
  let nodes =
    Array.init n (fun i ->
        let ws = weight_list i in
        let m = Array.length ws in
        let ids = Array.make (max m 1) 0 in
        for j = 0 to m - 1 do
          ids.(j) <- fst ws.(j)
        done;
        let ids = Array.sub ids 0 m in
        Array.sort (fun (a : int) b -> compare a b) ids;
        let k = ref 0 in
        for j = 0 to m - 1 do
          if !k = 0 || ids.(!k - 1) <> ids.(j) then begin
            ids.(!k) <- ids.(j);
            incr k
          end
        done;
        let uniq = Array.sub ids 0 !k in
        let s =
          {
            wsorted = ws;
            uniq;
            slot_of_rank = Array.make m 0;
            flags = Bytes.make !k (Char.chr fl_u);
            n_u = !k;
            n_pending = 0;
            extra_a = None;
            ptr = 0;
            finished = false;
          }
        in
        for j = 0 to m - 1 do
          s.slot_of_rank.(j) <- slot_of s (fst ws.(j))
        done;
        s)
  in
  let st = { graph = g; nodes } in
  let events = ref [] in
  let emit e = events := e :: !events in
  (* lines 1–3: initial proposals to the top b_i of the weight list *)
  for i = 0 to n - 1 do
    let s = nodes.(i) in
    let target = quota.(i) in
    let made = ref 0 in
    while !made < target && s.ptr < Array.length s.wsorted do
      let slot = s.slot_of_rank.(s.ptr) in
      let f = get s slot in
      if f land fl_p = 0 && f land fl_u <> 0 then begin
        set s slot (f lor fl_p lor fl_w);
        s.n_pending <- s.n_pending + 1;
        emit (Send (i, s.uniq.(slot), Prop));
        incr made
      end;
      s.ptr <- s.ptr + 1
    done;
    (* reset the scan pointer: later proposals rescan from the top,
       skipping anything already proposed to or no longer in U *)
    s.ptr <- 0;
    check_done st emit i
  done;
  (st, List.rev !events)

(* the transition itself, parameterised on the event sink: the list
   built by {!deliver} for the public API, or the simulator driver's
   direct send in {!run} (one closure for the whole run — the hot path
   allocates nothing per delivery) *)
let deliver_into st ~src ~dst m emit =
  let i = dst and u = src in
  let s = st.nodes.(i) in
  if not s.finished then begin
    (match m with
    | Prop -> (
        let slot = slot_of s u in
        if slot >= 0 then begin
          let f = get s slot in
          set s slot (f lor fl_a);
          if f land fl_w <> 0 then lock st emit i u
        end
        else
          (* a proposer outside the candidate universe: remembered in a
             lazy side table so copies and fingerprints still see it *)
          match s.extra_a with
          | Some tbl -> Hashtbl.replace tbl u ()
          | None ->
              let tbl = Hashtbl.create 4 in
              Hashtbl.replace tbl u ();
              s.extra_a <- Some tbl)
    | Rej ->
        let slot = slot_of s u in
        if slot >= 0 then begin
          let f = get s slot in
          if f land fl_u <> 0 then begin
            set s slot (f land lnot fl_u);
            s.n_u <- s.n_u - 1
          end;
          let f = get s slot in
          if f land fl_w <> 0 then begin
            set s slot (f land lnot fl_w);
            s.n_pending <- s.n_pending - 1;
            (* u stays in P_i: it was proposed to and must not be
               proposed to again *)
            propose_next st emit i
          end
        end);
    check_done st emit i
  end
(* a finished node already declined everyone still unanswered, so a
   late PROP needs no reply and a late REJ changes nothing *)

let deliver st ~src ~dst m =
  let events = ref [] in
  deliver_into st ~src ~dst m (fun e -> events := e :: !events);
  List.rev !events

(* ------------------------------------------------------------------ *)
(* observations                                                         *)
(* ------------------------------------------------------------------ *)

let quiesced st = Array.for_all (fun s -> s.finished) st.nodes

let awaiting_reply st ~node ~peer =
  let s = st.nodes.(node) in
  let slot = slot_of s peer in
  slot >= 0 && get s slot land fl_w <> 0

let locks st i =
  let s = st.nodes.(i) in
  let out = ref [] in
  for slot = Array.length s.uniq - 1 downto 0 do
    if get s slot land fl_k <> 0 then out := s.uniq.(slot) :: !out
  done;
  !out

let node_finished st i = st.nodes.(i).finished

let unterminated_nodes st =
  let out = ref [] in
  for i = Array.length st.nodes - 1 downto 0 do
    if not st.nodes.(i).finished then out := i :: !out
  done;
  !out

let quiescence_violations st =
  List.map
    (fun i ->
      let s = st.nodes.(i) in
      Violation.v ~checker:"lid-quiescence" (Violation.Node i)
        ~expected:"all proposals answered and U_i emptied (Lemma 5)"
        ~actual:
          (Printf.sprintf "%d unanswered proposal(s), %d candidate(s) left in U_i"
             s.n_pending s.n_u))
    (unterminated_nodes st)

(* Anytime cutoff (Floréen et al.: blocking pairs shrink with rounds,
   so a budgeted run serves a principled partial matching).  Freezing
   must not go through [deliver]: feeding synthetic REJs one at a time
   would re-enter [propose_next] and mint NEW pendings (and possibly
   locks) after the budget expired.  Instead both endpoints of every
   tentative proposal are released atomically — pendings cleared,
   candidate sets emptied, every node marked finished — so no phantom
   slot survives at either end and no post-cutoff cascade starts.
   Mutual locks are untouched: the served matching is exactly
   [locked_edge_ids].  Returns the released (proposer, peer) pairs,
   ascending. *)
let freeze st =
  let released = ref [] in
  Array.iteri
    (fun i s ->
      if not s.finished then begin
        for slot = 0 to Array.length s.uniq - 1 do
          let f = get s slot in
          if f land fl_w <> 0 then released := (i, s.uniq.(slot)) :: !released;
          if f land (fl_w lor fl_u) <> 0 then
            set s slot (f land lnot (fl_w lor fl_u))
        done;
        s.n_pending <- 0;
        s.n_u <- 0;
        s.finished <- true
      end)
    st.nodes;
  List.rev !released

(* assemble the matching from the locked sets; K is symmetric on a
   clean run, and intersection keeps the result feasible otherwise *)
let locked st i v =
  let s = st.nodes.(i) in
  let slot = slot_of s v in
  slot >= 0 && get s slot land fl_k <> 0

let locked_edge_ids st =
  let ids = ref [] in
  Graph.iter_edges st.graph (fun eid a b ->
      if locked st a b && locked st b a then ids := eid :: !ids);
  List.sort (fun (a : int) b -> compare a b) !ids

(* ------------------------------------------------------------------ *)
(* exploration support                                                  *)
(* ------------------------------------------------------------------ *)

let copy_state st =
  {
    graph = st.graph;
    nodes =
      Array.map
        (fun s ->
          {
            s with
            flags = Bytes.copy s.flags;
            extra_a = Option.map Hashtbl.copy s.extra_a;
          })
        st.nodes;
  }

let add_flagged_ids buf s flag =
  for slot = 0 to Array.length s.uniq - 1 do
    if get s slot land flag <> 0 then begin
      Buffer.add_string buf (string_of_int s.uniq.(slot));
      Buffer.add_char buf ','
    end
  done

(* A_i spans the universe bits plus the extra side table *)
let add_a_ids buf s =
  match s.extra_a with
  | None -> add_flagged_ids buf s fl_a
  | Some tbl ->
      (* owp-lint: allow hash-order — collected keys are sorted before use *)
      let acc = ref (Hashtbl.fold (fun k () l -> k :: l) tbl []) in
      for slot = Array.length s.uniq - 1 downto 0 do
        if get s slot land fl_a <> 0 then acc := s.uniq.(slot) :: !acc
      done;
      List.iter
        (fun k ->
          Buffer.add_string buf (string_of_int k);
          Buffer.add_char buf ',')
        (List.sort compare !acc)

(* the scan pointer is excluded on purpose: it only caches how far the
   monotone topRanked(U \ P) scan has advanced, and U only shrinks while
   P only grows, so states differing in ptr alone behave identically *)
let fingerprint st =
  let b = Buffer.create 256 in
  Array.iter
    (fun s ->
      Buffer.add_char b (if s.finished then 'F' else 'a');
      Buffer.add_char b 'u';
      add_flagged_ids b s fl_u;
      Buffer.add_char b 'p';
      add_flagged_ids b s fl_p;
      Buffer.add_char b 'w';
      add_flagged_ids b s fl_w;
      Buffer.add_char b 'x';
      add_a_ids b s;
      Buffer.add_char b 'k';
      add_flagged_ids b s fl_k;
      Buffer.add_char b '|')
    st.nodes;
  Buffer.contents b

let sends_of events =
  List.filter_map
    (function
      | Send (src, dst, m) -> Some { Explore.src; dst; payload = m }
      | Lock _ -> None)
    events

let model w ~capacity =
  {
    Explore.init =
      (fun () ->
        let st, events = init w ~capacity in
        (st, sends_of events));
    deliver = (fun st ~src ~dst m -> sends_of (deliver st ~src ~dst m));
    copy = copy_state;
    fingerprint;
    quiesced;
    stragglers = unterminated_nodes;
    observe = locked_edge_ids;
    msg_tag = (function Prop -> 0 | Rej -> 1);
    (* the reliable-transport escape hatch: a peer declared dead is a
       peer that implicitly declined — the very same Rej transition *)
    give_up =
      Some (fun st ~self ~peer -> sends_of (deliver st ~src:peer ~dst:self Rej));
  }

(* ------------------------------------------------------------------ *)
(* simulated execution on Simnet                                        *)
(* ------------------------------------------------------------------ *)

type cutoff = { cut_at : float; released : int; abandoned : int }

type report = {
  matching : Bmatching.t;
  prop_count : int;
  rej_count : int;
  delivered : int;
  dropped : int;
  completion_time : float;
  all_terminated : bool;
  quiescence : Violation.t list;
  cutoff : cutoff option;
}

let run ?(seed = 0x11D) ?(delay = Simnet.Uniform (0.5, 1.5)) ?(fifo = true)
    ?(faults = Simnet.no_faults) ?(shards = 1) ?(unsafe_lookahead = false)
    ?deadline ?(on_lock = fun _ _ _ -> ()) ?(check = false) w ~capacity =
  (match deadline with
  | Some d when d <= 0.0 -> invalid_arg "Lid.run: deadline must be positive"
  | _ -> ());
  let st, initial = init w ~capacity in
  let n = Graph.node_count st.graph in
  let net =
    Simnet.create ~seed ~fifo ~faults ~shards ~unsafe_lookahead ~nodes:(max n 1)
      ~delay ()
  in
  let prop_count = ref 0 and rej_count = ref 0 in
  let emit = function
    | Send (src, dst, Prop) ->
        incr prop_count;
        Simnet.send net ~src ~dst Prop
    | Send (src, dst, Rej) ->
        incr rej_count;
        Simnet.send net ~src ~dst Rej
    | Lock (i, v) -> on_lock (Simnet.now net) i v
  in
  Simnet.set_handler net (fun ~src ~dst m -> deliver_into st ~src ~dst m emit);
  List.iter emit initial;
  let cutoff =
    match deadline with
    | None ->
        Simnet.run net;
        None
    | Some d ->
        Simnet.run_until net d;
        let abandoned = Simnet.pending_events net in
        let released = List.length (freeze st) in
        Some { cut_at = d; released; abandoned }
  in
  let matching = Bmatching.of_edge_ids st.graph ~capacity (locked_edge_ids st) in
  if check then
    (* at a cutoff the matching is deliberately partial: blocking pairs
       and maximality gaps are the measured degradation, not defects *)
    Checker.assert_ok
      ~only:
        (if Option.is_none cutoff then
           [ "edge-validity"; "quota"; "blocking-pair"; "maximality" ]
         else [ "edge-validity"; "quota" ])
      (Checker.of_matching w matching);
  {
    matching;
    prop_count = !prop_count;
    rej_count = !rej_count;
    delivered = Simnet.messages_delivered net;
    dropped = Simnet.messages_dropped net;
    completion_time = Simnet.now net;
    all_terminated = quiesced st;
    quiescence = quiescence_violations st;
    cutoff;
  }
