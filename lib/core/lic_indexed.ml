module Bmatching = Owp_matching.Bmatching

(* All index state lives in flat arrays: the per-node heaps share one
   backing store in CSR layout (node u's heap is the slice
   [off.(u), off.(u) + hsize.(u))), and edge liveness is derived from
   [selected]/[residual] so heap entries need no back-pointers — a dead
   entry is simply discarded when it surfaces (lazy deletion).

   The engine allocates only the backing store and the liveness arrays:
   weights and endpoints are read straight from the [Weights.t] /
   [Graph.t] internals ([Weights.unsafe_weights], [Graph.edges]), never
   snapshotted, because O(m)-sized copies were measurably the dominant
   cost of the whole run at 10^5-node scale. *)
type t = {
  g : Graph.t;
  wt : float array;  (* Weights' own array, read-only here *)
  edges : (int * int) array;  (* Graph's own endpoint array, u < v *)
  residual : int array;
  dead : Bytes.t;  (* selected, or an endpoint saturated *)
  off : int array;  (* heap slice start per node *)
  hsize : int array;  (* live heap length per node *)
  heap : int array;  (* backing store: edge ids *)
  hw : float array;  (* weight of heap.(i), kept in lock-step *)
}

(* The exact total order of Weights.compare_edges — weight first, then
   (lower endpoint, upper endpoint, id) — inlined over the shared
   arrays so a heap comparison is a few loads, no closure and no
   polymorphic compare.  Indices are edge ids, always in [0, m), so the
   unchecked reads are safe by construction. *)
let tie_heavier st e f =
  let ue, ve = Array.unsafe_get st.edges e in
  let uf, vf = Array.unsafe_get st.edges f in
  if ue <> uf then ue > uf else if ve <> vf then ve > vf else e > f

let heavier st e f =
  let c = Float.compare (Array.unsafe_get st.wt e) (Array.unsafe_get st.wt f) in
  if c <> 0 then c > 0 else tie_heavier st e f

(* heap-entry order at absolute positions [a]/[b] of the backing store:
   the weight sits next to the id ([hw]), so the common case never
   touches the big weight/endpoint arrays at all — heap traffic stays
   inside the node's slice *)
let entry_heavier st a b =
  let c = Float.compare (Array.unsafe_get st.hw a) (Array.unsafe_get st.hw b) in
  if c <> 0 then c > 0
  else tie_heavier st (Array.unsafe_get st.heap a) (Array.unsafe_get st.heap b)

(* Liveness is one byte: [select] marks the taken edge dead and, the
   moment an endpoint saturates, sweeps that node's adjacency marking
   every incident edge dead (each node saturates at most once, so the
   sweeps cost O(m) total).  The hot paths — the seed scan and every
   lazy-deletion purge — then never chase endpoint tuples or residuals. *)
let alive st e = Bytes.unsafe_get st.dead e = '\000'

(* binary max-heap primitives on node u's slice ---------------------- *)

let swap_entries st a b =
  let tmp = st.heap.(a) in
  st.heap.(a) <- st.heap.(b);
  st.heap.(b) <- tmp;
  let tmp = st.hw.(a) in
  st.hw.(a) <- st.hw.(b);
  st.hw.(b) <- tmp

let rec sift_down st base size i =
  let l = (2 * i) + 1 in
  if l < size then begin
    let largest =
      let largest = if entry_heavier st (base + l) (base + i) then l else i in
      let r = l + 1 in
      if r < size && entry_heavier st (base + r) (base + largest) then r else largest
    in
    if largest <> i then begin
      swap_entries st (base + i) (base + largest);
      sift_down st base size largest
    end
  end

let drop_top st u =
  let base = st.off.(u) and size = st.hsize.(u) in
  st.heap.(base) <- st.heap.(base + size - 1);
  st.hw.(base) <- st.hw.(base + size - 1);
  st.hsize.(u) <- size - 1;
  sift_down st base (size - 1) 0

(* heaviest live incident edge of u, purging dead entries for good *)
let rec top st u =
  if st.hsize.(u) = 0 then -1
  else begin
    let e = st.heap.(st.off.(u)) in
    if alive st e then e
    else begin
      drop_top st u;
      top st u
    end
  end

(* Climb to the locally heaviest edge reachable from [e].  An alive edge
   is locally heaviest exactly when it tops both endpoints' heaps: the
   order is strict and alive entries are never removed, so a top that is
   not [e] itself is strictly heavier than [e] — no exclusion lookup (and
   hence no pop/push-back) is ever needed, and each step strictly climbs,
   which bounds the recursion. *)
let rec climb st e =
  let u, v = Array.unsafe_get st.edges e in
  let tu = top st u in
  let tv = top st v in
  if tu = e then if tv = e then e else climb st tv
  else if tv = e then climb st tu
  else climb st (if heavier st tu tv then tu else tv)

let saturate st u =
  Array.iter (fun (_, eid) -> Bytes.unsafe_set st.dead eid '\001') (Graph.neighbors st.g u)

let select st e =
  Bytes.unsafe_set st.dead e '\001';
  let u, v = st.edges.(e) in
  st.residual.(u) <- st.residual.(u) - 1;
  st.residual.(v) <- st.residual.(v) - 1;
  if st.residual.(u) = 0 then saturate st u;
  if st.residual.(v) = 0 then saturate st v

let build w ~capacity =
  let g = Weights.graph w in
  let n = Graph.node_count g and m = Graph.edge_count g in
  let off = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    off.(u + 1) <- off.(u) + Graph.degree g u
  done;
  let st =
    {
      g;
      wt = Weights.unsafe_weights w;
      edges = Graph.edges g;
      residual = Array.copy capacity;
      dead = Bytes.make m '\000';
      off;
      hsize = Array.make n 0;
      heap = Array.make (2 * m) 0;
      hw = Array.make (2 * m) 0.0;
    }
  in
  (* nodes that start saturated (capacity 0) never admit an edge *)
  if Array.exists (fun c -> c <= 0) capacity then
    Array.iteri
      (fun e (u, v) -> if capacity.(u) <= 0 || capacity.(v) <= 0 then Bytes.set st.dead e '\001')
      st.edges;
  (* fill every node's slice in one sweep over the edge array (weights
     are read sequentially here, the only time the engine gathers them),
     then Floyd-heapify each slice: O(deg) per node, O(m) total *)
  for e = 0 to m - 1 do
    let u, v = st.edges.(e) in
    let x = st.wt.(e) in
    let ku = off.(u) + st.hsize.(u) in
    st.heap.(ku) <- e;
    st.hw.(ku) <- x;
    st.hsize.(u) <- st.hsize.(u) + 1;
    let kv = off.(v) + st.hsize.(v) in
    st.heap.(kv) <- e;
    st.hw.(kv) <- x;
    st.hsize.(v) <- st.hsize.(v) + 1
  done;
  for u = 0 to n - 1 do
    let base = off.(u) and k = st.hsize.(u) in
    for i = (k / 2) - 1 downto 0 do
      sift_down st base k i
    done
  done;
  st

let run ?(check = false) w ~capacity =
  let g = Weights.graph w in
  let m = Graph.edge_count g in
  let st = build w ~capacity in
  let chosen = ref [] in
  for seed = 0 to m - 1 do
    while alive st seed do
      let e = climb st seed in
      select st e;
      chosen := e :: !chosen
    done
  done;
  let matching = Bmatching.of_edge_ids g ~capacity (List.rev !chosen) in
  if check then
    Owp_check.Checker.assert_ok
      ~only:[ "edge-validity"; "quota"; "blocking-pair"; "maximality" ]
      (Owp_check.Checker.of_matching w matching);
  matching
