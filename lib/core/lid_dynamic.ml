module Simnet = Owp_simnet.Simnet
module Bmatching = Owp_matching.Bmatching

type event = Stack.node_event = Join of int | Leave of int

type step_report = {
  event : event;
  active_nodes : int;
  total_satisfaction : float;
  weight : float;
  messages_for_event : int;
}

type report = {
  steps : step_report list;
  final_matching : Bmatching.t;
  total_messages : int;
  bootstrap_messages : int;
  quiescent : bool;
}

type message = Prop | Accept | Rej | Leave_msg | Hello | Avail

(* Per-node protocol state.  locked/pending/refused are keyed by
   neighbour id; alive mirrors the active flag of each neighbour as this
   node believes it. *)
type node_state = {
  wsorted : (int * int) array; (* (neighbour, edge id), heaviest first *)
  locked : (int, unit) Hashtbl.t;
  pending : (int, unit) Hashtbl.t; (* PROPs awaiting ACCEPT/REJ *)
  refused : (int, unit) Hashtbl.t; (* neighbours that declined since last AVAIL *)
  waitlist : (int, unit) Hashtbl.t; (* proposers declined while slots were only
                                       tentatively (pending-)occupied *)
  alive : (int, unit) Hashtbl.t;
  mutable active : bool;
  quota : int;
}

let run ?(seed = 0xD1D) ?(delay = Simnet.Uniform (0.5, 1.5)) ~prefs ~initially_active
    ~events () =
  let g = Preference.graph prefs in
  let n = Graph.node_count g in
  if Array.length initially_active <> n then
    invalid_arg "Lid_dynamic.run: active mask arity mismatch";
  let w = Weights.of_preference prefs in
  let net = Simnet.create ~seed ~nodes:(max n 1) ~delay () in
  let messages = ref 0 in
  let send src dst m =
    incr messages;
    Simnet.send net ~src ~dst m
  in
  let state =
    Array.init n (fun i ->
        let ws = Array.copy (Graph.neighbors g i) in
        Array.sort (fun (_, e) (_, f) -> Weights.compare_edges w f e) ws;
        {
          wsorted = ws;
          locked = Hashtbl.create 8;
          pending = Hashtbl.create 8;
          refused = Hashtbl.create 8;
          waitlist = Hashtbl.create 8;
          alive = Hashtbl.create 8;
          active = false;
          quota = Preference.quota prefs i;
        })
  in
  let free_slots i =
    let s = state.(i) in
    s.quota - Hashtbl.length s.locked - Hashtbl.length s.pending
  in
  (* propose down the weight list to alive, non-locked, non-pending,
     non-refused neighbours while slots remain *)
  let propose i =
    let s = state.(i) in
    if s.active then begin
      let k = ref 0 in
      while free_slots i > 0 && !k < Array.length s.wsorted do
        let v, _ = s.wsorted.(!k) in
        if
          Hashtbl.mem s.alive v
          && (not (Hashtbl.mem s.locked v))
          && (not (Hashtbl.mem s.pending v))
          && not (Hashtbl.mem s.refused v)
        then begin
          Hashtbl.replace s.pending v ();
          send i v Prop
        end;
        incr k
      done
    end
  in
  (* capacity became available at [i]: let previously-declined
     neighbours retry, and retry our own refusals *)
  let sorted_keys tbl =
    List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) tbl [])
  in
  let announce_avail i =
    let s = state.(i) in
    List.iter
      (fun v -> if not (Hashtbl.mem s.locked v) then send i v Avail)
      (sorted_keys s.alive)
  in
  (* capacity that was only tentatively held became real room: tell the
     proposers we turned away so they can retry *)
  let drain_waitlist i =
    let s = state.(i) in
    if s.active && free_slots i > 0 && Hashtbl.length s.waitlist > 0 then begin
      let waiting = sorted_keys s.waitlist in
      Hashtbl.reset s.waitlist;
      List.iter
        (fun v ->
          if Hashtbl.mem s.alive v && not (Hashtbl.mem s.locked v) then send i v Avail)
        waiting
    end
  in
  let unlock i v =
    let s = state.(i) in
    if Hashtbl.mem s.locked v then begin
      Hashtbl.remove s.locked v;
      Hashtbl.reset s.refused;
      announce_avail i;
      propose i
    end
  in
  let handle ~src ~dst m =
    let i = dst and u = src in
    let s = state.(i) in
    match m with
    | Prop ->
        if (not s.active) || free_slots i + Hashtbl.length s.pending <= 0 then
          send i u Rej
        else if Hashtbl.mem s.locked u then () (* duplicate; already locked *)
        else if Hashtbl.mem s.pending u then begin
          (* simultaneous proposals: treat the peer's PROP as acceptance *)
          Hashtbl.remove s.pending u;
          Hashtbl.replace s.locked u ();
          send i u Accept;
          drain_waitlist i
        end
        else if free_slots i > 0 then begin
          Hashtbl.replace s.locked u ();
          send i u Accept
        end
        else begin
          (* declined only because slots are pending, not locked: the
             proposer may retry once those pendings resolve *)
          Hashtbl.replace s.waitlist u ();
          send i u Rej
        end
    | Accept ->
        if Hashtbl.mem s.pending u then begin
          Hashtbl.remove s.pending u;
          Hashtbl.replace s.locked u ()
        end
        else if not (Hashtbl.mem s.locked u) then
          (* our pending was cleared (e.g. we left and rejoined): honour
             the lock if we still have room, otherwise back out *)
          if s.active && free_slots i > 0 then Hashtbl.replace s.locked u ()
          else send i u Leave_msg
    | Rej ->
        if Hashtbl.mem s.pending u then begin
          Hashtbl.remove s.pending u;
          Hashtbl.replace s.refused u ();
          propose i;
          drain_waitlist i
        end
    | Leave_msg ->
        Hashtbl.remove s.alive u;
        Hashtbl.remove s.pending u;
        Hashtbl.remove s.refused u;
        unlock i u
    | Hello ->
        Hashtbl.replace s.alive u ();
        if s.active then begin
          Hashtbl.remove s.refused u;
          propose i
        end
    | Avail ->
        if s.active then begin
          Hashtbl.remove s.refused u;
          propose i
        end
  in
  Simnet.set_handler net handle;
  (* bootstrap: activate the initial peers *)
  let activate i =
    let s = state.(i) in
    s.active <- true;
    Hashtbl.reset s.refused;
    Graph.iter_neighbors g i (fun v _ ->
        if state.(v).active then begin
          Hashtbl.replace s.alive v ();
          send i v Hello
        end)
  in
  let deactivate i =
    let s = state.(i) in
    s.active <- false;
    List.iter (fun v -> send i v Leave_msg) (sorted_keys s.alive);
    Hashtbl.reset s.alive;
    Hashtbl.reset s.locked;
    Hashtbl.reset s.pending;
    Hashtbl.reset s.refused;
    Hashtbl.reset s.waitlist
  in
  for i = 0 to n - 1 do
    if initially_active.(i) then begin
      state.(i).active <- true
    end
  done;
  for i = 0 to n - 1 do
    if state.(i).active then
      Graph.iter_neighbors g i (fun v _ ->
          if state.(v).active then Hashtbl.replace state.(i).alive v ())
  done;
  for i = 0 to n - 1 do
    if state.(i).active then propose i
  done;
  Simnet.run net;
  let bootstrap_messages = !messages in
  let quiescent = ref true in
  let current_matching () =
    let ids = ref [] in
    Graph.iter_edges g (fun eid a b ->
        if Hashtbl.mem state.(a).locked b && Hashtbl.mem state.(b).locked a then
          ids := eid :: !ids);
    Bmatching.of_edge_ids g
      ~capacity:(Array.init n (Preference.quota prefs))
      !ids
  in
  let measure event messages_for_event =
    let m = current_matching () in
    let sat = ref 0.0 and actives = ref 0 in
    for v = 0 to n - 1 do
      if state.(v).active then begin
        incr actives;
        sat := !sat +. Preference.satisfaction prefs v (Bmatching.connections m v)
      end
    done;
    {
      event;
      active_nodes = !actives;
      total_satisfaction = !sat;
      weight = Bmatching.weight m w;
      messages_for_event;
    }
  in
  let steps =
    List.map
      (fun event ->
        let before = !messages in
        (match event with
        | Leave v ->
            if not state.(v).active then
              invalid_arg "Lid_dynamic.run: leaving inactive peer";
            deactivate v
        | Join v ->
            if state.(v).active then invalid_arg "Lid_dynamic.run: joining active peer";
            activate v;
            propose v);
        Simnet.run net;
        (* consistency: locked sets must be symmetric at quiescence *)
        Graph.iter_edges g (fun _ a b ->
            if Hashtbl.mem state.(a).locked b <> Hashtbl.mem state.(b).locked a then
              quiescent := false);
        measure event (!messages - before))
      events
  in
  {
    steps;
    final_matching = current_matching ();
    total_messages = !messages;
    bootstrap_messages;
    quiescent = !quiescent;
  }
