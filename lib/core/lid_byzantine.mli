(** LID under Byzantine peers: adversary-driven runs and their guard.

    {!Lid_robust} and {!Lid_reliable} cover the {e benign} half of the
    paper's §7 "disruptive nodes": silent peers and lossy channels.
    This configuration covers the malicious half.  A subset of nodes is
    handed to {!Owp_simnet.Adversary} behaviours instead of the
    protocol state machine; every {e correct} node keeps running the
    unchanged {!Lid.deliver} transitions, optionally behind a {!Guard}
    that validates all inbound traffic and quarantines offenders.  The
    behaviours, the bootstrap advertisement round, the guard layer and
    the quiet-round give-up discipline are all the {!Stack}'s — this
    module is [Stack.run ~adversaries ~guard ~prefs] plus the
    satisfaction accounting the experiments report and the exhaustive
    verification harness.

    The wire format adds to each PROP the sender's claimed half-weight
    ΔS̄ (eq. 9) and an epoch, and the run opens with a bootstrap
    {e advertisement} round in which every node announces its half of
    each incident edge's symmetric weight; correct nodes rank their
    weight lists by [own half + advertised half].  This is exactly the
    leverage eq. 9 grants: each endpoint can cross-check the only part
    of the weight it cannot compute itself against the public
    structural bound [ΔS̄ ≤ 1/b] — so a weight-liar that inflates its
    half beyond the bound is caught at bootstrap, while in-bound lies
    remain undetectable by construction (a documented limit, like
    equivocation).

    {b Give-up discipline.}  A guarded run must terminate even when an
    adversary simply refuses to answer.  Real timers cannot tell a
    silent Byzantine peer from a slow honest chain without risking
    false declines, so the stack models an {e eventually-perfect
    failure detector}: whenever the network goes quiet with correct
    nodes still stuck, each stuck node gives up — synthetic REJ, the
    {!Lid_reliable} escape hatch — on exactly its pending proposals
    towards adversary-controlled or quarantined peers ("quiet rounds").
    Honest-honest obligations are never given up: they always resolve
    transitively once the Byzantine leaves of the wait-for graph are
    cut.  The unguarded baseline gets no quiet rounds — it is plain
    LID, and a liveness-violating adversary visibly starves it. *)

module Adversary = Owp_simnet.Adversary

val run :
  ?seed:int ->
  ?delay:Owp_simnet.Simnet.delay_model ->
  ?fifo:bool ->
  ?guard:bool ->
  ?guard_config:Guard.config ->
  adversaries:Adversary.model option array ->
  Preference.t ->
  Stack.report
(** Simulate LID with the given adversary assignment ([None] entries
    are correct peers).  Capacities are the preference system's quotas.
    [guard] defaults to [true]; with [guard:false] the run is the
    vulnerable baseline: no advert vetting, no quarantine, no quiet
    rounds.  The report's [damage] field carries the
    {!Owp_check.Byzantine} bounded-damage verdict (including the
    overclaim-lock audit); empty means certified.
    @raise Invalid_argument if [adversaries] has the wrong arity or
    leaves no correct node. *)

val satisfaction_of_correct : Preference.t -> Stack.report -> float
(** Total satisfaction (eq. 4/5) of the correct peers under the
    restricted matching — the quantity E22 reports as "retained". *)

val reference_satisfaction : Preference.t -> correct:bool array -> float
(** The same quantity for the centralized ideal on the correct
    subgraph: LIC restricted to edges between correct peers, evaluated
    with the {e original} preference lists (so the figures are
    comparable).  This is what the correct peers could have achieved
    had the Byzantine peers merely crashed. *)

val verify_exhaustively :
  ?guard:bool ->
  ?guard_config:Guard.config ->
  ?budget:int ->
  ?max_configs:int ->
  byz:int ->
  Preference.t ->
  Owp_check.Explore.verdict
(** Model-check the bounded-damage guarantee on a small instance:
    node [byz] is Byzantine with an injection repertoire covering every
    attack the runtime models express on the wire (honest-looking PROPs,
    over-bound weight claims, REJs, stale epochs, PROPs to strangers),
    [budget] (default 2) injections per schedule, interleaved every
    possible way with ordinary deliveries ({!Owp_check.Explore}) — over
    the {!Stack.explore_protocol} composition, i.e. the production
    guard-above-[Lid.deliver] inbound path.  At every terminal
    configuration the {!Owp_check.Byzantine} certificate is checked;
    with [guard] (default [true]) the verdict must be clean, while
    [guard:false] exhibits the unguarded protocol's starvation
    deadlocks as [explore-termination] violations. *)
