module Simnet = Owp_simnet.Simnet
module Adversary = Owp_simnet.Adversary
module Bmatching = Owp_matching.Bmatching
module Violation = Owp_check.Violation
module Byzantine = Owp_check.Byzantine
module Explore = Owp_check.Explore

(* ------------------------------------------------------------------ *)
(* eq. 9 halves                                                        *)
(* ------------------------------------------------------------------ *)

(* ΔS̄_i(j): node i's half of edge (i,j)'s symmetric weight.  Matches
   Weights.of_preference exactly (same static_delta calls, and IEEE
   addition is commutative), so an all-honest perceived ranking is
   bit-identical to Lid's default weight list. *)
let half prefs i j =
  let b = Preference.quota prefs i and l = Preference.list_len prefs i in
  if b = 0 || l = 0 then 0.0
  else Satisfaction.static_delta ~quota:b ~list_len:l ~rank:(Preference.rank prefs i j)

(* the public structural bound: ΔS̄_j(·) = (1 − R/L)/b_j ≤ 1/b_j, and
   b_j is public — any claim above this is a provable lie *)
let bound prefs j =
  let b = Preference.quota prefs j in
  if b <= 0 then 0.0 else 1.0 /. float_of_int b

(* what node j advertises about its half of edge (j, i) *)
let advert_of prefs adversaries j i =
  match adversaries.(j) with
  | Some (Adversary.Weight_liar lam) -> (1.0 +. lam) *. bound prefs j
  | _ -> half prefs j i

(* perceived ranking of node i: neighbours by decreasing
   own-half + advertised-half, Lid's tie-break order *)
let ranking_of g perceived i =
  let entries =
    Array.to_list (Graph.neighbors g i)
    |> List.filter (fun (v, _) -> Hashtbl.mem perceived v)
  in
  let pw (v, _) = (Hashtbl.find perceived v : float) in
  let sorted =
    List.sort
      (fun ((_, e) as a) ((_, f) as b) ->
        let c = Float.compare (pw b) (pw a) in
        if c <> 0 then c
        else begin
          let ue, ve = Graph.edge_endpoints g e and uf, vf = Graph.edge_endpoints g f in
          compare (uf, vf, f) (ue, ve, e)
        end)
      entries
  in
  Array.of_list sorted

(* ------------------------------------------------------------------ *)
(* adversary behaviours                                                *)
(* ------------------------------------------------------------------ *)

let prop claim = { Guard.epoch = 0; body = Guard.Prop { claim } }
let rej = { Guard.epoch = 0; body = Guard.Rej }

(* f's own (truthful) preference order over its neighbours *)
let own_order prefs g f =
  let entries = Array.to_list (Graph.neighbors g f) in
  List.sort
    (fun (v1, _) (v2, _) ->
      Float.compare
        (half prefs f v2 +. half prefs v2 f)
        (half prefs f v1 +. half prefs v1 f))
    entries
  |> List.map fst

let rec take k = function
  | [] -> []
  | _ when k <= 0 -> []
  | x :: tl -> x :: take (k - 1) tl

(* a roughly honest responder: proposes to its top-b, accepts up to
   [limit] partners, declines the rest — every proposal it receives is
   eventually answered.  [claim v] is what it writes into its PROPs. *)
let responder ~claim ~order ~limit =
  let sent = Hashtbl.create 8 in
  let partners = Hashtbl.create 8 in
  let declined = Hashtbl.create 8 in
  let prop_to ~send v =
    if not (Hashtbl.mem sent v) then begin
      Hashtbl.replace sent v ();
      send ~dst:v (prop (claim v))
    end
  in
  let on_init ~send = List.iter (prop_to ~send) (take limit order) in
  let on_receive ~src (m : Guard.msg) ~send =
    match m.body with
    | Guard.Prop _ ->
        if Hashtbl.mem partners src then ()
        else if Hashtbl.mem sent src then Hashtbl.replace partners src ()
        else if Hashtbl.length partners < limit && not (Hashtbl.mem declined src)
        then begin
          Hashtbl.replace partners src ();
          prop_to ~send src
        end
        else if not (Hashtbl.mem declined src) then begin
          Hashtbl.replace declined src ();
          send ~dst:src rej
        end
    | Guard.Rej -> Hashtbl.remove sent src
  in
  { Adversary.on_init; on_receive }

let make_behaviour prefs g adversaries f model =
  let nbrs = Array.map fst (Graph.neighbors g f) in
  let b = Preference.quota prefs f in
  let order = own_order prefs g f in
  match (model : Adversary.model) with
  | Adversary.Weight_liar _ ->
      (* state-machine-clean; the dishonesty is entirely in the claim,
         which must match the bootstrap advert to stay stealthy *)
      responder ~claim:(advert_of prefs adversaries f) ~order ~limit:b
  | Adversary.Equivocator ->
      (* proposes to everyone once; every proposal it ever receives is
         answered by that standing accept — per-link perfectly legal *)
      {
        Adversary.on_init =
          (fun ~send -> Array.iter (fun v -> send ~dst:v (prop (half prefs f v))) nbrs);
        on_receive = (fun ~src:_ _ ~send:_ -> ());
      }
  | Adversary.Flooder k ->
      (* every receipt triggers [k] full PROP sweeps over the
         neighbourhood; a total budget stops flooder pairs from
         amplifying each other forever *)
      let sweeps_left = ref (4 * max 1 k) in
      {
        Adversary.on_init = (fun ~send:_ -> ());
        on_receive =
          (fun ~src:_ _ ~send ->
            let burst = min (max 1 k) !sweeps_left in
            sweeps_left := !sweeps_left - burst;
            for _ = 1 to burst do
              Array.iter (fun v -> send ~dst:v (prop (half prefs f v))) nbrs
            done);
      }
  | Adversary.Replayer ->
      (* honest-looking play plus duplicates of its own past messages,
         every other one with a stale epoch *)
      let inner = responder ~claim:(half prefs f) ~order ~limit:b in
      let log = ref [] in
      let replays = ref 0 in
      let recording send ~dst m =
        log := (dst, m) :: !log;
        send ~dst m
      in
      {
        Adversary.on_init = (fun ~send -> inner.Adversary.on_init ~send:(recording send));
        on_receive =
          (fun ~src m ~send ->
            inner.Adversary.on_receive ~src m ~send:(recording send);
            match !log with
            | [] -> ()
            | l ->
                let dst, (m : Guard.msg) = List.nth l (!replays mod List.length l) in
                incr replays;
                let epoch = if !replays mod 2 = 0 then m.epoch else -1 in
                send ~dst { m with epoch });
      }
  | Adversary.State_violator ->
      (* PROP-to-stranger at startup, REJ right after a lock forms, and
         proposals from others are never answered (liveness violation:
         unguarded peers starve waiting for its reply) *)
      let sent = Hashtbl.create 8 in
      let n = Graph.node_count g in
      let neighbour = Hashtbl.create 8 in
      Array.iter (fun v -> Hashtbl.replace neighbour v ()) nbrs;
      let stranger =
        let rec find i =
          if i >= n then None
          else if i <> f && not (Hashtbl.mem neighbour i) then Some i
          else find (i + 1)
        in
        find 0
      in
      {
        Adversary.on_init =
          (fun ~send ->
            List.iter
              (fun v ->
                Hashtbl.replace sent v ();
                send ~dst:v (prop (half prefs f v)))
              (take (max 1 b) order);
            Option.iter (fun w -> send ~dst:w (prop (bound prefs f))) stranger);
        on_receive =
          (fun ~src (m : Guard.msg) ~send ->
            match m.body with
            | Guard.Prop _ when Hashtbl.mem sent src ->
                (* mutual proposal: the victim just locked us — renege *)
                Hashtbl.remove sent src;
                send ~dst:src rej
            | _ -> ());
      }

(* ------------------------------------------------------------------ *)
(* the simulation driver                                               *)
(* ------------------------------------------------------------------ *)

type report = {
  matching : Bmatching.t;
  correct : bool array;
  byz_count : int;
  prop_count : int;
  rej_count : int;
  adversary_msgs : int;
  delivered : int;
  completion_time : float;
  quarantine_events : int;
  false_quarantines : int;
  byz_offenders : int;
  byz_quarantined : int;
  offence_counts : (string * int) list;
  synthetic_rejects : int;
  quiet_rounds : int;
  wasted_slots : int;
  all_correct_terminated : bool;
  unterminated : int list;
  damage : Violation.t list;
}

let run ?(seed = 0xB12) ?(delay = Simnet.Uniform (0.5, 1.5)) ?(fifo = true)
    ?(guard = true) ?(guard_config = Guard.default_config) ~adversaries prefs =
  let g = Preference.graph prefs in
  let n = Graph.node_count g in
  if Array.length adversaries <> n then
    invalid_arg "Lid_byzantine.run: adversary array arity mismatch";
  let correct = Array.map (fun m -> m = None) adversaries in
  if not (Array.exists Fun.id correct) then
    invalid_arg "Lid_byzantine.run: no correct node left";
  let byz_count = Array.fold_left (fun acc c -> if c then acc else acc + 1) 0 correct in
  let capacity = Array.init n (Preference.quota prefs) in
  let w = Weights.of_preference prefs in
  let guards =
    Array.init n (fun i ->
        Guard.create ~config:guard_config ~bound:(bound prefs) ~graph:g ~me:i ())
  in
  (* counters *)
  let prop_count = ref 0 and rej_count = ref 0 in
  let adversary_msgs = ref 0 in
  let quarantine_events = ref 0 and false_quarantines = ref 0 in
  let synthetic_rejects = ref 0 and quiet_rounds = ref 0 in
  (* --- bootstrap: advertise half-weights, vet them, build rankings --- *)
  let perceived = Array.init n (fun _ -> Hashtbl.create 8) in
  let bootstrap_rejects = ref [] in
  for i = 0 to n - 1 do
    if correct.(i) then
      Array.iter
        (fun (v, _) ->
          let a = advert_of prefs adversaries v i in
          if guard then begin
            let verdict = Guard.on_advert guards.(i) ~peer:v ~claim:a in
            if verdict.Guard.quarantine then begin
              incr quarantine_events;
              if correct.(v) then incr false_quarantines;
              bootstrap_rejects := (i, v) :: !bootstrap_rejects
            end;
            if verdict.Guard.accept then
              Hashtbl.replace perceived.(i) v (half prefs i v +. a)
          end
          else Hashtbl.replace perceived.(i) v (half prefs i v +. a))
        (Graph.neighbors g i)
  done;
  let ranking i = if correct.(i) then ranking_of g perceived.(i) i else [||] in
  let st, initial = Lid.init ~ranking w ~capacity in
  let net = Simnet.create ~seed ~fifo ~nodes:(max n 1) ~delay () in
  let behaviours =
    Array.mapi
      (fun f -> function
        | None -> Adversary.silent
        | Some m -> make_behaviour prefs g adversaries f m)
      adversaries
  in
  let byz_send f ~dst m =
    incr adversary_msgs;
    Simnet.send net ~src:f ~dst m
  in
  let wrap src dst = function
    | Lid.Prop ->
        incr prop_count;
        { Guard.epoch = 0; body = Guard.Prop { claim = half prefs src dst } }
    | Lid.Rej ->
        incr rej_count;
        { Guard.epoch = 0; body = Guard.Rej }
  in
  let process events =
    List.iter
      (function
        | Lid.Send (src, dst, m) -> Simnet.send net ~src ~dst (wrap src dst m)
        | Lid.Lock _ -> ())
      events
  in
  let synthetic_reject at ~peer =
    incr synthetic_rejects;
    process (Lid.deliver st ~src:peer ~dst:at Lid.Rej)
  in
  let quarantine at ~peer =
    incr quarantine_events;
    if correct.(peer) then incr false_quarantines;
    (* re-announce the decline on the wire, then release any obligation
       towards the offender through the Lid_reliable escape hatch *)
    incr rej_count;
    Simnet.send net ~src:at ~dst:peer rej;
    synthetic_reject at ~peer
  in
  let deliver_to_lid at ~src (m : Guard.msg) =
    let lm = match m.body with Guard.Prop _ -> Lid.Prop | Guard.Rej -> Lid.Rej in
    process (Lid.deliver st ~src ~dst:at lm)
  in
  Simnet.set_handler net (fun ~src ~dst m ->
      if not correct.(dst) then
        behaviours.(dst).Adversary.on_receive ~src m ~send:(byz_send dst)
      else if guard then begin
        let verdict = Guard.inspect guards.(dst) ~peer:src m in
        if verdict.Guard.accept then deliver_to_lid dst ~src m
        else if verdict.Guard.quarantine then quarantine dst ~peer:src
      end
      else deliver_to_lid dst ~src m);
  (* adversaries open their mouths first, then the honest burst *)
  Array.iteri
    (fun f c -> if not c then behaviours.(f).Adversary.on_init ~send:(byz_send f))
    correct;
  process initial;
  List.iter
    (fun (i, p) ->
      incr rej_count;
      Simnet.send net ~src:i ~dst:p rej)
    !bootstrap_rejects;
  Simnet.run net;
  (* quiet rounds (guarded only): when the network idles with correct
     nodes still stuck, give up exactly the pendings towards
     adversary-controlled or quarantined peers — the eventually-perfect
     failure detector.  Honest-honest pendings are never cut: they
     resolve transitively once the Byzantine leaves are. *)
  let correct_stragglers () =
    List.filter (fun i -> correct.(i)) (Lid.unterminated_nodes st)
  in
  if guard then begin
    let continue = ref true in
    let max_rounds = (2 * n) + 8 in
    while !continue && correct_stragglers () <> [] && !quiet_rounds < max_rounds do
      let progress = ref false in
      List.iter
        (fun i ->
          Array.iter
            (fun (v, _) ->
              if
                Lid.awaiting_reply st ~node:i ~peer:v
                && ((not correct.(v)) || Guard.quarantined guards.(i) ~peer:v)
              then begin
                progress := true;
                synthetic_reject i ~peer:v
              end)
            (Graph.neighbors g i))
        (correct_stragglers ());
      if !progress then begin
        incr quiet_rounds;
        Simnet.run net
      end
      else continue := false
    done
  end;
  (* --- terminal accounting --- *)
  let locked = Lid.locked_edge_ids st in
  let matching = Bmatching.of_edge_ids g ~capacity locked in
  let consumed = Array.init n (fun i -> List.length (Lid.locks st i)) in
  let wasted_slots = ref 0 in
  for i = 0 to n - 1 do
    if correct.(i) then
      List.iter (fun v -> if not correct.(v) then incr wasted_slots) (Lid.locks st i)
  done;
  let offence_tbl = Hashtbl.create 8 in
  let offenders = Hashtbl.create 8 in
  let quarantined_byz = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    if correct.(i) then begin
      List.iter
        (fun (k, c) ->
          Hashtbl.replace offence_tbl k
            (c + Option.value ~default:0 (Hashtbl.find_opt offence_tbl k)))
        (Guard.offence_counts guards.(i));
      List.iter
        (fun (p, _) -> if not correct.(p) then Hashtbl.replace offenders p ())
        (Guard.offences guards.(i));
      List.iter
        (fun p -> if not correct.(p) then Hashtbl.replace quarantined_byz p ())
        (Guard.quarantined_peers guards.(i))
    end
  done;
  let unterminated = correct_stragglers () in
  let damage =
    Byzantine.check
      { Byzantine.weights = w; capacity; correct; edges = locked; consumed; unterminated }
  in
  {
    matching;
    correct;
    byz_count;
    prop_count = !prop_count;
    rej_count = !rej_count;
    adversary_msgs = !adversary_msgs;
    delivered = Simnet.messages_delivered net;
    completion_time = Simnet.now net;
    quarantine_events = !quarantine_events;
    false_quarantines = !false_quarantines;
    byz_offenders = Hashtbl.length offenders;
    byz_quarantined = Hashtbl.length quarantined_byz;
    offence_counts =
      Hashtbl.fold (fun k c acc -> (k, c) :: acc) offence_tbl [] |> List.sort compare;
    synthetic_rejects = !synthetic_rejects;
    quiet_rounds = !quiet_rounds;
    wasted_slots = !wasted_slots;
    all_correct_terminated = unterminated = [];
    unterminated;
    damage;
  }

(* ------------------------------------------------------------------ *)
(* satisfaction accounting                                             *)
(* ------------------------------------------------------------------ *)

let satisfaction_of_correct prefs (r : report) =
  let conns = Bmatching.connection_lists r.matching in
  let total = ref 0.0 in
  Array.iteri
    (fun i c -> if c then total := !total +. Preference.satisfaction prefs i conns.(i))
    r.correct;
  !total

let reference_satisfaction prefs ~correct =
  let g = Preference.graph prefs in
  let nodes =
    Array.of_list
      (List.filter
         (fun i -> correct.(i))
         (List.init (Graph.node_count g) (fun i -> i)))
  in
  let sub, old_of_new = Graph.induced_subgraph g nodes in
  let wsub =
    let arr = Array.make (Graph.edge_count sub) 0.0 in
    Graph.iter_edges sub (fun eid u v ->
        let ou = old_of_new.(u) and ov = old_of_new.(v) in
        arr.(eid) <-
          (half prefs ou ov +. half prefs ov ou));
    Weights.of_array sub arr
  in
  let capacity = Array.map (Preference.quota prefs) old_of_new in
  let m = Lic.run wsub ~capacity in
  let conns = Bmatching.connection_lists m in
  let total = ref 0.0 in
  Array.iteri
    (fun ni oi ->
      total :=
        !total
        +. Preference.satisfaction prefs oi (List.map (fun nv -> old_of_new.(nv)) conns.(ni)))
    old_of_new;
  !total

(* ------------------------------------------------------------------ *)
(* exhaustive verification (Explore)                                   *)
(* ------------------------------------------------------------------ *)

type explore_state = { lid : Lid.state; eguards : Guard.t array option }

let verify_exhaustively ?(guard = true) ?(guard_config = Guard.default_config)
    ?(budget = 2) ?max_configs ~byz prefs =
  let g = Preference.graph prefs in
  let n = Graph.node_count g in
  if byz < 0 || byz >= n then invalid_arg "Lid_byzantine.verify_exhaustively: byz";
  let capacity = Array.init n (Preference.quota prefs) in
  let w = Weights.of_preference prefs in
  let correct i = i <> byz in
  (* adverts are honest in the exhaustive model: the liar's over-bound
     claims enter through the injection repertoire instead, so every
     attack is interleaved with deliveries rather than fixed at t=0 *)
  let ranking i =
    if correct i then begin
      let perceived = Hashtbl.create 8 in
      Array.iter
        (fun (v, _) ->
          Hashtbl.replace perceived v (half prefs i v +. half prefs v i))
        (Graph.neighbors g i);
      ranking_of g perceived i
    end
    else [||]
  in
  let wrap events =
    List.filter_map
      (function
        | Lid.Send (src, dst, m) ->
            let body =
              match m with
              | Lid.Prop -> Guard.Prop { claim = half prefs src dst }
              | Lid.Rej -> Guard.Rej
            in
            Some { Explore.src; dst; payload = { Guard.epoch = 0; body } }
        | Lid.Lock _ -> None)
      events
  in
  let mk_guards () =
    if guard then
      Some
        (Array.init n (fun i ->
             Guard.create ~config:guard_config ~bound:(bound prefs) ~graph:g ~me:i ()))
    else None
  in
  let deliver st ~src ~dst (m : Guard.msg) =
    if not (correct dst) then []
    else begin
      match st.eguards with
      | None ->
          let lm = match m.body with Guard.Prop _ -> Lid.Prop | Guard.Rej -> Lid.Rej in
          wrap (Lid.deliver st.lid ~src ~dst lm)
      | Some gs ->
          let verdict = Guard.inspect gs.(dst) ~peer:src m in
          if verdict.Guard.accept then begin
            let lm =
              match m.body with Guard.Prop _ -> Lid.Prop | Guard.Rej -> Lid.Rej
            in
            wrap (Lid.deliver st.lid ~src ~dst lm)
          end
          else if verdict.Guard.quarantine then
            { Explore.src = dst; dst = src; payload = rej }
            :: wrap (Lid.deliver st.lid ~src ~dst:dst Lid.Rej)
          else []
    end
  in
  let tags = Hashtbl.create 16 in
  let msg_tag (m : Guard.msg) =
    match Hashtbl.find_opt tags m with
    | Some t -> t
    | None ->
        let t = Hashtbl.length tags in
        Hashtbl.add tags m t;
        t
  in
  let stragglers st =
    List.filter (fun i -> correct i) (Lid.unterminated_nodes st.lid)
  in
  let protocol =
    {
      Explore.init =
        (fun () ->
          let lid, events = Lid.init ~ranking w ~capacity in
          ({ lid; eguards = mk_guards () }, wrap events));
      deliver;
      copy =
        (fun st ->
          {
            lid = Lid.copy_state st.lid;
            eguards = Option.map (Array.map Guard.copy) st.eguards;
          });
      fingerprint =
        (fun st ->
          let b = Buffer.create 256 in
          Buffer.add_string b (Lid.fingerprint st.lid);
          (match st.eguards with
          | None -> ()
          | Some gs ->
              Array.iter
                (fun gd ->
                  Buffer.add_char b '|';
                  Buffer.add_string b (Guard.fingerprint gd))
                gs);
          Buffer.contents b);
      quiesced = (fun st -> stragglers st = []);
      stragglers;
      observe = (fun st -> Lid.locked_edge_ids st.lid);
      msg_tag;
      give_up =
        (if guard then
           Some
             (fun st ~self ~peer ->
               if correct self then wrap (Lid.deliver st.lid ~src:peer ~dst:self Lid.Rej)
               else [])
         else None);
    }
  in
  (* repertoire: per neighbour an honest-looking PROP, an over-bound
     PROP, a REJ and a stale-epoch PROP; plus one PROP to a stranger *)
  let injections =
    let lie =
      let b = bound prefs byz in
      if b > 0.0 then 1.5 *. b else 0.5
    in
    let towards =
      Array.to_list (Array.map fst (Graph.neighbors g byz))
    in
    let per_neighbour v =
      [
        { Explore.src = byz; dst = v; payload = prop (half prefs byz v) };
        { Explore.src = byz; dst = v; payload = prop lie };
        { Explore.src = byz; dst = v; payload = rej };
        {
          Explore.src = byz;
          dst = v;
          payload = { Guard.epoch = -1; body = Guard.Prop { claim = half prefs byz v } };
        };
      ]
    in
    let neighbour_set = Hashtbl.create 8 in
    List.iter (fun v -> Hashtbl.replace neighbour_set v ()) towards;
    let stranger =
      let rec find i =
        if i >= n then []
        else if i <> byz && not (Hashtbl.mem neighbour_set i) then
          [ { Explore.src = byz; dst = i; payload = prop (bound prefs byz) } ]
        else find (i + 1)
      in
      find 0
    in
    List.concat_map per_neighbour towards @ stranger
  in
  let on_terminal st =
    let lid = st.lid in
    let correct_arr = Array.init n correct in
    let consumed = Array.init n (fun i -> List.length (Lid.locks lid i)) in
    Byzantine.check
      {
        Byzantine.weights = w;
        capacity;
        correct = correct_arr;
        edges = Lid.locked_edge_ids lid;
        consumed;
        unterminated = List.filter correct (Lid.unterminated_nodes lid);
      }
  in
  Explore.explore ?max_configs
    ~adversary:{ Explore.byz; injections; budget }
    ~on_terminal protocol
