(* LID under Byzantine peers as a stack configuration: the adversary
   behaviours, the bootstrap advert round, the guard layer and the
   quiet-round give-up all live in Stack — this module keeps the
   preference-level entry point, the satisfaction accounting the
   experiments report, and the exhaustive verification repertoire. *)

module Adversary = Owp_simnet.Adversary
module Explore = Owp_check.Explore
module Byzantine = Owp_check.Byzantine
module Bmatching = Owp_matching.Bmatching

let run ?(seed = 0xB12) ?(delay = Owp_simnet.Simnet.Uniform (0.5, 1.5))
    ?(fifo = true) ?(guard = true) ?(guard_config = Guard.default_config)
    ~adversaries prefs =
  let g = Preference.graph prefs in
  let n = Graph.node_count g in
  if Array.length adversaries <> n then
    invalid_arg "Lid_byzantine.run: adversary array arity mismatch";
  if not (Array.exists Option.is_none adversaries) then
    invalid_arg "Lid_byzantine.run: no correct node left";
  let capacity = Array.init n (Preference.quota prefs) in
  let w = Weights.of_preference prefs in
  Stack.run ~seed ~delay ~fifo ~adversaries ~guard ~guard_config ~prefs w ~capacity

(* ------------------------------------------------------------------ *)
(* satisfaction accounting                                             *)
(* ------------------------------------------------------------------ *)

let satisfaction_of_correct prefs (r : Stack.report) =
  let conns = Bmatching.connection_lists r.Stack.matching in
  let total = ref 0.0 in
  Array.iteri
    (fun i c -> if c then total := !total +. Preference.satisfaction prefs i conns.(i))
    r.Stack.correct;
  !total

let reference_satisfaction prefs ~correct =
  let g = Preference.graph prefs in
  let nodes =
    Array.of_list
      (List.filter
         (fun i -> correct.(i))
         (List.init (Graph.node_count g) (fun i -> i)))
  in
  let sub, old_of_new = Graph.induced_subgraph g nodes in
  let wsub =
    let arr = Array.make (Graph.edge_count sub) 0.0 in
    Graph.iter_edges sub (fun eid u v ->
        let ou = old_of_new.(u) and ov = old_of_new.(v) in
        arr.(eid) <- Stack.half prefs ou ov +. Stack.half prefs ov ou);
    Weights.of_array sub arr
  in
  let capacity = Array.map (Preference.quota prefs) old_of_new in
  let m = Lic.run wsub ~capacity in
  let conns = Bmatching.connection_lists m in
  let total = ref 0.0 in
  Array.iteri
    (fun ni oi ->
      total :=
        !total
        +. Preference.satisfaction prefs oi
             (List.map (fun nv -> old_of_new.(nv)) conns.(ni)))
    old_of_new;
  !total

(* ------------------------------------------------------------------ *)
(* exhaustive verification (Explore over the stack's composition)      *)
(* ------------------------------------------------------------------ *)

let verify_exhaustively ?(guard = true) ?(guard_config = Guard.default_config)
    ?(budget = 2) ?max_configs ~byz prefs =
  let g = Preference.graph prefs in
  let n = Graph.node_count g in
  if byz < 0 || byz >= n then invalid_arg "Lid_byzantine.verify_exhaustively: byz";
  let capacity = Array.init n (Preference.quota prefs) in
  let w = Weights.of_preference prefs in
  let correct i = i <> byz in
  let protocol = Stack.explore_protocol ~guard ~guard_config ~correct prefs in
  let prop claim = { Guard.epoch = 0; body = Guard.Prop { claim } } in
  let rej = { Guard.epoch = 0; body = Guard.Rej } in
  (* repertoire: per neighbour an honest-looking PROP, an over-bound
     PROP, a REJ and a stale-epoch PROP; plus one PROP to a stranger *)
  let injections =
    let lie =
      let b = Stack.bound prefs byz in
      if b > 0.0 then 1.5 *. b else 0.5
    in
    let towards = Array.to_list (Array.map fst (Graph.neighbors g byz)) in
    let per_neighbour v =
      [
        { Explore.src = byz; dst = v; payload = prop (Stack.half prefs byz v) };
        { Explore.src = byz; dst = v; payload = prop lie };
        { Explore.src = byz; dst = v; payload = rej };
        {
          Explore.src = byz;
          dst = v;
          payload =
            { Guard.epoch = -1; body = Guard.Prop { claim = Stack.half prefs byz v } };
        };
      ]
    in
    let neighbour_set = Hashtbl.create 8 in
    List.iter (fun v -> Hashtbl.replace neighbour_set v ()) towards;
    let stranger =
      let rec find i =
        if i >= n then []
        else if i <> byz && not (Hashtbl.mem neighbour_set i) then
          [ { Explore.src = byz; dst = i; payload = prop (Stack.bound prefs byz) } ]
        else find (i + 1)
      in
      find 0
    in
    List.concat_map per_neighbour towards @ stranger
  in
  let on_terminal est =
    let lid = Stack.explore_lid est in
    let correct_arr = Array.init n correct in
    let consumed = Array.init n (fun i -> List.length (Lid.locks lid i)) in
    Byzantine.check
      {
        Byzantine.weights = w;
        capacity;
        correct = correct_arr;
        edges = Lid.locked_edge_ids lid;
        consumed;
        unterminated = List.filter correct (Lid.unterminated_nodes lid);
        overclaimed = [];
      }
  in
  Explore.explore ?max_configs
    ~adversary:{ Explore.byz; injections; budget }
    ~on_terminal protocol
