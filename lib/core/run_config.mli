(** The unified run configuration.

    One value answers "how should this instance be solved": which engine
    ({!engine}), under which fault environment ({!Owp_simnet.Faults.t}),
    with which seed, adversaries and diagnostics.  [owp run], [owp check]
    and the benchmark harness all build one of these from their flags
    and hand it to {!Pipeline.run_config}; before PR 4 each of them
    threaded six optional arguments separately through the drivers, with
    per-call-site defaults that could (and did) drift.

    Since the drivers collapsed into the layered {!Stack}, the knobs
    compose: any combination of [faults], [reliable], [byzantine] and
    [guard] on a LID-family engine selects a set of middleware layers
    over the same protocol loop.  {!validate} only rejects combinations
    that are genuinely meaningless (a guard with nothing to guard
    against, network knobs on engines that do not simulate a network),
    not merely unusual ones.

    The instance itself (graph, preferences, quotas) stays out of the
    record on purpose: a config is reusable across a sweep of instances,
    which is exactly what the multicore runner needs. *)

type engine =
  | Lic  (** Algorithm 2, reference selection (O(Δ) rival rescans) *)
  | Lic_indexed  (** Algorithm 2 over per-node max-weight edge indexes *)
  | Lid  (** Algorithm 1 on the datagram simulator *)
  | Lid_reliable  (** Algorithm 1 with the ARQ transport layer enabled *)
  | Lid_byzantine  (** Algorithm 1 with adversary-controlled peers *)
  | Greedy  (** centralized global greedy comparator *)
  | Dynamics  (** blocking-pair dynamics (stable-fixtures baseline) *)

type t = {
  engine : engine;
  seed : int;
  faults : Owp_simnet.Faults.t;
  schedule : Owp_simnet.Schedule.t;
      (** time-varying fault episodes layered over [faults]
          ({!Owp_simnet.Schedule}); empty = static environment *)
  reliable : bool;
      (** enable the ARQ transport layer (implied by [Lid_reliable]) *)
  byzantine : string option;
      (** adversary spec, {!Owp_simnet.Adversary.parse_spec} syntax *)
  guard : bool;  (** inbound protocol guard (needs an adversary spec) *)
  sim_shards : int;
      (** event-store shards for the simulated engines ({!Stack.run}'s
          [sim_shards], forwarded to {!Owp_simnet.Simnet.create}) —
          bit-identical results for every value; default 1 *)
  check : bool;  (** run the invariant checkers on the result *)
  deadline : float option;
      (** anytime budget: halt delivery at this virtual time and serve
          the frozen partial matching ({!Stack.run}'s [deadline]) *)
  max_rounds : int option;
      (** the same budget in propose–answer rounds, converted via
          {!Stack.round_length}; exclusive with [deadline] *)
}

val default : t
(** [Lid], seed 42, {!Owp_simnet.Faults.none}, datagram transport, no
    adversaries, no guard, no checkers. *)

val make :
  ?engine:engine ->
  ?seed:int ->
  ?faults:Owp_simnet.Faults.t ->
  ?schedule:Owp_simnet.Schedule.t ->
  ?reliable:bool ->
  ?byzantine:string ->
  ?guard:bool ->
  ?sim_shards:int ->
  ?check:bool ->
  ?deadline:float ->
  ?max_rounds:int ->
  unit ->
  t

val budgeted : t -> bool
(** Is an anytime budget ([deadline] or [max_rounds]) set? *)

val engine_of_string : string -> (engine, string) result
(** Recognises [lic], [lic-indexed]/[indexed], [lid], [lid-reliable]/
    [reliable], [lid-byzantine]/[byzantine], [greedy], [dynamics]. *)

val engine_name : engine -> string
(** Canonical CLI name; [engine_of_string (engine_name e) = Ok e]. *)

val all_engines : engine list

val lid_family : engine -> bool
(** [Lid], [Lid_reliable] or [Lid_byzantine]: the engines that execute
    through the layered {!Stack} loop and accept network/adversary
    knobs. *)

val validate : t -> (t, string) result
(** Cross-field consistency.  Rejected: an adversary spec, faults, a
    fault schedule, [reliable] or an anytime budget on a
    non-LID-family engine; an invalid schedule
    ({!Owp_simnet.Schedule.validate});
    [Lid_byzantine] without a spec; [guard] without a spec; an
    unparsable spec; a non-positive [sim_shards], or [sim_shards > 1]
    on a non-LID-family engine; out-of-range fault fields
    ({!Owp_simnet.Faults.validate}); a non-positive budget; [deadline]
    and [max_rounds] together.  Everything else — in particular
    faults + reliable + byzantine + guard + a budget together — is a
    legal layer composition. *)

val to_string : t -> string
(** One-line summary, e.g. ["engine=lid seed=7 faults=drop=0.2 reliable
    byzantine=liar:0.2 guard"]. *)

val pp : Format.formatter -> t -> unit
