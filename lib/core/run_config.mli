(** The unified run configuration.

    One value answers "how should this instance be solved": which engine
    ({!engine}), under which fault environment ({!Owp_simnet.Faults.t}),
    with which seed, adversaries and diagnostics.  [owp run], [owp check]
    and the benchmark harness all build one of these from their flags
    and hand it to {!Pipeline.run_config}; before PR 4 each of them
    threaded six optional arguments separately through the drivers, with
    per-call-site defaults that could (and did) drift.

    The instance itself (graph, preferences, quotas) stays out of the
    record on purpose: a config is reusable across a sweep of instances,
    which is exactly what the multicore runner needs. *)

type engine =
  | Lic  (** Algorithm 2, reference selection (O(Δ) rival rescans) *)
  | Lic_indexed  (** Algorithm 2 over per-node max-weight edge indexes *)
  | Lid  (** Algorithm 1 on the datagram simulator (fault-free only) *)
  | Lid_reliable  (** Algorithm 1 over the ARQ transport (fault-tolerant) *)
  | Lid_byzantine  (** Algorithm 1 with adversary-controlled peers *)
  | Greedy  (** centralized global greedy comparator *)
  | Dynamics  (** blocking-pair dynamics (stable-fixtures baseline) *)

type t = {
  engine : engine;
  seed : int;
  faults : Owp_simnet.Faults.t;
  byzantine : string option;
      (** adversary spec, {!Owp_simnet.Adversary.parse_spec} syntax *)
  guard : bool;  (** inbound protocol guard (Byzantine runs) *)
  check : bool;  (** run the invariant checkers on the result *)
}

val default : t
(** [Lid], seed 42, {!Owp_simnet.Faults.none}, no adversaries, no guard,
    no checkers. *)

val make :
  ?engine:engine ->
  ?seed:int ->
  ?faults:Owp_simnet.Faults.t ->
  ?byzantine:string ->
  ?guard:bool ->
  ?check:bool ->
  unit ->
  t

val engine_of_string : string -> (engine, string) result
(** Recognises [lic], [lic-indexed]/[indexed], [lid], [lid-reliable]/
    [reliable], [lid-byzantine]/[byzantine], [greedy], [dynamics]. *)

val engine_name : engine -> string
(** Canonical CLI name; [engine_of_string (engine_name e) = Ok e]. *)

val all_engines : engine list

val validate : t -> (t, string) result
(** Cross-field consistency, the rules the CLI used to enforce ad hoc:
    channel faults and crashes require [Lid_reliable]; an adversary spec
    requires [Lid_byzantine] and a fault-free network — and
    [Lid_byzantine] requires a spec; the spec itself must parse.  The
    fault record is also range-checked ({!Owp_simnet.Faults.validate}). *)

val to_string : t -> string
(** One-line summary, e.g. ["engine=lid-reliable seed=7 faults=drop=0.2"]. *)

val pp : Format.formatter -> t -> unit
