(** The composable LID protocol stack.

    One runtime replaces the four simulation drivers that grew around
    {!Lid} (robust, reliable, byzantine, and the crash-plan plumbing of
    the pipeline): the pure state machine {!Lid.init}/{!Lid.deliver} is
    the top layer, and everything else is middleware on the message
    path, each piece enabled independently:

    {v
      outbound:  Lid events -> adversary behaviours -> ARQ transport?
                 -> channel faults / crash silence -> Simnet
      inbound:   Simnet -> transport dedup? -> adversary routing
                 -> guard / quarantine -> protocol dedup
                 -> membership stub -> Lid.deliver
    v}

    Every layer implements one internal signature ([on_send] /
    [on_deliver] / timers via {!Owp_simnet.Simnet.schedule} /
    [counters]) and contributes one row to the per-layer counter table
    of the {!report}.  Because the layers compose, any combination of
    channel faults, the reliable transport, crash plans, Byzantine
    peers, fail-silent peers and the guard runs through this single
    loop — and quiescence/termination detection (Lemma 5) lives in
    exactly one place: the detector layer (patience timers, transport
    give-ups, quarantine give-ups and the guarded quiet rounds).

    The historical drivers (robust, reliable, Byzantine) are plain
    {!run} calls with one particular layer selection — their old seeds
    (robust [0x50B] with 10 s patience, reliable [0x2E1], Byzantine
    [0xB12] with the guard on) are passed explicitly at the call sites
    that preserve the historic tables.  {!Lid.run} itself is kept as
    the reference single-schedule executor with zero middleware; the
    bit-identity of [Stack.run] with no layers enabled against
    [Lid.run] is asserted by a 100-seed property test. *)

(** {1 Membership events}

    Crash plans and churn share one event vocabulary.  [Leave v]
    crash-stops [v] (silent, loses volatile state); [Join v] restarts a
    down node {e retired} — amnesiac, declining every proposal and
    re-announcing the decline to its neighbours, exactly the
    crash-restart semantics the reliable driver introduced.  [Join] of
    a node that is up is a no-op.  {!Lid_dynamic} shares this event
    type for its churn scripts. *)

type node_event = Join of int | Leave of int

type crash_plan = {
  victim : int;
  crash_at : float;  (** virtual time of the crash *)
  restart_at : float option;  (** [None]: fail-stop, never returns *)
}
(** Sugar for [(crash_at, Leave victim)] plus, when [restart_at] is
    set, [(restart_at, Join victim)]. *)

(** {1 The per-layer counter table} *)

type layer = {
  layer : string;
      (** ["lid"], ["deadline"], ["detector"], ["adversary"], ["guard"],
          ["dedup"], ["transport"], ["channel"], ["schedule"] — top to
          bottom; only enabled layers appear *)
  counters : (string * int) list;
}

type cutoff = {
  cut_at : float;  (** the virtual-time budget that expired *)
  released : int;
      (** tentative proposals by live correct nodes the freeze released *)
  half_locks : int;
      (** one-sided locks at the horizon (the completing PROP was in
          flight) — kept in K_i, excluded from the served matching *)
  abandoned : int;  (** queued events discarded at the horizon *)
}
(** Accounting of a deadline-bounded run's cutoff. *)

type report = {
  matching : Owp_matching.Bmatching.t;
      (** locked edges between live, non-retired, correct endpoints *)
  correct : bool array;
      (** [correct.(i)] iff [i] is neither adversary-controlled nor
          fail-silent *)
  participating : bool array;
      (** [participating.(i)] iff [i] is correct {e and} ended the run
          live and non-retired — the node set the final matching can
          touch, and the subgraph the self-stabilization reference
          ({!Owp_check.Stabilize}) is computed on *)
  byz_count : int;  (** adversary-controlled peers *)
  prop_count : int;  (** protocol-level PROP sends by correct nodes *)
  rej_count : int;
      (** protocol-level REJ sends (retirement bursts, bootstrap and
          quarantine re-announcements included) *)
  adversary_msgs : int;  (** wire messages originated by adversaries *)
  delivered : int;  (** frames the channel delivered *)
  dropped : int;  (** frames lost to channel faults *)
  reordered : int;  (** frames turned into stragglers *)
  lost_to_crashes : int;  (** frames lost at/from down hosts *)
  synthetic_rejects : int;
      (** implicit declines the detector fed to the machine *)
  quarantine_events : int;
  false_quarantines : int;  (** quarantines of correct peers *)
  byz_offenders : int;  (** adversaries with at least one offence *)
  byz_quarantined : int;  (** adversaries quarantined somewhere *)
  offence_counts : (string * int) list;
      (** guard offences aggregated by name, alphabetical *)
  wasted_slots : int;  (** correct-node locks on adversary peers *)
  quiet_rounds : int;  (** guarded failure-detector rounds *)
  completion_time : float;  (** virtual time at quiescence *)
  all_terminated : bool;
      (** every live, non-retired, correct node reached U_i = ∅ *)
  unterminated : int list;  (** the live correct stragglers *)
  quiescence : Owp_check.Violation.t list;
      (** Lemma 5 violations among live correct nodes *)
  damage : Owp_check.Violation.t list;
      (** bounded-damage certificate ({!Owp_check.Byzantine.check}),
          computed when adversaries are in play; empty otherwise *)
  cutoff : cutoff option;
      (** [Some _] iff the run was budget-bounded and stopped at its
          deadline; serving the frozen partial matching is distinct
          from a quiescence failure (after the freeze
          [all_terminated] is true by construction) *)
  layers : layer list;  (** the counter table, top layer first *)
}

val counter : report -> layer:string -> string -> int
(** [counter r ~layer name] is the named counter of the named layer, 0
    when the layer is disabled or the counter absent. *)

val overhead : report -> float
(** Wire frames per protocol message when the transport layer is
    enabled (~2.0 is the ACK floor); 1.0 without it. *)

val round_length : Owp_simnet.Simnet.delay_model -> float
(** Virtual time one propose–answer round takes under a delay model —
    the conversion behind [max_rounds] ([Unit]: 1.0; [Uniform]: the
    upper bound; [Exponential]: twice the mean; [PerLink]: 1.0).  A
    representative per-hop figure, not a worst case. *)

(** {1 Eq. 9 helpers}

    Shared by the adversary/guard layers, the bounded-damage
    accounting, and the experiments. *)

val half : Preference.t -> int -> int -> float
(** [half prefs i j]: ΔS̄_i(j), node [i]'s half of edge [(i,j)]'s
    symmetric weight — matches {!Weights.of_preference} bit-for-bit. *)

val bound : Preference.t -> int -> float
(** The public structural bound [1/b_j] no honest half-weight
    advertisement can exceed. *)

(** {1 The run loop} *)

val run :
  ?seed:int ->
  ?delay:Owp_simnet.Simnet.delay_model ->
  ?fifo:bool ->
  ?faults:Owp_simnet.Simnet.faults ->
  ?schedule:Owp_simnet.Schedule.t ->
  ?reliable:bool ->
  ?sim_shards:int ->
  ?unsafe_lookahead:bool ->
  ?transport:Owp_simnet.Transport.config ->
  ?patience:float ->
  ?deadline:float ->
  ?max_rounds:int ->
  ?crashes:crash_plan list ->
  ?events:(float * node_event) list ->
  ?silent:bool array ->
  ?adversaries:Owp_simnet.Adversary.model option array ->
  ?guard:bool ->
  ?guard_config:Guard.config ->
  ?prefs:Preference.t ->
  ?on_lock:(float -> int -> int -> unit) ->
  ?check:bool ->
  Weights.t ->
  capacity:int array ->
  report
(** Run LID with the selected middleware until quiescence.

    Layer selection: [reliable] puts the ARQ transport under the
    protocol (masking drop/duplicate/reorder); [patience] arms a
    one-shot timer per outgoing PROP (the implicit-decline remedy for
    fail-silent and crashed peers); [crashes]/[events] script
    membership changes; [silent] marks fail-silent peers (receive,
    never send); [adversaries] hands nodes to Byzantine behaviours
    (requires [prefs] — adverts and claims are preference halves);
    [guard] vets bootstrap adverts and inbound messages, quarantining
    provable offenders (requires [adversaries] and [prefs]).

    [sim_shards] and [unsafe_lookahead] are forwarded to
    {!Owp_simnet.Simnet.create}: the former space-partitions the event
    store ({e bit-identical} for every value — same messages, same
    coins, same counters), the latter deliberately breaks the dispatch
    order for the bench gate's self-test leg.

    [schedule] layers time-varying network weather
    ({!Owp_simnet.Schedule}) on top of the i.i.d. [faults]: partitions,
    downed/flapping links and loss bursts cut deliveries at the
    simulator ([Down] episodes desugar to crash-then-restart plans).
    While any episode is active the stack treats silence as weather,
    not death: patience timers that fire are suppressed and re-armed
    (counted as [suppressed-give-ups] on the detector row), and the
    reliable transport {e suspects} links instead of giving up, keeping
    the window retransmitting so healed streams resume by themselves
    ([suspected]/[resumed] on the transport row).  An empty schedule is
    bit-identical to no schedule.  A ["schedule"] row appears in the
    counter table exactly when episodes are present.

    [deadline] (or [max_rounds], which is [deadline = K *
    round_length delay]; give at most one) makes the run {e anytime}:
    delivery halts at the virtual-time budget, in-flight events are
    abandoned, the state is {!Lid.freeze}-d (tentative proposals
    released atomically at both endpoints, so no phantom slot and no
    post-cutoff cascade) and the locked partial matching is served,
    with the accounting in [cutoff] and a ["deadline"] row in the
    counter table.  The event prefix up to the budget is identical to
    the unbudgeted run on the same seed, so the served matching grows
    monotonically in the budget.  Composes with every other layer;
    under a budget the structural [check] asserts feasibility only
    (blocking pairs are the measured degradation) and the damage
    certificate skips the blocking-pair clause likewise.

    With adversaries in play the run ends with the bounded-damage
    certificate in [damage]: {!Owp_check.Byzantine.check} plus the
    overclaim-lock audit (a slot locked to a peer whose bootstrap
    advert provably exceeded its public [1/b] bound is avoidable
    damage — the guard provably prevents it, so its absence is what an
    unguarded run is penalised for).

    [check] (default false) asserts the structural invariant checkers
    on the final matching — meaningful only for adversary-free runs
    that converge cleanly.

    @raise Invalid_argument on arity mismatches, out-of-range or
    ill-ordered crash plans, an invalid schedule, non-positive
    patience, non-positive or doubly-specified budgets, adversaries or
    guard without [prefs], or guard without an adversary
    environment. *)

(** {1 Exhaustive exploration}

    The inbound composition (guard above the unchanged {!Lid.deliver})
    as a pure {!Owp_check.Explore.protocol}, so the interleaving
    explorer model-checks the {e production} layer stack.
    {!verify_exhaustively} supplies the adversary repertoire on top of
    this. *)

type explore_state

val explore_lid : explore_state -> Lid.state
(** The protocol layer of an explored configuration (for terminal
    certificates). *)

val explore_protocol :
  ?guard:bool ->
  ?guard_config:Guard.config ->
  correct:(int -> bool) ->
  Preference.t ->
  (explore_state, Guard.msg) Owp_check.Explore.protocol
(** The guarded (or bare) stack over the preference system's weights:
    honest bootstrap adverts, perceived rankings, [Guard.inspect] above
    [Lid.deliver], quarantine re-announcement, and the quiet-round
    give-up hook. Deliveries to non-[correct] nodes are no-ops (the
    explorer's adversary injects their traffic instead). *)

(** {1 Byzantine accounting}

    The satisfaction accounting the Byzantine experiments report, on
    the stack itself: a guarded run is [run ~adversaries ~guard ~prefs]
    and these helpers evaluate its outcome. *)

val satisfaction_of_correct : Preference.t -> report -> float
(** Total satisfaction (eq. 4/5) of the correct peers under the
    restricted matching — the quantity E22 reports as "retained". *)

val reference_satisfaction : Preference.t -> correct:bool array -> float
(** The same quantity for the centralized ideal on the correct
    subgraph: LIC restricted to edges between correct peers, evaluated
    with the {e original} preference lists (so the figures are
    comparable).  This is what the correct peers could have achieved
    had the Byzantine peers merely crashed. *)

val verify_exhaustively :
  ?guard:bool ->
  ?guard_config:Guard.config ->
  ?budget:int ->
  ?max_configs:int ->
  byz:int ->
  Preference.t ->
  Owp_check.Explore.verdict
(** Model-check the bounded-damage guarantee on a small instance:
    node [byz] is Byzantine with an injection repertoire covering every
    attack the runtime models express on the wire (honest-looking PROPs,
    over-bound weight claims, REJs, stale epochs, PROPs to strangers),
    [budget] (default 2) injections per schedule, interleaved every
    possible way with ordinary deliveries ({!Owp_check.Explore}) — over
    the {!explore_protocol} composition, i.e. the production
    guard-above-[Lid.deliver] inbound path.  At every terminal
    configuration the {!Owp_check.Byzantine} certificate is checked;
    with [guard] (default [true]) the verdict must be clean, while
    [guard:false] exhibits the unguarded protocol's starvation
    deadlocks as [explore-termination] violations. *)
