(** Indexed LIC — the scale engine for locally heaviest edge selection.

    {!Lic} implements the paper's selection rule directly: finding the
    heaviest rival of an edge rescans both endpoints' full neighbour
    lists, O(Δ) per climb step, which dominates the run time on large
    dense overlays.  This engine keeps a {e per-node max-weight edge
    index} instead: for every node, a lazy-deletion binary max-heap over
    the flat incident edge ids, ordered by the same strict total order
    as {!Weights.compare_edges}.  The heaviest available rival of an
    edge is then the heavier of its two endpoints' heap tops, O(log Δ)
    amortised — dead entries (selected edges, edges of saturated nodes)
    are popped on first contact and never re-enter, so the whole greedy
    selection costs O(m log m) total instead of O(m·Δ).

    By Lemma 6 the locked edge set does not depend on which locally
    heaviest edge is taken at each step, so this engine returns
    {e exactly} the edge set of {!Lic.run} (any strategy); the test
    suite and experiment E23 verify that equality on random workloads
    while E23 measures the speedup. *)

val run : ?check:bool -> Weights.t -> capacity:int array -> Owp_matching.Bmatching.t
(** Same contract as {!Lic.run}: greedy locally-heaviest selection until
    the pool is exhausted.  [check] (default [false]) runs the
    {!Owp_check.Checker} structural invariants on the result. *)
