(** Per-node protocol guard: inbound-message validation and quarantine.

    Every message a guarded node receives passes through its guard
    before reaching {!Lid.deliver}.  The guard checks two things a node
    can verify {e locally}:

    {ol
    {- {b The per-link protocol state machine.}  In a fault-free run of
       Algorithm LID each directed link carries {e at most one} protocol
       message, ever: a peer either proposes to us once (and our answer,
       if any, travels on the opposite direction), or declines us once —
       a node never proposes twice to the same peer (P_i only grows),
       never declines twice (the first REJ removes us from its U), never
       follows its own PROP with a REJ (it only declines peers it never
       proposed to) and never proposes after declining (declining
       happens at termination).  So a duplicate PROP, a duplicate REJ,
       a PROP-after-REJ, a REJ-after-PROP (the "REJ-after-lock" attack),
       any message from a non-neighbour, and any message with a stale
       epoch are all protocol violations no honest peer can produce.}
    {- {b The locally computable half of the symmetric weight.}  By
       eq. 9, [w(i,j) = ΔS̄_i(j) + ΔS̄_j(i)] and the peer's half obeys
       the public structural bound [ΔS̄_j(i) = (1 − R_j(i)/L_j)/b_j ≤
       1/b_j] — capacities are public, so a half-weight advertisement
       above [1/b_j] is a provable lie.  An advertisement is also pinned:
       a later claim that contradicts it is an offence (honest ranks
       never change mid-run).}}

    Each offence adds to the peer's misbehaviour score; crossing the
    quarantine threshold (default: any offence) quarantines the peer —
    all its future traffic is dropped, and the caller is told to feed
    the unchanged state machine a synthetic REJ (the same escape hatch
    the {!Stack} detector uses for dead peers) and to re-announce the
    decline.

    What the guard {e cannot} see, and documents as limits: equivocation
    (every link interaction is individually legal; catching it needs
    cross-peer gossip) and in-bounds weight lies (a claimed rank that is
    wrong but ≤ 1/b is consistent with some honest preference list). *)

type offence =
  | Stranger  (** message on a non-edge of the potential graph *)
  | Duplicate_prop  (** second PROP on the same directed link *)
  | Duplicate_rej  (** second REJ on the same directed link *)
  | Prop_after_rej  (** proposal from a peer that already declined us *)
  | Rej_after_prop  (** decline from a peer that proposed (REJ-after-lock) *)
  | Stale_epoch  (** epoch below the current incarnation (replay) *)
  | Overclaim  (** advertised/claimed half-weight above the 1/b bound *)
  | Claim_mismatch  (** PROP claim contradicts the pinned advertisement *)
  | Flood  (** per-peer message budget exhausted *)

val offence_name : offence -> string

(** Wire format of the guarded protocol.  [Prop] carries the sender's
    claimed half-weight ΔS̄_src(dst) so the receiver can cross-check it;
    [epoch] is the sender's incarnation (always 0 in failure-free
    runs — replays carry old epochs). *)
type body = Prop of { claim : float } | Rej

type msg = { epoch : int; body : body }

type config = {
  epoch : int;  (** expected incarnation, default 0 *)
  quarantine_threshold : float;
      (** cumulative score at which a peer is quarantined; every offence
          scores 1.0, so the default 1.0 is zero-tolerance *)
  flood_limit : int;
      (** hard cap on messages accepted from one peer; belt-and-braces on
          top of the one-message-per-link rule *)
  tolerance : float;  (** absolute slack for float claim comparisons *)
}

val default_config : config

type verdict = {
  accept : bool;  (** deliver the message to the state machine? *)
  offence : offence option;  (** the offence just recorded, if any *)
  quarantine : bool;
      (** [true] exactly when this message pushed the peer over the
          threshold: the caller must now synthesize the REJ and
          re-announce the decline *)
}

type t

val create :
  ?config:config -> ?bound:(int -> float) -> graph:Graph.t -> me:int -> unit -> t
(** A fresh guard for node [me].  [bound peer] is the structural
    half-weight cap for [peer] (its [1/b]); default [infinity]
    (bound checking off — used by tests that exercise only the state
    machine). *)

val on_advert : t -> peer:int -> claim:float -> verdict
(** Inspect a bootstrap half-weight advertisement: pins the claim for
    later cross-checks and scores [Overclaim]/[Stranger] offences. *)

val inspect : t -> peer:int -> msg -> verdict
(** Inspect one inbound protocol message.  Quarantined peers' traffic
    is silently dropped ([accept = false], no new offence). *)

val quarantined : t -> peer:int -> bool
val quarantined_peers : t -> int list
(** Ascending. *)

val score : t -> peer:int -> float
val offences : t -> (int * offence) list
(** Every offence recorded, in order of occurrence: (peer, offence). *)

val offence_counts : t -> (string * int) list
(** Aggregated by offence name, alphabetical. *)

val copy : t -> t

val fingerprint : t -> string
(** Canonical encoding of the guard state (per-peer link flags, scores
    and quarantine bits) for the interleaving explorer's transposition
    table. *)
