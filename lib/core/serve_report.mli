(** The sustained-traffic serving report.

    Filled by the serving layer ([owp_serve]) and carried in
    {!Pipeline.outcome} so every consumer of a pipeline result sees the
    same record; defined here, below the serving layer, to avoid a
    dependency cycle.  All times are {e virtual} (simulation) time —
    the serving layer never reads a wall clock for latency. *)

type t = {
  arrivals : string;  (** the arrival spec, canonically printed *)
  horizon : float;  (** virtual-time horizon of the run *)
  offered : int;  (** requests the arrival process generated *)
  served : int;  (** requests completed within the horizon *)
  shed : int;  (** requests rejected because the queue was full *)
  joins : int;  (** served joins *)
  leaves : int;  (** served leaves *)
  reprefs : int;  (** served re-preference events *)
  queries : int;  (** served satisfaction/matching queries *)
  p50 : float;  (** median request latency (queue wait + service) *)
  p99 : float;  (** 99th-percentile request latency *)
  max_latency : float;
  mean_service : float;  (** mean service time alone, excluding waits *)
  throughput : float;  (** served requests per virtual-time unit *)
  max_queue : int;  (** deepest backlog observed *)
  utilization : float;  (** busy virtual time / horizon *)
  steady_satisfaction : float;
      (** mean (served satisfaction / from-scratch LIC oracle) over the
          steady-state tail samples *)
  oracle_samples : int;  (** oracle evaluations behind that mean *)
}

val summary : t -> string
(** Canonical multi-line rendering — the CLI prints it and the
    determinism tests compare it byte-for-byte. *)
