(** LIC — Local Information-based Centralized algorithm (paper Alg. 2).

    Repeatedly selects a {e locally heaviest} edge from the pool of
    available edges (an edge beating every pool edge that shares exactly
    one endpoint, eq. 3/13), removes it, decrements both endpoints'
    quota counters and drops all edges of saturated nodes from the pool.
    Theorem 2: the result is a ½-approximation of the maximum-weight
    many-to-many matching.

    Note: the paper's pseudocode line 2 initialises [counter(v) := d_v];
    consistently with the surrounding text and Lemma 6 this must be the
    connection quota [b_v], which is what we use (documented in
    DESIGN.md).

    Lemma 6 implies the selected edge {e set} does not depend on which
    locally heaviest edge is taken at each step; the [strategy] argument
    exists so experiments (E4) can verify that order-insensitivity. *)

type strategy =
  | Heaviest_first
      (** always take the globally heaviest pool edge (it is in
          particular locally heaviest) *)
  | Climbing
      (** start from an arbitrary pool edge and climb to strictly
          heavier pool neighbours until a local maximum — the genuinely
          local selection rule *)
  | Random_climb of Owp_util.Prng.t
      (** climbing from uniformly random pool seeds *)

val run :
  ?strategy:strategy ->
  ?check:bool ->
  Weights.t ->
  capacity:int array ->
  Owp_matching.Bmatching.t
(** Defaults to [Heaviest_first].  [check] (default [false]) runs the
    {!Owp_check.Checker} structural invariants (feasibility, greedy
    stability, maximality) on the result and raises
    {!Owp_check.Checker.Check_failed} on violation. *)
