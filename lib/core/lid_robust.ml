module Simnet = Owp_simnet.Simnet
module Bmatching = Owp_matching.Bmatching

type message = Prop | Rej

type report = {
  matching : Bmatching.t;
  prop_count : int;
  rej_count : int;
  timeouts_fired : int;
  dropped : int;
  completion_time : float;
  all_correct_terminated : bool;
}

type node_state = {
  wsorted : (int * int) array;
  u_set : (int, unit) Hashtbl.t;
  in_p : (int, unit) Hashtbl.t;
  pending : (int, unit) Hashtbl.t;
  a_set : (int, unit) Hashtbl.t;
  k_set : (int, unit) Hashtbl.t;
  mutable ptr : int;
  mutable finished : bool;
}

let run ?(seed = 0x50B) ?(delay = Simnet.Uniform (0.5, 1.5)) ?(faults = Simnet.no_faults)
    ?(timeout = 10.0) ~silent w ~capacity =
  let g = Weights.graph w in
  let n = Graph.node_count g in
  if Array.length silent <> n then invalid_arg "Lid_robust.run: silent mask arity";
  Array.iter (fun b -> if b < 0 then invalid_arg "Lid_robust.run: negative capacity") capacity;
  let quota = Array.mapi (fun i b -> min b (Graph.degree g i)) capacity in
  let net = Simnet.create ~seed ~faults ~nodes:(max n 1) ~delay () in
  let prop_count = ref 0 and rej_count = ref 0 and timeouts_fired = ref 0 in
  let send_prop src dst =
    if not silent.(src) then begin
      incr prop_count;
      Simnet.send net ~src ~dst Prop
    end
  in
  let send_rej src dst =
    if not silent.(src) then begin
      incr rej_count;
      Simnet.send net ~src ~dst Rej
    end
  in
  let state =
    Array.init n (fun i ->
        let ws = Array.copy (Graph.neighbors g i) in
        Array.sort (fun (_, e) (_, f) -> Weights.compare_edges w f e) ws;
        let u_set = Hashtbl.create 16 in
        Array.iter (fun (v, _) -> Hashtbl.replace u_set v ()) ws;
        {
          wsorted = ws;
          u_set;
          in_p = Hashtbl.create 8;
          pending = Hashtbl.create 8;
          a_set = Hashtbl.create 8;
          k_set = Hashtbl.create 8;
          ptr = 0;
          finished = false;
        })
  in
  let check_done i =
    let s = state.(i) in
    if (not s.finished) && Hashtbl.length s.pending = 0 then begin
      Hashtbl.iter (fun v () -> send_rej i v) s.u_set;
      Hashtbl.reset s.u_set;
      s.finished <- true
    end
  in
  let lock i v =
    let s = state.(i) in
    Hashtbl.remove s.u_set v;
    Hashtbl.remove s.a_set v;
    Hashtbl.remove s.pending v;
    Hashtbl.replace s.k_set v ()
  in
  (* implicit REJ when a proposal to [v] stays unanswered: only acts if
     the wait is still outstanding when the timer fires *)
  let rec arm_timeout i v =
    Simnet.schedule net ~delay:timeout (fun () ->
        let s = state.(i) in
        if (not s.finished) && Hashtbl.mem s.pending v then begin
          incr timeouts_fired;
          Hashtbl.remove s.u_set v;
          Hashtbl.remove s.pending v;
          propose_next i;
          check_done i
        end)
  and propose_next i =
    let s = state.(i) in
    let len = Array.length s.wsorted in
    let rec advance () =
      if s.ptr >= len then None
      else begin
        let v, _ = s.wsorted.(s.ptr) in
        if Hashtbl.mem s.u_set v && not (Hashtbl.mem s.in_p v) then Some v
        else begin
          s.ptr <- s.ptr + 1;
          advance ()
        end
      end
    in
    match advance () with
    | None -> ()
    | Some v ->
        Hashtbl.replace s.in_p v ();
        Hashtbl.replace s.pending v ();
        send_prop i v;
        arm_timeout i v;
        if Hashtbl.mem s.a_set v then lock i v
  in
  let handle ~src ~dst m =
    let i = dst and u = src in
    if not silent.(i) then begin
      let s = state.(i) in
      if not s.finished then begin
        (match m with
        | Prop ->
            Hashtbl.replace s.a_set u ();
            if Hashtbl.mem s.pending u then lock i u
        | Rej ->
            Hashtbl.remove s.u_set u;
            if Hashtbl.mem s.pending u then begin
              Hashtbl.remove s.pending u;
              propose_next i
            end);
        check_done i
      end
    end
  in
  Simnet.set_handler net handle;
  for i = 0 to n - 1 do
    if not silent.(i) then begin
      let s = state.(i) in
      let target = quota.(i) in
      let made = ref 0 in
      while !made < target && s.ptr < Array.length s.wsorted do
        let v, _ = s.wsorted.(s.ptr) in
        if (not (Hashtbl.mem s.in_p v)) && Hashtbl.mem s.u_set v then begin
          Hashtbl.replace s.in_p v ();
          Hashtbl.replace s.pending v ();
          send_prop i v;
          arm_timeout i v;
          incr made
        end;
        s.ptr <- s.ptr + 1
      done;
      s.ptr <- 0;
      check_done i
    end
  done;
  Simnet.run net;
  let all_correct_terminated =
    let ok = ref true in
    for i = 0 to n - 1 do
      if (not silent.(i)) && not state.(i).finished then ok := false
    done;
    !ok
  in
  let ids = ref [] in
  Graph.iter_edges g (fun eid a b ->
      if
        (not silent.(a)) && (not silent.(b))
        && Hashtbl.mem state.(a).k_set b
        && Hashtbl.mem state.(b).k_set a
      then ids := eid :: !ids);
  let matching = Bmatching.of_edge_ids g ~capacity !ids in
  {
    matching;
    prop_count = !prop_count;
    rej_count = !rej_count;
    timeouts_fired = !timeouts_fired;
    dropped = Simnet.messages_dropped net;
    completion_time = Simnet.now net;
    all_correct_terminated;
  }
