(* Fail-silent peers as a stack configuration: silent nodes are handed
   to the (no-op) adversary layer, and the per-proposal timeout is the
   detector layer's patience timer.  The PROP/REJ transitions this
   module used to duplicate live only in Lid; the stack runs them via
   Lid.init/Lid.deliver. *)

let run ?(seed = 0x50B) ?(delay = Owp_simnet.Simnet.Uniform (0.5, 1.5))
    ?(faults = Owp_simnet.Simnet.no_faults) ?(timeout = 10.0) ~silent w ~capacity =
  Stack.run ~seed ~delay ~faults ~patience:timeout ~silent w ~capacity
