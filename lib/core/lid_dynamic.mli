(** Dynamic LID — the paper's §7 future work ("can the same greedy
    strategy tackle joins/leaves?") built as a protocol extension and
    evaluated in experiment E16.

    The static LID protocol answers proposals lazily (a node defers
    replying until it can decide), which is what makes its edge set
    exactly locally-heaviest but assumes a fixed epoch.  The dynamic
    variant trades that exactness for responsiveness:

    - a saturated node {e immediately} declines a proposal (REJ);
    - a proposal is accepted with an explicit ACCEPT, locking the link
      on both sides (the proposer reserved a pending slot, so neither
      side overcommits);
    - a peer leaving sends LEAVE to its alive neighbours; any neighbour
      that loses a locked link regains quota and resumes proposing;
    - a peer (re)joining sends HELLO and starts proposing;
    - a node that frees capacity broadcasts AVAIL so that neighbours it
      previously declined may retry.

    The resulting matching is maximal and capacity-feasible at every
    quiescent point; unlike static LID it is not always the
    locally-heaviest edge set — E16 measures the satisfaction gap
    against a from-scratch static LID run after the same event trace
    (typically a few percent, at a small fraction of the messages). *)

type event = Stack.node_event = Join of int | Leave of int
(** Churn events are the {!Stack}'s node events: the same [Join]/[Leave]
    vocabulary drives both this eager dynamic variant and the stack's
    crash/restart scheduling ([Stack.run ~events]). *)

type step_report = {
  event : event;
  active_nodes : int;
  total_satisfaction : float;
  weight : float;
  messages_for_event : int;  (** protocol messages triggered by this event *)
}

type report = {
  steps : step_report list;
  final_matching : Owp_matching.Bmatching.t;
  total_messages : int;
  bootstrap_messages : int;  (** messages spent building the initial overlay *)
  quiescent : bool;  (** every event burst drained before the next event *)
}

val run :
  ?seed:int ->
  ?delay:Owp_simnet.Simnet.delay_model ->
  prefs:Preference.t ->
  initially_active:bool array ->
  events:event list ->
  unit ->
  report
(** Bootstraps the overlay among the initially active peers, then plays
    the events one at a time, letting the protocol quiesce in between
    (virtual time; the simulator runs to quiescence per burst).
    @raise Invalid_argument on malformed events. *)
