(** LID under unresponsive peers — the §7 "disruptive nodes" direction.

    Static LID relies on every neighbour eventually answering (Lemma 5's
    setting: reliable channels, correct peers).  A fail-silent peer —
    crashed, overloaded, or deliberately stonewalling — would leave its
    neighbours waiting forever.  The standard remedy is a timeout per
    outstanding wait: a neighbour that stays silent past the timeout is
    treated as having declined (implicit REJ), locally and
    conservatively.

    This module is a thin {!Stack} configuration: the silent peers go
    to the stack's adversary layer (with the no-op behaviour) and the
    timeout is the detector layer's patience timer — there is no
    robust-specific event loop or transition code left; the protocol is
    {!Lid.init}/{!Lid.deliver} behind the stack's layers.

    Guarantees kept: termination (now unconditional), capacity
    feasibility, and — among the correct peers that actually answer —
    the mutual-proposal locking discipline.  Guarantee traded away: with
    aggressive timeouts a slow-but-correct peer can be misclassified, so
    the edge set may deviate from LIC's; experiment E15 measures the
    satisfaction degradation as a function of the fraction of silent
    peers and of the timeout.

    In the report, [all_terminated] covers the responsive nodes and the
    fired timeouts are [Stack.counter r ~layer:"detector"
    "patience-fired"]. *)

val run :
  ?seed:int ->
  ?delay:Owp_simnet.Simnet.delay_model ->
  ?faults:Owp_simnet.Simnet.faults ->
  ?timeout:float ->
  silent:bool array ->
  Weights.t ->
  capacity:int array ->
  Stack.report
(** [silent.(v)] marks a fail-silent peer: it receives traffic but never
    sends anything.  [timeout] (default 10.0 virtual time units) is the
    patience per outstanding proposal/wait.  [faults] additionally
    injects channel faults (the per-proposal timeout then doubles as a
    crude recovery from lost messages; {!Lid_reliable} does it
    properly). *)
