module Bmatching = Owp_matching.Bmatching

let lightest_selected w m u =
  let g = Bmatching.graph m in
  let best = ref (-1) in
  Graph.iter_neighbors g u (fun _ eid ->
      if Bmatching.mem m eid then
        if !best < 0 || Weights.heavier w !best eid then best := eid);
  !best

let weighted_blocking_pair w m =
  let g = Bmatching.graph m in
  let found = ref None in
  (try
     Graph.iter_edges g (fun eid u v ->
         if not (Bmatching.mem m eid) then begin
           let beats x =
             if Bmatching.residual m x > 0 then Bmatching.capacity m x > 0
             else begin
               let light = lightest_selected w m x in
               light >= 0 && Weights.heavier w eid light
             end
           in
           if beats u && beats v then begin
             found := Some (u, v);
             raise Exit
           end
         end)
   with Exit -> ());
  !found

let is_greedy_stable w m = weighted_blocking_pair w m = None

let half_approx_certificate w m = Bmatching.is_maximal m && is_greedy_stable w m

let weight_ratio w approx opt =
  let a = Bmatching.weight approx w and o = Bmatching.weight opt w in
  if Float.equal o 0.0 then 1.0 else a /. o

let total_satisfaction prefs m =
  Preference.total_satisfaction prefs (Bmatching.connection_lists m)

let satisfaction_ratio prefs approx opt =
  let a = total_satisfaction prefs approx and o = total_satisfaction prefs opt in
  if Float.equal o 0.0 then 1.0 else a /. o

let lemma1_bound ~bmax =
  if bmax <= 0 then invalid_arg "Theory.lemma1_bound: bmax must be positive";
  0.5 *. (1.0 +. (1.0 /. float_of_int bmax))

let theorem3_bound ~bmax =
  if bmax <= 0 then invalid_arg "Theory.theorem3_bound: bmax must be positive";
  0.25 *. (1.0 +. (1.0 /. float_of_int bmax))

let static_vs_full_ratio prefs m =
  let conns = Bmatching.connection_lists m in
  let s_static = Preference.total_static_satisfaction prefs conns in
  let s_full = Preference.total_satisfaction prefs conns in
  if Float.equal s_full 0.0 then 1.0 else s_static /. s_full
