module Faults = Owp_simnet.Faults
module Schedule = Owp_simnet.Schedule

type engine = Lic | Lic_indexed | Lid | Lid_reliable | Lid_byzantine | Greedy | Dynamics

type t = {
  engine : engine;
  seed : int;
  faults : Faults.t;
  schedule : Schedule.t;
  reliable : bool;
  byzantine : string option;
  guard : bool;
  sim_shards : int;
  check : bool;
  deadline : float option;
  max_rounds : int option;
}

let default =
  {
    engine = Lid;
    seed = 42;
    faults = Faults.none;
    schedule = Schedule.empty;
    reliable = false;
    byzantine = None;
    guard = false;
    sim_shards = 1;
    check = false;
    deadline = None;
    max_rounds = None;
  }

let make ?(engine = default.engine) ?(seed = default.seed) ?(faults = default.faults)
    ?(schedule = Schedule.empty) ?(reliable = false) ?byzantine ?(guard = false)
    ?(sim_shards = 1) ?(check = false) ?deadline ?max_rounds () =
  {
    engine;
    seed;
    faults;
    schedule;
    reliable;
    byzantine;
    guard;
    sim_shards;
    check;
    deadline;
    max_rounds;
  }

let budgeted t = Option.is_some t.deadline || Option.is_some t.max_rounds

let engine_name = function
  | Lic -> "lic"
  | Lic_indexed -> "lic-indexed"
  | Lid -> "lid"
  | Lid_reliable -> "lid-reliable"
  | Lid_byzantine -> "lid-byzantine"
  | Greedy -> "greedy"
  | Dynamics -> "dynamics"

let all_engines = [ Lic; Lic_indexed; Lid; Lid_reliable; Lid_byzantine; Greedy; Dynamics ]

let engine_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "lic" -> Ok Lic
  | "lic-indexed" | "lic_indexed" | "indexed" -> Ok Lic_indexed
  | "lid" -> Ok Lid
  | "lid-reliable" | "lid_reliable" | "reliable" -> Ok Lid_reliable
  | "lid-byzantine" | "lid_byzantine" | "byzantine" -> Ok Lid_byzantine
  | "greedy" -> Ok Greedy
  | "dynamics" -> Ok Dynamics
  | s ->
      Error
        (Printf.sprintf "unknown engine %S (expected %s)" s
           (String.concat " | " (List.map engine_name all_engines)))

(* The engines that execute through the layered Stack.run loop — the
   only ones for which faults, the reliable transport, adversaries and
   the guard are meaningful. *)
let lid_family = function
  | Lid | Lid_reliable | Lid_byzantine -> true
  | Lic | Lic_indexed | Greedy | Dynamics -> false

let validate t =
  let ( let* ) = Result.bind in
  let* _ = Faults.validate t.faults in
  let* _ = Schedule.validate t.schedule in
  let* () =
    if (not (Schedule.is_empty t.schedule)) && not (lid_family t.engine) then
      Error
        (Printf.sprintf
           "a fault schedule (--schedule) scripts network weather over a \
            simulated run and needs a LID-family engine (lid, lid-reliable or \
            lid-byzantine); engine %s does not simulate a network"
           (engine_name t.engine))
    else Ok ()
  in
  let* () =
    match t.byzantine with
    | None ->
        if t.engine = Lid_byzantine then
          Error "engine lid-byzantine needs an adversary spec (--byzantine MODEL:FRAC)"
        else Ok ()
    | Some spec ->
        if not (lid_family t.engine) then
          Error
            (Printf.sprintf
               "an adversary spec needs a LID-family engine (lid, lid-reliable or \
                lid-byzantine); engine %s has no peers to subvert"
               (engine_name t.engine))
        else begin
          match Owp_simnet.Adversary.parse_spec spec with
          | _ -> Ok ()
          | exception Invalid_argument msg -> Error msg
        end
  in
  let* () =
    if t.guard && t.byzantine = None then
      Error
        "--guard vets adversarial traffic; without --byzantine MODEL:FRAC there is \
         nothing to guard against (drop --guard, or add an adversary spec)"
    else Ok ()
  in
  let* () =
    if Faults.any t.faults && not (lid_family t.engine) then
      Error
        (Printf.sprintf
           "faults (%s) need a LID-family engine (lid, lid-reliable or \
            lid-byzantine); engine %s does not simulate a network"
           (Faults.to_string t.faults) (engine_name t.engine))
    else Ok ()
  in
  let* () =
    if t.reliable && not (lid_family t.engine) then
      Error
        (Printf.sprintf
           "--reliable enables the ARQ transport under a LID-family engine; engine \
            %s does not send messages"
           (engine_name t.engine))
    else Ok ()
  in
  let* () =
    if t.sim_shards < 1 then
      Error
        (Printf.sprintf "--sim-shards %d: the event store needs at least one shard"
           t.sim_shards)
    else if t.sim_shards > 1 && not (lid_family t.engine) then
      Error
        (Printf.sprintf
           "--sim-shards partitions the simulator's event store and needs a \
            LID-family engine (lid, lid-reliable or lid-byzantine); engine %s \
            does not simulate a network"
           (engine_name t.engine))
    else Ok ()
  in
  let* () =
    match (t.deadline, t.max_rounds) with
    | Some _, Some _ ->
        Error
          "--deadline and --max-rounds are two spellings of one budget (a round \
           budget is converted to virtual time via the delay model) — give \
           exactly one"
    | Some d, None when d <= 0.0 ->
        Error
          (Printf.sprintf
             "--deadline %g: the budget is a positive virtual-time horizon \
              (protocol rounds take ~1.5 time units under the default delay \
              model)"
             d)
    | None, Some k when k <= 0 ->
        Error
          (Printf.sprintf
             "--max-rounds %d: the budget is a positive number of propose-answer \
              rounds"
             k)
    | _ -> Ok ()
  in
  let* () =
    if budgeted t && not (lid_family t.engine) then
      Error
        (Printf.sprintf
           "an anytime budget (--deadline/--max-rounds) bounds a simulated \
            message-passing run and needs a LID-family engine (lid, \
            lid-reliable or lid-byzantine); engine %s computes its matching in \
            one step"
           (engine_name t.engine))
    else Ok ()
  in
  Ok t

let to_string t =
  String.concat " "
    (List.concat
       [
         [ "engine=" ^ engine_name t.engine; Printf.sprintf "seed=%d" t.seed ];
         (if Faults.equal t.faults Faults.none then []
          else [ "faults=" ^ Faults.to_string t.faults ]);
         (if Schedule.is_empty t.schedule then []
          else [ "schedule=" ^ Schedule.to_string t.schedule ]);
         (if t.reliable then [ "reliable" ] else []);
         (match t.byzantine with
         | Some spec -> [ "byzantine=" ^ spec ]
         | None -> []);
         (if t.guard then [ "guard" ] else []);
         (if t.sim_shards <> 1 then
            [ Printf.sprintf "sim-shards=%d" t.sim_shards ]
          else []);
         (if t.check then [ "check" ] else []);
         (match t.deadline with
         | Some d -> [ Printf.sprintf "deadline=%g" d ]
         | None -> []);
         (match t.max_rounds with
         | Some k -> [ Printf.sprintf "max-rounds=%d" k ]
         | None -> []);
       ])

let pp ppf t = Format.pp_print_string ppf (to_string t)
