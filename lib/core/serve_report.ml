(* Plain data so the serving layer (owp_serve, which depends on
   owp_core) can report through Pipeline.outcome without a dependency
   cycle: the core defines the record, the serving layer fills it. *)

type t = {
  arrivals : string;
  horizon : float;
  offered : int;
  served : int;
  shed : int;
  joins : int;
  leaves : int;
  reprefs : int;
  queries : int;
  p50 : float;
  p99 : float;
  max_latency : float;
  mean_service : float;
  throughput : float;
  max_queue : int;
  utilization : float;
  steady_satisfaction : float;
  oracle_samples : int;
}

let f = Printf.sprintf "%.12g"

(* one canonical rendering, used both by the CLI printer and by the
   determinism tests (same seed + spec => byte-identical summary) *)
let summary t =
  String.concat "\n"
    [
      Printf.sprintf "arrivals            : %s" t.arrivals;
      Printf.sprintf "horizon (virtual)   : %s" (f t.horizon);
      Printf.sprintf "offered / served    : %d / %d (%d shed)" t.offered t.served t.shed;
      Printf.sprintf "request mix         : %d join, %d leave, %d repref, %d query"
        t.joins t.leaves t.reprefs t.queries;
      Printf.sprintf "latency p50 / p99   : %s / %s" (f t.p50) (f t.p99);
      Printf.sprintf "latency max         : %s" (f t.max_latency);
      Printf.sprintf "mean service time   : %s" (f t.mean_service);
      Printf.sprintf "throughput          : %s req/vt" (f t.throughput);
      Printf.sprintf "max queue depth     : %d" t.max_queue;
      Printf.sprintf "utilization         : %s" (f t.utilization);
      Printf.sprintf "steady satisfaction : %s (vs LIC oracle, %d samples)\n"
        (f t.steady_satisfaction) t.oracle_samples;
    ]
