(** High-level entry point: from a preference system to a matched
    overlay.

    This is the API an application uses: it derives the eq. 9 weights,
    runs the chosen algorithm and reports the achieved satisfaction
    together with the guarantee that applies (Theorem 3 for LID/LIC). *)

type algorithm =
  | Lid_distributed  (** Algorithm 1 on the simulated network *)
  | Lic_centralized  (** Algorithm 2 *)
  | Global_greedy  (** the paper's OPT comparator *)
  | Stable_dynamics  (** blocking-pair dynamics (fixtures baseline) *)

type outcome = {
  matching : Owp_matching.Bmatching.t;
  total_satisfaction : float;  (** Σ_i S_i, eq. 1 *)
  mean_satisfaction : float;  (** over nodes with non-empty lists *)
  total_weight : float;  (** under eq. 9 weights *)
  guarantee : float option;
      (** the proven lower bound on the satisfaction ratio vs optimum,
          when the algorithm has one: ¼(1+1/b_max) for LID/LIC *)
  messages : int option;  (** PROP+REJ for LID, None otherwise *)
  quiesced : bool option;
      (** for LID, whether every node terminated cleanly on the
          simulated network (Lemma 5); [None] for the algorithms with
          no protocol run.  Drivers should treat [Some false] as a
          failure, not a cosmetic detail *)
  check_report : Owp_check.Checker.report option;
      (** invariant diagnostics, present when [run ~check:true] *)
}

val weights : Preference.t -> Weights.t
(** Eq. 9 weights of the preference system. *)

val run : ?seed:int -> ?check:bool -> algorithm -> Preference.t -> outcome
(** [check] (default [false]) additionally runs the {!Owp_check.Checker}
    diagnostics appropriate to the algorithm (the full registry for
    LIC/LID, everything but Theorem 3 for greedy, the instance-level
    invariants for the stable dynamics) and stores the structured report
    in [check_report] — it never raises, so callers can render the
    violations. *)

val satisfaction_profile : Preference.t -> Owp_matching.Bmatching.t -> float array
(** Per-node satisfaction values of a matching. *)
