(** High-level entry point: from a preference system to a matched
    overlay.

    This is the API an application uses: it derives the eq. 9 weights,
    runs the engine chosen in a {!Run_config.t} and reports the achieved
    satisfaction together with the guarantee that applies (Theorem 3 for
    LID/LIC).  Callers pick the algorithm via configuration
    ({!Run_config.engine}) instead of importing the per-variant driver
    modules.

    All three LID-family engines dispatch to the one layered
    {!Stack.run} loop: the config's [faults], [reliable], [byzantine]
    and [guard] knobs select middleware layers, in any combination
    {!Run_config.validate} admits, and the protocol diagnostics come
    back as one uniform {!Stack.report} in {!detail}. *)

type engine = Run_config.engine =
  | Lic
  | Lic_indexed
  | Lid
  | Lid_reliable
  | Lid_byzantine
  | Greedy
  | Dynamics
      (** Re-export of {!Run_config.engine} so [Pipeline.Lic_indexed]
          and friends are in scope for pipeline users. *)

(** Engine-specific diagnostics the generic outcome cannot carry.  The
    per-driver report variants collapsed with the drivers themselves:
    every protocol run — plain, faulty, reliable, Byzantine, or any
    composition — yields the same {!Stack.report} with its per-layer
    counter table. *)
type detail =
  | Plain  (** centralized engines: no protocol run *)
  | Stack of Stack.report  (** LID-family engines: the stack's report *)

type outcome = {
  engine : engine;  (** what actually ran *)
  matching : Owp_matching.Bmatching.t;
  total_satisfaction : float;  (** Σ_i S_i, eq. 1 *)
  mean_satisfaction : float;  (** over nodes with non-empty lists *)
  total_weight : float;  (** under eq. 9 weights *)
  guarantee : float option;
      (** the proven lower bound on the satisfaction ratio vs optimum,
          when the run provably achieves LIC's edge set: ¼(1+1/b_max)
          for LIC and for LID runs with no adversaries, no crashes, no
          anytime budget, and either a clean channel or the transport
          masking it *)
  messages : int option;  (** PROP+REJ for the distributed engines *)
  rounds : float option;
      (** virtual completion time of the protocol run — the
          asynchronous analogue of a round count; [None] for
          centralized engines *)
  wall_ms : float;  (** wall-clock of the engine run, milliseconds *)
  quiesced : bool option;
      (** for the distributed engines, whether every (correct) node
          terminated cleanly (Lemma 5); [None] for engines with no
          protocol run.  Drivers should treat [Some false] as a
          failure, not a cosmetic detail *)
  cutoff : Stack.cutoff option;
      (** [Some _] iff an anytime budget stopped the run at its
          deadline: a distinct outcome — the served matching is
          deliberately partial (frozen feasible, certified by
          {!Owp_check.Anytime}), NOT a quiescence failure; after the
          freeze [quiesced] is [Some true] by construction *)
  check_report : Owp_check.Checker.report option;
      (** invariant diagnostics, present when the config asked for
          checking *)
  stabilize : Owp_check.Stabilize.certificate option;
      (** self-stabilization certificate, present exactly when the
          config carries a non-empty fault schedule: the final edge
          set (restricted to participating endpoints) must equal the
          crash-only LIC reference after the last episode heals, with
          the recovery time measured.  The reference relativizes each
          survivor's quota by the slots it irrevocably locked toward
          peers that later crashed — the same move the bounded-damage
          certificate makes for Byzantine peers.  Drivers should treat a VOID
          certificate as a failure in adversary-free runs; under
          adversaries the damage certificate remains the gate *)
  serve : Serve_report.t option;
      (** sustained-traffic serving report, filled by the serving layer
          ([owp_serve]) on the outcome it returns for a serve session;
          always [None] on a plain {!run_config} outcome *)
  detail : detail;
}

val weights : Preference.t -> Weights.t
(** Eq. 9 weights of the preference system. *)

val run_config : ?capacity:int array -> Run_config.t -> Preference.t -> outcome
(** Solve the instance as the config says.  The config is
    {!Run_config.validate}d first.  [capacity], when given, overrides
    the preference system's quota vector — the serving layer uses it
    to model membership (capacity 0 for departed nodes) without
    rebuilding the preference system; satisfaction is still evaluated
    against the original lists.
    @raise Invalid_argument on an inconsistent config (e.g. a guard
    with no adversary spec). *)

val crash_schedule : seed:int -> n:int -> float -> Stack.crash_plan list
(** The deterministic (seed-derived) fail-stop schedule behind
    [faults.crash]: each node independently crashes with the given
    probability at a random early point and never restarts.  Exposed so
    experiments can reuse the CLI's exact schedule. *)

val satisfaction_profile : Preference.t -> Owp_matching.Bmatching.t -> float array
(** Per-node satisfaction values of a matching. *)
