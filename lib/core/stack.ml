module Simnet = Owp_simnet.Simnet
module Transport = Owp_simnet.Transport
module Adversary = Owp_simnet.Adversary
module Schedule = Owp_simnet.Schedule
module Bmatching = Owp_matching.Bmatching
module Violation = Owp_check.Violation
module Checker = Owp_check.Checker
module Byzantine = Owp_check.Byzantine
module Explore = Owp_check.Explore

(* ------------------------------------------------------------------ *)
(* public types                                                        *)
(* ------------------------------------------------------------------ *)

type node_event = Join of int | Leave of int
type crash_plan = { victim : int; crash_at : float; restart_at : float option }
type layer = { layer : string; counters : (string * int) list }

type cutoff = {
  cut_at : float;
  released : int;
  half_locks : int;
  abandoned : int;
}

type report = {
  matching : Bmatching.t;
  correct : bool array;
  participating : bool array;
  byz_count : int;
  prop_count : int;
  rej_count : int;
  adversary_msgs : int;
  delivered : int;
  dropped : int;
  reordered : int;
  lost_to_crashes : int;
  synthetic_rejects : int;
  quarantine_events : int;
  false_quarantines : int;
  byz_offenders : int;
  byz_quarantined : int;
  offence_counts : (string * int) list;
  wasted_slots : int;
  quiet_rounds : int;
  completion_time : float;
  all_terminated : bool;
  unterminated : int list;
  quiescence : Violation.t list;
  damage : Violation.t list;
  cutoff : cutoff option;
  layers : layer list;
}

let counter r ~layer name =
  match List.find_opt (fun l -> l.layer = layer) r.layers with
  | None -> 0
  | Some l -> Option.value ~default:0 (List.assoc_opt name l.counters)

let overhead r =
  let protocol = r.prop_count + r.rej_count in
  let frames = counter r ~layer:"transport" "frames" in
  if protocol = 0 || frames = 0 then 1.0
  else float_of_int frames /. float_of_int protocol

(* virtual time one propose–answer round takes under a delay model —
   the conversion behind [max_rounds].  For stochastic models this is a
   representative per-hop figure (the uniform upper bound; twice the
   exponential mean covers ~86% of samples), not a worst case. *)
let round_length = function
  | Simnet.Unit -> 1.0
  | Simnet.Uniform (_, hi) -> hi
  | Simnet.Exponential mean -> 2.0 *. mean
  | Simnet.PerLink _ -> 1.0

(* ------------------------------------------------------------------ *)
(* eq. 9 halves                                                        *)
(* ------------------------------------------------------------------ *)

(* ΔS̄_i(j): node i's half of edge (i,j)'s symmetric weight.  Matches
   Weights.of_preference exactly (same static_delta calls, and IEEE
   addition is commutative), so an all-honest perceived ranking is
   bit-identical to Lid's default weight list. *)
let half prefs i j =
  let b = Preference.quota prefs i and l = Preference.list_len prefs i in
  if b = 0 || l = 0 then 0.0
  else Satisfaction.static_delta ~quota:b ~list_len:l ~rank:(Preference.rank prefs i j)

(* the public structural bound: ΔS̄_j(·) = (1 − R/L)/b_j ≤ 1/b_j, and
   b_j is public — any claim above this is a provable lie *)
let bound prefs j =
  let b = Preference.quota prefs j in
  if b <= 0 then 0.0 else 1.0 /. float_of_int b

(* what node j advertises about its half of edge (j, i) *)
let advert_of prefs adversaries j i =
  match adversaries.(j) with
  | Some (Adversary.Weight_liar lam) -> (1.0 +. lam) *. bound prefs j
  | _ -> half prefs j i

(* perceived ranking of node i: neighbours by decreasing
   own-half + advertised-half, Lid's tie-break order *)
let ranking_of g perceived i =
  let entries =
    Array.to_list (Graph.neighbors g i)
    |> List.filter (fun (v, _) -> Hashtbl.mem perceived v)
  in
  let pw (v, _) = (Hashtbl.find perceived v : float) in
  let sorted =
    List.sort
      (fun ((_, e) as a) ((_, f) as b) ->
        let c = Float.compare (pw b) (pw a) in
        if c <> 0 then c
        else begin
          let ue, ve = Graph.edge_endpoints g e and uf, vf = Graph.edge_endpoints g f in
          compare (uf, vf, f) (ue, ve, e)
        end)
      entries
  in
  Array.of_list sorted

(* ------------------------------------------------------------------ *)
(* adversary behaviours (the adversary layer's node programs)          *)
(* ------------------------------------------------------------------ *)

let prop claim = { Guard.epoch = 0; body = Guard.Prop { claim } }
let rej = { Guard.epoch = 0; body = Guard.Rej }

(* f's own (truthful) preference order over its neighbours *)
let own_order prefs g f =
  let entries = Array.to_list (Graph.neighbors g f) in
  List.sort
    (fun (v1, _) (v2, _) ->
      Float.compare
        (half prefs f v2 +. half prefs v2 f)
        (half prefs f v1 +. half prefs v1 f))
    entries
  |> List.map fst

let rec take k = function
  | [] -> []
  | _ when k <= 0 -> []
  | x :: tl -> x :: take (k - 1) tl

(* a roughly honest responder: proposes to its top-b, accepts up to
   [limit] partners, declines the rest — every proposal it receives is
   eventually answered.  [claim v] is what it writes into its PROPs. *)
let responder ~claim ~order ~limit =
  let sent = Hashtbl.create 8 in
  let partners = Hashtbl.create 8 in
  let declined = Hashtbl.create 8 in
  let prop_to ~send v =
    if not (Hashtbl.mem sent v) then begin
      Hashtbl.replace sent v ();
      send ~dst:v (prop (claim v))
    end
  in
  let on_init ~send = List.iter (prop_to ~send) (take limit order) in
  let on_receive ~src (m : Guard.msg) ~send =
    match m.body with
    | Guard.Prop _ ->
        if Hashtbl.mem partners src then ()
        else if Hashtbl.mem sent src then Hashtbl.replace partners src ()
        else if Hashtbl.length partners < limit && not (Hashtbl.mem declined src)
        then begin
          Hashtbl.replace partners src ();
          prop_to ~send src
        end
        else if not (Hashtbl.mem declined src) then begin
          Hashtbl.replace declined src ();
          send ~dst:src rej
        end
    | Guard.Rej -> Hashtbl.remove sent src
  in
  { Adversary.on_init; on_receive }

let make_behaviour prefs g adversaries f model =
  let nbrs = Array.map fst (Graph.neighbors g f) in
  let b = Preference.quota prefs f in
  let order = own_order prefs g f in
  match (model : Adversary.model) with
  | Adversary.Weight_liar _ ->
      (* state-machine-clean; the dishonesty is entirely in the claim,
         which must match the bootstrap advert to stay stealthy *)
      responder ~claim:(advert_of prefs adversaries f) ~order ~limit:b
  | Adversary.Equivocator ->
      (* proposes to everyone once; every proposal it ever receives is
         answered by that standing accept — per-link perfectly legal *)
      {
        Adversary.on_init =
          (fun ~send -> Array.iter (fun v -> send ~dst:v (prop (half prefs f v))) nbrs);
        on_receive = (fun ~src:_ _ ~send:_ -> ());
      }
  | Adversary.Flooder k ->
      (* every receipt triggers [k] full PROP sweeps over the
         neighbourhood; a total budget stops flooder pairs from
         amplifying each other forever *)
      let sweeps_left = ref (4 * max 1 k) in
      {
        Adversary.on_init = (fun ~send:_ -> ());
        on_receive =
          (fun ~src:_ _ ~send ->
            let burst = min (max 1 k) !sweeps_left in
            sweeps_left := !sweeps_left - burst;
            for _ = 1 to burst do
              Array.iter (fun v -> send ~dst:v (prop (half prefs f v))) nbrs
            done);
      }
  | Adversary.Replayer ->
      (* honest-looking play plus duplicates of its own past messages,
         every other one with a stale epoch *)
      let inner = responder ~claim:(half prefs f) ~order ~limit:b in
      let log = ref [] in
      let replays = ref 0 in
      let recording send ~dst m =
        log := (dst, m) :: !log;
        send ~dst m
      in
      {
        Adversary.on_init = (fun ~send -> inner.Adversary.on_init ~send:(recording send));
        on_receive =
          (fun ~src m ~send ->
            inner.Adversary.on_receive ~src m ~send:(recording send);
            match !log with
            | [] -> ()
            | l ->
                let dst, (m : Guard.msg) = List.nth l (!replays mod List.length l) in
                incr replays;
                let epoch = if !replays mod 2 = 0 then m.epoch else -1 in
                send ~dst { m with epoch });
      }
  | Adversary.State_violator ->
      (* PROP-to-stranger at startup, REJ right after a lock forms, and
         proposals from others are never answered (liveness violation:
         unguarded peers starve waiting for its reply) *)
      let sent = Hashtbl.create 8 in
      let n = Graph.node_count g in
      let neighbour = Hashtbl.create 8 in
      Array.iter (fun v -> Hashtbl.replace neighbour v ()) nbrs;
      let stranger =
        let rec find i =
          if i >= n then None
          else if i <> f && not (Hashtbl.mem neighbour i) then Some i
          else find (i + 1)
        in
        find 0
      in
      {
        Adversary.on_init =
          (fun ~send ->
            List.iter
              (fun v ->
                Hashtbl.replace sent v ();
                send ~dst:v (prop (half prefs f v)))
              (take (max 1 b) order);
            Option.iter (fun w -> send ~dst:w (prop (bound prefs f))) stranger);
        on_receive =
          (fun ~src (m : Guard.msg) ~send ->
            match m.body with
            | Guard.Prop _ when Hashtbl.mem sent src ->
                (* mutual proposal: the victim just locked us — renege *)
                Hashtbl.remove sent src;
                send ~dst:src rej
            | _ -> ());
      }

(* ------------------------------------------------------------------ *)
(* the layer signature                                                 *)
(* ------------------------------------------------------------------ *)

(* One middleware layer on the message path.  [on_send] filters or
   rewrites an outbound protocol message, [on_deliver] an inbound one;
   [None] swallows the message (any completion side effects — a
   quarantine announcement, say — are the layer's own).  Timers are
   layer-owned {!Simnet.schedule} callbacks.  [mw_counters] is the
   layer's row of the report's counter table. *)
type mw = {
  mw_name : string;
  on_send : src:int -> dst:int -> Guard.msg -> Guard.msg option;
  on_deliver : src:int -> dst:int -> Guard.msg -> Guard.msg option;
  mw_counters : unit -> (string * int) list;
}

let pass ~src:_ ~dst:_ m = Some m

let rec fold_send layers ~src ~dst m =
  match layers with
  | [] -> Some m
  | l :: tl -> (
      match l.on_send ~src ~dst m with
      | None -> None
      | Some m -> fold_send tl ~src ~dst m)

let rec fold_deliver layers ~src ~dst m =
  match layers with
  | [] -> Some m
  | l :: tl -> (
      match l.on_deliver ~src ~dst m with
      | None -> None
      | Some m -> fold_deliver tl ~src ~dst m)

(* ------------------------------------------------------------------ *)
(* the run loop                                                        *)
(* ------------------------------------------------------------------ *)

let run ?(seed = 0x57C) ?(delay = Simnet.Uniform (0.5, 1.5)) ?(fifo = true)
    ?(faults = Simnet.no_faults) ?(schedule = Schedule.empty) ?(reliable = false)
    ?(sim_shards = 1) ?(unsafe_lookahead = false) ?transport ?patience ?deadline
    ?max_rounds ?(crashes = []) ?(events = []) ?silent ?adversaries
    ?(guard = false) ?(guard_config = Guard.default_config) ?prefs
    ?(on_lock = fun _ _ _ -> ()) ?(check = false) w ~capacity =
  let g = Weights.graph w in
  let n = Graph.node_count g in
  (* --- argument validation ------------------------------------------ *)
  (match Schedule.validate ~n schedule with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Stack.run: bad schedule: " ^ msg));
  (* down episodes are crash-then-restart sugar: the node leaves at the
     episode start and rejoins retired at the heal *)
  let crashes =
    crashes
    @ List.map
        (fun (v, crash_at, restart_at) ->
          { victim = v; crash_at; restart_at = Some restart_at })
        (Schedule.down_spans schedule)
  in
  List.iter
    (fun { victim; crash_at; restart_at } ->
      if victim < 0 || victim >= n then
        invalid_arg "Stack.run: crash victim out of range";
      if crash_at < 0.0 then invalid_arg "Stack.run: negative crash time";
      match restart_at with
      | Some t when t <= crash_at -> invalid_arg "Stack.run: restart not after crash"
      | _ -> ())
    crashes;
  List.iter
    (fun (t, ev) ->
      let v = match ev with Join v | Leave v -> v in
      if v < 0 || v >= n then invalid_arg "Stack.run: event node out of range";
      if t < 0.0 then invalid_arg "Stack.run: negative event time")
    events;
  (match patience with
  | Some p when p <= 0.0 -> invalid_arg "Stack.run: patience must be positive"
  | _ -> ());
  let budget =
    match (deadline, max_rounds) with
    | Some _, Some _ ->
        invalid_arg
          "Stack.run: deadline and max_rounds are two spellings of one budget \
           — give exactly one"
    | Some d, None ->
        if d <= 0.0 then invalid_arg "Stack.run: deadline must be positive";
        Some d
    | None, Some k ->
        if k <= 0 then invalid_arg "Stack.run: max_rounds must be positive";
        Some (float_of_int k *. round_length delay)
    | None, None -> None
  in
  (match silent with
  | Some s when Array.length s <> n ->
      invalid_arg "Stack.run: silent array arity mismatch"
  | _ -> ());
  (match adversaries with
  | Some a when Array.length a <> n ->
      invalid_arg "Stack.run: adversary array arity mismatch"
  | _ -> ());
  let adv_enabled = Option.is_some adversaries in
  if adv_enabled && prefs = None then
    invalid_arg "Stack.run: adversaries need ~prefs (claims are preference halves)";
  if guard && not adv_enabled then
    invalid_arg "Stack.run: guard without an adversary environment is meaningless";
  let adv = match adversaries with Some a -> a | None -> Array.make (max n 1) None in
  let is_silent =
    match silent with Some s -> s | None -> Array.make (max n 1) false
  in
  let correct = Array.init n (fun i -> Option.is_none adv.(i) && not is_silent.(i)) in
  if adv_enabled && not (Array.exists Fun.id correct) then
    invalid_arg "Stack.run: no correct node left";
  let byz_count =
    Array.fold_left (fun acc m -> if Option.is_none m then acc else acc + 1) 0 adv
  in
  (* --- counters ----------------------------------------------------- *)
  let prop_count = ref 0 and rej_count = ref 0 in
  let adversary_msgs = ref 0 in
  let quarantine_events = ref 0 and false_quarantines = ref 0 in
  let synthetic_rejects = ref 0 and quiet_rounds = ref 0 in
  let suppressed_giveups = ref 0 in
  let inspected = ref 0 in
  let dedup_prop = ref 0 and dedup_rej = ref 0 in
  let lid_delivered = ref 0 in
  let patience_armed = ref 0 and patience_fired = ref 0 in
  let transport_giveups = ref 0 and quarantine_giveups = ref 0 in
  let stub_rejects = ref 0 in
  (* --- bootstrap: advertise half-weights, vet them, build rankings -- *)
  let guards =
    if guard then begin
      let p = Option.get prefs in
      Some
        (Array.init n (fun i ->
             Guard.create ~config:guard_config ~bound:(bound p) ~graph:g ~me:i ()))
    end
    else None
  in
  let bootstrap_rejects = ref [] in
  let ranking =
    match prefs with
    | Some p when adv_enabled ->
        let perceived = Array.init n (fun _ -> Hashtbl.create 8) in
        for i = 0 to n - 1 do
          if correct.(i) then
            Array.iter
              (fun (v, _) ->
                let a = advert_of p adv v i in
                match guards with
                | Some gs ->
                    let verdict = Guard.on_advert gs.(i) ~peer:v ~claim:a in
                    if verdict.Guard.quarantine then begin
                      incr quarantine_events;
                      if correct.(v) then incr false_quarantines;
                      bootstrap_rejects := (i, v) :: !bootstrap_rejects
                    end;
                    if verdict.Guard.accept then
                      Hashtbl.replace perceived.(i) v (half p i v +. a)
                | None -> Hashtbl.replace perceived.(i) v (half p i v +. a))
              (Graph.neighbors g i)
        done;
        Some (fun i -> if correct.(i) then ranking_of g perceived.(i) i else [||])
    | _ -> None
  in
  let st, initial = Lid.init ?ranking w ~capacity in
  let net =
    Simnet.create ~seed ~fifo ~faults ~shards:sim_shards ~unsafe_lookahead
      ~nodes:(max n 1) ~delay ()
  in
  (* scheduled network weather: outages are evaluated by the simulator
     at delivery time; [weather_touched window] is the "did scheduled
     weather intersect my last waiting window" predicate the detector
     and transport consult before declaring anyone dead.  The window
     matters: a give-up that merely checked {!Schedule.active} at its
     own fire instant would fire falsely just after the heal, while the
     healed link's answer is still in flight — and the window is padded
     by a round trip for the same reason, since a reply prompted at the
     heal instant needs that long to land.  A certain cut consumes no
     randomness, so an empty schedule leaves the run bit-identical to a
     scheduleless one. *)
  let weather_touched window =
    let now = Simnet.now net in
    let slack = 2.0 *. round_length delay in
    Schedule.overlaps schedule ~from_:(now -. window -. slack) ~until:now
  in
  if not (Schedule.is_empty schedule) then
    Simnet.set_outage net
      (Some (fun ~at ~src ~dst -> Schedule.outage schedule ~at ~src ~dst));
  (* a restarted node lost its volatile protocol state: it rejoins
     "retired" — it declines everything and claims nothing *)
  let retired = Array.make (max n 1) false in
  let live i = Simnet.is_up net i && not retired.(i) in
  (* --- outbound boundary: ARQ transport or raw datagram frames ------ *)
  let tr = ref None in
  let wire_send ~src ~dst (gm : Guard.msg) =
    match !tr with
    | Some t -> Transport.send t ~src ~dst gm
    | None ->
        Simnet.send net ~src ~dst (Transport.Data { epoch = 0; seq = 0; payload = gm })
  in
  let byz_send f ~dst m =
    incr adversary_msgs;
    wire_send ~src:f ~dst m
  in
  let behaviours =
    Array.init n (fun f ->
        match adv.(f) with
        | Some m -> make_behaviour (Option.get prefs) g adv f m
        | None -> Adversary.silent)
  in
  (* --- protocol sends and the detector ------------------------------ *)
  let wrap src dst = function
    | Lid.Prop ->
        incr prop_count;
        let claim = match prefs with Some p -> half p src dst | None -> 0.0 in
        prop claim
    | Lid.Rej ->
        incr rej_count;
        rej
  in
  let send_rej_wire src dst =
    incr rej_count;
    wire_send ~src ~dst rej
  in
  let outbound = ref [] in
  let rec process evs =
    List.iter
      (function
        | Lid.Send (src, dst, m) -> (
            let gm = wrap src dst m in
            (match fold_send !outbound ~src ~dst gm with
            | Some gm -> wire_send ~src ~dst gm
            | None -> ());
            match (m, patience) with
            | Lid.Prop, Some limit -> arm_patience src dst limit
            | _ -> ())
        | Lid.Lock (i, v) -> on_lock (Simnet.now net) i v)
      evs
  and arm_patience i v limit =
    incr patience_armed;
    let rec arm () =
      Simnet.schedule net ~delay:limit (fun () ->
          if live i && Lid.awaiting_reply st ~node:i ~peer:v then begin
            if weather_touched limit then begin
              (* scheduled weather touched the window we just waited
                 out: a give-up now would be a false positive against a
                 peer whose answer was cut — or is still in flight over
                 a link that healed mid-window.  Suppress it and re-arm
                 a full patience for the healed world — the loop is
                 finite because the schedule is. *)
              incr suppressed_giveups;
              arm ()
            end
            else begin
              incr patience_fired;
              synthetic_reject i ~peer:v
            end
          end)
    in
    arm ()
  and synthetic_reject at ~peer =
    incr synthetic_rejects;
    process (Lid.deliver st ~src:peer ~dst:at Lid.Rej)
  in
  let quarantine at ~peer =
    (* re-announce the decline on the wire, then release any obligation
       towards the offender through the synthetic-REJ escape hatch *)
    send_rej_wire at peer;
    incr quarantine_giveups;
    synthetic_reject at ~peer
  in
  (* --- inbound middleware ------------------------------------------- *)
  let guard_mw =
    Option.map
      (fun gs ->
        {
          mw_name = "guard";
          on_send = pass;
          on_deliver =
            (fun ~src ~dst m ->
              incr inspected;
              let verdict = Guard.inspect gs.(dst) ~peer:src m in
              if verdict.Guard.accept then Some m
              else begin
                (* [quarantine] is true exactly when this message pushed
                   the peer over the threshold — complete the quarantine
                   once, then swallow its traffic silently forever *)
                if verdict.Guard.quarantine then begin
                  incr quarantine_events;
                  if correct.(src) then incr false_quarantines;
                  if not retired.(dst) then quarantine dst ~peer:src
                end;
                None
              end);
          mw_counters =
            (fun () ->
              let offences = Hashtbl.create 8 in
              Array.iteri
                (fun i gd ->
                  if correct.(i) then
                    List.iter
                      (fun (k, c) ->
                        Hashtbl.replace offences k
                          (c + Option.value ~default:0 (Hashtbl.find_opt offences k)))
                      (Guard.offence_counts gd))
                gs;
              [
                ("inspected", !inspected);
                ("quarantines", !quarantine_events);
                ("false-quarantines", !false_quarantines);
              ]
              @ (Hashtbl.fold (fun k c acc -> (k, c) :: acc) offences []
                |> List.sort compare));
        })
      guards
  in
  (* protocol-level duplicate suppression: each directed link of a
     correct run carries at most one PROP and one REJ ever, and
     Lid.deliver is idempotent to repeats — suppression is
     outcome-neutral, purely an accounting layer.  It sits BELOW the
     guard on the inbound path: the guard must see raw per-link
     traffic, because a duplicate is itself an offence to score
     (dedup-above-guard would blind the quarantine scoring). *)
  let dedup_mw =
    let seen_prop = Hashtbl.create 64 and seen_rej = Hashtbl.create 64 in
    {
      mw_name = "dedup";
      on_send = pass;
      on_deliver =
        (fun ~src ~dst (m : Guard.msg) ->
          let tbl, cnt =
            match m.Guard.body with
            | Guard.Prop _ -> (seen_prop, dedup_prop)
            | Guard.Rej -> (seen_rej, dedup_rej)
          in
          if Hashtbl.mem tbl (src, dst) then begin
            incr cnt;
            None
          end
          else begin
            Hashtbl.replace tbl (src, dst) ();
            Some m
          end);
      mw_counters =
        (fun () ->
          [ ("suppressed-prop", !dedup_prop); ("suppressed-rej", !dedup_rej) ]);
    }
  in
  (* the anytime budget gate.  Until the deadline expires it is a pure
     pass-through; once [cut] flips, every residual send or delivery is
     swallowed, so even code paths that touch the network after the
     horizon (give-up sweeps, late timers) cannot reopen the protocol.
     Its counter row carries the cutoff accounting. *)
  let cut = ref false in
  let cut_released = ref 0 and cut_half_locks = ref 0 in
  let cut_abandoned = ref 0 and cut_suppressed = ref 0 in
  let deadline_mw =
    {
      mw_name = "deadline";
      on_send =
        (fun ~src:_ ~dst:_ m ->
          if !cut then begin
            incr cut_suppressed;
            None
          end
          else Some m);
      on_deliver =
        (fun ~src:_ ~dst:_ m ->
          if !cut then begin
            incr cut_suppressed;
            None
          end
          else Some m);
      mw_counters =
        (fun () ->
          [
            ("released", !cut_released);
            ("half-locks", !cut_half_locks);
            ("abandoned", !cut_abandoned);
            ("suppressed", !cut_suppressed);
          ]);
    }
  in
  let inbound = (match guard_mw with Some l -> [ l ] | None -> []) @ [ dedup_mw ] in
  let inbound =
    match budget with Some _ -> deadline_mw :: inbound | None -> inbound
  in
  outbound := inbound;
  (* --- inbound dispatch --------------------------------------------- *)
  let deliver_payload ~src ~dst (gm : Guard.msg) =
    if not correct.(dst) then
      behaviours.(dst).Adversary.on_receive ~src gm ~send:(byz_send dst)
    else begin
      match fold_deliver inbound ~src ~dst gm with
      | None -> ()
      | Some gm ->
          if retired.(dst) then begin
            (* amnesiac membership stub: the pre-crash state is gone,
               decline everything *)
            match gm.Guard.body with
            | Guard.Prop _ ->
                incr stub_rejects;
                send_rej_wire dst src
            | Guard.Rej -> ()
          end
          else begin
            incr lid_delivered;
            let lm =
              match gm.Guard.body with
              | Guard.Prop _ -> Lid.Prop
              | Guard.Rej -> Lid.Rej
            in
            process (Lid.deliver st ~src ~dst lm)
          end
    end
  in
  if reliable then begin
    let hold =
      (* when retries exhaust inside (or just after) scheduled weather
         the transport suspects the silent link instead of declaring it
         dead (see Transport.create).  The window is the whole retry
         ladder: a fresh ladder that started mid-episode exhausts only
         after the heal, so testing "active now" at exhaustion time
         would let it give up on a link whose answer is in flight. *)
      if Schedule.is_empty schedule then None
      else begin
        let tc = Option.value transport ~default:Transport.default_config in
        let ladder =
          let rec sum k rto acc =
            if k > tc.Transport.max_retries then acc
            else
              let rto = Float.min tc.Transport.rto_max rto in
              sum (k + 1) (rto *. tc.Transport.rto_backoff) (acc +. rto)
          in
          sum 0 tc.Transport.rto_initial 0.0 *. (1.0 +. tc.Transport.rto_jitter)
        in
        Some (fun ~node:_ ~peer:_ -> weather_touched ladder)
      end
    in
    tr :=
      Some
        (Transport.create ?config:transport ?hold net ~on_deliver:deliver_payload
           ~on_peer_dead:(fun ~node ~peer ->
             (* retries exhausted: the peer implicitly declined *)
             if live node && correct.(node) then begin
               incr transport_giveups;
               synthetic_reject node ~peer
             end))
  end
  else
    Simnet.set_handler net (fun ~src ~dst frame ->
        match frame with
        | Transport.Data { payload; _ } -> deliver_payload ~src ~dst payload
        | Transport.Ack _ -> ());
  (* --- membership events (crash plans desugar to Leave/Join) -------- *)
  let all_events =
    List.concat_map
      (fun { victim; crash_at; restart_at } ->
        (crash_at, Leave victim)
        ::
        (match restart_at with Some t -> [ (t, Join victim) ] | None -> []))
      crashes
    @ events
  in
  List.iter
    (fun (t, ev) ->
      Simnet.schedule net ~delay:t (fun () ->
          match ev with
          | Leave v -> if Simnet.is_up net v then Simnet.crash net v
          | Join v ->
              if not (Simnet.is_up net v) then begin
                Simnet.restart net v;
                Option.iter (fun t -> Transport.restart_node t v) !tr;
                retired.(v) <- true;
                (* announce the amnesia: an explicit decline to every
                   neighbour releases anyone still waiting on us *)
                Array.iter (fun (u, _) -> send_rej_wire v u) (Graph.neighbors g v)
              end))
    all_events;
  (* --- go: adversaries open their mouths first, then the honest burst,
     then the re-announced bootstrap declines ------------------------- *)
  Array.iteri
    (fun f c -> if not c then behaviours.(f).Adversary.on_init ~send:(byz_send f))
    correct;
  process
    (List.filter
       (function Lid.Send (src, _, _) -> correct.(src) | Lid.Lock _ -> true)
       initial);
  List.iter (fun (i, p) -> send_rej_wire i p) !bootstrap_rejects;
  let cutoff =
    match budget with
    | None ->
        Simnet.run net;
        None
    | Some d ->
        Simnet.run_until net d;
        cut := true;
        cut_abandoned := Simnet.pending_events net;
        (* count unreciprocated locks BEFORE the freeze: these are the
           half-locked edges whose completing PROP was still in flight
           at the horizon — kept one-sided in K_i, excluded from the
           served matching by the mutual-lock intersection below *)
        for i = 0 to n - 1 do
          if correct.(i) && live i then
            List.iter
              (fun v -> if not (List.mem i (Lid.locks st v)) then incr cut_half_locks)
              (Lid.locks st i)
        done;
        let released = Lid.freeze st in
        cut_released :=
          List.length (List.filter (fun (i, _) -> correct.(i) && live i) released);
        Some
          {
            cut_at = d;
            released = !cut_released;
            half_locks = !cut_half_locks;
            abandoned = !cut_abandoned;
          }
  in
  (* quiet rounds (guarded only): when the network idles with correct
     nodes still stuck, give up exactly the pendings towards
     adversary-controlled or quarantined peers — the eventually-perfect
     failure detector.  Honest-honest pendings are never cut: they
     resolve transitively once the Byzantine leaves are. *)
  let correct_stragglers () =
    List.filter (fun i -> correct.(i) && live i) (Lid.unterminated_nodes st)
  in
  (match guards with
  | None -> ()
  | Some gs ->
      let continue = ref true in
      let max_rounds = (2 * n) + 8 in
      while !continue && correct_stragglers () <> [] && !quiet_rounds < max_rounds do
        let progress = ref false in
        List.iter
          (fun i ->
            Array.iter
              (fun (v, _) ->
                if
                  Lid.awaiting_reply st ~node:i ~peer:v
                  && ((not correct.(v)) || Guard.quarantined gs.(i) ~peer:v)
                then begin
                  progress := true;
                  synthetic_reject i ~peer:v
                end)
              (Graph.neighbors g i))
          (correct_stragglers ());
        if !progress then begin
          incr quiet_rounds;
          Simnet.run net
        end
        else continue := false
      done);
  (* --- terminal accounting ------------------------------------------ *)
  let locked = Lid.locked_edge_ids st in
  let ids =
    List.filter
      (fun eid ->
        let a, b = Graph.edge_endpoints g eid in
        live a && live b)
      locked
  in
  let matching = Bmatching.of_edge_ids g ~capacity ids in
  if check && not adv_enabled then
    (* at a cutoff, blocking pairs and unmatched maximal edges are the
       measured degradation, not bugs — only feasibility must hold *)
    Checker.assert_ok
      ~only:
        (if Option.is_none cutoff then
           [ "edge-validity"; "quota"; "blocking-pair"; "maximality" ]
         else [ "edge-validity"; "quota" ])
      (Checker.of_matching w matching);
  let unterminated = correct_stragglers () in
  let quiescence =
    List.filter
      (fun v ->
        match v.Violation.subject with
        | Violation.Node i -> correct.(i) && live i
        | _ -> true)
      (Lid.quiescence_violations st)
  in
  let wasted_slots = ref 0 in
  if adv_enabled then
    for i = 0 to n - 1 do
      if correct.(i) then
        List.iter (fun v -> if not correct.(v) then incr wasted_slots) (Lid.locks st i)
    done;
  let offence_tbl = Hashtbl.create 8 in
  let offenders = Hashtbl.create 8 in
  let quarantined_byz = Hashtbl.create 8 in
  (match guards with
  | None -> ()
  | Some gs ->
      for i = 0 to n - 1 do
        if correct.(i) then begin
          List.iter
            (fun (k, c) ->
              Hashtbl.replace offence_tbl k
                (c + Option.value ~default:0 (Hashtbl.find_opt offence_tbl k)))
            (Guard.offence_counts gs.(i));
          List.iter
            (fun (p, _) -> if not correct.(p) then Hashtbl.replace offenders p ())
            (Guard.offences gs.(i));
          List.iter
            (fun p -> if not correct.(p) then Hashtbl.replace quarantined_byz p ())
            (Guard.quarantined_peers gs.(i))
        end
      done);
  let damage =
    if not adv_enabled then []
    else begin
      let p = Option.get prefs in
      let consumed = Array.init n (fun i -> List.length (Lid.locks st i)) in
      (* the overclaim-lock audit: a slot locked to a peer whose
         bootstrap advert provably exceeded its public 1/b bound is
         avoidable damage — the guard quarantines such peers before a
         single proposal, so only unguarded runs can exhibit it *)
      let overclaimed = ref [] in
      for i = n - 1 downto 0 do
        if correct.(i) then
          List.iter
            (fun v ->
              if
                (not correct.(v))
                && advert_of p adv v i > bound p v +. guard_config.Guard.tolerance
              then overclaimed := (i, v) :: !overclaimed)
            (Lid.locks st i)
      done;
      Byzantine.check
        ~cutoff:(Option.is_some cutoff)
        {
          Byzantine.weights = w;
          capacity;
          correct;
          edges = locked;
          consumed;
          unterminated;
          overclaimed = !overclaimed;
        }
    end
  in
  (* --- the per-layer counter table, top layer first ----------------- *)
  let layers =
    List.concat
      [
        [
          {
            layer = "lid";
            counters =
              [
                ("prop", !prop_count);
                ("rej", !rej_count);
                ("delivered", !lid_delivered);
                ("locks", List.length ids);
              ];
          };
        ];
        (match budget with
        | Some _ ->
            [ { layer = deadline_mw.mw_name; counters = deadline_mw.mw_counters () } ]
        | None -> []);
        [
          {
            layer = "detector";
            counters =
              [
                ("patience-armed", !patience_armed);
                ("patience-fired", !patience_fired);
                ("suppressed-give-ups", !suppressed_giveups);
                ("transport-give-ups", !transport_giveups);
                ("quarantine-give-ups", !quarantine_giveups);
                ("synthetic-rej", !synthetic_rejects);
                ("quiet-rounds", !quiet_rounds);
                ("stub-rej", !stub_rejects);
              ];
          };
        ];
        (if adv_enabled then
           [
             {
               layer = "adversary";
               counters =
                 [ ("peers", byz_count); ("messages", !adversary_msgs) ];
             };
           ]
         else []);
        (match guard_mw with
        | Some l -> [ { layer = l.mw_name; counters = l.mw_counters () } ]
        | None -> []);
        [ { layer = dedup_mw.mw_name; counters = dedup_mw.mw_counters () } ];
        (match !tr with
        | Some t ->
            [
              {
                layer = "transport";
                counters =
                  [
                    ("data", Transport.data_sent t);
                    ("retransmissions", Transport.retransmissions t);
                    ("acks", Transport.acks_sent t);
                    ("dup-suppressed", Transport.duplicates_suppressed t);
                    ("frames", Transport.frames_sent t);
                    ("dead-links", Transport.peers_declared_dead t);
                    ("suspected", Transport.links_suspected t);
                    ("resumed", Transport.links_resumed t);
                    ("held-give-ups", Transport.give_ups_held t);
                  ];
              };
            ]
        | None -> []);
        [
          {
            layer = "channel";
            counters =
              [
                ("sent", Simnet.messages_sent net);
                ("delivered", Simnet.messages_delivered net);
                ("dropped", Simnet.messages_dropped net);
                ("reordered", Simnet.messages_reordered net);
                ("lost-to-crashes", Simnet.messages_lost_to_crashes net);
                ("crashes", Simnet.crash_events net);
              ];
          };
        ];
        (if Schedule.is_empty schedule then []
         else
           [
             {
               layer = "schedule";
               counters =
                 [
                   ("episodes", List.length schedule);
                   ("cut", Simnet.messages_cut net);
                 ];
             };
           ]);
      ]
  in
  {
    matching;
    correct;
    participating = Array.init n (fun i -> correct.(i) && live i);
    byz_count;
    prop_count = !prop_count;
    rej_count = !rej_count;
    adversary_msgs = !adversary_msgs;
    delivered = Simnet.messages_delivered net;
    dropped = Simnet.messages_dropped net;
    reordered = Simnet.messages_reordered net;
    lost_to_crashes = Simnet.messages_lost_to_crashes net;
    synthetic_rejects = !synthetic_rejects;
    quarantine_events = !quarantine_events;
    false_quarantines = !false_quarantines;
    byz_offenders = Hashtbl.length offenders;
    byz_quarantined = Hashtbl.length quarantined_byz;
    offence_counts =
      Hashtbl.fold (fun k c acc -> (k, c) :: acc) offence_tbl [] |> List.sort compare;
    wasted_slots = !wasted_slots;
    quiet_rounds = !quiet_rounds;
    completion_time = Simnet.now net;
    all_terminated = unterminated = [];
    unterminated;
    quiescence;
    damage;
    cutoff;
    layers;
  }

(* ------------------------------------------------------------------ *)
(* exhaustive exploration (the inbound composition, pure)              *)
(* ------------------------------------------------------------------ *)

type explore_state = { lid : Lid.state; eguards : Guard.t array option }

let explore_lid st = st.lid

let explore_protocol ?(guard = false) ?(guard_config = Guard.default_config) ~correct
    prefs =
  let g = Preference.graph prefs in
  let n = Graph.node_count g in
  let capacity = Array.init n (Preference.quota prefs) in
  let w = Weights.of_preference prefs in
  (* adverts are honest in the exhaustive model: adversarial over-bound
     claims enter through the explorer's injection repertoire instead,
     so every attack is interleaved with deliveries rather than fixed
     at t = 0 *)
  let ranking i =
    if correct i then begin
      let perceived = Hashtbl.create 8 in
      Array.iter
        (fun (v, _) -> Hashtbl.replace perceived v (half prefs i v +. half prefs v i))
        (Graph.neighbors g i);
      ranking_of g perceived i
    end
    else [||]
  in
  let wrap events =
    List.filter_map
      (function
        | Lid.Send (src, dst, m) ->
            let body =
              match m with
              | Lid.Prop -> Guard.Prop { claim = half prefs src dst }
              | Lid.Rej -> Guard.Rej
            in
            Some { Explore.src; dst; payload = { Guard.epoch = 0; body } }
        | Lid.Lock _ -> None)
      events
  in
  let mk_guards () =
    if guard then
      Some
        (Array.init n (fun i ->
             Guard.create ~config:guard_config ~bound:(bound prefs) ~graph:g ~me:i ()))
    else None
  in
  let deliver st ~src ~dst (m : Guard.msg) =
    if not (correct dst) then []
    else begin
      match st.eguards with
      | None ->
          let lm = match m.body with Guard.Prop _ -> Lid.Prop | Guard.Rej -> Lid.Rej in
          wrap (Lid.deliver st.lid ~src ~dst lm)
      | Some gs ->
          let verdict = Guard.inspect gs.(dst) ~peer:src m in
          if verdict.Guard.accept then begin
            let lm =
              match m.body with Guard.Prop _ -> Lid.Prop | Guard.Rej -> Lid.Rej
            in
            wrap (Lid.deliver st.lid ~src ~dst lm)
          end
          else if verdict.Guard.quarantine then
            { Explore.src = dst; dst = src; payload = rej }
            :: wrap (Lid.deliver st.lid ~src ~dst:dst Lid.Rej)
          else []
    end
  in
  let tags = Hashtbl.create 16 in
  let msg_tag (m : Guard.msg) =
    match Hashtbl.find_opt tags m with
    | Some t -> t
    | None ->
        let t = Hashtbl.length tags in
        Hashtbl.add tags m t;
        t
  in
  let stragglers st =
    List.filter (fun i -> correct i) (Lid.unterminated_nodes st.lid)
  in
  {
    Explore.init =
      (fun () ->
        let lid, events = Lid.init ~ranking w ~capacity in
        ({ lid; eguards = mk_guards () }, wrap events));
    deliver;
    copy =
      (fun st ->
        {
          lid = Lid.copy_state st.lid;
          eguards = Option.map (Array.map Guard.copy) st.eguards;
        });
    fingerprint =
      (fun st ->
        let b = Buffer.create 256 in
        Buffer.add_string b (Lid.fingerprint st.lid);
        (match st.eguards with
        | None -> ()
        | Some gs ->
            Array.iter
              (fun gd ->
                Buffer.add_char b '|';
                Buffer.add_string b (Guard.fingerprint gd))
              gs);
        Buffer.contents b);
    quiesced = (fun st -> stragglers st = []);
    stragglers;
    observe = (fun st -> Lid.locked_edge_ids st.lid);
    msg_tag;
    give_up =
      (if guard then
         Some
           (fun st ~self ~peer ->
             if correct self then wrap (Lid.deliver st.lid ~src:peer ~dst:self Lid.Rej)
             else [])
       else None);
  }

(* ------------------------------------------------------------------ *)
(* Byzantine accounting and exhaustive verification                    *)
(* ------------------------------------------------------------------ *)

(* formerly Lid_byzantine: the satisfaction accounting the experiments
   report and the Explore repertoire, now on the stack itself since the
   wrapper module was only Stack.run with one layer selection *)

let satisfaction_of_correct prefs (r : report) =
  let conns = Bmatching.connection_lists r.matching in
  let total = ref 0.0 in
  Array.iteri
    (fun i c -> if c then total := !total +. Preference.satisfaction prefs i conns.(i))
    r.correct;
  !total

let reference_satisfaction prefs ~correct =
  let g = Preference.graph prefs in
  let nodes =
    Array.of_list
      (List.filter
         (fun i -> correct.(i))
         (List.init (Graph.node_count g) (fun i -> i)))
  in
  let sub, old_of_new = Graph.induced_subgraph g nodes in
  let wsub =
    let arr = Array.make (Graph.edge_count sub) 0.0 in
    Graph.iter_edges sub (fun eid u v ->
        let ou = old_of_new.(u) and ov = old_of_new.(v) in
        arr.(eid) <- half prefs ou ov +. half prefs ov ou);
    Weights.of_array sub arr
  in
  let capacity = Array.map (Preference.quota prefs) old_of_new in
  let m = Lic.run wsub ~capacity in
  let conns = Bmatching.connection_lists m in
  let total = ref 0.0 in
  Array.iteri
    (fun ni oi ->
      total :=
        !total
        +. Preference.satisfaction prefs oi
             (List.map (fun nv -> old_of_new.(nv)) conns.(ni)))
    old_of_new;
  !total

let verify_exhaustively ?(guard = true) ?(guard_config = Guard.default_config)
    ?(budget = 2) ?max_configs ~byz prefs =
  let g = Preference.graph prefs in
  let n = Graph.node_count g in
  if byz < 0 || byz >= n then invalid_arg "Stack.verify_exhaustively: byz";
  let capacity = Array.init n (Preference.quota prefs) in
  let w = Weights.of_preference prefs in
  let correct i = i <> byz in
  let protocol = explore_protocol ~guard ~guard_config ~correct prefs in
  let prop claim = { Guard.epoch = 0; body = Guard.Prop { claim } } in
  let rej = { Guard.epoch = 0; body = Guard.Rej } in
  (* repertoire: per neighbour an honest-looking PROP, an over-bound
     PROP, a REJ and a stale-epoch PROP; plus one PROP to a stranger *)
  let injections =
    let lie =
      let b = bound prefs byz in
      if b > 0.0 then 1.5 *. b else 0.5
    in
    let towards = Array.to_list (Array.map fst (Graph.neighbors g byz)) in
    let per_neighbour v =
      [
        { Explore.src = byz; dst = v; payload = prop (half prefs byz v) };
        { Explore.src = byz; dst = v; payload = prop lie };
        { Explore.src = byz; dst = v; payload = rej };
        {
          Explore.src = byz;
          dst = v;
          payload = { Guard.epoch = -1; body = Guard.Prop { claim = half prefs byz v } };
        };
      ]
    in
    let neighbour_set = Hashtbl.create 8 in
    List.iter (fun v -> Hashtbl.replace neighbour_set v ()) towards;
    let stranger =
      let rec find i =
        if i >= n then []
        else if i <> byz && not (Hashtbl.mem neighbour_set i) then
          [ { Explore.src = byz; dst = i; payload = prop (bound prefs byz) } ]
        else find (i + 1)
      in
      find 0
    in
    List.concat_map per_neighbour towards @ stranger
  in
  let on_terminal est =
    let lid = explore_lid est in
    let correct_arr = Array.init n correct in
    let consumed = Array.init n (fun i -> List.length (Lid.locks lid i)) in
    Byzantine.check
      {
        Byzantine.weights = w;
        capacity;
        correct = correct_arr;
        edges = Lid.locked_edge_ids lid;
        consumed;
        unterminated = List.filter correct (Lid.unterminated_nodes lid);
        overclaimed = [];
      }
  in
  Explore.explore ?max_configs
    ~adversary:{ Explore.byz; injections; budget }
    ~on_terminal protocol
