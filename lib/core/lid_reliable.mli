(** LID over the reliable transport — convergence on a faulty network.

    Plain {!Lid.run} executes Alg. 1 directly on the datagram
    {!Owp_simnet.Simnet}: a single dropped PROP or REJ leaves its
    recipient waiting forever and the run ends with quiescence
    violations.  This configuration keeps the protocol state machine
    untouched ({!Lid.init} / {!Lid.deliver} — the logic is {e not}
    forked) and enables the {!Stack}'s transport layer underneath it,
    which masks message loss, duplication and reordering with per-link
    sequence numbers, cumulative ACKs and retransmission with
    exponential backoff.

    Faults the transport {e masks} (drop, duplicate, reorder, non-FIFO
    delivery): the protocol sees reliable per-link FIFO channels, so
    Lemmas 5-6 apply verbatim — every node terminates and the locked
    edge set equals {!Lic}'s, at the price of retransmission and ACK
    overhead reported in the stack report's ["transport"] layer row.

    Faults it can only {e recover} from (crash, crash-restart, retries
    exhausted): the escape hatch is the implicit decline of the stack's
    detector layer.  A peer the transport declares dead is fed to the
    state machine as a synthetic REJ; an optional [patience] timer (off
    by default) additionally times out protocol-level waits on peers
    that fell silent after their traffic was ACKed — necessary for
    convergence when nodes crash without restarting.  A node that
    restarts rejoins {e retired}: its volatile state is gone, so it
    declines every proposal (explicitly re-announcing the decline to
    all neighbours) and its pre-crash locks are excluded from the
    result.  In these regimes the edge set may deviate from LIC's;
    experiment E21 quantifies the satisfaction retained. *)

type crash_plan = Stack.crash_plan = {
  victim : int;
  crash_at : float;  (** virtual time of the crash *)
  restart_at : float option;  (** [None]: fail-stop, never returns *)
}

val overhead : Stack.report -> float
(** Alias of {!Stack.overhead}: wire frames per protocol message. *)

val run :
  ?seed:int ->
  ?delay:Owp_simnet.Simnet.delay_model ->
  ?fifo:bool ->
  ?faults:Owp_simnet.Simnet.faults ->
  ?transport:Owp_simnet.Transport.config ->
  ?patience:float ->
  ?crashes:crash_plan list ->
  ?on_lock:(float -> int -> int -> unit) ->
  ?check:bool ->
  Weights.t ->
  capacity:int array ->
  Stack.report
(** [Stack.run ~reliable:true] with this module's historical defaults.

    [patience] (default: none) arms a one-shot timer per outgoing PROP:
    if the proposal is still unanswered when it fires, the peer is
    treated as having declined.  Leave it off for pure channel faults
    (exactness is then preserved); set it when crashes without restart
    are in play, generously above the transport's worst-case
    retransmission span so slow-but-correct peers are not misclassified.

    [crashes] schedules host failures.  [check] (default false) runs the
    structural invariant checkers on the final matching — only
    meaningful for runs that converge cleanly.
    @raise Invalid_argument on negative capacities, out-of-range crash
    victims, non-positive patience, or a restart not after its crash. *)
