(** LID over the reliable transport — convergence on a faulty network.

    Plain {!Lid.run} executes Alg. 1 directly on the datagram
    {!Owp_simnet.Simnet}: a single dropped PROP or REJ leaves its
    recipient waiting forever and the run ends with quiescence
    violations.  This driver keeps the protocol state machine untouched
    ({!Lid.init} / {!Lid.deliver} — the logic is {e not} forked) and
    puts {!Owp_simnet.Transport} underneath it, which masks message
    loss, duplication and reordering with per-link sequence numbers,
    cumulative ACKs and retransmission with exponential backoff.

    Faults the transport {e masks} (drop, duplicate, reorder, non-FIFO
    delivery): the protocol sees reliable per-link FIFO channels, so
    Lemmas 5-6 apply verbatim — every node terminates and the locked
    edge set equals {!Lic}'s, at the price of retransmission and ACK
    overhead reported per run.

    Faults it can only {e recover} from (crash, crash-restart,
    retries exhausted): the escape hatch is the same implicit decline
    {!Lid_robust} uses.  A peer the transport declares dead is fed to
    the state machine as a synthetic REJ; an optional [patience] timer
    (off by default) additionally times out protocol-level waits on
    peers that fell silent after their traffic was ACKed — necessary
    for convergence when nodes crash without restarting.  A node that
    restarts rejoins {e retired}: its volatile state is gone, so it
    declines every proposal (explicitly re-announcing the decline to
    all neighbours) and its pre-crash locks are excluded from the
    result.  In these regimes the edge set may deviate from LIC's;
    experiment E21 quantifies the satisfaction retained. *)

type crash_plan = {
  victim : int;
  crash_at : float;  (** virtual time of the crash *)
  restart_at : float option;  (** [None]: fail-stop, never returns *)
}

type report = {
  matching : Owp_matching.Bmatching.t;
      (** locked edges between live, non-retired endpoints *)
  prop_count : int;  (** protocol-level PROP sends *)
  rej_count : int;  (** protocol-level REJ sends (incl. retirement bursts) *)
  data_sent : int;  (** first transmissions of protocol messages *)
  retransmissions : int;
  acks_sent : int;
  duplicates_suppressed : int;  (** receiver-side dedup hits *)
  frames_sent : int;  (** wire total: data + retransmissions + ACKs *)
  dropped : int;  (** frames lost to channel faults *)
  reordered : int;  (** frames turned into stragglers *)
  lost_to_crashes : int;  (** frames lost at/from down hosts *)
  peers_declared_dead : int;  (** transport give-ups (directed links) *)
  synthetic_rejects : int;  (** implicit declines fed to the machine *)
  completion_time : float;
  all_terminated : bool;
      (** every live, non-retired node reached U_i = ∅ *)
  quiescence : Owp_check.Violation.t list;
      (** stragglers among live nodes, as structured reports *)
}

val overhead : report -> float
(** Wire frames per protocol message — 1.0 means ACK-free fault-free
    delivery (impossible; ~2.0 is the ACK floor), higher means
    retransmission cost. *)

val run :
  ?seed:int ->
  ?delay:Owp_simnet.Simnet.delay_model ->
  ?fifo:bool ->
  ?faults:Owp_simnet.Simnet.faults ->
  ?transport:Owp_simnet.Transport.config ->
  ?patience:float ->
  ?crashes:crash_plan list ->
  ?on_lock:(float -> int -> int -> unit) ->
  ?check:bool ->
  Weights.t ->
  capacity:int array ->
  report
(** Simulate LID over the reliable transport until quiescence.

    [patience] (default: none) arms a one-shot timer per outgoing PROP:
    if the proposal is still unanswered when it fires, the peer is
    treated as having declined.  Leave it off for pure channel faults
    (exactness is then preserved); set it when crashes without restart
    are in play, generously above the transport's worst-case
    retransmission span so slow-but-correct peers are not misclassified.

    [crashes] schedules host failures.  [check] (default false) runs the
    structural invariant checkers on the final matching — only
    meaningful for runs that converge cleanly.
    @raise Invalid_argument on negative capacities, out-of-range crash
    victims, non-positive patience, or a restart not after its crash. *)
