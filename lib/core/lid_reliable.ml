module Simnet = Owp_simnet.Simnet
module Transport = Owp_simnet.Transport
module Bmatching = Owp_matching.Bmatching
module Violation = Owp_check.Violation
module Checker = Owp_check.Checker

type crash_plan = { victim : int; crash_at : float; restart_at : float option }

type report = {
  matching : Bmatching.t;
  prop_count : int;
  rej_count : int;
  data_sent : int;
  retransmissions : int;
  acks_sent : int;
  duplicates_suppressed : int;
  frames_sent : int;
  dropped : int;
  reordered : int;
  lost_to_crashes : int;
  peers_declared_dead : int;
  synthetic_rejects : int;
  completion_time : float;
  all_terminated : bool;
  quiescence : Violation.t list;
}

let overhead r =
  let protocol = r.prop_count + r.rej_count in
  if protocol = 0 then 1.0 else float_of_int r.frames_sent /. float_of_int protocol

let run ?(seed = 0x2E1) ?(delay = Simnet.Uniform (0.5, 1.5)) ?(fifo = true)
    ?(faults = Simnet.no_faults) ?transport ?patience ?(crashes = [])
    ?(on_lock = fun _ _ _ -> ()) ?(check = false) w ~capacity =
  let st, initial = Lid.init w ~capacity in
  let g = Weights.graph w in
  let n = Graph.node_count g in
  List.iter
    (fun { victim; crash_at; restart_at } ->
      if victim < 0 || victim >= n then
        invalid_arg "Lid_reliable.run: crash victim out of range";
      if crash_at < 0.0 then invalid_arg "Lid_reliable.run: negative crash time";
      match restart_at with
      | Some t when t <= crash_at ->
          invalid_arg "Lid_reliable.run: restart not after crash"
      | _ -> ())
    crashes;
  (match patience with
  | Some p when p <= 0.0 -> invalid_arg "Lid_reliable.run: patience must be positive"
  | _ -> ());
  let net = Simnet.create ~seed ~fifo ~faults ~nodes:(max n 1) ~delay () in
  let prop_count = ref 0 and rej_count = ref 0 and synthetic = ref 0 in
  (* a restarted node lost its volatile protocol state: it rejoins
     "retired" — it declines everything and claims nothing *)
  let retired = Array.make (max n 1) false in
  let tr = ref None in
  let transport_of () = Option.get !tr in
  let send_protocol src dst m =
    (match m with Lid.Prop -> incr prop_count | Lid.Rej -> incr rej_count);
    Transport.send (transport_of ()) ~src ~dst m
  in
  let live i = Simnet.is_up net i && not retired.(i) in
  (* deliver a transition's output; arms a patience timer per PROP when
     patience is finite, mirroring Lid_robust's implicit-REJ remedy *)
  let rec process events =
    List.iter
      (function
        | Lid.Send (src, dst, m) ->
            send_protocol src dst m;
            (match (m, patience) with
            | Lid.Prop, Some limit -> arm_patience src dst limit
            | _ -> ())
        | Lid.Lock (i, v) -> on_lock (Simnet.now net) i v)
      events
  and arm_patience i v limit =
    Simnet.schedule net ~delay:limit (fun () ->
        if live i && Lid.awaiting_reply st ~node:i ~peer:v then synthetic_rej ~at:i ~from:v)
  and synthetic_rej ~at ~from =
    incr synthetic;
    process (Lid.deliver st ~src:from ~dst:at Lid.Rej)
  in
  let handle_delivery ~src ~dst m =
    if retired.(dst) then begin
      (* amnesiac: the pre-crash state is gone, decline everything *)
      match m with Lid.Prop -> send_protocol dst src Lid.Rej | Lid.Rej -> ()
    end
    else process (Lid.deliver st ~src ~dst m)
  in
  let transport =
    Transport.create ?config:transport net ~on_deliver:handle_delivery
      ~on_peer_dead:(fun ~node ~peer ->
        (* retries exhausted: same "treat as silent" handling as
           Lid_robust — the peer implicitly declined *)
        if live node then synthetic_rej ~at:node ~from:peer)
  in
  tr := Some transport;
  List.iter
    (fun { victim; crash_at; restart_at } ->
      Simnet.schedule net ~delay:crash_at (fun () -> Simnet.crash net victim);
      match restart_at with
      | None -> ()
      | Some t ->
          Simnet.schedule net ~delay:t (fun () ->
              if not (Simnet.is_up net victim) then begin
                Simnet.restart net victim;
                Transport.restart_node transport victim;
                retired.(victim) <- true;
                (* announce the amnesia: an explicit decline to every
                   neighbour releases anyone still waiting on us *)
                Array.iter
                  (fun (v, _) -> send_protocol victim v Lid.Rej)
                  (Graph.neighbors g victim)
              end))
    crashes;
  process initial;
  Simnet.run net;
  (* edges incident to dead or amnesiac nodes are gone with their state *)
  let ids = List.filter
      (fun eid ->
        let a, b = Graph.edge_endpoints g eid in
        live a && live b)
      (Lid.locked_edge_ids st)
  in
  let matching = Bmatching.of_edge_ids g ~capacity ids in
  if check then
    Checker.assert_ok
      ~only:[ "edge-validity"; "quota"; "blocking-pair"; "maximality" ]
      (Checker.of_matching w matching);
  let quiescence =
    List.filter
      (fun v ->
        match v.Violation.subject with Violation.Node i -> live i | _ -> true)
      (Lid.quiescence_violations st)
  in
  {
    matching;
    prop_count = !prop_count;
    rej_count = !rej_count;
    data_sent = Transport.data_sent transport;
    retransmissions = Transport.retransmissions transport;
    acks_sent = Transport.acks_sent transport;
    duplicates_suppressed = Transport.duplicates_suppressed transport;
    frames_sent = Transport.frames_sent transport;
    dropped = Simnet.messages_dropped net;
    reordered = Simnet.messages_reordered net;
    lost_to_crashes = Simnet.messages_lost_to_crashes net;
    peers_declared_dead = Transport.peers_declared_dead transport;
    synthetic_rejects = !synthetic;
    completion_time = Simnet.now net;
    all_terminated = quiescence = [];
    quiescence;
  }
