(* LID over the ARQ transport as a stack configuration: the transport
   layer is enabled, everything else rides the stack's shared loop
   (crash plans desugar to Leave/Join events; patience timers and
   transport give-ups live in the detector layer). *)

type crash_plan = Stack.crash_plan = {
  victim : int;
  crash_at : float;
  restart_at : float option;
}

let overhead = Stack.overhead

let run ?(seed = 0x2E1) ?(delay = Owp_simnet.Simnet.Uniform (0.5, 1.5)) ?(fifo = true)
    ?(faults = Owp_simnet.Simnet.no_faults) ?transport ?patience ?(crashes = [])
    ?on_lock ?check w ~capacity =
  Stack.run ~seed ~delay ~fifo ~faults ~reliable:true ?transport ?patience ~crashes
    ?on_lock ?check w ~capacity
