(** LID — Local Information-based Distributed algorithm (paper Alg. 1).

    Every node ranks its incident edges by the symmetric weight of
    eq. 9 (its "weight list") and proposes (PROP) to its top [b_i]
    neighbours.  A mutual proposal locks the connection; a node whose
    proposal is declined (REJ) proposes to its next-ranked neighbour; a
    node with all proposals locked declines everyone left.  The paper
    proves: termination (Lemma 5), equivalence with LIC's edge set
    (Lemmas 3, 4, 6), a ½-approximation of the maximum-weight
    many-to-many matching (Theorem 2 + Lemma 6) and a ¼(1 + 1/b_max)
    approximation of the maximizing-satisfaction b-matching (Theorem 3).

    The protocol is factored into an {e explicit state machine}
    ({!init} / {!deliver}) with two drivers on top: {!run} executes one
    schedule on {!Owp_simnet.Simnet} (delays, message order and faults
    controlled by the caller), while {!model} exposes the very same
    transition code to {!Owp_check.Explore}, which enumerates {e all}
    per-link FIFO schedules on small instances. *)

type message = Prop | Rej

(** {2 The protocol state machine} *)

type state
(** Mutable protocol state of all nodes. *)

type event =
  | Send of int * int * message  (** [Send (src, dst, m)] *)
  | Lock of int * int  (** [Lock (i, v)]: node [i] locked the link to [v] *)

val init :
  ?ranking:(int -> (int * int) array) ->
  Weights.t ->
  capacity:int array ->
  state * event list
(** Fresh protocol state plus the initial events (lines 1–3 of Alg. 1:
    every node proposes to the top [b_i] of its weight list), in the
    order they occur.  [ranking i], when given, overrides node [i]'s
    weight list with an explicit [(neighbour, edge id)] array, best
    first — the {!Stack}'s guard layer uses it to rank by {e perceived} weights
    built from (possibly dishonest) advertised half-weights, and to
    exclude peers quarantined at bootstrap.  The default is the true
    symmetric-weight order, heaviest first.
    @raise Invalid_argument on negative capacities. *)

val deliver : state -> src:int -> dst:int -> message -> event list
(** Process one delivery at [dst] (lines 4–16 of Alg. 1), mutating the
    state; returns the events it caused, in order. *)

val quiesced : state -> bool
(** Every node reached U_i = ∅ (Lemma 5). *)

val awaiting_reply : state -> node:int -> peer:int -> bool
(** Is [node]'s proposal to [peer] still unanswered (peer in P_i \ K_i)?
    Used by the {!Stack} detector's patience timers to decide whether a
    silent peer still blocks progress. *)

val locks : state -> int -> int list
(** Peers node [i] has locked (its K_i), ascending.  Unlike
    {!locked_edge_ids} this is one-sided: it includes locks whose
    counterpart never reciprocated (possible only when a peer
    misbehaves), which is exactly what the bounded-damage accounting
    in {!Owp_check.Byzantine} needs. *)

val node_finished : state -> int -> bool
(** Has node [i] answered all proposals and emptied U_i? *)

val unterminated_nodes : state -> int list
(** Nodes that have not quiesced, ascending. *)

val quiescence_violations : state -> Owp_check.Violation.t list
(** One structured report per node that failed to quiesce: how many
    proposals are still unanswered and how many candidates remain. *)

val locked_edge_ids : state -> int list
(** Edges locked by {e both} endpoints, ascending — the protocol's
    current matching (symmetric on a clean run, Lemma 4). *)

val freeze : state -> (int * int) list
(** Anytime cutoff: atomically release every tentative (unanswered)
    proposal, empty the candidate sets and mark every node finished, so
    the locked edges become a final served matching.  Both endpoints of
    each pending proposal are released in the same step — the effect of
    a synthetic REJ at each end {e without} re-entering the propose
    transition, so no new pendings or locks can form after the budget
    expired and neither endpoint counts a phantom slot.  Mutual locks
    are untouched; {!locked_edge_ids} is the matching to serve.
    Returns the released [(proposer, peer)] pairs, ascending.
    Idempotent; on a quiesced state it returns [[]]. *)

val copy_state : state -> state
val fingerprint : state -> string
(** Canonical encoding of the protocol state (the scan pointer, a pure
    optimisation, is excluded): equal fingerprints imply identical
    future behaviour.  Used by the interleaving explorer's
    transposition table. *)

val model :
  Weights.t -> capacity:int array -> (state, message) Owp_check.Explore.protocol
(** The protocol, packaged for exhaustive schedule exploration;
    [observe] is {!locked_edge_ids}.  Its [give_up] transition treats a
    dead peer as an implicit decline (a synthetic REJ through the same
    [deliver] code), so the explorer can also model-check convergence
    under adversarial link failures ([max_link_failures > 0]). *)

(** {2 Simulated execution} *)

type cutoff = {
  cut_at : float;  (** the virtual-time budget that expired *)
  released : int;  (** tentative proposals the freeze released *)
  abandoned : int;  (** queued events discarded at the horizon *)
}
(** Accounting of a deadline-bounded run's cutoff ({!freeze}). *)

type report = {
  matching : Owp_matching.Bmatching.t;
  prop_count : int;  (** PROP messages sent *)
  rej_count : int;  (** REJ messages sent *)
  delivered : int;  (** total deliveries processed *)
  dropped : int;  (** messages lost to channel faults (diagnosable loss) *)
  completion_time : float;  (** virtual time of the last event *)
  all_terminated : bool;  (** every node reached U_i = ∅ (Lemma 5) *)
  quiescence : Owp_check.Violation.t list;
      (** empty iff [all_terminated]; otherwise one report per node
          that failed to quiesce (which, and why) *)
  cutoff : cutoff option;
      (** [Some _] iff the run was deadline-bounded and stopped at its
          budget — serving a frozen partial matching is {e not} a
          quiescence failure *)
}

val run :
  ?seed:int ->
  ?delay:Owp_simnet.Simnet.delay_model ->
  ?fifo:bool ->
  ?faults:Owp_simnet.Simnet.faults ->
  ?shards:int ->
  ?unsafe_lookahead:bool ->
  ?deadline:float ->
  ?on_lock:(float -> int -> int -> unit) ->
  ?check:bool ->
  Weights.t ->
  capacity:int array ->
  report
(** Simulate the protocol to quiescence.  Default delay model is
    [Uniform (0.5, 1.5)]; with faults enabled the protocol may fail to
    terminate cleanly, which the report exposes instead of raising.
    [shards] and [unsafe_lookahead] are forwarded to
    {!Owp_simnet.Simnet.create}: the former space-partitions the event
    store (bit-identical for every value), the latter deliberately
    breaks the dispatch order for gate self-tests.
    [deadline] bounds the run at a virtual-time budget: events past the
    horizon are abandoned, the state is {!freeze}-d, and the report
    serves the locked partial matching with [cutoff] filled in —
    delivery order up to the budget is identical to the unbudgeted run
    (same seed, same event prefix), so the served matching grows
    monotonically in the budget.
    [on_lock time i v] is invoked every time node [i] locks the
    connection to [v] (so once per direction per locked edge), at the
    virtual time of the lock — the hook behind the anytime-satisfaction
    experiment (E19).
    [check] (default [false]) runs the {!Owp_check.Checker} structural
    invariants (feasibility, greedy stability, maximality — feasibility
    only at a cutoff, where blocking pairs are the measured
    degradation) on the final matching and raises
    {!Owp_check.Checker.Check_failed} on violation; only meaningful on
    fault-free runs.
    @raise Invalid_argument on negative capacities or a non-positive
    deadline. *)
