type offence =
  | Stranger
  | Duplicate_prop
  | Duplicate_rej
  | Prop_after_rej
  | Rej_after_prop
  | Stale_epoch
  | Overclaim
  | Claim_mismatch
  | Flood

let offence_name = function
  | Stranger -> "stranger"
  | Duplicate_prop -> "duplicate-prop"
  | Duplicate_rej -> "duplicate-rej"
  | Prop_after_rej -> "prop-after-rej"
  | Rej_after_prop -> "rej-after-prop"
  | Stale_epoch -> "stale-epoch"
  | Overclaim -> "overclaim"
  | Claim_mismatch -> "claim-mismatch"
  | Flood -> "flood"

type body = Prop of { claim : float } | Rej

type msg = { epoch : int; body : body }

type config = {
  epoch : int;
  quarantine_threshold : float;
  flood_limit : int;
  tolerance : float;
}

let default_config =
  { epoch = 0; quarantine_threshold = 1.0; flood_limit = 8; tolerance = 1e-9 }

type verdict = { accept : bool; offence : offence option; quarantine : bool }

type peer_state = {
  mutable got_prop : bool;  (** an accepted PROP arrived on this link *)
  mutable got_rej : bool;  (** an accepted REJ arrived on this link *)
  mutable msgs : int;  (** messages seen from this peer (pre-quarantine) *)
  mutable advert : float option;  (** pinned half-weight advertisement *)
  mutable score : float;
  mutable quarantined : bool;
}

type t = {
  config : config;
  bound : int -> float;
  me : int;
  neighbours : (int, unit) Hashtbl.t;
  peers : (int, peer_state) Hashtbl.t;
  mutable log : (int * offence) list;  (** newest first *)
}

let create ?(config = default_config) ?(bound = fun _ -> infinity) ~graph ~me () =
  let neighbours = Hashtbl.create 16 in
  Array.iter (fun (v, _) -> Hashtbl.replace neighbours v ()) (Graph.neighbors graph me);
  { config; bound; me; neighbours; peers = Hashtbl.create 16; log = [] }

let peer_state t peer =
  match Hashtbl.find_opt t.peers peer with
  | Some ps -> ps
  | None ->
      let ps =
        {
          got_prop = false;
          got_rej = false;
          msgs = 0;
          advert = None;
          score = 0.0;
          quarantined = false;
        }
      in
      Hashtbl.replace t.peers peer ps;
      ps

let dropped = { accept = false; offence = None; quarantine = false }

(* score the offence; the verdict says whether this very message crossed
   the quarantine threshold, so the caller runs the escape hatch once *)
let record t ps peer offence =
  t.log <- (peer, offence) :: t.log;
  ps.score <- ps.score +. 1.0;
  let crossed = (not ps.quarantined) && ps.score >= t.config.quarantine_threshold in
  if crossed then ps.quarantined <- true;
  { accept = false; offence = Some offence; quarantine = crossed }

let on_advert t ~peer ~claim =
  let ps = peer_state t peer in
  if ps.quarantined then dropped
  else if not (Hashtbl.mem t.neighbours peer) then record t ps peer Stranger
  else if claim > t.bound peer +. t.config.tolerance then record t ps peer Overclaim
  else begin
    match ps.advert with
    | Some a when Float.abs (claim -. a) > t.config.tolerance ->
        record t ps peer Claim_mismatch
    | _ ->
        if Option.is_none ps.advert then ps.advert <- Some claim;
        { accept = true; offence = None; quarantine = false }
  end

let inspect t ~peer (m : msg) =
  let ps = peer_state t peer in
  if ps.quarantined then dropped
  else begin
    let offence =
      if not (Hashtbl.mem t.neighbours peer) then Some Stranger
      else if m.epoch <> t.config.epoch then Some Stale_epoch
      else if ps.msgs >= t.config.flood_limit then Some Flood
      else
        match m.body with
        | Prop { claim } ->
            if ps.got_prop then Some Duplicate_prop
            else if ps.got_rej then Some Prop_after_rej
            else if claim > t.bound peer +. t.config.tolerance then Some Overclaim
            else begin
              match ps.advert with
              | Some a when Float.abs (claim -. a) > t.config.tolerance ->
                  Some Claim_mismatch
              | _ -> None
            end
        | Rej ->
            if ps.got_rej then Some Duplicate_rej
            else if ps.got_prop then Some Rej_after_prop
            else None
    in
    ps.msgs <- ps.msgs + 1;
    match offence with
    | Some o -> record t ps peer o
    | None ->
        (* link flags advance only on accepted messages: an offending
           message never reached the state machine, so it cannot count
           as the one legal message of its kind *)
        (match m.body with
        | Prop _ -> ps.got_prop <- true
        | Rej -> ps.got_rej <- true);
        { accept = true; offence = None; quarantine = false }
  end

let quarantined t ~peer =
  match Hashtbl.find_opt t.peers peer with Some ps -> ps.quarantined | None -> false

let quarantined_peers t =
  Hashtbl.fold (fun p ps acc -> if ps.quarantined then p :: acc else acc) t.peers []
  |> List.sort compare

let score t ~peer =
  match Hashtbl.find_opt t.peers peer with Some ps -> ps.score | None -> 0.0

let offences t = List.rev t.log

let offence_counts t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (_, o) ->
      let k = offence_name o in
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    t.log;
  Hashtbl.fold (fun k c acc -> (k, c) :: acc) tbl [] |> List.sort compare

let copy t =
  let peers = Hashtbl.create (Hashtbl.length t.peers) in
  (* owp-lint: allow hash-order — key-unique copy into a fresh table *)
  Hashtbl.iter (fun p ps -> Hashtbl.replace peers p { ps with got_prop = ps.got_prop })
    t.peers;
  { t with peers; log = t.log }

let fingerprint t =
  let b = Buffer.create 64 in
  let entries =
    Hashtbl.fold (fun p ps acc -> (p, ps) :: acc) t.peers []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (p, ps) ->
      (* untouched peers are indistinguishable from absent entries *)
      if ps.got_prop || ps.got_rej || ps.msgs > 0 || ps.score > 0.0 || ps.quarantined
      then begin
        Buffer.add_string b (string_of_int p);
        Buffer.add_char b (if ps.got_prop then 'P' else 'p');
        Buffer.add_char b (if ps.got_rej then 'R' else 'r');
        Buffer.add_char b (if ps.quarantined then 'Q' else 'q');
        Buffer.add_string b (string_of_int ps.msgs);
        Buffer.add_char b ':';
        Buffer.add_string b (Printf.sprintf "%h" ps.score);
        Buffer.add_char b ';'
      end)
    entries;
  Buffer.contents b
