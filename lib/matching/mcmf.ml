type t = {
  n : int;
  mutable head : int array; (* vertex -> first arc index, -1 terminates *)
  mutable next : int array; (* arc -> next arc of same vertex *)
  mutable dst : int array;
  mutable cap : int array;
  mutable cost : float array;
  mutable arcs : int; (* arcs allocated; forward arc 2k, backward 2k+1 *)
}

let create n =
  {
    n;
    head = Array.make (max n 1) (-1);
    next = [||];
    dst = [||];
    cap = [||];
    cost = [||];
    arcs = 0;
  }

let grow t =
  let len = Array.length t.dst in
  if t.arcs + 2 > len then begin
    let nlen = max 16 (2 * len) in
    let extend a fill =
      let na = Array.make nlen fill in
      Array.blit a 0 na 0 len;
      na
    in
    t.next <- extend t.next (-1);
    t.dst <- extend t.dst 0;
    t.cap <- extend t.cap 0;
    t.cost <- extend t.cost 0.0
  end

let add_half t src dst cap cost =
  grow t;
  let a = t.arcs in
  t.arcs <- a + 1;
  t.dst.(a) <- dst;
  t.cap.(a) <- cap;
  t.cost.(a) <- cost;
  t.next.(a) <- t.head.(src);
  t.head.(src) <- a;
  a

let add_edge t ~src ~dst ~capacity ~cost =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Mcmf.add_edge: vertex out of range";
  if capacity < 0 then invalid_arg "Mcmf.add_edge: negative capacity";
  let fwd = add_half t src dst capacity cost in
  let _bwd = add_half t dst src 0 (-.cost) in
  fwd

(* Bellman–Ford from [source]: returns (dist, pred_arc) or None when the
   sink is unreachable. *)
let cheapest_path t ~source ~sink =
  let inf = infinity in
  let dist = Array.make t.n inf in
  let pred = Array.make t.n (-1) in
  let in_queue = Array.make t.n false in
  dist.(source) <- 0.0;
  let q = Queue.create () in
  Queue.push source q;
  in_queue.(source) <- true;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    in_queue.(u) <- false;
    let a = ref t.head.(u) in
    while !a >= 0 do
      if t.cap.(!a) > 0 then begin
        let v = t.dst.(!a) in
        let nd = dist.(u) +. t.cost.(!a) in
        if nd < dist.(v) -. 1e-12 then begin
          dist.(v) <- nd;
          pred.(v) <- !a;
          if not in_queue.(v) then begin
            Queue.push v q;
            in_queue.(v) <- true
          end
        end
      end;
      a := t.next.(!a)
    done
  done;
  if Float.equal dist.(sink) inf then None else Some (dist.(sink), pred)

let augment t ~source ~sink ~limit pred =
  (* bottleneck capacity along the predecessor chain, capped by the
     caller's remaining flow allowance *)
  let bottleneck = ref limit in
  let v = ref sink in
  while !v <> source do
    let a = pred.(!v) in
    bottleneck := min !bottleneck t.cap.(a);
    v := t.dst.(a lxor 1)
  done;
  let v = ref sink in
  while !v <> source do
    let a = pred.(!v) in
    t.cap.(a) <- t.cap.(a) - !bottleneck;
    t.cap.(a lxor 1) <- t.cap.(a lxor 1) + !bottleneck;
    v := t.dst.(a lxor 1)
  done;
  !bottleneck

let run t ~source ~sink ~stop_when_nonnegative ~max_flow =
  if source = sink then invalid_arg "Mcmf: source equals sink";
  let flow = ref 0 and cost = ref 0.0 in
  let continue = ref true in
  while !continue do
    match cheapest_path t ~source ~sink with
    | None -> continue := false
    | Some (path_cost, pred) ->
        if stop_when_nonnegative && path_cost >= -1e-12 then continue := false
        else begin
          let allowance =
            match max_flow with Some limit -> limit - !flow | None -> max_int
          in
          let pushed = augment t ~source ~sink ~limit:allowance pred in
          flow := !flow + pushed;
          cost := !cost +. (float_of_int pushed *. path_cost);
          match max_flow with
          | Some limit when !flow >= limit -> continue := false
          | _ -> ()
        end
  done;
  (!flow, !cost)

let min_cost_flow t ~source ~sink ?max_flow () =
  run t ~source ~sink ~stop_when_nonnegative:true ~max_flow

let min_cost_max_flow t ~source ~sink =
  run t ~source ~sink ~stop_when_nonnegative:false ~max_flow:None

let flow_on t fwd =
  if fwd < 0 || fwd >= t.arcs then invalid_arg "Mcmf.flow_on: bad handle";
  (* flow pushed forward equals capacity accumulated on the reverse arc *)
  t.cap.(fwd lxor 1)
