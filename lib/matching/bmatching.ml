module IntSet = Set.Make (Int)

type t = {
  graph : Graph.t;
  capacity : int array;
  selected : IntSet.t; (* edge ids *)
  deg : int array; (* matched degree per node *)
}

let check_capacity_array g capacity =
  if Array.length capacity <> Graph.node_count g then
    invalid_arg "Bmatching: capacity arity mismatch";
  Array.iter (fun b -> if b < 0 then invalid_arg "Bmatching: negative capacity") capacity

let empty g ~capacity =
  check_capacity_array g capacity;
  {
    graph = g;
    capacity = Array.copy capacity;
    selected = IntSet.empty;
    deg = Array.make (Graph.node_count g) 0;
  }

let add t eid =
  if eid < 0 || eid >= Graph.edge_count t.graph then
    invalid_arg "Bmatching.add: edge id out of range";
  if IntSet.mem eid t.selected then invalid_arg "Bmatching.add: edge already selected";
  let u, v = Graph.edge_endpoints t.graph eid in
  if t.deg.(u) >= t.capacity.(u) || t.deg.(v) >= t.capacity.(v) then
    invalid_arg "Bmatching.add: capacity exceeded";
  let deg = Array.copy t.deg in
  deg.(u) <- deg.(u) + 1;
  deg.(v) <- deg.(v) + 1;
  { t with selected = IntSet.add eid t.selected; deg }

let remove t eid =
  if not (IntSet.mem eid t.selected) then invalid_arg "Bmatching.remove: edge not selected";
  let u, v = Graph.edge_endpoints t.graph eid in
  let deg = Array.copy t.deg in
  deg.(u) <- deg.(u) - 1;
  deg.(v) <- deg.(v) - 1;
  { t with selected = IntSet.remove eid t.selected; deg }

(* Single mutable pass: [add] copies the degree array for functional
   updates, which would make bulk construction quadratic.  Membership is
   tracked in a flat flag array and the set is built once at the end with
   [of_list] (sort + linear rebuild), so bulk construction stays cheap
   even for the 10^5-edge matchings the scale experiments produce. *)
let of_edge_ids g ~capacity ids =
  check_capacity_array g capacity;
  let deg = Array.make (Graph.node_count g) 0 in
  let seen = Bytes.make (Graph.edge_count g) '\000' in
  List.iter
    (fun eid ->
      if eid < 0 || eid >= Graph.edge_count g then
        invalid_arg "Bmatching.of_edge_ids: edge id out of range";
      if Bytes.get seen eid <> '\000' then
        invalid_arg "Bmatching.of_edge_ids: duplicate edge id";
      Bytes.set seen eid '\001';
      let u, v = Graph.edge_endpoints g eid in
      if deg.(u) >= capacity.(u) || deg.(v) >= capacity.(v) then
        invalid_arg "Bmatching.of_edge_ids: capacity exceeded";
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    ids;
  { graph = g; capacity = Array.copy capacity; selected = IntSet.of_list ids; deg }

let graph t = t.graph
let capacity t i = t.capacity.(i)
let size t = IntSet.cardinal t.selected
let mem t eid = IntSet.mem eid t.selected
let edge_ids t = IntSet.elements t.selected
let degree t i = t.deg.(i)
let residual t i = t.capacity.(i) - t.deg.(i)
let saturated t i = residual t i <= 0

let connections t i =
  Graph.neighbors t.graph i
  |> Array.to_list
  |> List.filter_map (fun (v, eid) -> if IntSet.mem eid t.selected then Some v else None)

let connection_lists t = Array.init (Graph.node_count t.graph) (connections t)

let weight t w =
  IntSet.fold (fun eid acc -> acc +. Weights.weight w eid) t.selected 0.0

let is_maximal t =
  let ok = ref true in
  Graph.iter_edges t.graph (fun eid u v ->
      if (not (IntSet.mem eid t.selected)) && residual t u > 0 && residual t v > 0 then
        ok := false);
  !ok

let equal a b = IntSet.equal a.selected b.selected

let symmetric_difference a b =
  IntSet.elements
    (IntSet.union (IntSet.diff a.selected b.selected) (IntSet.diff b.selected a.selected))

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf eid ->
         let u, v = Graph.edge_endpoints t.graph eid in
         Format.fprintf ppf "%d-%d" u v))
    (edge_ids t)
