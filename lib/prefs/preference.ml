type t = {
  graph : Graph.t;
  quota : int array; (* clamped to list length *)
  lists : int array array; (* node -> neighbours, best first *)
  rank_by_slot : int array array; (* node -> rank of the neighbour at sorted-adjacency slot *)
}

let slot_of g i j =
  (* binary search j in the sorted (neighbour, edge) adjacency of i *)
  let a = Graph.neighbors g i in
  let lo = ref 0 and hi = ref (Array.length a - 1) and res = ref (-1) in
  while !res < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w, _ = a.(mid) in
    if w = j then res := mid else if w < j then lo := mid + 1 else hi := mid - 1
  done;
  !res

let create g ~quota ~lists =
  let n = Graph.node_count g in
  if Array.length quota <> n || Array.length lists <> n then
    invalid_arg "Preference.create: arity mismatch with graph";
  let rank_by_slot =
    Array.init n (fun i ->
        let deg = Graph.degree g i in
        if Array.length lists.(i) <> deg then
          invalid_arg "Preference.create: list is not a permutation of the neighbourhood";
        let ranks = Array.make deg (-1) in
        Array.iteri
          (fun r j ->
            let s = slot_of g i j in
            if s < 0 then
              invalid_arg "Preference.create: list contains a non-neighbour";
            if ranks.(s) >= 0 then
              invalid_arg "Preference.create: duplicate entry in preference list";
            ranks.(s) <- r)
          lists.(i);
        ranks)
  in
  let quota =
    Array.mapi
      (fun i b ->
        if b < 0 then invalid_arg "Preference.create: negative quota";
        min b (Graph.degree g i))
      quota
  in
  { graph = g; quota; lists = Array.map Array.copy lists; rank_by_slot }

let random rng g ~quota =
  let lists =
    Array.init (Graph.node_count g) (fun i ->
        let nbrs = Graph.neighbor_nodes g i in
        Owp_util.Prng.shuffle_in_place rng nbrs;
        nbrs)
  in
  create g ~quota ~lists

let of_scores g ~quota score =
  let lists =
    Array.init (Graph.node_count g) (fun i ->
        let nbrs = Graph.neighbor_nodes g i in
        let keyed = Array.map (fun j -> (-.score i j, j)) nbrs in
        Array.sort
          (fun (a, u) (b, v) ->
            let c = Float.compare a b in
            if c <> 0 then c else Int.compare u v)
          keyed;
        Array.map snd keyed)
  in
  create g ~quota ~lists

let of_metric g ~quota m = of_scores g ~quota (Metric.score m)

let uniform_quota g b = Array.make (Graph.node_count g) b

let graph t = t.graph
let quota t i = t.quota.(i)

let max_quota t = Array.fold_left max 1 t.quota

let list t i = t.lists.(i)
let list_len t i = Array.length t.lists.(i)

let rank t i j =
  let s = slot_of t.graph i j in
  if s < 0 then raise Not_found;
  t.rank_by_slot.(i).(s)

let preferred t i j k = rank t i j < rank t i k

let satisfaction t i conns =
  let l = list_len t i and b = t.quota.(i) in
  if l = 0 || b = 0 then 0.0
  else Satisfaction.of_ranks ~quota:b ~list_len:l (List.map (rank t i) conns)

let static_satisfaction t i conns =
  let l = list_len t i and b = t.quota.(i) in
  if l = 0 || b = 0 then 0.0
  else Satisfaction.static_of_ranks ~quota:b ~list_len:l (List.map (rank t i) conns)

let total_satisfaction t conns =
  let acc = ref 0.0 in
  Array.iteri (fun i c -> acc := !acc +. satisfaction t i c) conns;
  !acc

let total_static_satisfaction t conns =
  let acc = ref 0.0 in
  Array.iteri (fun i c -> acc := !acc +. static_satisfaction t i c) conns;
  !acc

(* Preference-cycle detection.  Vertices of the search digraph are
   directed edges (u -> v), encoded as 2*eid + dir where dir tells
   whether the traversal goes from the lower to the higher endpoint.
   There is an arc (u -> v) ~> (v -> w) iff w ≠ u and v strictly
   prefers w over u.  A directed cycle in this digraph is exactly a
   preference cycle n_0 .. n_{k-1}. *)
let find_preference_cycle t =
  let g = t.graph in
  let m = Graph.edge_count g in
  let nverts = 2 * m in
  let encode eid tail =
    let a, _ = Graph.edge_endpoints g eid in
    if tail = a then 2 * eid else (2 * eid) + 1
  in
  let tail_head code =
    let eid = code / 2 in
    let a, b = Graph.edge_endpoints g eid in
    if code land 1 = 0 then (a, b) else (b, a)
  in
  (* colors: 0 white, 1 grey (on stack), 2 black *)
  let color = Array.make nverts 0 in
  let parent = Array.make nverts (-1) in
  let cycle = ref None in
  let rec dfs code =
    if !cycle = None then begin
      color.(code) <- 1;
      let u, v = tail_head code in
      Graph.iter_neighbors g v (fun w eid ->
          if !cycle = None && w <> u && preferred t v w u then begin
            let next = encode eid v in
            if color.(next) = 1 then begin
              (* found: the cycle's nodes are the tails of the grey chain
                 from [next] down to [code] *)
              let rec collect c acc =
                let tail, _ = tail_head c in
                if c = next then tail :: acc else collect parent.(c) (tail :: acc)
              in
              cycle := Some (collect code [])
            end
            else if color.(next) = 0 then begin
              parent.(next) <- code;
              dfs next
            end
          end);
      color.(code) <- 2
    end
  in
  let code = ref 0 in
  while !cycle = None && !code < nverts do
    if color.(!code) = 0 then dfs !code;
    incr code
  done;
  !cycle

let is_acyclic t = find_preference_cycle t = None
