type t = { name : string; score : int -> int -> float }

let name m = m.name
let score m i j = m.score i j

(* SplitMix64 finalizer over a combined key: a cheap stateless hash that
   passes into (0,1) floats.  Reproducible across runs for a fixed seed. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let hash_float ~seed a b =
  let open Int64 in
  let k = mix64 (of_int seed) in
  let k = mix64 (logxor k (mul (of_int a) 0x9E3779B97F4A7C15L)) in
  let k = mix64 (logxor k (mul (of_int b) 0xC2B2AE3D27D4EB4FL)) in
  Int64.to_float (shift_right_logical k 11) *. (1.0 /. 9007199254740992.0)

let latency pts =
  let score i j =
    let xi, yi = pts.(i) and xj, yj = pts.(j) in
    let d = sqrt (((xi -. xj) *. (xi -. xj)) +. ((yi -. yj) *. (yi -. yj))) in
    -.d
  in
  { name = "latency"; score }

let interest ~seed ~dims =
  if dims <= 0 then invalid_arg "Metric.interest: dims must be positive";
  let profile v k = hash_float ~seed:(seed + (7919 * k)) v v in
  let score i j =
    let acc = ref 0.0 in
    for k = 0 to dims - 1 do
      acc := !acc +. (profile i k *. profile j k)
    done;
    !acc
  in
  { name = "interest"; score }

let bandwidth ~seed =
  let capacity v = hash_float ~seed v v in
  { name = "bandwidth"; score = (fun _ j -> capacity j) }

let transaction_history ~seed =
  { name = "transactions"; score = (fun i j -> hash_float ~seed i j) }

let uniform ~seed = { name = "uniform"; score = (fun i j -> hash_float ~seed i j) }

let symmetric_uniform ~seed =
  let score i j = if i <= j then hash_float ~seed i j else hash_float ~seed j i in
  { name = "symmetric-uniform"; score }

let combine name parts =
  if List.is_empty parts then invalid_arg "Metric.combine: empty combination";
  let score i j =
    List.fold_left (fun acc (coef, m) -> acc +. (coef *. m.score i j)) 0.0 parts
  in
  { name; score }
