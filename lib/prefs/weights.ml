type combiner = Sum | Min | Product

type t = { graph : Graph.t; w : float array }

let side_delta prefs i j =
  let l = Preference.list_len prefs i and b = Preference.quota prefs i in
  if l = 0 || b = 0 then 0.0
  else Satisfaction.static_delta ~quota:b ~list_len:l ~rank:(Preference.rank prefs i j)

let of_preference ?(combiner = Sum) prefs =
  let g = Preference.graph prefs in
  let w = Array.make (Graph.edge_count g) 0.0 in
  Graph.iter_edges g (fun eid u v ->
      let a = side_delta prefs u v and b = side_delta prefs v u in
      w.(eid) <-
        (match combiner with Sum -> a +. b | Min -> Float.min a b | Product -> a *. b));
  { graph = g; w }

let of_array g w =
  if Array.length w <> Graph.edge_count g then
    invalid_arg "Weights.of_array: arity mismatch";
  { graph = g; w = Array.copy w }

let graph t = t.graph
let weight t e = t.w.(e)
let unsafe_weights t = t.w

let weight_uv t u v =
  match Graph.find_edge t.graph u v with
  | Some e -> t.w.(e)
  | None -> raise Not_found

let compare_edges t e f =
  if e = f then 0
  else begin
    let c = Float.compare t.w.(e) t.w.(f) in
    if c <> 0 then c
    else begin
      (* deterministic identity tie-break so the order is total *)
      let ue, ve = Graph.edge_endpoints t.graph e in
      let uf, vf = Graph.edge_endpoints t.graph f in
      compare (ue, ve, e) (uf, vf, f)
    end
  end

let heavier t e f = compare_edges t e f > 0

let total t edges = Array.fold_left (fun acc e -> acc +. t.w.(e)) 0.0 edges

let distinct_weights t =
  let tbl = Hashtbl.create (Array.length t.w) in
  Array.iter (fun x -> Hashtbl.replace tbl x ()) t.w;
  Hashtbl.length tbl

let max_weight_edge t =
  let m = Array.length t.w in
  if m = 0 then None
  else begin
    let best = ref 0 in
    for e = 1 to m - 1 do
      if heavier t e !best then best := e
    done;
    Some !best
  end
