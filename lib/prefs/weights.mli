(** Edge weights for the reduction to weighted matching (§4, eq. 9).

    The modified b-matching problem becomes a many-to-many maximum
    weighted matching once every edge [(i,j)] carries the symmetric
    weight

    {v w(i,j) = ΔS̄_i(j) + ΔS̄_j(i)
              = (1 - R_i(j)/L_i)/b_i + (1 - R_j(i)/L_j)/b_j v}

    The paper requires {e unique} edge weights so that locally heaviest
    edges are unambiguous, breaking ties by node identities; here the
    strict total order [compare_edges] implements exactly that
    (weight first, then lexicographic endpoints), so algorithms never
    depend on floating-point uniqueness. *)

type combiner = Sum | Min | Product
(** [Sum] is the paper's eq. 9.  [Min] and [Product] are ablation
    combiners (E12/DESIGN §"design choices"): they also yield symmetric
    weights but lose the additive decomposition Lemma 2 relies on. *)

type t

val of_preference : ?combiner:combiner -> Preference.t -> t
(** Weights for every edge of the preference system's graph.  Edges with
    a quota-0 endpoint get the contribution 0 from that endpoint. *)

val of_array : Graph.t -> float array -> t
(** Wrap externally supplied weights (benchmarks, tests). *)

val graph : t -> Graph.t
val weight : t -> int -> float
(** Weight by edge id. *)

val unsafe_weights : t -> float array
(** The physical weight-by-edge-id array, {e shared, not copied} — the
    caller must treat it as read-only.  Exists for index engines whose
    inner loops cannot afford a closure call (or an O(m) snapshot) per
    comparison; everything else should go through {!weight}. *)

val weight_uv : t -> int -> int -> float
(** @raise Not_found when the nodes are not adjacent. *)

val compare_edges : t -> int -> int -> int
(** Strict total order on edge ids: by weight, ties by endpoints.
    [compare_edges t e f = 0] iff [e = f]. *)

val heavier : t -> int -> int -> bool
(** [heavier t e f] iff [e] beats [f] in the total order. *)

val total : t -> int array -> float
(** Sum of weights of a set of edge ids. *)

val distinct_weights : t -> int
(** Number of distinct raw float weights (diagnostic for E12). *)

val max_weight_edge : t -> int option
(** Heaviest edge id in the whole graph (None on empty). *)
