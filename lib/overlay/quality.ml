module Bmatching = Owp_matching.Bmatching
module Stats = Owp_util.Stats

type t = {
  nodes : int;
  total : float;
  mean : float;
  min : float;
  p05 : float;
  median : float;
  jain : float;
  saturated_fraction : float;
  fully_satisfied_fraction : float;
}

let jain_index xs =
  let n = Array.length xs in
  if n = 0 then 1.0
  else begin
    let s = Array.fold_left ( +. ) 0.0 xs in
    let s2 = Array.fold_left (fun a x -> a +. (x *. x)) 0.0 xs in
    if Float.equal s2 0.0 then 1.0 else s *. s /. (float_of_int n *. s2)
  end

let measure prefs m =
  let g = Preference.graph prefs in
  let profile = ref [] in
  let saturated = ref 0 and full = ref 0 and count = ref 0 in
  for i = 0 to Graph.node_count g - 1 do
    if Preference.list_len prefs i > 0 && Preference.quota prefs i > 0 then begin
      incr count;
      let s = Preference.satisfaction prefs i (Bmatching.connections m i) in
      profile := s :: !profile;
      if Bmatching.residual m i = 0 then incr saturated;
      if s >= 1.0 -. 1e-9 then incr full
    end
  done;
  let xs = Array.of_list !profile in
  if Array.length xs = 0 then
    {
      nodes = 0;
      total = 0.0;
      mean = 0.0;
      min = 0.0;
      p05 = 0.0;
      median = 0.0;
      jain = 1.0;
      saturated_fraction = 0.0;
      fully_satisfied_fraction = 0.0;
    }
  else begin
    let s = Stats.summarize xs in
    {
      nodes = !count;
      total = Array.fold_left ( +. ) 0.0 xs;
      mean = s.Stats.mean;
      min = s.Stats.min;
      p05 = s.Stats.p05;
      median = s.Stats.median;
      jain = jain_index xs;
      saturated_fraction = float_of_int !saturated /. float_of_int !count;
      fully_satisfied_fraction = float_of_int !full /. float_of_int !count;
    }
  end

let pp ppf t =
  Format.fprintf ppf
    "nodes=%d mean=%.4f min=%.4f p05=%.4f median=%.4f jain=%.4f saturated=%.1f%% top-b=%.1f%%"
    t.nodes t.mean t.min t.p05 t.median t.jain
    (100.0 *. t.saturated_fraction)
    (100.0 *. t.fully_satisfied_fraction)
