(** Overlay construction with per-peer private metrics.

    The paper's headline scenario: each peer individually chooses a
    suitability metric (never disclosed), ranks its potential neighbours
    with it, and the swarm runs LID to form connections with a provable
    collective-quality guarantee.  This module wires the layers
    together: per-node metrics → preference system → eq. 9 weights →
    LID → quality report. *)

type config = {
  quota : int -> int;  (** connection quota per peer *)
  metric_of : int -> Metric.t;  (** each peer's private metric *)
}

val homogeneous : quota:int -> Metric.t -> config
(** Every peer uses the same quota and metric. *)

val heterogeneous : quota:int -> Metric.t array -> pick:(int -> int) -> config
(** Peer [i] uses [metrics.(pick i)]. *)

val preferences : Graph.t -> config -> Preference.t
(** Materialise every peer's preference list from its own metric. *)

val build : ?seed:int -> Graph.t -> config -> Owp_core.Pipeline.outcome
(** Construct the overlay with LID over the simulated network. *)

val build_with :
  ?seed:int ->
  engine:Owp_core.Run_config.engine ->
  Graph.t ->
  config ->
  Owp_core.Pipeline.outcome
(** [build] with an explicit engine (default seed 7, the historical
    default of the removed [Pipeline.run] wrapper). *)
