type config = { quota : int -> int; metric_of : int -> Metric.t }

let homogeneous ~quota m = { quota = (fun _ -> quota); metric_of = (fun _ -> m) }

let heterogeneous ~quota metrics ~pick =
  if Array.length metrics = 0 then invalid_arg "Overlay.heterogeneous: no metrics";
  {
    quota = (fun _ -> quota);
    metric_of =
      (fun i ->
        let k = pick i in
        if k < 0 || k >= Array.length metrics then
          invalid_arg "Overlay.heterogeneous: pick out of range";
        metrics.(k));
  }

let preferences g config =
  let quota = Array.init (Graph.node_count g) config.quota in
  (* each node scores with its own metric: the score function dispatches
     on the ranking node, so preference lists stay private per peer *)
  Preference.of_scores g ~quota (fun i j -> Metric.score (config.metric_of i) i j)

(* seed 7 is the historical Pipeline.run default; keeping it preserves
   every published example's output byte for byte *)
let build_with ?(seed = 7) ~engine g config =
  let prefs = preferences g config in
  Owp_core.Pipeline.run_config
    (Owp_core.Run_config.make ~engine ~seed ())
    prefs

let build ?seed g config = build_with ?seed ~engine:Owp_core.Run_config.Lid g config
