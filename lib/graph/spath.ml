module Keyed = Owp_util.Heap.Keyed

let dijkstra_general g ~length ~allowed src =
  let n = Graph.node_count g in
  let dist = Array.make n infinity in
  let heap = Keyed.create n in
  dist.(src) <- 0.0;
  Keyed.insert heap src 0.0;
  while not (Keyed.is_empty heap) do
    let u, du = Keyed.pop_min heap in
    (* a popped key is final; stale entries are impossible with
       decrease-key, so du = dist.(u) *)
    Graph.iter_neighbors g u (fun v eid ->
        if allowed eid then begin
          let len = length eid in
          if len < 0.0 then invalid_arg "Spath.dijkstra: negative length";
          let nd = du +. len in
          if nd < dist.(v) then begin
            dist.(v) <- nd;
            Keyed.insert_or_decrease heap v nd
          end
        end)
  done;
  dist

let dijkstra g ~length src = dijkstra_general g ~length ~allowed:(fun _ -> true) src

let dijkstra_restricted g ~length ~allowed src = dijkstra_general g ~length ~allowed src

let path_stretch g ~length ~subgraph ~samples =
  (* group samples by source so each source costs two Dijkstra runs *)
  let by_src = Hashtbl.create 16 in
  List.iter
    (fun (s, d) ->
      let ds = Option.value (Hashtbl.find_opt by_src s) ~default:[] in
      Hashtbl.replace by_src s (d :: ds))
    samples;
  List.fold_left
    (fun acc (s, dsts) ->
      let full = dijkstra g ~length s in
      let sub = dijkstra_restricted g ~length ~allowed:subgraph s in
      List.fold_left
        (fun acc d ->
          if Float.equal full.(d) infinity || Float.equal full.(d) 0.0 then acc
          else (sub.(d) /. full.(d)) :: acc)
        acc dsts)
    []
    (List.sort compare (Hashtbl.fold (fun s dsts acc -> (s, dsts) :: acc) by_src []))
