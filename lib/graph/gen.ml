module Prng = Owp_util.Prng

let gnp rng ~n ~p =
  if p < 0.0 || p > 1.0 then invalid_arg "Gen.gnp: p out of range";
  let b = Graph.Builder.create n in
  if p > 0.0 then begin
    if p >= 1.0 then
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          ignore (Graph.Builder.add_edge b u v)
        done
      done
    else begin
      (* Batagelj–Brandes skipping: iterate potential edges in lexicographic
         order, jumping geometrically distributed gaps. *)
      let log1mp = log (1.0 -. p) in
      let v = ref 1 and w = ref (-1) in
      while !v < n do
        let r = 1.0 -. Prng.float rng 1.0 in
        w := !w + 1 + int_of_float (floor (log r /. log1mp));
        while !w >= !v && !v < n do
          w := !w - !v;
          incr v
        done;
        if !v < n then ignore (Graph.Builder.add_edge b !v !w)
      done
    end
  end;
  Graph.Builder.build b

let max_edges n = n * (n - 1) / 2

let gnm rng ~n ~m =
  if m < 0 || m > max_edges n then invalid_arg "Gen.gnm: m out of range";
  let b = Graph.Builder.create n in
  (* dense case: sample edge indices without replacement *)
  if 2 * m > max_edges n then begin
    let ids = Prng.sample_without_replacement rng m (max_edges n) in
    (* decode linear index into (u, v), u < v *)
    Array.iter
      (fun idx ->
        (* find u such that idx falls in row u of the strictly upper triangle *)
        let u = ref 0 and rem = ref idx in
        while !rem >= n - 1 - !u do
          rem := !rem - (n - 1 - !u);
          incr u
        done;
        ignore (Graph.Builder.add_edge b !u (!u + 1 + !rem)))
      ids
  end
  else begin
    while Graph.Builder.edge_count b < m do
      let u = Prng.int rng n and v = Prng.int rng n in
      if u <> v then ignore (Graph.Builder.add_edge b u v)
    done
  end;
  Graph.Builder.build b

let complete n =
  let b = Graph.Builder.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      ignore (Graph.Builder.add_edge b u v)
    done
  done;
  Graph.Builder.build b

let barabasi_albert rng ~n ~m =
  if m < 1 || n <= m then invalid_arg "Gen.barabasi_albert: need n > m >= 1";
  let b = Graph.Builder.create n in
  (* endpoint multiset: picking a uniform entry = degree-proportional pick *)
  let endpoints = ref [] and nend = ref 0 in
  let push x =
    endpoints := x :: !endpoints;
    incr nend
  in
  (* seed clique on the first m+1 nodes *)
  for u = 0 to m do
    for v = u + 1 to m do
      ignore (Graph.Builder.add_edge b u v);
      push u;
      push v
    done
  done;
  let pool = ref (Array.of_list !endpoints) in
  let pool_len = ref (Array.length !pool) in
  let pool_push x =
    if !pool_len >= Array.length !pool then begin
      let np = Array.make (max 16 (2 * Array.length !pool)) 0 in
      Array.blit !pool 0 np 0 !pool_len;
      pool := np
    end;
    !pool.(!pool_len) <- x;
    incr pool_len
  in
  for v = m + 1 to n - 1 do
    let chosen = Hashtbl.create m in
    while Hashtbl.length chosen < m do
      let t = !pool.(Prng.int rng !pool_len) in
      if t <> v then Hashtbl.replace chosen t ()
    done;
    List.iter
      (fun t ->
        ignore (Graph.Builder.add_edge b v t);
        pool_push v;
        pool_push t)
      (List.sort compare (Hashtbl.fold (fun t () acc -> t :: acc) chosen []))
  done;
  Graph.Builder.build b

let watts_strogatz rng ~n ~k ~beta =
  if k < 1 || n <= 2 * k then invalid_arg "Gen.watts_strogatz: need n > 2k";
  if beta < 0.0 || beta > 1.0 then invalid_arg "Gen.watts_strogatz: beta out of range";
  let b = Graph.Builder.create n in
  for u = 0 to n - 1 do
    for offset = 1 to k do
      let v = (u + offset) mod n in
      if Prng.bernoulli rng beta then begin
        (* rewire: keep u, draw a fresh partner avoiding loops/duplicates *)
        let attempts = ref 0 and placed = ref false in
        while (not !placed) && !attempts < 32 do
          incr attempts;
          let w = Prng.int rng n in
          if w <> u && not (Graph.Builder.mem_edge b u w) then begin
            ignore (Graph.Builder.add_edge b u w);
            placed := true
          end
        done;
        if not !placed then ignore (Graph.Builder.add_edge b u v)
      end
      else ignore (Graph.Builder.add_edge b u v)
    done
  done;
  Graph.Builder.build b

let random_geometric rng ~n ~radius =
  let pts = Array.init n (fun _ -> (Prng.float rng 1.0, Prng.float rng 1.0)) in
  let b = Graph.Builder.create n in
  let r2 = radius *. radius in
  (* cell grid for near-linear neighbour search *)
  let cell = max 1 (int_of_float (1.0 /. Float.max radius 1e-9)) in
  let buckets = Hashtbl.create (2 * n) in
  let key x y = (x * cell) + y in
  Array.iteri
    (fun i (x, y) ->
      let cx = min (cell - 1) (int_of_float (x *. float_of_int cell)) in
      let cy = min (cell - 1) (int_of_float (y *. float_of_int cell)) in
      Hashtbl.add buckets (key cx cy) i)
    pts;
  Array.iteri
    (fun i (x, y) ->
      let cx = min (cell - 1) (int_of_float (x *. float_of_int cell)) in
      let cy = min (cell - 1) (int_of_float (y *. float_of_int cell)) in
      for dx = -1 to 1 do
        for dy = -1 to 1 do
          let nx = cx + dx and ny = cy + dy in
          if nx >= 0 && ny >= 0 && nx < cell && ny < cell then
            List.iter
              (fun j ->
                if j > i then begin
                  let xj, yj = pts.(j) in
                  let d2 = ((x -. xj) *. (x -. xj)) +. ((y -. yj) *. (y -. yj)) in
                  if d2 <= r2 then ignore (Graph.Builder.add_edge b i j)
                end)
              (Hashtbl.find_all buckets (key nx ny))
        done
      done)
    pts;
  (Graph.Builder.build b, pts)

let grid ~width ~height =
  let n = width * height in
  let b = Graph.Builder.create n in
  let id x y = (y * width) + x in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      if x + 1 < width then ignore (Graph.Builder.add_edge b (id x y) (id (x + 1) y));
      if y + 1 < height then ignore (Graph.Builder.add_edge b (id x y) (id x (y + 1)))
    done
  done;
  Graph.Builder.build b

let torus ~width ~height =
  if width < 3 || height < 3 then invalid_arg "Gen.torus: dimensions must be >= 3";
  let n = width * height in
  let b = Graph.Builder.create n in
  let id x y = (y * width) + x in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      ignore (Graph.Builder.add_edge b (id x y) (id ((x + 1) mod width) y));
      ignore (Graph.Builder.add_edge b (id x y) (id x ((y + 1) mod height)))
    done
  done;
  Graph.Builder.build b

let random_bipartite rng ~left ~right ~p =
  let b = Graph.Builder.create (left + right) in
  for u = 0 to left - 1 do
    for v = left to left + right - 1 do
      if Prng.bernoulli rng p then ignore (Graph.Builder.add_edge b u v)
    done
  done;
  Graph.Builder.build b

let sample_power_law rng ~exponent ~min_degree ~max_degree =
  (* inverse-CDF sampling of a discrete power law on [min_degree, max_degree] *)
  let a = 1.0 -. exponent in
  let lo = float_of_int min_degree and hi = float_of_int max_degree in
  let u = Prng.float rng 1.0 in
  let x = ((hi ** a) -. (lo ** a)) *. u +. (lo ** a) in
  let d = int_of_float (x ** (1.0 /. a)) in
  max min_degree (min max_degree d)

let configuration_power_law rng ~n ~exponent ~min_degree =
  if exponent <= 1.0 then invalid_arg "Gen.configuration_power_law: exponent must be > 1";
  let max_degree = max min_degree (n - 1) in
  let degs =
    Array.init n (fun _ -> sample_power_law rng ~exponent ~min_degree ~max_degree)
  in
  (* even total degree *)
  let total = Array.fold_left ( + ) 0 degs in
  if total mod 2 = 1 then degs.(0) <- degs.(0) + 1;
  let stubs = Array.make (Array.fold_left ( + ) 0 degs) 0 in
  let k = ref 0 in
  Array.iteri
    (fun v d ->
      for _ = 1 to d do
        stubs.(!k) <- v;
        incr k
      done)
    degs;
  Prng.shuffle_in_place rng stubs;
  let b = Graph.Builder.create n in
  let i = ref 0 in
  while !i + 1 < Array.length stubs do
    let u = stubs.(!i) and v = stubs.(!i + 1) in
    if u <> v then ignore (Graph.Builder.add_edge b u v);
    i := !i + 2
  done;
  Graph.Builder.build b

let random_regular rng ~n ~d =
  if d < 0 || d >= n then invalid_arg "Gen.random_regular: need 0 <= d < n";
  if n * d mod 2 = 1 then invalid_arg "Gen.random_regular: n*d must be even";
  let attempt () =
    let stubs = Array.make (n * d) 0 in
    for v = 0 to n - 1 do
      for j = 0 to d - 1 do
        stubs.((v * d) + j) <- v
      done
    done;
    Prng.shuffle_in_place rng stubs;
    let b = Graph.Builder.create n in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i + 1 < Array.length stubs do
      let u = stubs.(!i) and v = stubs.(!i + 1) in
      if u = v || not (Graph.Builder.add_edge b u v) then ok := false;
      i := !i + 2
    done;
    if !ok then Some (Graph.Builder.build b) else None
  in
  let rec retry k best =
    if k = 0 then best
    else
      match attempt () with
      | Some g -> Some g
      | None -> retry (k - 1) best
  in
  match retry 8 None with
  | Some g -> g
  | None ->
      (* fall back: pair stubs, carrying conflicting stubs over into
         repeated repair rounds; only the final unpairable leftovers (a
         handful of stubs at worst) cost regularity *)
      let b = Graph.Builder.create n in
      let stubs = ref (Array.make (n * d) 0) in
      for v = 0 to n - 1 do
        for j = 0 to d - 1 do
          !stubs.((v * d) + j) <- v
        done
      done;
      let rounds = ref 0 in
      let progress = ref true in
      while Array.length !stubs > 1 && !progress && !rounds < 200 do
        incr rounds;
        Prng.shuffle_in_place rng !stubs;
        let leftover = ref [] in
        let i = ref 0 in
        let placed = ref 0 in
        while !i + 1 < Array.length !stubs do
          let u = !stubs.(!i) and v = !stubs.(!i + 1) in
          if u <> v && Graph.Builder.add_edge b u v then incr placed
          else begin
            leftover := u :: v :: !leftover
          end;
          i := !i + 2
        done;
        if !i < Array.length !stubs then leftover := !stubs.(!i) :: !leftover;
        progress := !placed > 0;
        stubs := Array.of_list !leftover
      done;
      Graph.Builder.build b

let ring n =
  if n < 3 then invalid_arg "Gen.ring: need n >= 3";
  let b = Graph.Builder.create n in
  for u = 0 to n - 1 do
    ignore (Graph.Builder.add_edge b u ((u + 1) mod n))
  done;
  Graph.Builder.build b

let star n =
  if n < 1 then invalid_arg "Gen.star: need n >= 1";
  let b = Graph.Builder.create n in
  for u = 1 to n - 1 do
    ignore (Graph.Builder.add_edge b 0 u)
  done;
  Graph.Builder.build b

let path n =
  if n < 1 then invalid_arg "Gen.path: need n >= 1";
  let b = Graph.Builder.create n in
  for u = 0 to n - 2 do
    ignore (Graph.Builder.add_edge b u (u + 1))
  done;
  Graph.Builder.build b
