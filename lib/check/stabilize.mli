(** Self-stabilization certificate for runs under a fault schedule.

    A {!Owp_simnet.Schedule.t} scripts network weather — partitions,
    link flaps, loss bursts, crash-then-restart — whose last episode
    ends at the heal instant [T_heal].  Self-stabilization is the
    claim that the weather left no scars: once the network heals, the
    run quiesces on its own and converges to exactly what a run
    {e without} the weather (but with the same permanent losses) would
    have produced.  Recovery {e time} is the quality axis Floréen et
    al. ("Almost Stable Matchings in Constant Time") argue matters for
    dynamic networks, so the certificate measures it instead of only
    pass/failing.

    Certified means all three of:

    {ol
    {- {b Quiescence}: every participating node terminated after the
       heal.}
    {- {b Convergence}: the final edge set equals the {e crash-only
       reference} — LIC on the subgraph of nodes that ended the run
       participating (nodes permanently crashed, retired by a [Down]
       episode, or Byzantine are outside it).  The caller computes the
       reference (this library cannot run LIC); the certificate
       diffs the two sets and records the witnesses.}
    {- {b Feasibility}: the served edge set is a valid sub-b-matching,
       re-verified from scratch.}}

    Exact convergence is only a theorem for {e transient} weather
    (partitions, link outages, flapping, loss bursts): such a run is a
    delayed clean run, so Lemma 6 schedule-independence applies.  A run
    with fail-stop {e deaths} ([Down] episodes or crash faults) is
    different in kind: LID rejections are irrevocable, so a node that
    deferred suitors while half-locked toward a peer that then died has
    already burned bridges no heal can rebuild — exact equality with
    the survivor reference is unachievable by any certificate-side
    relativization.  The caller flags such runs with [deaths]; the diff
    is still measured and reported, but {!certified} then rests on
    quiescence + feasibility, with convergence informational.

    Recovery time [quiesce_at − T_heal] is reported (clamped at 0: a
    run that quiesced before the weather even ended recovered
    instantly).  Composes with the other certificates: under a
    deadline the anytime certificate owns feasibility-at-cutoff and
    this one simply reports whether the budget also bought
    convergence; under adversaries the damage certificate is
    unchanged. *)

type instance = {
  weights : Weights.t;  (** true symmetric weights (eq. 9) *)
  prefs : Preference.t option;  (** enables satisfaction checking *)
  capacity : int array;
  edges : int list;  (** the final served matching, edge ids *)
  reference : int list;
      (** the crash-only reference: LIC's edge set on the
          participating subgraph *)
  deaths : bool;
      (** the run contained fail-stop deaths ([Down] episodes or crash
          faults): convergence becomes informational *)
  t_heal : float;  (** end of the last scheduled episode *)
  quiesce_at : float;  (** virtual time the run completed *)
  quiesced : bool;  (** every participating node terminated *)
}

val instance :
  ?prefs:Preference.t ->
  ?deaths:bool ->
  Weights.t ->
  capacity:int array ->
  edges:int list ->
  reference:int list ->
  t_heal:float ->
  quiesce_at:float ->
  quiesced:bool ->
  instance
(** [deaths] defaults to [false].
    @raise Invalid_argument on a negative [t_heal]. *)

type certificate = {
  feasible : bool;
  violations : Violation.t list;  (** feasibility witnesses *)
  quiesced : bool;
  converged : bool;  (** served set = reference set *)
  missing : int list;  (** reference edges the run never (re)locked *)
  extra : int list;  (** served edges outside the reference *)
  deaths : bool;  (** copied from the instance *)
  recovery_time : float;  (** [max 0 (quiesce_at − t_heal)] *)
  t_heal : float;
}

val name : string
(** ["self-stabilization"] — the id used in reports and the CLI. *)

val doc : string

val check : instance -> certificate
(** Never raises: a malformed instance yields a void certificate with
    the violations recorded. *)

val certified : certificate -> bool
(** [feasible && quiesced && (converged || deaths)]: under fail-stop
    deaths the convergence clause is informational (see the module
    doc). *)

val to_string : certificate -> string
(** Multi-line human-readable rendering, CERTIFIED/VOID first. *)
