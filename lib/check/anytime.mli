(** Anytime certificate for deadline-bounded (cutoff) LID runs.

    Floréen et al. ("Almost Stable Matchings in Constant Time",
    arXiv 0812.4893) show residual blocking pairs shrink linearly in
    the number of propose–accept rounds, which makes a round-budgeted
    LID a principled anytime algorithm: stop at the budget, serve the
    locked partial matching, and {e measure} what quiescence would
    have added.  This checker certifies one cutoff:

    {ol
    {- {b Feasibility} (hard): the served edge set is a valid
       sub-b-matching — edge ids in range, no duplicates, every node
       within its quota.  The freeze guarantees this by construction
       (locked edges only; tentative proposals released at both
       endpoints), and the certificate re-verifies it from scratch.}
    {- {b Residual blocking pairs} (measured): counted with the full
       Lemma 4/6 checker but reported as degradation, not failure —
       they are exactly what a larger budget buys down.}
    {- {b Retention} (measured, when the full-run reference is given):
       weight and satisfaction of the served matching as a fraction of
       the quiescent run on the same seed, plus the subset witness —
       on one seed the served matching must be a {e subset} of the
       full run's (the event prefix is identical, locks only grow), so
       a [false] witness voids the certificate.}} *)

type instance = {
  weights : Weights.t;  (** true symmetric weights (eq. 9) *)
  prefs : Preference.t option;
      (** enables the satisfaction figures; weight-only without *)
  capacity : int array;
  edges : int list;  (** the served (cutoff) matching, edge ids *)
  budget : float;  (** the virtual-time budget that expired *)
  reference : int list option;
      (** the quiescent full-run matching on the same seed, for the
          retention figures and the subset witness *)
}

val instance :
  ?prefs:Preference.t ->
  ?reference:int list ->
  Weights.t ->
  capacity:int array ->
  budget:float ->
  edges:int list ->
  instance
(** @raise Invalid_argument on a non-positive budget. *)

type certificate = {
  feasible : bool;  (** the hard claim: edge-validity + quota hold *)
  violations : Violation.t list;  (** infeasibility reports, else empty *)
  blocking_pairs : int;  (** residual blocking pairs (degradation) *)
  matched_edges : int;
  weight : float;  (** eq. 9 weight of the served matching *)
  satisfaction : float option;  (** total satisfaction, with [prefs] *)
  weight_retained : float option;
      (** served / reference weight, with [reference]; 1.0 when the
          reference is empty *)
  satisfaction_retained : float option;
      (** served / reference satisfaction, with both [prefs] and
          [reference] *)
  prefix_of_reference : bool option;
      (** with [reference]: is the served matching a subset of it? *)
  budget : float;
}

val name : string
(** ["anytime-cutoff"], the checker name used in listings. *)

val doc : string
(** One-line description for checker listings. *)

val check : instance -> certificate
(** Certify one cutoff.  Never raises on a malformed matching — the
    damage is reported in [violations] with [feasible = false]. *)

val certified : certificate -> bool
(** [feasible] and, when the reference is present, the subset witness
    — the claims the freeze must guarantee.  Blocking pairs and
    retention never void a certificate; they quantify it. *)

val to_string : certificate -> string
(** Multi-line rendering for the CLI. *)
