type subject = Global | Node of int | Edge of int * int

type t = { checker : string; subject : subject; expected : string; actual : string }

let v ~checker subject ~expected ~actual =
  let subject =
    match subject with
    | Edge (u, v) when u > v -> Edge (v, u)
    | s -> s
  in
  { checker; subject; expected; actual }

let subject_rank = function Global -> 0 | Node _ -> 1 | Edge _ -> 2

let subject_compare a b =
  match (a, b) with
  | Global, Global -> 0
  | Node i, Node j -> compare i j
  | Edge (a1, a2), Edge (b1, b2) -> compare (a1, a2) (b1, b2)
  | _ -> compare (subject_rank a) (subject_rank b)

let pp_subject ppf = function
  | Global -> Format.pp_print_string ppf "instance"
  | Node i -> Format.fprintf ppf "node %d" i
  | Edge (u, v) -> Format.fprintf ppf "edge %d-%d" u v

let pp ppf t =
  Format.fprintf ppf "[%s] %a: expected %s, got %s" t.checker pp_subject t.subject
    t.expected t.actual

let pp_list ppf = function
  | [] -> Format.pp_print_string ppf "no violations"
  | vs ->
      Format.pp_print_list ~pp_sep:Format.pp_print_newline pp ppf vs

let to_string t = Format.asprintf "%a" pp t
