(** Structured invariant-violation reports.

    Every diagnostic in {!Checker} (and the protocol explorer
    {!Explore}) reports failures as values of this type instead of bare
    booleans: the checker that fired, the subject (a node, an edge or
    the whole instance), and the expected-vs-actual discrepancy in
    human-readable form.  Reports are data, so callers can count,
    filter, pretty-print or assert on them. *)

type subject =
  | Global  (** the instance as a whole *)
  | Node of int
  | Edge of int * int  (** endpoints, lower id first *)

type t = {
  checker : string;  (** name of the diagnostic that fired *)
  subject : subject;
  expected : string;
  actual : string;
}

val v : checker:string -> subject -> expected:string -> actual:string -> t
(** Build a violation; [Edge] endpoints are normalised to lower-first. *)

val subject_compare : subject -> subject -> int

val pp_subject : Format.formatter -> subject -> unit
val pp : Format.formatter -> t -> unit
val pp_list : Format.formatter -> t list -> unit
val to_string : t -> string
