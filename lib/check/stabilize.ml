type instance = {
  weights : Weights.t;
  prefs : Preference.t option;
  capacity : int array;
  edges : int list;
  reference : int list;
  deaths : bool;
  t_heal : float;
  quiesce_at : float;
  quiesced : bool;
}

let instance ?prefs ?(deaths = false) weights ~capacity ~edges ~reference ~t_heal
    ~quiesce_at ~quiesced =
  if t_heal < 0.0 then invalid_arg "Stabilize.instance: negative t_heal";
  { weights; prefs; capacity; edges; reference; deaths; t_heal; quiesce_at; quiesced }

type certificate = {
  feasible : bool;
  violations : Violation.t list;
  quiesced : bool;
  converged : bool;
  missing : int list;
  extra : int list;
  deaths : bool;
  recovery_time : float;
  t_heal : float;
}

let name = "self-stabilization"

let doc =
  "after the last scheduled episode heals, the run quiesces and converges to \
   the crash-only LIC reference edge set; recovery time is measured"

(* symmetric difference of two edge-id sets, duplicates collapsed *)
let diff served reference =
  let served = List.sort_uniq compare served in
  let reference = List.sort_uniq compare reference in
  let rec go missing extra s r =
    match (s, r) with
    | [], [] -> (List.rev missing, List.rev extra)
    | [], b :: r -> go (b :: missing) extra [] r
    | a :: s, [] -> go missing (a :: extra) s []
    | a :: s', b :: r' ->
        if a = b then go missing extra s' r'
        else if a < b then go missing (a :: extra) s' r
        else go (b :: missing) extra s r'
  in
  go [] [] served reference

let check inst =
  let ci =
    Checker.instance ?prefs:inst.prefs inst.weights ~capacity:inst.capacity
      ~edges:inst.edges
  in
  let feas = Checker.run ~only:[ "edge-validity"; "quota" ] ci in
  let feasible = Checker.ok feas in
  let missing, extra = diff inst.edges inst.reference in
  {
    feasible;
    violations = Checker.violations feas;
    quiesced = inst.quiesced;
    converged = missing = [] && extra = [];
    missing;
    extra;
    deaths = inst.deaths;
    recovery_time = Float.max 0.0 (inst.quiesce_at -. inst.t_heal);
    t_heal = inst.t_heal;
  }

(* under fail-stop deaths exact convergence is unachievable (a node
   half-locked toward a peer that then died has irrevocably rejected the
   proposals it deferred on that hope), so there convergence is measured
   but informational and quiescence + feasibility are the claim *)
let certified c = c.feasible && c.quiesced && (c.converged || c.deaths)

let to_string c =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "self-stabilization certificate @ heal %.3f: %s\n" c.t_heal
       (if certified c then "CERTIFIED" else "VOID"));
  Buffer.add_string b (Printf.sprintf "  quiesced            %b\n" c.quiesced);
  Buffer.add_string b
    (Printf.sprintf "  converged           %b (reference missing %d, extra %d)%s\n"
       c.converged
       (List.length c.missing) (List.length c.extra)
       (if c.deaths && not c.converged then
          " [informational: fail-stop deaths relativize the reference]"
        else ""));
  Buffer.add_string b (Printf.sprintf "  feasible            %b\n" c.feasible);
  Buffer.add_string b
    (Printf.sprintf "  recovery time       %.3f after heal\n" c.recovery_time);
  let ids label = function
    | [] -> ()
    | l ->
        Buffer.add_string b
          (Printf.sprintf "  %s  [%s]\n" label
             (String.concat "; " (List.map string_of_int l)))
  in
  ids "missing edges     " c.missing;
  ids "extra edges       " c.extra;
  List.iter
    (fun v -> Buffer.add_string b ("  " ^ Violation.to_string v ^ "\n"))
    c.violations;
  Buffer.contents b
