(** Bounded-damage certificate for LID runs with Byzantine peers.

    With at most [f] Byzantine peers and the guard enabled, the claim
    (paper §7 "disruptive nodes", hardened here) is that damage stays
    bounded:

    {ol
    {- {b Termination}: every correct peer terminates (Lemma 5
       relativized — synthetic REJs release any obligation a Byzantine
       peer refuses to answer).}
    {- {b Feasibility}: no correct peer holds more locks than its
       capacity [b_i], counting {e all} its locks — including slots a
       Byzantine peer tricked it into wasting.}
    {- {b Relativized local heaviness (Lemma 6 relativized)}: the
       matching restricted to correct peers is locally heaviest on the
       failure-free correct subgraph.  A correct-correct edge left
       unmatched may only be blocked at an endpoint that either has
       residual capacity or prefers the edge to one of its
       correct-correct locks.  Slots consumed by Byzantine partners are
       {e exempt} from the challenge: locking a Byzantine peer that
       played its link honestly was locally correct behaviour, and the
       wasted slot is exactly the damage an [f]-bounded adversary is
       allowed.}}

    The checker certifies a single terminal state; quarantine precision
    (no correct peer quarantined when channels are failure-free) is a
    property of the {e run} and is asserted by the driver's report, not
    here. *)

type instance = {
  weights : Weights.t;  (** true symmetric weights (eq. 9) *)
  capacity : int array;
  correct : bool array;  (** [correct.(i)] iff node [i] is not Byzantine *)
  edges : int list;  (** the matching restricted to correct peers *)
  consumed : int array;
      (** per-node total locked slots, Byzantine partners included
          (|K_i|); only correct nodes' entries are inspected *)
  unterminated : int list;  (** correct nodes that failed to quiesce *)
  overclaimed : (int * int) list;
      (** [(victim, liar)] locks a correct node holds on a peer whose
          bootstrap advertisement provably exceeded its public [1/b]
          bound — avoidable damage the guard prevents at t = 0, so
          each entry voids the certificate ([byzantine-overclaim]) *)
}

val name : string
(** ["byzantine-damage"], the checker name used in violation reports. *)

val doc : string
(** One-line description for checker listings. *)

val check : ?cutoff:bool -> instance -> Violation.t list
(** Empty iff the terminal state satisfies the bounded-damage
    guarantee.  Violations are tagged [byzantine-termination],
    [byzantine-feasibility], [byzantine-restriction],
    [byzantine-blocking-pair] and [byzantine-overclaim].
    [cutoff] (default [false]) marks a deadline-bounded run: the
    blocking-pair clause is skipped — unmatched mutually-preferred
    edges are the budget's measured degradation, not damage — while
    the safety clauses (restriction, feasibility, overclaim) and
    termination (true by construction after the freeze) still apply. *)
