module Bmatching = Owp_matching.Bmatching
module Exact = Owp_matching.Exact

type instance = {
  graph : Graph.t;
  weights : Weights.t;
  capacity : int array;
  prefs : Preference.t option;
  edges : int list;
}

let instance ?prefs weights ~capacity ~edges =
  { graph = Weights.graph weights; weights; capacity; prefs; edges }

let of_matching ?prefs weights m =
  let g = Bmatching.graph m in
  {
    graph = g;
    weights;
    capacity = Array.init (Graph.node_count g) (Bmatching.capacity m);
    prefs;
    edges = Bmatching.edge_ids m;
  }

type t = { name : string; doc : string; run : instance -> Violation.t list }

(* ------------------------------------------------------------------ *)
(* shared accounting over the raw edge set                              *)
(* ------------------------------------------------------------------ *)

let valid_id inst eid = eid >= 0 && eid < Graph.edge_count inst.graph

(* per-node cover counts; invalid ids contribute nothing *)
let degrees inst =
  let d = Array.make (Graph.node_count inst.graph) 0 in
  List.iter
    (fun eid ->
      if valid_id inst eid then begin
        let u, v = Graph.edge_endpoints inst.graph eid in
        d.(u) <- d.(u) + 1;
        d.(v) <- d.(v) + 1
      end)
    inst.edges;
  d

let selected inst =
  let s = Array.make (Graph.edge_count inst.graph) false in
  List.iter (fun eid -> if valid_id inst eid then s.(eid) <- true) inst.edges;
  s

(* partner lists (with multiplicity, so corrupted duplicates surface in
   the satisfaction accounting instead of disappearing) *)
let connection_lists inst =
  let c = Array.make (Graph.node_count inst.graph) [] in
  List.iter
    (fun eid ->
      if valid_id inst eid then begin
        let u, v = Graph.edge_endpoints inst.graph eid in
        c.(u) <- v :: c.(u);
        c.(v) <- u :: c.(v)
      end)
    inst.edges;
  c

let cap inst i = if i < Array.length inst.capacity then inst.capacity.(i) else 0

let basic_feasible inst =
  Array.length inst.capacity = Graph.node_count inst.graph
  && List.for_all (fun eid -> valid_id inst eid) inst.edges
  && (let seen = Hashtbl.create 64 in
      List.for_all
        (fun eid ->
          if Hashtbl.mem seen eid then false
          else begin
            Hashtbl.add seen eid ();
            true
          end)
        inst.edges)
  &&
  let d = degrees inst in
  Array.for_all (fun x -> x) (Array.mapi (fun i di -> di <= cap inst i) d)

let edge_subject inst eid =
  if valid_id inst eid then begin
    let u, v = Graph.edge_endpoints inst.graph eid in
    Violation.Edge (u, v)
  end
  else Violation.Global

(* ------------------------------------------------------------------ *)
(* diagnostics                                                          *)
(* ------------------------------------------------------------------ *)

let edge_validity =
  {
    name = "edge-validity";
    doc = "edge ids are in range and not duplicated";
    run =
      (fun inst ->
        let m = Graph.edge_count inst.graph in
        let seen = Hashtbl.create 64 in
        List.rev
          (List.fold_left
             (fun acc eid ->
               if not (valid_id inst eid) then
                 Violation.v ~checker:"edge-validity" Violation.Global
                   ~expected:(Printf.sprintf "edge id in [0, %d)" m)
                   ~actual:(Printf.sprintf "id %d" eid)
                 :: acc
               else if Hashtbl.mem seen eid then
                 Violation.v ~checker:"edge-validity" (edge_subject inst eid)
                   ~expected:"each edge selected at most once"
                   ~actual:(Printf.sprintf "edge id %d duplicated" eid)
                 :: acc
               else begin
                 Hashtbl.add seen eid ();
                 acc
               end)
             [] inst.edges));
  }

let quota_feasibility =
  {
    name = "quota";
    doc = "every node covered at most capacity(i) times";
    run =
      (fun inst ->
        let n = Graph.node_count inst.graph in
        if Array.length inst.capacity <> n then
          [
            Violation.v ~checker:"quota" Violation.Global
              ~expected:(Printf.sprintf "capacity vector of length %d" n)
              ~actual:(Printf.sprintf "length %d" (Array.length inst.capacity));
          ]
        else begin
          let d = degrees inst in
          let out = ref [] in
          for i = n - 1 downto 0 do
            if inst.capacity.(i) < 0 then
              out :=
                Violation.v ~checker:"quota" (Violation.Node i)
                  ~expected:"capacity >= 0"
                  ~actual:(Printf.sprintf "capacity %d" inst.capacity.(i))
                :: !out
            else if d.(i) > inst.capacity.(i) then
              out :=
                Violation.v ~checker:"quota" (Violation.Node i)
                  ~expected:(Printf.sprintf "at most %d connections" inst.capacity.(i))
                  ~actual:(Printf.sprintf "%d connections" d.(i))
                :: !out
          done;
          !out
        end);
  }

let weight_symmetry =
  {
    name = "weight-symmetry";
    doc = "w(i,j) = dS_i(j) + dS_j(i) (eq. 9), both orientations";
    run =
      (fun inst ->
        match inst.prefs with
        | None -> []
        | Some prefs ->
            let side i j =
              let l = Preference.list_len prefs i and b = Preference.quota prefs i in
              if l = 0 || b = 0 then 0.0
              else
                Satisfaction.static_delta ~quota:b ~list_len:l
                  ~rank:(Preference.rank prefs i j)
            in
            let out = ref [] in
            Graph.iter_edges inst.graph (fun eid u v ->
                let expect = side u v +. side v u in
                let got = Weights.weight inst.weights eid in
                if Float.abs (expect -. got) > 1e-9 || Float.is_nan got then
                  out :=
                    Violation.v ~checker:"weight-symmetry" (Violation.Edge (u, v))
                      ~expected:
                        (Printf.sprintf "w(%d,%d) = %.6f = dS_%d(%d) + dS_%d(%d)" u v
                           expect u v v u)
                      ~actual:(Printf.sprintf "%.6f" got)
                    :: !out);
            List.rev !out);
  }

let satisfaction_range =
  {
    name = "satisfaction-range";
    doc = "S_i in [0, 1] and finite (eq. 1)";
    run =
      (fun inst ->
        match inst.prefs with
        | None -> []
        | Some prefs ->
            let conns = connection_lists inst in
            let out = ref [] in
            for i = Graph.node_count inst.graph - 1 downto 0 do
              match Preference.satisfaction prefs i conns.(i) with
              | s ->
                  if Float.is_nan s || s < -1e-9 || s > 1.0 +. 1e-9 then
                    out :=
                      Violation.v ~checker:"satisfaction-range" (Violation.Node i)
                        ~expected:"S_i in [0, 1]"
                        ~actual:(Printf.sprintf "S_i = %.6f" s)
                      :: !out
              | exception Invalid_argument msg ->
                  (* eq. 1 is undefined on this connection list (e.g. it
                     overflows the quota) — that is itself a violation *)
                  out :=
                    Violation.v ~checker:"satisfaction-range" (Violation.Node i)
                      ~expected:"S_i in [0, 1]"
                      ~actual:(Printf.sprintf "S_i undefined (%s)" msg)
                    :: !out
            done;
            !out);
  }

(* greedy-stability core shared by no_blocking_pair / maximality /
   theorem2_certificate *)
let blocking_pairs inst =
  let sel = selected inst in
  let d = degrees inst in
  let residual i = cap inst i - d.(i) in
  let lightest_selected u =
    let best = ref (-1) in
    Graph.iter_neighbors inst.graph u (fun _ eid ->
        if sel.(eid) then
          if !best < 0 || Weights.heavier inst.weights !best eid then best := eid);
    !best
  in
  let out = ref [] in
  Graph.iter_edges inst.graph (fun eid u v ->
      if not sel.(eid) then begin
        let beats x =
          if residual x > 0 then cap inst x > 0
          else begin
            let light = lightest_selected x in
            light >= 0 && Weights.heavier inst.weights eid light
          end
        in
        if beats u && beats v then out := (eid, u, v) :: !out
      end);
  List.rev !out

let no_blocking_pair =
  {
    name = "blocking-pair";
    doc = "no unselected edge beats the lightest selected edge at both endpoints";
    run =
      (fun inst ->
        List.map
          (fun (eid, u, v) ->
            Violation.v ~checker:"blocking-pair" (Violation.Edge (u, v))
              ~expected:"no weighted blocking pair (Lemma 4/6 invariant)"
              ~actual:
                (Printf.sprintf "unselected edge of weight %.6f blocks at both ends"
                   (Weights.weight inst.weights eid)))
          (blocking_pairs inst));
  }

let unmatched_augmenting inst =
  let sel = selected inst in
  let d = degrees inst in
  let out = ref [] in
  Graph.iter_edges inst.graph (fun eid u v ->
      if
        (not sel.(eid))
        && cap inst u - d.(u) > 0
        && cap inst v - d.(v) > 0
      then out := (eid, u, v) :: !out);
  List.rev !out

let maximality =
  {
    name = "maximality";
    doc = "no unselected edge has residual capacity at both endpoints";
    run =
      (fun inst ->
        List.map
          (fun (_, u, v) ->
            Violation.v ~checker:"maximality" (Violation.Edge (u, v))
              ~expected:"matching is maximal"
              ~actual:"unselected edge with residual capacity at both endpoints")
          (unmatched_augmenting inst));
  }

let exact_weight_limit = 24
let exact_satisfaction_limit = 16

let selected_weight inst =
  List.fold_left
    (fun acc eid ->
      if valid_id inst eid then acc +. Weights.weight inst.weights eid else acc)
    0.0 inst.edges

let theorem2_certificate =
  {
    name = "theorem2";
    doc = "w(M) >= 1/2 w(OPT) (measured when small, structural otherwise)";
    run =
      (fun inst ->
        if not (basic_feasible inst) then []
        else if Graph.edge_count inst.graph <= exact_weight_limit then begin
          let opt =
            Exact.max_weight_value ~max_edges:exact_weight_limit inst.weights
              ~capacity:inst.capacity
          in
          let got = selected_weight inst in
          if got +. 1e-9 < 0.5 *. opt then
            [
              Violation.v ~checker:"theorem2" Violation.Global
                ~expected:(Printf.sprintf "w(M) >= 1/2 w(OPT) = %.6f" (0.5 *. opt))
                ~actual:(Printf.sprintf "w(M) = %.6f" got);
            ]
          else []
        end
        else begin
          (* structural certificate: maximal + greedy-stable is exactly
             the premise of the Theorem 2 charging argument *)
          let stable = blocking_pairs inst = [] in
          let maximal = unmatched_augmenting inst = [] in
          if stable && maximal then []
          else
            [
              Violation.v ~checker:"theorem2" Violation.Global
                ~expected:"maximality + greedy stability (Theorem 2 premise)"
                ~actual:
                  (Printf.sprintf "maximal=%b, greedy-stable=%b" maximal stable);
            ]
        end);
  }

let theorem3_certificate =
  {
    name = "theorem3";
    doc = "S(M) >= 1/4 (1 + 1/b_max) S(OPT), measured on small instances";
    run =
      (fun inst ->
        match inst.prefs with
        | None -> []
        | Some prefs ->
            if
              (not (basic_feasible inst))
              || Graph.edge_count inst.graph > exact_satisfaction_limit
            then []
            else begin
              let _, opt =
                Exact.max_satisfaction_bmatching ~max_edges:exact_satisfaction_limit
                  prefs
              in
              let got =
                Preference.total_satisfaction prefs (connection_lists inst)
              in
              let bmax = Preference.max_quota prefs in
              let bound = 0.25 *. (1.0 +. (1.0 /. float_of_int bmax)) in
              if got +. 1e-9 < bound *. opt then
                [
                  Violation.v ~checker:"theorem3" Violation.Global
                    ~expected:
                      (Printf.sprintf "S(M) >= %.4f S(OPT) = %.6f" bound
                         (bound *. opt))
                    ~actual:(Printf.sprintf "S(M) = %.6f" got);
                ]
              else []
            end);
  }

let all =
  [
    edge_validity;
    quota_feasibility;
    weight_symmetry;
    satisfaction_range;
    no_blocking_pair;
    maximality;
    theorem2_certificate;
    theorem3_certificate;
  ]

let names = List.map (fun c -> c.name) all
let find name = List.find_opt (fun c -> c.name = name) all

(* ------------------------------------------------------------------ *)
(* running and reporting                                                *)
(* ------------------------------------------------------------------ *)

type entry = { checker : t; violations : Violation.t list }
type report = { entries : entry list }

let run ?only inst =
  let checkers =
    match only with
    | None -> all
    | Some names ->
        List.map
          (fun n ->
            match find n with
            | Some c -> c
            | None -> invalid_arg (Printf.sprintf "Checker.run: unknown checker %S" n))
          names
  in
  { entries = List.map (fun c -> { checker = c; violations = c.run inst }) checkers }

let ok r = List.for_all (fun e -> e.violations = []) r.entries
let violations r = List.concat_map (fun e -> e.violations) r.entries
let violation_count r = List.length (violations r)

let pp_report ppf r =
  List.iter
    (fun e ->
      match e.violations with
      | [] -> Format.fprintf ppf "%-18s ok@." e.checker.name
      | vs ->
          Format.fprintf ppf "%-18s %d violation%s@." e.checker.name (List.length vs)
            (if List.length vs = 1 then "" else "s");
          List.iter (fun v -> Format.fprintf ppf "  %a@." Violation.pp v) vs)
    r.entries

exception Check_failed of report

let () =
  Printexc.register_printer (function
    | Check_failed r ->
        Some
          (Format.asprintf "Check_failed: %d invariant violation(s)@.%a"
             (violation_count r) pp_report r)
    | _ -> None)

let assert_ok ?only inst =
  let r = run ?only inst in
  if not (ok r) then raise (Check_failed r)

let report_to_string r = Format.asprintf "%a" pp_report r
