(** Exhaustive interleaving explorer for asynchronous message protocols.

    {!Owp_simnet.Simnet} executes {e one} schedule per seed: delays are
    sampled, messages are delivered in virtual-time order.  This module
    instead model-checks a protocol: it enumerates {e every} per-link
    FIFO delivery order reachable from the initial sends, so properties
    like Lemma 5 (termination on all schedules) and Lemma 6 (the locked
    edge set is schedule-independent) become universally quantified
    statements on small instances instead of sampled observations.

    A configuration is the protocol state plus the multiset of
    in-flight messages, organised as one FIFO queue per directed link
    (matching the simulator's [fifo:true] semantics).  From each
    configuration, delivering the head of any non-empty link is an
    enabled transition.  Two different interleavings that reach the
    same configuration have identical futures, so the search memoises
    configurations by a canonical fingerprint — the
    transposition-table cut that keeps the search polynomial in the
    number of {e reachable configurations} rather than the (factorial)
    number of schedules.  Distinct complete schedules are still counted
    exactly (by dynamic programming over the memo table).

    The explorer is generic: protocols are supplied as a first-class
    record of transition functions, so the {e production} protocol code
    (e.g. [Lid.deliver]) is what gets explored, not a model of it. *)

type 'm send = { src : int; dst : int; payload : 'm }

type ('s, 'm) protocol = {
  init : unit -> 's * 'm send list;
      (** fresh protocol state and the initial message burst *)
  deliver : 's -> src:int -> dst:int -> 'm -> 'm send list;
      (** deliver one message, mutating the state in place, and return
          the messages it caused to be sent (in send order) *)
  copy : 's -> 's;  (** deep copy, for branching *)
  fingerprint : 's -> string;
      (** canonical encoding: equal fingerprints must imply equal
          future behaviour *)
  quiesced : 's -> bool;  (** has the protocol terminated cleanly? *)
  stragglers : 's -> int list;
      (** nodes that are not done (reported on deadlock) *)
  observe : 's -> int list;
      (** the outcome to compare across schedules (e.g. locked edge
          ids, sorted) *)
  msg_tag : 'm -> int;  (** injective message encoding for fingerprints *)
  give_up : ('s -> self:int -> peer:int -> 'm send list) option;
      (** [give_up st ~self ~peer]: the reliable-transport escape hatch —
          [self] has exhausted its retries towards [peer] and treats it
          as dead (see {!Owp_simnet.Transport}); mutate the state as the
          protocol's recovery dictates and return the sends it causes.
          [None] disables adversarial link-failure exploration. *)
}

type 'm adversary = {
  byz : int;  (** the node the adversary controls *)
  injections : 'm send list;
      (** its repertoire: messages it may put on the wire, from any
          [src = byz] towards any destination (stranger sends included);
          each injection spends one unit of [budget] *)
  budget : int;  (** total number of injections across a schedule *)
}
(** A Byzantine node under exhaustive exploration.  The node's honest
    state machine is disabled by the protocol wrapper (deliveries to it
    are no-ops), and in exchange the explorer branches, at {e every}
    configuration, on each repertoire message the adversary might send
    next — so all interleavings of up to [budget] adversarial sends with
    ordinary deliveries are covered, including the strategy of staying
    silent forever.  When the network idles with stuck correct nodes,
    the protocol's [give_up] transition is applied towards [byz] for
    every straggler (the quiet-network failure-detector round the
    guarded driver implements); without a [give_up] the stuck
    configuration is recorded as a termination violation. *)

type stats = {
  configurations : int;  (** distinct configurations explored *)
  schedules : int;  (** complete FIFO schedules covered (saturating) *)
  dedup_hits : int;  (** transposition-table hits *)
  max_in_flight : int;  (** peak number of undelivered messages *)
  truncated : bool;  (** search stopped at [max_configs] *)
}

type verdict = {
  stats : stats;
  observations : int list list;
      (** distinct terminal observations, in discovery order; a
          schedule-independent protocol yields exactly one *)
  violations : Violation.t list;
      (** deadlocks (termination failures), observation divergence,
          and truncation, as structured reports *)
}

val schedule_cap : int
(** Saturation bound for the schedule count. *)

val explore :
  ?max_configs:int ->
  ?max_link_failures:int ->
  ?adversary:'m adversary ->
  ?on_terminal:('s -> Violation.t list) ->
  ('s, 'm) protocol ->
  verdict
(** Exhaustively explore all FIFO interleavings.  [max_configs]
    (default 2_000_000) bounds the transposition table; exceeding it
    yields a [truncated] verdict with a violation rather than an
    endless search.

    [max_link_failures] (default 0) additionally arms an adversary that
    may, at any configuration with a message in flight on some link,
    permanently fail that link: the in-flight messages die, and — since
    a dead direction also starves the reverse direction of ACKs — both
    endpoints run the protocol's [give_up] recovery.  Every interleaving
    of up to [max_link_failures] such failures with ordinary deliveries
    is explored.  Termination (Lemma 5) is still demanded of every
    schedule; outcome uniqueness (Lemma 6) is only demanded when
    [max_link_failures = 0], because the surviving edge set legitimately
    depends on which links died.

    [adversary], when given, arms a Byzantine node (see {!type-adversary});
    outcome uniqueness is then also waived, since the terminal edge set
    legitimately depends on what the adversary said.  [on_terminal st]
    is evaluated at every terminal configuration (clean or deadlocked)
    and its violations — deduplicated across schedules — are added to
    the verdict; this is how per-terminal-state certificates like the
    bounded-damage check ({!Byzantine}) are quantified over all
    interleavings.
    @raise Invalid_argument if [max_link_failures > 0] and the protocol
    has no [give_up] transition. *)

val ok : verdict -> bool
(** No violations. *)

val pp_verdict : Format.formatter -> verdict -> unit
