(** Composable invariant diagnostics for overlay matchings.

    A {!t} is a named diagnostic that inspects an {!instance} — a graph
    with eq. 9 weights, a capacity vector, optionally the preference
    system the weights came from, and a {e raw} candidate edge set — and
    returns structured {!Violation.t} reports.  The edge set is a plain
    id list rather than a validated {!Owp_matching.Bmatching.t} exactly
    so that corrupted matchings (quota overflows, duplicated edges) can
    be represented and diagnosed instead of rejected at construction.

    The built-in registry covers the paper's structural guarantees:
    quota feasibility, eq. 9 weight symmetry, satisfaction range
    [S_i ∈ [0,1]], absence of weighted blocking pairs (the Lemma 4/6
    invariant), maximality, and measured Theorem 2 / Theorem 3 bound
    certificates against the exact optimum on small instances. *)

type instance = {
  graph : Graph.t;
  weights : Weights.t;
  capacity : int array;
  prefs : Preference.t option;
      (** needed by the eq. 9 / satisfaction / Theorem 3 checkers;
          checkers that need it pass vacuously when absent *)
  edges : int list;  (** candidate edge ids, possibly infeasible *)
}

val instance :
  ?prefs:Preference.t -> Weights.t -> capacity:int array -> edges:int list -> instance

val of_matching : ?prefs:Preference.t -> Weights.t -> Owp_matching.Bmatching.t -> instance
(** Instance wrapping an already-validated matching (capacities are
    taken from the matching). *)

type t = {
  name : string;
  doc : string;
  run : instance -> Violation.t list;
}

(** {2 Built-in diagnostics} *)

val edge_validity : t
(** Edge ids are in range and not duplicated. *)

val quota_feasibility : t
(** Every node is covered at most [capacity.(i)] times (§2 quotas). *)

val weight_symmetry : t
(** Eq. 9: [w(i,j) = ΔS̄_i(j) + ΔS̄_j(i)], recomputed from the
    preference lists for both orientations — catches asymmetric or
    corrupted weight tables.  Vacuous without [prefs]. *)

val satisfaction_range : t
(** Eq. 1: [S_i ∈ [0, 1]] and finite for every node, evaluated on the
    candidate edge set.  Vacuous without [prefs]. *)

val no_blocking_pair : t
(** No unselected edge beats the lightest selected edge at both
    endpoints (or finds residual capacity there) — the greedy-stability
    invariant behind Lemmas 4 and 6.  Reports {e every} blocking pair. *)

val maximality : t
(** No unselected edge has residual capacity at both endpoints. *)

val theorem2_certificate : t
(** Theorem 2: [w(M) ≥ ½ · w(OPT)].  Measured against the exact
    maximum-weight matching when the instance is small enough
    (≤ {!exact_weight_limit} edges); on larger instances falls back to
    the structural conditions (maximality + greedy stability) under
    which the charging argument applies. *)

val theorem3_certificate : t
(** Theorem 3: [S(M) ≥ ¼(1 + 1/b_max) · S(OPT)], measured against the
    exact satisfaction optimum.  Vacuous without [prefs] or above
    {!exact_satisfaction_limit} edges. *)

val exact_weight_limit : int
val exact_satisfaction_limit : int

val all : t list
(** The full registry, in reporting order. *)

val names : string list
val find : string -> t option

(** {2 Running checkers and reporting} *)

type entry = { checker : t; violations : Violation.t list }
type report = { entries : entry list }

val run : ?only:string list -> instance -> report
(** Run the registry (or the [only] subset, by name) on an instance.
    @raise Invalid_argument on an unknown checker name in [only]. *)

val ok : report -> bool
val violations : report -> Violation.t list
val violation_count : report -> int
val pp_report : Format.formatter -> report -> unit

exception Check_failed of report
(** Raised by {!assert_ok}; the payload carries the full report. *)

val assert_ok : ?only:string list -> instance -> unit
val report_to_string : report -> string
