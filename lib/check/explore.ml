type 'm send = { src : int; dst : int; payload : 'm }

type ('s, 'm) protocol = {
  init : unit -> 's * 'm send list;
  deliver : 's -> src:int -> dst:int -> 'm -> 'm send list;
  copy : 's -> 's;
  fingerprint : 's -> string;
  quiesced : 's -> bool;
  stragglers : 's -> int list;
  observe : 's -> int list;
  msg_tag : 'm -> int;
  give_up : ('s -> self:int -> peer:int -> 'm send list) option;
}

type 'm adversary = { byz : int; injections : 'm send list; budget : int }

type stats = {
  configurations : int;
  schedules : int;
  dedup_hits : int;
  max_in_flight : int;
  truncated : bool;
}

type verdict = {
  stats : stats;
  observations : int list list;
  violations : Violation.t list;
}

module LinkMap = Map.Make (struct
  type t = int * int

  let compare = compare
end)

module PairSet = Set.Make (struct
  type t = int * int

  let compare = compare
end)

let schedule_cap = max_int / 4
let sat_add a b = if a >= schedule_cap - b then schedule_cap else a + b

exception Truncated

let unordered (a, b) = if a <= b then (a, b) else (b, a)

let explore ?(max_configs = 2_000_000) ?(max_link_failures = 0) ?adversary
    ?on_terminal p =
  if max_link_failures > 0 && p.give_up = None then
    invalid_arg "Explore.explore: link failures require a give_up transition";
  let memo : (string, int) Hashtbl.t = Hashtbl.create 4096 in
  let obs_seen = Hashtbl.create 8 in
  let obs_order = ref [] in
  let deadlock_sets = Hashtbl.create 4 in
  let terminal_violations = Hashtbl.create 8 in
  let dedup_hits = ref 0 in
  let max_in_flight = ref 0 in
  (* queues hold only non-empty message lists, head = next delivery;
     sends towards a failed link vanish (the sender's transport already
     gave the peer up) *)
  let enqueue dead q s =
    if PairSet.mem (unordered (s.src, s.dst)) dead then q
    else
      LinkMap.update (s.src, s.dst)
        (function None -> Some [ s.payload ] | Some l -> Some (l @ [ s.payload ]))
        q
  in
  let config_key st q dead budget abudget =
    let b = Buffer.create 128 in
    Buffer.add_string b (p.fingerprint st);
    Buffer.add_char b '#';
    LinkMap.iter
      (fun (s, d) msgs ->
        Buffer.add_string b (string_of_int s);
        Buffer.add_char b '.';
        Buffer.add_string b (string_of_int d);
        Buffer.add_char b ':';
        List.iter
          (fun m ->
            Buffer.add_string b (string_of_int (p.msg_tag m));
            Buffer.add_char b ',')
          msgs;
        Buffer.add_char b ';')
      q;
    if adversary <> None then begin
      Buffer.add_char b '@';
      Buffer.add_string b (string_of_int abudget)
    end;
    if max_link_failures > 0 then begin
      Buffer.add_char b '!';
      Buffer.add_string b (string_of_int budget);
      PairSet.iter
        (fun (a, c) ->
          Buffer.add_char b '/';
          Buffer.add_string b (string_of_int a);
          Buffer.add_char b '-';
          Buffer.add_string b (string_of_int c))
        dead
    end;
    Buffer.contents b
  in
  let in_flight q = LinkMap.fold (fun _ l acc -> acc + List.length l) q 0 in
  let terminal st =
    if not (p.quiesced st) then begin
      let ss = p.stragglers st in
      if not (Hashtbl.mem deadlock_sets ss) then Hashtbl.add deadlock_sets ss ()
    end;
    let ob = p.observe st in
    if not (Hashtbl.mem obs_seen ob) then begin
      Hashtbl.add obs_seen ob ();
      obs_order := ob :: !obs_order
    end;
    (match on_terminal with
    | Some f -> List.iter (fun v -> Hashtbl.replace terminal_violations v ()) (f st)
    | None -> ());
    1
  in
  let rec go st q dead budget abudget =
    let key = config_key st q dead budget abudget in
    match Hashtbl.find_opt memo key with
    | Some c ->
        incr dedup_hits;
        c
    | None ->
        if Hashtbl.length memo >= max_configs then raise Truncated;
        let inject acc =
          (* the adversary may spend injection budget at any moment;
             each repertoire message is one branch *)
          match adversary with
          | Some adv when abudget > 0 && not (p.quiesced st) ->
              List.fold_left
                (fun acc inj ->
                  sat_add acc (go st (enqueue dead q inj) dead budget (abudget - 1)))
                acc adv.injections
          | _ -> acc
        in
        let count =
          if LinkMap.is_empty q then begin
            (* an idle network: either everyone terminated, or the stuck
               nodes run their quiet-network give-up round towards the
               Byzantine node (the idealized failure-detector the guarded
               driver implements), or the adversary speaks up again *)
            let quiet_moves =
              if p.quiesced st then []
              else
                match (adversary, p.give_up) with
                | Some adv, Some give_up ->
                    let st' = p.copy st in
                    let sends =
                      List.concat_map
                        (fun s -> give_up st' ~self:s ~peer:adv.byz)
                        (p.stragglers st)
                    in
                    if sends = [] && p.fingerprint st' = p.fingerprint st then []
                    else [ (st', sends) ]
                | _ -> []
            in
            if p.quiesced st then terminal st
            else begin
              (* the adversary staying silent forever is always one of
                 the explored strategies: it leads into the quiet-round
                 recovery when the protocol has one, and to a genuine
                 (recorded) deadlock when it does not *)
              let c0 =
                if quiet_moves = [] then terminal st
                else
                  List.fold_left
                    (fun acc (st', sends) ->
                      let q' = List.fold_left (enqueue dead) LinkMap.empty sends in
                      sat_add acc (go st' q' dead budget abudget))
                    0 quiet_moves
              in
              inject c0
            end
          end
          else begin
            max_in_flight := max !max_in_flight (in_flight q);
            let deliveries =
              LinkMap.fold
                (fun (src, dst) msgs acc ->
                  match msgs with
                  | [] -> acc (* unreachable: queues are non-empty by invariant *)
                  | m :: rest ->
                      let st' = p.copy st in
                      let sends = p.deliver st' ~src ~dst m in
                      let q' =
                        if rest = [] then LinkMap.remove (src, dst) q
                        else LinkMap.add (src, dst) rest q
                      in
                      let q' = List.fold_left (enqueue dead) q' sends in
                      sat_add acc (go st' q' dead budget abudget))
                q 0
            in
            let deliveries = inject deliveries in
            (* adversarial link failure: the in-flight head of (src, dst)
               is lost for good and retries are exhausted, killing the
               link.  Loss of the data direction also starves the reverse
               direction of ACKs, so both transports give up: the whole
               link dies and both endpoints run their give-up recovery. *)
            if budget > 0 then
              LinkMap.fold
                (fun (src, dst) _ acc ->
                  let link = unordered (src, dst) in
                  if PairSet.mem link dead then acc
                  else begin
                    let give_up = Option.get p.give_up in
                    let dead' = PairSet.add link dead in
                    let q' = LinkMap.remove (src, dst) (LinkMap.remove (dst, src) q) in
                    let st' = p.copy st in
                    let at_src = give_up st' ~self:src ~peer:dst in
                    let at_dst = give_up st' ~self:dst ~peer:src in
                    let sends = at_src @ at_dst in
                    let q' = List.fold_left (enqueue dead') q' sends in
                    sat_add acc (go st' q' dead' (budget - 1) abudget)
                  end)
                q deliveries
            else deliveries
          end
        in
        Hashtbl.add memo key count;
        count
  in
  let st0, sends0 = p.init () in
  let q0 = List.fold_left (enqueue PairSet.empty) LinkMap.empty sends0 in
  let abudget0 = match adversary with Some a -> a.budget | None -> 0 in
  let schedules, truncated =
    match go st0 q0 PairSet.empty max_link_failures abudget0 with
    | n -> (n, false)
    | exception Truncated -> (0, true)
  in
  let violations = ref [] in
  if truncated then
    violations :=
      [
        Violation.v ~checker:"explore-truncated" Violation.Global
          ~expected:(Printf.sprintf "at most %d reachable configurations" max_configs)
          ~actual:"state space exceeded the bound; verdict is partial";
      ];
  List.iter
    (fun stragglers ->
      List.iter
        (fun i ->
          violations :=
            Violation.v ~checker:"explore-termination" (Violation.Node i)
              ~expected:"node quiesced on every schedule (Lemma 5)"
              ~actual:"pending protocol obligations after all messages were delivered"
            :: !violations)
        stragglers)
    (List.sort compare (Hashtbl.fold (fun s () acc -> s :: acc) deadlock_sets []));
  List.iter
    (fun v -> violations := v :: !violations)
    (List.sort compare
       (Hashtbl.fold (fun v () acc -> v :: acc) terminal_violations []));
  let observations = List.rev !obs_order in
  (* with adversarial link failures or a Byzantine node the terminal
     edge set legitimately depends on which links died / what the
     adversary chose to say; schedule-independence (Lemma 6) is only
     demanded of the failure-free honest search *)
  (match observations with
  | [] | [ _ ] -> ()
  | _ when max_link_failures > 0 || adversary <> None -> ()
  | many ->
      violations :=
        Violation.v ~checker:"explore-divergence" Violation.Global
          ~expected:"one terminal outcome across all schedules (Lemma 6)"
          ~actual:(Printf.sprintf "%d distinct terminal outcomes" (List.length many))
        :: !violations);
  {
    stats =
      {
        configurations = Hashtbl.length memo;
        schedules;
        dedup_hits = !dedup_hits;
        max_in_flight = !max_in_flight;
        truncated;
      };
    observations;
    violations = List.rev !violations;
  }

let ok v = v.violations = []

let pp_verdict ppf v =
  Format.fprintf ppf "configurations     : %d@." v.stats.configurations;
  if v.stats.schedules >= schedule_cap then
    Format.fprintf ppf "schedules          : >= %d (saturated)@." schedule_cap
  else Format.fprintf ppf "schedules          : %d@." v.stats.schedules;
  Format.fprintf ppf "dedup hits         : %d@." v.stats.dedup_hits;
  Format.fprintf ppf "max in flight      : %d@." v.stats.max_in_flight;
  Format.fprintf ppf "terminal outcomes  : %d@." (List.length v.observations);
  match v.violations with
  | [] -> Format.fprintf ppf "violations         : none@."
  | vs ->
      Format.fprintf ppf "violations         : %d@." (List.length vs);
      List.iter (fun x -> Format.fprintf ppf "  %a@." Violation.pp x) vs
