type instance = {
  weights : Weights.t;
  prefs : Preference.t option;
  capacity : int array;
  edges : int list;
  budget : float;
  reference : int list option;
}

let instance ?prefs ?reference weights ~capacity ~budget ~edges =
  if budget <= 0.0 then invalid_arg "Anytime.instance: budget must be positive";
  { weights; prefs; capacity; edges; budget; reference }

type certificate = {
  feasible : bool;
  violations : Violation.t list;
  blocking_pairs : int;
  matched_edges : int;
  weight : float;
  satisfaction : float option;
  weight_retained : float option;
  satisfaction_retained : float option;
  prefix_of_reference : bool option;
  budget : float;
}

let name = "anytime-cutoff"

let doc =
  "a deadline-bounded run serves a feasible partial matching whose residual \
   blocking pairs and retained weight/satisfaction are measured, not asserted"

let total_weight w edges = List.fold_left (fun acc e -> acc +. Weights.weight w e) 0.0 edges

let total_satisfaction prefs g edges =
  let n = Graph.node_count g in
  let conns = Array.make n [] in
  List.iter
    (fun e ->
      let u, v = Graph.edge_endpoints g e in
      conns.(u) <- v :: conns.(u);
      conns.(v) <- u :: conns.(v))
    edges;
  Preference.total_satisfaction prefs conns

(* retained ratio with the 0/0 = 1 convention: an empty reference
   means there was nothing to retain *)
let ratio part whole = if whole <= 0.0 then 1.0 else part /. whole

let check inst =
  let g = Weights.graph inst.weights in
  let ci =
    Checker.instance ?prefs:inst.prefs inst.weights ~capacity:inst.capacity
      ~edges:inst.edges
  in
  (* feasibility is the hard claim at a cutoff; blocking pairs are the
     degradation being measured, so they are counted, not failed on.
     Satisfaction is only defined for feasible matchings (rank lists
     reject overfull nodes), so the quantitative fields stay [None] on
     an infeasible one instead of raising — the certificate is already
     void through [feasible]. *)
  let feas = Checker.run ~only:[ "edge-validity"; "quota" ] ci in
  let feasible = Checker.ok feas in
  let blocking =
    if feasible then Checker.violation_count (Checker.run ~only:[ "blocking-pair" ] ci)
    else 0
  in
  let weight = total_weight inst.weights inst.edges in
  let satisfaction =
    if feasible then Option.map (fun p -> total_satisfaction p g inst.edges) inst.prefs
    else None
  in
  let weight_retained =
    Option.map
      (fun r -> ratio weight (total_weight inst.weights r))
      inst.reference
  in
  let satisfaction_retained =
    match (inst.prefs, inst.reference) with
    | Some p, Some r when feasible ->
        Some (ratio (total_satisfaction p g inst.edges) (total_satisfaction p g r))
    | _ -> None
  in
  let prefix_of_reference =
    Option.map
      (fun r ->
        let m = Graph.edge_count g in
        let in_ref = Array.make (max m 1) false in
        List.iter (fun e -> if e >= 0 && e < m then in_ref.(e) <- true) r;
        List.for_all (fun e -> e >= 0 && e < m && in_ref.(e)) inst.edges)
      inst.reference
  in
  {
    feasible;
    violations = Checker.violations feas;
    blocking_pairs = blocking;
    matched_edges = List.length inst.edges;
    weight;
    satisfaction;
    weight_retained;
    satisfaction_retained;
    prefix_of_reference;
    budget = inst.budget;
  }

let certified c = c.feasible && c.prefix_of_reference <> Some false

let to_string c =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "anytime certificate @ budget %.3f: %s\n" c.budget
       (if certified c then "CERTIFIED" else "VOID"));
  Buffer.add_string b
    (Printf.sprintf "  served edges        %d (weight %.4f)\n" c.matched_edges
       c.weight);
  Option.iter
    (fun s -> Buffer.add_string b (Printf.sprintf "  satisfaction        %.4f\n" s))
    c.satisfaction;
  Buffer.add_string b
    (Printf.sprintf "  feasible            %b\n" c.feasible);
  Buffer.add_string b
    (Printf.sprintf "  blocking pairs      %d (residual, shrinking in budget)\n"
       c.blocking_pairs);
  Option.iter
    (fun r ->
      Buffer.add_string b (Printf.sprintf "  weight retained     %.1f%%\n" (100.0 *. r)))
    c.weight_retained;
  Option.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "  satisf. retained    %.1f%%\n" (100.0 *. r)))
    c.satisfaction_retained;
  Option.iter
    (fun p ->
      Buffer.add_string b
        (Printf.sprintf "  subset of full run  %s\n" (if p then "yes" else "NO")))
    c.prefix_of_reference;
  List.iter
    (fun v -> Buffer.add_string b ("  " ^ Violation.to_string v ^ "\n"))
    c.violations;
  Buffer.contents b
