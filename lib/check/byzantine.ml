type instance = {
  weights : Weights.t;
  capacity : int array;
  correct : bool array;
  edges : int list;
  consumed : int array;
  unterminated : int list;
  overclaimed : (int * int) list;
}

let name = "byzantine-damage"

let doc =
  "with <= f Byzantine peers: correct peers terminate, stay capacity-feasible, \
   and are locally heaviest on the correct subgraph (Lemma 6 relativized)"

let termination_violations inst =
  List.map
    (fun i ->
      Violation.v ~checker:"byzantine-termination" (Violation.Node i)
        ~expected:"every correct peer quiesces (Lemma 5 relativized)"
        ~actual:"correct peer with pending protocol obligations")
    inst.unterminated

let restriction_violations inst =
  let g = Weights.graph inst.weights in
  let m = Graph.edge_count g in
  let seen = Array.make (max m 1) false in
  List.filter_map
    (fun eid ->
      if eid < 0 || eid >= m then
        Some
          (Violation.v ~checker:"byzantine-restriction" Violation.Global
             ~expected:"matching edges are edges of the potential graph"
             ~actual:(Printf.sprintf "edge id %d out of range" eid))
      else begin
        let u, v = Graph.edge_endpoints g eid in
        if seen.(eid) then
          Some
            (Violation.v ~checker:"byzantine-restriction" (Violation.Edge (u, v))
               ~expected:"each edge selected at most once"
               ~actual:"duplicate edge in the restricted matching")
        else begin
          seen.(eid) <- true;
          if not (inst.correct.(u) && inst.correct.(v)) then
            Some
              (Violation.v ~checker:"byzantine-restriction" (Violation.Edge (u, v))
                 ~expected:"restricted matching touches only correct peers"
                 ~actual:"selected edge with a Byzantine endpoint")
          else None
        end
      end)
    inst.edges

(* restricted matching degree per node, from the (validated) edge list *)
let restricted_degrees inst =
  let g = Weights.graph inst.weights in
  let d = Array.make (Graph.node_count g) 0 in
  List.iter
    (fun eid ->
      if eid >= 0 && eid < Graph.edge_count g then begin
        let u, v = Graph.edge_endpoints g eid in
        d.(u) <- d.(u) + 1;
        d.(v) <- d.(v) + 1
      end)
    inst.edges;
  d

let feasibility_violations inst =
  let g = Weights.graph inst.weights in
  let d = restricted_degrees inst in
  let out = ref [] in
  for i = Graph.node_count g - 1 downto 0 do
    if inst.correct.(i) then begin
      if inst.consumed.(i) > inst.capacity.(i) then
        out :=
          Violation.v ~checker:"byzantine-feasibility" (Violation.Node i)
            ~expected:
              (Printf.sprintf "at most b_i = %d locked slots" inst.capacity.(i))
            ~actual:
              (Printf.sprintf "%d slots locked (Byzantine partners included)"
                 inst.consumed.(i))
          :: !out;
      if d.(i) > inst.consumed.(i) then
        out :=
          Violation.v ~checker:"byzantine-feasibility" (Violation.Node i)
            ~expected:"restricted matching degree within the node's locked slots"
            ~actual:
              (Printf.sprintf "%d matched edges but only %d slots accounted" d.(i)
                 inst.consumed.(i))
          :: !out
    end
  done;
  !out

(* Lemma 6 relativized: an unselected correct-correct edge may not beat
   the locked alternatives at both its endpoints.  Residual capacity is
   computed against ALL consumed slots — a slot wasted on a Byzantine
   partner is damage the f-bounded adversary is allowed, not evidence
   of a blocking pair — while the "lightest lock" challenge only ranges
   over correct-correct locks (the paper's eq. 9 weights of which are
   known and comparable). *)
let blocking_violations inst =
  let g = Weights.graph inst.weights in
  let m = Graph.edge_count g in
  let sel = Array.make (max m 1) false in
  List.iter (fun eid -> if eid >= 0 && eid < m then sel.(eid) <- true) inst.edges;
  let d = restricted_degrees inst in
  let lightest_selected u =
    let best = ref (-1) in
    Graph.iter_neighbors g u (fun _ eid ->
        if sel.(eid) then
          if !best < 0 || Weights.heavier inst.weights !best eid then best := eid);
    !best
  in
  let out = ref [] in
  Graph.iter_edges g (fun eid u v ->
      if (not sel.(eid)) && inst.correct.(u) && inst.correct.(v) then begin
        let beats x =
          let residual = inst.capacity.(x) - max inst.consumed.(x) d.(x) in
          if residual > 0 then inst.capacity.(x) > 0
          else begin
            let light = lightest_selected x in
            light >= 0 && Weights.heavier inst.weights eid light
          end
        in
        if beats u && beats v then
          out :=
            Violation.v ~checker:"byzantine-blocking-pair" (Violation.Edge (u, v))
              ~expected:
                "no unselected correct-correct edge beats the locked alternatives \
                 at both endpoints (Lemma 6 relativized)"
              ~actual:"edge preferred by both correct endpoints was left unmatched"
            :: !out
      end);
  List.rev !out

(* A slot locked to a peer whose bootstrap advertisement provably
   exceeded its public 1/b bound is avoidable damage: the claim was a
   verifiable lie at t = 0, so a guarded node never ranks (or proposes
   to) the advertiser, while an unguarded node hands it a slot.  The
   driver reports the (victim, liar) pairs; each one voids the
   bounded-damage certificate. *)
let overclaim_violations inst =
  List.map
    (fun (victim, liar) ->
      Violation.v ~checker:"byzantine-overclaim" (Violation.Edge (victim, liar))
        ~expected:
          "no slot locked to a peer whose advertised half-weight provably \
           exceeds its public 1/b bound"
        ~actual:
          (Printf.sprintf "correct peer %d locked over-claiming advertiser %d"
             victim liar))
    inst.overclaimed

let check ?(cutoff = false) inst =
  let g = Weights.graph inst.weights in
  let n = Graph.node_count g in
  if
    Array.length inst.capacity <> n
    || Array.length inst.correct <> n
    || Array.length inst.consumed <> n
  then invalid_arg "Byzantine.check: arity mismatch";
  termination_violations inst
  @ restriction_violations inst
  @ feasibility_violations inst
  (* at a deadline cutoff, unmatched mutually-preferred edges are the
     budget's measured degradation, not damage — the safety clauses
     (restriction, feasibility, overclaim) still hold exactly *)
  @ (if cutoff then [] else blocking_violations inst)
  @ overclaim_violations inst
