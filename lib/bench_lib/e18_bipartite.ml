(* E18 — exact approximation ratios at scale on bipartite instances.

   General-graph exact optima are only tractable tiny (E3/E6), but
   bipartite max-weight b-matching is polynomial via min-cost flow — so
   on client/server-style overlays we can measure LID's true weight
   ratio at thousands of nodes. *)

module Tbl = Owp_util.Tablefmt
module BM = Owp_matching.Bmatching
module Prng = Owp_util.Prng

let make_bipartite seed ~left ~right ~p ~quota =
  let rng = Prng.create seed in
  let g = Gen.random_bipartite rng ~left ~right ~p in
  let prefs = Preference.random rng g ~quota:(Preference.uniform_quota g quota) in
  let w = Weights.of_preference prefs in
  let capacity = Array.init (Graph.node_count g) (Preference.quota prefs) in
  (g, prefs, w, capacity)

let run ~quick =
  let sizes = if quick then [ (40, 60) ] else [ (40, 60); (150, 200); (400, 600) ] in
  let t =
    Tbl.create
      ~title:
        "E18: LID weight & satisfaction vs exact bipartite optimum (min-cost flow), p = 0.1, b = 3"
      [
        ("left+right", Tbl.Right);
        ("m", Tbl.Right);
        ("w(LID)/w(OPT)", Tbl.Right);
        ("S(LID)/S(OPT-w)", Tbl.Right);
        (">= 0.5", Tbl.Left);
      ]
  in
  List.iter
    (fun (left, right) ->
      let g, prefs, w, capacity =
        make_bipartite (left + right) ~left ~right ~p:0.1 ~quota:3
      in
      let lid = Owp_core.Lid.run ~seed:18 w ~capacity in
      let opt = Owp_matching.Exact.max_weight_bipartite w ~capacity ~left in
      let wr =
        let wo = BM.weight opt w in
        if Float.equal wo 0.0 then 1.0 else BM.weight lid.Owp_core.Lid.matching w /. wo
      in
      let sr =
        let so = Preference.total_satisfaction prefs (BM.connection_lists opt) in
        if Float.equal so 0.0 then 1.0
        else
          Preference.total_satisfaction prefs
            (BM.connection_lists lid.Owp_core.Lid.matching)
          /. so
      in
      Tbl.add_row t
        [
          Printf.sprintf "%d+%d" left right;
          Tbl.icell (Graph.edge_count g);
          Tbl.fcell wr;
          Tbl.fcell sr;
          (if wr >= 0.5 -. 1e-9 then "yes" else "VIOLATED");
        ])
    sizes;
  [ t ]

let exp =
  {
    Exp_common.id = "E18";
    title = "Exact ratios at scale (bipartite)";
    paper_ref = "Theorem 2 at scale (flow-exact baseline)";
    run;
  }
