(* E26 — self-stabilization under network weather: recovery after heal.

   A fault schedule perturbs a LID run mid-flight — a partition walls
   off a block of nodes, a flapping link comes and goes — and the claim
   under test is Dolev-style self-stabilization: once the last episode
   ends (T_heal), the run quiesces on its own and the served matching
   equals the crash-only LIC reference, with the recovery time
   (quiesce_at - T_heal) as the measured cost.  The ARQ transport plus
   the heal-aware detector (suspect/resume, patience suppression) are
   what make this true: a datagram run would lose the partitioned
   proposals forever.

   Three tables: E26a sweeps partition duration across graph families;
   E26b sweeps flap frequency on one family; E26c is the acceptance
   table the CI chaos gate mirrors. *)

module Tbl = Owp_util.Tablefmt
module Schedule = Owp_simnet.Schedule
module Run_config = Owp_core.Run_config
module Pipeline = Owp_core.Pipeline
module Stack = Owp_core.Stack
module Stabilize = Owp_check.Stabilize

let yn b = if b then "yes" else "NO"

let durations = [ 1.0; 2.0; 4.0; 8.0 ]
let flap_periods = [ 0.5; 1.0; 2.0; 4.0 ]

(* one scheduled run -> its stabilization certificate (present by
   construction: the schedule is non-empty) plus the schedule row of the
   layer table for the cut count *)
let scheduled_run inst sched =
  let cfg =
    Run_config.make ~engine:Run_config.Lid_reliable ~seed:26 ~schedule:sched ()
  in
  let out = Pipeline.run_config cfg inst.Workloads.prefs in
  let cert =
    match out.Pipeline.stabilize with
    | Some c -> c
    | None -> failwith "E26: scheduled run produced no certificate"
  in
  let cut =
    match out.Pipeline.detail with
    | Pipeline.Stack r -> Stack.counter r ~layer:"schedule" "cut"
    | Pipeline.Plain -> 0
  in
  (cert, cut)

let cert_row t ~label ~axis (cert : Stabilize.certificate) cut =
  Tbl.add_row t
    [
      label;
      axis;
      Tbl.fcell2 cert.Stabilize.t_heal;
      Tbl.fcell2 cert.Stabilize.recovery_time;
      Tbl.icell cut;
      yn cert.Stabilize.quiesced;
      yn cert.Stabilize.converged;
      yn (Stabilize.certified cert);
    ]

let run ~quick =
  let n = if quick then 60 else 200 in
  let mk family =
    Workloads.make ~seed:26 ~family ~pref_model:Workloads.Random_prefs ~n ~quota:3
  in
  (* E26a: one partition episode, block = first quarter of the nodes,
     starting at t = 2, of growing duration *)
  let t1 =
    Tbl.create
      ~title:
        (Printf.sprintf
           "E26a: recovery time vs partition duration (LID + ARQ, n = %d, b = 3; \
            block = n/4 nodes partitioned from t = 2)"
           n)
      [
        ("family", Tbl.Left);
        ("partition", Tbl.Right);
        ("T_heal", Tbl.Right);
        ("recovery", Tbl.Right);
        ("cut", Tbl.Right);
        ("quiesced", Tbl.Left);
        ("converged", Tbl.Left);
        ("certified", Tbl.Left);
      ]
  in
  let block = List.init (n / 4) (fun i -> i) in
  let partition_certs =
    List.map
      (fun family ->
        let inst = mk family in
        ( Workloads.family_name family,
          List.map
            (fun dur ->
              let sched =
                [
                  {
                    Schedule.from_ = 2.0;
                    until = 2.0 +. dur;
                    what = Schedule.Partition [ block ];
                  };
                ]
              in
              (dur, scheduled_run inst sched))
            durations ))
      Workloads.standard_families
  in
  List.iteri
    (fun i (name, rows) ->
      if i > 0 then Tbl.add_separator t1;
      List.iter
        (fun (dur, (cert, cut)) ->
          cert_row t1 ~label:name ~axis:(Tbl.fcell2 dur) cert cut)
        rows)
    partition_certs;
  (* E26b: a flapping backbone — every edge of the first node flaps over
     a fixed [2, 8] window, duty 50%, at growing frequency *)
  let t2 =
    Tbl.create
      ~title:
        "E26b: recovery time vs flap period (Gnm avg deg 8; node 0's links flap \
         over [2, 8], duty 0.5)"
      [
        ("family", Tbl.Left);
        ("period", Tbl.Right);
        ("T_heal", Tbl.Right);
        ("recovery", Tbl.Right);
        ("cut", Tbl.Right);
        ("quiesced", Tbl.Left);
        ("converged", Tbl.Left);
        ("certified", Tbl.Left);
      ]
  in
  let inst = mk (Workloads.Gnm_avg_deg 8.0) in
  let flap_links =
    let g = inst.Workloads.graph in
    Array.to_list (Graph.neighbors g 0)
    |> List.filter_map (fun (v, _eid) -> if v <> 0 then Some (0, v) else None)
  in
  let flap_certs =
    List.map
      (fun period ->
        let sched =
          [
            {
              Schedule.from_ = 2.0;
              until = 8.0;
              what = Schedule.Flap { links = flap_links; period; duty = 0.5 };
            };
          ]
        in
        (period, scheduled_run inst sched))
      flap_periods
  in
  List.iter
    (fun (period, (cert, cut)) ->
      cert_row t2 ~label:"Gnm avg deg 8" ~axis:(Tbl.fcell2 period) cert cut)
    flap_certs;
  (* E26c: acceptance — what the CI chaos gate re-checks *)
  let all_certs =
    List.concat_map (fun (_, rows) -> List.map (fun (_, (c, _)) -> c) rows)
      partition_certs
    @ List.map (fun (_, (c, _)) -> c) flap_certs
  in
  let all_certified = List.for_all Stabilize.certified all_certs in
  let max_recovery =
    List.fold_left
      (fun acc (c : Stabilize.certificate) -> Float.max acc c.Stabilize.recovery_time)
      0.0 all_certs
  in
  let cuts_bite =
    List.exists
      (fun (_, rows) -> List.exists (fun (_, (_, cut)) -> cut > 0) rows)
      partition_certs
  in
  let t3 =
    Tbl.create ~title:"E26c: acceptance" [ ("claim", Tbl.Left); ("holds", Tbl.Left) ]
  in
  Tbl.add_rows t3
    [
      [
        "every scheduled run certifies (quiesced + converged to crash-only LIC)";
        yn all_certified;
      ];
      [
        "partitions actually bite (messages cut on the wire)";
        yn cuts_bite;
      ];
      [
        Printf.sprintf "recovery is bounded: worst over all sweeps is %.2f"
          max_recovery;
        yn (max_recovery < 1000.0);
      ];
    ];
  [ t1; t2; t3 ]

let exp =
  {
    Exp_common.id = "E26";
    title = "Self-stabilization: recovery after partitions and flapping links";
    paper_ref = "Dolev, Self-Stabilization (convergence after heal)";
    run;
  }
