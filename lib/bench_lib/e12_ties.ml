(* E12 — ablation of §4's uniqueness requirement and weight combiner.

   (a) Ties: quantise weights onto a coarse grid so that many edges
   collide; the identity tie-break keeps the order total, and LID must
   still terminate and equal LIC.
   (b) Combiner: eq. 9 sums the two endpoint ΔS̄ values; Min and
   Product are plausible-looking alternatives without the additive
   decomposition — measure the satisfaction they actually deliver. *)

module Tbl = Owp_util.Tablefmt
module BM = Owp_matching.Bmatching

let quantize w levels =
  let g = Weights.graph w in
  let arr =
    Array.init (Graph.edge_count g) (fun e ->
        let x = Weights.weight w e in
        Float.round (x *. float_of_int levels) /. float_of_int levels)
  in
  Weights.of_array g arr

let run ~quick =
  let n = if quick then 150 else 800 in
  let t1 =
    Tbl.create
      ~title:
        (Printf.sprintf
           "E12a: tie-heavy weights (quantised); LID still terminates and equals LIC (n = %d)"
           n)
      [
        ("quantisation levels", Tbl.Right);
        ("distinct weights", Tbl.Right);
        ("edges", Tbl.Right);
        ("LID terminated", Tbl.Left);
        ("LID = LIC", Tbl.Left);
      ]
  in
  let inst =
    Workloads.make ~seed:3 ~family:(Workloads.Gnm_avg_deg 8.0)
      ~pref_model:Workloads.Random_prefs ~n ~quota:3
  in
  List.iter
    (fun levels ->
      let wq = quantize inst.weights levels in
      let lic = Owp_core.Lic.run wq ~capacity:inst.capacity in
      let lid = Owp_core.Lid.run ~seed:11 wq ~capacity:inst.capacity in
      Tbl.add_row t1
        [
          Tbl.icell levels;
          Tbl.icell (Weights.distinct_weights wq);
          Tbl.icell (Graph.edge_count inst.graph);
          Exp_common.quiescence_cell lid;
          (if BM.equal lid.Owp_core.Lid.matching lic then "yes" else "NO");
        ])
    [ 1000; 100; 10; 2; 1 ];
  let t2 =
    Tbl.create
      ~title:"E12b: weight combiner ablation (eq. 9 Sum vs Min vs Product), LIC, b = 3"
      [
        ("combiner", Tbl.Left);
        ("total satisfaction", Tbl.Right);
        ("vs Sum", Tbl.Right);
      ]
  in
  let sat_of combiner =
    let w = Weights.of_preference ~combiner inst.prefs in
    let m = Owp_core.Lic.run w ~capacity:inst.capacity in
    Exp_common.total_satisfaction inst.prefs m
  in
  let s_sum = sat_of Weights.Sum in
  List.iter
    (fun (name, combiner) ->
      let s = sat_of combiner in
      Tbl.add_row t2
        [ name; Tbl.fcell s; Tbl.pct (if Float.equal s_sum 0.0 then 1.0 else s /. s_sum) ])
    [ ("Sum (eq. 9)", Weights.Sum); ("Min", Weights.Min); ("Product", Weights.Product) ];
  [ t1; t2 ]

let exp =
  {
    Exp_common.id = "E12";
    title = "Tie-breaking and combiner ablations";
    paper_ref = "§4 (unique weights); DESIGN ablations";
    run;
  }
