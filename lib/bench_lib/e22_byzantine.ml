(* E22 — adversarial peers: the protocol guard vs the vulnerable
   baseline (§7 "disruptive nodes", malicious half).

   Sweep adversary model x fraction x guard.  For each cell we run LID
   with a random subset of nodes handed to the adversary behaviour and
   report, averaged over seeds:

   - whether every correct peer terminated (the unguarded baseline
     visibly fails this under the liveness-violating adversary);
   - bounded-damage certificate violations (Owp_check.Byzantine);
   - satisfaction retained by the correct peers, as a fraction of what
     LIC would give them on the correct subgraph had the Byzantine
     peers merely crashed;
   - quarantine precision (false quarantines must be zero) and recall
     (quarantined Byzantine peers / detectable offenders);
   - slots correct peers wasted locking Byzantine partners, and the
     message overhead of guarding. *)

module Tbl = Owp_util.Tablefmt
module Adversary = Owp_simnet.Adversary
module Stack = Owp_core.Stack

let yn b = if b then "yes" else "NO"

(* the byzantine entry point at preference level: capacities are the
   quota vector, weights the eq. 4/5 symmetric construction *)
let run_byz ~seed ~guard ~adversaries prefs =
  let n = Graph.node_count (Preference.graph prefs) in
  let capacity = Array.init n (Preference.quota prefs) in
  let w = Weights.of_preference prefs in
  Stack.run ~seed ~adversaries ~guard ~prefs w ~capacity

let cells ~seeds ~prefs ~spec ~guard =
  let n = Graph.node_count (Preference.graph prefs) in
  let k = List.length seeds in
  let term = ref 0 and damage = ref 0 and quar = ref 0 and falseq = ref 0 in
  let offenders = ref 0 and caught = ref 0 and wasted = ref 0 and msgs = ref 0 in
  let retained = ref 0.0 and reference = ref 0.0 in
  List.iter
    (fun seed ->
      let rng = Owp_util.Prng.create (0xE22 + (7919 * seed)) in
      let adversaries = Adversary.assign rng ~n (Adversary.parse_spec spec) in
      let r = run_byz ~seed ~guard ~adversaries prefs in
      if r.Stack.all_terminated then incr term;
      damage := !damage + List.length r.Stack.damage;
      quar := !quar + r.Stack.quarantine_events;
      falseq := !falseq + r.Stack.false_quarantines;
      offenders := !offenders + r.Stack.byz_offenders;
      caught := !caught + r.Stack.byz_quarantined;
      wasted := !wasted + r.Stack.wasted_slots;
      msgs := !msgs + r.Stack.prop_count + r.Stack.rej_count + r.Stack.synthetic_rejects;
      retained := !retained +. Stack.satisfaction_of_correct prefs r;
      reference := !reference +. Stack.reference_satisfaction prefs ~correct:r.Stack.correct)
    seeds;
  let recall =
    if !offenders = 0 then "n/a"
    else Tbl.pct (float_of_int !caught /. float_of_int !offenders)
  in
  [
    yn guard;
    Printf.sprintf "%d/%d" !term k;
    Tbl.icell !damage;
    Tbl.pct (if Float.equal !reference 0.0 then 0.0 else !retained /. !reference);
    Tbl.icell (!quar / k);
    yn (!falseq = 0);
    recall;
    Tbl.icell (!wasted / k);
    Tbl.icell (!msgs / k);
  ]

let run ~quick =
  let n = if quick then 60 else 200 in
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3; 4; 5 ] in
  let inst =
    Workloads.make ~seed:22 ~family:(Workloads.Gnm_avg_deg 6.0)
      ~pref_model:Workloads.Random_prefs ~n ~quota:2
  in
  let prefs = inst.Workloads.prefs in
  let header =
    [
      ("model", Tbl.Left);
      ("frac", Tbl.Right);
      ("guard", Tbl.Left);
      ("correct done", Tbl.Right);
      ("damage", Tbl.Right);
      ("S retained", Tbl.Right);
      ("quarantines", Tbl.Right);
      ("precision", Tbl.Left);
      ("recall", Tbl.Left);
      ("wasted", Tbl.Right);
      ("msgs", Tbl.Right);
    ]
  in
  let t1 =
    Tbl.create
      ~title:
        (Printf.sprintf
           "E22a: single adversary model, guard vs baseline (n = %d, avg deg 6, \
            b = 2, %d seeds/row; S retained vs crash-only LIC on the correct \
            subgraph)"
           n (List.length seeds))
      header
  in
  List.iter
    (fun model ->
      let mname = Adversary.name model in
      List.iter
        (fun frac ->
          let spec = Printf.sprintf "%s:%.2f" mname frac in
          List.iter
            (fun guard ->
              Tbl.add_row t1
                ([ mname; Tbl.fcell2 frac ] @ cells ~seeds ~prefs ~spec ~guard))
            [ false; true ])
        [ 0.1; 0.2 ])
    Adversary.all_defaults;
  let t2 =
    Tbl.create
      ~title:"E22b: mixed adversary population (all five models at once)"
      header
  in
  let mix frac =
    String.concat ","
      (List.map
         (fun m -> Printf.sprintf "%s:%.3f" (Adversary.name m) (frac /. 5.0))
         Adversary.all_defaults)
  in
  List.iter
    (fun frac ->
      List.iter
        (fun guard ->
          Tbl.add_row t2
            ([ "mixed"; Tbl.fcell2 frac ]
            @ cells ~seeds ~prefs ~spec:(mix frac) ~guard))
        [ false; true ])
    [ 0.1; 0.2 ];
  [ t1; t2 ]

let exp =
  {
    Exp_common.id = "E22";
    title = "Byzantine peers: guard + quarantine vs the vulnerable baseline";
    paper_ref = "§7 (disruptive nodes, malicious half) + Lemmas 5-6 relativized";
    run;
  }
