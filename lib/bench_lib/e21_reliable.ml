(* E21 — LID over the reliable transport: convergence on a faulty
   network (Lemmas 5-6 restored by ARQ, §7 robustness direction).

   Three regimes:
   - E21a: loss x delivery order.  Plain LID is the baseline and gets
     stuck; the transport-backed variant must terminate with exactly
     LIC's edge set on every row, at a measured retransmission cost.
   - E21b: duplication x adversarial reordering on top of loss.
   - E21c: crash / crash-restart sweeps, where exactness is forfeited
     by design: we measure convergence of the survivors and how much
     satisfaction the fault costs. *)

module Tbl = Owp_util.Tablefmt
module BM = Owp_matching.Bmatching
module Sim = Owp_simnet.Simnet
module Lid = Owp_core.Lid
module Lic = Owp_core.Lic
module Stack = Owp_core.Stack
module Prng = Owp_util.Prng

let yn b = if b then "yes" else "NO"

let run ~quick =
  let n = if quick then 100 else 400 in
  let inst =
    Workloads.make ~seed:21 ~family:(Workloads.Gnm_avg_deg 6.0)
      ~pref_model:Workloads.Random_prefs ~n ~quota:2
  in
  let w = inst.Workloads.weights and capacity = inst.Workloads.capacity in
  let lic = Lic.run w ~capacity in
  let lic_sat = Exp_common.total_satisfaction inst.Workloads.prefs lic in

  (* E21a: loss x fifo -------------------------------------------------- *)
  let t1 =
    Tbl.create
      ~title:
        (Printf.sprintf
           "E21a: LID vs reliable LID under message loss (n = %d, avg deg 6, b = 2)" n)
      [
        ("drop", Tbl.Right);
        ("fifo", Tbl.Left);
        ("plain LID", Tbl.Left);
        ("reliable", Tbl.Left);
        ("= LIC", Tbl.Left);
        ("dropped", Tbl.Right);
        ("retrans", Tbl.Right);
        ("overhead", Tbl.Right);
        ("v-time", Tbl.Right);
      ]
  in
  List.iter
    (fun (drop, fifo) ->
      let faults = Sim.faults ~drop () in
      let plain = Lid.run ~seed:3 ~fifo ~faults w ~capacity in
      let r = Stack.run ~seed:3 ~fifo ~faults ~reliable:true w ~capacity in
      Tbl.add_row t1
        [
          Tbl.fcell2 drop;
          yn fifo;
          (if plain.Lid.all_terminated then "terminates" else "STUCK");
          yn r.Stack.all_terminated;
          yn (BM.equal r.Stack.matching lic);
          Tbl.icell r.Stack.dropped;
          Tbl.icell (Stack.counter r ~layer:"transport" "retransmissions");
          Tbl.fcell2 (Stack.overhead r);
          Tbl.fcell2 r.Stack.completion_time;
        ])
    [ (0.0, true); (0.1, true); (0.3, true); (0.0, false); (0.3, false) ];

  (* E21b: duplication x reordering on a lossy link --------------------- *)
  let t2 =
    Tbl.create
      ~title:"E21b: duplication x reordering at drop = 0.2 (non-FIFO delivery)"
      [
        ("duplicate", Tbl.Right);
        ("reorder", Tbl.Right);
        ("reliable", Tbl.Left);
        ("= LIC", Tbl.Left);
        ("dup suppressed", Tbl.Right);
        ("straggled", Tbl.Right);
        ("overhead", Tbl.Right);
      ]
  in
  List.iter
    (fun (dup, reorder) ->
      let faults = Sim.faults ~drop:0.2 ~duplicate:dup ~reorder () in
      let r = Stack.run ~seed:4 ~fifo:false ~faults ~reliable:true w ~capacity in
      Tbl.add_row t2
        [
          Tbl.fcell2 dup;
          Tbl.fcell2 reorder;
          yn r.Stack.all_terminated;
          yn (BM.equal r.Stack.matching lic);
          Tbl.icell (Stack.counter r ~layer:"transport" "dup-suppressed");
          Tbl.icell r.Stack.reordered;
          Tbl.fcell2 (Stack.overhead r);
        ])
    [ (0.0, 0.0); (0.2, 0.0); (0.5, 0.0); (0.0, 0.3); (0.2, 0.3); (0.5, 0.3) ];

  (* E21c: crash / crash-restart ---------------------------------------- *)
  let t3 =
    Tbl.create
      ~title:
        "E21c: crashes at drop = 0.1 (patience = 60; 5 seeds/row; satisfaction \
         vs fault-free LIC)"
      [
        ("crashed %", Tbl.Right);
        ("restart", Tbl.Left);
        ("survivors converged", Tbl.Left);
        ("synthetic REJ", Tbl.Right);
        ("dead links", Tbl.Right);
        ("S retained", Tbl.Right);
        ("v-time", Tbl.Right);
      ]
  in
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3; 4; 5 ] in
  let faults = Sim.faults ~drop:0.1 () in
  List.iter
    (fun (pct, restart) ->
      (* each trial is self-contained (own PRNG, own simulator), so the
         sweep fans out over the worker pool when --jobs allows *)
      let trials =
        Exp_common.trial_map
          (fun seed ->
            let rng = Prng.create (0xE21 + (997 * seed)) in
            let crashes =
              List.init n (fun v -> v)
              |> List.filter (fun _ -> Prng.bernoulli rng (float_of_int pct /. 100.0))
              |> List.map (fun victim ->
                     let crash_at = 0.1 +. Prng.float rng 5.0 in
                     let restart_at =
                       if restart then Some (crash_at +. 2.0 +. Prng.float rng 8.0)
                       else None
                     in
                     { Stack.victim; crash_at; restart_at })
            in
            let r = Stack.run ~seed ~faults ~reliable:true ~patience:60.0 ~crashes w ~capacity in
            ( r.Stack.all_terminated,
              r.Stack.synthetic_rejects,
              Stack.counter r ~layer:"transport" "dead-links",
              Exp_common.total_satisfaction inst.Workloads.prefs r.Stack.matching,
              r.Stack.completion_time ))
          seeds
      in
      let converged = ref 0 and srej = ref 0 and deadl = ref 0 in
      let sat = ref 0.0 and vtime = ref 0.0 in
      List.iter
        (fun (term, sr, dl, s, vt) ->
          if term then incr converged;
          srej := !srej + sr;
          deadl := !deadl + dl;
          sat := !sat +. s;
          vtime := !vtime +. vt)
        trials;
      let k = List.length seeds in
      Tbl.add_row t3
        [
          Tbl.icell pct;
          yn restart;
          Printf.sprintf "%d/%d" !converged k;
          Tbl.icell (!srej / k);
          Tbl.icell (!deadl / k);
          Tbl.pct (if Float.equal lic_sat 0.0 then 0.0 else !sat /. float_of_int k /. lic_sat);
          Tbl.fcell2 (!vtime /. float_of_int k);
        ])
    [ (0, false); (5, false); (10, false); (20, false); (5, true); (10, true); (20, true) ];
  [ t1; t2; t3 ]

let exp =
  {
    Exp_common.id = "E21";
    title = "Reliable transport: convergence under loss, duplication, reordering, crashes";
    paper_ref = "Lemmas 5-6 + §7 (robustness)";
    run;
  }
