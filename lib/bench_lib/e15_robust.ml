(* E15 — robustness to fail-silent peers (§7 "malicious nodes"
   extension): sweep the fraction of peers that never respond and the
   timeout, measuring termination among correct peers and their
   satisfaction relative to a fault-free run. *)

module Tbl = Owp_util.Tablefmt
module BM = Owp_matching.Bmatching
module Prng = Owp_util.Prng
module Stack = Owp_core.Stack

let correct_satisfaction prefs silent m =
  let g = Preference.graph prefs in
  let acc = ref 0.0 and cnt = ref 0 in
  for v = 0 to Graph.node_count g - 1 do
    if not silent.(v) then begin
      incr cnt;
      acc := !acc +. Preference.satisfaction prefs v (BM.connections m v)
    end
  done;
  (!acc, !cnt)

let run ~quick =
  let n = if quick then 200 else 800 in
  let t =
    Tbl.create
      ~title:
        (Printf.sprintf
           "E15a: LID with fail-silent peers (n = %d, b = 3, timeout = 10)" n)
      [
        ("silent %", Tbl.Right);
        ("correct terminated", Tbl.Left);
        ("timeouts", Tbl.Right);
        ("dropped", Tbl.Right);
        ("mean S (correct)", Tbl.Right);
        ("vs fault-free", Tbl.Right);
      ]
  in
  let inst =
    Workloads.make ~seed:15 ~family:(Workloads.Gnm_avg_deg 8.0)
      ~pref_model:Workloads.Random_prefs ~n ~quota:3
  in
  let rng = Prng.create 0xE15 in
  let baseline =
    let r = Owp_core.Lid.run ~seed:1 inst.Workloads.weights ~capacity:inst.Workloads.capacity in
    let s, c = correct_satisfaction inst.Workloads.prefs (Array.make n false)
        r.Owp_core.Lid.matching in
    s /. float_of_int c
  in
  List.iter
    (fun pct ->
      let silent = Array.init n (fun _ -> Prng.bernoulli rng (float_of_int pct /. 100.0)) in
      let r =
        Stack.run ~seed:2 ~patience:10.0 ~silent inst.Workloads.weights
          ~capacity:inst.Workloads.capacity
      in
      let s, c = correct_satisfaction inst.Workloads.prefs silent r.Stack.matching in
      let mean = if c = 0 then 0.0 else s /. float_of_int c in
      Tbl.add_row t
        [
          Tbl.icell pct;
          (if r.Stack.all_terminated then "yes" else "NO");
          Tbl.icell (Stack.counter r ~layer:"detector" "patience-fired");
          Tbl.icell r.Stack.dropped;
          Tbl.fcell mean;
          Tbl.pct (if Float.equal baseline 0.0 then 0.0 else mean /. baseline);
        ])
    [ 0; 5; 10; 20; 40 ];
  (* timeout sweep at fixed 10% silent: too-small timeouts misclassify
     slow-but-correct peers *)
  let t2 =
    Tbl.create
      ~title:"E15b: timeout sensitivity at 10% silent peers (delays U[0.5, 1.5])"
      [
        ("timeout", Tbl.Right);
        ("correct terminated", Tbl.Left);
        ("timeouts fired", Tbl.Right);
        ("mean S (correct)", Tbl.Right);
      ]
  in
  let silent = Array.init n (fun _ -> Prng.bernoulli rng 0.1) in
  List.iter
    (fun timeout ->
      let r =
        Stack.run ~seed:3 ~patience:timeout ~silent inst.Workloads.weights
          ~capacity:inst.Workloads.capacity
      in
      let s, c = correct_satisfaction inst.Workloads.prefs silent r.Stack.matching in
      Tbl.add_row t2
        [
          Tbl.fcell2 timeout;
          (if r.Stack.all_terminated then "yes" else "NO");
          Tbl.icell (Stack.counter r ~layer:"detector" "patience-fired");
          Tbl.fcell (if c = 0 then 0.0 else s /. float_of_int c);
        ])
    [ 2.0; 5.0; 10.0; 40.0 ];
  (* channel loss on top of silent peers: the per-proposal timeout then
     doubles as a crude retransmission-free recovery — lossy, but it
     keeps the correct peers terminating (contrast with E21's exact
     transport-level recovery) *)
  let t3 =
    Tbl.create
      ~title:"E15c: 10% silent peers plus channel loss (timeout = 10)"
      [
        ("drop", Tbl.Right);
        ("correct terminated", Tbl.Left);
        ("timeouts fired", Tbl.Right);
        ("dropped", Tbl.Right);
        ("mean S (correct)", Tbl.Right);
      ]
  in
  List.iter
    (fun drop ->
      let faults = Owp_simnet.Simnet.faults ~drop () in
      let r =
        Stack.run ~seed:4 ~faults ~patience:10.0 ~silent inst.Workloads.weights
          ~capacity:inst.Workloads.capacity
      in
      let s, c = correct_satisfaction inst.Workloads.prefs silent r.Stack.matching in
      Tbl.add_row t3
        [
          Tbl.fcell2 drop;
          (if r.Stack.all_terminated then "yes" else "NO");
          Tbl.icell (Stack.counter r ~layer:"detector" "patience-fired");
          Tbl.icell r.Stack.dropped;
          Tbl.fcell (if c = 0 then 0.0 else s /. float_of_int c);
        ])
    [ 0.0; 0.1; 0.3 ];
  [ t; t2; t3 ]

let exp =
  {
    Exp_common.id = "E15";
    title = "Robustness to fail-silent peers";
    paper_ref = "§7 (disruptive nodes — extension)";
    run;
  }
