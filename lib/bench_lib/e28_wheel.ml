(* E28 — the rebuilt Simnet hot path at scale: the bucketed event
   wheel + arena-allocated messages against the committed pre-refactor
   heap+Hashtbl baseline (BENCH_E23.json), shard bit-identity through
   the full layer composition, and the 10^6-node LID run.

   Three tables:

   - E28a: LID wall-clock at the E23b sizes.  The baseline columns are
     the committed BENCH_E23.json figures (measured on the same
     machine, same commit range, single core) — the speedup column is
     baseline / wheel.  Wall-clock is min-of-3 with a major collection
     between samples: the shared box's run-to-run variance exceeds the
     phase costs being compared, and the repeatable floor is the
     quantity a data-structure change is answerable for.  The
     "baseline outputs" column asserts byte-identity of the protocol
     results (PROP, REJ, delivered, v-time) against the committed
     anchors: the refactor is only a refactor if the simulation is
     bit-for-bit the one the old heap produced.
   - E28b: shard bit-identity.  Every engine/layer composition —
     faults, scheduled weather over the ARQ transport, guarded
     adversaries, an anytime budget, and all of them at once — run
     with --sim-shards 2, 3 and 4 must reproduce the sequential run's
     full report (matching, every counter, virtual completion time)
     exactly.  Sequence numbers are globally unique, so the per-shard
     wheels merge on (at, seq) without ties and the shard count cannot
     leak into the schedule.
   - E28c (full mode): LID at 10^6 nodes — the scale point the wheel
     re-architecture exists for.  The pre-refactor simulator held a
     Hashtbl entry per in-flight message and a heap entry per event;
     at 8M+ events the constant factors put minutes-scale runs out of
     reach.  One row: n, events, wall, events/sec. *)

module Tbl = Owp_util.Tablefmt
module BM = Owp_matching.Bmatching
module Sim = Owp_simnet.Simnet
module Schedule = Owp_simnet.Schedule
module Adversary = Owp_simnet.Adversary
module Lid = Owp_core.Lid
module Stack = Owp_core.Stack

let yn b = if b then "yes" else "NO"

(* ------------------------------------------------------------------ *)
(* E28a: the committed baseline (BENCH_E23.json, commit d2d2b11)       *)
(* ------------------------------------------------------------------ *)

(* the pre-refactor anchors: wall-clock to beat and protocol outputs
   to reproduce exactly.  Hardcoded on purpose — the baseline binary
   no longer exists in the tree, the committed JSON is the record. *)
type anchor = {
  a_n : int;
  a_prop : int;
  a_rej : int;
  a_delivered : int;
  a_vtime : float;
  a_wall_ms : float;
}

let anchors =
  [
    {
      a_n = 10_000;
      a_prop = 92_418;
      a_rej = 51_428;
      a_delivered = 143_846;
      a_vtime = 11.590479;
      a_wall_ms = 641.12;
    };
    {
      a_n = 100_000;
      a_prop = 921_712;
      a_rej = 515_722;
      a_delivered = 1_437_434;
      a_vtime = 12.424454;
      a_wall_ms = 21326.13;
    };
  ]

let e23b_instance n =
  Workloads.make ~seed:23 ~family:(Workloads.Gnm_avg_deg 16.0)
    ~pref_model:Workloads.Random_prefs ~n ~quota:8

(* min-of-k wall-clock: the repeatable floor, not the box's noise *)
let time_floor ~samples f =
  let best = ref infinity and result = ref None in
  for _ = 1 to samples do
    Gc.full_major ();
    let r, ms = Exp_common.time f in
    if ms < !best then best := ms;
    result := Some r
  done;
  (Option.get !result, !best)

let matches_anchor (a : anchor) (r : Lid.report) =
  r.Lid.prop_count = a.a_prop
  && r.Lid.rej_count = a.a_rej
  && r.Lid.delivered = a.a_delivered
  && Float.equal
       (Float.round (r.Lid.completion_time *. 1e6) /. 1e6)
       a.a_vtime

(* ------------------------------------------------------------------ *)
(* E28b: shard bit-identity through the layer compositions             *)
(* ------------------------------------------------------------------ *)

(* everything a Stack run produced that a scheduling difference could
   perturb, flattened for structural comparison (completion_time is a
   float, but never NaN, so polymorphic equality is exact) *)
let report_key (r : Stack.report) =
  ( BM.edge_ids r.Stack.matching,
    ( r.Stack.prop_count,
      r.Stack.rej_count,
      r.Stack.delivered,
      r.Stack.dropped,
      r.Stack.reordered,
      r.Stack.lost_to_crashes,
      r.Stack.synthetic_rejects,
      r.Stack.quarantine_events,
      r.Stack.wasted_slots ),
    r.Stack.completion_time,
    r.Stack.all_terminated,
    (match r.Stack.cutoff with
    | Some c -> (c.Stack.cut_at, c.Stack.released, c.Stack.abandoned)
    | None -> (0.0, -1, -1)),
    List.map (fun { Stack.layer; counters } -> (layer, counters)) r.Stack.layers )

type composition = {
  label : string;
  exec :
    sim_shards:int -> unsafe_lookahead:bool -> Workloads.instance -> Stack.report;
}

let weather =
  [
    { Schedule.from_ = 2.0; until = 5.0; what = Schedule.Burst 0.4 };
    { Schedule.from_ = 4.0; until = 7.0; what = Schedule.Link_down [ (0, 1); (2, 3) ] };
  ]

let compositions =
  let stack ?fifo ?faults ?schedule ?reliable ?deadline ?byz ?guard () =
    {
      label = "";
      exec =
        (fun ~sim_shards ~unsafe_lookahead inst ->
          let n = Graph.node_count inst.Workloads.graph in
          let adversaries =
            Option.map
              (fun spec ->
                let rng = Owp_util.Prng.create 0xE28 in
                Adversary.assign rng ~n (Adversary.parse_spec spec))
              byz
          in
          Stack.run ~seed:28 ?fifo ?faults ?schedule ?reliable ?deadline
            ?adversaries ?guard
            ?prefs:(if byz <> None then Some inst.Workloads.prefs else None)
            ~sim_shards ~unsafe_lookahead inst.Workloads.weights
            ~capacity:inst.Workloads.capacity);
    }
  in
  [
    { (stack ()) with label = "plain LID" };
    {
      (stack ~fifo:false ~faults:(Sim.faults ~drop:0.05 ~duplicate:0.02 ~reorder:0.1 ()) ())
      with label = "channel faults, no FIFO";
    };
    {
      (stack ~faults:(Sim.faults ~drop:0.1 ()) ~reliable:true ~schedule:weather ())
      with label = "ARQ + scheduled weather";
    };
    { (stack ~byz:"liar:0.2" ~guard:true ()) with label = "guarded liars" };
    { (stack ~deadline:4.5 ()) with label = "anytime budget" };
    {
      (stack ~fifo:false ~faults:(Sim.faults ~drop:0.05 ~reorder:0.1 ())
         ~reliable:true ~schedule:weather ~byz:"liar:0.2" ~guard:true ~deadline:6.0 ())
      with label = "all layers at once";
    };
  ]

let shard_instance n =
  Workloads.make ~seed:28 ~family:(Workloads.Gnm_avg_deg 6.0)
    ~pref_model:Workloads.Random_prefs ~n ~quota:3

(* ------------------------------------------------------------------ *)
(* the gate preset: shard determinism (and the lookahead self-test)    *)
(* ------------------------------------------------------------------ *)

type shard_smoke = {
  compositions_checked : int;
  shards_checked : int list;
  identical : bool;
}

(* `owp bench --gate` preset: every composition above, sequential
   reference vs sharded (and, under --inject lookahead, vs the
   deliberately wrong wheel mode, which must diverge and trip the
   gate: a handler sending back into its own open window is exactly
   the per-link FIFO clamp, so the unsafe reorder is guaranteed to
   have material to act on) *)
let shard_gate ?(n = 400) ?(unsafe_lookahead = false) () =
  let inst = shard_instance n in
  let shards_checked = [ 1; 2; 4 ] in
  let identical =
    List.for_all
      (fun c ->
        let reference =
          report_key (c.exec ~sim_shards:1 ~unsafe_lookahead:false inst)
        in
        List.for_all
          (fun s ->
            (* owp-lint: allow float-compare — bit-identity is the property *)
            report_key (c.exec ~sim_shards:s ~unsafe_lookahead inst) = reference)
          shards_checked)
      compositions
  in
  { compositions_checked = List.length compositions; shards_checked; identical }

(* ------------------------------------------------------------------ *)
(* the experiment                                                      *)
(* ------------------------------------------------------------------ *)

let run ~quick =
  (* E28a: wall-clock vs the committed baseline ----------------------- *)
  let sizes = if quick then [ 10_000 ] else [ 10_000; 100_000 ] in
  let samples = 3 in
  let t1 =
    Tbl.create
      ~title:
        (Printf.sprintf
           "E28a: LID wall-clock, event wheel vs committed heap+Hashtbl baseline \
            (BENCH_E23.json; E23b configuration, wall = min of %d samples)"
           samples)
      [
        ("n", Tbl.Right);
        ("PROP", Tbl.Right);
        ("REJ", Tbl.Right);
        ("v-time", Tbl.Right);
        ("wheel ms", Tbl.Right);
        ("baseline ms", Tbl.Right);
        ("speedup", Tbl.Right);
        ("events/sec", Tbl.Right);
        ("baseline outputs", Tbl.Left);
      ]
  in
  List.iter
    (fun n ->
      let inst = e23b_instance n in
      let r, wall = time_floor ~samples (fun () -> Exp_common.run_lid inst) in
      let a = List.find (fun a -> a.a_n = n) anchors in
      Tbl.add_row t1
        [
          Tbl.icell n;
          Tbl.icell r.Lid.prop_count;
          Tbl.icell r.Lid.rej_count;
          Tbl.fcell2 r.Lid.completion_time;
          Tbl.fcell2 wall;
          Tbl.fcell2 a.a_wall_ms;
          Printf.sprintf "%.1fx" (a.a_wall_ms /. wall);
          Tbl.icell
            (int_of_float (float_of_int r.Lid.delivered /. (wall /. 1000.0)));
          yn (matches_anchor a r);
        ])
    sizes;

  (* E28b: shard bit-identity ------------------------------------------ *)
  let n = if quick then 200 else 600 in
  let inst = shard_instance n in
  let shard_counts = [ 2; 3; 4 ] in
  let t2 =
    Tbl.create
      ~title:
        (Printf.sprintf
           "E28b: --sim-shards bit-identity through the layer compositions \
            (n = %d; full report vs the sequential run)"
           n)
      (("composition", Tbl.Left)
      :: List.map
           (fun s -> (Printf.sprintf "shards=%d" s, Tbl.Left))
           shard_counts)
  in
  List.iter
    (fun c ->
      let reference = report_key (c.exec ~sim_shards:1 ~unsafe_lookahead:false inst) in
      Tbl.add_row t2
        (c.label
        :: List.map
             (fun s ->
               yn
                 (let k =
                    report_key (c.exec ~sim_shards:s ~unsafe_lookahead:false inst)
                  in
                  (* owp-lint: allow float-compare — bit-identity is the property *)
                  k = reference))
             shard_counts))
    compositions;

  (* E28c: the 10^6-node point ----------------------------------------- *)
  if quick then [ t1; t2 ]
  else begin
    let t3 =
      Tbl.create
        ~title:
          "E28c: LID at 10^6 nodes (G(n,m) avg deg 8, b = 8; single run — the \
           scale point the wheel re-architecture targets)"
        [
          ("n", Tbl.Right);
          ("PROP", Tbl.Right);
          ("REJ", Tbl.Right);
          ("delivered", Tbl.Right);
          ("v-time", Tbl.Right);
          ("wall ms", Tbl.Right);
          ("events/sec", Tbl.Right);
          ("quiesced", Tbl.Left);
        ]
    in
    let n = 1_000_000 in
    let inst =
      Workloads.make ~seed:23 ~family:(Workloads.Gnm_avg_deg 8.0)
        ~pref_model:Workloads.Random_prefs ~n ~quota:8
    in
    let r, wall = Exp_common.time (fun () -> Exp_common.run_lid inst) in
    Tbl.add_row t3
      [
        Tbl.icell n;
        Tbl.icell r.Lid.prop_count;
        Tbl.icell r.Lid.rej_count;
        Tbl.icell r.Lid.delivered;
        Tbl.fcell2 r.Lid.completion_time;
        Tbl.fcell2 wall;
        Tbl.icell (int_of_float (float_of_int r.Lid.delivered /. (wall /. 1000.0)));
        Exp_common.quiescence_cell r;
      ];
    [ t1; t2; t3 ]
  end

let exp =
  {
    Exp_common.id = "E28";
    title = "Event-wheel simulator: speedup vs committed baseline, shard identity";
    paper_ref = "scaling the Alg. 1 simulation (arXiv:2410.09965)";
    run;
  }
