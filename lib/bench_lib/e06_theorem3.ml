(* E6 — Theorem 3: LID achieves at least ¼(1 + 1/b_max) of the optimal
   total satisfaction (exact satisfaction optimum by exhaustive search
   on small instances). *)

module Tbl = Owp_util.Tablefmt
module BM = Owp_matching.Bmatching

let run ~quick =
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3; 4; 5; 6 ] in
  let t =
    Tbl.create
      ~title:
        "E6 (Theorem 3): LID total satisfaction vs exact optimum (bound = 1/4(1+1/b_max))"
      [
        ("instance", Tbl.Left);
        ("m", Tbl.Right);
        ("b", Tbl.Right);
        ("S(LID)", Tbl.Right);
        ("S(OPT)", Tbl.Right);
        ("ratio", Tbl.Right);
        ("bound", Tbl.Right);
        ("holds", Tbl.Left);
      ]
  in
  let ratios = ref [] in
  List.iter
    (fun quota ->
      List.iter
        (fun seed ->
          let inst =
            Workloads.make ~seed ~family:(Workloads.Gnp 0.45)
              ~pref_model:Workloads.Random_prefs ~n:8 ~quota
          in
          let m = Graph.edge_count inst.graph in
          if m <= 22 then begin
            let lid = Exp_common.run_lid inst in
            let s_lid = Exp_common.total_satisfaction inst.prefs lid.Owp_core.Lid.matching in
            let _opt, s_opt =
              Owp_matching.Exact.max_satisfaction_bmatching ~max_edges:22 inst.prefs
            in
            let ratio = if Float.equal s_opt 0.0 then 1.0 else s_lid /. s_opt in
            let bmax = Preference.max_quota inst.prefs in
            let bound = Owp_core.Theory.theorem3_bound ~bmax in
            ratios := ratio :: !ratios;
            Tbl.add_row t
              [
                inst.label;
                Tbl.icell m;
                Tbl.icell quota;
                Tbl.fcell s_lid;
                Tbl.fcell s_opt;
                Tbl.fcell ratio;
                Tbl.fcell bound;
                (if ratio >= bound -. 1e-9 then "yes" else "VIOLATED");
              ]
          end)
        seeds)
    [ 1; 2; 3 ];
  let summary = Tbl.create [ ("aggregate", Tbl.Left); ("value", Tbl.Right) ] in
  Tbl.add_row summary [ "instances"; Tbl.icell (List.length !ratios) ];
  Tbl.add_row summary [ "mean satisfaction ratio"; Tbl.fcell (Exp_common.mean !ratios) ];
  Tbl.add_row summary [ "min satisfaction ratio"; Tbl.fcell (Exp_common.minimum !ratios) ];
  [ t; summary ]

let exp =
  {
    Exp_common.id = "E6";
    title = "End-to-end satisfaction guarantee";
    paper_ref = "Theorem 3";
    run;
  }
