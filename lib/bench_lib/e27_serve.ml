(* E27 — overlay-as-a-service: the serving engine under sustained
   traffic.

   The paper's algorithms build one matching and stop; an overlay
   deployment faces a stream — peers join, leave and re-rank while
   satisfaction queries keep arriving.  This experiment drives the
   composed stack through Owp_serve: a seeded Poisson request stream
   against the standing overlay, mutations serviced by re-running the
   configured engine on the current membership, queries costing one
   propose-answer round, everything in virtual time.

   Three tables: E27a sweeps the arrival rate on the plain LID stack
   and shows the queueing transition (latency percentiles, backlog
   peak, shedding once the engine can't keep up); E27b replays one
   moderate stream across the layer compositions — ARQ over a lossy
   channel, guarded liars, a per-request deadline, and all three at
   once — each paying its own service-time premium; E27c is the
   acceptance table the `owp bench --gate` serve preset mirrors,
   including the two injected-regression self-tests. *)

module Tbl = Owp_util.Tablefmt
module RC = Owp_core.Run_config
module SR = Owp_core.Serve_report
module Faults = Owp_simnet.Faults
module Serve = Owp_serve.Serve
module Arrivals = Owp_serve.Arrivals

let yn b = if b then "yes" else "NO"

let cfg_of spec =
  match RC.validate spec with Ok c -> c | Error m -> failwith ("E27: " ^ m)

let serve_report ?handicap ~arrivals cfg prefs =
  match Serve.run ?handicap ~arrivals cfg prefs with
  | Ok out -> Option.get out.Owp_core.Pipeline.serve
  | Error msg -> failwith ("E27: " ^ msg)

(* the compositions E27b serves one stream through: every middleware
   subset rides the same request sequence *)
let lossy = { Faults.none with Faults.drop = 0.1; reorder = 0.3 }

let stacks =
  [
    ("lid", cfg_of (RC.make ~engine:RC.Lid ~seed:27 ()));
    ( "drop+reorder, ARQ",
      cfg_of
        (RC.make ~engine:RC.Lid_reliable ~seed:27 ~reliable:true ~faults:lossy ()) );
    ( "liar:0.2, guard",
      cfg_of
        (RC.make ~engine:RC.Lid_byzantine ~seed:27 ~byzantine:"liar:0.2"
           ~guard:true ()) );
    ("deadline 6", cfg_of (RC.make ~engine:RC.Lid ~seed:27 ~deadline:6.0 ()));
    ( "ARQ+guard+deadline",
      cfg_of
        (RC.make ~engine:RC.Lid_byzantine ~seed:27 ~reliable:true ~faults:lossy
           ~byzantine:"liar:0.2" ~guard:true ~deadline:12.0 ()) );
  ]

(* ------------------------------------------------------------------ *)
(* the CI serve gate                                                    *)
(* ------------------------------------------------------------------ *)

(* `owp bench --gate` preset: a short underloaded session on a fixed
   instance, run twice.  Fixed bounds, tuned with slack against the
   committed preset: p99 under the bound (a latency regression in any
   layer the session exercises pushes it over), steady-state
   satisfaction over the bound (a quality regression — engine or guard
   — pulls it under), and the two reports byte-identical. *)

type gate_result = {
  p50 : float;
  p99 : float;
  steady : float;
  throughput : float;
  max_queue : int;
  deterministic : bool;
  p99_bound : float;
  steady_bound : float;
  passed : bool;
}

let p99_bound = 30.0
let steady_bound = 0.80

(* the --inject latency handicap: comfortably larger than the slack
   between the clean preset's p99 and the bound, so the planted
   regression always trips the gate *)
let latency_injection = 2.0 *. p99_bound

let gate_arrivals = Arrivals.make ~rate:0.25 ~horizon:160.0 ()

let gate_instance () =
  Workloads.make ~seed:27 ~family:(Workloads.Gnm_avg_deg 6.0)
    ~pref_model:Workloads.Random_prefs ~n:40 ~quota:3

let gate ?(handicap = 0.0) ~cfg () =
  let prefs = (gate_instance ()).Workloads.prefs in
  let once () = Serve.run ~handicap ~arrivals:gate_arrivals cfg prefs in
  match (once (), once ()) with
  | Error m, _ | _, Error m -> Error m
  | Ok a, Ok b ->
      let ra = Option.get a.Owp_core.Pipeline.serve in
      let rb = Option.get b.Owp_core.Pipeline.serve in
      let deterministic = String.equal (SR.summary ra) (SR.summary rb) in
      Ok
        {
          p50 = ra.SR.p50;
          p99 = ra.SR.p99;
          steady = ra.SR.steady_satisfaction;
          throughput = ra.SR.throughput;
          max_queue = ra.SR.max_queue;
          deterministic;
          p99_bound;
          steady_bound;
          passed =
            deterministic && ra.SR.p99 <= p99_bound
            && ra.SR.steady_satisfaction >= steady_bound;
        }

(* ------------------------------------------------------------------ *)
(* the experiment tables                                                *)
(* ------------------------------------------------------------------ *)

let run ~quick =
  let n = if quick then 40 else 80 in
  let inst =
    Workloads.make ~seed:27 ~family:(Workloads.Gnm_avg_deg 6.0)
      ~pref_model:Workloads.Random_prefs ~n ~quota:3
  in
  let prefs = inst.Workloads.prefs in
  let lid = cfg_of (RC.make ~engine:RC.Lid ~seed:27 ()) in
  (* E27a: the queueing transition along the arrival-rate axis *)
  let rates = if quick then [ 0.1; 0.5; 2.0 ] else [ 0.05; 0.1; 0.25; 0.5; 1.0; 2.0 ] in
  let t1 =
    Tbl.create
      ~title:
        (Printf.sprintf
           "E27a: sustained traffic vs arrival rate (plain LID, n = %d, b = 3, \
            horizon 150; virtual time)"
           n)
      [
        ("rate", Tbl.Right);
        ("offered", Tbl.Right);
        ("served", Tbl.Right);
        ("shed", Tbl.Right);
        ("p50", Tbl.Right);
        ("p99", Tbl.Right);
        ("thrpt", Tbl.Right);
        ("backlog", Tbl.Right);
        ("util", Tbl.Right);
        ("steady S", Tbl.Right);
      ]
  in
  List.iter
    (fun rate ->
      let arrivals = Arrivals.make ~rate ~horizon:150.0 () in
      let r = serve_report ~arrivals lid prefs in
      Tbl.add_row t1
        [
          Tbl.fcell2 rate;
          Tbl.icell r.SR.offered;
          Tbl.icell r.SR.served;
          Tbl.icell r.SR.shed;
          Tbl.fcell2 r.SR.p50;
          Tbl.fcell2 r.SR.p99;
          Tbl.fcell2 r.SR.throughput;
          Tbl.icell r.SR.max_queue;
          Tbl.fcell2 r.SR.utilization;
          Tbl.pct r.SR.steady_satisfaction;
        ])
    rates;
  (* E27b: one moderate stream through every layer composition *)
  let arrivals_b = Arrivals.make ~rate:0.25 ~horizon:150.0 () in
  let t2 =
    Tbl.create
      ~title:
        "E27b: the same stream (rate 0.25) across stack compositions — each \
         layer pays its service-time premium"
      [
        ("stack", Tbl.Left);
        ("served", Tbl.Right);
        ("shed", Tbl.Right);
        ("p50", Tbl.Right);
        ("p99", Tbl.Right);
        ("thrpt", Tbl.Right);
        ("steady S", Tbl.Right);
      ]
  in
  List.iter
    (fun (label, cfg) ->
      let r = serve_report ~arrivals:arrivals_b cfg prefs in
      Tbl.add_row t2
        [
          label;
          Tbl.icell r.SR.served;
          Tbl.icell r.SR.shed;
          Tbl.fcell2 r.SR.p50;
          Tbl.fcell2 r.SR.p99;
          Tbl.fcell2 r.SR.throughput;
          Tbl.pct r.SR.steady_satisfaction;
        ])
    stacks;
  (* E27c: acceptance — the claims the CI serve gate re-checks *)
  let replay =
    let arrivals = Arrivals.make ~rate:0.5 ~horizon:100.0 () in
    let a = serve_report ~arrivals lid prefs in
    let b = serve_report ~arrivals lid prefs in
    String.equal (SR.summary a) (SR.summary b)
  in
  let burst =
    let arrivals = Arrivals.make ~rate:4.0 ~horizon:60.0 ~queue:4 () in
    serve_report ~arrivals lid prefs
  in
  let clean = Result.get_ok (gate ~cfg:lid ()) in
  let injected_latency =
    Result.get_ok (gate ~handicap:latency_injection ~cfg:lid ())
  in
  let injected_quality =
    let byz =
      cfg_of
        (RC.make ~engine:RC.Lid_byzantine ~seed:lid.RC.seed ~byzantine:"liar:0.3" ())
    in
    Result.get_ok (gate ~cfg:byz ())
  in
  let t3 =
    Tbl.create ~title:"E27c: acceptance" [ ("claim", Tbl.Left); ("holds", Tbl.Left) ]
  in
  Tbl.add_rows t3
    [
      [ "identical reports across repeated runs at the same seed"; yn replay ];
      [
        Printf.sprintf
          "backlog bounded by the queue knob under a burst (peak %d <= 4, shed %d)"
          burst.SR.max_queue burst.SR.shed;
        yn (burst.SR.max_queue <= 4 && burst.SR.shed > 0);
      ];
      [
        Printf.sprintf "gate passes on the clean preset (p99 %.2f <= %.2f, steady %.4f >= %.2f)"
          clean.p99 clean.p99_bound clean.steady clean.steady_bound;
        yn clean.passed;
      ];
      [
        "gate trips on an injected latency regression"; yn (not injected_latency.passed);
      ];
      [
        "gate trips on injected unguarded liars"; yn (not injected_quality.passed);
      ];
    ];
  [ t1; t2; t3 ]

let exp =
  {
    Exp_common.id = "E27";
    title = "Overlay-as-a-service: the stack under sustained traffic";
    paper_ref = "§6 dynamics served continuously (queueing view)";
    run;
  }
