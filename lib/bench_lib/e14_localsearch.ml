(* E14 — local-search ablation: how much of LID's remaining gap to the
   satisfaction optimum does a cheap centralized post-pass close?
   (Extension; the paper's §7 asks for better approximation ratios.) *)

module Tbl = Owp_util.Tablefmt
module BM = Owp_matching.Bmatching

let run ~quick =
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3; 4; 5; 6 ] in
  let t =
    Tbl.create
      ~title:
        "E14a: LID + satisfaction local search vs exact optimum (small instances)"
      [
        ("instance", Tbl.Left);
        ("S(LID)", Tbl.Right);
        ("S(LID+LS)", Tbl.Right);
        ("S(OPT)", Tbl.Right);
        ("gap closed", Tbl.Right);
        ("moves", Tbl.Right);
      ]
  in
  List.iter
    (fun seed ->
      let inst =
        Workloads.make ~seed ~family:(Workloads.Gnp 0.45)
          ~pref_model:Workloads.Random_prefs ~n:8 ~quota:2
      in
      if Graph.edge_count inst.Workloads.graph <= 20 then begin
        let lid = Exp_common.run_lid inst in
        let s0 = Exp_common.total_satisfaction inst.Workloads.prefs lid.Owp_core.Lid.matching in
        let improved, moves =
          Owp_core.Improve.local_search inst.Workloads.prefs lid.Owp_core.Lid.matching
        in
        let s1 = Exp_common.total_satisfaction inst.Workloads.prefs improved in
        let _, s_opt =
          Owp_matching.Exact.max_satisfaction_bmatching ~max_edges:20 inst.Workloads.prefs
        in
        let gap_closed =
          if s_opt -. s0 < 1e-9 then 1.0 else (s1 -. s0) /. (s_opt -. s0)
        in
        Tbl.add_row t
          [
            inst.Workloads.label;
            Tbl.fcell s0;
            Tbl.fcell s1;
            Tbl.fcell s_opt;
            Tbl.pct gap_closed;
            Tbl.icell moves;
          ]
      end)
    seeds;
  let t2 =
    Tbl.create
      ~title:"E14b: local-search improvement at scale (no exact reference)"
      [
        ("family", Tbl.Left);
        ("n", Tbl.Right);
        ("S(LID)", Tbl.Right);
        ("S(LID+LS)", Tbl.Right);
        ("improvement", Tbl.Right);
        ("moves", Tbl.Right);
      ]
  in
  let n = if quick then 200 else 800 in
  List.iter
    (fun family ->
      let inst =
        Workloads.make ~seed:14 ~family ~pref_model:Workloads.Random_prefs ~n ~quota:3
      in
      let lid = Exp_common.run_lid inst in
      let s0 = Exp_common.total_satisfaction inst.Workloads.prefs lid.Owp_core.Lid.matching in
      let improved, moves =
        Owp_core.Improve.local_search ~max_moves:(2 * n) inst.Workloads.prefs
          lid.Owp_core.Lid.matching
      in
      let s1 = Exp_common.total_satisfaction inst.Workloads.prefs improved in
      Tbl.add_row t2
        [
          Workloads.family_name family;
          Tbl.icell n;
          Tbl.fcell s0;
          Tbl.fcell s1;
          Tbl.pct (if Float.equal s0 0.0 then 0.0 else (s1 -. s0) /. s0);
          Tbl.icell moves;
        ])
    Workloads.standard_families;
  [ t; t2 ]

let exp =
  {
    Exp_common.id = "E14";
    title = "Satisfaction local-search ablation";
    paper_ref = "§7 (better ratios — extension)";
    run;
  }
