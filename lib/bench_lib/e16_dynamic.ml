(* E16 — dynamic LID (protocol-level churn handling, §7 future work)
   vs re-running static LID from scratch after every event. *)

module Tbl = Owp_util.Tablefmt
module BM = Owp_matching.Bmatching
module Dyn = Owp_core.Lid_dynamic
module Prng = Owp_util.Prng

let static_rerun prefs active =
  (* static LID on the active-induced problem: inactive nodes get
     capacity 0, so they match nothing and send nothing of consequence *)
  let g = Preference.graph prefs in
  let n = Graph.node_count g in
  let w = Weights.of_preference prefs in
  let capacity =
    Array.init n (fun v -> if active.(v) then Preference.quota prefs v else 0)
  in
  let r = Owp_core.Lid.run ~seed:99 w ~capacity in
  let sat = ref 0.0 in
  for v = 0 to n - 1 do
    if active.(v) then
      sat := !sat +. Preference.satisfaction prefs v (BM.connections r.Owp_core.Lid.matching v)
  done;
  (!sat, r.Owp_core.Lid.prop_count + r.Owp_core.Lid.rej_count)

let run ~quick =
  let n = if quick then 150 else 500 in
  let nevents = if quick then 30 else 120 in
  let t =
    Tbl.create
      ~title:
        (Printf.sprintf
           "E16: dynamic LID vs static re-run per event (n = %d, %d events, b = 3)" n
           nevents)
      [
        ("family", Tbl.Left);
        ("quiescent", Tbl.Left);
        ("mean S dyn", Tbl.Right);
        ("mean S rerun", Tbl.Right);
        ("S retention", Tbl.Right);
        ("msgs/event dyn", Tbl.Right);
        ("msgs/event rerun", Tbl.Right);
      ]
  in
  List.iter
    (fun family ->
      let inst =
        Workloads.make ~seed:16 ~family ~pref_model:Workloads.Random_prefs ~n ~quota:3
      in
      let g = inst.Workloads.graph in
      let rng = Prng.create 0xE16 in
      let initially_active =
        Array.init (Graph.node_count g) (fun _ -> Prng.bernoulli rng 0.85)
      in
      let churn_events =
        Owp_overlay.Churn.random_events rng ~universe:g ~initially_active ~steps:nevents
      in
      let events =
        List.map
          (function
            | Owp_overlay.Churn.Join v -> Dyn.Join v
            | Owp_overlay.Churn.Leave v -> Dyn.Leave v)
          churn_events
      in
      let r = Dyn.run ~prefs:inst.Workloads.prefs ~initially_active ~events () in
      (* static re-run after each event *)
      let active = Array.copy initially_active in
      let rerun_sats = ref [] and rerun_msgs = ref 0 in
      List.iter
        (fun ev ->
          (match ev with
          | Dyn.Join v -> active.(v) <- true
          | Dyn.Leave v -> active.(v) <- false);
          let s, msgs = static_rerun inst.Workloads.prefs active in
          rerun_sats := s :: !rerun_sats;
          rerun_msgs := !rerun_msgs + msgs)
        events;
      let dyn_sats = List.map (fun s -> s.Dyn.total_satisfaction) r.Dyn.steps in
      let dyn_msgs =
        List.fold_left (fun a s -> a + s.Dyn.messages_for_event) 0 r.Dyn.steps
      in
      let mean xs = Exp_common.mean xs in
      let s_dyn = mean dyn_sats and s_rerun = mean (List.rev !rerun_sats) in
      Tbl.add_row t
        [
          Workloads.family_name family;
          (if r.Dyn.quiescent then "yes" else "NO");
          Tbl.fcell s_dyn;
          Tbl.fcell s_rerun;
          Tbl.pct (if Float.equal s_rerun 0.0 then 1.0 else s_dyn /. s_rerun);
          Tbl.fcell2 (float_of_int dyn_msgs /. float_of_int (List.length events));
          Tbl.fcell2 (float_of_int !rerun_msgs /. float_of_int (List.length events));
        ])
    Workloads.standard_families;
  [ t ]

let exp =
  {
    Exp_common.id = "E16";
    title = "Dynamic LID vs static re-runs";
    paper_ref = "§7 (dynamicity — protocol extension)";
    run;
  }
