(** Registry of all reproduction experiments (see DESIGN.md's
    per-experiment index and EXPERIMENTS.md for paper-vs-measured). *)

val all : Exp_common.exp list
(** E0–E21 in order. *)

val find : string -> Exp_common.exp option
(** Lookup by case-insensitive id, e.g. "e3". *)

val run_all : ?quick:bool -> ?json_dir:string -> out:Format.formatter -> unit -> unit
(** Execute every experiment and print its tables.  With [json_dir],
    additionally write one machine-readable [BENCH_<id>.json] per
    experiment into that (existing) directory. *)

val run_one : ?quick:bool -> ?json_dir:string -> out:Format.formatter -> string -> bool
(** Execute a single experiment by id; [false] if the id is unknown. *)
