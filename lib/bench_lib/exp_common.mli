(** Shared plumbing for the experiment runners. *)

module Tbl = Owp_util.Tablefmt

type exp = {
  id : string;  (** e.g. "E3" *)
  title : string;
  paper_ref : string;  (** the lemma/theorem/figure being reproduced *)
  run : quick:bool -> Tbl.t list;
      (** [quick] trims sweep sizes for CI; full mode regenerates the
          EXPERIMENTS.md numbers *)
}

val total_satisfaction : Owp_prefs.Preference.t -> Owp_matching.Bmatching.t -> float

val run_lid : Workloads.instance -> Owp_core.Lid.report
val run_lic : Workloads.instance -> Owp_matching.Bmatching.t
val run_greedy : Workloads.instance -> Owp_matching.Bmatching.t

val quiescence_cell : Owp_core.Lid.report -> string
(** ["yes"] when every node quiesced (Lemma 5); otherwise the straggler
    node ids from the report's structured quiescence violations. *)

val jobs : int ref
(** Domain budget for parallel sweeps (default 1 = sequential).  Set by
    [owp bench --jobs] and the bench harness before experiments run. *)

val trial_map : ('a -> 'b) -> 'a list -> 'b list
(** {!Owp_util.Pool.map_list} over the configured {!jobs}: order- and
    content-deterministic whatever the domain count, so trial loops can
    switch to it freely.  Each trial must be self-contained (own PRNG
    stream, no shared mutable state). *)

val time : (unit -> 'a) -> 'a * float
(** Result plus wall-clock milliseconds. *)

val mean : float list -> float
val minimum : float list -> float
val header : exp -> string
