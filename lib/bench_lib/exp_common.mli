(** Shared plumbing for the experiment runners. *)

module Tbl = Owp_util.Tablefmt

type exp = {
  id : string;  (** e.g. "E3" *)
  title : string;
  paper_ref : string;  (** the lemma/theorem/figure being reproduced *)
  run : quick:bool -> Tbl.t list;
      (** [quick] trims sweep sizes for CI; full mode regenerates the
          EXPERIMENTS.md numbers *)
}

val total_satisfaction : Owp_prefs.Preference.t -> Owp_matching.Bmatching.t -> float

val run_lid : Workloads.instance -> Owp_core.Lid.report
val run_lic : Workloads.instance -> Owp_matching.Bmatching.t
val run_greedy : Workloads.instance -> Owp_matching.Bmatching.t

val quiescence_cell : Owp_core.Lid.report -> string
(** ["yes"] when every node quiesced (Lemma 5); otherwise the straggler
    node ids from the report's structured quiescence violations. *)

val mean : float list -> float
val minimum : float list -> float
val header : exp -> string
