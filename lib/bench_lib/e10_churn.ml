(* E10 — dynamicity ablation (§7 future work): incremental greedy
   repair vs full rebuild under churn.  Reported: average satisfaction
   relative to the rebuild optimum, and disruption (matched edges
   changed per event). *)

module Tbl = Owp_util.Tablefmt
module Churn = Owp_overlay.Churn

let aggregate steps =
  let sats = List.map (fun s -> s.Churn.total_satisfaction) steps in
  let changed = List.map (fun s -> float_of_int (s.Churn.added + s.Churn.removed)) steps in
  (Exp_common.mean sats, Exp_common.mean changed)

let run ~quick =
  let n = if quick then 200 else 1000 in
  let steps = if quick then 60 else 400 in
  let t =
    Tbl.create
      ~title:
        (Printf.sprintf
           "E10: churn repair — incremental vs full rebuild (n = %d universe, %d events, b = 3)"
           n steps)
      [
        ("family", Tbl.Left);
        ("mean S incr", Tbl.Right);
        ("mean S rebuild", Tbl.Right);
        ("S retention", Tbl.Right);
        ("disruption incr", Tbl.Right);
        ("disruption rebuild", Tbl.Right);
      ]
  in
  List.iter
    (fun family ->
      let inst =
        Workloads.make ~seed:99 ~family ~pref_model:Workloads.Random_prefs ~n ~quota:3
      in
      let rng = Owp_util.Prng.create 4242 in
      let initially_active =
        Array.init (Graph.node_count inst.graph) (fun _ ->
            Owp_util.Prng.bernoulli rng 0.8)
      in
      let events =
        Churn.random_events rng ~universe:inst.graph ~initially_active ~steps
      in
      let incr_steps =
        Churn.simulate ~prefs:inst.prefs ~initially_active ~events
          ~repair:Churn.Incremental
      in
      let full_steps =
        Churn.simulate ~prefs:inst.prefs ~initially_active ~events
          ~repair:Churn.Full_rebuild
      in
      let s_incr, d_incr = aggregate incr_steps in
      let s_full, d_full = aggregate full_steps in
      Tbl.add_row t
        [
          Workloads.family_name family;
          Tbl.fcell s_incr;
          Tbl.fcell s_full;
          Tbl.pct (if Float.equal s_full 0.0 then 1.0 else s_incr /. s_full);
          Tbl.fcell2 d_incr;
          Tbl.fcell2 d_full;
        ])
    Workloads.standard_families;
  [ t ]

let exp =
  {
    Exp_common.id = "E10";
    title = "Churn: incremental repair ablation";
    paper_ref = "§7 (future work: dynamicity)";
    run;
  }
