(* E24 — layer composition: guarded Byzantine peers on a faulty
   channel with the ARQ transport underneath, all in one stack run.

   The pre-stack drivers could model an adversary OR a lossy channel,
   never both; the layered runtime makes the combination a
   configuration.  The acceptance claim mirrors E22's, relativized the
   same way (Theorem 3 on the correct subgraph): with the guard on,
   20% weight-liars over a 10%-drop reordering channel masked by the
   transport must leave every correct peer terminated, certify the
   bounded-damage certificate, and retain the satisfaction of the
   crash-only LIC reference on the correct subgraph.  The unguarded
   rows are the vulnerable baseline — same channel, same adversaries,
   no vetting — whose overclaim locks the certificate flags. *)

module Tbl = Owp_util.Tablefmt
module Sim = Owp_simnet.Simnet
module Adversary = Owp_simnet.Adversary
module Stack = Owp_core.Stack

let yn b = if b then "yes" else "NO"

let run ~quick =
  let n = if quick then 60 else 200 in
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3; 4; 5 ] in
  let k = List.length seeds in
  let inst =
    Workloads.make ~seed:24 ~family:(Workloads.Gnm_avg_deg 6.0)
      ~pref_model:Workloads.Random_prefs ~n ~quota:2
  in
  let prefs = inst.Workloads.prefs in
  let w = inst.Workloads.weights and capacity = inst.Workloads.capacity in
  let faults = Sim.faults ~drop:0.1 ~reorder:0.3 () in
  let run_one ~guard seed =
    let rng = Owp_util.Prng.create (0xE24 + (7919 * seed)) in
    let adversaries = Adversary.assign rng ~n (Adversary.parse_spec "liar:0.2") in
    let r =
      Stack.run ~seed ~fifo:false ~faults ~reliable:true ~adversaries ~guard ~prefs w
        ~capacity
    in
    (r, Stack.satisfaction_of_correct prefs r,
     Stack.reference_satisfaction prefs ~correct:r.Stack.correct)
  in
  let t1 =
    Tbl.create
      ~title:
        (Printf.sprintf
           "E24a: guarded 20%% weight-liars over drop = 0.1 + reorder = 0.3 with \
            ARQ (n = %d, avg deg 6, b = 2, %d seeds/row; S retained vs crash-only \
            LIC on the correct subgraph)"
           n k)
      [
        ("guard", Tbl.Left);
        ("correct done", Tbl.Right);
        ("certified", Tbl.Left);
        ("damage", Tbl.Right);
        ("S retained", Tbl.Right);
        ("retrans", Tbl.Right);
        ("quarantines", Tbl.Right);
        ("precision", Tbl.Left);
        ("wasted", Tbl.Right);
      ]
  in
  let guarded_certified = ref true in
  List.iter
    (fun guard ->
      let term = ref 0 and damage = ref 0 and retrans = ref 0 in
      let quar = ref 0 and falseq = ref 0 and wasted = ref 0 in
      let retained = ref 0.0 and reference = ref 0.0 in
      List.iter
        (fun seed ->
          let r, s, sref = run_one ~guard seed in
          if r.Stack.all_terminated then incr term;
          damage := !damage + List.length r.Stack.damage;
          retrans := !retrans + Stack.counter r ~layer:"transport" "retransmissions";
          quar := !quar + r.Stack.quarantine_events;
          falseq := !falseq + r.Stack.false_quarantines;
          wasted := !wasted + r.Stack.wasted_slots;
          retained := !retained +. s;
          reference := !reference +. sref;
          if guard && not (r.Stack.all_terminated && r.Stack.damage = []) then
            guarded_certified := false)
        seeds;
      Tbl.add_row t1
        [
          yn guard;
          Printf.sprintf "%d/%d" !term k;
          yn (!term = k && !damage = 0);
          Tbl.icell !damage;
          Tbl.pct (if Float.equal !reference 0.0 then 0.0 else !retained /. !reference);
          Tbl.icell (!retrans / k);
          Tbl.icell (!quar / k);
          yn (!falseq = 0);
          Tbl.icell (!wasted / k);
        ])
    [ false; true ];
  (* the per-layer counter table of one guarded run: the uniform
     Stack.report surface E24 exists to exercise *)
  let t2 =
    Tbl.create
      ~title:"E24b: per-layer counters of the guarded composition (seed 1)"
      [ ("layer", Tbl.Left); ("counter", Tbl.Left); ("value", Tbl.Right) ]
  in
  let r1, _, _ = run_one ~guard:true (List.hd seeds) in
  List.iter
    (fun { Stack.layer; counters } ->
      List.iter
        (fun (name, v) -> Tbl.add_row t2 [ layer; name; Tbl.icell v ])
        counters)
    r1.Stack.layers;
  let t3 =
    Tbl.create ~title:"E24c: acceptance"
      [ ("claim", Tbl.Left); ("holds", Tbl.Left) ]
  in
  Tbl.add_row t3
    [
      "guarded composition converges and certifies on every seed";
      yn !guarded_certified;
    ];
  [ t1; t2; t3 ]

let exp =
  {
    Exp_common.id = "E24";
    title = "Layer composition: guard x adversaries x faults x ARQ in one stack";
    paper_ref = "§7 (disruptive nodes) + Lemmas 5-6 relativized";
    run;
  }
