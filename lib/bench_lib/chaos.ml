module Prng = Owp_util.Prng
module Schedule = Owp_simnet.Schedule
module Run_config = Owp_core.Run_config
module Pipeline = Owp_core.Pipeline
module Stack = Owp_core.Stack
module Stabilize = Owp_check.Stabilize

type result = { passed : bool; summary : string; certificate : string option }

let run_one cfg prefs sched =
  let cfg = { cfg with Run_config.schedule = sched } in
  let out = Pipeline.run_config cfg prefs in
  let stab = out.Pipeline.stabilize in
  let damage_free =
    match out.Pipeline.detail with
    | Pipeline.Stack r -> ( match r.Stack.damage with [] -> true | _ -> false)
    | Pipeline.Plain -> true
  in
  let quiesced_ok = out.Pipeline.quiesced <> Some false in
  let stab_ok =
    match stab with None -> true | Some c -> Stabilize.certified c
  in
  (* under adversaries the damage certificate is the gate (wasted slots
     legitimately break exact convergence), and under a deadline/round
     budget the anytime cutoff is (a run frozen at the heal cannot
     converge by construction); otherwise the stabilization
     certificate is *)
  let stab_gate =
    if Option.is_some cfg.Run_config.byzantine || Run_config.budgeted cfg then
      true
    else stab_ok
  in
  let passed = stab_gate && damage_free && quiesced_ok in
  let summary =
    Printf.sprintf "%s -> %s%s"
      (Schedule.to_string sched)
      (if passed then "PASS" else "FAIL")
      (match stab with
      | Some c ->
          Printf.sprintf " (quiesced %b, converged %b, recovery %.2f)"
            c.Stabilize.quiesced c.Stabilize.converged c.Stabilize.recovery_time
      | None -> "")
  in
  { passed; summary; certificate = Option.map Stabilize.to_string stab }

(* ------------------------------------------------------------------ *)
(* generation                                                          *)
(* ------------------------------------------------------------------ *)

let random_links rng g k =
  let m = Graph.edge_count g in
  if m = 0 then []
  else
    List.init (max 1 k) (fun _ -> Graph.edge_endpoints g (Prng.int rng m))
    |> List.sort_uniq compare

(* every drawn float lands on a 1/64 grid: exact binary fractions with
   short decimal forms, so the shrunk reproducer printed as a
   --schedule spec (%.12g cells) re-parses to the identical schedule —
   a reproduce-with line that parsed to a slightly different schedule
   might not fail any more *)
let grid x = Float.round (x *. 64.0) /. 64.0

let generate rng ~graph ~horizon ~max_episodes =
  let n = Graph.node_count graph in
  let count = 1 + Prng.int rng (max 1 max_episodes) in
  let downed = Hashtbl.create 4 in
  let window () =
    let t0 = grid (0.5 +. Prng.float rng (0.55 *. horizon)) in
    let dur = grid (0.5 +. Prng.float rng (0.35 *. horizon)) in
    (t0, t0 +. dur)
  in
  let episode () =
    let from_, until = window () in
    let what =
      match Prng.int rng 5 with
      | 0 when n >= 2 ->
          (* one explicit block vs the implicit rest *)
          let k = 1 + Prng.int rng (max 1 (n / 2)) in
          let block = Array.to_list (Prng.sample_without_replacement rng k n) in
          Schedule.Partition [ block ]
      | 1 -> (
          match random_links rng graph (1 + Prng.int rng 2) with
          | [] -> Schedule.Burst (grid (0.6 +. Prng.float rng 0.4))
          | ls -> Schedule.Link_down ls)
      | 2 -> (
          match random_links rng graph 1 with
          | [] -> Schedule.Burst (grid (0.6 +. Prng.float rng 0.4))
          | ls ->
              Schedule.Flap
                {
                  links = ls;
                  period = grid (0.5 +. Prng.float rng 2.5);
                  duty = grid (0.3 +. Prng.float rng 0.5);
                })
      | 3 -> Schedule.Burst (grid (0.6 +. Prng.float rng 0.4))
      | _ ->
          (* down victims stay disjoint across episodes so the schedule
             validates (no overlapping crash-restart spans per node) *)
          let free =
            List.filter (fun v -> not (Hashtbl.mem downed v)) (List.init n (fun v -> v))
          in
          (match free with
          | [] -> Schedule.Burst (grid (0.6 +. Prng.float rng 0.4))
          | _ ->
              let v = List.nth free (Prng.int rng (List.length free)) in
              Hashtbl.replace downed v ();
              Schedule.Down [ v ])
    in
    { Schedule.from_; until; what }
  in
  let sched = List.init count (fun _ -> episode ()) in
  match Schedule.validate ~n sched with
  | Ok s -> s
  | Error _ ->
      (* unreachable by construction; degrade to the burst-only subset
         rather than raise inside a fuzz loop *)
      List.filter
        (fun e -> match e.Schedule.what with Schedule.Burst _ -> true | _ -> false)
        sched

(* ------------------------------------------------------------------ *)
(* shrinking                                                           *)
(* ------------------------------------------------------------------ *)

let rec without i = function
  | [] -> []
  | _ :: tl when i = 0 -> tl
  | hd :: tl -> hd :: without (i - 1) tl

let rec replace i x = function
  | [] -> []
  | _ :: tl when i = 0 -> x :: tl
  | hd :: tl -> hd :: replace (i - 1) x tl

(* single-step reductions, most aggressive first: whole-episode drops,
   then duration halvings, then content thinning *)
let candidates sched =
  let n = List.length sched in
  let drops = List.init n (fun i -> without i sched) in
  let halvings =
    List.concat
      (List.mapi
         (fun i (e : Schedule.episode) ->
           let dur = e.Schedule.until -. e.Schedule.from_ in
           if dur <= 0.5 then []
           else
             [
               replace i
                 { e with Schedule.until = e.Schedule.from_ +. grid (dur /. 2.0) }
                 sched;
             ])
         sched)
  in
  let thinned =
    List.concat
      (List.mapi
         (fun i (e : Schedule.episode) ->
           let with_what w = replace i { e with Schedule.what = w } sched in
           match e.Schedule.what with
           | Schedule.Partition blocks ->
               (* merge: drop one block (its nodes rejoin the implicit
                  rest-block); thin: drop the last node of a block *)
               let merges =
                 if List.length blocks > 1 then
                   List.init (List.length blocks) (fun j ->
                       with_what (Schedule.Partition (without j blocks)))
                 else []
               in
               let thins =
                 List.concat
                   (List.mapi
                      (fun j b ->
                        if List.length b > 1 then
                          [
                            with_what
                              (Schedule.Partition
                                 (replace j (without (List.length b - 1) b) blocks));
                          ]
                        else [])
                      blocks)
               in
               merges @ thins
           | Schedule.Link_down links when List.length links > 1 ->
               List.init (List.length links) (fun j ->
                   with_what (Schedule.Link_down (without j links)))
           | Schedule.Flap ({ links; _ } as f) when List.length links > 1 ->
               List.init (List.length links) (fun j ->
                   with_what (Schedule.Flap { f with links = without j links }))
           | Schedule.Down nodes when List.length nodes > 1 ->
               List.init (List.length nodes) (fun j ->
                   with_what (Schedule.Down (without j nodes)))
           | _ -> [])
         sched)
  in
  drops @ halvings @ thinned

let shrink ?(budget = 200) ~fails sched =
  let left = ref budget in
  let still_fails s =
    (not (Schedule.is_empty s))
    && !left > 0
    &&
    begin
      decr left;
      fails s
    end
  in
  let rec fix s =
    match List.find_opt still_fails (candidates s) with
    | Some s' -> fix s'
    | None -> s
  in
  fix sched

(* ------------------------------------------------------------------ *)
(* the fuzz loop                                                       *)
(* ------------------------------------------------------------------ *)

type fuzz_report = {
  trials_run : int;
  failure : (int * Schedule.t * Schedule.t) option;
}

let fuzz ?(trials = 20) ?(max_episodes = 4) ?(horizon = 12.0) ~seed cfg prefs =
  let rng = Prng.create (seed lxor 0xC4A05) in
  let graph = Preference.graph prefs in
  let fails s = Schedule.is_empty s = false && not (run_one cfg prefs s).passed in
  let rec go i =
    if i >= trials then { trials_run = trials; failure = None }
    else begin
      let sched = generate rng ~graph ~horizon ~max_episodes in
      if fails sched then
        { trials_run = i + 1; failure = Some (i, sched, shrink ~fails sched) }
      else go (i + 1)
    end
  in
  go 0
