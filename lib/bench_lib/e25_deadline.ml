(* E25 — deadline-bounded anytime LID: what does serve-at-cutoff cost?

   The deadline layer freezes a feasible partial matching at the budget
   instead of waiting for quiescence; this experiment sweeps the budget
   axis and shows that degradation is graceful — satisfaction retained
   against the unbudgeted reference grows monotonically, residual
   blocking pairs shrink, and there is no cliff where the protocol is
   worthless below some threshold (Floréen et al. 0812.4893: truncated
   local matching still carries most of the payoff).

   Three tables: E25a sweeps budgets across the graph families on the
   clean stack; E25b replays the sweep under a lossy reordering channel
   masked by the ARQ transport and under guarded 20% weight-liars (the
   reference of each curve is the unbudgeted run of the SAME stack, so
   the comparison is relativized exactly like E22/E24); E25c is the
   acceptance table the CI anytime gate mirrors. *)

module Tbl = Owp_util.Tablefmt
module Sim = Owp_simnet.Simnet
module Adversary = Owp_simnet.Adversary
module Stack = Owp_core.Stack
module AC = Anytime_curves

let yn b = if b then "yes" else "NO"
let budgets = [ 1.0; 2.0; 3.0; 5.0; 8.0 ]

(* lossy channels stretch the round trip, so the faulty sweeps get a
   proportionally longer axis *)
let fault_budgets = [ 2.0; 4.0; 6.0; 10.0; 16.0 ]

let curve_rows t ~label (points : AC.point list) =
  List.iter
    (fun (p : AC.point) ->
      Tbl.add_row t
        [
          label;
          Tbl.fcell2 p.AC.budget;
          Tbl.pct p.AC.retained;
          Tbl.pct p.AC.weight_retained;
          Tbl.icell p.AC.blocking_pairs;
          Tbl.icell p.AC.served_edges;
          yn p.AC.certified;
        ])
    points

let run ~quick =
  let n = if quick then 80 else 300 in
  let mk family = Workloads.make ~seed:25 ~family ~pref_model:Workloads.Random_prefs ~n ~quota:3 in
  let sweep inst run_budget ~budgets =
    AC.curve ~prefs:inst.Workloads.prefs ~weights:inst.Workloads.weights
      ~capacity:inst.Workloads.capacity ~budgets run_budget
  in
  (* E25a: clean stack, one curve per family *)
  let t1 =
    Tbl.create
      ~title:
        (Printf.sprintf
           "E25a: satisfaction/blocking pairs vs deadline budget (LID frozen at \
            cutoff, n = %d, b = 3; retained vs the unbudgeted run)"
           n)
      [
        ("family", Tbl.Left);
        ("budget", Tbl.Right);
        ("S retained", Tbl.Right);
        ("W retained", Tbl.Right);
        ("blocking", Tbl.Right);
        ("links", Tbl.Right);
        ("certified", Tbl.Left);
      ]
  in
  let family_curves =
    List.map
      (fun family ->
        let inst = mk family in
        let _, points =
          sweep inst ~budgets (fun d ->
              Stack.run ~seed:25 ?deadline:d inst.Workloads.weights
                ~capacity:inst.Workloads.capacity)
        in
        (Workloads.family_name family, points))
      Workloads.standard_families
  in
  List.iteri
    (fun i (name, points) ->
      if i > 0 then Tbl.add_separator t1;
      curve_rows t1 ~label:name points)
    family_curves;
  (* E25b: the same sweep under adverse layers — each curve relative to
     the unbudgeted run of its own stack *)
  let t2 =
    Tbl.create
      ~title:
        "E25b: the sweep under adverse layers (drop = 0.1 + reorder = 0.3 with \
         ARQ; guarded 20% weight-liars), Gnm avg deg 8"
      [
        ("stack", Tbl.Left);
        ("budget", Tbl.Right);
        ("S retained", Tbl.Right);
        ("W retained", Tbl.Right);
        ("blocking", Tbl.Right);
        ("links", Tbl.Right);
        ("certified", Tbl.Left);
      ]
  in
  let inst = mk (Workloads.Gnm_avg_deg 8.0) in
  let faults = Sim.faults ~drop:0.1 ~reorder:0.3 () in
  let _, faulty =
    sweep inst ~budgets:fault_budgets (fun d ->
        Stack.run ~seed:25 ~fifo:false ~faults ~reliable:true ?deadline:d
          inst.Workloads.weights ~capacity:inst.Workloads.capacity)
  in
  let adversaries =
    Adversary.assign (Owp_util.Prng.create 0xE25) ~n (Adversary.parse_spec "liar:0.2")
  in
  let _, guarded =
    sweep inst ~budgets (fun d ->
        Stack.run ~seed:25 ~adversaries ~guard:true ~prefs:inst.Workloads.prefs
          ?deadline:d inst.Workloads.weights ~capacity:inst.Workloads.capacity)
  in
  curve_rows t2 ~label:"drop+reorder, ARQ" faulty;
  Tbl.add_separator t2;
  curve_rows t2 ~label:"liar:0.2, guard" guarded;
  (* E25c: acceptance — the claims the CI anytime gate re-checks *)
  let all_points =
    List.concat_map snd family_curves @ faulty @ guarded
  in
  let plain_monotone = List.for_all (fun (_, ps) -> AC.monotone ps) family_curves in
  let mid_payoff =
    List.for_all
      (fun (_, ps) ->
        match List.find_opt (fun (p : AC.point) -> Float.equal p.AC.budget 3.0) ps with
        | Some p -> p.AC.retained >= 0.5
        | None -> false)
      family_curves
  in
  let worst_step =
    List.fold_left
      (fun acc ps -> Float.max acc (AC.max_step ps))
      (AC.max_step faulty)
      (guarded :: List.map snd family_curves)
  in
  let t3 =
    Tbl.create ~title:"E25c: acceptance" [ ("claim", Tbl.Left); ("holds", Tbl.Left) ]
  in
  Tbl.add_rows t3
    [
      [
        "every budgeted run certifies (feasible + prefix of its full run)";
        yn (AC.all_certified all_points);
      ];
      [
        "satisfaction monotone in the budget on every family (fixed seed)";
        yn plain_monotone;
      ];
      [
        "adverse sweeps stay monotone (ARQ channel, guarded liars)";
        yn (AC.monotone faulty && AC.monotone guarded);
      ];
      [ "half the payoff is served by t = 3 on every family"; yn mid_payoff ];
      [
        Printf.sprintf
          "no cliff: largest per-step jump is %.1f%% of the full payoff"
          (100.0 *. worst_step);
        yn (worst_step < 1.0);
      ];
    ];
  [ t1; t2; t3 ]

(* the trimmed preset behind `owp bench --deadline T`: budgets climbing
   to T on one small instance; the gate demands certification at every
   budget and monotone satisfaction *)
type smoke_result = {
  curve : AC.point list;
  certified : bool;
  monotone : bool;
}

let smoke ?(deadline = 8.0) () =
  let inst =
    Workloads.make ~seed:25 ~family:(Workloads.Gnm_avg_deg 6.0)
      ~pref_model:Workloads.Random_prefs ~n:60 ~quota:2
  in
  let budgets =
    List.map (fun f -> f *. deadline) [ 0.25; 0.5; 0.75; 1.0 ]
  in
  let _, points =
    AC.curve ~prefs:inst.Workloads.prefs ~weights:inst.Workloads.weights
      ~capacity:inst.Workloads.capacity ~budgets (fun d ->
        Stack.run ~seed:25 ?deadline:d inst.Workloads.weights
          ~capacity:inst.Workloads.capacity)
  in
  { curve = points; certified = AC.all_certified points; monotone = AC.monotone points }

let exp =
  {
    Exp_common.id = "E25";
    title = "Deadline-bounded anytime LID: serve-at-cutoff degradation";
    paper_ref = "Floreen et al. 0812.4893 (anytime local matching)";
    run;
  }
