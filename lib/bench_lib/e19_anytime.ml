(* E19 — anytime behaviour of LID: how quickly does satisfaction
   accumulate in virtual time?  The protocol locks its heaviest
   connections early (locally heaviest edges need no coordination), so
   most of the final satisfaction is in place after a couple of message
   round-trips — the practically interesting "figure" for deployments
   that cannot wait for full quiescence.

   Since the deadline layer landed this is a real serve-at-cutoff
   measurement, not a lock-trace replay: every cell is a budgeted
   Stack.run whose frozen matching goes through the Anytime certificate
   checker — the same instrumentation E25 sweeps and the same path
   `owp run --deadline` serves.  (The cells count mutually locked links
   only, where the old on_lock probe credited half-locks early; the
   shape of the curve is unchanged.) *)

module Tbl = Owp_util.Tablefmt
module Stack = Owp_core.Stack

let budgets = [ 1.0; 2.0; 3.0; 5.0; 8.0 ]

let run ~quick =
  let n = if quick then 400 else 2000 in
  let t =
    Tbl.create
      ~title:
        (Printf.sprintf
           "E19: satisfaction served at deadline t (LID frozen at cutoff, n = %d, b = 3)"
           n)
      [
        ("family", Tbl.Left);
        ("t=1", Tbl.Right);
        ("t=2", Tbl.Right);
        ("t=3", Tbl.Right);
        ("t=5", Tbl.Right);
        ("t=8", Tbl.Right);
        ("final time", Tbl.Right);
      ]
  in
  List.iter
    (fun family ->
      let inst =
        Workloads.make ~seed:19 ~family ~pref_model:Workloads.Random_prefs ~n ~quota:3
      in
      let run_budget d =
        Stack.run ~seed:20 ?deadline:d inst.Workloads.weights
          ~capacity:inst.Workloads.capacity
      in
      let full, points =
        Anytime_curves.curve ~prefs:inst.Workloads.prefs ~weights:inst.Workloads.weights
          ~capacity:inst.Workloads.capacity ~budgets run_budget
      in
      Tbl.add_row t
        (Workloads.family_name family
         :: List.map (fun p -> Tbl.pct p.Anytime_curves.retained) points
        @ [ Tbl.fcell2 full.Stack.completion_time ]))
    Workloads.standard_families;
  [ t ]

let exp =
  {
    Exp_common.id = "E19";
    title = "Anytime satisfaction profile";
    paper_ref = "LID dynamics (extension figure)";
    run;
  }
